(* Overlapping answers (§5): answers that are subfragments of other
   answers.  The paper suggests either hiding them or presenting them
   with their structural relationship; this example does both.

     dune exec examples/overlap_demo.exe *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Paper = Xfrag_workload.Paper_doc

(* Partition an answer set into maximal fragments and, under each, the
   answers it subsumes. *)
let overlap_groups answers =
  let elems = Frag_set.elements answers in
  let maximal =
    List.filter
      (fun f ->
        not
          (List.exists
             (fun g -> (not (Fragment.equal f g)) && Fragment.subfragment f g)
             elems))
      elems
  in
  List.map
    (fun m ->
      ( m,
        List.filter
          (fun f -> (not (Fragment.equal f m)) && Fragment.subfragment f m)
          elems ))
    maximal

let () =
  let ctx = Paper.figure1_context () in
  let q = Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords in
  let answers = Eval.answers ctx q in
  Format.printf "query %a returns %d answers:@.@." Query.pp q
    (Frag_set.cardinal answers);

  (* Presentation 1: nested view — maximal answers with their
     sub-answers indented, showing the structural relationship. *)
  Format.printf "nested presentation:@.";
  List.iter
    (fun (m, subs) ->
      Format.printf "  %a@." (Fragment.pp_labeled ctx) m;
      List.iter
        (fun s -> Format.printf "      \xE2\x86\xB3 %a@." (Fragment.pp_labeled ctx) s)
        subs)
    (overlap_groups answers);

  (* Presentation 2: overlap-free view — hide subsumed answers
     entirely, the policy element-retrieval systems adopt to avoid
     ranked lists dominated by nested elements (§5's references to the
     INEX overlap debate). *)
  let maximal_only = List.map fst (overlap_groups answers) in
  Format.printf "@.overlap-free presentation (%d of %d answers):@."
    (List.length maximal_only)
    (Frag_set.cardinal answers);
  List.iter (fun f -> Format.printf "  %a@." (Fragment.pp_labeled ctx) f) maximal_only;

  (* Quantify the overlap. *)
  let subsumed = Frag_set.cardinal answers - List.length maximal_only in
  Format.printf "@.%d answer(s) are subfragments of another answer.@." subsumed
