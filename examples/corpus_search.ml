(* Searching a multi-document collection (§7: "a very large collection
   of XML documents"): build a corpus of generated articles with varied
   structural profiles, run one query across all of them, and present
   the scored, overlap-collapsed results.

     dune exec examples/corpus_search.exe *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Corpus = Xfrag_core.Corpus
module Presentation = Xfrag_core.Presentation
module Docgen = Xfrag_workload.Docgen
module Ranking = Xfrag_baselines.Ranking

let () =
  (* A small collection: default, deep, and wide article profiles, with
     the query topic planted at different densities. *)
  let doc cfg plant = Docgen.with_planted_keywords cfg ~plant in
  let corpus =
    Corpus.of_documents
      [
        ( "survey.xml",
          doc { Docgen.default with seed = 71 } [ ("sourdough", 4); ("hydration", 3) ] );
        ( "handbook.xml",
          doc { Docgen.deep with seed = 72 } [ ("sourdough", 2); ("hydration", 2) ] );
        ( "notes.xml",
          doc { Docgen.wide with seed = 73 } [ ("sourdough", 3) ] );
        ("unrelated.xml", Docgen.generate { Docgen.default with seed = 74 });
      ]
  in
  Format.printf "corpus: %d documents, %d nodes total@.@." (Corpus.size corpus)
    (Corpus.total_nodes corpus);

  let keywords = [ "sourdough"; "hydration" ] in
  List.iter
    (fun k ->
      Format.printf "document frequency of %-12s %d/%d@." k
        (Corpus.document_frequency corpus k)
        (Corpus.size corpus))
    keywords;

  let query =
    Query.make ~filter:(Filter.And (Filter.Size_at_most 5, Filter.Height_at_most 2))
      keywords
  in
  Format.printf "@.query: %a@.@." Query.pp query;

  (* Scored cross-document search on the sharded engine: one request
     value, documents partitioned across shards, per-shard top-k merged
     with a k-way heap merge.  The answer list is identical for every
     shard count. *)
  let scorer ctx f = Ranking.score ctx ~keywords f in
  let request =
    Xfrag_core.Exec.Request.(with_limit (Some 8) (of_query query))
  in
  let outcome = Corpus.run ~shards:2 ~scorer corpus request in
  Format.printf "top results (%d answers corpus-wide, %d shards):@."
    outcome.Corpus.total_answers
    (List.length outcome.Corpus.shard_reports);
  List.iteri
    (fun i (hit, score) ->
      let ctx = Corpus.context corpus hit.Corpus.doc in
      Format.printf "  #%d %-14s score %.2f  %a@." (i + 1) hit.Corpus.doc score
        (Fragment.pp_labeled ctx) hit.Corpus.fragment)
    outcome.Corpus.hits;

  (* Per-document overlap handling: collapse nested answers. *)
  Format.printf "@.overlap-collapsed view per document:@.";
  List.iter
    (fun name ->
      let ctx = Corpus.context corpus name in
      let answers = Xfrag_core.Eval.answers ctx query in
      if not (Frag_set.is_empty answers) then begin
        Format.printf "%s (%d answers, overlap ratio %.2f):@." name
          (Frag_set.cardinal answers)
          (Presentation.overlap_ratio answers);
        Format.printf "  @[<v>%a@]@." (Presentation.pp ctx)
          (Presentation.select Presentation.Nest answers)
      end)
    (Corpus.names corpus)
