(* The plan-level optimizer at work (§3, §5): initial plan, Theorem 2 /
   Theorem 1 / Theorem 3 rewrites, cost estimates, reduction-factor
   probing, and measured operation counts for each strategy.

     dune exec examples/optimizer_demo.exe *)

module Context = Xfrag_core.Context
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Plan = Xfrag_core.Plan
module Rewrite = Xfrag_core.Rewrite
module Cost = Xfrag_core.Cost
module Optimizer = Xfrag_core.Optimizer
module Docgen = Xfrag_workload.Docgen

let rule () = Format.printf "%s@." (String.make 72 '-')

let show_query ctx q =
  Format.printf "query: %a@." Query.pp q;
  rule ();
  let initial = Plan.initial q in
  Format.printf "initial plan:        %a@." Plan.pp initial;
  let base = Rewrite.power_to_fixpoint initial in
  Format.printf "Theorem 2 rewrite:   %a@." Plan.pp base;
  Format.printf "Theorem 1 rewrite:   %a@." Plan.pp (Rewrite.use_reduction base);
  Format.printf "Theorem 3 rewrite:   %a@." Plan.pp (Rewrite.push_selection base);
  rule ();
  print_string (Optimizer.explain ctx q);
  rule ();
  Format.printf "measured operation counts per strategy:@.";
  List.iter
    (fun strategy ->
      match Eval.run ~strategy ctx q with
      | outcome ->
          Format.printf "  %-14s answers=%-4d %a@."
            (Eval.strategy_name strategy)
            (Xfrag_core.Frag_set.cardinal outcome.Eval.answers)
            Xfrag_core.Op_stats.pp outcome.Eval.stats
      | exception Invalid_argument msg ->
          Format.printf "  %-14s (skipped: %s)@." (Eval.strategy_name strategy) msg)
    Eval.all_strategies;
  rule ()

let () =
  (* A document where the two query keywords have mid-size posting
     lists, so every strategy has real work to do. *)
  let tree =
    Docgen.with_planted_keywords
      { Docgen.default with seed = 11; sections = 5 }
      ~plant:[ ("saffron", 6); ("paella", 5) ]
  in
  let ctx = Context.create tree in
  Format.printf "document: %d nodes@.@." (Context.size ctx);

  (* Case 1: anti-monotonic filter — pushdown is available and wins. *)
  show_query ctx
    (Query.make
       ~filter:(Filter.And (Filter.Size_at_most 4, Filter.Height_at_most 2))
       [ "saffron"; "paella" ]);

  (* Case 2: non-anti-monotonic filter only — nothing can be pushed; the
     optimizer falls back to the Theorem 2 pipeline. *)
  show_query ctx
    (Query.make ~filter:(Filter.Size_at_least 2) [ "saffron"; "paella" ]);

  (* Case 3: mixed conjunction — the anti-monotonic part is pushed, the
     residual is applied on top. *)
  show_query ctx
    (Query.make
       ~filter:(Filter.And (Filter.Size_at_most 5, Filter.Equal_depth ("saffron", "paella")))
       [ "saffron"; "paella" ])
