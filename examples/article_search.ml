(* Searching a generated document-centric article collection: the
   workload the paper's introduction motivates.  Plants two keywords
   into a synthetic article, then contrasts the algebra's answers with
   the SLCA / smallest-subtree baselines and ranks them.

     dune exec examples/article_search.exe *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Docgen = Xfrag_workload.Docgen
module Ranking = Xfrag_baselines.Ranking

let () =
  (* A mid-sized article with two planted topic keywords whose
     occurrences are scattered across paragraphs. *)
  let tree =
    Docgen.with_planted_keywords
      { Docgen.default with seed = 2026; sections = 6 }
      ~plant:[ ("croissant", 5); ("lamination", 4) ]
  in
  let ctx = Context.create tree in
  Format.printf "article: %d nodes, %d keywords indexed@.@." (Context.size ctx)
    (Xfrag_doctree.Inverted_index.vocabulary_size ctx.Context.index);

  let keywords = [ "croissant"; "lamination" ] in

  (* Conventional semantics first. *)
  let slca = Xfrag_baselines.Slca.answer ctx keywords in
  Format.printf "SLCA answers %d node(s): %s@." (List.length slca)
    (String.concat ", " (List.map (Printf.sprintf "n%d") slca));
  let smallest = Xfrag_baselines.Smallest_subtree.answer ctx keywords in
  Format.printf "smallest-subtree answers (%d):@." (Frag_set.cardinal smallest);
  Frag_set.iter
    (fun f -> Format.printf "  %a@." (Fragment.pp_labeled ctx) f)
    smallest;

  (* The algebra, with height and size limits keeping answers readable. *)
  let filter = Filter.And (Filter.Size_at_most 5, Filter.Height_at_most 2) in
  let q = Query.make ~filter keywords in
  let outcome = Eval.run ctx q in
  Format.printf "@.algebraic answers (%d, strategy %s, filter %s):@."
    (Frag_set.cardinal outcome.Eval.answers)
    (Eval.strategy_name outcome.Eval.strategy_used)
    (Filter.to_string filter);

  (* Rank them IR-style for presentation (§6: filtering and ranking are
     complements). *)
  let ranked = Ranking.top_k ctx ~keywords ~k:5 outcome.Eval.answers in
  List.iteri
    (fun i s ->
      Format.printf "  #%d (score %.2f) %a@." (i + 1) s.Ranking.score
        (Fragment.pp_labeled ctx) s.Ranking.fragment)
    ranked;

  (* How many algebraic answers are invisible to the baselines? *)
  let missed =
    Frag_set.filter (fun f -> not (Frag_set.mem f smallest)) outcome.Eval.answers
  in
  Format.printf
    "@.%d of %d algebraic answers are not produced by smallest-subtree \
     semantics.@."
    (Frag_set.cardinal missed)
    (Frag_set.cardinal outcome.Eval.answers);
  Format.printf "evaluation cost: %a@." Xfrag_core.Op_stats.pp outcome.Eval.stats
