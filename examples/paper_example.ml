(* The paper's running example (§4) end to end: the Figure 1 document,
   the query {XQuery, optimization} with filter size ≤ 3, Table 1
   reproduced row by row, and all four evaluation strategies compared.

     dune exec examples/paper_example.exe *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Join = Xfrag_core.Join
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Paper = Xfrag_workload.Paper_doc

let rule () = Format.printf "%s@." (String.make 72 '-')

let () =
  let ctx = Paper.figure1_context () in
  Format.printf "Figure 1 document: %d nodes (n0..n81)@."
    (Xfrag_doctree.Doctree.size ctx.Context.tree);
  let q = Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords in
  Format.printf "query: %a@." Query.pp q;
  rule ();

  (* Keyword selections (§2.3). *)
  List.iter
    (fun k ->
      Format.printf "F(%s) = %a@." k Frag_set.pp (Xfrag_core.Selection.keyword ctx k))
    q.Query.keywords;
  rule ();

  (* Table 1: each candidate fragment set and its join. *)
  Format.printf "Table 1 (candidate fragment sets and their joins):@.";
  Format.printf "%-4s %-28s %-40s %s@." "row" "inputs" "output" "marks";
  List.iteri
    (fun i (inputs, _) ->
      let row = i + 1 in
      let frags = List.map (fun ns -> Fragment.of_nodes ctx ns) inputs in
      let out = Join.fragment_many ctx frags in
      let irrelevant = not (Filter.evaluate ctx q.Query.filter out) in
      let duplicate = row > 7 in
      Format.printf "%-4d %-28s %-40s %s%s@." row
        (String.concat " \xE2\x8B\x88 "
           (List.map (fun f -> Format.asprintf "f%d" (Fragment.root f)) frags))
        (Format.asprintf "%a" Fragment.pp out)
        (if irrelevant then "irrelevant " else "")
        (if duplicate then "duplicate" else ""))
    Paper.table1_rows;
  rule ();

  (* The final answer, via every strategy. *)
  Format.printf "final answer under each strategy:@.";
  List.iter
    (fun strategy ->
      let outcome = Eval.run ~strategy ctx q in
      Format.printf "  %-14s -> %d fragments, %a@."
        (Eval.strategy_name strategy)
        (Frag_set.cardinal outcome.Eval.answers)
        Xfrag_core.Op_stats.pp outcome.Eval.stats)
    Eval.all_strategies;
  rule ();

  let answers = Eval.answers ctx q in
  Format.printf "answer fragments:@.";
  List.iter
    (fun f -> Format.printf "  %a@." (Fragment.pp_labeled ctx) f)
    (Frag_set.elements answers);
  rule ();

  (* Figure 8(b): the fragment of interest, as XML. *)
  let target = Fragment.of_nodes ctx Paper.fragment_of_interest in
  Format.printf "the fragment of interest (Figure 8b), as XML:@.%s@."
    (Xfrag_xml.Xml_printer.node_to_string (Fragment.to_xml ctx target));
  rule ();

  (* What the baselines would have answered (§1's complaint). *)
  Format.printf "smallest-subtree semantics (prior work) answers:@.";
  Frag_set.iter
    (fun f -> Format.printf "  %a@." (Fragment.pp_labeled ctx) f)
    (Xfrag_baselines.Smallest_subtree.answer ctx Paper.query_keywords);
  Format.printf "SLCA nodes: %s@."
    (String.concat ", "
       (List.map (Printf.sprintf "n%d")
          (Xfrag_baselines.Slca.answer ctx Paper.query_keywords)));
  Format.printf "ELCA nodes: %s@."
    (String.concat ", "
       (List.map (Printf.sprintf "n%d")
          (Xfrag_baselines.Elca.answer ctx Paper.query_keywords)));
  Format.printf
    "@.note: none of them produce \xE2\x9F\xA8n16, n17, n18\xE2\x9F\xA9 \
     \xE2\x80\x94 the paper's effectiveness argument.@."
