(* Quickstart: parse an XML document, run a keyword query with a size
   filter, print the answer fragments.

     dune exec examples/quickstart.exe *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval

let document =
  {|<article>
  <section>
    <title>Gardening in small spaces</title>
    <par>Container gardening brings tomato plants to any balcony.</par>
    <par>A tomato plant needs six hours of sunlight.</par>
  </section>
  <section>
    <title>Watering schedules</title>
    <par>Most balcony containers need daily watering in summer.</par>
    <par>Tomato roots rot in standing water.</par>
  </section>
</article>|}

let () =
  (* 1. Build a query context: tree + LCA structure + keyword index. *)
  let ctx = Context.of_xml_string document in
  Format.printf "document: %d element nodes@.@." (Context.size ctx);

  (* 2. A keyword query with an anti-monotonic filter: fragments of at
     most four nodes containing both 'tomato' and 'balcony'. *)
  let query = Query.make ~filter:(Filter.Size_at_most 4) [ "tomato"; "balcony" ] in
  Format.printf "query: %a@.@." Query.pp query;

  (* 3. Evaluate.  The default Auto strategy pushes the filter below the
     joins (Theorem 3) because it is anti-monotonic. *)
  let outcome = Eval.run ctx query in
  Format.printf "%d answers via %s:@."
    (Frag_set.cardinal outcome.Eval.answers)
    (Eval.strategy_name outcome.Eval.strategy_used);
  List.iter
    (fun f ->
      Format.printf "@.%a@." (Fragment.pp_labeled ctx) f;
      Format.printf "%s@." (Xfrag_xml.Xml_printer.node_to_string (Fragment.to_xml ctx f)))
    (Frag_set.elements outcome.Eval.answers);

  (* 4. The operation counters show what the evaluation cost. *)
  Format.printf "@.cost: %a@." Xfrag_core.Op_stats.pp outcome.Eval.stats
