(* xfrag — keyword search over document-centric XML using the algebraic
   query model of Pradhan (VLDB 2006).

   Subcommands: query, stats, explain, baseline, corpus, sql, cache,
   generate. *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Exec = Xfrag_core.Exec
module Corpus = Xfrag_core.Corpus
module Deadline = Xfrag_core.Deadline
module Op_stats = Xfrag_core.Op_stats
module Optimizer = Xfrag_core.Optimizer
module Doctree = Xfrag_doctree.Doctree
module Stats = Xfrag_doctree.Stats
module Ranking = Xfrag_baselines.Ranking
module Trace = Xfrag_obs.Trace
module Export = Xfrag_obs.Export
module Metrics = Xfrag_obs.Metrics
module Clock = Xfrag_obs.Clock
module Json = Xfrag_obs.Json
module Recorder = Xfrag_obs.Recorder
module Reqid = Xfrag_obs.Reqid

open Cmdliner

let setup_logs verbose =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level (Some (if verbose then Logs.Debug else Logs.Warning))

let stem_arg =
  Arg.(
    value & flag
    & info [ "stem" ]
        ~doc:"Index and match keywords through a Porter stemmer (plural and \
              derived forms match their stems).")

(* All document loading goes through Loader: corrupt input comes back
   as [Error], never as an exception, and the [parse.document] fault
   site is honored. *)
let load_tree = Xfrag_doctree.Loader.load_tree

let load_context ?(stem = false) file =
  let options = { Xfrag_doctree.Tokenizer.default_options with stem } in
  Result.map (Context.create ~options) (load_tree file)

(* --- common arguments --- *)

let file_arg =
  Arg.(
    required & pos 0 (some file) None
    & info [] ~docv:"FILE"
        ~doc:"XML document, or a .doctree cache written by $(b,xfrag cache).")

let keywords_arg =
  Arg.(
    non_empty & opt_all string []
    & info [ "k"; "keyword" ] ~docv:"KEYWORD" ~doc:"Query keyword (repeatable).")

let filter_arg =
  Arg.(
    value & opt string ""
    & info [ "f"; "filter" ] ~docv:"FILTER"
        ~doc:
          "Selection predicate: comma-separated conjunction of size<=N, \
           height<=N, span<=N, diameter<=N, width<=N, depth<=N, size>=N, \
           rootlabel=L, labels=a|b, keyword=K, eqdepth=K1/K2; prefix a term \
           with not: to negate.")

let verbose_arg =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Verbose logging.")

let parse_filter s =
  if s = "" then Ok Filter.True
  else Filter.of_string s

let deadline_ms_arg =
  Arg.(
    value & opt int 0
    & info [ "deadline-ms" ] ~docv:"MS"
        ~doc:
          "Abort the evaluation once it has run for $(docv) milliseconds \
           (0 = no deadline).  A corpus search returns the partial \
           results gathered so far; a single-document query fails.")

(* Flags -> Exec.Request, the one assembly path every evaluating
   subcommand shares (mirroring the HTTP endpoints, which share the
   Exec.Request JSON codec): flag semantics cannot drift between
   subcommands, and validation messages come from Exec itself. *)
let request_of_flags ?(strict = false) ?(deadline_ms = 0) ?limit ~keywords
    ~filter_str ~strategy_str () =
  let ( let* ) = Result.bind in
  let* filter = parse_filter filter_str in
  let* strategy = Eval.strategy_of_string strategy_str in
  let* deadline =
    if deadline_ms = 0 then Ok Deadline.none
    else Exec.deadline_of_ms deadline_ms
  in
  let request =
    Exec.Request.default
    |> Exec.Request.with_keywords keywords
    |> Exec.Request.with_filter filter
    |> Exec.Request.with_strategy strategy
    |> Exec.Request.with_strict_leaf strict
    |> Exec.Request.with_deadline deadline
    |> Exec.Request.with_limit limit
  in
  (* Normalize eagerly so an unusable keyword list is a flag error
     (message + exit 1), not a raised exception mid-evaluation. *)
  match Exec.Request.to_query request with
  | _ -> Ok request
  | exception Invalid_argument msg -> Error msg

(* --- query command --- *)

let strategy_arg =
  Arg.(
    value & opt string "auto"
    & info [ "s"; "strategy" ] ~docv:"STRATEGY"
        ~doc:
          "Evaluation strategy: auto, brute-force, naive, set-reduction, \
           pushdown, pushdown-reduction, semi-naive.")

let strict_arg =
  Arg.(
    value & flag
    & info [ "strict-leaf" ]
        ~doc:"Enforce Definition 8 verbatim (keywords must occur in fragment leaves).")

let xml_arg =
  Arg.(value & flag & info [ "xml" ] ~doc:"Print each answer fragment as XML.")

let rank_arg =
  Arg.(value & flag & info [ "rank" ] ~doc:"Order answers by tf-idf score.")

let limit_arg =
  Arg.(value & opt int 0 & info [ "limit" ] ~docv:"N" ~doc:"Print at most N answers (0 = all).")

let show_stats_arg =
  Arg.(value & flag & info [ "show-stats" ] ~doc:"Print operation counters.")

let timing_arg =
  Arg.(
    value & flag
    & info [ "timing" ]
        ~doc:"Print wall-clock elapsed time (total and per phase).")

let explain_analyze_arg =
  Arg.(
    value & flag
    & info [ "explain-analyze" ]
        ~doc:
          "Execute the optimizer's chosen plan and print a per-operator \
           tree annotated with measured wall time, input/output \
           cardinalities, and operation-counter deltas.")

let trace_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record a hierarchical execution trace and write it to $(docv): \
           Chrome trace-event JSON (open in chrome://tracing or Perfetto), \
           or JSON-lines if $(docv) ends in .jsonl.")

let join_cache_arg =
  Arg.(
    value & opt int 0
    & info [ "join-cache" ] ~docv:"SIZE"
        ~doc:
          "Memoize fragment joins in a bounded LRU cache of at most \
           $(docv) entries (0 = disabled, the default).  Answers are \
           unchanged; entries are partitioned per document and admitted \
           per the XFRAG_CACHE_ADMIT policy (all | none | second-touch \
           | a minimum combined operand node count; the default only \
           attaches the cache to pruned strategies, where it always \
           pays).  Hit/miss/eviction/rejected counters appear in \
           $(b,--show-stats), $(b,--metrics-out) and \
           $(b,--explain-analyze) output.")

let metrics_out_arg =
  Arg.(
    value & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Write a metrics-registry snapshot (operation counters, answer \
           counts, latency histogram) as JSON to $(docv).")

(* Build the metrics registry for one query evaluation. *)
let metrics_of_outcome ?cache (outcome : Eval.outcome) =
  let reg = Metrics.create () in
  Metrics.add_assoc ~prefix:"ops." reg (Op_stats.to_assoc outcome.Eval.stats);
  (match cache with
  | None -> ()
  | Some c -> Metrics.add_assoc reg (Xfrag_core.Join_cache.metrics_assoc c));
  Metrics.Gauge.set (Metrics.gauge reg "query.answers")
    (float_of_int (Frag_set.cardinal outcome.Eval.answers));
  Metrics.Histogram.observe
    (Metrics.histogram reg "query.elapsed_ns")
    (float_of_int outcome.Eval.elapsed_ns);
  List.iter
    (fun (phase, ns) ->
      Metrics.Counter.add (Metrics.counter reg ("query.phase_ns." ^ phase)) ns)
    outcome.Eval.phase_ns;
  List.iter
    (fun (k, n) ->
      Metrics.Counter.add (Metrics.counter reg ("query.postings." ^ k)) n)
    outcome.Eval.keyword_node_counts;
  reg

let write_trace trace path =
  let contents =
    if Filename.check_suffix path ".jsonl" then Export.to_jsonl trace
    else Export.to_chrome trace
  in
  Export.write_file path contents

let run_query file keywords filter_str strategy_str strict deadline_ms as_xml
    rank limit show_stats timing explain_analyze trace_out metrics_out
    join_cache stem verbose =
  setup_logs verbose;
  let ( let* ) = Result.bind in
  let result =
    let* ctx = load_context ~stem file in
    let* request =
      request_of_flags ~strict ~deadline_ms ~keywords ~filter_str ~strategy_str
        ()
    in
    let query = Exec.Request.to_query request in
    let cache =
      if join_cache > 0 then
        Some (Xfrag_core.Join_cache.create ~capacity:join_cache ())
      else None
    in
    let request = Exec.Request.with_cache cache request in
    if explain_analyze then begin
      match Xfrag_core.Explain.analyze_request ctx request with
      | report ->
          Format.printf "%a@." Xfrag_core.Explain.pp report;
          Ok ()
      | exception Deadline.Expired -> Error "deadline exceeded"
    end
    else begin
      let trace =
        match trace_out with Some _ -> Trace.create () | None -> Trace.disabled
      in
      let request = Exec.Request.with_trace trace request in
      let* outcome =
        match Eval.exec ctx request with
        | o -> Ok o
        | exception Deadline.Expired -> Error "deadline exceeded"
      in
      let answers =
        if rank then
          List.map (fun s -> s.Ranking.fragment)
            (Ranking.rank ctx ~keywords:query.Query.keywords outcome.Eval.answers)
        else Frag_set.elements outcome.Eval.answers
      in
      let answers = if limit > 0 then List.filteri (fun i _ -> i < limit) answers else answers in
      Format.printf "%d answer fragment(s) [strategy: %s]@."
        (Frag_set.cardinal outcome.Eval.answers)
        (Eval.strategy_name outcome.Eval.strategy_used);
      List.iter
        (fun f ->
          if as_xml then
            Format.printf "@.%s@."
              (Xfrag_xml.Xml_printer.node_to_string (Fragment.to_xml ctx f))
          else Format.printf "  %a@." (Fragment.pp_labeled ctx) f)
        answers;
      if show_stats then Format.printf "ops: %a@." Op_stats.pp outcome.Eval.stats;
      if timing then begin
        Format.printf "elapsed: %a@." Clock.pp_ns outcome.Eval.elapsed_ns;
        List.iter
          (fun (phase, ns) -> Format.printf "  %-12s %a@." phase Clock.pp_ns ns)
          outcome.Eval.phase_ns
      end;
      let* () =
        match trace_out with
        | None -> Ok ()
        | Some path ->
            let* () = write_trace trace path in
            Format.printf "trace written to %s (%d spans)@." path
              (List.length (Trace.spans trace));
            Ok ()
      in
      let* () =
        match metrics_out with
        | None -> Ok ()
        | Some path ->
            let json = Json.to_string (Metrics.to_json (metrics_of_outcome ?cache outcome)) in
            let* () = Export.write_file path (json ^ "\n") in
            Format.printf "metrics written to %s@." path;
            Ok ()
      in
      Ok ()
    end
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "xfrag: %s@." msg;
      1

let query_cmd =
  let doc = "Evaluate a keyword query against an XML document." in
  Cmd.v
    (Cmd.info "query" ~doc)
    Term.(
      const run_query $ file_arg $ keywords_arg $ filter_arg $ strategy_arg
      $ strict_arg $ deadline_ms_arg $ xml_arg $ rank_arg $ limit_arg
      $ show_stats_arg $ timing_arg $ explain_analyze_arg $ trace_out_arg
      $ metrics_out_arg $ join_cache_arg $ stem_arg $ verbose_arg)

(* --- stats command --- *)

let run_stats file verbose =
  setup_logs verbose;
  match load_context file with
  | Error msg ->
      Format.eprintf "xfrag: %s@." msg;
      1
  | Ok ctx ->
      Format.printf "%a@." Stats.pp (Stats.compute ctx.Context.tree);
      Format.printf "vocabulary: %d keywords, %d postings@."
        (Xfrag_doctree.Inverted_index.vocabulary_size ctx.Context.index)
        (Xfrag_doctree.Inverted_index.total_postings ctx.Context.index);
      0

let stats_cmd =
  let doc = "Print document statistics." in
  Cmd.v (Cmd.info "stats" ~doc) Term.(const run_stats $ file_arg $ verbose_arg)

(* --- explain command --- *)

let run_explain file keywords filter_str verbose =
  setup_logs verbose;
  let ( let* ) = Result.bind in
  let result =
    let* ctx = load_context file in
    let* filter = parse_filter filter_str in
    let* query =
      match Query.make ~filter keywords with
      | q -> Ok q
      | exception Invalid_argument msg -> Error msg
    in
    print_string (Optimizer.explain ctx query);
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "xfrag: %s@." msg;
      1

let explain_cmd =
  let doc = "Show the optimizer's plan candidates and chosen evaluation tree." in
  Cmd.v
    (Cmd.info "explain" ~doc)
    Term.(const run_explain $ file_arg $ keywords_arg $ filter_arg $ verbose_arg)

(* --- baseline command --- *)

let method_arg =
  Arg.(
    value & opt string "slca"
    & info [ "m"; "method" ] ~docv:"METHOD" ~doc:"Baseline: slca, elca, or smallest.")

let run_baseline file keywords method_ verbose =
  setup_logs verbose;
  match load_context file with
  | Error msg ->
      Format.eprintf "xfrag: %s@." msg;
      1
  | Ok ctx -> (
      match method_ with
      | "slca" ->
          let nodes = Xfrag_baselines.Slca.answer ctx keywords in
          Format.printf "%d SLCA node(s)@." (List.length nodes);
          List.iter
            (fun n -> Format.printf "  %a@." (Doctree.pp_node ctx.Context.tree) n)
            nodes;
          0
      | "elca" ->
          let nodes = Xfrag_baselines.Elca.answer ctx keywords in
          Format.printf "%d ELCA node(s)@." (List.length nodes);
          List.iter
            (fun n -> Format.printf "  %a@." (Doctree.pp_node ctx.Context.tree) n)
            nodes;
          0
      | "smallest" ->
          let frags = Xfrag_baselines.Smallest_subtree.answer ctx keywords in
          Format.printf "%d smallest-subtree answer(s)@." (Frag_set.cardinal frags);
          Frag_set.iter
            (fun f -> Format.printf "  %a@." (Fragment.pp_labeled ctx) f)
            frags;
          0
      | m ->
          Format.eprintf "xfrag: unknown baseline %S (expected slca, elca, smallest)@." m;
          1)

let baseline_cmd =
  let doc = "Run a comparison baseline (SLCA / ELCA / smallest subtree)." in
  Cmd.v
    (Cmd.info "baseline" ~doc)
    Term.(const run_baseline $ file_arg $ keywords_arg $ method_arg $ verbose_arg)

(* --- corpus command --- *)

let files_arg =
  Arg.(
    non_empty & pos_all file []
    & info [] ~docv:"FILE" ~doc:"XML documents forming the collection.")

let top_arg =
  Arg.(value & opt int 10 & info [ "top" ] ~docv:"N" ~doc:"Show the N best-scoring hits.")

let shards_arg =
  Arg.(
    value & opt int 0
    & info [ "shards" ] ~docv:"N"
        ~doc:
          "Partition the corpus into $(docv) shards evaluated in parallel \
           on the shared domain pool (0 = automatic: $(b,XFRAG_SHARDS) or \
           the pool's parallelism).  Results are identical for every \
           shard count.")

(* Quarantining load: a corrupt (or duplicate-named) FILE costs a
   warning and its own absence from the corpus, never the run.  Only a
   fully-empty corpus is an error. *)
let load_documents files =
  let docs, quarantine = Xfrag_doctree.Loader.load_documents files in
  List.iter
    (fun (q : Xfrag_doctree.Loader.quarantined) ->
      Format.eprintf "xfrag: quarantined %s: %s@."
        q.Xfrag_doctree.Loader.q_file q.Xfrag_doctree.Loader.q_reason)
    quarantine;
  if docs = [] then
    Error
      (Printf.sprintf "no loadable documents (%d quarantined)"
         (List.length quarantine))
  else Ok docs

let load_corpus files =
  Result.map
    (fun docs ->
      List.fold_left
        (fun corpus (name, tree) -> Corpus.add corpus ~name tree)
        Corpus.empty docs)
    (load_documents files)

let run_corpus files keywords filter_str strategy_str strict deadline_ms top
    shards no_routing slow_ms verbose =
  setup_logs verbose;
  let ( let* ) = Result.bind in
  let result =
    let* request =
      request_of_flags ~strict ~deadline_ms
        ?limit:(if top > 0 then Some top else None)
        ~keywords ~filter_str ~strategy_str ()
    in
    (* CLI runs get a request id too: it tags doc_error rows, the wide
       event below, and the SLOW lines, exactly like a served request. *)
    let request = Exec.Request.with_id (Reqid.mint ()) request in
    let query = Exec.Request.to_query request in
    let* corpus = load_corpus files in
    Format.printf "corpus: %d documents, %d nodes@." (Corpus.size corpus)
      (Corpus.total_nodes corpus);
    let scorer ctx f = Ranking.score ctx ~keywords:query.Query.keywords f in
    let bound = Corpus.score_bound corpus ~keywords:query.Query.keywords in
    let* outcome =
      match
        Corpus.run
          ?shards:(if shards > 0 then Some shards else None)
          ?routing:(if no_routing then Some false else None)
          ?bound ~scorer corpus request
      with
      | o -> Ok o
      | exception Invalid_argument msg -> Error msg
    in
    Format.printf "%d answer(s) across the corpus, %d hit(s) shown [%d shard(s), merge %a]@."
      outcome.Corpus.total_answers
      (List.length outcome.Corpus.hits)
      (List.length outcome.Corpus.shard_reports)
      Clock.pp_ns outcome.Corpus.merge_ns;
    (match outcome.Corpus.routing with
    | None -> ()
    | Some ri ->
        Format.printf
          "routing: %d candidate(s), %d routed out, %d bound skip(s)@."
          ri.Corpus.candidates ri.Corpus.routed_out ri.Corpus.bound_skips);
    List.iteri
      (fun i (hit, score) ->
        let ctx = Corpus.context corpus hit.Corpus.doc in
        Format.printf "  #%d %-20s %.2f  %a@." (i + 1) hit.Corpus.doc score
          (Fragment.pp_labeled ctx) hit.Corpus.fragment)
      outcome.Corpus.hits;
    if verbose then
      List.iter
        (fun (sr : Corpus.shard_report) ->
          Format.printf "shard %d: %d doc(s), %d node(s), %a%s@."
            sr.Corpus.shard_index
            (List.length sr.Corpus.shard_docs)
            sr.Corpus.shard_nodes Clock.pp_ns sr.Corpus.shard_elapsed_ns
            (if sr.Corpus.shard_deadline_expired then " (deadline expired)"
             else ""))
        outcome.Corpus.shard_reports;
    (* Contained per-document failures: the hits above are exactly what
       a corpus without these documents would return, so report them
       and still exit 0. *)
    List.iter
      (fun (e : Corpus.doc_error) ->
        Format.printf "document error (contained): %s: %s@." e.Corpus.err_doc
          e.Corpus.err_detail)
      outcome.Corpus.errors;
    if outcome.Corpus.deadline_expired then
      Format.printf "deadline exceeded: results are partial@.";
    Recorder.record ~endpoint:"cli.corpus"
      ~strategy:(Exec.strategy_name request.Exec.Request.strategy)
      ~shards:(List.length outcome.Corpus.shard_reports)
      ~eval_ns:outcome.Corpus.elapsed_ns ~merge_ns:outcome.Corpus.merge_ns
      ~total_ns:outcome.Corpus.elapsed_ns
      ~hits:(List.length outcome.Corpus.hits)
      ~doc_errors:(List.length outcome.Corpus.errors)
      ?routed_out:
        (Option.map (fun r -> r.Corpus.routed_out) outcome.Corpus.routing)
      ?bound_skips:
        (Option.map (fun r -> r.Corpus.bound_skips) outcome.Corpus.routing)
      ~id:request.Exec.Request.id
      ~outcome:(if outcome.Corpus.deadline_expired then "deadline" else "ok")
      ();
    (* --slow-ms: the CLI's slow-query log.  SLOW lines go to stderr so
       scripted stdout (the `  #N` hit lines) stays machine-parseable. *)
    if slow_ms >= 0 then begin
      let threshold_ns = slow_ms * 1_000_000 in
      if outcome.Corpus.elapsed_ns >= threshold_ns then
        Format.eprintf "SLOW request %s: %a total (merge %a, %d shard(s))@."
          request.Exec.Request.id Clock.pp_ns outcome.Corpus.elapsed_ns
          Clock.pp_ns outcome.Corpus.merge_ns
          (List.length outcome.Corpus.shard_reports);
      List.iter
        (fun (sr : Corpus.shard_report) ->
          List.iter
            (fun (dr : Corpus.doc_report) ->
              if dr.Corpus.doc_elapsed_ns >= threshold_ns then
                Format.eprintf "SLOW doc %s: %a (%s, %d answer(s)) [%s]@."
                  dr.Corpus.doc_name Clock.pp_ns dr.Corpus.doc_elapsed_ns
                  (Exec.strategy_name dr.Corpus.doc_strategy)
                  dr.Corpus.doc_answers request.Exec.Request.id)
            sr.Corpus.shard_docs)
        outcome.Corpus.shard_reports
    end;
    Ok ()
  in
  match result with
  | Ok () -> 0
  | Error msg ->
      Format.eprintf "xfrag: %s@." msg;
      1

let no_routing_arg =
  Arg.(
    value & flag
    & info [ "no-routing" ]
        ~doc:
          "Disable index routing and top-k early termination: evaluate \
           the query against every document (the answers are identical \
           either way — this is the escape hatch, like \
           $(b,XFRAG_ROUTING=0)).")

let slow_ms_arg =
  Arg.(
    value & opt int (-1)
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:"Slow-query threshold in milliseconds: requests (and \
              per-document evaluations) at or over it print SLOW lines \
              to stderr.  Negative = disabled.")

let corpus_cmd =
  let doc =
    "Search a collection of XML documents (scored, cross-document), \
     sharded across parallel domains."
  in
  Cmd.v
    (Cmd.info "corpus" ~doc)
    Term.(
      const run_corpus $ files_arg $ keywords_arg $ filter_arg $ strategy_arg
      $ strict_arg $ deadline_ms_arg $ top_arg $ shards_arg $ no_routing_arg
      $ slow_ms_arg $ verbose_arg)

(* --- sql command --- *)

let sql_arg =
  Arg.(
    required & pos 1 (some string) None
    & info [] ~docv:"SQL"
        ~doc:
          "SELECT statement over the relational encoding: tables node(id, \
           parent, depth, last, label) and keyword(word, node).")

let run_sql file sql verbose =
  setup_logs verbose;
  match Xfrag_xml.Xml_parser.parse_file file with
  | exception Xfrag_xml.Xml_error.Parse_error e ->
      Format.eprintf "xfrag: %s: %s@." file (Xfrag_xml.Xml_error.to_string e);
      1
  | exception Sys_error msg ->
      Format.eprintf "xfrag: %s@." msg;
      1
  | doc -> (
      let tree = Doctree.of_xml doc in
      let db = Xfrag_relstore.Mapping.of_doctree tree in
      match Xfrag_relstore.Sql.run db sql with
      | Ok rel ->
          Format.printf "%a@." Xfrag_relstore.Relation.pp rel;
          0
      | Error msg ->
          Format.eprintf "xfrag: %s@." msg;
          1)

let sql_cmd =
  let doc = "Run a SQL query against the document's relational encoding ([13])." in
  Cmd.v (Cmd.info "sql" ~doc) Term.(const run_sql $ file_arg $ sql_arg $ verbose_arg)

(* --- cache command --- *)

let output_arg =
  Arg.(
    value & opt (some string) None
    & info [ "o"; "output" ] ~docv:"OUT"
        ~doc:"Output path (default: input with a .doctree suffix).")

let run_cache file output verbose =
  setup_logs verbose;
  match load_tree file with
  | Error msg ->
      Format.eprintf "xfrag: %s@." msg;
      1
  | Ok tree -> (
      let out =
        match output with
        | Some o -> o
        | None -> Filename.remove_extension file ^ ".doctree"
      in
      match Xfrag_doctree.Codec.save tree out with
      | () ->
          Format.printf "%s: %d nodes cached@." out (Doctree.size tree);
          0
      | exception Sys_error msg ->
          Format.eprintf "xfrag: %s@." msg;
          1)

let cache_cmd =
  let doc =
    "Parse a document once and cache the tree; other commands accept the \
     .doctree file directly."
  in
  Cmd.v (Cmd.info "cache" ~doc) Term.(const run_cache $ file_arg $ output_arg $ verbose_arg)

(* --- generate command --- *)

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"PRNG seed.")

let sections_arg =
  Arg.(value & opt int 5 & info [ "sections" ] ~docv:"N" ~doc:"Top-level sections.")

let vocab_arg =
  Arg.(value & opt int 1000 & info [ "vocabulary" ] ~docv:"N" ~doc:"Vocabulary size.")

let run_generate seed sections vocabulary verbose =
  setup_logs verbose;
  let cfg =
    { Xfrag_workload.Docgen.default with seed; sections; vocabulary_size = vocabulary }
  in
  print_string (Xfrag_workload.Docgen.generate_xml cfg);
  print_newline ();
  0

let generate_cmd =
  let doc = "Emit a synthetic document-centric XML document to stdout." in
  Cmd.v
    (Cmd.info "generate" ~doc)
    Term.(const run_generate $ seed_arg $ sections_arg $ vocab_arg $ verbose_arg)

(* --- serve command --- *)

let host_arg =
  Arg.(
    value & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"HOST" ~doc:"Bind address.")

let port_arg =
  Arg.(
    value & opt int 8080
    & info [ "p"; "port" ] ~docv:"PORT"
        ~doc:"TCP port to listen on (0 = pick an ephemeral port; the \
              chosen one is printed).")

let workers_arg =
  Arg.(
    value & opt int 0
    & info [ "workers" ] ~docv:"N"
        ~doc:"Worker domains evaluating queries in parallel (0 = one per \
              core, capped at 4).")

let queue_arg =
  Arg.(
    value & opt int 64
    & info [ "queue" ] ~docv:"N"
        ~doc:"Admission-control bound: connections waiting for a worker \
              before new ones are shed with 503 Retry-After.")

let request_timeout_arg =
  Arg.(
    value & opt int 0
    & info [ "request-timeout-ms" ] ~docv:"MS"
        ~doc:"Default per-request evaluation deadline; a query running \
              past it aborts with 408 (0 = none).  Requests can override \
              it with ?deadline_ns or a deadline_ms body field.")

let io_timeout_arg =
  Arg.(
    value & opt float 10.0
    & info [ "io-timeout-s" ] ~docv:"S"
        ~doc:"Socket read/write timeout guarding against slow clients.")

let serve_join_cache_arg =
  Arg.(
    value & opt int 4096
    & info [ "join-cache" ] ~docv:"SIZE"
        ~doc:"Shared join-memoization cache, in entries (0 = disabled).  \
              The cache is mutex-striped across worker domains \
              ($(b,--cache-stripes)) with per-document partitions, so \
              /query, /explain and sharded /corpus/query all share it \
              without cross-document invalidation.  Admission follows \
              XFRAG_CACHE_ADMIT (all | none | second-touch | minimum \
              combined operand nodes).")

let cache_stripes_arg =
  Arg.(
    value & opt int 0
    & info [ "cache-stripes" ] ~docv:"N"
        ~doc:"Split the shared join cache into $(docv) mutex-striped \
              segments so worker domains contend only when they touch \
              the same segment (0 = XFRAG_CACHE_STRIPES or 8).")

let serve_slow_ms_arg =
  Arg.(
    value & opt int 0
    & info [ "slow-ms" ] ~docv:"MS"
        ~doc:"Slow-request threshold: requests at or over it mirror \
              their wide event as SLOW lines into the access log, and \
              GET /debug/slow defaults to this threshold (0 = SLOW \
              mirroring off; /debug/slow then defaults to 100 ms).")

let access_log_arg =
  Arg.(
    value & opt (some string) None
    & info [ "access-log" ] ~docv:"FILE"
        ~doc:"Append one structured JSON line per request to FILE \
              (default: stderr).")

let run_serve files host port workers queue request_timeout_ms io_timeout
    join_cache cache_stripes shards slow_ms access_log stem verbose =
  setup_logs verbose;
  let ( let* ) = Result.bind in
  let loaded =
    (* First successfully loaded FILE is the single-document target of
       /query and /explain; every loaded FILE forms the corpus behind
       /corpus/query.  Quarantined files are warned about and skipped —
       the server refuses to start only with nothing to serve. *)
    let* docs = load_documents files in
    let options = { Xfrag_doctree.Tokenizer.default_options with stem } in
    let ctx = Context.create ~options (snd (List.hd docs)) in
    let corpus =
      List.fold_left
        (fun corpus (name, tree) -> Corpus.add corpus ~name tree)
        Corpus.empty docs
    in
    Ok (ctx, corpus)
  in
  match loaded with
  | Error msg ->
      Format.eprintf "xfrag: %s@." msg;
      1
  | Ok (ctx, corpus) ->
      let cache =
        if join_cache > 0 then
          Some
            (Xfrag_core.Join_cache.create ~synchronized:true
               ~capacity:join_cache
               ?stripes:(if cache_stripes > 0 then Some cache_stripes else None)
               ())
        else None
      in
      let default_deadline_ns =
        if request_timeout_ms > 0 then Some (request_timeout_ms * 1_000_000)
        else None
      in
      let access_log_oc =
        match access_log with
        | None -> stderr
        | Some file -> open_out_gen [ Open_append; Open_creat ] 0o644 file
      in
      let router =
        Xfrag_server.Router.create ?cache ?default_deadline_ns ~corpus
          ?shards:(if shards > 0 then Some shards else None)
          ?slow_ms:(if slow_ms > 0 then Some slow_ms else None)
          ~access_log:access_log_oc ctx
      in
      let config =
        {
          Xfrag_server.Server.default_config with
          host;
          port;
          queue_cap = queue;
          io_timeout_s = io_timeout;
          workers =
            (if workers > 0 then workers
             else Xfrag_server.Server.default_config.Xfrag_server.Server.workers);
          default_deadline_ns;
        }
      in
      (match Xfrag_server.Server.start ~config router with
      | exception Unix.Unix_error (err, _, _) ->
          Format.eprintf "xfrag: cannot bind %s:%d: %s@." host port
            (Unix.error_message err);
          1
      | server ->
          Xfrag_server.Server.install_signal_handlers server;
          (* SIGQUIT: dump the flight recorder without stopping — the
             live-incident "what has this server been doing" escape
             hatch (kill -QUIT <pid>). *)
          (try
             Sys.set_signal Sys.sigquit
               (Sys.Signal_handle
                  (fun _ ->
                    if Recorder.enabled () then
                      Recorder.dump ~reason:"SIGQUIT" stderr))
           with Invalid_argument _ | Sys_error _ -> ());
          (* The smoke test and scripts parse this line for the port. *)
          Format.printf "xfrag: listening on %s:%d (%d workers, queue %d)@."
            host
            (Xfrag_server.Server.port server)
            config.Xfrag_server.Server.workers queue;
          Xfrag_server.Server.run server;
          (match access_log with
          | Some _ -> ( try close_out access_log_oc with Sys_error _ -> ())
          | None -> ());
          Format.printf "xfrag: drained, bye@.";
          0)

let serve_cmd =
  let doc =
    "Serve queries over HTTP: POST /query, /explain, and /corpus/query \
     (JSON; the corpus endpoint searches every FILE, sharded across \
     parallel domains, and accepts a JSON array as a batch), GET \
     /healthz and /metrics (Prometheus text format).  The corpus is \
     mutable while serving: PUT/GET/DELETE /corpus/docs/NAME \
     create, inspect, replace, and remove documents (PUT body = XML, \
     parsed with the same quarantine rules as loading), GET \
     /corpus/docs lists the collection, and GET /corpus/stats reports \
     corpus, index, and cache shape; changes are visible to the next \
     query without restart.  A fixed worker pool shares one in-memory \
     index and one join cache; a bounded queue sheds overload with \
     503; per-request deadlines abort runaway evaluations with 408; \
     SIGINT/SIGTERM drain gracefully."
  in
  Cmd.v
    (Cmd.info "serve" ~doc)
    Term.(
      const run_serve $ files_arg $ host_arg $ port_arg $ workers_arg
      $ queue_arg $ request_timeout_arg $ io_timeout_arg
      $ serve_join_cache_arg $ cache_stripes_arg $ shards_arg $ serve_slow_ms_arg
      $ access_log_arg $ stem_arg $ verbose_arg)

let main_cmd =
  let doc = "algebraic keyword search over document-centric XML fragments" in
  Cmd.group
    (Cmd.info "xfrag" ~version:"1.0.0" ~doc)
    [
      query_cmd; stats_cmd; explain_cmd; baseline_cmd; corpus_cmd; sql_cmd;
      cache_cmd; generate_cmd; serve_cmd;
    ]

let () = exit (Cmd.eval' main_cmd)
