(* Benchmark harness: regenerates every table and figure of the paper
   and measures its performance claims.  The paper (VLDB 2006) contains
   no experimental numbers — §4 is a worked example and §3/§5 make
   qualitative claims — so EXPERIMENTS.md pairs each printed table here
   with the corresponding claim.

   Experiments:
     T1  — Table 1 reproduced row by row + strategy timings (§4)
     F3  — fragment-join micro-benchmarks (Figure 3 operations)
     F4  — fragment set reduce: cost and reduction factor (Figure 4, §5)
     E1  — strategy comparison sweep over keyword frequency (§4 claims)
     E2  — filter push-down sweep over β (Theorem 3 claim, §4.3)
     E3  — reduction-factor sweep: path-heavy vs star documents (§4.2)
     E4  — native vs relational backend (§7 / ref [13])
     E5  — effectiveness vs SLCA/ELCA/smallest-subtree (§1, Figure 8)
     C1  — join memoization cache: cached vs uncached per strategy
     S1  — HTTP server load test: qps + tail latency vs concurrency (serve)
     P1  — sharded corpus execution: shard count vs corpus size (§7)
     R1  — corpus index: routed vs full scan, bound-based early termination
     O1  — flight-recorder overhead: /query ns/op, recorder off vs on
     M1  — mutable corpus: incremental retract vs rebuild; mixed R/W load

   Run everything:   dune exec bench/main.exe
   Run a subset:     dune exec bench/main.exe -- t1 e2 …        *)

open Bechamel
open Toolkit
module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Join = Xfrag_core.Join
module Reduce = Xfrag_core.Reduce
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Op_stats = Xfrag_core.Op_stats
module Doctree = Xfrag_doctree.Doctree
module Lca = Xfrag_doctree.Lca
module Docgen = Xfrag_workload.Docgen
module Paper = Xfrag_workload.Paper_doc

(* --- measurement helper ------------------------------------------------ *)

(* One OLS-estimated ns/run for a thunk.  Bechamel runs the thunk until
   the quota expires and regresses time on run count. *)
let time_ns ?(quota = 0.25) name fn =
  let test = Test.make ~name (Staged.stage fn) in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~stabilize:false ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] test in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  Hashtbl.fold
    (fun _ v acc ->
      match Analyze.OLS.estimates v with Some [ x ] -> x | Some _ | None -> acc)
    results Float.nan

let pp_ns ns =
  if Float.is_nan ns then "n/a"
  else if ns < 1e3 then Printf.sprintf "%.0f ns" ns
  else if ns < 1e6 then Printf.sprintf "%.1f us" (ns /. 1e3)
  else if ns < 1e9 then Printf.sprintf "%.2f ms" (ns /. 1e6)
  else Printf.sprintf "%.2f s" (ns /. 1e9)

let header title =
  Printf.printf "\n%s\n%s\n%s\n" (String.make 74 '=') title (String.make 74 '=')

let run_counters f =
  let outcome = f () in
  (outcome.Eval.answers, outcome.Eval.stats)

(* --- machine-readable output -------------------------------------------- *)

module Json = Xfrag_obs.Json

(* Rows accumulated by the whole-query experiments and written to
   BENCH_core.json at exit, so scripts can track regressions without
   scraping the printed tables. *)
let bench_rows : Json.t list ref = ref []

let record ~experiment ~scenario ~strategy ~ns fields =
  bench_rows :=
    Json.Obj
      ([
         ("experiment", Json.String experiment);
         ("scenario", Json.String scenario);
         ("strategy", Json.String strategy);
         ("ns_per_op", Json.Float ns);
         (* The host's parallelism budget: numbers measured on a 2-domain
            container and a 32-domain workstation are not comparable, and
            nothing else in the row says which one produced it. *)
         ("domains", Json.Int (Domain.recommended_domain_count ()));
       ]
      @ fields)
    :: !bench_rows

(* Merge-on-write: a partial run (`bench/main.exe e2`) must replace
   only its own experiments' rows in BENCH_core.json, keyed by the
   "experiment" field — earlier behavior overwrote the whole file, so
   alternating partial runs kept dropping every other experiment's
   history (and re-running appended nothing deterministic). *)
(* The output path is stable regardless of where the harness is invoked
   from: XFRAG_BENCH_OUT wins, else walk up from the cwd to the
   directory holding dune-project (the repo root), falling back to the
   cwd.  Writing relative to the cwd silently scattered history files
   around and lost the committed one. *)
let bench_json_path () =
  match Sys.getenv_opt "XFRAG_BENCH_OUT" with
  | Some p when p <> "" -> p
  | _ ->
      let rec up dir =
        if Sys.file_exists (Filename.concat dir "dune-project") then
          Some (Filename.concat dir "BENCH_core.json")
        else
          let parent = Filename.dirname dir in
          if parent = dir then None else up parent
      in
      Option.value (up (Sys.getcwd ())) ~default:"BENCH_core.json"

let write_bench_json () =
  if !bench_rows <> [] then begin
    let path = bench_json_path () in
    let fresh = List.rev !bench_rows in
    let experiment_of = function
      | Json.Obj fields -> (
          match List.assoc_opt "experiment" fields with
          | Some (Json.String e) -> Some e
          | _ -> None)
      | _ -> None
    in
    let fresh_experiments = List.filter_map experiment_of fresh in
    let kept =
      match
        let ic = open_in_bin path in
        let data = really_input_string ic (in_channel_length ic) in
        close_in ic;
        Json.of_string data
      with
      | Ok (Json.Obj fields) -> (
          match List.assoc_opt "rows" fields with
          | Some (Json.List rows) ->
              List.filter
                (fun row ->
                  match experiment_of row with
                  | Some e -> not (List.mem e fresh_experiments)
                  (* Rows without an experiment tag belong to no run of
                     this harness and must never be dropped — losing
                     them silently erased committed history. *)
                  | None -> true)
                rows
          | _ -> [])
      | Ok _ | Error _ -> []
      | exception Sys_error _ -> []
    in
    let doc = Json.Obj [ ("rows", Json.List (kept @ fresh)) ] in
    let oc = open_out path in
    output_string oc (Json.to_string doc);
    output_char oc '\n';
    close_out oc;
    Printf.printf "\nwrote %s (%d rows: %d kept + %d new)\n" path
      (List.length kept + List.length fresh)
      (List.length kept) (List.length fresh)
  end

(* --- T1: Table 1 -------------------------------------------------------- *)

let t1 () =
  header "T1: Table 1 - the worked example, reproduced (Figure 1 document, par.4)";
  let ctx = Paper.figure1_context () in
  let q = Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords in
  Printf.printf "%-4s %-26s %-44s %s\n" "row" "inputs" "output fragment" "marks";
  List.iteri
    (fun i (inputs, _) ->
      let row = i + 1 in
      let frags = List.map (fun ns -> Fragment.of_nodes ctx ns) inputs in
      let out = Join.fragment_many ctx frags in
      Printf.printf "%-4d %-26s %-44s %s%s\n" row
        (String.concat " JOIN "
           (List.map (fun f -> Printf.sprintf "f%d" (Fragment.root f)) frags))
        (Format.asprintf "%a" Fragment.pp out)
        (if not (Filter.evaluate ctx q.Query.filter out) then "irrelevant " else "")
        (if row > 7 then "duplicate" else ""))
    Paper.table1_rows;
  let answers = Eval.answers ctx q in
  Printf.printf "\nfinal answer (%d fragments): %s\n"
    (Frag_set.cardinal answers)
    (String.concat ", "
       (List.map (Format.asprintf "%a" Fragment.pp) (Frag_set.elements answers)));
  Printf.printf "\n%-14s %-12s %-10s %s\n" "strategy" "time" "joins" "candidates";
  List.iter
    (fun strategy ->
      let answers, stats = run_counters (fun () -> Eval.run ~strategy ctx q) in
      let ns =
        time_ns (Eval.strategy_name strategy) (fun () ->
            ignore (Eval.run ~strategy ctx q))
      in
      record ~experiment:"t1" ~scenario:"figure1 size<=3"
        ~strategy:(Eval.strategy_name strategy) ~ns
        [
          ("joins", Json.Int stats.Op_stats.fragment_joins);
          ("candidates", Json.Int stats.Op_stats.candidates);
          ("answers", Json.Int (Frag_set.cardinal answers));
        ];
      Printf.printf "%-14s %-12s %-10d %d\n"
        (Eval.strategy_name strategy)
        (pp_ns ns) stats.Op_stats.fragment_joins stats.Op_stats.candidates)
    Eval.all_strategies

(* --- F3: join micro-benchmarks ------------------------------------------ *)

let f3 () =
  header "F3: fragment join / pairwise join micro-benchmarks (Figure 3 operations)";
  let cfg = { Docgen.default with seed = 3; sections = 12 } in
  let ctx = Docgen.generate_context cfg in
  let n = Context.size ctx in
  Printf.printf "document: %d nodes\n\n" n;
  let prng = Xfrag_util.Prng.create 99 in
  let random_node () = Xfrag_util.Prng.int prng n in
  let pairs = Array.init 512 (fun _ -> (random_node (), random_node ())) in
  let idx = ref 0 in
  let next_pair () =
    idx := (!idx + 1) land 511;
    pairs.(!idx)
  in
  let rows =
    [
      ( "LCA query (O(1) sparse table)",
        fun () ->
          let a, b = next_pair () in
          ignore (Lca.lca ctx.Context.lca a b) );
      ( "single-node fragment join",
        fun () ->
          let a, b = next_pair () in
          ignore (Join.fragment ctx (Fragment.singleton a) (Fragment.singleton b)) );
      ( "subtree fragment join",
        fun () ->
          let a, b = next_pair () in
          let fa = Fragment.of_sorted_unchecked (Doctree.subtree_nodes ctx.Context.tree a) in
          let fb = Fragment.of_sorted_unchecked (Doctree.subtree_nodes ctx.Context.tree b) in
          ignore (Join.fragment ctx fa fb) );
    ]
  in
  Printf.printf "%-34s %s\n" "operation" "time/op";
  List.iter
    (fun (name, fn) -> Printf.printf "%-34s %s\n" name (pp_ns (time_ns name fn)))
    rows;
  Printf.printf "\npairwise join F JOIN F (single-node sets):\n";
  Printf.printf "%-10s %-12s %s\n" "|F|" "time" "joins";
  List.iter
    (fun size ->
      let nodes = Array.init size (fun _ -> random_node ()) in
      let set =
        Frag_set.of_list (Array.to_list (Array.map Fragment.singleton nodes))
      in
      let stats = Op_stats.create () in
      ignore (Join.pairwise ~stats ctx set set);
      let ns =
        time_ns (Printf.sprintf "pairwise-%d" size) (fun () ->
            ignore (Join.pairwise ctx set set))
      in
      Printf.printf "%-10d %-12s %d\n" (Frag_set.cardinal set) (pp_ns ns)
        stats.Op_stats.fragment_joins)
    [ 4; 8; 16; 32; 64 ];
  (* Sequential vs domain-parallel pairwise join on a larger operand. *)
  let nodes = Array.init 160 (fun _ -> random_node ()) in
  let set = Frag_set.of_list (Array.to_list (Array.map Fragment.singleton nodes)) in
  Printf.printf "\nparallel pairwise join (|F| = %d, %d domains available):\n"
    (Frag_set.cardinal set)
    (Domain.recommended_domain_count ());
  List.iter
    (fun domains ->
      let ns =
        time_ns
          (Printf.sprintf "par-%d" domains)
          (fun () -> ignore (Join.pairwise_parallel ~domains ctx set set))
      in
      Printf.printf "  %d domain(s): %s\n" domains (pp_ns ns))
    [ 1; 2; 4 ]

(* --- F4: fragment set reduce --------------------------------------------- *)

let f4 () =
  header "F4: fragment set reduce - cost and reduction factor (Figure 4, par.5)";
  let ctx4 = Paper.figure4_context () in
  let fig4_set = Frag_set.of_list (List.map Fragment.singleton [ 1; 3; 5; 6; 7 ]) in
  let reduced = Reduce.reduce ctx4 fig4_set in
  Printf.printf "Figure 4: |F| = %d  ->  |reduce(F)| = %d  (RF = %.2f)\n\n"
    (Frag_set.cardinal fig4_set) (Frag_set.cardinal reduced)
    (Reduce.reduction_factor ctx4 fig4_set);
  let ctx = Docgen.generate_context { Docgen.default with seed = 4; sections = 12 } in
  let n = Context.size ctx in
  let prng = Xfrag_util.Prng.create 5 in
  Printf.printf "%-8s %-10s %-8s %-12s %s\n" "|F|" "|reduce|" "RF" "time"
    "subset checks";
  List.iter
    (fun size ->
      let set =
        Frag_set.of_list
          (List.init size (fun _ -> Fragment.singleton (Xfrag_util.Prng.int prng n)))
      in
      let stats = Op_stats.create () in
      let reduced = Reduce.reduce ~stats ctx set in
      let ns =
        time_ns (Printf.sprintf "reduce-%d" size) (fun () ->
            ignore (Reduce.reduce ctx set))
      in
      Printf.printf "%-8d %-10d %-8.2f %-12s %d\n" (Frag_set.cardinal set)
        (Frag_set.cardinal reduced)
        (Reduce.reduction_factor ctx set)
        (pp_ns ns) stats.Op_stats.reduce_subset_checks)
    [ 4; 8; 16; 32; 48 ]

(* --- E1: strategy sweep --------------------------------------------------- *)

let e1 () =
  header
    "E1: strategy comparison over keyword frequency (par.4: brute force is\n\
     impractical; Theorem 2 pipelines scale; pushdown wins with a filter)";
  Printf.printf "query: {needleone, needletwo}, filter size<=4, doc ~190 nodes\n\n";
  Printf.printf "%-12s %-14s %-12s %-10s %-12s %s\n" "postings" "strategy" "time"
    "joins" "candidates" "answers";
  List.iter
    (fun (m1, m2) ->
      let tree =
        Docgen.with_planted_keywords
          { Docgen.default with seed = 100 + m1; sections = 6 }
          ~plant:[ ("needleone", m1); ("needletwo", m2) ]
      in
      let ctx = Context.create tree in
      let q =
        Query.make ~filter:(Filter.Size_at_most 4) [ "needleone"; "needletwo" ]
      in
      List.iter
        (fun strategy ->
          match run_counters (fun () -> Eval.run ~strategy ctx q) with
          | answers, stats ->
              let label =
                Printf.sprintf "%s-%d-%d" (Eval.strategy_name strategy) m1 m2
              in
              let ns =
                time_ns ~quota:0.2 label (fun () -> ignore (Eval.run ~strategy ctx q))
              in
              record ~experiment:"e1"
                ~scenario:(Printf.sprintf "postings %dx%d size<=4" m1 m2)
                ~strategy:(Eval.strategy_name strategy) ~ns
                [
                  ("joins", Json.Int stats.Op_stats.fragment_joins);
                  ("candidates", Json.Int stats.Op_stats.candidates);
                  ("answers", Json.Int (Frag_set.cardinal answers));
                ];
              Printf.printf "%-12s %-14s %-12s %-10d %-12d %d\n"
                (Printf.sprintf "%dx%d" m1 m2)
                (Eval.strategy_name strategy)
                (pp_ns ns) stats.Op_stats.fragment_joins stats.Op_stats.candidates
                (Frag_set.cardinal answers)
          | exception Invalid_argument _ ->
              Printf.printf "%-12s %-14s %-12s (exponential guard)\n"
                (Printf.sprintf "%dx%d" m1 m2)
                (Eval.strategy_name strategy) "-")
        (if m1 * m2 <= 64 then Eval.all_strategies
         else
           [ Eval.Naive_fixpoint; Eval.Set_reduction; Eval.Pushdown;
             Eval.Pushdown_reduction; Eval.Semi_naive ]);
      print_newline ())
    [ (2, 2); (4, 4); (6, 6); (8, 8); (12, 12) ]

(* --- E2: push-down sweep --------------------------------------------------- *)

let e2 () =
  header
    "E2: filter push-down over beta (Theorem 3, par.4.3: selection ahead of\n\
     join avoids unnecessary join computation)";
  let tree =
    Docgen.with_planted_keywords
      { Docgen.default with seed = 17; sections = 8 }
      ~plant:[ ("needleone", 9); ("needletwo", 9) ]
  in
  let ctx = Context.create tree in
  Printf.printf "doc: %d nodes, postings 9x9\n\n" (Context.size ctx);
  Printf.printf "%-8s %-14s %-12s %-10s %-10s %s\n" "beta" "strategy" "time" "joins"
    "pruned" "answers";
  List.iter
    (fun beta ->
      let filter =
        if beta = max_int then Filter.True else Filter.Size_at_most beta
      in
      let q = Query.make ~filter [ "needleone"; "needletwo" ] in
      List.iter
        (fun strategy ->
          let answers, stats = run_counters (fun () -> Eval.run ~strategy ctx q) in
          let label =
            Printf.sprintf "%s-b%d" (Eval.strategy_name strategy)
              (if beta = max_int then 0 else beta)
          in
          let ns = time_ns label (fun () -> ignore (Eval.run ~strategy ctx q)) in
          record ~experiment:"e2"
            ~scenario:
              (Printf.sprintf "postings 9x9 beta=%s"
                 (if beta = max_int then "none" else string_of_int beta))
            ~strategy:(Eval.strategy_name strategy) ~ns
            [
              ("joins", Json.Int stats.Op_stats.fragment_joins);
              ("pruned", Json.Int stats.Op_stats.pruned);
              ("answers", Json.Int (Frag_set.cardinal answers));
            ];
          Printf.printf "%-8s %-14s %-12s %-10d %-10d %d\n"
            (if beta = max_int then "none" else string_of_int beta)
            (Eval.strategy_name strategy)
            (pp_ns ns) stats.Op_stats.fragment_joins stats.Op_stats.pruned
            (Frag_set.cardinal answers))
        [ Eval.Naive_fixpoint; Eval.Pushdown ];
      print_newline ())
    [ 2; 3; 4; 6; 8 ]

(* --- E3: reduction factor sweep -------------------------------------------- *)

let e3 () =
  header
    "E3: set-reduction benefit vs reduction factor (par.4.2: worthwhile when\n\
     the sets reduce by a large factor)";
  (* Chain documents put keyword nodes on each other's root paths (high
     RF); star documents make every keyword node independent (RF 0). *)
  let chain_doc n =
    Doctree.of_specs
      (List.init n (fun id ->
           {
             Doctree.spec_id = id;
             spec_parent = (if id = 0 then -1 else id - 1);
             spec_label = "n";
             spec_text = (if id mod 4 = 0 then "needle" else "");
           }))
  in
  let star_doc n =
    Doctree.of_specs
      (List.init n (fun id ->
           {
             Doctree.spec_id = id;
             spec_parent = (if id = 0 then -1 else 0);
             spec_label = "n";
             spec_text = (if id > 0 && id mod 4 = 0 then "needle" else "");
           }))
  in
  Printf.printf "%-10s %-8s %-8s %-16s %-12s %-12s %s\n" "shape" "|F|" "RF"
    "strategy" "time" "joins" "rounds";
  List.iter
    (fun (shape, tree) ->
      let ctx = Context.create tree in
      let set = Xfrag_core.Selection.keyword ctx "needle" in
      let rf = Reduce.reduction_factor ctx set in
      let strategies =
        [
          ( "naive",
            fun stats s -> Xfrag_core.Fixed_point.naive ?stats ctx s );
          ( "set-reduction",
            fun stats s -> Xfrag_core.Fixed_point.with_reduction_unchecked ?stats ctx s );
        ]
      in
      List.iter
        (fun (name, fixed_point) ->
          let stats = Op_stats.create () in
          ignore (fixed_point (Some stats) set);
          let ns =
            time_ns
              (Printf.sprintf "%s-%s" shape name)
              (fun () -> ignore (fixed_point None set))
          in
          Printf.printf "%-10s %-8d %-8.2f %-16s %-12s %-12d %d\n" shape
            (Frag_set.cardinal set) rf name (pp_ns ns) stats.Op_stats.fragment_joins
            stats.Op_stats.fixpoint_rounds)
        strategies)
    [ ("chain", chain_doc 41); ("star", star_doc 41) ]

(* --- E4: relational backend ------------------------------------------------ *)

let e4 () =
  header
    "E4: native vs relational backend (par.7 / [13]: the model can run on a\n\
     relational platform)";
  let docs =
    [
      ("figure1", Paper.figure1 (), Paper.query_keywords, 3);
      ( "generated",
        Docgen.with_planted_keywords
          { Docgen.default with seed = 23; sections = 6 }
          ~plant:[ ("needleone", 5); ("needletwo", 5) ],
        [ "needleone"; "needletwo" ],
        4 );
    ]
  in
  Printf.printf "%-10s %-12s %-12s %-10s %s\n" "doc" "backend" "time" "answers"
    "rel. queries";
  List.iter
    (fun (name, tree, keywords, beta) ->
      let ctx = Context.create tree in
      let q = Query.make ~filter:(Filter.Size_at_most beta) keywords in
      let native = Eval.answers ~strategy:Eval.Pushdown ctx q in
      let ns_native =
        time_ns (name ^ "-native") (fun () ->
            ignore (Eval.answers ~strategy:Eval.Pushdown ctx q))
      in
      Printf.printf "%-10s %-12s %-12s %-10d %s\n" name "native" (pp_ns ns_native)
        (Frag_set.cardinal native) "-";
      let rel = Xfrag_relstore.Frag_rel.of_doctree tree in
      let answers = Xfrag_relstore.Frag_rel.eval_query ~size_limit:beta rel ~keywords in
      let queries0 = Xfrag_relstore.Frag_rel.queries_issued rel in
      let ns_rel =
        time_ns (name ^ "-relational") (fun () ->
            ignore (Xfrag_relstore.Frag_rel.eval_query ~size_limit:beta rel ~keywords))
      in
      assert (Frag_set.equal native answers);
      Printf.printf "%-10s %-12s %-12s %-10d %d per eval\n" name "relational"
        (pp_ns ns_rel)
        (Frag_set.cardinal answers) queries0;
      (* Set-at-a-time variant: fragment sets live in (fid, node) tables
         and the pairwise join is pure relational algebra. *)
      let tab = Xfrag_relstore.Frag_tables.of_doctree tree in
      let answers_tab =
        Xfrag_relstore.Frag_tables.eval_query ~size_limit:beta tab ~keywords
      in
      assert (Frag_set.equal native answers_tab);
      let ns_tab =
        time_ns (name ^ "-set-at-a-time") (fun () ->
            ignore (Xfrag_relstore.Frag_tables.eval_query ~size_limit:beta tab ~keywords))
      in
      Printf.printf "%-10s %-12s %-12s %-10d %s\n" name "set-at-time" (pp_ns ns_tab)
        (Frag_set.cardinal answers_tab) "-")
    docs

(* --- E5: effectiveness ------------------------------------------------------ *)

let e5 () =
  header
    "E5: effectiveness vs smallest-subtree semantics (par.1, Figures 2 and 8:\n\
     keyword-split patterns and the fragments each semantics retrieves)";
  let module Topics = Xfrag_workload.Topics in
  let module Metrics = Xfrag_baselines.Metrics in
  let seeds = [ 31; 32; 33; 34; 35; 36; 37; 38 ] in
  Printf.printf
    "per pattern: %d generated articles; recall@exact = fraction of trials\n\
     whose intended target fragment is retrieved; P/R/F1 at Jaccard >= 1.0\n\n"
    (List.length seeds);
  Printf.printf "%-20s %-30s %-8s %-7s %-7s %-7s\n" "pattern" "semantics" "recall"
    "P" "R" "F1";
  List.iter
    (fun pattern ->
      let topics = Topics.generate_many ~seeds pattern in
      (* β per pattern = the intended target's size: the loosest filter
         that can still call the answer "restrained". *)
      let beta =
        match Topics.generate ~seed:31 pattern with
        | Some t -> List.length t.Topics.target
        | None -> 3
      in
      let systems =
        [
          ( Printf.sprintf "algebra (beta=%d)" beta,
            fun ctx keywords ->
              Eval.answers ctx (Query.make ~filter:(Filter.Size_at_most beta) keywords) );
          ("SLCA subtrees [20]", fun ctx k -> Xfrag_baselines.Slca.answer_subtrees ctx k);
          ("ELCA subtrees [7]", fun ctx k -> Xfrag_baselines.Elca.answer_subtrees ctx k);
          ( "smallest subtree",
            fun ctx k -> Xfrag_baselines.Smallest_subtree.answer ctx k );
        ]
      in
      List.iter
        (fun (name, retrieve) ->
          let hits = ref 0 in
          let p = ref 0.0 and r = ref 0.0 and f1 = ref 0.0 in
          List.iter
            (fun (t : Topics.topic) ->
              let ctx = Context.create t.Topics.tree in
              let target = Fragment.of_nodes ctx t.Topics.target in
              let retrieved = retrieve ctx t.Topics.keywords in
              if Frag_set.mem target retrieved then incr hits;
              let s =
                Metrics.evaluate ~retrieved ~targets:(Frag_set.singleton target) ()
              in
              p := !p +. s.Metrics.precision;
              r := !r +. s.Metrics.recall;
              f1 := !f1 +. s.Metrics.f1)
            topics;
          let n = float_of_int (List.length topics) in
          Printf.printf "%-20s %-30s %d/%-6d %-7.2f %-7.2f %-7.2f\n"
            (Topics.pattern_name pattern) name !hits (List.length topics) (!p /. n)
            (!r /. n) (!f1 /. n))
        systems;
      print_newline ())
    Topics.all_patterns

(* --- E6: document-size scaling ----------------------------------------------- *)

let e6 () =
  header
    "E6: scaling in document size (index construction and query latency;\n\
     the paper targets 'a very large collection of XML documents', par.7)";
  Printf.printf "%-10s %-14s %-14s %-14s %s\n" "nodes" "parse+build" "ctx (LCA+idx)"
    "query (auto)" "answers";
  List.iter
    (fun sections ->
      (* Grow the vocabulary with the document so per-term frequencies
         stay comparable across scales. *)
      let cfg =
        {
          Docgen.default with
          seed = 1000 + sections;
          sections;
          vocabulary_size = max 1000 (120 * sections);
        }
      in
      let xml = Docgen.generate_xml cfg in
      let tree = Docgen.generate cfg in
      let n = Doctree.size tree in
      let parse_ns =
        time_ns
          (Printf.sprintf "parse-%d" sections)
          (fun () -> ignore (Doctree.of_xml (Xfrag_xml.Xml_parser.parse_string xml)))
      in
      let ctx_ns =
        time_ns (Printf.sprintf "ctx-%d" sections) (fun () -> ignore (Context.create tree))
      in
      let ctx = Context.create tree in
      (* Query two mid-frequency vocabulary terms. *)
      let pick =
        Xfrag_workload.Querygen.pick_keywords ~seed:7
          { Xfrag_workload.Querygen.keyword_count = 2; min_postings = 3; max_postings = 40 }
          ctx
      in
      match pick with
      | None -> Printf.printf "%-10d (no keyword pair in band)\n" n
      | Some keywords ->
          let q = Query.make ~filter:(Filter.Size_at_most 4) keywords in
          let answers = Eval.answers ctx q in
          let query_ns =
            time_ns (Printf.sprintf "query-%d" sections) (fun () ->
                ignore (Eval.answers ctx q))
          in
          Printf.printf "%-10d %-14s %-14s %-14s %d\n" n (pp_ns parse_ns) (pp_ns ctx_ns)
            (pp_ns query_ns) (Frag_set.cardinal answers))
    [ 2; 8; 32; 128; 512 ]

(* --- A1: optimizer ablation --------------------------------------------------- *)

let a1 () =
  header
    "A1 (ablation): does Auto pick a near-best strategy?  (par.5's optimizer\n\
     sketch; regret = Auto time / best manual time)";
  Printf.printf "%-26s %-14s %-12s %-12s %s\n" "workload" "auto chose" "auto time"
    "best manual" "regret";
  let workloads =
    [
      ( "paper doc, size<=3",
        Paper.figure1 (),
        Paper.query_keywords,
        Filter.Size_at_most 3 );
      ( "6x6 postings, size<=4",
        Docgen.with_planted_keywords
          { Docgen.default with seed = 106; sections = 6 }
          ~plant:[ ("needleone", 6); ("needletwo", 6) ],
        [ "needleone"; "needletwo" ],
        Filter.Size_at_most 4 );
      ( "8x8 postings, no AM filter",
        Docgen.with_planted_keywords
          { Docgen.default with seed = 108; sections = 6 }
          ~plant:[ ("needleone", 8); ("needletwo", 8) ],
        [ "needleone"; "needletwo" ],
        Filter.Size_at_least 2 );
      ( "chain-heavy doc, size<=4",
        Doctree.of_specs
          (List.init 40 (fun id ->
               {
                 Doctree.spec_id = id;
                 spec_parent = (if id = 0 then -1 else id - 1);
                 spec_label = "n";
                 spec_text =
                   (if id mod 5 = 0 then "needleone"
                    else if id mod 7 = 0 then "needletwo"
                    else "");
               })),
        [ "needleone"; "needletwo" ],
        Filter.Size_at_most 4 );
    ]
  in
  List.iter
    (fun (name, tree, keywords, filter) ->
      let ctx = Context.create tree in
      let q = Query.make ~filter keywords in
      let auto = Eval.run ctx q in
      let auto_ns = time_ns (name ^ "-auto") (fun () -> ignore (Eval.run ctx q)) in
      let manual =
        List.filter_map
          (fun strategy ->
            match Eval.run ~strategy ctx q with
            | _ ->
                Some
                  ( strategy,
                    time_ns
                      (name ^ "-" ^ Eval.strategy_name strategy)
                      (fun () -> ignore (Eval.run ~strategy ctx q)) )
            | exception Invalid_argument _ -> None)
          Eval.all_strategies
      in
      let best_strategy, best_ns =
        List.fold_left
          (fun ((_, bns) as best) ((_, ns) as cur) -> if ns < bns then cur else best)
          (List.hd manual) (List.tl manual)
      in
      Printf.printf "%-26s %-14s %-12s %-12s %.2fx (best: %s)\n" name
        (Eval.strategy_name auto.Eval.strategy_used)
        (pp_ns auto_ns)
        (pp_ns best_ns)
        (auto_ns /. best_ns)
        (Eval.strategy_name best_strategy))
    workloads

(* --- OBS: tracing overhead ----------------------------------------------------- *)

let obs () =
  header
    "OBS: tracing overhead - semi-naive Eval.run with the no-op tracer vs an\n\
     enabled span recorder (disabled must stay within noise of the seed)";
  let tree =
    Docgen.with_planted_keywords
      { Docgen.default with seed = 77; sections = 8 }
      ~plant:[ ("needleone", 8); ("needletwo", 8) ]
  in
  let ctx = Context.create tree in
  let q = Query.make ~filter:(Filter.Size_at_most 4) [ "needleone"; "needletwo" ] in
  let strategy = Eval.Semi_naive in
  let spans =
    let trace = Xfrag_obs.Trace.create () in
    ignore (Eval.run ~strategy ~trace ctx q);
    List.length (Xfrag_obs.Trace.spans trace)
  in
  let ns_off =
    time_ns ~quota:0.5 "trace-disabled" (fun () -> ignore (Eval.run ~strategy ctx q))
  in
  let ns_on =
    time_ns ~quota:0.5 "trace-enabled" (fun () ->
        ignore (Eval.run ~strategy ~trace:(Xfrag_obs.Trace.create ()) ctx q))
  in
  Printf.printf "query: {needleone, needletwo} 8x8, size<=4, strategy semi-naive\n\n";
  Printf.printf "%-18s %s\n" "tracer" "time/query";
  Printf.printf "%-18s %s\n" "disabled" (pp_ns ns_off);
  Printf.printf "%-18s %s  (%d spans recorded per run)\n" "enabled" (pp_ns ns_on) spans;
  Printf.printf "\nenabled/disabled ratio: %.2fx\n" (ns_on /. ns_off);
  record ~experiment:"obs" ~scenario:"semi-naive 8x8 size<=4" ~strategy:"semi-naive"
    ~ns:ns_off
    [ ("tracing", Json.String "disabled") ];
  record ~experiment:"obs" ~scenario:"semi-naive 8x8 size<=4" ~strategy:"semi-naive"
    ~ns:ns_on
    [ ("tracing", Json.String "enabled"); ("spans", Json.Int spans) ]

(* --- F1: fault-injection overhead --------------------------------------------- *)

module Fault = Xfrag_fault.Fault

let f1 () =
  header
    "F1: fault-injection overhead - Eval.run with every failpoint disarmed\n\
     (production steady state: one atomic load per site) vs one armed but\n\
     never-firing site forcing the locked slow path at every hit";
  let tree =
    Docgen.with_planted_keywords
      { Docgen.default with seed = 77; sections = 8 }
      ~plant:[ ("needleone", 8); ("needletwo", 8) ]
  in
  let ctx = Context.create tree in
  let q = Query.make ~filter:(Filter.Size_at_most 4) [ "needleone"; "needletwo" ] in
  let strategy = Eval.Semi_naive in
  Fault.Failpoint.clear ();
  let hit_disarmed =
    time_ns ~quota:0.25 "hit-disarmed" (fun () ->
        Fault.Failpoint.hit "eval.join")
  in
  let ns_disarmed =
    time_ns ~quota:0.5 "failpoints-disarmed" (fun () ->
        ignore (Eval.run ~strategy ctx q))
  in
  (* A Key trigger whose key is never supplied: every hit takes the lock,
     evaluates the trigger, and declines to fire — the worst case a chaos
     run imposes on sites it is not targeting. *)
  Fault.Failpoint.arm ~trigger:(Fault.Key "\x00never") "bench.unrelated"
    Fault.Raise;
  let hit_armed =
    time_ns ~quota:0.25 "hit-armed-slow-path" (fun () ->
        Fault.Failpoint.hit "eval.join")
  in
  let ns_armed =
    time_ns ~quota:0.5 "failpoints-armed-unrelated" (fun () ->
        ignore (Eval.run ~strategy ctx q))
  in
  Fault.Failpoint.reset ();
  Printf.printf "query: {needleone, needletwo} 8x8, size<=4, strategy semi-naive\n\n";
  Printf.printf "%-24s %-14s %s\n" "failpoints" "time/query" "time/hit";
  Printf.printf "%-24s %-14s %s\n" "disarmed" (pp_ns ns_disarmed)
    (pp_ns hit_disarmed);
  Printf.printf "%-24s %-14s %s\n" "armed (never fires)" (pp_ns ns_armed)
    (pp_ns hit_armed);
  Printf.printf "\narmed/disarmed query ratio: %.2fx\n" (ns_armed /. ns_disarmed);
  record ~experiment:"f1" ~scenario:"semi-naive 8x8 size<=4"
    ~strategy:"semi-naive" ~ns:ns_disarmed
    [
      ("failpoints", Json.String "disarmed");
      ("hit_ns", Json.Float hit_disarmed);
    ];
  record ~experiment:"f1" ~scenario:"semi-naive 8x8 size<=4"
    ~strategy:"semi-naive" ~ns:ns_armed
    [
      ("failpoints", Json.String "armed-unrelated");
      ("hit_ns", Json.Float hit_armed);
    ]

(* --- C1: join memo cache ------------------------------------------------------ *)

module Join_cache = Xfrag_core.Join_cache

let c1 () =
  header
    "C1: join memoization cache - cached vs uncached, every strategy\n\
     (per-document partitions, admission-gated; 'default' uses the\n\
     strategy-aware policy, 'admit-all' forces memoization everywhere)";
  let tree =
    Docgen.with_planted_keywords
      { Docgen.default with seed = 77; sections = 6 }
      ~plant:[ ("needleone", 8); ("needletwo", 8) ]
  in
  let ctx = Context.create tree in
  let q = Query.make ~filter:(Filter.Size_at_most 4) [ "needleone"; "needletwo" ] in
  Printf.printf
    "query: {needleone, needletwo} 8x8, filter size<=4; capacity %d (tiny: 128)\n\n"
    Join_cache.default_capacity;
  Printf.printf "%-14s %-10s %-12s %-8s %-8s %-8s %-9s %-9s %s\n" "strategy"
    "cache" "time" "joins" "hits" "misses" "evicted" "rejected" "answers";
  let scenario = "postings 8x8 size<=4" in
  List.iter
    (fun strategy ->
      let name = Eval.strategy_name strategy in
      let baseline, off_stats = run_counters (fun () -> Eval.run ~strategy ctx q) in
      let ns_off =
        time_ns ~quota:0.2 (name ^ "-off") (fun () ->
            ignore (Eval.run ~strategy ctx q))
      in
      record ~experiment:"c1" ~scenario ~strategy:name ~ns:ns_off
        [
          ("cache", Json.String "off");
          ("joins", Json.Int off_stats.Op_stats.fragment_joins);
          ("answers", Json.Int (Frag_set.cardinal baseline));
        ];
      Printf.printf "%-14s %-10s %-12s %-8d %-8s %-8s %-9s %-9s %d\n" name "off"
        (pp_ns ns_off) off_stats.Op_stats.fragment_joins "-" "-" "-" "-"
        (Frag_set.cardinal baseline);
      List.iter
        (fun (label, capacity, admission) ->
          (* Instrument one cold run for the counters, then time against a
             warm shared cache — the service configuration, where repeated
             queries amortize the memo table. *)
          let make () = Join_cache.create ~capacity ?admission () in
          let cold_cache = make () in
          let answers, stats =
            run_counters (fun () -> Eval.run ~strategy ~cache:cold_cache ctx q)
          in
          assert (Frag_set.equal answers baseline);
          let warm_cache = make () in
          ignore (Eval.run ~strategy ~cache:warm_cache ctx q);
          let ns_on =
            time_ns ~quota:0.2
              (Printf.sprintf "%s-%s" name label)
              (fun () -> ignore (Eval.run ~strategy ~cache:warm_cache ctx q))
          in
          record ~experiment:"c1" ~scenario ~strategy:name ~ns:ns_on
            [
              ("cache", Json.String label);
              ("capacity", Json.Int capacity);
              ("joins", Json.Int stats.Op_stats.fragment_joins);
              ("cache_hits", Json.Int stats.Op_stats.cache_hits);
              ("cache_misses", Json.Int stats.Op_stats.cache_misses);
              ("cache_evictions", Json.Int stats.Op_stats.cache_evictions);
              ("cache_rejected", Json.Int stats.Op_stats.cache_rejected);
              ("answers", Json.Int (Frag_set.cardinal answers));
            ];
          Printf.printf "%-14s %-10s %-12s %-8d %-8d %-8d %-9d %-9d %d\n" name
            label (pp_ns ns_on) stats.Op_stats.fragment_joins
            stats.Op_stats.cache_hits stats.Op_stats.cache_misses
            stats.Op_stats.cache_evictions stats.Op_stats.cache_rejected
            (Frag_set.cardinal answers))
        [
          (* default = strategy-aware admission: unpruned strategies run
             detached (cache == off by design), pruned ones memoize. *)
          ("default", Join_cache.default_capacity, None);
          ( "admit-all",
            Join_cache.default_capacity,
            Some Join_cache.Admission.Admit_all );
          ("tiny", 128, Some Join_cache.Admission.Admit_all);
        ];
      print_newline ())
    Eval.all_strategies

(* --- S1: serve - closed-loop load generator ------------------------------- *)

module Server = Xfrag_server.Server
module Router = Xfrag_server.Router
module Client = Xfrag_server.Client
module Clock = Xfrag_obs.Clock

(* Nearest-rank percentile over a sorted array of latencies (ns). *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then Float.nan
  else sorted.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5)))

let s1 () =
  header
    "S1: xfrag serve - throughput and tail latency under concurrent load\n\
     (closed loop, one connection per request, deadline 500ms;\n\
     p50/p95/p99 from the log-bucketed histogram, interpolated)";
  let ctx = Docgen.generate_context { Docgen.default with seed = 9; sections = 10 } in
  let spec =
    { Xfrag_workload.Querygen.keyword_count = 2; min_postings = 4; max_postings = 40 }
  in
  let queries =
    Xfrag_workload.Querygen.queries ~seed:1 ~count:32
      ~filter:(Filter.Size_at_most 3) spec ctx
  in
  let bodies =
    queries
    |> List.map (fun q ->
           Json.to_string
             (Json.Obj
                [
                  ( "keywords",
                    Json.List
                      (List.map (fun k -> Json.String k) q.Query.keywords) );
                  ("filters", Json.Obj [ ("max_size", Json.Int 3) ]);
                  ("limit", Json.Int 10);
                ]))
    |> Array.of_list
  in
  if Array.length bodies = 0 then
    print_endline "  (vocabulary band produced no queries; skipping)"
  else begin
    Printf.printf "queries: %d distinct, 2 keywords each, size<=3\n\n"
      (Array.length bodies);
    Printf.printf "%-22s %9s %10s %10s %10s %7s %6s %5s\n" "scenario" "qps"
      "p50" "p95" "p99" "ok" "shed" "err";
    List.iter
      (fun (cache_label, mk_cache) ->
        List.iter
          (fun conc ->
            let cache = mk_cache () in
            let router =
              Router.create ?cache ~default_deadline_ns:500_000_000 ctx
            in
            let config = { Server.default_config with port = 0; queue_cap = 64 } in
            let server = Server.start ~config router in
            let accept_d = Domain.spawn (fun () -> Server.run server) in
            let port = Server.port server in
            let budget_ns = 1_200_000_000 in
            let t0 = Clock.monotonic () in
            (* Each client owns its slot in [results]; no shared state
               until after the joins. *)
            let results = Array.make conc ([], 0, 0, 0) in
            let run_client tid =
              let lats = ref [] and ok = ref 0 and shed = ref 0 and err = ref 0 in
              let i = ref tid in
              while Clock.monotonic () - t0 < budget_ns do
                let body = bodies.(!i mod Array.length bodies) in
                incr i;
                let sent = Clock.monotonic () in
                (match
                   Client.once ~host:"127.0.0.1" ~port ~meth:"POST"
                     ~path:"/query" ~body ()
                 with
                | Ok (200, _, _) ->
                    incr ok;
                    lats := float_of_int (Clock.monotonic () - sent) :: !lats
                | Ok (503, _, _) -> incr shed
                | Ok _ | Error _ -> incr err)
              done;
              results.(tid) <- (!lats, !ok, !shed, !err)
            in
            let threads =
              List.init conc (fun tid -> Thread.create run_client tid)
            in
            List.iter Thread.join threads;
            let wall_ns = Clock.monotonic () - t0 in
            Server.stop server;
            Domain.join accept_d;
            (* The same instrument production latencies go through:
               Metrics.Histogram with within-bucket log-linear
               interpolation, instead of exact nearest-rank over the
               raw samples. *)
            let hist =
              Xfrag_obs.Metrics.(histogram (create ()) "s1.lat_ns")
            in
            Array.iter
              (fun (l, _, _, _) ->
                List.iter (Xfrag_obs.Metrics.Histogram.observe hist) l)
              results;
            let sum f = Array.fold_left (fun a r -> a + f r) 0 results in
            let ok = sum (fun (_, o, _, _) -> o) in
            let shed = sum (fun (_, _, s, _) -> s) in
            let err = sum (fun (_, _, _, e) -> e) in
            let qps = float_of_int ok /. (float_of_int wall_ns /. 1e9) in
            let p50 = Xfrag_obs.Metrics.Histogram.quantile hist 0.50 in
            let p95 = Xfrag_obs.Metrics.Histogram.quantile hist 0.95 in
            let p99 = Xfrag_obs.Metrics.Histogram.quantile hist 0.99 in
            let scenario =
              Printf.sprintf "conc=%d cache=%s" conc cache_label
            in
            Printf.printf "%-22s %9.0f %10s %10s %10s %7d %6d %5d\n" scenario
              qps (pp_ns p50) (pp_ns p95) (pp_ns p99) ok shed err;
            record ~experiment:"s1" ~scenario ~strategy:"auto" ~ns:p50
              [
                ("qps", Json.Float qps);
                ("p95_ns", Json.Float p95);
                ("p99_ns", Json.Float p99);
                ("concurrency", Json.Int conc);
                ("cache", Json.String cache_label);
                ("ok", Json.Int ok);
                ("shed", Json.Int shed);
                ("errors", Json.Int err);
                ("wall_ns", Json.Int wall_ns);
              ])
          [ 8; 32; 64 ])
      [
        ("off", fun () -> None);
        (* Single global mutex vs. the default striped lock: same shared
           cache semantics, different contention profile under load. *)
        ( "mutex",
          fun () -> Some (Join_cache.create ~synchronized:true ~stripes:1 ()) );
        ("striped", fun () -> Some (Join_cache.create ~synchronized:true ()));
      ]
  end

(* --- P1: sharded corpus execution ---------------------------------------- *)

module Corpus = Xfrag_core.Corpus
module Exec = Xfrag_core.Exec
module Shard_pool = Xfrag_core.Shard_pool
module Ranking = Xfrag_baselines.Ranking

(* Shard-count sweep over corpus sizes.  Each configuration gets its own
   pool sized shards-1 so the parallelism structure is real; on a
   single-core host the domains time-slice, so "speedup" reports the
   sharding overhead rather than a parallel win (see EXPERIMENTS.md). *)
let p1 () =
  header
    "P1: sharded corpus execution - shard count vs corpus size\n\
     (top-10 scored search, nearest-rank percentiles over repeated runs,\n\
     speedup = p50(1 shard) / p50(n shards))";
  let keywords = [ "shardterm"; "estuary" ] in
  let corpus_of n =
    Corpus.of_documents
      (List.init n (fun i ->
           let cfg = { Docgen.default with seed = 1000 + i; sections = 4 } in
           let plant =
             ("shardterm", 1 + (i mod 4))
             :: (if i mod 3 = 0 then [ ("estuary", 2) ] else [])
           in
           (Printf.sprintf "doc%03d.xml" i, Docgen.with_planted_keywords cfg ~plant)))
  in
  let request =
    Exec.Request.(with_limit (Some 10) (with_keywords keywords default))
  in
  let scorer ctx f = Ranking.score ctx ~keywords f in
  let iterations = 12 in
  Printf.printf "%-24s %10s %10s %12s %8s\n" "scenario" "p50" "p95"
    "merge p50" "speedup";
  List.iter
    (fun docs ->
      let corpus = corpus_of docs in
      let baseline_p50 = ref Float.nan in
      List.iter
        (fun shards ->
          let pool = Shard_pool.create ~domains:(max 0 (shards - 1)) () in
          let elapsed = Array.make iterations 0.0 in
          let merge = Array.make iterations 0.0 in
          for i = 0 to iterations - 1 do
            let o = Corpus.run ~pool ~shards ~scorer corpus request in
            elapsed.(i) <- float_of_int o.Corpus.elapsed_ns;
            merge.(i) <- float_of_int o.Corpus.merge_ns
          done;
          Shard_pool.shutdown pool;
          Array.sort compare elapsed;
          Array.sort compare merge;
          let p50 = percentile elapsed 0.50 in
          let p95 = percentile elapsed 0.95 in
          let merge_p50 = percentile merge 0.50 in
          if shards = 1 then baseline_p50 := p50;
          let speedup = !baseline_p50 /. p50 in
          let scenario = Printf.sprintf "docs=%d shards=%d" docs shards in
          Printf.printf "%-24s %10s %10s %12s %7.2fx\n" scenario (pp_ns p50)
            (pp_ns p95) (pp_ns merge_p50) speedup;
          record ~experiment:"p1" ~scenario ~strategy:"auto" ~ns:p50
            [
              ("p95_ns", Json.Float p95);
              ("merge_p50_ns", Json.Float merge_p50);
              ("docs", Json.Int docs);
              ("shards", Json.Int shards);
              ("speedup_vs_1_shard", Json.Float speedup);
            ])
        [ 1; 2; 4; 8 ])
    [ 8; 32 ]

(* --- R1: index routing and early termination ------------------------------ *)

(* Routed vs full-scan corpus search over a selective query.  One in four
   documents contains the query keyword at all (the rest are routed out by
   the posting-list intersection before any shard is dispatched), and the
   occurrence counts are tiered so most candidates carry a score bound
   strictly below the top-k threshold once the heap fills — those are
   skipped without evaluation.  Answers are asserted identical. *)
let r1 () =
  header
    "R1: corpus index routing + top-k early termination - routed vs full\n\
     scan (selective keyword in 1/4 of documents, tiered occurrence\n\
     counts, top-10; answers asserted bit-identical)";
  let keywords = [ "rarepearl" ] in
  let corpus_of n =
    Corpus.of_documents
      (List.init n (fun i ->
           let cfg = { Docgen.default with seed = 4000 + i; sections = 4 } in
           (* Every 4th doc carries the keyword; every 16th carries it
              three times in a single paragraph, so its one-node answer
              scores 3x idf and owns the top-10 while staying as cheap
              to evaluate as everything else — the sweep then measures
              visit cost, which is what routing and the bound eliminate,
              not the price of the winners (paid by both sides). *)
           let plant =
             if i mod 16 = 0 then [ ("rarepearl rarepearl rarepearl", 1) ]
             else if i mod 4 = 0 then [ ("rarepearl", 1) ]
             else []
           in
           (Printf.sprintf "doc%03d.xml" i, Docgen.with_planted_keywords cfg ~plant)))
  in
  let request =
    Exec.Request.(with_limit (Some 10) (with_keywords keywords default))
  in
  let scorer ctx f = Ranking.score ctx ~keywords f in
  Printf.printf "%-24s %-12s %-12s %12s %12s %12s\n" "scenario" "full scan"
    "routed" "candidates" "routed out" "bound skips";
  List.iter
    (fun docs ->
      let corpus = corpus_of docs in
      let bound = Corpus.score_bound corpus ~keywords in
      assert (bound <> None);
      let full = Corpus.run ~routing:false ~shards:1 ~scorer corpus request in
      let routed =
        Corpus.run ~routing:true ?bound ~shards:1 ~scorer corpus request
      in
      assert (
        List.for_all2
          (fun (h1, s1) (h2, s2) ->
            h1.Corpus.doc = h2.Corpus.doc
            && Fragment.compare h1.Corpus.fragment h2.Corpus.fragment = 0
            && (s1 : float) = s2)
          full.Corpus.hits routed.Corpus.hits);
      let candidates, routed_out, bound_skips =
        match routed.Corpus.routing with
        | Some ri -> (ri.Corpus.candidates, ri.Corpus.routed_out, ri.Corpus.bound_skips)
        | None -> (0, 0, 0)
      in
      let ns_full =
        time_ns
          (Printf.sprintf "full-%d" docs)
          (fun () ->
            ignore (Corpus.run ~routing:false ~shards:1 ~scorer corpus request))
      in
      let ns_routed =
        time_ns
          (Printf.sprintf "routed-%d" docs)
          (fun () ->
            ignore
              (Corpus.run ~routing:true ?bound ~shards:1 ~scorer corpus request))
      in
      let scenario = Printf.sprintf "docs=%d top-10" docs in
      Printf.printf "%-24s %-12s %-12s %12d %12d %12d\n" scenario
        (pp_ns ns_full) (pp_ns ns_routed) candidates routed_out bound_skips;
      record ~experiment:"r1" ~scenario ~strategy:"full-scan" ~ns:ns_full
        [ ("docs", Json.Int docs); ("routing", Json.String "off") ];
      record ~experiment:"r1" ~scenario ~strategy:"routed" ~ns:ns_routed
        [
          ("docs", Json.Int docs);
          ("routing", Json.String "on");
          ("candidates", Json.Int candidates);
          ("routed_out", Json.Int routed_out);
          ("bound_skips", Json.Int bound_skips);
          ("speedup_vs_full", Json.Float (ns_full /. ns_routed));
        ])
    [ 8; 64; 256 ]

(* --- M1: mutable corpus ----------------------------------------------------- *)

(* Two questions the mutable-corpus design hinges on, measured.

   First, maintenance: retracting one document's postings from the
   corpus index incrementally versus rebuilding the index from scratch
   over the survivors (the degradation fallback).  Both sides fold over
   prebuilt per-document inverted indexes, exactly as Corpus.remove and
   its rebuild path do, so the ratio is the real cost of losing
   incrementality.

   Second, interference: a closed-loop HTTP load against /corpus/query
   with writer traffic (PUT/DELETE cycles) mixed in at 0%, 5%, and 30%.
   Readers pin a snapshot and never block on the writer lock, so read
   tail latency should degrade only by the cache/index churn the writes
   cause, not by lock waits. *)
let m1 () =
  header
    "M1: mutable corpus - incremental retract vs full rebuild, and mixed\n\
     read/write HTTP load (reads pin snapshots; writes serialize)";
  let docs_of n =
    List.init n (fun i ->
        let cfg = { Docgen.default with seed = 7000 + i; sections = 4 } in
        ( Printf.sprintf "doc%03d.xml" i,
          Docgen.with_planted_keywords cfg
            ~plant:[ ("shardterm", 1 + (i mod 4)) ] ))
  in
  Printf.printf "index maintenance on one DELETE:\n";
  Printf.printf "%-24s %-14s %-14s %s\n" "scenario" "retract" "rebuild"
    "rebuild/retract";
  List.iter
    (fun n ->
      let docs = docs_of n in
      let corpus = Corpus.of_documents docs in
      let idx =
        match Corpus.index corpus with
        | Some idx -> idx
        | None -> failwith "m1: corpus built without an index"
      in
      let victim = "doc000.xml" in
      let ns_retract =
        time_ns (Printf.sprintf "retract-%d" n) (fun () ->
            ignore (Xfrag_index.Corpus_index.remove_document idx victim))
      in
      let survivors =
        List.filter_map
          (fun (name, tree) ->
            if name = victim then None else Some (name, Context.create tree))
          docs
      in
      let ns_rebuild =
        time_ns (Printf.sprintf "rebuild-%d" n) (fun () ->
            ignore
              (List.fold_left
                 (fun acc (name, ctx) ->
                   Xfrag_index.Corpus_index.add_document acc ~name
                     ctx.Context.index)
                 Xfrag_index.Corpus_index.empty survivors))
      in
      let scenario = Printf.sprintf "docs=%d" n in
      Printf.printf "%-24s %-14s %-14s %.1fx\n" scenario (pp_ns ns_retract)
        (pp_ns ns_rebuild)
        (ns_rebuild /. ns_retract);
      record ~experiment:"m1" ~scenario ~strategy:"incremental-retract"
        ~ns:ns_retract
        [ ("docs", Json.Int n); ("maintenance", Json.String "retract") ];
      record ~experiment:"m1" ~scenario ~strategy:"full-rebuild" ~ns:ns_rebuild
        [ ("docs", Json.Int n); ("maintenance", Json.String "rebuild") ])
    [ 16; 64; 256 ];
  (* Mixed read/write load.  Write share is spread Bresenham-style so a
     5% mix is one write every ~20 requests, not a burst; each client
     cycles PUT then DELETE of its own document so writers never
     conflict on a name and every DELETE finds its document. *)
  let corpus = Corpus.of_documents (docs_of 16) in
  let read_body = {|{"keywords":["shardterm"],"limit":10}|} in
  let put_body = "<doc><sec>shardterm churn churn</sec></doc>" in
  let conc = 8 in
  Printf.printf
    "\nclosed-loop /corpus/query load, %d clients, 16-doc corpus:\n" conc;
  Printf.printf "%-18s %9s %10s %10s %10s %7s %7s %5s\n" "scenario" "read qps"
    "read p50" "read p95" "write p95" "reads" "writes" "err";
  List.iter
    (fun (label, write_pct) ->
      let router =
        Router.create ~corpus ~shards:2 ~default_deadline_ns:500_000_000
          (Paper.figure1_context ())
      in
      let config = { Server.default_config with port = 0; queue_cap = 64 } in
      let server = Server.start ~config router in
      let accept_d = Domain.spawn (fun () -> Server.run server) in
      let port = Server.port server in
      let budget_ns = 1_200_000_000 in
      let t0 = Clock.monotonic () in
      let results = Array.make conc ([], [], 0) in
      let run_client tid =
        let read_lats = ref [] and write_lats = ref [] and err = ref 0 in
        let i = ref 0 and doc_resident = ref false in
        let doc_path = Printf.sprintf "/corpus/docs/mut-%d.xml" tid in
        while Clock.monotonic () - t0 < budget_ns do
          let is_write =
            (!i + 1) * write_pct / 100 > !i * write_pct / 100
          in
          incr i;
          let sent = Clock.monotonic () in
          if is_write then begin
            let outcome =
              if !doc_resident then
                Client.once ~host:"127.0.0.1" ~port ~meth:"DELETE"
                  ~path:doc_path ()
              else
                Client.once ~host:"127.0.0.1" ~port ~meth:"PUT" ~path:doc_path
                  ~body:put_body ()
            in
            match outcome with
            | Ok ((200 | 201), _, _) ->
                doc_resident := not !doc_resident;
                write_lats :=
                  float_of_int (Clock.monotonic () - sent) :: !write_lats
            | Ok _ | Error _ -> incr err
          end
          else
            match
              Client.once ~host:"127.0.0.1" ~port ~meth:"POST"
                ~path:"/corpus/query" ~body:read_body ()
            with
            | Ok (200, _, _) ->
                read_lats :=
                  float_of_int (Clock.monotonic () - sent) :: !read_lats
            | Ok _ | Error _ -> incr err
        done;
        results.(tid) <- (!read_lats, !write_lats, !err)
      in
      let threads = List.init conc (fun tid -> Thread.create run_client tid) in
      List.iter Thread.join threads;
      let wall_ns = Clock.monotonic () - t0 in
      Server.stop server;
      Domain.join accept_d;
      let hist_of sel =
        let h = Xfrag_obs.Metrics.(histogram (create ()) "m1.lat_ns") in
        Array.iter
          (fun r -> List.iter (Xfrag_obs.Metrics.Histogram.observe h) (sel r))
          results;
        h
      in
      let read_hist = hist_of (fun (r, _, _) -> r) in
      let write_hist = hist_of (fun (_, w, _) -> w) in
      let reads =
        Array.fold_left (fun a (r, _, _) -> a + List.length r) 0 results
      in
      let writes =
        Array.fold_left (fun a (_, w, _) -> a + List.length w) 0 results
      in
      let err = Array.fold_left (fun a (_, _, e) -> a + e) 0 results in
      let qps = float_of_int reads /. (float_of_int wall_ns /. 1e9) in
      let read_p50 = Xfrag_obs.Metrics.Histogram.quantile read_hist 0.50 in
      let read_p95 = Xfrag_obs.Metrics.Histogram.quantile read_hist 0.95 in
      let write_p95 =
        if writes = 0 then Float.nan
        else Xfrag_obs.Metrics.Histogram.quantile write_hist 0.95
      in
      Printf.printf "%-18s %9.0f %10s %10s %10s %7d %7d %5d\n" label qps
        (pp_ns read_p50) (pp_ns read_p95) (pp_ns write_p95) reads writes err;
      record ~experiment:"m1"
        ~scenario:(Printf.sprintf "mix=%s conc=%d" label conc)
        ~strategy:"auto" ~ns:read_p50
        [
          ("write_pct", Json.Int write_pct);
          ("qps", Json.Float qps);
          ("p95_ns", Json.Float read_p95);
          ( "write_p95_ns",
            Json.Float (if Float.is_nan write_p95 then 0.0 else write_p95) );
          ("reads", Json.Int reads);
          ("writes", Json.Int writes);
          ("errors", Json.Int err);
          ("concurrency", Json.Int conc);
          ("wall_ns", Json.Int wall_ns);
        ])
    [ ("read-only", 0); ("95/5", 5); ("70/30", 30) ]

(* --- O1: flight recorder overhead ----------------------------------------- *)

(* The always-on claim, measured: the full /query handling path on the
   T1 scenario (Figure 1 document, the paper's query, size<=3), once
   with the recorder disabled (record = one atomic load) and once
   enabled (wide event assembled and written to the ring).  The
   acceptance bar is <= 5% ns/op overhead. *)
let o1 () =
  header
    "O1: flight recorder overhead - /query handling on the T1 scenario\n\
     (recorder off vs on; same router, same request)";
  let router = Router.create (Paper.figure1_context ()) in
  let req =
    {
      Xfrag_server.Http.meth = "POST";
      path = "/query";
      query = [];
      version = "HTTP/1.1";
      headers = [];
      body =
        Json.to_string
          (Json.Obj
             [
               ( "keywords",
                 Json.List
                   (List.map (fun k -> Json.String k) Paper.query_keywords) );
               ("filters", Json.Obj [ ("max_size", Json.Int 3) ]);
             ]);
    }
  in
  let module Recorder = Xfrag_obs.Recorder in
  let was = Recorder.enabled () in
  let measure label enabled =
    Recorder.set_enabled enabled;
    let ns = time_ns label (fun () -> ignore (Router.handle router req)) in
    ns
  in
  let off = measure "recorder off" false in
  let on = measure "recorder on" true in
  Recorder.set_enabled was;
  let overhead_pct = (on -. off) /. off *. 100.0 in
  Printf.printf "%-14s %12s\n" "recorder" "ns/op";
  Printf.printf "%-14s %12s\n" "off" (pp_ns off);
  Printf.printf "%-14s %12s   (overhead %+.1f%%)\n" "on" (pp_ns on) overhead_pct;
  let scenario = "t1 figure1 size<=3 via /query" in
  record ~experiment:"o1" ~scenario ~strategy:"auto" ~ns:off
    [ ("recorder", Json.String "off") ];
  record ~experiment:"o1" ~scenario ~strategy:"auto" ~ns:on
    [
      ("recorder", Json.String "on");
      ("overhead_pct", Json.Float overhead_pct);
    ]

(* --- driver ------------------------------------------------------------------ *)

let experiments =
  [
    ("t1", t1); ("f3", f3); ("f4", f4); ("e1", e1); ("e2", e2); ("e3", e3);
    ("e4", e4); ("e5", e5); ("e6", e6); ("f1", f1); ("c1", c1); ("a1", a1);
    ("obs", obs);
    ("s1", s1); ("p1", p1); ("r1", r1); ("o1", o1); ("m1", m1);
  ]

let () =
  let requested =
    match Array.to_list Sys.argv with
    | _ :: (_ :: _ as names) -> List.map String.lowercase_ascii names
    | _ -> List.map fst experiments
  in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S (known: %s)\n" name
            (String.concat ", " (List.map fst experiments)))
    requested;
  write_bench_json ();
  print_newline ()
