(** The relational encoding of a document tree, after the paper's
    relational-implementation companion ([13]).

    Two tables:
    - [node(id, parent, depth, last, label)] — one row per tree node;
      [last] is the end of the node's pre-order interval, so
      "a is an ancestor of b" is the pure relational predicate
      [a.id < b.id AND b.id <= a.last];
    - [keyword(word, node)] — the inverted index as a relation.

    Hash indexes: [node.id], [node.parent], [keyword.word]. *)

val node_table : string
val keyword_table : string

val node_schema : Schema.t
val keyword_schema : Schema.t

val of_doctree : ?options:Xfrag_doctree.Tokenizer.options -> Xfrag_doctree.Doctree.t -> Database.t

val node_count : Database.t -> int
