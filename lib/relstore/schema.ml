type ty = Tint | Ttext

type t = { columns : (string * ty) array }

let make cols =
  let names = List.map fst cols in
  if List.length (List.sort_uniq String.compare names) <> List.length names then
    invalid_arg "Schema.make: duplicate column names";
  { columns = Array.of_list cols }

let columns t = Array.to_list t.columns

let arity t = Array.length t.columns

let position t name =
  let rec go i =
    if i >= Array.length t.columns then raise Not_found
    else if String.equal (fst t.columns.(i)) name then i
    else go (i + 1)
  in
  go 0

let mem t name = match position t name with _ -> true | exception Not_found -> false

let ty t name = snd t.columns.(position t name)

let concat a b = make (columns a @ columns b)

let rename ~prefix t =
  { columns = Array.map (fun (n, ty) -> (prefix ^ "." ^ n, ty)) t.columns }

let project t names = make (List.map (fun n -> (n, ty t n)) names)

let equal a b = a.columns = b.columns

let pp ppf t =
  Format.fprintf ppf "(%s)"
    (String.concat ", "
       (List.map
          (fun (n, ty) -> n ^ ":" ^ (match ty with Tint -> "int" | Ttext -> "text"))
          (columns t)))
