module Doctree = Xfrag_doctree.Doctree
module Tokenizer = Xfrag_doctree.Tokenizer

let node_table = "node"

let keyword_table = "keyword"

let node_schema =
  Schema.make
    [
      ("id", Schema.Tint);
      ("parent", Schema.Tint);
      ("depth", Schema.Tint);
      ("last", Schema.Tint);
      ("label", Schema.Ttext);
    ]

let keyword_schema = Schema.make [ ("word", Schema.Ttext); ("node", Schema.Tint) ]

let of_doctree ?options tree =
  let db = Database.create () in
  Database.create_table db node_table node_schema;
  Database.create_table db keyword_table keyword_schema;
  Database.create_index db ~table:node_table ~column:"id";
  Database.create_index db ~table:node_table ~column:"parent";
  Database.create_index db ~table:keyword_table ~column:"word";
  Doctree.iter
    (fun n ->
      let parent = match Doctree.parent tree n with None -> -1 | Some p -> p in
      Database.insert db node_table
        [|
          Value.Int n;
          Value.Int parent;
          Value.Int (Doctree.depth tree n);
          Value.Int (n + Doctree.subtree_size tree n - 1);
          Value.Text (Doctree.label tree n);
        |];
      let keywords =
        Tokenizer.keyword_set ?options (Doctree.label tree n ^ " " ^ Doctree.text tree n)
      in
      List.iter
        (fun w -> Database.insert db keyword_table [| Value.Text w; Value.Int n |])
        keywords)
    tree;
  db

let node_count db = Relation.cardinality (Database.table db node_table)
