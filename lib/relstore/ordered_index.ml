type t = {
  column : string;
  keys : int array;  (* sorted *)
  rows : Value.t array array;  (* aligned with keys *)
}

let build rel ~column =
  let pos = Schema.position (Relation.schema rel) column in
  (match Schema.ty (Relation.schema rel) column with
  | Schema.Tint -> ()
  | Schema.Ttext -> invalid_arg "Ordered_index.build: column is not an integer");
  let pairs =
    Relation.fold
      (fun acc row ->
        match row.(pos) with
        | Value.Int k -> (k, row) :: acc
        | Value.Text _ | Value.Null ->
            invalid_arg "Ordered_index.build: non-integer key value")
      [] rel
  in
  (* fold reverses; restore insertion order before the stable sort so
     ties keep it. *)
  let pairs = Array.of_list (List.rev pairs) in
  let order = Array.init (Array.length pairs) Fun.id in
  let cmp i j =
    let c = compare (fst pairs.(i)) (fst pairs.(j)) in
    if c <> 0 then c else compare i j
  in
  Array.sort cmp order;
  {
    column;
    keys = Array.map (fun i -> fst pairs.(i)) order;
    rows = Array.map (fun i -> snd pairs.(i)) order;
  }

let column t = t.column

let cardinality t = Array.length t.keys

(* First position with key >= x. *)
let lower_bound t x =
  let lo = ref 0 and hi = ref (Array.length t.keys) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.keys.(mid) < x then lo := mid + 1 else hi := mid
  done;
  !lo

let range t ~lo ~hi =
  if lo > hi then []
  else begin
    let start = lower_bound t lo in
    let out = ref [] in
    let i = ref start in
    while !i < Array.length t.keys && t.keys.(!i) <= hi do
      out := t.rows.(!i) :: !out;
      incr i
    done;
    List.rev !out
  end

let point t k = range t ~lo:k ~hi:k

let min_key t = if Array.length t.keys = 0 then None else Some t.keys.(0)

let max_key t =
  if Array.length t.keys = 0 then None else Some t.keys.(Array.length t.keys - 1)
