type statement = {
  distinct : bool;
  columns : string list option;
  from : (string * string) list;
  where : Relalg.pred;
  order_by : string list;
  limit : int option;
}

(* --- lexer ------------------------------------------------------------- *)

type token =
  | Ident of string  (** possibly qualified: a.id *)
  | Int_lit of int
  | Str_lit of string
  | Comma
  | Star
  | Lparen
  | Rparen
  | Op of string  (** = <> < <= > >= *)
  | Kw of string  (** upper-cased keyword *)

let keywords =
  [ "SELECT"; "DISTINCT"; "FROM"; "WHERE"; "AND"; "OR"; "NOT"; "ORDER"; "BY"; "LIMIT" ]

exception Lex_error of string

let lex input =
  let n = String.length input in
  let tokens = ref [] in
  let emit t = tokens := t :: !tokens in
  let i = ref 0 in
  let is_ident_char c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '.' -> true
    | _ -> false
  in
  while !i < n do
    let c = input.[!i] in
    if c = ' ' || c = '\t' || c = '\n' || c = '\r' then incr i
    else if c = ',' then begin emit Comma; incr i end
    else if c = '*' then begin emit Star; incr i end
    else if c = '(' then begin emit Lparen; incr i end
    else if c = ')' then begin emit Rparen; incr i end
    else if c = '\'' then begin
      incr i;
      let buf = Buffer.create 16 in
      let closed = ref false in
      while not !closed do
        if !i >= n then raise (Lex_error "unterminated string literal")
        else if input.[!i] = '\'' then
          if !i + 1 < n && input.[!i + 1] = '\'' then begin
            Buffer.add_char buf '\'';
            i := !i + 2
          end
          else begin
            closed := true;
            incr i
          end
        else begin
          Buffer.add_char buf input.[!i];
          incr i
        end
      done;
      emit (Str_lit (Buffer.contents buf))
    end
    else if c = '=' then begin emit (Op "="); incr i end
    else if c = '<' then begin
      if !i + 1 < n && input.[!i + 1] = '=' then begin emit (Op "<="); i := !i + 2 end
      else if !i + 1 < n && input.[!i + 1] = '>' then begin emit (Op "<>"); i := !i + 2 end
      else begin emit (Op "<"); incr i end
    end
    else if c = '>' then begin
      if !i + 1 < n && input.[!i + 1] = '=' then begin emit (Op ">="); i := !i + 2 end
      else begin emit (Op ">"); incr i end
    end
    else if c = '!' && !i + 1 < n && input.[!i + 1] = '=' then begin
      emit (Op "<>");
      i := !i + 2
    end
    else if (c >= '0' && c <= '9') || (c = '-' && !i + 1 < n && input.[!i + 1] >= '0' && input.[!i + 1] <= '9')
    then begin
      let start = !i in
      incr i;
      while !i < n && input.[!i] >= '0' && input.[!i] <= '9' do incr i done;
      emit (Int_lit (int_of_string (String.sub input start (!i - start))))
    end
    else if is_ident_char c then begin
      let start = !i in
      while !i < n && is_ident_char input.[!i] do incr i done;
      let word = String.sub input start (!i - start) in
      let upper = String.uppercase_ascii word in
      if List.mem upper keywords then emit (Kw upper) else emit (Ident word)
    end
    else raise (Lex_error (Printf.sprintf "unexpected character %C" c))
  done;
  List.rev !tokens

(* --- parser ------------------------------------------------------------- *)

exception Parse_error of string

type state = { mutable toks : token list }

let peek st = match st.toks with [] -> None | t :: _ -> Some t

let advance st = match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let expect_kw st kw =
  match peek st with
  | Some (Kw k) when k = kw -> advance st
  | _ -> raise (Parse_error (Printf.sprintf "expected %s" kw))

let accept_kw st kw =
  match peek st with
  | Some (Kw k) when k = kw ->
      advance st;
      true
  | _ -> false

let ident st =
  match peek st with
  | Some (Ident s) ->
      advance st;
      s
  | _ -> raise (Parse_error "expected an identifier")

let rec parse_pred st = parse_or st

and parse_or st =
  let left = parse_and st in
  if accept_kw st "OR" then Relalg.Or (left, parse_or st) else left

and parse_and st =
  let left = parse_unary st in
  if accept_kw st "AND" then Relalg.And (left, parse_and st) else left

and parse_unary st =
  if accept_kw st "NOT" then Relalg.Not (parse_unary st)
  else
    match peek st with
    | Some Lparen ->
        advance st;
        let p = parse_pred st in
        (match peek st with
        | Some Rparen -> advance st
        | _ -> raise (Parse_error "expected ')'"));
        p
    | _ -> parse_comparison st

and parse_expr st =
  match peek st with
  | Some (Ident s) ->
      advance st;
      Relalg.Col s
  | Some (Int_lit v) ->
      advance st;
      Relalg.Const (Value.Int v)
  | Some (Str_lit s) ->
      advance st;
      Relalg.Const (Value.Text s)
  | _ -> raise (Parse_error "expected a column, number, or string")

and parse_comparison st =
  let left = parse_expr st in
  match peek st with
  | Some (Op op) ->
      advance st;
      let right = parse_expr st in
      (match op with
      | "=" -> Relalg.Eq (left, right)
      | "<>" -> Relalg.Neq (left, right)
      | "<" -> Relalg.Lt (left, right)
      | "<=" -> Relalg.Le (left, right)
      | ">" -> Relalg.Lt (right, left)
      | ">=" -> Relalg.Le (right, left)
      | _ -> raise (Parse_error (Printf.sprintf "unknown operator %s" op)))
  | _ -> raise (Parse_error "expected a comparison operator")

let parse_columns st =
  match peek st with
  | Some Star ->
      advance st;
      None
  | _ ->
      let rec go acc =
        let c = ident st in
        match peek st with
        | Some Comma ->
            advance st;
            go (c :: acc)
        | _ -> List.rev (c :: acc)
      in
      Some (go [])

let parse_from st =
  let rec go acc =
    let table = ident st in
    let alias =
      match peek st with
      | Some (Ident a) ->
          advance st;
          a
      | _ -> table
    in
    match peek st with
    | Some Comma ->
        advance st;
        go ((table, alias) :: acc)
    | _ -> List.rev ((table, alias) :: acc)
  in
  go []

let parse s =
  match
    let st = { toks = lex s } in
    expect_kw st "SELECT";
    let distinct = accept_kw st "DISTINCT" in
    let columns = parse_columns st in
    expect_kw st "FROM";
    let from = parse_from st in
    let where = if accept_kw st "WHERE" then parse_pred st else Relalg.True in
    let order_by =
      if accept_kw st "ORDER" then begin
        expect_kw st "BY";
        let rec go acc =
          let c = ident st in
          match peek st with
          | Some Comma ->
              advance st;
              go (c :: acc)
          | _ -> List.rev (c :: acc)
        in
        go []
      end
      else []
    in
    let limit =
      if accept_kw st "LIMIT" then begin
        match peek st with
        | Some (Int_lit v) ->
            advance st;
            Some v
        | _ -> raise (Parse_error "expected a number after LIMIT")
      end
      else None
    in
    (match st.toks with
    | [] -> ()
    | _ -> raise (Parse_error "trailing tokens after the statement"));
    { distinct; columns; from; where; order_by; limit }
  with
  | stmt -> Ok stmt
  | exception Lex_error msg -> Error ("lexical error: " ^ msg)
  | exception Parse_error msg -> Error ("parse error: " ^ msg)

(* --- compiler ------------------------------------------------------------- *)

let alias_of_column col =
  match String.index_opt col '.' with
  | Some i -> Some (String.sub col 0 i)
  | None -> None

(* Aliases referenced by a predicate. *)
let rec pred_aliases = function
  | Relalg.True -> []
  | Relalg.Eq (a, b) | Relalg.Neq (a, b) | Relalg.Lt (a, b) | Relalg.Le (a, b) ->
      expr_aliases a @ expr_aliases b
  | Relalg.And (p, q) | Relalg.Or (p, q) -> pred_aliases p @ pred_aliases q
  | Relalg.Not p -> pred_aliases p

and expr_aliases = function
  | Relalg.Col c -> ( match alias_of_column c with Some a -> [ a ] | None -> [])
  | Relalg.Const _ -> []

let conjuncts pred =
  let rec go acc = function
    | Relalg.And (p, q) -> go (go acc p) q
    | Relalg.True -> acc
    | p -> p :: acc
  in
  List.rev (go [] pred)

let conjoin = function
  | [] -> Relalg.True
  | p :: rest -> List.fold_left (fun acc q -> Relalg.And (acc, q)) p rest

let compile stmt =
  match stmt.from with
  | [] -> Error "FROM list is empty"
  | (t0, a0) :: rest ->
      let parts = conjuncts stmt.where in
      (* Partition the conjuncts: single-alias predicates are pushed to
         their table scan; two-alias equalities become hash-join keys;
         the rest is a final selection. *)
      let local : (string, Relalg.pred list) Hashtbl.t = Hashtbl.create 8 in
      let joins = ref [] in
      let residual = ref [] in
      List.iter
        (fun p ->
          match (p, List.sort_uniq String.compare (pred_aliases p)) with
          | _, [ a ] ->
              Hashtbl.replace local a (p :: Option.value ~default:[] (Hashtbl.find_opt local a))
          | Relalg.Eq (Relalg.Col c1, Relalg.Col c2), [ _; _ ] ->
              joins := (c1, c2) :: !joins
          | _, _ -> residual := p :: !residual)
        parts;
      let scan (table, alias) =
        let base = Relalg.Scan { table; alias } in
        match Hashtbl.find_opt local alias with
        | None | Some [] -> base
        | Some ps -> Relalg.Select (conjoin ps, base)
      in
      let joined_aliases = ref [ a0 ] in
      let plan = ref (scan (t0, a0)) in
      List.iter
        (fun (table, alias) ->
          let right = scan (table, alias) in
          (* Join keys usable now: one side references an alias already
             joined, the other references this new alias. *)
          let usable, later =
            List.partition
              (fun (c1, c2) ->
                let a1 = alias_of_column c1 and a2 = alias_of_column c2 in
                match (a1, a2) with
                | Some a1, Some a2 ->
                    (List.mem a1 !joined_aliases && a2 = alias)
                    || (List.mem a2 !joined_aliases && a1 = alias)
                | _ -> false)
              !joins
          in
          joins := later;
          (if usable = [] then
             plan :=
               Relalg.Nested_loop_join { left = !plan; right; pred = Relalg.True }
           else begin
             let on =
               List.map
                 (fun (c1, c2) ->
                   if alias_of_column c2 = Some alias then (c1, c2) else (c2, c1))
                 usable
             in
             plan := Relalg.Hash_join { left = !plan; right; on }
           end);
          joined_aliases := alias :: !joined_aliases)
        rest;
      (* Unused join conditions (e.g. both sides in the same table pair
         already joined) and residual predicates become a selection. *)
      let leftover_joins =
        List.map (fun (c1, c2) -> Relalg.Eq (Relalg.Col c1, Relalg.Col c2)) !joins
      in
      let final_pred = conjoin (leftover_joins @ List.rev !residual) in
      let plan =
        if final_pred = Relalg.True then !plan else Relalg.Select (final_pred, !plan)
      in
      let plan =
        match stmt.columns with None -> plan | Some cols -> Relalg.Project (cols, plan)
      in
      let plan = if stmt.distinct then Relalg.Distinct plan else plan in
      let plan =
        if stmt.order_by = [] then plan else Relalg.Order_by (stmt.order_by, plan)
      in
      let plan = match stmt.limit with None -> plan | Some n -> Relalg.Limit (n, plan) in
      Ok plan

let run ?(trace = Xfrag_obs.Trace.disabled) db sql =
  let module Trace = Xfrag_obs.Trace in
  let module Json = Xfrag_obs.Json in
  let exec () =
    match parse sql with
    | Error e -> Error e
    | Ok stmt -> (
        match compile stmt with
        | Error e -> Error e
        | Ok plan -> (
            match Relalg.eval db plan with
            | rel -> Ok rel
            | exception Not_found -> Error "unknown table or column"
            | exception Invalid_argument msg -> Error msg))
  in
  if not (Trace.is_enabled trace) then exec ()
  else
    Trace.with_span trace
      ~attrs:[ ("statement", Json.String sql) ]
      "sql"
      (fun () ->
        let result = exec () in
        (match result with
        | Ok rel -> Trace.add_attr trace "rows" (Json.Int (Relation.cardinality rel))
        | Error e -> Trace.add_attr trace "error" (Json.String e));
        result)
