(** Fragment sets as relations — the fully-relational realization of the
    paper's companion design ([13]).

    Where {!Frag_rel} keeps fragments client-side and issues relational
    queries for node navigation, this module stores whole fragment sets
    in tables of shape [(fid, node)] and computes the pairwise fragment
    join with set-at-a-time relational operators: roots via MIN
    aggregation, ancestor chains via an iterated parent join (semi-naive
    transitive closure over temp tables), LCA depths via MAX aggregation
    per fragment pair, and path segments via depth-bounded selections.
    Only fragment-identity bookkeeping (assigning fids, deduplicating
    equal node sets) happens client-side.

    Answers are bit-identical to the native evaluator (tested). *)

type t

val of_doctree : ?options:Xfrag_doctree.Tokenizer.options -> Xfrag_doctree.Doctree.t -> t

val database : t -> Database.t

val fragment_schema : Schema.t
(** [(fid : int, node : int)]. *)

val relation_of_set : Xfrag_core.Frag_set.t -> Relation.t
(** Fragments numbered 0.. in {!Xfrag_core.Frag_set.elements} order. *)

val set_of_relation : Relation.t -> Xfrag_core.Frag_set.t
(** Groups rows by fid.  Node sets are trusted to be connected (they
    come from algebra operations).
    @raise Invalid_argument if the schema is not {!fragment_schema}. *)

val pairwise_join : t -> Xfrag_core.Frag_set.t -> Xfrag_core.Frag_set.t -> Xfrag_core.Frag_set.t
(** F1 ⋈ F2 computed set-at-a-time in the engine. *)

val fixed_point : ?keep:(Xfrag_core.Fragment.t -> bool) -> t -> Xfrag_core.Frag_set.t -> Xfrag_core.Frag_set.t
(** Naive fixed point where every round is a relational pairwise join;
    [keep] prunes between rounds (Theorem 3 push-down). *)

val eval_query : ?size_limit:int -> t -> keywords:string list -> Xfrag_core.Frag_set.t
(** Push-down query evaluation on the set-at-a-time operations. *)
