module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Int_sorted = Xfrag_util.Int_sorted
module Tokenizer = Xfrag_doctree.Tokenizer

type t = { db : Database.t }

let of_doctree ?options tree = { db = Mapping.of_doctree ?options tree }

let database t = t.db

let fragment_schema = Schema.make [ ("fid", Schema.Tint); ("node", Schema.Tint) ]

let relation_of_set set =
  let rel = Relation.create fragment_schema in
  List.iteri
    (fun fid f ->
      Int_sorted.iter
        (fun node -> Relation.insert rel [| Value.Int fid; Value.Int node |])
        (Fragment.nodes f))
    (Frag_set.elements set);
  rel

let set_of_relation rel =
  if not (Schema.equal (Relation.schema rel) fragment_schema) then
    invalid_arg "Frag_tables.set_of_relation: wrong schema";
  let groups : (int, int list ref) Hashtbl.t = Hashtbl.create 64 in
  Relation.iter
    (fun row ->
      let fid = Value.to_int row.(0) and node = Value.to_int row.(1) in
      match Hashtbl.find_opt groups fid with
      | Some l -> l := node :: !l
      | None -> Hashtbl.add groups fid (ref [ node ]))
    rel;
  Frag_set.of_list
    (Hashtbl.fold
       (fun _ nodes acc ->
         Fragment.of_sorted_unchecked (Int_sorted.of_list !nodes) :: acc)
       groups [])

(* Plan helpers. *)
let scan table alias = Relalg.Scan { table; alias }

let col c = Relalg.Col c

let put t name rel = Database.put_table t.db name rel

let run t plan = Relalg.eval t.db plan

(* Ancestor-or-self closure of every node in tmp_roots(root): iterated
   parent joins until the row count stabilizes (semi-naive would track a
   delta; the naive loop keeps the plans readable).  Leaves
   tmp_anc(root, a) and tmp_ancd(root, a, d) behind. *)
let materialize_ancestors t =
  (* seed: (root, root) — a self-join of the distinct roots on equality
     duplicates the column. *)
  let seed =
    Relalg.Rename
      ( [ "root"; "a" ],
        Relalg.Hash_join
          {
            left = scan "tmp_roots" "r1";
            right = scan "tmp_roots" "r2";
            on = [ ("r1.root", "r2.root") ];
          } )
  in
  put t "tmp_anc" (run t seed);
  let rec loop previous_count =
    let step =
      Relalg.Rename
        ( [ "root"; "a" ],
          Relalg.Project
            ( [ "anc.root"; "n.parent" ],
              Relalg.Select
                ( Relalg.Le (Relalg.Const (Value.Int 0), col "n.parent"),
                  Relalg.Hash_join
                    {
                      left = scan "tmp_anc" "anc";
                      right = scan Mapping.node_table "n";
                      on = [ ("anc.a", "n.id") ];
                    } ) ) )
    in
    let next =
      run t
        (Relalg.Distinct
           (Relalg.Union (Relalg.Rename ([ "root"; "a" ], scan "tmp_anc" "anc"), step)))
    in
    put t "tmp_anc" next;
    let count = Relation.cardinality next in
    if count > previous_count then loop count
  in
  loop (Relation.cardinality (Database.table t.db "tmp_anc"));
  let with_depth =
    Relalg.Rename
      ( [ "root"; "a"; "d" ],
        Relalg.Project
          ( [ "anc.root"; "anc.a"; "n.depth" ],
            Relalg.Hash_join
              {
                left = scan "tmp_anc" "anc";
                right = scan Mapping.node_table "n";
                on = [ ("anc.a", "n.id") ];
              } ) )
  in
  put t "tmp_ancd" (run t with_depth)

let cleanup t =
  List.iter (Database.drop_table t.db)
    [
      "tmp_f1"; "tmp_f2"; "tmp_roots1"; "tmp_roots2"; "tmp_roots"; "tmp_anc";
      "tmp_ancd"; "tmp_pairs"; "tmp_lca";
    ]

let pairwise_join t s1 s2 =
  if Frag_set.is_empty s1 || Frag_set.is_empty s2 then (Frag_set.empty ())
  else begin
    put t "tmp_f1" (relation_of_set s1);
    put t "tmp_f2" (relation_of_set s2);
    (* Fragment roots: with pre-order ids the root is MIN(node). *)
    let roots table alias =
      Relalg.Rename
        ( [ "fid"; "root" ],
          Relalg.Group_by
            {
              keys = [ alias ^ ".fid" ];
              aggregates = [ (Relalg.Min, alias ^ ".node", "root") ];
              input = scan table alias;
            } )
    in
    put t "tmp_roots1" (run t (roots "tmp_f1" "f1"));
    put t "tmp_roots2" (run t (roots "tmp_f2" "f2"));
    put t "tmp_roots"
      (run t
         (Relalg.Distinct
            (Relalg.Union
               ( Relalg.Project ([ "root" ], Relalg.Rename ([ "fid"; "root" ], scan "tmp_roots1" "r")),
                 Relalg.Project ([ "root" ], Relalg.Rename ([ "fid"; "root" ], scan "tmp_roots2" "r")) ))));
    materialize_ancestors t;
    (* All fragment pairs with their roots. *)
    put t "tmp_pairs"
      (run t
         (Relalg.Rename
            ( [ "fid1"; "root1"; "fid2"; "root2" ],
              Relalg.Nested_loop_join
                {
                  left = scan "tmp_roots1" "p1";
                  right = scan "tmp_roots2" "p2";
                  pred = Relalg.True;
                } )));
    (* LCA depth per pair: deepest common ancestor-or-self. *)
    put t "tmp_lca"
      (run t
         (Relalg.Rename
            ( [ "fid1"; "fid2"; "root1"; "root2"; "lcad" ],
              Relalg.Group_by
                {
                  keys = [ "p.fid1"; "p.fid2"; "p.root1"; "p.root2" ];
                  aggregates = [ (Relalg.Max, "a1.d", "lcad") ];
                  input =
                    Relalg.Hash_join
                      {
                        left =
                          Relalg.Hash_join
                            {
                              left = scan "tmp_pairs" "p";
                              right = scan "tmp_ancd" "a1";
                              on = [ ("p.root1", "a1.root") ];
                            };
                        right = scan "tmp_ancd" "a2";
                        on = [ ("p.root2", "a2.root"); ("a1.a", "a2.a") ];
                      };
                } )));
    (* Path segments: ancestors of each root at depth >= the pair's LCA
       depth are exactly the root-to-LCA chains. *)
    let path_side root_col =
      Relalg.Rename
        ( [ "fid1"; "fid2"; "node" ],
          Relalg.Project
            ( [ "l.fid1"; "l.fid2"; "a.a" ],
              Relalg.Select
                ( Relalg.Le (col "l.lcad", col "a.d"),
                  Relalg.Hash_join
                    {
                      left = scan "tmp_lca" "l";
                      right = scan "tmp_ancd" "a";
                      on = [ ("l." ^ root_col, "a.root") ];
                    } ) ) )
    in
    (* Member nodes of both input fragments, per pair. *)
    let members table fid_col =
      Relalg.Rename
        ( [ "fid1"; "fid2"; "node" ],
          Relalg.Project
            ( [ "p.fid1"; "p.fid2"; "f.node" ],
              Relalg.Hash_join
                {
                  left = scan "tmp_pairs" "p";
                  right = scan table "f";
                  on = [ ("p." ^ fid_col, "f.fid") ];
                } ) )
    in
    let result =
      run t
        (Relalg.Distinct
           (Relalg.Union
              ( Relalg.Union (path_side "root1", path_side "root2"),
                Relalg.Union (members "tmp_f1" "fid1", members "tmp_f2" "fid2") )))
    in
    cleanup t;
    (* Client-side bookkeeping: renumber (fid1, fid2) pairs and collapse
       equal node sets. *)
    let groups : (int * int, int list ref) Hashtbl.t = Hashtbl.create 64 in
    Relation.iter
      (fun row ->
        let key = (Value.to_int row.(0), Value.to_int row.(1)) in
        let node = Value.to_int row.(2) in
        match Hashtbl.find_opt groups key with
        | Some l -> l := node :: !l
        | None -> Hashtbl.add groups key (ref [ node ]))
      result;
    Frag_set.of_list
      (Hashtbl.fold
         (fun _ nodes acc ->
           Fragment.of_sorted_unchecked (Int_sorted.of_list !nodes) :: acc)
         groups [])
  end

let fixed_point ?(keep = fun _ -> true) t set =
  let seed = Frag_set.filter keep set in
  if Frag_set.is_empty seed then seed
  else begin
    let rec go acc =
      let next = Frag_set.filter keep (pairwise_join t acc seed) in
      if Frag_set.cardinal next = Frag_set.cardinal acc then acc else go next
    in
    go seed
  end

let postings t word =
  let rel =
    run t
      (Relalg.Project
         ( [ "k.node" ],
           Relalg.Index_lookup
             {
               table = Mapping.keyword_table;
               alias = "k";
               column = "word";
               key = Value.Text (Tokenizer.normalize word);
             } ))
  in
  Int_sorted.of_list (List.map Value.to_int (Relation.column_values rel "k.node"))

let eval_query ?size_limit t ~keywords =
  let keep f =
    match size_limit with None -> true | Some beta -> Fragment.size f <= beta
  in
  let sets = List.map (fun k -> Frag_set.of_nodes (postings t k)) keywords in
  if sets = [] || List.exists Frag_set.is_empty sets then (Frag_set.empty ())
  else begin
    let fps = List.map (fun s -> fixed_point ~keep t s) sets in
    match fps with
    | [] -> (Frag_set.empty ())
    | fp :: rest ->
        List.fold_left
          (fun acc s -> Frag_set.filter keep (pairwise_join t acc s))
          fp rest
  end
