(** A named collection of base tables with optional hash indexes. *)

type t

val create : unit -> t

val create_table : t -> string -> Schema.t -> unit
(** @raise Invalid_argument if the table already exists. *)

val put_table : t -> string -> Relation.t -> unit
(** Bind (or rebind) a name to a materialized relation — the engine's
    [CREATE OR REPLACE TEMP TABLE … AS].  Existing indexes on the old
    binding are dropped. *)

val drop_table : t -> string -> unit
(** No-op if absent. *)

val table : t -> string -> Relation.t
(** @raise Not_found for an unknown table. *)

val table_names : t -> string list

val insert : t -> string -> Value.t array -> unit

val create_index : t -> table:string -> column:string -> unit
(** Build (or rebuild) a hash index.  Indexes built before bulk insertion
    are maintained incrementally by {!insert}. *)

val index_lookup : t -> table:string -> column:string -> Value.t -> Value.t array list
(** Matching rows via the index.
    @raise Not_found if no index exists on that column. *)

val has_index : t -> table:string -> column:string -> bool
