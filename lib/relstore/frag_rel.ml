module Int_sorted = Xfrag_util.Int_sorted
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Tokenizer = Xfrag_doctree.Tokenizer
module Trace = Xfrag_obs.Trace
module Json = Xfrag_obs.Json

type t = { db : Database.t; mutable queries : int }

let of_doctree ?options tree = { db = Mapping.of_doctree ?options tree; queries = 0 }

let database t = t.db

let queries_issued t = t.queries

let run t plan =
  t.queries <- t.queries + 1;
  Relalg.eval t.db plan

let postings t word =
  let rel =
    run t
      (Relalg.Project
         ( [ "k.node" ],
           Relalg.Index_lookup
             {
               table = Mapping.keyword_table;
               alias = "k";
               column = "word";
               key = Value.Text (Tokenizer.normalize word);
             } ))
  in
  Int_sorted.of_list (List.map Value.to_int (Relation.column_values rel "k.node"))

let node_row t id =
  let rel =
    run t
      (Relalg.Index_lookup
         { table = Mapping.node_table; alias = "n"; column = "id"; key = Value.Int id })
  in
  match Relation.rows rel with
  | [ row ] -> row
  | [] -> invalid_arg (Printf.sprintf "Frag_rel: unknown node %d" id)
  | _ -> invalid_arg (Printf.sprintf "Frag_rel: duplicate node id %d" id)

let parent t id =
  let row = node_row t id in
  let p = Value.to_int row.(Schema.position Mapping.node_schema "parent") in
  if p < 0 then None else Some p

let depth t id =
  let row = node_row t id in
  Value.to_int row.(Schema.position Mapping.node_schema "depth")

(* Depth-aligned ascent: raise the deeper endpoint until depths match,
   then raise both until they meet.  Each parent lookup is a relational
   index query. *)
let path t a b =
  let parent_exn n =
    match parent t n with
    | Some p -> p
    | None -> invalid_arg "Frag_rel.path: walked past the root"
  in
  let rec lift n k acc = if k = 0 then (n, acc) else lift (parent_exn n) (k - 1) (n :: acc) in
  let da = depth t a and db_ = depth t b in
  let up_a, up_b = (max 0 (da - db_), max 0 (db_ - da)) in
  let a', trail_a = lift a up_a [] in
  let b', trail_b = lift b up_b [] in
  let rec meet x y trail_x trail_y =
    if x = y then (x, trail_x, trail_y)
    else meet (parent_exn x) (parent_exn y) (x :: trail_x) (y :: trail_y)
  in
  let lca, trail_a', trail_b' = meet a' b' (List.rev trail_a) (List.rev trail_b) in
  (* trail lists hold the nodes strictly below the LCA on each side. *)
  List.rev trail_a' @ [ lca ] @ trail_b'

let join_fragments t f1 f2 =
  let r1 = Fragment.root f1 and r2 = Fragment.root f2 in
  if r1 = r2 then
    Fragment.of_sorted_unchecked (Int_sorted.union (Fragment.nodes f1) (Fragment.nodes f2))
  else
    Fragment.of_sorted_unchecked
      (Int_sorted.union
         (Int_sorted.union (Fragment.nodes f1) (Fragment.nodes f2))
         (Int_sorted.of_list (path t r1 r2)))

(* Wrap an operation whose result is a fragment set in a span that also
   records how many relational plans it issued. *)
let traced_op t trace name attrs f =
  if not (Trace.is_enabled trace) then f ()
  else
    Trace.with_span trace ~attrs name (fun () ->
        let q0 = t.queries in
        let out = f () in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        Trace.add_attr trace "rel_queries" (Json.Int (t.queries - q0));
        out)

let pairwise_filtered ?(trace = Trace.disabled) t ~keep s1 s2 =
  traced_op t trace "rel.pairwise-join"
    [
      ("left", Json.Int (Frag_set.cardinal s1));
      ("right", Json.Int (Frag_set.cardinal s2));
    ]
    (fun () ->
      let out = Frag_set.Builder.create () in
      Frag_set.iter
        (fun f1 ->
          Frag_set.iter
            (fun f2 ->
              let f = join_fragments t f1 f2 in
              if keep f then ignore (Frag_set.Builder.add out f))
            s2)
        s1;
      Frag_set.Builder.freeze out)

let fixed_point_filtered ?(trace = Trace.disabled) t ~keep seed =
  let seed = Frag_set.filter keep seed in
  if Frag_set.is_empty seed then seed
  else
    traced_op t trace "rel.fixed-point"
      [ ("seed", Json.Int (Frag_set.cardinal seed)) ]
      (fun () ->
        let rec go acc =
          let next = pairwise_filtered ~trace t ~keep acc seed in
          if Frag_set.cardinal next = Frag_set.cardinal acc then acc else go next
        in
        go seed)

let eval_query ?size_limit ?(trace = Trace.disabled) t ~keywords =
  let keep f =
    match size_limit with None -> true | Some beta -> Fragment.size f <= beta
  in
  traced_op t trace "rel.query"
    [ ("keywords", Json.String (String.concat " " keywords)) ]
    (fun () ->
      let sets =
        List.map
          (fun k ->
            traced_op t trace "rel.postings"
              [ ("keyword", Json.String k) ]
              (fun () -> Frag_set.of_nodes (postings t k)))
          keywords
      in
      if sets = [] || List.exists Frag_set.is_empty sets then (Frag_set.empty ())
      else begin
        let fps = List.map (fun s -> fixed_point_filtered ~trace t ~keep s) sets in
        match fps with
        | [] -> (Frag_set.empty ())
        | fp :: rest -> List.fold_left (pairwise_filtered ~trace t ~keep) fp rest
      end)
