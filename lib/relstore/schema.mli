(** Relation schemas: ordered, named, typed columns. *)

type ty = Tint | Ttext

type t

val make : (string * ty) list -> t
(** @raise Invalid_argument on duplicate column names. *)

val columns : t -> (string * ty) list

val arity : t -> int

val position : t -> string -> int
(** @raise Not_found if the column does not exist. *)

val mem : t -> string -> bool

val ty : t -> string -> ty

val concat : t -> t -> t
(** Schema of a join result.
    @raise Invalid_argument on a column-name clash (rename first). *)

val rename : prefix:string -> t -> t
(** Prefix every column name with ["prefix."]. *)

val project : t -> string list -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
