type t = { schema : Schema.t; mutable rows : Value.t array list; mutable count : int }

let create schema = { schema; rows = []; count = 0 }

let check_arity t row =
  if Array.length row <> Schema.arity t.schema then
    invalid_arg
      (Printf.sprintf "Relation: row arity %d does not match schema arity %d"
         (Array.length row) (Schema.arity t.schema))

let insert t row =
  check_arity t row;
  t.rows <- row :: t.rows;
  t.count <- t.count + 1

let of_rows schema rows =
  let t = create schema in
  List.iter (insert t) rows;
  t.rows <- List.rev t.rows;
  t

let schema t = t.schema

let cardinality t = t.count

let rows t = t.rows

let iter f t = List.iter f t.rows

let fold f init t = List.fold_left f init t.rows

let column_values t name =
  let i = Schema.position t.schema name in
  List.map (fun row -> row.(i)) t.rows

let pp ppf t =
  Format.fprintf ppf "@[<v>%a@," Schema.pp t.schema;
  iter
    (fun row ->
      Format.fprintf ppf "| ";
      Array.iter (fun v -> Format.fprintf ppf "%a | " Value.pp v) row;
      Format.fprintf ppf "@,")
    t;
  Format.fprintf ppf "(%d rows)@]" t.count
