(** A small SQL front-end over the mini relational engine.

    The paper's relational companion ([13]) expresses the tree encoding
    as SQL over node/keyword tables; this module provides exactly enough
    SQL to write those queries by hand (the CLI exposes it as
    [xfrag sql]):

    {v
    SELECT [DISTINCT] cols | *
    FROM table alias [, table alias]*
    [WHERE predicate]
    [ORDER BY col [, col]*]
    [LIMIT n]
    v}

    Columns are alias-qualified ([a.id]).  Predicates combine [=], [<>],
    [<], [<=], [>], [>=] over columns, integer literals, and
    single-quoted strings with [AND], [OR], [NOT], and parentheses.

    The compiler plans cross products as hash joins when the predicate
    supplies cross-table equality conditions, pushes single-table
    conjuncts below the join, and leaves the rest as a selection. *)

type statement = {
  distinct : bool;
  columns : string list option;  (** [None] = [SELECT *] *)
  from : (string * string) list;  (** (table, alias), in FROM order *)
  where : Relalg.pred;
  order_by : string list;
  limit : int option;
}

val parse : string -> (statement, string) result

val compile : statement -> (Relalg.plan, string) result
(** Plans the statement.  Fails on an empty FROM list (the parser never
    produces one) or other structural problems. *)

val run :
  ?trace:Xfrag_obs.Trace.t -> Database.t -> string -> (Relation.t, string) result
(** [parse] + [compile] + {!Relalg.eval}, catching unknown
    table/column errors as [Error].  With an enabled [trace], each call
    records an [sql] span carrying the statement and the result row
    count (or the error). *)
