(** Materialized relations: a schema plus a bag of tuples.

    Tuples are value arrays positionally aligned with the schema.  The
    engine is bag-semantics by default; {!distinct} collapses
    duplicates. *)

type t

val create : Schema.t -> t

val of_rows : Schema.t -> Value.t array list -> t
(** @raise Invalid_argument if a row's arity mismatches the schema. *)

val schema : t -> Schema.t

val cardinality : t -> int

val insert : t -> Value.t array -> unit
(** Appends (mutates).  @raise Invalid_argument on arity mismatch. *)

val rows : t -> Value.t array list
(** In insertion order.  The arrays are the live tuples; callers must not
    mutate them. *)

val iter : (Value.t array -> unit) -> t -> unit

val fold : ('a -> Value.t array -> 'a) -> 'a -> t -> 'a

val column_values : t -> string -> Value.t list
(** @raise Not_found if the column does not exist. *)

val pp : Format.formatter -> t -> unit
(** Tabular rendering, header plus rows. *)
