module Vtbl = Hashtbl.Make (struct
  type t = Value.t

  let equal = Value.equal

  let hash = Value.hash
end)

type index = { column : string; position : int; entries : Value.t array list ref Vtbl.t }

type entry = { relation : Relation.t; mutable indexes : index list }

type t = { tables : (string, entry) Hashtbl.t }

let create () = { tables = Hashtbl.create 16 }

let create_table t name schema =
  if Hashtbl.mem t.tables name then
    invalid_arg (Printf.sprintf "Database.create_table: table %S already exists" name);
  Hashtbl.replace t.tables name { relation = Relation.create schema; indexes = [] }

let put_table t name relation =
  Hashtbl.replace t.tables name { relation; indexes = [] }

let drop_table t name = Hashtbl.remove t.tables name

let entry t name =
  match Hashtbl.find_opt t.tables name with
  | Some e -> e
  | None -> raise Not_found

let table t name = (entry t name).relation

let table_names t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.tables [] |> List.sort String.compare

let index_add idx row =
  let key = row.(idx.position) in
  match Vtbl.find_opt idx.entries key with
  | Some l -> l := row :: !l
  | None -> Vtbl.replace idx.entries key (ref [ row ])

let insert t name row =
  let e = entry t name in
  Relation.insert e.relation row;
  List.iter (fun idx -> index_add idx row) e.indexes

let create_index t ~table ~column =
  let e = entry t table in
  let position = Schema.position (Relation.schema e.relation) column in
  let idx = { column; position; entries = Vtbl.create 1024 } in
  Relation.iter (fun row -> index_add idx row) e.relation;
  e.indexes <- idx :: List.filter (fun i -> i.column <> column) e.indexes

let find_index t ~table ~column =
  List.find_opt (fun i -> i.column = column) (entry t table).indexes

let has_index t ~table ~column = Option.is_some (find_index t ~table ~column)

let index_lookup t ~table ~column key =
  match find_index t ~table ~column with
  | None -> raise Not_found
  | Some idx -> ( match Vtbl.find_opt idx.entries key with Some l -> !l | None -> [])
