(** Physical operators of the mini relational engine.

    Plans are evaluated eagerly to materialized {!Relation.t}s.  The
    operator set is the classical select/project/join core plus distinct,
    union, order-by, and index access — enough to express the tree-encoding
    queries of the paper's relational implementation ([13]). *)

type expr =
  | Col of string  (** column reference *)
  | Const of Value.t

type pred =
  | True
  | Eq of expr * expr
  | Neq of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type plan =
  | Scan of { table : string; alias : string }
      (** base table; columns exposed as ["alias.col"] *)
  | Index_lookup of { table : string; alias : string; column : string; key : Value.t }
      (** index access; [column] is the base column name *)
  | Select of pred * plan
  | Project of string list * plan
  | Hash_join of { left : plan; right : plan; on : (string * string) list }
      (** equi-join; [on] pairs (left column, right column) *)
  | Nested_loop_join of { left : plan; right : plan; pred : pred }
      (** theta-join fallback *)
  | Distinct of plan
  | Union of plan * plan
      (** bag union; schemas must agree *)
  | Order_by of string list * plan
  | Limit of int * plan
  | Rename of string list * plan
      (** positional renaming of every output column; the list length
          must equal the input arity — used to strip alias prefixes
          before materializing temp tables *)
  | Group_by of {
      keys : string list;  (** grouping columns, kept in the output *)
      aggregates : (aggregate * string * string) list;
          (** (function, input column, output column name); for [Count]
              the input column is ignored *)
      input : plan;
    }

and aggregate = Count | Min | Max | Sum

val eval : Database.t -> plan -> Relation.t
(** @raise Not_found on unknown tables/columns/indexes.
    @raise Invalid_argument on schema mismatches (union, name clashes in
    joins). *)

val pp_plan : Format.formatter -> plan -> unit
