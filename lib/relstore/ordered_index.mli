(** An ordered secondary index over one integer column of a relation —
    the engine's stand-in for a B⁺-tree.  Built once over a materialized
    relation; serves point and range lookups in O(log n + k).

    The pre-order interval encoding makes range scans the natural access
    path for tree queries: descendants of [v] are exactly the node rows
    with [v < id ≤ last(v)], one [range] call. *)

type t

val build : Relation.t -> column:string -> t
(** @raise Not_found if the column does not exist.
    @raise Invalid_argument if the column is not [Tint] or contains
    non-integer values. *)

val column : t -> string

val cardinality : t -> int

val point : t -> int -> Value.t array list
(** Rows whose key equals the argument. *)

val range : t -> lo:int -> hi:int -> Value.t array list
(** Rows with [lo ≤ key ≤ hi], in key order (ties in insertion order). *)

val min_key : t -> int option

val max_key : t -> int option
