(** The fragment algebra evaluated against the relational encoding —
    a working sketch of the paper's claim that "the model can be easily
    implemented on top of an existing relational database" (§7, via
    reference [13]).

    Every data access — keyword posting lists, parent/depth lookups, root
    paths — is a {!Relalg} plan against the {!Mapping} tables; the
    orchestration (fixed-point loop, dedup) is client-side, as in a
    middleware implementation.  Answers are bit-identical to the native
    evaluator (tested). *)

type t

val of_doctree : ?options:Xfrag_doctree.Tokenizer.options -> Xfrag_doctree.Doctree.t -> t

val database : t -> Database.t

val postings : t -> string -> Xfrag_util.Int_sorted.t
(** σ_{keyword=k} via an index lookup on the keyword table. *)

val parent : t -> int -> int option
(** Parent via an index lookup on node.id ([None] at the root). *)

val depth : t -> int -> int

val path : t -> int -> int -> int list
(** Tree path between two nodes, computed by walking parents with
    per-step relational queries (depth-aligned ascent). *)

val join_fragments : t -> Xfrag_core.Fragment.t -> Xfrag_core.Fragment.t -> Xfrag_core.Fragment.t
(** Fragment join where the root path comes from {!path}. *)

val eval_query :
  ?size_limit:int ->
  ?trace:Xfrag_obs.Trace.t ->
  t ->
  keywords:string list ->
  Xfrag_core.Frag_set.t
(** Push-down evaluation of a keyword query with an optional size ≤ β
    filter, entirely on relational primitives.  With an enabled [trace],
    records a [rel.query] span with [rel.postings] / [rel.fixed-point] /
    [rel.pairwise-join] children, each carrying its output cardinality
    and the number of relational plans it issued ([rel_queries]). *)

val queries_issued : t -> int
(** Number of relational plans evaluated so far (for the bench report). *)
