type t = Int of int | Text of string | Null

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Text x, Text y -> String.equal x y
  | Null, Null -> true
  | (Int _ | Text _ | Null), _ -> false

let compare a b =
  match (a, b) with
  | Null, Null -> 0
  | Null, (Int _ | Text _) -> -1
  | (Int _ | Text _), Null -> 1
  | Int x, Int y -> Stdlib.compare x y
  | Int _, Text _ -> -1
  | Text _, Int _ -> 1
  | Text x, Text y -> String.compare x y

let to_int = function
  | Int x -> x
  | Text _ | Null -> invalid_arg "Value.to_int: not an integer"

let to_text = function
  | Text s -> s
  | Int _ | Null -> invalid_arg "Value.to_text: not a text value"

let hash = function
  | Null -> 0
  | Int x -> x * 0x9e3779b1
  | Text s -> Hashtbl.hash s

let pp ppf = function
  | Int x -> Format.pp_print_int ppf x
  | Text s -> Format.fprintf ppf "%S" s
  | Null -> Format.pp_print_string ppf "NULL"
