(** Scalar values of the mini relational engine. *)

type t = Int of int | Text of string | Null

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: Null < Int _ < Text _. *)

val to_int : t -> int
(** @raise Invalid_argument unless the value is an [Int]. *)

val to_text : t -> string
(** @raise Invalid_argument unless the value is a [Text]. *)

val hash : t -> int

val pp : Format.formatter -> t -> unit
