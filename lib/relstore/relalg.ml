type expr = Col of string | Const of Value.t

type pred =
  | True
  | Eq of expr * expr
  | Neq of expr * expr
  | Lt of expr * expr
  | Le of expr * expr
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

type plan =
  | Scan of { table : string; alias : string }
  | Index_lookup of { table : string; alias : string; column : string; key : Value.t }
  | Select of pred * plan
  | Project of string list * plan
  | Hash_join of { left : plan; right : plan; on : (string * string) list }
  | Nested_loop_join of { left : plan; right : plan; pred : pred }
  | Distinct of plan
  | Union of plan * plan
  | Order_by of string list * plan
  | Limit of int * plan
  | Rename of string list * plan
  | Group_by of {
      keys : string list;
      aggregates : (aggregate * string * string) list;
      input : plan;
    }

and aggregate = Count | Min | Max | Sum

let eval_expr schema row = function
  | Const v -> v
  | Col name -> row.(Schema.position schema name)

let rec eval_pred schema row = function
  | True -> true
  | Eq (a, b) -> Value.equal (eval_expr schema row a) (eval_expr schema row b)
  | Neq (a, b) -> not (Value.equal (eval_expr schema row a) (eval_expr schema row b))
  | Lt (a, b) -> Value.compare (eval_expr schema row a) (eval_expr schema row b) < 0
  | Le (a, b) -> Value.compare (eval_expr schema row a) (eval_expr schema row b) <= 0
  | And (p, q) -> eval_pred schema row p && eval_pred schema row q
  | Or (p, q) -> eval_pred schema row p || eval_pred schema row q
  | Not p -> not (eval_pred schema row p)

module Key = struct
  type t = Value.t list

  let equal = List.equal Value.equal

  let hash k = List.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 k
end

module Ktbl = Hashtbl.Make (Key)

let rec eval db plan =
  match plan with
  | Scan { table; alias } ->
      let base = Database.table db table in
      let schema = Schema.rename ~prefix:alias (Relation.schema base) in
      Relation.of_rows schema (Relation.rows base)
  | Index_lookup { table; alias; column; key } ->
      let base = Database.table db table in
      let schema = Schema.rename ~prefix:alias (Relation.schema base) in
      Relation.of_rows schema (Database.index_lookup db ~table ~column key)
  | Select (pred, input) ->
      let r = eval db input in
      let schema = Relation.schema r in
      Relation.of_rows schema
        (List.filter (fun row -> eval_pred schema row pred) (Relation.rows r))
  | Project (cols, input) ->
      let r = eval db input in
      let schema = Relation.schema r in
      let positions = List.map (Schema.position schema) cols in
      let out_schema = Schema.project schema cols in
      Relation.of_rows out_schema
        (List.map (fun row -> Array.of_list (List.map (fun i -> row.(i)) positions))
           (Relation.rows r))
  | Hash_join { left; right; on } ->
      let l = eval db left and r = eval db right in
      let ls = Relation.schema l and rs = Relation.schema r in
      let out_schema = Schema.concat ls rs in
      let lpos = List.map (fun (lc, _) -> Schema.position ls lc) on in
      let rpos = List.map (fun (_, rc) -> Schema.position rs rc) on in
      (* Build on the smaller side. *)
      let build_left = Relation.cardinality l <= Relation.cardinality r in
      let build_rel, probe_rel, build_pos, probe_pos =
        if build_left then (l, r, lpos, rpos) else (r, l, rpos, lpos)
      in
      let table = Ktbl.create (max 16 (Relation.cardinality build_rel)) in
      Relation.iter
        (fun row ->
          let key = List.map (fun i -> row.(i)) build_pos in
          match Ktbl.find_opt table key with
          | Some rows -> rows := row :: !rows
          | None -> Ktbl.replace table key (ref [ row ]))
        build_rel;
      let out = Relation.create out_schema in
      Relation.iter
        (fun probe_row ->
          let key = List.map (fun i -> probe_row.(i)) probe_pos in
          match Ktbl.find_opt table key with
          | None -> ()
          | Some rows ->
              List.iter
                (fun build_row ->
                  let lrow, rrow =
                    if build_left then (build_row, probe_row) else (probe_row, build_row)
                  in
                  Relation.insert out (Array.append lrow rrow))
                !rows)
        probe_rel;
      out
  | Nested_loop_join { left; right; pred } ->
      let l = eval db left and r = eval db right in
      let out_schema = Schema.concat (Relation.schema l) (Relation.schema r) in
      let out = Relation.create out_schema in
      Relation.iter
        (fun lrow ->
          Relation.iter
            (fun rrow ->
              let row = Array.append lrow rrow in
              if eval_pred out_schema row pred then Relation.insert out row)
            r)
        l;
      out
  | Distinct input ->
      let r = eval db input in
      let seen = Ktbl.create (max 16 (Relation.cardinality r)) in
      let out = Relation.create (Relation.schema r) in
      Relation.iter
        (fun row ->
          let key = Array.to_list row in
          if not (Ktbl.mem seen key) then begin
            Ktbl.replace seen key ();
            Relation.insert out row
          end)
        r;
      out
  | Union (a, b) ->
      let ra = eval db a and rb = eval db b in
      if not (Schema.equal (Relation.schema ra) (Relation.schema rb)) then
        invalid_arg "Relalg.eval: union of incompatible schemas";
      Relation.of_rows (Relation.schema ra) (Relation.rows ra @ Relation.rows rb)
  | Order_by (cols, input) ->
      let r = eval db input in
      let schema = Relation.schema r in
      let positions = List.map (Schema.position schema) cols in
      let cmp a b =
        let rec go = function
          | [] -> 0
          | i :: rest ->
              let c = Value.compare a.(i) b.(i) in
              if c <> 0 then c else go rest
        in
        go positions
      in
      Relation.of_rows schema (List.stable_sort cmp (Relation.rows r))
  | Limit (n, input) ->
      let r = eval db input in
      Relation.of_rows (Relation.schema r)
        (List.filteri (fun i _ -> i < n) (Relation.rows r))
  | Rename (names, input) ->
      let r = eval db input in
      let old = Schema.columns (Relation.schema r) in
      if List.length names <> List.length old then
        invalid_arg "Relalg.eval: Rename arity mismatch";
      let schema = Schema.make (List.map2 (fun n (_, ty) -> (n, ty)) names old) in
      Relation.of_rows schema (Relation.rows r)
  | Group_by { keys; aggregates; input } ->
      let r = eval db input in
      let schema = Relation.schema r in
      let key_pos = List.map (Schema.position schema) keys in
      let agg_pos =
        List.map
          (fun (fn, col, _) ->
            (fn, match fn with Count -> 0 | Min | Max | Sum -> Schema.position schema col))
          aggregates
      in
      let out_schema =
        Schema.make
          (List.map (fun k -> (k, Schema.ty schema k)) keys
          @ List.map (fun (_, _, out) -> (out, Schema.Tint)) aggregates)
      in
      let groups = Ktbl.create 64 in
      let order = ref [] in
      Relation.iter
        (fun row ->
          let key = List.map (fun i -> row.(i)) key_pos in
          match Ktbl.find_opt groups key with
          | Some rows -> rows := row :: !rows
          | None ->
              Ktbl.replace groups key (ref [ row ]);
              order := key :: !order)
        r;
      let compute fn pos rows =
        match fn with
        | Count -> Value.Int (List.length rows)
        | Sum ->
            Value.Int
              (List.fold_left (fun acc row -> acc + Value.to_int row.(pos)) 0 rows)
        | Min ->
            Value.Int
              (List.fold_left
                 (fun acc row -> min acc (Value.to_int row.(pos)))
                 max_int rows)
        | Max ->
            Value.Int
              (List.fold_left
                 (fun acc row -> max acc (Value.to_int row.(pos)))
                 min_int rows)
      in
      let out = Relation.create out_schema in
      List.iter
        (fun key ->
          let rows = !(Ktbl.find groups key) in
          let aggs = List.map (fun (fn, pos) -> compute fn pos rows) agg_pos in
          Relation.insert out (Array.of_list (key @ aggs)))
        (List.rev !order);
      out

let rec pp_plan ppf = function
  | Scan { table; alias } -> Format.fprintf ppf "scan %s as %s" table alias
  | Index_lookup { table; alias; column; key } ->
      Format.fprintf ppf "index %s(%s=%a) as %s" table column Value.pp key alias
  | Select (_, p) -> Format.fprintf ppf "@[<v2>select@,%a@]" pp_plan p
  | Project (cols, p) ->
      Format.fprintf ppf "@[<v2>project %s@,%a@]" (String.concat "," cols) pp_plan p
  | Hash_join { left; right; on } ->
      Format.fprintf ppf "@[<v2>hash-join %s@,%a@,%a@]"
        (String.concat ","
           (List.map (fun (a, b) -> Printf.sprintf "%s=%s" a b) on))
        pp_plan left pp_plan right
  | Nested_loop_join { left; right; _ } ->
      Format.fprintf ppf "@[<v2>nl-join@,%a@,%a@]" pp_plan left pp_plan right
  | Distinct p -> Format.fprintf ppf "@[<v2>distinct@,%a@]" pp_plan p
  | Union (a, b) -> Format.fprintf ppf "@[<v2>union@,%a@,%a@]" pp_plan a pp_plan b
  | Order_by (cols, p) ->
      Format.fprintf ppf "@[<v2>order-by %s@,%a@]" (String.concat "," cols) pp_plan p
  | Limit (n, p) -> Format.fprintf ppf "@[<v2>limit %d@,%a@]" n pp_plan p
  | Rename (names, p) ->
      Format.fprintf ppf "@[<v2>rename %s@,%a@]" (String.concat "," names) pp_plan p
  | Group_by { keys; aggregates; input } ->
      Format.fprintf ppf "@[<v2>group-by %s {%s}@,%a@]" (String.concat "," keys)
        (String.concat ","
           (List.map
              (fun (fn, col, out) ->
                Printf.sprintf "%s(%s) as %s"
                  (match fn with
                  | Count -> "count"
                  | Min -> "min"
                  | Max -> "max"
                  | Sum -> "sum")
                  col out)
              aggregates))
        pp_plan input
