(** TCP listener + worker pool: the [xfrag serve] engine.

    One immutable {!Xfrag_core.Context} (inside the {!Router}) and one
    synchronized {!Xfrag_core.Join_cache} are shared by every worker.
    The accept loop stays cheap — accept, try to enqueue, on a full
    queue answer [503 Retry-After] inline and close (load shedding; see
    {!Pool}).  Workers own connections: they parse requests, dispatch
    through the router, and keep the connection alive up to
    [keepalive_max] requests.  Slow clients are bounded by kernel
    send/receive timeouts on the connection socket, so a stalled peer
    can never wedge a worker for more than [io_timeout_s].

    Shutdown is graceful: {!stop} (or SIGINT/SIGTERM once
    {!install_signal_handlers} ran) makes the accept loop exit, queued
    connections still get served, workers are joined, and {!run}
    returns normally — the CLI then exits 0. *)

type config = {
  host : string;  (** bind address (default ["127.0.0.1"]) *)
  port : int;  (** 0 = ephemeral; see {!port} for the actual one *)
  workers : int;  (** worker domains (default: cores-1, capped at 4) *)
  queue_cap : int;  (** waiting connections before shedding (default 64) *)
  max_body : int;  (** request-body cap in bytes → 413 (default 1 MiB) *)
  io_timeout_s : float;  (** per-socket read/write timeout (default 10s) *)
  keepalive_max : int;  (** requests served per connection (default 100) *)
  default_deadline_ns : int option;
      (** deadline applied to requests that don't set one (default none) *)
}

val default_config : config

type t

val start : ?config:config -> Router.t -> t
(** Bind + listen (with [SO_REUSEADDR]) and spawn the worker pool.  The
    socket is listening when [start] returns — connects succeed even
    before {!run} — so "bind, print {!port}, then {!run}" has no
    accept race.  Ignores [SIGPIPE] process-wide (a client hanging up
    mid-response must not kill the server).
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The bound port — meaningful when the config asked for port 0. *)

val run : t -> unit
(** Accept loop; blocks until {!stop}.  Returns only after the drain:
    every accepted connection has been served and workers joined. *)

val stop : t -> unit
(** Request shutdown from any thread or signal handler; idempotent,
    returns immediately ({!run} does the draining). *)

val install_signal_handlers : t -> unit
(** SIGINT and SIGTERM → {!stop}. *)
