module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Explain = Xfrag_core.Explain
module Deadline = Xfrag_core.Deadline
module Op_stats = Xfrag_core.Op_stats
module Join_cache = Xfrag_core.Join_cache
module Doctree = Xfrag_doctree.Doctree
module Json = Xfrag_obs.Json
module Metrics = Xfrag_obs.Metrics
module Prometheus = Xfrag_obs.Prometheus
module Clock = Xfrag_obs.Clock

type t = {
  ctx : Context.t;
  cache : Join_cache.t option;
  default_deadline_ns : int option;
  mutable queue_depth : unit -> int;
  registry : Metrics.t;
  reg_lock : Mutex.t;
      (* Workers run in parallel domains and the registry's get-or-create
         Hashtbl is not; every registry touch goes through this lock. *)
}

let create ?cache ?default_deadline_ns ?(queue_depth = fun () -> 0) ctx =
  {
    ctx;
    cache;
    default_deadline_ns;
    queue_depth;
    registry = Metrics.create ();
    reg_lock = Mutex.create ();
  }

let set_queue_depth t f = t.queue_depth <- f

let locked t f =
  Mutex.lock t.reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_lock) f

(* Metric labels come from this fixed set, never the raw request path:
   untrusted clients probing random paths must not be able to mint new
   registry series (unbounded memory, unbounded /metrics page). *)
let endpoint_label path =
  match path with
  | "/query" | "/explain" | "/healthz" | "/metrics" -> path
  | _ -> "other"

let record t ~endpoint ~status ~ns =
  locked t (fun () ->
      Metrics.Counter.incr
        (Metrics.counter t.registry
           (Printf.sprintf "server.requests{endpoint=%S,status=\"%d\"}" endpoint
              status));
      Metrics.Histogram.observe
        (Metrics.histogram t.registry
           (Printf.sprintf "server.latency_ns{endpoint=%S}" endpoint))
        (float_of_int ns))

let record_shed t =
  locked t (fun () ->
      Metrics.Counter.incr (Metrics.counter t.registry "server.shed");
      Metrics.Counter.incr
        (Metrics.counter t.registry
           "server.requests{endpoint=\"*\",status=\"503\"}"))

let metrics_page t =
  locked t (fun () ->
      Metrics.Gauge.set
        (Metrics.gauge t.registry "server.queue_depth")
        (float_of_int (t.queue_depth ()));
      (match t.cache with
      | None -> ()
      | Some c ->
          List.iter
            (fun (name, v) ->
              let c = Metrics.counter t.registry ("server." ^ name) in
              Metrics.Counter.add c (v - Metrics.Counter.value c))
            (Join_cache.metrics_assoc c));
      Prometheus.render t.registry)

(* --- JSON plumbing --- *)

let json_response ~status j =
  Http.response
    ~headers:[ ("Content-Type", "application/json") ]
    ~status
    (Json.to_string j ^ "\n")

let error_response ~status msg =
  json_response ~status (Json.Obj [ ("error", Json.String msg) ])

exception Reject of Http.response

let reject ~status msg = raise (Reject (error_response ~status msg))

let member_opt key decode what j =
  match Json.member key j with
  | None -> None
  | Some v -> (
      match decode v with
      | Some x -> Some x
      | None -> reject ~status:400 (Printf.sprintf "%S must be %s" key what))

(* --- request body --- *)

type query_request = {
  query : Query.t;
  strategy : Eval.strategy;
  strict_leaf : bool;
  deadline_ms : int option;
  limit : int;
}

let keywords_of_json j =
  match member_opt "keywords" Json.to_list_opt "an array" j with
  | None -> reject ~status:400 "missing \"keywords\""
  | Some l ->
      List.map
        (fun k ->
          match Json.to_string_opt k with
          | Some s when s <> "" -> s
          | _ -> reject ~status:400 "\"keywords\" must be non-empty strings")
        l

let filter_of_json j =
  let from_string =
    match member_opt "filter" Json.to_string_opt "a string" j with
    | None -> Filter.True
    | Some s -> (
        match Filter.of_string s with
        | Ok f -> f
        | Error msg -> reject ~status:400 ("bad \"filter\": " ^ msg))
  in
  let from_bounds =
    match Json.member "filters" j with
    | None -> Filter.True
    | Some bounds ->
        let bound key make =
          Option.map make (member_opt key Json.to_int_opt "an integer" bounds)
        in
        Filter.conjoin
          (List.filter_map Fun.id
             [
               bound "max_size" (fun n -> Filter.Size_at_most n);
               bound "max_height" (fun n -> Filter.Height_at_most n);
               bound "max_width" (fun n -> Filter.Width_at_most n);
             ])
  in
  Filter.conjoin [ from_bounds; from_string ]

let query_request_of_body body =
  let j =
    match Json.of_string body with
    | Ok j -> j
    | Error msg -> reject ~status:400 ("bad JSON body: " ^ msg)
  in
  let keywords = keywords_of_json j in
  let filter = filter_of_json j in
  let query =
    match Query.make ~filter keywords with
    | q -> q
    | exception Invalid_argument msg -> reject ~status:400 msg
  in
  let strategy =
    match member_opt "strategy" Json.to_string_opt "a string" j with
    | None -> Eval.Auto
    | Some s -> (
        match Eval.strategy_of_string s with
        | Ok s -> s
        | Error msg -> reject ~status:400 msg)
  in
  let strict_leaf =
    Option.value ~default:false
      (member_opt "strict_leaf" Json.to_bool_opt "a boolean" j)
  in
  let deadline_ms = member_opt "deadline_ms" Json.to_int_opt "an integer" j in
  let limit =
    Option.value ~default:100 (member_opt "limit" Json.to_int_opt "an integer" j)
  in
  { query; strategy; strict_leaf; deadline_ms; limit }

let deadline_of t req (qr : query_request) =
  let ns =
    match Http.query_param req "deadline_ns" with
    | Some s -> (
        match int_of_string_opt s with
        | Some n when n >= 0 -> Some n
        | _ -> reject ~status:400 "deadline_ns must be a non-negative integer")
    | None -> (
        match qr.deadline_ms with
        | Some ms when ms < 0 ->
            reject ~status:400 "deadline_ms must be non-negative"
        | Some ms when ms > max_int / 1_000_000 ->
            (* ms * 1_000_000 would overflow into a negative, already-
               expired deadline; that's a validation error, not a 408. *)
            reject ~status:400 "deadline_ms too large"
        | Some ms -> Some (ms * 1_000_000)
        | None -> t.default_deadline_ns)
  in
  match ns with None -> Deadline.none | Some ns -> Deadline.after ns

(* --- /query --- *)

let fragment_json ctx f =
  let root = Fragment.root f in
  Json.Obj
    [
      ("root", Json.Int root);
      ("label", Json.String (Doctree.label ctx.Context.tree root));
      ( "nodes",
        Json.List
          (List.map (fun n -> Json.Int n)
             (Xfrag_util.Int_sorted.to_list (Fragment.nodes f))) );
    ]

let stats_json stats =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Op_stats.to_assoc stats))

let handle_query t req =
  let qr = query_request_of_body req.Http.body in
  let deadline = deadline_of t req qr in
  let outcome =
    try
      Eval.run ~strategy:qr.strategy ~strict_leaf_semantics:qr.strict_leaf
        ?cache:t.cache ~deadline t.ctx qr.query
    with Invalid_argument msg -> reject ~status:400 msg
  in
  let answers = Frag_set.elements outcome.Eval.answers in
  let count = List.length answers in
  let shown =
    if qr.limit > 0 && count > qr.limit then List.filteri (fun i _ -> i < qr.limit) answers
    else answers
  in
  json_response ~status:200
    (Json.Obj
       [
         ("count", Json.Int count);
         ( "strategy",
           Json.String (Eval.strategy_name outcome.Eval.strategy_used) );
         ("elapsed_ns", Json.Int outcome.Eval.elapsed_ns);
         ("answers", Json.List (List.map (fragment_json t.ctx) shown));
         ("stats", stats_json outcome.Eval.stats);
       ])

(* --- /explain --- *)

let rec explain_node_json (n : Explain.node) =
  Json.Obj
    [
      ("op", Json.String n.Explain.op);
      ("rows", Json.Int n.Explain.rows);
      ("in_rows", Json.List (List.map (fun r -> Json.Int r) n.Explain.in_rows));
      ("self_ns", Json.Int n.Explain.self_ns);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) n.Explain.counters) );
      ("children", Json.List (List.map explain_node_json n.Explain.children));
    ]

let handle_explain t req =
  let qr = query_request_of_body req.Http.body in
  let deadline = deadline_of t req qr in
  let report =
    try Explain.analyze ?cache:t.cache ~deadline t.ctx qr.query
    with Invalid_argument msg -> reject ~status:400 msg
  in
  let plan_str = Format.asprintf "%a" Xfrag_core.Plan.pp report.Explain.plan in
  json_response ~status:200
    (Json.Obj
       [
         ("plan", Json.String plan_str);
         ("estimated_cost", Json.Float report.Explain.estimated_cost);
         ("total_ns", Json.Int report.Explain.total_ns);
         ("count", Json.Int (Frag_set.cardinal report.Explain.answers));
         ("root", explain_node_json report.Explain.root);
       ])

(* --- dispatch --- *)

let method_not_allowed allow =
  Http.response
    ~headers:[ ("Allow", allow); ("Content-Type", "application/json") ]
    ~status:405
    (Json.to_string (Json.Obj [ ("error", Json.String "method not allowed") ])
    ^ "\n")

let dispatch t req =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/query" -> handle_query t req
  | "POST", "/explain" -> handle_explain t req
  | "GET", "/healthz" ->
      Http.response ~headers:[ ("Content-Type", "text/plain") ] ~status:200 "ok\n"
  | "GET", "/metrics" ->
      Http.response
        ~headers:[ ("Content-Type", "text/plain; version=0.0.4") ]
        ~status:200 (metrics_page t)
  | _, ("/query" | "/explain") -> method_not_allowed "POST"
  | _, ("/healthz" | "/metrics") -> method_not_allowed "GET"
  | _, _ -> error_response ~status:404 "not found"

let handle t req =
  let t0 = Clock.monotonic () in
  let resp =
    try dispatch t req with
    | Reject resp -> resp
    | Deadline.Expired -> error_response ~status:408 "deadline exceeded"
    | e ->
        error_response ~status:500
          ("internal error: " ^ Printexc.to_string e)
  in
  record t ~endpoint:(endpoint_label req.Http.path) ~status:resp.Http.status
    ~ns:(Clock.monotonic () - t0);
  resp
