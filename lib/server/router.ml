module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Eval = Xfrag_core.Eval
module Exec = Xfrag_core.Exec
module Explain = Xfrag_core.Explain
module Corpus = Xfrag_core.Corpus
module Deadline = Xfrag_core.Deadline
module Op_stats = Xfrag_core.Op_stats
module Join_cache = Xfrag_core.Join_cache
module Ranking = Xfrag_baselines.Ranking
module Doctree = Xfrag_doctree.Doctree
module Json = Xfrag_obs.Json
module Metrics = Xfrag_obs.Metrics
module Prometheus = Xfrag_obs.Prometheus
module Clock = Xfrag_obs.Clock
module Recorder = Xfrag_obs.Recorder
module Reqid = Xfrag_obs.Reqid
module Fault = Xfrag_fault.Fault

let default_slow_ms = 100

type t = {
  ctx : Context.t;
  corpus : Corpus.t Atomic.t;
      (* The serving snapshot.  Readers [Atomic.get] it once per request
         and evaluate against that value for the whole request — a
         concurrent writer publishing a new corpus can never tear an
         in-flight query (the snapshot is an immutable functional
         value).  An empty corpus doubles as "no corpus": /corpus/query
         404s on size 0, exactly as the old [option] did, but a PUT can
         bootstrap a collection onto a server started without one. *)
  writer_lock : Mutex.t;
      (* Serializes mutations (read-modify-write of [corpus] plus the
         join-cache partition retirement).  Writers are expected to be
         rare relative to reads; readers never take it. *)
  shards : int option;
  cache : Join_cache.t option;
  default_deadline_ns : int option;
  slow_ns : int option;
  access_log : out_channel option;
  log_lock : Mutex.t;
  mutable queue_depth : unit -> int;
  registry : Metrics.t;
  reg_lock : Mutex.t;
      (* Instruments are individually domain-safe, but composite
         updates (a request's counter + histogram, the scrape-time
         gauge/sync sweep) should land atomically with respect to a
         concurrent /metrics render; they go through this lock. *)
}

let create ?cache ?default_deadline_ns ?(queue_depth = fun () -> 0) ?corpus
    ?shards ?slow_ms ?access_log ctx =
  {
    ctx;
    corpus = Atomic.make (Option.value corpus ~default:Corpus.empty);
    writer_lock = Mutex.create ();
    shards;
    cache;
    default_deadline_ns;
    slow_ns =
      (match slow_ms with
      | Some ms when ms >= 0 -> Some (ms * 1_000_000)
      | _ -> None);
    access_log;
    log_lock = Mutex.create ();
    queue_depth;
    registry = Metrics.create ();
    reg_lock = Mutex.create ();
  }

let set_queue_depth t f = t.queue_depth <- f

let locked t f =
  Mutex.lock t.reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_lock) f

(* /corpus/docs/{name}: the document name is the final path segment,
   taken verbatim (no percent-decoding; names containing '/' are not
   addressable).  [None] for /corpus/docs itself and for empty names. *)
let docs_prefix = "/corpus/docs/"

let doc_path_name path =
  let pl = String.length docs_prefix in
  if String.length path > pl && String.sub path 0 pl = docs_prefix then
    let name = String.sub path pl (String.length path - pl) in
    if name = "" || String.contains name '/' then None else Some name
  else None

(* Metric labels come from this fixed set, never the raw request path:
   untrusted clients probing random paths must not be able to mint new
   registry series (unbounded memory, unbounded /metrics page).  All
   per-document paths share one label — document names are
   client-chosen and unbounded. *)
let endpoint_label path =
  match path with
  | "/query" | "/explain" | "/corpus/query" | "/corpus/docs"
  | "/corpus/stats" | "/healthz" | "/metrics" | "/debug/requests"
  | "/debug/slow" ->
      path
  | _ when doc_path_name path <> None -> "/corpus/docs/{name}"
  | _ -> "other"

let record t ~endpoint ~status ~ns =
  locked t (fun () ->
      Metrics.Counter.incr
        (Metrics.counter t.registry
           (Printf.sprintf "server.requests{endpoint=%S,status=\"%d\"}" endpoint
              status));
      Metrics.Histogram.observe
        (Metrics.histogram t.registry
           (Printf.sprintf "server.latency_ns{endpoint=%S}" endpoint))
        (float_of_int ns))

let record_shed t =
  locked t (fun () ->
      Metrics.Counter.incr (Metrics.counter t.registry "server.shed");
      Metrics.Counter.incr
        (Metrics.counter t.registry
           "server.requests{endpoint=\"*\",status=\"503\"}"))

(* Sharded-execution telemetry: the shard count of the last corpus
   query, per-shard wall times, and the k-way-merge cost.  Surfaces in
   the registry snapshot and as corpus_shards / corpus_shard_elapsed_ns
   / corpus_merge_ns on the Prometheus page. *)
let record_corpus t (o : Corpus.outcome) =
  locked t (fun () ->
      Metrics.Gauge.set
        (Metrics.gauge t.registry "corpus.shards")
        (float_of_int (List.length o.Corpus.shard_reports));
      List.iter
        (fun (sr : Corpus.shard_report) ->
          Metrics.Histogram.observe
            (Metrics.histogram t.registry "corpus.shard_elapsed_ns")
            (float_of_int sr.Corpus.shard_elapsed_ns))
        o.Corpus.shard_reports;
      Metrics.Histogram.observe
        (Metrics.histogram t.registry "corpus.merge_ns")
        (float_of_int o.Corpus.merge_ns);
      if o.Corpus.deadline_expired then
        Metrics.Counter.incr
          (Metrics.counter t.registry "corpus.deadline_expired");
      match o.Corpus.routing with
      | None -> ()
      | Some r ->
          Metrics.Gauge.set
            (Metrics.gauge t.registry "index.candidates")
            (float_of_int r.Corpus.candidates);
          Metrics.Counter.add
            (Metrics.counter t.registry "index.routed_out")
            r.Corpus.routed_out;
          Metrics.Counter.add
            (Metrics.counter t.registry "index.bound_skips")
            r.Corpus.bound_skips)

let metrics_page t =
  locked t (fun () ->
      Metrics.Gauge.set
        (Metrics.gauge t.registry "server.queue_depth")
        (float_of_int (t.queue_depth ()));
      (match t.cache with
      | None -> ()
      | Some c ->
          (* Safe against concurrent workers: counters are [Atomic] and
             the entry/interned gauges are summed under stripe locks. *)
          Metrics.sync_assoc ~prefix:"server." t.registry
            (Join_cache.metrics_assoc c));
      (* Fault counters (worker restarts, quarantined docs, injected
         fires) are process-global; mirror them under faults.* so chaos
         runs can assert on the /metrics page. *)
      Metrics.sync_assoc ~prefix:"faults." t.registry (Fault.counters ());
      Metrics.Gauge.set
        (Metrics.gauge t.registry "corpus.docs")
        (float_of_int (Corpus.size (Atomic.get t.corpus)));
      (* Corpus-index shape: 0s when the corpus is unindexed (index
         maintenance failed) or the server has no corpus, so a scrape
         can tell "routing off" from "index empty". *)
      (match Corpus.index (Atomic.get t.corpus) with
      | None -> ()
      | Some idx ->
          Metrics.Gauge.set
            (Metrics.gauge t.registry "index.docs")
            (float_of_int (Xfrag_index.Corpus_index.doc_count idx));
          Metrics.Gauge.set
            (Metrics.gauge t.registry "index.postings")
            (float_of_int (Xfrag_index.Corpus_index.total_postings idx));
          Metrics.Gauge.set
            (Metrics.gauge t.registry "index.vocabulary")
            (float_of_int (Xfrag_index.Corpus_index.vocabulary_size idx)));
      Prometheus.render t.registry)

(* --- per-request telemetry accumulator ---

   One mutable scratch record per in-flight request, filled by whichever
   handler runs and flushed into the flight recorder (plus access log)
   by [handle] — request-local, so unsynchronized. *)

type pending = {
  mutable p_strategy : string;
  mutable p_shards : int;
  mutable p_parse_ns : int;
  mutable p_eval_ns : int;
  mutable p_merge_ns : int;
  mutable p_hits : int;
  mutable p_cache_hits : int;
  mutable p_cache_misses : int;
  mutable p_doc_errors : int;
  mutable p_routed_out : int;
  mutable p_bound_skips : int;
  mutable p_outcome : string;  (* "" = derive from status *)
  mutable p_site : string;
}

let new_pending () =
  {
    p_strategy = "";
    p_shards = 0;
    p_parse_ns = 0;
    p_eval_ns = 0;
    p_merge_ns = 0;
    p_hits = 0;
    p_cache_hits = 0;
    p_cache_misses = 0;
    p_doc_errors = 0;
    p_routed_out = 0;
    p_bound_skips = 0;
    p_outcome = "";
    p_site = "";
  }

(* Join-cache hit/miss lifetime counters sampled around an evaluation
   ([Atomic] reads — no lock needed).  Under concurrent workers the
   delta can blend in a neighbor's traffic — it is attribution for
   debugging, not accounting. *)
let cache_snapshot = function
  | None -> (0, 0)
  | Some c -> (Join_cache.hits c, Join_cache.misses c)

let charge_cache p cache (h0, m0) =
  match cache with
  | None -> ()
  | Some c ->
      p.p_cache_hits <- p.p_cache_hits + (Join_cache.hits c - h0);
      p.p_cache_misses <- p.p_cache_misses + (Join_cache.misses c - m0)

(* --- JSON plumbing --- *)

let json_response ?(headers = []) ~status j =
  Http.response
    ~headers:(("Content-Type", "application/json") :: headers)
    ~status
    (Json.to_string j ^ "\n")

(* --- the uniform error envelope ---

   Every error body, on every endpoint and status, is
   [{"error": {"kind", "message", "request_id", ...}}]: [kind] is a
   stable machine-readable discriminator, [message] the human-oriented
   text, and [request_id] (stamped at [handle]'s single exit) joins the
   failure to its wide event.  Fault-injected 500s add ["site"]; 405s
   add ["allow"].

   Deprecated aliases (one release, see README): [kind] / [site] /
   [request_id] are mirrored at the top level, where pre-envelope 500s
   carried them.  The old top-level ["error": "<string>"] message became
   the envelope itself — that is the one breaking change. *)
let kind_of_status = function
  | 400 -> "bad_request"
  | 404 -> "not_found"
  | 405 -> "method_not_allowed"
  | 408 -> "deadline"
  | 409 -> "conflict"
  | 413 -> "payload_too_large"
  | 503 -> "overloaded"
  | s when s >= 500 -> "internal"
  | _ -> "error"

let error_json ~kind ?site ?(extra = []) msg =
  let site_fields =
    match site with None -> [] | Some s -> [ ("site", Json.String s) ]
  in
  Json.Obj
    (( "error",
       Json.Obj
         ([ ("kind", Json.String kind); ("message", Json.String msg) ]
         @ site_fields @ extra) )
    :: ("kind", Json.String kind)
    :: site_fields
    @ extra)

let error_response ?kind ?site ?extra ?headers ~status msg =
  let kind = match kind with Some k -> k | None -> kind_of_status status in
  json_response ?headers ~status (error_json ~kind ?site ?extra msg)

(* The envelope as a raw body line, for failures the listener answers
   before any request reaches the router (shed 503s, unparsable 400s,
   read-timeout 408s): same shape, request id already known. *)
let error_body ~kind ~id msg =
  match error_json ~kind msg with
  | Json.Obj fields ->
      let fields =
        List.map
          (function
            | "error", Json.Obj env ->
                ("error", Json.Obj (env @ [ ("request_id", Json.String id) ]))
            | f -> f)
          fields
      in
      Json.to_string (Json.Obj (fields @ [ ("request_id", Json.String id) ]))
      ^ "\n"
  | j -> Json.to_string j ^ "\n"

exception Reject of Http.response

let reject ?kind ~status msg = raise (Reject (error_response ?kind ~status msg))

(* --- request decoding ---

   All body decoding is Exec.Request's single codec; the router only
   layers the [?deadline_ns] query-parameter override on top.  The
   validation rules (keyword shape, filter syntax, deadline_ms
   overflow) live in Exec and surface here as 400s. *)

let apply_deadline_param req r =
  match Http.query_param req "deadline_ns" with
  | None -> r
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Exec.Request.with_deadline (Deadline.after n) r
      | _ -> reject ~status:400 "deadline_ns must be a non-negative integer")

let request_of_json t req j =
  match
    Exec.Request.of_json ?default_deadline_ns:t.default_deadline_ns j
  with
  | Ok r -> apply_deadline_param req r
  | Error msg -> reject ~status:400 msg

let body_json req =
  match Json.of_string req.Http.body with
  | Ok j -> j
  | Error msg -> reject ~status:400 ("bad JSON body: " ^ msg)

let request_of_body t p ~id req =
  let t0 = Clock.monotonic () in
  Fun.protect
    ~finally:(fun () -> p.p_parse_ns <- Clock.monotonic () - t0)
    (fun () -> Exec.Request.with_id id (request_of_json t req (body_json req)))

(* --- /query --- *)

let fragment_json ctx f =
  let root = Fragment.root f in
  Json.Obj
    [
      ("root", Json.Int root);
      ("label", Json.String (Doctree.label ctx.Context.tree root));
      ( "nodes",
        Json.List
          (List.map (fun n -> Json.Int n)
             (Xfrag_util.Int_sorted.to_list (Fragment.nodes f))) );
    ]

let stats_json stats =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Op_stats.to_assoc stats))

let handle_query t p ~id req =
  let r = request_of_body t p ~id req in
  let r = Exec.Request.with_cache t.cache r in
  let snap = cache_snapshot t.cache in
  let outcome =
    try Eval.exec t.ctx r with Invalid_argument msg -> reject ~status:400 msg
  in
  charge_cache p t.cache snap;
  let answers = Frag_set.elements outcome.Eval.answers in
  let count = List.length answers in
  p.p_strategy <- Eval.strategy_name outcome.Eval.strategy_used;
  p.p_eval_ns <- outcome.Eval.elapsed_ns;
  p.p_hits <- count;
  let shown =
    match r.Exec.Request.limit with
    | Some n when count > n -> List.filteri (fun i _ -> i < n) answers
    | _ -> answers
  in
  json_response ~status:200
    (Json.Obj
       [
         ("request_id", Json.String id);
         ("count", Json.Int count);
         ( "strategy",
           Json.String (Eval.strategy_name outcome.Eval.strategy_used) );
         ("elapsed_ns", Json.Int outcome.Eval.elapsed_ns);
         ("answers", Json.List (List.map (fragment_json t.ctx) shown));
         ("stats", stats_json outcome.Eval.stats);
       ])

(* --- /explain --- *)

let rec explain_node_json (n : Explain.node) =
  Json.Obj
    [
      ("op", Json.String n.Explain.op);
      ("rows", Json.Int n.Explain.rows);
      ("in_rows", Json.List (List.map (fun r -> Json.Int r) n.Explain.in_rows));
      ("self_ns", Json.Int n.Explain.self_ns);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) n.Explain.counters) );
      ("children", Json.List (List.map explain_node_json n.Explain.children));
    ]

let handle_explain t p ~id req =
  let r = request_of_body t p ~id req in
  let r = Exec.Request.with_cache t.cache r in
  let snap = cache_snapshot t.cache in
  let report =
    try Explain.analyze_request t.ctx r
    with Invalid_argument msg -> reject ~status:400 msg
  in
  charge_cache p t.cache snap;
  p.p_eval_ns <- report.Explain.total_ns;
  p.p_hits <- Frag_set.cardinal report.Explain.answers;
  let plan_str = Format.asprintf "%a" Xfrag_core.Plan.pp report.Explain.plan in
  json_response ~status:200
    (Json.Obj
       [
         ("request_id", Json.String id);
         ("plan", Json.String plan_str);
         ("estimated_cost", Json.Float report.Explain.estimated_cost);
         ("total_ns", Json.Int report.Explain.total_ns);
         ("count", Json.Int (Frag_set.cardinal report.Explain.answers));
         ("root", explain_node_json report.Explain.root);
       ])

(* --- /corpus/query --- *)

let max_batch = 32

(* Snapshot pinning: one [Atomic.get] hands the request an immutable
   corpus value it keeps for its whole lifetime — concurrent PUT/DELETE
   publish new snapshots without ever mutating this one. *)
let snapshot t = Atomic.get t.corpus

let corpus_of t =
  let c = snapshot t in
  if Corpus.size c > 0 then c
  else
    reject ~status:404
      "no corpus loaded (serve with multiple FILEs, or PUT /corpus/docs/{name})"

let corpus_hit_json corpus (hit, score) =
  let ctx = Corpus.context corpus hit.Corpus.doc in
  match fragment_json ctx hit.Corpus.fragment with
  | Json.Obj fields ->
      Json.Obj
        (("doc", Json.String hit.Corpus.doc)
        :: ("score", Json.Float score)
        :: fields)
  | j -> j

let doc_error_json (e : Corpus.doc_error) =
  let fields =
    [
      ("doc", Json.String e.Corpus.err_doc);
      ("detail", Json.String e.Corpus.err_detail);
    ]
  in
  Json.Obj
    (if e.Corpus.err_request_id = "" then fields
     else fields @ [ ("request_id", Json.String e.Corpus.err_request_id) ])

let shard_report_json (sr : Corpus.shard_report) =
  Json.Obj
    [
      ("shard", Json.Int sr.Corpus.shard_index);
      ("docs", Json.Int (List.length sr.Corpus.shard_docs));
      ("nodes", Json.Int sr.Corpus.shard_nodes);
      ("elapsed_ns", Json.Int sr.Corpus.shard_elapsed_ns);
      ("deadline_expired", Json.Bool sr.Corpus.shard_deadline_expired);
      ("bound_skips", Json.Int sr.Corpus.shard_bound_skips);
      ("errors", Json.List (List.map doc_error_json sr.Corpus.shard_errors));
    ]

let routing_json (r : Corpus.routing) =
  Json.Obj
    [
      ("candidates", Json.Int r.Corpus.candidates);
      ("routed_out", Json.Int r.Corpus.routed_out);
      ("bound_skips", Json.Int r.Corpus.bound_skips);
    ]

let corpus_outcome_json corpus (o : Corpus.outcome) =
  let routing =
    match o.Corpus.routing with
    | None -> []
    | Some r -> [ ("routing", routing_json r) ]
  in
  Json.Obj
    ([
      ("count", Json.Int (List.length o.Corpus.hits));
      ("total_answers", Json.Int o.Corpus.total_answers);
      ("deadline_expired", Json.Bool o.Corpus.deadline_expired);
      ("elapsed_ns", Json.Int o.Corpus.elapsed_ns);
      ("merge_ns", Json.Int o.Corpus.merge_ns);
      ("shards", Json.List (List.map shard_report_json o.Corpus.shard_reports));
      ("errors", Json.List (List.map doc_error_json o.Corpus.errors));
      ("hits", Json.List (List.map (corpus_hit_json corpus) o.Corpus.hits));
      ("stats", stats_json o.Corpus.stats);
    ]
    @ routing)

let run_corpus_request t p corpus (r : Exec.Request.t) =
  (* The shared server cache is attached: it is synchronized (striped)
     and its per-document partitions give every corpus member a scoped
     view, so shard workers warm it concurrently instead of thrashing a
     global generation.  A mid-run deadline yields partial results with
     [deadline_expired] set — a 200, not a 408: the contract of the
     corpus endpoint is "everything that finished". *)
  let r = Exec.Request.with_cache t.cache r in
  let snap = cache_snapshot t.cache in
  let keywords = (Exec.Request.to_query r).Xfrag_core.Query.keywords in
  let scorer ctx f = Ranking.score ctx ~keywords f in
  (* The index-derived bound dominates [Ranking.score] for the same
     keywords (see Corpus_index), so early termination is sound for
     this endpoint's scorer; [None] (unindexed corpus) just means no
     skipping. *)
  let bound = Corpus.score_bound corpus ~keywords in
  let outcome =
    try Corpus.run ?shards:t.shards ?bound ~scorer corpus r
    with Invalid_argument msg -> reject ~status:400 msg
  in
  charge_cache p t.cache snap;
  record_corpus t outcome;
  p.p_strategy <- Exec.strategy_name r.Exec.Request.strategy;
  p.p_shards <- max p.p_shards (List.length outcome.Corpus.shard_reports);
  p.p_eval_ns <- p.p_eval_ns + outcome.Corpus.elapsed_ns;
  p.p_merge_ns <- p.p_merge_ns + outcome.Corpus.merge_ns;
  p.p_hits <- p.p_hits + List.length outcome.Corpus.hits;
  p.p_doc_errors <- p.p_doc_errors + List.length outcome.Corpus.errors;
  (match outcome.Corpus.routing with
  | None -> ()
  | Some ri ->
      p.p_routed_out <- p.p_routed_out + ri.Corpus.routed_out;
      p.p_bound_skips <- p.p_bound_skips + ri.Corpus.bound_skips);
  if outcome.Corpus.deadline_expired then p.p_outcome <- "deadline";
  corpus_outcome_json corpus outcome

let handle_corpus_query t p ~id req =
  let corpus = corpus_of t in
  match body_json req with
  | Json.List batch ->
      (* One HTTP request = one admission-control ticket: the batch
         shares the worker slot it was admitted under and runs its
         requests back to back on the shard pool. *)
      if List.length batch > max_batch then
        reject ~status:400
          (Printf.sprintf "batch too large (max %d requests)" max_batch)
      else if batch = [] then reject ~status:400 "empty batch"
      else
        let t0 = Clock.monotonic () in
        let requests =
          List.map
            (fun j -> Exec.Request.with_id id (request_of_json t req j))
            batch
        in
        p.p_parse_ns <- Clock.monotonic () - t0;
        let results = List.map (run_corpus_request t p corpus) requests in
        json_response ~status:200
          (Json.Obj
             [
               ("request_id", Json.String id);
               ("results", Json.List results);
             ])
  | j ->
      let t0 = Clock.monotonic () in
      let r = Exec.Request.with_id id (request_of_json t req j) in
      p.p_parse_ns <- Clock.monotonic () - t0;
      let body = run_corpus_request t p corpus r in
      let body =
        match body with
        | Json.Obj fields ->
            Json.Obj (("request_id", Json.String id) :: fields)
        | j -> j
      in
      json_response ~status:200 body

(* --- document CRUD: PUT/GET/DELETE /corpus/docs/{name} ---

   Writers serialize on [writer_lock]: read the pinned snapshot, compute
   the functionally-updated corpus, publish it with one [Atomic.set],
   then retire the replaced/deleted document's join-cache partition
   (keyed by its retired {!Context.generation}) so every other resident
   document stays warm.  Readers never take the lock — they keep
   querying the previous snapshot until the set lands.  The
   [corpus.write] failpoint fires inside the lock but before any state
   change, so an injected failure 500s with the published snapshot
   untouched. *)

let record_write t ~op ~ns ~wait_ns ~maint_ns ~retracted =
  locked t (fun () ->
      Metrics.Counter.incr
        (Metrics.counter t.registry (Printf.sprintf "corpus.%s" op));
      Metrics.Histogram.observe
        (Metrics.histogram t.registry (Printf.sprintf "corpus.%s_ns" op))
        (float_of_int ns);
      Metrics.Histogram.observe
        (Metrics.histogram t.registry "corpus.writer_wait_ns")
        (float_of_int wait_ns);
      if retracted then
        Metrics.Histogram.observe
          (Metrics.histogram t.registry "index.retract_ns")
          (float_of_int maint_ns))

(* Returns (the document existed before, writer-lock wait ns, index
   maintenance ns). *)
let mutate t ~name f =
  let t0 = Clock.monotonic () in
  Mutex.lock t.writer_lock;
  let wait_ns = Clock.monotonic () - t0 in
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.writer_lock)
    (fun () ->
      Fault.Failpoint.hit ~key:name "corpus.write";
      let old = Atomic.get t.corpus in
      let old_gen = Corpus.generation old name in
      let m0 = Clock.monotonic () in
      let next = f old in
      let maint_ns = Clock.monotonic () - m0 in
      Atomic.set t.corpus next;
      (match (old_gen, t.cache) with
      | Some g, Some c -> Join_cache.retire c ~generation:g
      | _ -> ());
      (old_gen <> None, wait_ns, maint_ns))

let doc_stats_json name ctx =
  Json.Obj
    [
      ("doc", Json.String name);
      ("nodes", Json.Int (Context.size ctx));
      ( "keywords",
        Json.Int
          (List.length (Xfrag_doctree.Inverted_index.stats ctx.Context.index))
      );
      ("generation", Json.Int ctx.Context.generation);
    ]

let handle_put_doc t p ~id ~name req =
  let t0 = Clock.monotonic () in
  let tree =
    (* Same quarantine discipline as [Loader.load_tree]: the
       [parse.document] failpoint (keyed by the document name, as the
       loader keys it by path) runs first, and every parse failure —
       malformed XML, injected fault, any escape — surfaces as a
       structured 400 and a [quarantined_docs] bump, never an exception
       and never a corpus change. *)
    match
      Fault.Failpoint.hit ~key:name "parse.document";
      Doctree.of_xml (Xfrag_xml.Xml_parser.parse_string req.Http.body)
    with
    | tree -> tree
    | exception Xfrag_xml.Xml_error.Parse_error e ->
        Fault.record "quarantined_docs";
        reject ~kind:"parse_error" ~status:400
          (Xfrag_xml.Xml_error.to_string e)
    | exception Fault.Injected (site, detail) ->
        Fault.record "quarantined_docs";
        reject ~kind:"parse_error" ~status:400
          (Printf.sprintf "injected fault at %s: %s" site detail)
    | exception e ->
        Fault.record "quarantined_docs";
        reject ~kind:"parse_error" ~status:400 (Printexc.to_string e)
  in
  p.p_parse_ns <- Clock.monotonic () - t0;
  let existed, wait_ns, maint_ns =
    mutate t ~name (fun c -> Corpus.replace c ~name tree)
  in
  let ns = Clock.monotonic () - t0 in
  record_write t ~op:"put" ~ns ~wait_ns ~maint_ns ~retracted:existed;
  let corpus = snapshot t in
  json_response
    ~status:(if existed then 200 else 201)
    (Json.Obj
       [
         ("request_id", Json.String id);
         ("doc", Json.String name);
         ("created", Json.Bool (not existed));
         ("replaced", Json.Bool existed);
         ("nodes", Json.Int (Context.size (Corpus.context corpus name)));
         ("corpus_docs", Json.Int (Corpus.size corpus));
       ])

let handle_delete_doc t ~id ~name =
  let t0 = Clock.monotonic () in
  (* Existence is decided inside the writer critical section, so two
     racing DELETEs of the same document cannot both claim the kill. *)
  let existed, wait_ns, maint_ns =
    mutate t ~name (fun c -> Corpus.remove c ~name)
  in
  if not existed then
    reject ~status:404 (Printf.sprintf "no such document %S" name)
  else begin
    let ns = Clock.monotonic () - t0 in
    record_write t ~op:"delete" ~ns ~wait_ns ~maint_ns ~retracted:true;
    json_response ~status:200
      (Json.Obj
         [
           ("request_id", Json.String id);
           ("doc", Json.String name);
           ("deleted", Json.Bool true);
           ("corpus_docs", Json.Int (Corpus.size (snapshot t)));
         ])
  end

let handle_get_doc t ~id ~name =
  let corpus = snapshot t in
  match Corpus.context corpus name with
  | ctx -> (
      match doc_stats_json name ctx with
      | Json.Obj fields ->
          json_response ~status:200
            (Json.Obj (("request_id", Json.String id) :: fields))
      | j -> json_response ~status:200 j)
  | exception Not_found ->
      reject ~status:404 (Printf.sprintf "no such document %S" name)

(* Listing and stats read the snapshot directly (no [corpus_of] 404):
   an empty collection is a legal answer on the resource endpoints —
   it is what a client sees between bootstrap and its first PUT. *)
let handle_list_docs t ~id =
  let corpus = snapshot t in
  json_response ~status:200
    (Json.Obj
       [
         ("request_id", Json.String id);
         ("count", Json.Int (Corpus.size corpus));
         ( "docs",
           Json.List
             (List.map
                (fun name -> doc_stats_json name (Corpus.context corpus name))
                (Corpus.names corpus)) );
       ])

let handle_corpus_stats t ~id =
  let corpus = snapshot t in
  let index_json =
    match Corpus.index corpus with
    | None -> Json.Null
    | Some idx ->
        Json.Obj
          [
            ("docs", Json.Int (Xfrag_index.Corpus_index.doc_count idx));
            ( "vocabulary",
              Json.Int (Xfrag_index.Corpus_index.vocabulary_size idx) );
            ("postings", Json.Int (Xfrag_index.Corpus_index.total_postings idx));
          ]
  in
  let cache_json =
    match t.cache with
    | None -> Json.Null
    | Some c ->
        Json.Obj
          (List.map
             (fun (k, v) -> (k, Json.Int v))
             (Join_cache.metrics_assoc c))
  in
  json_response ~status:200
    (Json.Obj
       [
         ("request_id", Json.String id);
         ("docs", Json.Int (Corpus.size corpus));
         ("total_nodes", Json.Int (Corpus.total_nodes corpus));
         ("index", index_json);
         ("cache", cache_json);
       ])

(* --- /debug/requests and /debug/slow --- *)

let int_param req name ~default =
  match Http.query_param req name with
  | None -> default
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> n
      | _ -> reject ~status:400 (Printf.sprintf "%s must be a non-negative integer" name))

let events_response ?threshold_ns events =
  let fields =
    [ ("enabled", Json.Bool (Recorder.enabled ())) ]
    @ (match threshold_ns with
      | None -> []
      | Some ns -> [ ("threshold_ns", Json.Int ns) ])
    @ [
        ("count", Json.Int (List.length events));
        ("events", Json.List (List.map Recorder.to_json events));
      ]
  in
  json_response ~status:200 (Json.Obj fields)

let handle_debug_requests req =
  match Http.query_param req "id" with
  | Some id ->
      events_response
        (List.filter (fun ev -> ev.Recorder.id = id) (Recorder.events ()))
  | None ->
      let n = int_param req "n" ~default:64 in
      events_response (Recorder.last n)

let handle_debug_slow t req =
  let default_ms =
    match t.slow_ns with
    | Some ns -> ns / 1_000_000
    | None -> default_slow_ms
  in
  let ms = int_param req "ms" ~default:default_ms in
  let threshold_ns = ms * 1_000_000 in
  events_response ~threshold_ns (Recorder.slow ~threshold_ns)

(* --- dispatch --- *)

(* The method table for every known path: a known path with the wrong
   method answers 405 with an [Allow] header and the allowed list in
   the body; only unknown paths 404. *)
let allowed_methods path =
  match path with
  | "/query" | "/explain" | "/corpus/query" -> Some [ "POST" ]
  | "/corpus/docs" | "/corpus/stats" | "/healthz" | "/metrics"
  | "/debug/requests" | "/debug/slow" ->
      Some [ "GET" ]
  | _ when doc_path_name path <> None -> Some [ "DELETE"; "GET"; "PUT" ]
  | _ -> None

let method_not_allowed allow =
  error_response ~status:405
    ~headers:[ ("Allow", String.concat ", " allow) ]
    ~extra:[ ("allow", Json.List (List.map (fun m -> Json.String m) allow)) ]
    (Printf.sprintf "method not allowed (allowed: %s)"
       (String.concat ", " allow))

let dispatch t p ~id req =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/query" -> handle_query t p ~id req
  | "POST", "/explain" -> handle_explain t p ~id req
  | "POST", "/corpus/query" -> handle_corpus_query t p ~id req
  | "GET", "/corpus/docs" -> handle_list_docs t ~id
  | "GET", "/corpus/stats" -> handle_corpus_stats t ~id
  | "GET", "/healthz" ->
      Http.response ~headers:[ ("Content-Type", "text/plain") ] ~status:200 "ok\n"
  | "GET", "/metrics" ->
      Http.response
        ~headers:[ ("Content-Type", "text/plain; version=0.0.4") ]
        ~status:200 (metrics_page t)
  | "GET", "/debug/requests" -> handle_debug_requests req
  | "GET", "/debug/slow" -> handle_debug_slow t req
  | meth, path -> (
      match (doc_path_name path, meth) with
      | Some name, "PUT" -> handle_put_doc t p ~id ~name req
      | Some name, "GET" -> handle_get_doc t ~id ~name
      | Some name, "DELETE" -> handle_delete_doc t ~id ~name
      | _ -> (
          match allowed_methods path with
          | Some allow -> method_not_allowed allow
          | None -> error_response ~status:404 "not found"))

(* Engine escapes become structured 500s in the envelope: a
   machine-readable [kind] (plus [site] for injected faults) so clients
   and chaos harnesses can distinguish deliberate injection from a
   genuine bug without parsing the human-oriented message.  Every 500
   bumps the [request_errors] fault counter — the containment signal on
   /metrics.  The request id lands in the body at [handle]'s single
   exit, so the failure can be joined back to its wide event in
   /debug/requests. *)
let internal_error_response e =
  Fault.record "request_errors";
  match e with
  | Fault.Injected (site, detail) ->
      error_response ~status:500 ~kind:"fault_injected" ~site
        (Printf.sprintf "injected fault at %s: %s" site detail)
  | e -> error_response ~status:500 ("internal error: " ^ Printexc.to_string e)

let with_request_id id resp =
  {
    resp with
    Http.resp_headers = resp.Http.resp_headers @ [ ("X-Request-Id", id) ];
  }

(* Error bodies are built by [reject] deep inside decoding helpers,
   before the request id is in scope; stamp it in at the single exit
   point instead so every JSON error (400/404/405/408/500) can be
   joined back to its wide event, like the 200s already can.  The id
   lands both inside the ["error"] envelope (the documented home) and
   at the top level (deprecated alias, one release). *)
let ensure_body_request_id ~id resp =
  if resp.Http.status < 400 then resp
  else
    match Json.of_string resp.Http.resp_body with
    | Ok (Json.Obj fields) ->
        let fields =
          List.map
            (function
              | "error", Json.Obj env
                when not (List.mem_assoc "request_id" env) ->
                  ("error", Json.Obj (env @ [ ("request_id", Json.String id) ]))
              | f -> f)
            fields
        in
        let fields =
          if List.mem_assoc "request_id" fields then fields
          else fields @ [ ("request_id", Json.String id) ]
        in
        { resp with Http.resp_body = Json.to_string (Json.Obj fields) ^ "\n" }
    | _ -> resp

let outcome_of_status = function
  | s when s >= 200 && s < 400 -> "ok"
  | 408 -> "deadline"
  | s when s >= 400 && s < 500 -> "client_error"
  | 503 -> "shed"
  | _ -> "error"

(* One structured line per request.  JSON so it greps and parses; SLOW
   mirror lines carry the whole wide event for requests over the
   threshold.  The channel is shared by every worker domain, hence the
   lock. *)
let access_log_line t ~id ~req ~status ~total_ns ~outcome =
  match t.access_log with
  | None -> ()
  | Some oc ->
      let line =
        Json.to_string
          (Json.Obj
             [
               ("id", Json.String id);
               ("method", Json.String req.Http.meth);
               ("path", Json.String req.Http.path);
               ("status", Json.Int status);
               ("total_ns", Json.Int total_ns);
               ("outcome", Json.String outcome);
             ])
      in
      Mutex.lock t.log_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.log_lock)
        (fun () ->
          output_string oc (line ^ "\n");
          flush oc)

let slow_log_line t ev =
  match t.access_log with
  | None -> ()
  | Some oc ->
      let line = "SLOW " ^ Json.to_string (Recorder.to_json ev) in
      Mutex.lock t.log_lock;
      Fun.protect
        ~finally:(fun () -> Mutex.unlock t.log_lock)
        (fun () ->
          output_string oc (line ^ "\n");
          flush oc)

let handle ?(queue_ns = 0) t req =
  let t0 = Clock.monotonic () in
  let id = Reqid.accept_or_mint (Http.header req "x-request-id") in
  let p = new_pending () in
  let resp =
    try dispatch t p ~id req with
    | Reject resp -> resp
    | Deadline.Expired ->
        p.p_outcome <- "deadline";
        error_response ~status:408 "deadline exceeded"
    | e ->
        (match e with
        | Fault.Injected (site, _) ->
            p.p_outcome <- "fault";
            p.p_site <- site
        | _ -> p.p_outcome <- "error");
        internal_error_response e
  in
  let resp = with_request_id id (ensure_body_request_id ~id resp) in
  let total_ns = Clock.monotonic () - t0 in
  let endpoint = endpoint_label req.Http.path in
  record t ~endpoint ~status:resp.Http.status ~ns:total_ns;
  let outcome =
    if p.p_outcome <> "" then p.p_outcome else outcome_of_status resp.Http.status
  in
  let ev : Recorder.event =
    {
      Recorder.seq = 0;
      id;
      endpoint;
      strategy = p.p_strategy;
      shards = p.p_shards;
      queue_ns;
      parse_ns = p.p_parse_ns;
      eval_ns = p.p_eval_ns;
      merge_ns = p.p_merge_ns;
      total_ns;
      hits = p.p_hits;
      cache_hits = p.p_cache_hits;
      cache_misses = p.p_cache_misses;
      doc_errors = p.p_doc_errors;
      routed_out = p.p_routed_out;
      bound_skips = p.p_bound_skips;
      status = resp.Http.status;
      outcome;
      site = p.p_site;
    }
  in
  Recorder.record ~endpoint ~strategy:p.p_strategy ~shards:p.p_shards ~queue_ns
    ~parse_ns:p.p_parse_ns ~eval_ns:p.p_eval_ns ~merge_ns:p.p_merge_ns
    ~total_ns ~hits:p.p_hits ~cache_hits:p.p_cache_hits
    ~cache_misses:p.p_cache_misses ~doc_errors:p.p_doc_errors
    ~routed_out:p.p_routed_out ~bound_skips:p.p_bound_skips
    ~status:resp.Http.status ~site:p.p_site ~id ~outcome ();
  access_log_line t ~id ~req ~status:resp.Http.status ~total_ns ~outcome;
  (match t.slow_ns with
  | Some threshold when total_ns >= threshold -> slow_log_line t ev
  | _ -> ());
  resp
