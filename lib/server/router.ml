module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Eval = Xfrag_core.Eval
module Exec = Xfrag_core.Exec
module Explain = Xfrag_core.Explain
module Corpus = Xfrag_core.Corpus
module Deadline = Xfrag_core.Deadline
module Op_stats = Xfrag_core.Op_stats
module Join_cache = Xfrag_core.Join_cache
module Ranking = Xfrag_baselines.Ranking
module Doctree = Xfrag_doctree.Doctree
module Json = Xfrag_obs.Json
module Metrics = Xfrag_obs.Metrics
module Prometheus = Xfrag_obs.Prometheus
module Clock = Xfrag_obs.Clock
module Fault = Xfrag_fault.Fault

type t = {
  ctx : Context.t;
  corpus : Corpus.t option;
  shards : int option;
  cache : Join_cache.t option;
  default_deadline_ns : int option;
  mutable queue_depth : unit -> int;
  registry : Metrics.t;
  reg_lock : Mutex.t;
      (* Workers run in parallel domains and the registry's get-or-create
         Hashtbl is not; every registry touch goes through this lock. *)
}

let create ?cache ?default_deadline_ns ?(queue_depth = fun () -> 0) ?corpus
    ?shards ctx =
  {
    ctx;
    corpus;
    shards;
    cache;
    default_deadline_ns;
    queue_depth;
    registry = Metrics.create ();
    reg_lock = Mutex.create ();
  }

let set_queue_depth t f = t.queue_depth <- f

let locked t f =
  Mutex.lock t.reg_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.reg_lock) f

(* Metric labels come from this fixed set, never the raw request path:
   untrusted clients probing random paths must not be able to mint new
   registry series (unbounded memory, unbounded /metrics page). *)
let endpoint_label path =
  match path with
  | "/query" | "/explain" | "/corpus/query" | "/healthz" | "/metrics" -> path
  | _ -> "other"

let record t ~endpoint ~status ~ns =
  locked t (fun () ->
      Metrics.Counter.incr
        (Metrics.counter t.registry
           (Printf.sprintf "server.requests{endpoint=%S,status=\"%d\"}" endpoint
              status));
      Metrics.Histogram.observe
        (Metrics.histogram t.registry
           (Printf.sprintf "server.latency_ns{endpoint=%S}" endpoint))
        (float_of_int ns))

let record_shed t =
  locked t (fun () ->
      Metrics.Counter.incr (Metrics.counter t.registry "server.shed");
      Metrics.Counter.incr
        (Metrics.counter t.registry
           "server.requests{endpoint=\"*\",status=\"503\"}"))

(* Sharded-execution telemetry: the shard count of the last corpus
   query, per-shard wall times, and the k-way-merge cost.  Surfaces in
   the registry snapshot and as corpus_shards / corpus_shard_elapsed_ns
   / corpus_merge_ns on the Prometheus page. *)
let record_corpus t (o : Corpus.outcome) =
  locked t (fun () ->
      Metrics.Gauge.set
        (Metrics.gauge t.registry "corpus.shards")
        (float_of_int (List.length o.Corpus.shard_reports));
      List.iter
        (fun (sr : Corpus.shard_report) ->
          Metrics.Histogram.observe
            (Metrics.histogram t.registry "corpus.shard_elapsed_ns")
            (float_of_int sr.Corpus.shard_elapsed_ns))
        o.Corpus.shard_reports;
      Metrics.Histogram.observe
        (Metrics.histogram t.registry "corpus.merge_ns")
        (float_of_int o.Corpus.merge_ns);
      if o.Corpus.deadline_expired then
        Metrics.Counter.incr
          (Metrics.counter t.registry "corpus.deadline_expired"))

let metrics_page t =
  locked t (fun () ->
      Metrics.Gauge.set
        (Metrics.gauge t.registry "server.queue_depth")
        (float_of_int (t.queue_depth ()));
      (match t.cache with
      | None -> ()
      | Some c ->
          Metrics.sync_assoc ~prefix:"server." t.registry
            (Join_cache.metrics_assoc c));
      (* Fault counters (worker restarts, quarantined docs, injected
         fires) are process-global; mirror them under faults.* so chaos
         runs can assert on the /metrics page. *)
      Metrics.sync_assoc ~prefix:"faults." t.registry (Fault.counters ());
      Prometheus.render t.registry)

(* --- JSON plumbing --- *)

let json_response ~status j =
  Http.response
    ~headers:[ ("Content-Type", "application/json") ]
    ~status
    (Json.to_string j ^ "\n")

let error_response ~status msg =
  json_response ~status (Json.Obj [ ("error", Json.String msg) ])

exception Reject of Http.response

let reject ~status msg = raise (Reject (error_response ~status msg))

(* --- request decoding ---

   All body decoding is Exec.Request's single codec; the router only
   layers the [?deadline_ns] query-parameter override on top.  The
   validation rules (keyword shape, filter syntax, deadline_ms
   overflow) live in Exec and surface here as 400s. *)

let apply_deadline_param req r =
  match Http.query_param req "deadline_ns" with
  | None -> r
  | Some s -> (
      match int_of_string_opt s with
      | Some n when n >= 0 -> Exec.Request.with_deadline (Deadline.after n) r
      | _ -> reject ~status:400 "deadline_ns must be a non-negative integer")

let request_of_json t req j =
  match
    Exec.Request.of_json ?default_deadline_ns:t.default_deadline_ns j
  with
  | Ok r -> apply_deadline_param req r
  | Error msg -> reject ~status:400 msg

let body_json req =
  match Json.of_string req.Http.body with
  | Ok j -> j
  | Error msg -> reject ~status:400 ("bad JSON body: " ^ msg)

let request_of_body t req = request_of_json t req (body_json req)

(* --- /query --- *)

let fragment_json ctx f =
  let root = Fragment.root f in
  Json.Obj
    [
      ("root", Json.Int root);
      ("label", Json.String (Doctree.label ctx.Context.tree root));
      ( "nodes",
        Json.List
          (List.map (fun n -> Json.Int n)
             (Xfrag_util.Int_sorted.to_list (Fragment.nodes f))) );
    ]

let stats_json stats =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) (Op_stats.to_assoc stats))

let handle_query t req =
  let r = request_of_body t req in
  let r = Exec.Request.with_cache t.cache r in
  let outcome =
    try Eval.exec t.ctx r with Invalid_argument msg -> reject ~status:400 msg
  in
  let answers = Frag_set.elements outcome.Eval.answers in
  let count = List.length answers in
  let shown =
    match r.Exec.Request.limit with
    | Some n when count > n -> List.filteri (fun i _ -> i < n) answers
    | _ -> answers
  in
  json_response ~status:200
    (Json.Obj
       [
         ("count", Json.Int count);
         ( "strategy",
           Json.String (Eval.strategy_name outcome.Eval.strategy_used) );
         ("elapsed_ns", Json.Int outcome.Eval.elapsed_ns);
         ("answers", Json.List (List.map (fragment_json t.ctx) shown));
         ("stats", stats_json outcome.Eval.stats);
       ])

(* --- /explain --- *)

let rec explain_node_json (n : Explain.node) =
  Json.Obj
    [
      ("op", Json.String n.Explain.op);
      ("rows", Json.Int n.Explain.rows);
      ("in_rows", Json.List (List.map (fun r -> Json.Int r) n.Explain.in_rows));
      ("self_ns", Json.Int n.Explain.self_ns);
      ( "counters",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Int v)) n.Explain.counters) );
      ("children", Json.List (List.map explain_node_json n.Explain.children));
    ]

let handle_explain t req =
  let r = request_of_body t req in
  let r = Exec.Request.with_cache t.cache r in
  let report =
    try Explain.analyze_request t.ctx r
    with Invalid_argument msg -> reject ~status:400 msg
  in
  let plan_str = Format.asprintf "%a" Xfrag_core.Plan.pp report.Explain.plan in
  json_response ~status:200
    (Json.Obj
       [
         ("plan", Json.String plan_str);
         ("estimated_cost", Json.Float report.Explain.estimated_cost);
         ("total_ns", Json.Int report.Explain.total_ns);
         ("count", Json.Int (Frag_set.cardinal report.Explain.answers));
         ("root", explain_node_json report.Explain.root);
       ])

(* --- /corpus/query --- *)

let max_batch = 32

let corpus_of t =
  match t.corpus with
  | Some c when Corpus.size c > 0 -> c
  | _ -> reject ~status:404 "no corpus loaded (serve with multiple FILEs)"

let corpus_hit_json corpus (hit, score) =
  let ctx = Corpus.context corpus hit.Corpus.doc in
  match fragment_json ctx hit.Corpus.fragment with
  | Json.Obj fields ->
      Json.Obj
        (("doc", Json.String hit.Corpus.doc)
        :: ("score", Json.Float score)
        :: fields)
  | j -> j

let doc_error_json (e : Corpus.doc_error) =
  Json.Obj
    [
      ("doc", Json.String e.Corpus.err_doc);
      ("detail", Json.String e.Corpus.err_detail);
    ]

let shard_report_json (sr : Corpus.shard_report) =
  Json.Obj
    [
      ("shard", Json.Int sr.Corpus.shard_index);
      ("docs", Json.Int (List.length sr.Corpus.shard_docs));
      ("nodes", Json.Int sr.Corpus.shard_nodes);
      ("elapsed_ns", Json.Int sr.Corpus.shard_elapsed_ns);
      ("deadline_expired", Json.Bool sr.Corpus.shard_deadline_expired);
      ("errors", Json.List (List.map doc_error_json sr.Corpus.shard_errors));
    ]

let corpus_outcome_json corpus (o : Corpus.outcome) =
  Json.Obj
    [
      ("count", Json.Int (List.length o.Corpus.hits));
      ("total_answers", Json.Int o.Corpus.total_answers);
      ("deadline_expired", Json.Bool o.Corpus.deadline_expired);
      ("elapsed_ns", Json.Int o.Corpus.elapsed_ns);
      ("merge_ns", Json.Int o.Corpus.merge_ns);
      ("shards", Json.List (List.map shard_report_json o.Corpus.shard_reports));
      ("errors", Json.List (List.map doc_error_json o.Corpus.errors));
      ("hits", Json.List (List.map (corpus_hit_json corpus) o.Corpus.hits));
      ("stats", stats_json o.Corpus.stats);
    ]

let run_corpus_request t corpus (r : Exec.Request.t) =
  (* The per-document cache/trace stripping happens inside Corpus.run;
     the shared server cache is deliberately not attached (see the
     Corpus.run contract).  A mid-run deadline yields partial results
     with [deadline_expired] set — a 200, not a 408: the contract of the
     corpus endpoint is "everything that finished". *)
  let keywords = (Exec.Request.to_query r).Xfrag_core.Query.keywords in
  let scorer ctx f = Ranking.score ctx ~keywords f in
  let outcome =
    try Corpus.run ?shards:t.shards ~scorer corpus r
    with Invalid_argument msg -> reject ~status:400 msg
  in
  record_corpus t outcome;
  corpus_outcome_json corpus outcome

let handle_corpus_query t req =
  let corpus = corpus_of t in
  match body_json req with
  | Json.List batch ->
      (* One HTTP request = one admission-control ticket: the batch
         shares the worker slot it was admitted under and runs its
         requests back to back on the shard pool. *)
      if List.length batch > max_batch then
        reject ~status:400
          (Printf.sprintf "batch too large (max %d requests)" max_batch)
      else if batch = [] then reject ~status:400 "empty batch"
      else
        let requests = List.map (request_of_json t req) batch in
        let results = List.map (run_corpus_request t corpus) requests in
        json_response ~status:200 (Json.Obj [ ("results", Json.List results) ])
  | j ->
      let r = request_of_json t req j in
      json_response ~status:200 (run_corpus_request t corpus r)

(* --- dispatch --- *)

let method_not_allowed allow =
  Http.response
    ~headers:[ ("Allow", allow); ("Content-Type", "application/json") ]
    ~status:405
    (Json.to_string (Json.Obj [ ("error", Json.String "method not allowed") ])
    ^ "\n")

let dispatch t req =
  match (req.Http.meth, req.Http.path) with
  | "POST", "/query" -> handle_query t req
  | "POST", "/explain" -> handle_explain t req
  | "POST", "/corpus/query" -> handle_corpus_query t req
  | "GET", "/healthz" ->
      Http.response ~headers:[ ("Content-Type", "text/plain") ] ~status:200 "ok\n"
  | "GET", "/metrics" ->
      Http.response
        ~headers:[ ("Content-Type", "text/plain; version=0.0.4") ]
        ~status:200 (metrics_page t)
  | _, ("/query" | "/explain" | "/corpus/query") -> method_not_allowed "POST"
  | _, ("/healthz" | "/metrics") -> method_not_allowed "GET"
  | _, _ -> error_response ~status:404 "not found"

(* Engine escapes become structured 500s: a machine-readable [kind]
   (plus [site] for injected faults) so clients and chaos harnesses can
   distinguish deliberate injection from a genuine bug without parsing
   the human-oriented message.  Every 500 bumps the [request_errors]
   fault counter — the containment signal on /metrics. *)
let internal_error_response e =
  Fault.record "request_errors";
  let fields =
    match e with
    | Fault.Injected (site, detail) ->
        [
          ( "error",
            Json.String (Printf.sprintf "injected fault at %s: %s" site detail)
          );
          ("kind", Json.String "fault_injected");
          ("site", Json.String site);
        ]
    | e ->
        [
          ("error", Json.String ("internal error: " ^ Printexc.to_string e));
          ("kind", Json.String "internal");
        ]
  in
  json_response ~status:500 (Json.Obj fields)

let handle t req =
  let t0 = Clock.monotonic () in
  let resp =
    try dispatch t req with
    | Reject resp -> resp
    | Deadline.Expired -> error_response ~status:408 "deadline exceeded"
    | e -> internal_error_response e
  in
  record t ~endpoint:(endpoint_label req.Http.path) ~status:resp.Http.status
    ~ns:(Clock.monotonic () - t0);
  resp
