(* Hand-rolled HTTP/1.1 subset.  Control flow inside the parser uses a
   private exception (Fail) that read_request converts into a result at
   the boundary; no exception escapes to callers except through
   write_all, which is documented to raise. *)

(* --- readers --- *)

type reader = {
  refill : bytes -> int -> int -> int;
  buf : Bytes.t;
  mutable pos : int;
  mutable len : int;
  mutable sawbytes : bool;  (* any byte of the current message consumed? *)
}

type error =
  | Bad_request of string
  | Payload_too_large
  | Timeout
  | Closed

exception Fail of error

let buf_size = 8192

let make_reader refill =
  { refill; buf = Bytes.create buf_size; pos = 0; len = 0; sawbytes = false }

let reader_of_function refill = make_reader refill

let reader_of_string s =
  let off = ref 0 in
  make_reader (fun b pos len ->
      let n = min len (String.length s - !off) in
      Bytes.blit_string s !off b pos n;
      off := !off + n;
      n)

let reader_of_fd fd =
  make_reader (fun b pos len ->
      let rec go () =
        try Unix.read fd b pos len with
        | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
            (* SO_RCVTIMEO expired: a slow client. *)
            raise (Fail Timeout)
        | Unix.Unix_error (Unix.EINTR, _, _) ->
            (* A signal (e.g. the drain SIGTERM) must not abort an
               in-flight read; 0 is reserved for genuine EOF. *)
            go ()
        | Unix.Unix_error (_, _, _) -> 0
      in
      go ())

(* Returns false at EOF. *)
let refill r =
  if r.pos < r.len then true
  else begin
    let n = r.refill r.buf 0 (Bytes.length r.buf) in
    r.pos <- 0;
    r.len <- n;
    n > 0
  end

let next_byte r =
  if not (refill r) then
    raise (Fail (if r.sawbytes then Bad_request "unexpected end of input" else Closed));
  let c = Bytes.get r.buf r.pos in
  r.pos <- r.pos + 1;
  r.sawbytes <- true;
  c

let in_message r = r.sawbytes

let max_line = 8192

let max_header_count = 128

(* One line, CRLF (or bare LF) stripped. *)
let read_line r =
  let b = Buffer.create 80 in
  let rec go () =
    match next_byte r with
    | '\n' -> ()
    | '\r' -> (
        match next_byte r with
        | '\n' -> ()
        | _ -> raise (Fail (Bad_request "bare CR in line")))
    | c ->
        if Buffer.length b >= max_line then
          raise (Fail (Bad_request "line too long"));
        Buffer.add_char b c;
        go ()
  in
  go ();
  Buffer.contents b

let read_exactly r n =
  let out = Bytes.create n in
  for i = 0 to n - 1 do
    Bytes.set out i (next_byte r)
  done;
  Bytes.unsafe_to_string out

(* --- request parsing --- *)

type request = {
  meth : string;
  path : string;
  query : (string * string) list;
  version : string;
  headers : (string * string) list;
  body : string;
}

let is_tchar = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | '!' | '#' | '$' | '%' | '&' | '\'' | '*' | '+' | '-' | '.' | '^' | '_'
  | '`' | '|' | '~' ->
      true
  | _ -> false

let trim_ows s =
  let is_ows c = c = ' ' || c = '\t' in
  let n = String.length s in
  let i = ref 0 and j = ref (n - 1) in
  while !i < n && is_ows s.[!i] do incr i done;
  while !j >= !i && is_ows s.[!j] do decr j done;
  String.sub s !i (!j - !i + 1)

let hex_val c =
  match c with
  | '0' .. '9' -> Char.code c - Char.code '0'
  | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
  | _ -> raise (Fail (Bad_request "bad percent escape"))

let percent_decode ?(plus_space = false) s =
  let b = Buffer.create (String.length s) in
  let n = String.length s in
  let i = ref 0 in
  while !i < n do
    (match s.[!i] with
    | '%' ->
        if !i + 2 >= n then raise (Fail (Bad_request "bad percent escape"));
        Buffer.add_char b
          (Char.chr ((hex_val s.[!i + 1] * 16) + hex_val s.[!i + 2]));
        i := !i + 2
    | '+' when plus_space -> Buffer.add_char b ' '
    | c -> Buffer.add_char b c);
    incr i
  done;
  Buffer.contents b

let parse_query s =
  if s = "" then []
  else
    String.split_on_char '&' s
    |> List.filter_map (fun kv ->
           if kv = "" then None
           else
             let k, v =
               match String.index_opt kv '=' with
               | None -> (kv, "")
               | Some i ->
                   ( String.sub kv 0 i,
                     String.sub kv (i + 1) (String.length kv - i - 1) )
             in
             Some
               (percent_decode ~plus_space:true k, percent_decode ~plus_space:true v))

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] ->
      if meth = "" || not (String.for_all is_tchar meth) then
        raise (Fail (Bad_request "malformed method"));
      if not (version = "HTTP/1.1" || version = "HTTP/1.0") then
        raise (Fail (Bad_request "unsupported HTTP version"));
      if target = "" || target.[0] <> '/' then
        raise (Fail (Bad_request "malformed request target"));
      let path, query =
        match String.index_opt target '?' with
        | None -> (target, [])
        | Some i ->
            ( String.sub target 0 i,
              parse_query (String.sub target (i + 1) (String.length target - i - 1))
            )
      in
      (meth, percent_decode path, query, version)
  | _ -> raise (Fail (Bad_request "malformed request line"))

(* Header block: "Name: value" lines until the empty line; a line that
   starts with SP/HTAB is an obs-fold continuation of the previous
   header's value.  Continuations count toward max_header_count and the
   unfolded value is capped at max_line, so a stream of fold lines
   cannot grow a header without bound. *)
let read_headers r =
  let rec go acc count =
    let line = read_line r in
    if line = "" then List.rev acc
    else if count >= max_header_count then
      raise (Fail (Bad_request "too many headers"))
    else if line.[0] = ' ' || line.[0] = '\t' then
      match acc with
      | [] -> raise (Fail (Bad_request "continuation before first header"))
      | (name, value) :: rest ->
          let value = value ^ " " ^ trim_ows line in
          if String.length value > max_line then
            raise (Fail (Bad_request "header value too long"));
          go ((name, value) :: rest) (count + 1)
    else
      match String.index_opt line ':' with
      | None | Some 0 -> raise (Fail (Bad_request "malformed header"))
      | Some i ->
          let name = String.sub line 0 i in
          if not (String.for_all is_tchar name) then
            raise (Fail (Bad_request "malformed header name"));
          let value = trim_ows (String.sub line (i + 1) (String.length line - i - 1)) in
          go ((String.lowercase_ascii name, value) :: acc) (count + 1)
  in
  go [] 0

let find_header headers name =
  List.assoc_opt (String.lowercase_ascii name) headers

let content_length headers =
  match List.filter (fun (n, _) -> n = "content-length") headers with
  | [] -> None
  | (_, v) :: rest ->
      if List.exists (fun (_, v') -> v' <> v) rest then
        raise (Fail (Bad_request "conflicting content-length"));
      if v = "" || not (String.for_all (function '0' .. '9' -> true | _ -> false) v)
      then raise (Fail (Bad_request "malformed content-length"));
      (* 19 digits can overflow int; anything that long is absurd anyway. *)
      if String.length v > 15 then raise (Fail Payload_too_large);
      Some (int_of_string v)

let default_max_body = 1 lsl 20

let read_request ?(max_body = default_max_body) r =
  r.sawbytes <- false;
  match
    let meth, path, query, version = parse_request_line (read_line r) in
    let headers = read_headers r in
    if find_header headers "transfer-encoding" <> None then
      raise (Fail (Bad_request "transfer-encoding not supported"));
    let body =
      match content_length headers with
      | None -> ""
      | Some n ->
          if n > max_body then raise (Fail Payload_too_large);
          read_exactly r n
    in
    { meth; path; query; version; headers; body }
  with
  | req -> Ok req
  | exception Fail e -> Error e

let header req name = find_header req.headers name

let query_param req name = List.assoc_opt name req.query

let keep_alive req =
  let conn =
    Option.map String.lowercase_ascii (header req "connection")
  in
  match req.version, conn with
  | _, Some "close" -> false
  | "HTTP/1.0", Some "keep-alive" -> true
  | "HTTP/1.0", _ -> false
  | _, _ -> true

(* --- responses --- *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

let status_reason = function
  | 200 -> "OK"
  | 201 -> "Created"
  | 204 -> "No Content"
  | 409 -> "Conflict"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 413 -> "Payload Too Large"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | s when s >= 200 && s < 300 -> "OK"
  | s when s >= 400 && s < 500 -> "Client Error"
  | _ -> "Server Error"

let response ?(headers = []) ~status body =
  { status; reason = status_reason status; resp_headers = headers; resp_body = body }

let response_to_string ?(keep_alive = true) resp =
  let b = Buffer.create (256 + String.length resp.resp_body) in
  Buffer.add_string b
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" resp.status resp.reason);
  List.iter
    (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" n v))
    resp.resp_headers;
  Buffer.add_string b
    (Printf.sprintf "Content-Length: %d\r\n" (String.length resp.resp_body));
  Buffer.add_string b
    (if keep_alive then "Connection: keep-alive\r\n" else "Connection: close\r\n");
  Buffer.add_string b "\r\n";
  Buffer.add_string b resp.resp_body;
  Buffer.contents b

let read_response r =
  r.sawbytes <- false;
  match
    let line = read_line r in
    let status =
      match String.split_on_char ' ' line with
      | version :: code :: _
        when String.length version >= 5 && String.sub version 0 5 = "HTTP/" -> (
          match int_of_string_opt code with
          | Some s when s >= 100 && s <= 599 -> s
          | _ -> raise (Fail (Bad_request "malformed status code")))
      | _ -> raise (Fail (Bad_request "malformed status line"))
    in
    let headers = read_headers r in
    let body =
      match content_length headers with
      | None -> ""
      | Some n -> read_exactly r n
    in
    (status, headers, body)
  with
  | resp -> Ok resp
  | exception Fail e -> Error e

(* --- socket helpers --- *)

let write_all fd s =
  let len = String.length s in
  let pos = ref 0 in
  while !pos < len do
    let n = Unix.write_substring fd s !pos (len - !pos) in
    pos := !pos + n
  done
