type config = {
  host : string;
  port : int;
  workers : int;
  queue_cap : int;
  max_body : int;
  io_timeout_s : float;
  keepalive_max : int;
  default_deadline_ns : int option;
}

let default_workers =
  min 4 (max 1 (Domain.recommended_domain_count () - 1))

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    workers = default_workers;
    queue_cap = 64;
    max_body = 1 lsl 20;
    io_timeout_s = 10.0;
    keepalive_max = 100;
    default_deadline_ns = None;
  }

type t = {
  config : config;
  router : Router.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  pool : Pool.t;
  stopping : bool Atomic.t;
}

(* Built per shed (not prerendered): a 503 carries a freshly minted
   request id like every other response, so even rejected clients have
   a handle to quote back. *)
let shed_response id =
  Http.response_to_string ~keep_alive:false
    (Http.response
       ~headers:
         [
           ("Retry-After", "1");
           ("Content-Type", "application/json");
           ("X-Request-Id", id);
         ]
       ~status:503
       (Router.error_body ~kind:"overloaded" ~id "server overloaded"))

let start ?(config = default_config) router =
  (* A peer that disappears mid-write must surface as EPIPE, not kill
     the process. *)
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  (try
     Unix.bind fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let pool =
    Pool.create ~workers:config.workers ~queue_cap:config.queue_cap ()
  in
  Router.set_queue_depth router (fun () -> Pool.queue_depth pool);
  {
    config;
    router;
    listen_fd = fd;
    bound_port;
    pool;
    stopping = Atomic.make false;
  }

let port t = t.bound_port

let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* Wake a blocked accept: on Linux, shutting the listening socket
       down makes accept fail with EINVAL.  run() closes the fd. *)
    try Unix.shutdown t.listen_fd Unix.SHUTDOWN_ALL with _ -> ()

let install_signal_handlers t =
  let handler = Sys.Signal_handle (fun _ -> stop t) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler

(* Serve one connection: up to keepalive_max requests, closing on
   errors, Connection: close, or server shutdown.  Runs on a worker
   domain; all shared state it reaches (router registry, join cache) is
   synchronized. *)
let handle_conn t ~queued_at fd =
  let reader = Http.reader_of_fd fd in
  let send resp ~keep_alive =
    Http.write_all fd (Http.response_to_string ~keep_alive resp)
  in
  let fail ~status ~kind msg =
    (* The request never parsed, so there is no inbound header to
       honor: mint an id anyway — even a 400 is a wide event and an
       X-Request-Id the client can quote.  The body is the same error
       envelope the router emits. *)
    let id = Xfrag_obs.Reqid.mint () in
    Router.record t.router ~endpoint:"*" ~status ~ns:0;
    Xfrag_obs.Recorder.record ~endpoint:"*" ~status ~id
      ~outcome:"client_error" ();
    send ~keep_alive:false
      (Http.response
         ~headers:
           [ ("Content-Type", "application/json"); ("X-Request-Id", id) ]
         ~status
         (Router.error_body ~kind ~id msg))
  in
  (* Queue wait is charged to the connection's first request — the one
     that actually sat in the admission queue; keep-alive successors
     start service immediately. *)
  let queue_ns = Xfrag_obs.Clock.monotonic () - queued_at in
  let rec serve n =
    (* Fault site modelling the socket dying between requests: a raise
       here aborts only this connection (counted below), never the
       worker or its siblings. *)
    Xfrag_fault.Fault.Failpoint.hit "server.read";
    match Http.read_request ~max_body:t.config.max_body reader with
    | Error Http.Closed -> ()
    | Error Http.Timeout ->
        (* Mid-request: the client is too slow, tell it so.  Idle
           keep-alive connection: just hang up. *)
        if Http.in_message reader then
          fail ~status:408 ~kind:"timeout" "request read timeout"
    | Error (Http.Bad_request msg) -> fail ~status:400 ~kind:"bad_request" msg
    | Error Http.Payload_too_large ->
        fail ~status:413 ~kind:"payload_too_large" "request body too large"
    | Ok req ->
        let resp =
          Router.handle ~queue_ns:(if n = 0 then queue_ns else 0) t.router req
        in
        let keep_alive =
          Http.keep_alive req
          && n + 1 < t.config.keepalive_max
          && not (Atomic.get t.stopping)
        in
        send resp ~keep_alive;
        if keep_alive then serve (n + 1)
  in
  (* Any socket error (EPIPE, send timeout) just drops the connection —
     counted so /metrics shows containment doing its job. *)
  (try serve 0 with _ -> Xfrag_fault.Fault.record "connection_aborted");
  try Unix.close fd with _ -> ()

let accept_one t =
  let conn, _peer = Unix.accept t.listen_fd in
  (try
     Unix.setsockopt_float conn Unix.SO_RCVTIMEO t.config.io_timeout_s;
     Unix.setsockopt_float conn Unix.SO_SNDTIMEO t.config.io_timeout_s
   with _ -> ());
  let queued_at = Xfrag_obs.Clock.monotonic () in
  if not (Pool.submit t.pool (fun () -> handle_conn t ~queued_at conn)) then begin
    (* Queue full: shed inline from the accept loop. *)
    let id = Xfrag_obs.Reqid.mint () in
    Router.record_shed t.router;
    Xfrag_obs.Recorder.record ~endpoint:"*" ~status:503 ~id ~outcome:"shed" ();
    (try Http.write_all conn (shed_response id) with _ -> ());
    try Unix.close conn with _ -> ()
  end

let run t =
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match accept_one t with
      | () -> loop ()
      | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) ->
          loop ()
      | exception Unix.Unix_error ((Unix.EBADF | Unix.EINVAL), _, _) ->
          (* stop() shut the listening socket down. *)
          ()
  in
  loop ();
  Pool.shutdown t.pool;
  try Unix.close t.listen_fd with _ -> ()
