(** Tiny blocking HTTP/1.1 client — enough to drive {!Server} from the
    load-generator bench and the smoke tests without external tooling.
    One connection per call unless you hold a {!conn}. *)

type conn

val connect : ?timeout_s:float -> host:string -> port:int -> unit -> conn
(** @raise Unix.Unix_error when the connection is refused. *)

val close : conn -> unit

val request :
  conn ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** One request/response round-trip on the connection —
    [(status, headers, body)].  Adds [Host] and, for non-empty bodies,
    [Content-Length]. *)

val once :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** Connect, send one request with [Connection: close], read the
    response, close.  Connection errors come back as [Error]. *)

val with_retry :
  ?max_attempts:int ->
  ?base_delay_ms:int ->
  ?max_delay_ms:int ->
  ?sleep:(int -> unit) ->
  (attempt:int -> (int * (string * string) list * string, string) result) ->
  (int * (string * string) list * string, string) result
(** [with_retry f] runs [f ~attempt:0], retrying transient failures —
    connection-level [Error]s, 503 (shedding), 500 (engine escape) —
    up to [max_attempts] (default 4) total attempts, and returns the
    last result.  Any other status, 4xx included, is returned at once:
    it reflects the request, not the server's moment.

    The backoff before attempt [n+1] is the deterministic capped
    doubling [min max_delay_ms (base_delay_ms * 2^n)] (defaults 50 ms
    doubling to a 2 s cap) — no randomness, no wall-clock reads, so a
    retry schedule is exactly reproducible.  A [Retry-After: s] header
    on a retryable response raises the wait to [s] seconds (still
    capped); it never shortens it.  [sleep] (milliseconds; default
    [Unix.sleepf]) is injectable so tests can record the schedule
    instead of waiting it out.

    Retrying POSTs here is safe by design: the server's POST endpoints
    ([/query], [/explain], [/corpus/query]) are read-only evaluations —
    idempotent, so a replay after an ambiguous failure can at worst
    recompute an answer. *)

val once_retry :
  ?max_attempts:int ->
  ?base_delay_ms:int ->
  ?max_delay_ms:int ->
  ?sleep:(int -> unit) ->
  ?timeout_s:float ->
  host:string ->
  port:int ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** {!once} wrapped in {!with_retry}: each attempt is a fresh
    connection, so a worker dying mid-response or a shed 503 is
    absorbed by the backoff schedule. *)
