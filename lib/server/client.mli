(** Tiny blocking HTTP/1.1 client — enough to drive {!Server} from the
    load-generator bench and the smoke tests without external tooling.
    One connection per call unless you hold a {!conn}. *)

type conn

val connect : ?timeout_s:float -> host:string -> port:int -> unit -> conn
(** @raise Unix.Unix_error when the connection is refused. *)

val close : conn -> unit

val request :
  conn ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** One request/response round-trip on the connection —
    [(status, headers, body)].  Adds [Host] and, for non-empty bodies,
    [Content-Length]. *)

val once :
  ?timeout_s:float ->
  host:string ->
  port:int ->
  meth:string ->
  path:string ->
  ?headers:(string * string) list ->
  ?body:string ->
  unit ->
  (int * (string * string) list * string, string) result
(** Connect, send one request with [Connection: close], read the
    response, close.  Connection errors come back as [Error]. *)
