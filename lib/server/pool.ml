type t = {
  jobs : (unit -> unit) Queue.t;
  queue_cap : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  on_error : exn -> unit;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.work_ready t.mutex
    done;
    (* Drain the queue even when stopping: shutdown promised every
       accepted job runs. *)
    if Queue.is_empty t.jobs then begin
      Mutex.unlock t.mutex;
      ()
    end
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      (try job () with e -> (try t.on_error e with _ -> ()));
      next ()
    end
  in
  next ()

let create ?(on_error = fun _ -> ()) ~workers ~queue_cap () =
  if workers < 1 then invalid_arg "Pool.create: workers < 1";
  if queue_cap < 1 then invalid_arg "Pool.create: queue_cap < 1";
  let t =
    {
      jobs = Queue.create ();
      queue_cap;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      stopping = false;
      domains = [];
      on_error;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let submit t job =
  with_lock t (fun () ->
      if t.stopping || Queue.length t.jobs >= t.queue_cap then false
      else begin
        Queue.push job t.jobs;
        Condition.signal t.work_ready;
        true
      end)

let queue_depth t = with_lock t (fun () -> Queue.length t.jobs)

let workers t = List.length t.domains

let shutdown t =
  let ds =
    with_lock t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.work_ready;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join ds
