module Fault = Xfrag_fault.Fault

type t = {
  jobs : (unit -> unit) Queue.t;
  queue_cap : int;
  mutex : Mutex.t;
  work_ready : Condition.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  mutable live : int;
  mutable restarts : int;
  restart_cap : int;
  mutable degraded : bool;
  on_error : exn -> unit;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let worker_loop t =
  let rec next () =
    (* Fault site placed before the queue is touched: a worker killed
       here loses no accepted connection — the job stays queued for a
       sibling or the replacement worker. *)
    Fault.Failpoint.hit "server.worker";
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.work_ready t.mutex
    done;
    (* Drain the queue even when stopping: shutdown promised every
       accepted job runs. *)
    if Queue.is_empty t.jobs then begin
      Mutex.unlock t.mutex;
      ()
    end
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      (try job () with e -> (try t.on_error e with _ -> ()));
      next ()
    end
  in
  next ()

(* Same supervision discipline as [Shard_pool]: a dying worker is
   counted, logged, and replaced up to [restart_cap] lifetime restarts;
   past the cap the pool degrades to the surviving workers.  With zero
   survivors [submit] refuses new jobs, so the accept loop sheds with
   503 instead of queueing connections nobody will serve.  The
   supervisor returns normally so shutdown's [Domain.join] stays
   clean. *)
let rec supervised t () =
  match worker_loop t with
  | () -> with_lock t (fun () -> t.live <- t.live - 1)
  | exception e ->
      Fault.record "server_worker_restarts";
      with_lock t (fun () ->
          t.live <- t.live - 1;
          if (not t.stopping) && t.restarts < t.restart_cap then begin
            t.restarts <- t.restarts + 1;
            Printf.eprintf
              "xfrag: server worker died (%s); restarting (%d/%d)\n%!"
              (Printexc.to_string e) t.restarts t.restart_cap;
            t.live <- t.live + 1;
            t.domains <- Domain.spawn (supervised t) :: t.domains
          end
          else if not t.degraded then begin
            t.degraded <- true;
            Fault.record "server_pool_degraded";
            Printf.eprintf
              "xfrag: server worker died (%s); restart cap %d reached, \
               degrading to %d worker(s)\n%!"
              (Printexc.to_string e) t.restart_cap t.live;
            (* Snapshot the request history before degraded-mode traffic
               overwrites the ring — this is the moment a human reads it. *)
            if Xfrag_obs.Recorder.enabled () then
              Xfrag_obs.Recorder.dump ~reason:"server pool degraded" stderr
          end)

let create ?(on_error = fun _ -> ()) ?(restart_cap = 8) ~workers ~queue_cap ()
    =
  if workers < 1 then invalid_arg "Pool.create: workers < 1";
  if queue_cap < 1 then invalid_arg "Pool.create: queue_cap < 1";
  let t =
    {
      jobs = Queue.create ();
      queue_cap;
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      stopping = false;
      domains = [];
      live = workers;
      restarts = 0;
      restart_cap = max 0 restart_cap;
      degraded = false;
      on_error;
    }
  in
  t.domains <- List.init workers (fun _ -> Domain.spawn (supervised t));
  t

let submit t job =
  with_lock t (fun () ->
      if t.stopping || t.live < 1 || Queue.length t.jobs >= t.queue_cap then
        false
      else begin
        Queue.push job t.jobs;
        Condition.signal t.work_ready;
        true
      end)

let queue_depth t = with_lock t (fun () -> Queue.length t.jobs)

let workers t = with_lock t (fun () -> t.live)

let restarts t = with_lock t (fun () -> t.restarts)

let degraded t = with_lock t (fun () -> t.degraded)

let shutdown t =
  let ds =
    with_lock t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.work_ready;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join ds
