(** Minimal HTTP/1.1 message layer for {!Server} — hand-rolled on the
    stdlib, no external dependency.

    Scope: request line + headers + [Content-Length] bodies, keep-alive,
    and the handful of status codes the server actually emits (200, 400,
    404, 405, 408, 413, 500, 503).  Chunked transfer encoding is
    rejected with 400 rather than implemented.

    Parsing reads from a {!reader}, an abstraction over "give me more
    bytes" that can wrap a socket, a string, or a function — so the
    parser is unit-testable without sockets (folding, pipelining,
    malformed request lines, oversized bodies). *)

(** {2 Readers} *)

type reader

val reader_of_string : string -> reader
(** A reader over an in-memory byte sequence (tests; pipelined request
    streams). *)

val reader_of_fd : Unix.file_descr -> reader
(** A reader over a socket or file.  A receive timeout set on the fd
    ([SO_RCVTIMEO]) surfaces as [Error Timeout] from the parser. *)

val reader_of_function : (bytes -> int -> int -> int) -> reader
(** [reader_of_function refill]: [refill buf pos len] returns the number
    of bytes written into [buf] at [pos] (≤ [len]), 0 at end of input. *)

(** {2 Requests} *)

type request = {
  meth : string;  (** verb, verbatim (["GET"], ["POST"], …) *)
  path : string;  (** request target up to ['?'], percent-decoded *)
  query : (string * string) list;  (** decoded query parameters, in order *)
  version : string;  (** ["HTTP/1.0"] or ["HTTP/1.1"] *)
  headers : (string * string) list;
      (** names lowercased, values trimmed, obs-folds unfolded;
          in arrival order *)
  body : string;
}

type error =
  | Bad_request of string  (** malformed message → respond 400 *)
  | Payload_too_large  (** declared [Content-Length] over the cap → 413 *)
  | Timeout  (** slow client: the reader's receive timeout fired *)
  | Closed  (** clean EOF before a request line (keep-alive end) *)

val in_message : reader -> bool
(** Did the last [read_request]/[read_response] consume any bytes
    before failing?  Distinguishes a slow client mid-request (worth a
    408 response) from an idle keep-alive connection timing out (just
    close it). *)

val read_request : ?max_body:int -> reader -> (request, error) result
(** Parse one request.  Reads exactly one message from the reader, so
    calling it again on the same reader yields the next pipelined
    request.  [max_body] (default 1 MiB) caps the declared
    [Content-Length].  EOF in the middle of a message (after any byte of
    it has been read) is [Bad_request], not [Closed]. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first match). *)

val query_param : request -> string -> string option

val keep_alive : request -> bool
(** HTTP/1.1 defaults to persistent unless [Connection: close];
    HTTP/1.0 is persistent only with [Connection: keep-alive]. *)

(** {2 Responses} *)

type response = {
  status : int;
  reason : string;
  resp_headers : (string * string) list;
  resp_body : string;
}

val response : ?headers:(string * string) list -> status:int -> string -> response
(** [reason] is derived from [status]. *)

val status_reason : int -> string

val response_to_string : ?keep_alive:bool -> response -> string
(** Serialized message with [Content-Length] and [Connection] headers
    added (default [keep_alive:true]). *)

val read_response : reader -> (int * (string * string) list * string, error) result
(** Client side: parse one response — [(status, headers, body)].  The
    body requires a [Content-Length] (the server always sends one). *)

(** {2 Socket helpers} *)

val write_all : Unix.file_descr -> string -> unit
(** Loop until written.  @raise Unix.Unix_error on broken pipes and
    send timeouts — callers treat any failure as "drop the connection". *)
