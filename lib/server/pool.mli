(** Fixed pool of worker domains draining a bounded job queue — the
    server's admission-control core.

    The queue bound is the load-shedding mechanism: {!submit} never
    blocks, it returns [false] when the queue is full (or the pool is
    shutting down) and the caller sheds the request (HTTP 503) instead
    of letting an unbounded backlog grow.  A bounded queue keeps
    worst-case latency proportional to [queue_cap / workers] jobs,
    where unbounded accept would let every queued client time out.

    Workers are {!Domain}s, so jobs run in parallel; anything a job
    touches that is shared must be synchronized (the server shares an
    immutable {!Xfrag_core.Context} and a [~synchronized]
    {!Xfrag_core.Join_cache}).  A job that raises is dropped (the
    exception is swallowed after an optional [on_error] callback); it
    never kills the worker.

    {b Supervision}: a worker domain that nonetheless dies (the armed
    [server.worker] failpoint, or a bug outside the job wrapper) is
    detected, logged, counted in the [server_worker_restarts] fault
    counter, and replaced, up to [restart_cap] lifetime restarts.  The
    fault site sits before the queue is touched, so a killed worker
    never loses an accepted connection.  Past the cap the pool is
    {!degraded}: it serves with the surviving workers, and with zero
    survivors {!submit} refuses jobs so the accept loop sheds (503)
    instead of queueing connections nobody will serve. *)

type t

val create :
  ?on_error:(exn -> unit) ->
  ?restart_cap:int ->
  workers:int ->
  queue_cap:int ->
  unit ->
  t
(** Spawns [workers] ≥ 1 domains.  [queue_cap] ≥ 1 bounds jobs waiting
    (jobs being executed don't count).  [restart_cap] (default 8)
    bounds lifetime worker replacements. *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; [false] — without blocking — if the queue is at
    capacity, {!shutdown} has begun, or every worker is dead. *)

val queue_depth : t -> int
(** Jobs currently waiting (not yet picked up by a worker). *)

val workers : t -> int
(** Live worker domains (may shrink below the requested count after
    unreplaced deaths). *)

val restarts : t -> int
(** Worker replacements performed so far. *)

val degraded : t -> bool
(** The restart cap was reached; dead workers are no longer replaced. *)

val shutdown : t -> unit
(** Graceful drain: stop accepting new jobs, let workers finish every
    job already queued, then join them.  Idempotent; blocks until the
    pool is quiescent. *)
