(** Fixed pool of worker domains draining a bounded job queue — the
    server's admission-control core.

    The queue bound is the load-shedding mechanism: {!submit} never
    blocks, it returns [false] when the queue is full (or the pool is
    shutting down) and the caller sheds the request (HTTP 503) instead
    of letting an unbounded backlog grow.  A bounded queue keeps
    worst-case latency proportional to [queue_cap / workers] jobs,
    where unbounded accept would let every queued client time out.

    Workers are {!Domain}s, so jobs run in parallel; anything a job
    touches that is shared must be synchronized (the server shares an
    immutable {!Xfrag_core.Context} and a [~synchronized]
    {!Xfrag_core.Join_cache}).  A job that raises is dropped (the
    exception is swallowed after an optional [on_error] callback); it
    never kills the worker. *)

type t

val create :
  ?on_error:(exn -> unit) -> workers:int -> queue_cap:int -> unit -> t
(** Spawns [workers] ≥ 1 domains.  [queue_cap] ≥ 1 bounds jobs waiting
    (jobs being executed don't count). *)

val submit : t -> (unit -> unit) -> bool
(** Enqueue a job; [false] — without blocking — if the queue is at
    capacity or {!shutdown} has begun. *)

val queue_depth : t -> int
(** Jobs currently waiting (not yet picked up by a worker). *)

val workers : t -> int

val shutdown : t -> unit
(** Graceful drain: stop accepting new jobs, let workers finish every
    job already queued, then join them.  Idempotent; blocks until the
    pool is quiescent. *)
