type conn = { fd : Unix.file_descr; reader : Http.reader }

let connect ?(timeout_s = 10.0) ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; reader = Http.reader_of_fd fd }

let close c = try Unix.close c.fd with _ -> ()

let error_to_string = function
  | Http.Bad_request msg -> "malformed response: " ^ msg
  | Http.Payload_too_large -> "response too large"
  | Http.Timeout -> "response read timeout"
  | Http.Closed -> "connection closed"

let request c ~meth ~path ?(headers = []) ?(body = "") () =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  List.iter
    (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" n v))
    (("Host", "localhost") :: headers);
  if body <> "" then
    Buffer.add_string b
      (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  match
    Http.write_all c.fd (Buffer.contents b);
    Http.read_response c.reader
  with
  | Ok resp -> Ok resp
  | Error e -> Error (error_to_string e)
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let once ?timeout_s ~host ~port ~meth ~path ?(headers = []) ?body () =
  match connect ?timeout_s ~host ~port () with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          request c ~meth ~path
            ~headers:(("Connection", "close") :: headers)
            ?body ())
