type conn = { fd : Unix.file_descr; reader : Http.reader }

let connect ?(timeout_s = 10.0) ~host ~port () =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
     Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
   with e ->
     (try Unix.close fd with _ -> ());
     raise e);
  { fd; reader = Http.reader_of_fd fd }

let close c = try Unix.close c.fd with _ -> ()

let error_to_string = function
  | Http.Bad_request msg -> "malformed response: " ^ msg
  | Http.Payload_too_large -> "response too large"
  | Http.Timeout -> "response read timeout"
  | Http.Closed -> "connection closed"

let request c ~meth ~path ?(headers = []) ?(body = "") () =
  let b = Buffer.create 256 in
  Buffer.add_string b (Printf.sprintf "%s %s HTTP/1.1\r\n" meth path);
  List.iter
    (fun (n, v) -> Buffer.add_string b (Printf.sprintf "%s: %s\r\n" n v))
    (("Host", "localhost") :: headers);
  if body <> "" then
    Buffer.add_string b
      (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string b "\r\n";
  Buffer.add_string b body;
  match
    Http.write_all c.fd (Buffer.contents b);
    Http.read_response c.reader
  with
  | Ok resp -> Ok resp
  | Error e -> Error (error_to_string e)
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)

let once ?timeout_s ~host ~port ~meth ~path ?(headers = []) ?body () =
  match connect ?timeout_s ~host ~port () with
  | exception Unix.Unix_error (err, _, _) -> Error (Unix.error_message err)
  | c ->
      Fun.protect
        ~finally:(fun () -> close c)
        (fun () ->
          request c ~meth ~path
            ~headers:(("Connection", "close") :: headers)
            ?body ())

(* --- retries --- *)

let header_value name headers =
  let name = String.lowercase_ascii name in
  List.find_map
    (fun (n, v) ->
      if String.lowercase_ascii n = name then Some (String.trim v) else None)
    headers

let retry_after_ms headers =
  match header_value "retry-after" headers with
  | None -> None
  | Some v -> (
      match int_of_string_opt v with
      | Some s when s >= 0 -> Some (s * 1000)
      | _ -> None)

(* 503 is the server shedding load and 500 an engine escape; both are
   worth one more try.  Every other status — including 4xx — reflects
   the request itself and will not improve on replay. *)
let retryable = function
  | Error _ -> true
  | Ok (status, _, _) -> status = 500 || status = 503

let default_sleep ms =
  if ms > 0 then Unix.sleepf (float_of_int ms /. 1000.0)

let with_retry ?(max_attempts = 4) ?(base_delay_ms = 50) ?(max_delay_ms = 2000)
    ?(sleep = default_sleep) f =
  if max_attempts < 1 then invalid_arg "Client.with_retry: max_attempts < 1";
  let cap d = min max_delay_ms (max 0 d) in
  let rec go attempt =
    let result = f ~attempt in
    if attempt + 1 >= max_attempts || not (retryable result) then result
    else begin
      (* Deterministic capped doubling; a parseable Retry-After can
         lengthen the wait (still capped) but never shorten it. *)
      let backoff = cap (base_delay_ms * (1 lsl min attempt 20)) in
      let delay =
        match result with
        | Ok (_, headers, _) -> (
            match retry_after_ms headers with
            | Some ra -> max backoff (cap ra)
            | None -> backoff)
        | Error _ -> backoff
      in
      sleep delay;
      go (attempt + 1)
    end
  in
  go 0

let once_retry ?max_attempts ?base_delay_ms ?max_delay_ms ?sleep ?timeout_s
    ~host ~port ~meth ~path ?(headers = []) ?body () =
  with_retry ?max_attempts ?base_delay_ms ?max_delay_ms ?sleep
    (fun ~attempt:_ ->
      once ?timeout_s ~host ~port ~meth ~path ~headers ?body ())
