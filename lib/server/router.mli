(** Request dispatch for {!Server}: maps parsed {!Http.request}s to
    responses against one shared document context.

    Endpoints:
    - [POST /query] — evaluate a keyword query.  JSON body:
      [{"keywords": ["a","b"], "filter": "size<=5",
        "filters": {"max_size": 5, "max_height": 3, "max_width": 4},
        "strategy": "auto", "strict_leaf": false, "deadline_ms": 100,
        "limit": 50}] — everything but [keywords] optional; [filter]
      (CLI syntax) and [filters] (the common bounds spelled out) are
      conjoined.  Answer: [{"count", "strategy", "elapsed_ns",
      "answers": [{"root","label","nodes"}…], "stats": {…}}].
    - [POST /explain] — same body; runs EXPLAIN ANALYZE and returns the
      annotated operator tree as JSON.
    - [GET /healthz] — liveness probe, ["ok"].
    - [GET /metrics] — Prometheus text exposition of the server
      registry (request counts by endpoint and status, latency
      histograms, queue depth, shed count).

    Every request carries a deadline: [?deadline_ns=N] (query
    parameter) overrides the body's [deadline_ms], which overrides the
    router's default.  A query that exceeds it aborts cooperatively
    (see {!Xfrag_core.Deadline}) and answers 408.

    Wrong method on a known path is 405 with [Allow]; unknown paths are
    404; undecodable bodies are 400.  [handle] never raises. *)

type t

val create :
  ?cache:Xfrag_core.Join_cache.t ->
  ?default_deadline_ns:int ->
  ?queue_depth:(unit -> int) ->
  Xfrag_core.Context.t ->
  t
(** [cache] should be [~synchronized:true] when the server runs more
    than one worker (see {!Xfrag_core.Join_cache}).  [queue_depth]
    feeds the [server_queue_depth] gauge at scrape time. *)

val set_queue_depth : t -> (unit -> int) -> unit
(** Replace the queue-depth probe — {!Server.start} wires the pool's
    depth in here (the pool doesn't exist yet when the router is
    built). *)

val handle : t -> Http.request -> Http.response
(** Dispatch one request, recording per-endpoint request counters and
    latency into the registry. *)

val record : t -> endpoint:string -> status:int -> ns:int -> unit
(** Account a request the router never saw — the listener uses this for
    shed (503) and malformed (400/408/413) connections. *)

val record_shed : t -> unit
(** Bump the load-shedding counter (and the 503 request counter). *)

val metrics_page : t -> string
(** The [GET /metrics] body (also reachable through {!handle}). *)
