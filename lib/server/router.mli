(** Request dispatch for {!Server}: maps parsed {!Http.request}s to
    responses against one shared document context (and, when serving a
    collection, a corpus).

    Endpoints:
    - [POST /query] — evaluate a keyword query.  JSON body: the
      {!Xfrag_core.Exec.Request} codec —
      [{"keywords": ["a","b"], "filter": "size<=5",
        "filters": {"max_size": 5, "max_height": 3, "max_width": 4},
        "strategy": "auto", "strict_leaf": false, "deadline_ms": 100,
        "limit": 50}] — everything but [keywords] optional; [filter]
      (CLI syntax) and [filters] (the common bounds spelled out) are
      conjoined.  Answer: [{"count", "strategy", "elapsed_ns",
      "answers": [{"root","label","nodes"}…], "stats": {…}}].
    - [POST /explain] — same body; runs EXPLAIN ANALYZE and returns the
      annotated operator tree as JSON.
    - [POST /corpus/query] — same body, evaluated against every corpus
      document on the sharded engine ({!Xfrag_core.Corpus.run}); hits
      are ranked and carry their document.  Answer: [{"count",
      "total_answers", "deadline_expired", "elapsed_ns", "merge_ns",
      "shards": [{"shard","docs","nodes","elapsed_ns",
      "deadline_expired"}…], "hits": [{"doc","score","root","label",
      "nodes"}…], "stats"}].  A JSON {e array} body is a batch: each
      element is one request, evaluated back to back under the single
      admission ticket the HTTP request was admitted on; the answer is
      [{"results": […]}].  Batches are capped (400 above the cap).  A
      deadline that expires mid-corpus-run returns the partial merge
      with ["deadline_expired": true] — a 200, not a 408.
    - [PUT /corpus/docs/{name}] — create or replace the named document;
      the body is the document XML, parsed and quarantine-checked
      exactly like {!Xfrag_doctree.Loader} (the [parse.document]
      failpoint runs keyed by the name; any parse failure is a
      structured 400 with [kind "parse_error"] and no corpus change).
      201 on create, 200 on replace; the answer carries ["created"] /
      ["replaced"], the parsed node count, and the new corpus size.
      The change is visible to the next [POST /corpus/query] without a
      restart, and a replace retires only that document's join-cache
      partition.
    - [GET /corpus/docs/{name}] — per-document stats
      ([{"doc","nodes","keywords","generation"}]); 404 for unknown
      names.
    - [DELETE /corpus/docs/{name}] — remove the document (404 if
      absent); the corpus index retracts it incrementally, degrading to
      a full rebuild and then to index-less full scans if maintenance
      fails (see {!Xfrag_core.Corpus.remove}).
    - [GET /corpus/docs] — the collection listing: ["count"] plus
      per-document stats rows.  An empty collection is a legal answer
      (a server can boot with no corpus and be populated by PUTs).
    - [GET /corpus/stats] — corpus shape: document and node totals, the
      corpus-index shape (["docs"]/["vocabulary"]/["postings"], [null]
      once index maintenance has failed and the corpus runs full
      scans), and the join-cache counters ([null] without a cache).
    - [GET /healthz] — liveness probe, ["ok"].
    - [GET /metrics] — Prometheus text exposition of the server
      registry (request counts by endpoint and status, latency
      histograms, queue depth, shed count, and after corpus queries the
      [corpus_shards] gauge plus [corpus_shard_elapsed_ns] /
      [corpus_merge_ns] histograms).
    - [GET /debug/requests] — the flight recorder's retained wide
      events ({!Xfrag_obs.Recorder}), newest-last:
      [{"enabled", "count", "events": […]}].  [?n=N] caps the event
      count (default 64); [?id=ID] returns every retained event for
      that request id instead.
    - [GET /debug/slow] — retained events whose [total_ns] meets the
      slow threshold ([?ms=N] override; default the router's
      [slow_ms], else 100 ms), plus ["threshold_ns"].

    Every response — including 400/404/405/408/500s — carries an
    [X-Request-Id] header: the client's (when it passes
    {!Xfrag_obs.Reqid.valid}) or a freshly minted id.  The id rides
    inside {!Xfrag_core.Exec.Request} through eval and corpus sharding
    (trace spans, [doc_error] rows), is echoed in 2xx/500 JSON bodies
    as ["request_id"], keys the request's wide event in
    [/debug/requests], and prefixes the access-log line.

    All three POST bodies decode through the single
    {!Xfrag_core.Exec.Request.of_json} codec; the router adds only the
    [?deadline_ns=N] query-parameter override, which beats the body's
    [deadline_ms], which beats the router's default.  A [/query] or
    [/explain] evaluation that exceeds its deadline aborts cooperatively
    (see {!Xfrag_core.Deadline}) and answers 408.

    {b Errors.}  Every error response, on every endpoint, is the
    uniform envelope [{"error": {"kind", "message", "request_id", …}}]:
    [kind] is a stable machine-readable discriminator ([bad_request],
    [parse_error], [not_found], [method_not_allowed], [deadline],
    [fault_injected], [internal], [overloaded], …), [message] the
    human-oriented text, and [request_id] the same id as the header.
    Fault-injected 500s add ["site"]; 405s add ["allow"].  {e Deprecated
    aliases} (kept one release): [kind] / [site] / [request_id] are
    mirrored at the top level of the body, where pre-envelope responses
    carried them.  Wrong method on a known path is 405 with an [Allow]
    header and the allowed-method list in the body; unknown paths are
    404; undecodable bodies are 400.  [handle] never raises.

    {b Mutability.}  The router holds the corpus as an atomically
    swapped snapshot: every request pins the current value once and
    computes against it for its whole lifetime (queries are never
    torn), while writers (PUT/DELETE) serialize on a small writer mutex
    and publish functionally-updated corpora.  Write-path telemetry:
    [corpus.put]/[corpus.delete] counters and latency histograms,
    [corpus.writer_wait_ns], and [index.retract_ns] on the metrics
    page; each mutation is a wide event under the
    ["/corpus/docs/{name}"] endpoint label.  Fault sites: [corpus.write]
    fires inside the writer lock before any state change (an injected
    failure 500s with the snapshot untouched); the corpus-maintenance
    ladder ([index.retract] → rebuild → no index) is documented at
    {!Xfrag_core.Corpus.remove}. *)

type t

val create :
  ?cache:Xfrag_core.Join_cache.t ->
  ?default_deadline_ns:int ->
  ?queue_depth:(unit -> int) ->
  ?corpus:Xfrag_core.Corpus.t ->
  ?shards:int ->
  ?slow_ms:int ->
  ?access_log:out_channel ->
  Xfrag_core.Context.t ->
  t
(** [cache] should be [~synchronized:true] when the server runs more
    than one worker (see {!Xfrag_core.Join_cache}); it serves [/query],
    [/explain], and — now that the cache partitions per document —
    [POST /corpus/query] as well (see {!Xfrag_core.Corpus.run} for the
    sharding rule).  [corpus] seeds the mutable collection (default
    empty; [POST /corpus/query] 404s while the collection is empty, but
    [PUT /corpus/docs/{name}] can populate a server started without
    one); [shards] pins its shard count (default: the
    {!Xfrag_core.Corpus.run} default — [XFRAG_SHARDS] or the pool's
    parallelism).  [queue_depth] feeds the [server_queue_depth] gauge at
    scrape time.  [slow_ms] sets the [/debug/slow] default threshold
    and arms SLOW mirror lines; [access_log] (e.g. [stderr] or an
    opened [--access-log] file) receives one structured JSON line per
    request — absent, no access logging. *)

val set_queue_depth : t -> (unit -> int) -> unit
(** Replace the queue-depth probe — {!Server.start} wires the pool's
    depth in here (the pool doesn't exist yet when the router is
    built). *)

val handle : ?queue_ns:int -> t -> Http.request -> Http.response
(** Dispatch one request, recording per-endpoint request counters and
    latency into the registry, one wide event into the flight recorder
    (stage timings, hit counts, cache deltas, outcome), and one
    access-log line.  [queue_ns] is the admission-queue wait the
    listener measured before a worker picked the connection up. *)

val record : t -> endpoint:string -> status:int -> ns:int -> unit
(** Account a request the router never saw — the listener uses this for
    shed (503) and malformed (400/408/413) connections. *)

val record_shed : t -> unit
(** Bump the load-shedding counter (and the 503 request counter). *)

val error_body : kind:string -> id:string -> string -> string
(** The uniform error envelope as a newline-terminated JSON body — for
    failures answered before any request reaches the router (the
    listener's shed 503s, unparsable 400s, read-timeout 408s), so every
    byte a client can ever see uses one error shape. *)

val metrics_page : t -> string
(** The [GET /metrics] body (also reachable through {!handle}). *)
