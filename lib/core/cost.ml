module Inverted_index = Xfrag_doctree.Inverted_index

type estimate = { cost : float; cardinality : float }

let set_growth_cap = 1.0e6

let cap x = Float.min x set_growth_cap

let rec selectivity = function
  | Filter.True -> 1.0
  | Filter.Size_at_most b -> Float.min 1.0 (0.1 *. float_of_int b)
  | Filter.Size_at_least _ -> 0.5
  | Filter.Height_at_most h -> Float.min 1.0 (0.2 *. float_of_int (h + 1))
  | Filter.Span_at_most w -> Float.min 1.0 (0.05 *. float_of_int (w + 1))
  | Filter.Diameter_at_most d -> Float.min 1.0 (0.15 *. float_of_int (d + 1))
  | Filter.Width_at_most w -> Float.min 1.0 (0.08 *. float_of_int (w + 1))
  | Filter.Depth_under _ -> 0.8
  | Filter.Labels_among ls -> Float.min 1.0 (0.1 *. float_of_int (List.length ls))
  | Filter.Contains_keyword _ -> 0.3
  | Filter.Root_label_is _ -> 0.2
  | Filter.Equal_depth _ -> 0.1
  | Filter.Not p -> 1.0 -. selectivity p
  | Filter.And (p, q) -> selectivity p *. selectivity q
  | Filter.Or (p, q) ->
      let a = selectivity p and b = selectivity q in
      a +. b -. (a *. b)

let rec estimate (ctx : Context.t) plan =
  match plan with
  | Plan.Scan_keyword k ->
      let n = float_of_int (Inverted_index.node_count ctx.index k) in
      { cost = n; cardinality = n }
  | Plan.Select (p, x) ->
      let e = estimate ctx x in
      { cost = e.cost +. e.cardinality; cardinality = e.cardinality *. selectivity p }
  | Plan.Pair_join (a, b) ->
      let ea = estimate ctx a and eb = estimate ctx b in
      let produced = ea.cardinality *. eb.cardinality in
      { cost = ea.cost +. eb.cost +. produced; cardinality = cap produced }
  | Plan.Pair_join_filtered (p, a, b) ->
      let ea = estimate ctx a and eb = estimate ctx b in
      let produced = ea.cardinality *. eb.cardinality in
      {
        cost = ea.cost +. eb.cost +. produced;
        cardinality = cap (produced *. selectivity p);
      }
  | Plan.Power_join (a, b) ->
      (* Literal powerset join: exponential in the operand sizes. *)
      let ea = estimate ctx a and eb = estimate ctx b in
      let subsets x = Float.min set_growth_cap (Float.pow 2.0 (Float.min x 40.0)) in
      let produced = subsets ea.cardinality *. subsets eb.cardinality in
      { cost = ea.cost +. eb.cost +. cap produced; cardinality = cap produced }
  | Plan.Fixed_point x | Plan.Fixed_point_reduced x ->
      let e = estimate ctx x in
      let rounds =
        match plan with
        | Plan.Fixed_point_reduced _ ->
            (* Reduction typically shrinks the round count; we assume
               half, plus the |F|² ⊖ probe. *)
            Float.max 1.0 (e.cardinality /. 2.0)
        | _ -> e.cardinality
      in
      let out = cap (e.cardinality *. e.cardinality) in
      let probe =
        match plan with
        | Plan.Fixed_point_reduced _ -> e.cardinality *. e.cardinality
        | _ -> 0.0
      in
      { cost = e.cost +. probe +. (rounds *. out *. e.cardinality /. 4.0); cardinality = out }
  | Plan.Fixed_point_filtered (p, x) ->
      let e = estimate ctx x in
      let seed = e.cardinality *. selectivity p in
      let out = cap (seed *. seed *. selectivity p) in
      { cost = e.cost +. (seed *. out); cardinality = out }

let cost ctx plan = (estimate ctx plan).cost
