module Inverted_index = Xfrag_doctree.Inverted_index
module Trace = Xfrag_obs.Trace
module Clock = Xfrag_obs.Clock
module Json = Xfrag_obs.Json

type strategy = Exec.strategy =
  | Brute_force
  | Naive_fixpoint
  | Set_reduction
  | Pushdown
  | Pushdown_reduction
  | Semi_naive
  | Auto

type outcome = {
  answers : Frag_set.t;
  stats : Op_stats.t;
  strategy_used : strategy;
  keyword_node_counts : (string * int) list;
  elapsed_ns : int;
  phase_ns : (string * int) list;
}

let strategy_name = Exec.strategy_name

let strategy_of_string = Exec.strategy_of_string

let all_strategies = Exec.all_strategies

(* Auto heuristics (§5): pushdown whenever the filter has a usable
   anti-monotonic part; otherwise choose set reduction when the reduction
   factor of the (small enough to probe) keyword sets clears a threshold,
   else the naive fixed point. *)
let rf_probe_limit = 48

let rf_threshold = 0.25

(* Returns the chosen strategy together with the probe's reduced sets,
   keyed by the {e physical} keyword-set values that were probed.  The
   probes are real work — they run the full O(n²)-join reduce — so they
   are charged to [stats] like any other operation, and when
   [Set_reduction] wins, its Theorem-1 fixed points reuse the reduced
   seeds instead of re-reducing them (the pre-probe code paid for every
   probe twice). *)
let choose_strategy ?stats ?cache ctx (q : Query.t) keyword_sets =
  let am, _residual = Filter.decompose q.filter in
  if am <> Filter.True then
    (* Theorem 3 applies.  Measured (bench E1/A1): delta iteration with
       pruning dominates every alternative — it performs the pruned
       convergence check of plain pushdown but re-joins only each round's
       discoveries.  Theorem 1's unchecked round count loses here: under
       pruning the fixed point converges earlier than |⊖| rounds, so
       skipping the check costs whole redundant rounds. *)
    (Semi_naive, [])
  else if List.for_all (fun s -> Frag_set.cardinal s <= rf_probe_limit) keyword_sets
  then begin
    let probes =
      List.map (fun s -> (s, Reduce.reduce ?stats ?cache ctx s)) keyword_sets
    in
    if
      List.exists
        (fun (s, r) -> Reduce.factor_of ~original:s ~reduced:r >= rf_threshold)
        probes
    then (Set_reduction, probes)
    else (Semi_naive, [])
  end
  else (Semi_naive, [])

let strict_leaf_filter ctx (q : Query.t) answers =
  Frag_set.filter
    (fun f ->
      let leaves = Fragment.leaves ctx f in
      List.for_all
        (fun k ->
          List.exists (fun n -> Inverted_index.node_contains ctx.Context.index n k) leaves)
        q.keywords)
    answers

let exec ?(clock = Clock.monotonic) ctx (r : Exec.Request.t) =
  (* One deterministic fault site per evaluation: arming it proves the
     callers' containment (router → 500, corpus → per-doc error). *)
  Xfrag_fault.Fault.Failpoint.hit "eval.request";
  let q = Exec.Request.to_query r in
  let strategy = r.Exec.Request.strategy in
  let strict_leaf_semantics = r.Exec.Request.strict_leaf in
  let cache = r.Exec.Request.cache in
  let trace = r.Exec.Request.trace in
  let deadline = r.Exec.Request.deadline in
  let stats = Op_stats.create () in
  let t0 = clock () in
  Trace.with_span trace
    ~attrs:[ ("keywords", Json.String (String.concat " " q.keywords)) ]
    "query"
  @@ fun () ->
  if Trace.is_enabled trace && r.Exec.Request.id <> "" then
    Trace.add_attr trace "request_id" (Json.String r.Exec.Request.id);
  let keyword_sets = List.map (Selection.keyword ~trace ctx) q.keywords in
  let keyword_node_counts =
    List.map2 (fun k s -> (k, Frag_set.cardinal s)) q.keywords keyword_sets
  in
  let strategy_used, probes =
    match strategy with
    | Auto ->
        Trace.with_span trace "choose-strategy" (fun () ->
            let s, probes = choose_strategy ~stats ?cache ctx q keyword_sets in
            Trace.add_attr trace "chosen" (Json.String (strategy_name s));
            (s, probes))
    | s -> (s, [])
  in
  if Trace.is_enabled trace then
    Trace.add_attr trace "strategy" (Json.String (strategy_name strategy_used));
  (* Strategy-aware cache attachment: once the concrete strategy is
     known, ask the admission model whether memoization pays for it.
     Unpruned strategies carry huge intermediate fragments whose O(n)
     probe hashing rivals the join itself (measured: naive lost 4x with
     the cache on even at a 19% hit rate), so under the default policy
     they run detached — bit-identical answers, zero cache overhead —
     while the pushdown family keeps its 3-4x memoization win. *)
  let cache =
    match cache with
    | Some c
      when not
             (Join_cache.pays c
                ~pruned:
                  (match strategy_used with
                  | Pushdown | Pushdown_reduction | Semi_naive -> true
                  | Brute_force | Naive_fixpoint | Set_reduction | Auto ->
                      false)) ->
        None
    | _ -> cache
  in
  let t_scan = clock () in
  let answers =
    if List.exists Frag_set.is_empty keyword_sets then (Frag_set.empty ())
    else
      match strategy_used with
      | Auto -> assert false
      | Brute_force ->
          Selection.select ~stats ~trace ctx q.filter
            (Powerset.many_literal ~stats ?cache ~trace ~deadline ctx
               keyword_sets)
      | Naive_fixpoint ->
          Selection.select ~stats ~trace ctx q.filter
            (Powerset.many_via_fixed_points ~stats ?cache ~trace ~deadline
               ~fixed_point:(fun ?stats ?trace ctx set ->
                 Fixed_point.naive ?stats ?cache ?trace ~deadline ctx set)
               ctx keyword_sets)
      | Set_reduction ->
          (* Keyword sets contain only single-node fragments, the setting
             in which Theorem 1's unchecked round count is valid.  The
             Auto probe already reduced each seed (same physical sets),
             so hand those results over instead of re-reducing. *)
          Selection.select ~stats ~trace ctx q.filter
            (Powerset.many_via_fixed_points ~stats ?cache ~trace ~deadline
               ~fixed_point:(fun ?stats ?trace ctx set ->
                 let reduced = List.assq_opt set probes in
                 Fixed_point.with_reduction_unchecked ?stats ?cache ?trace
                   ~deadline ?reduced ctx set)
               ctx keyword_sets)
      | (Pushdown | Pushdown_reduction | Semi_naive) as s ->
          let am, residual = Filter.decompose q.filter in
          let keep f = Filter.evaluate ctx am f in
          let fixed_point =
            match s with
            | Pushdown ->
                fun ?stats ?trace ctx ~keep set ->
                  Fixed_point.naive_filtered ?stats ?cache ?trace ~deadline ctx
                    ~keep set
            | Semi_naive ->
                fun ?stats ?trace ctx ~keep set ->
                  Fixed_point.semi_naive ?stats ?cache ?trace ~deadline ~keep
                    ctx set
            | _ ->
                (* Pruned keyword seeds are single-node sets, where the
                   unchecked Theorem 1 round count is valid. *)
                fun ?stats ?trace ctx ~keep set ->
                  Fixed_point.with_reduction_filtered_unchecked ?stats ?cache
                    ?trace ~deadline ctx ~keep set
          in
          let joined =
            match
              List.map (fun s -> fixed_point ~stats ~trace ctx ~keep s) keyword_sets
            with
            | [] -> assert false
            | fp :: fps ->
                List.fold_left
                  (Join.pairwise_filtered ~stats ?cache ~trace ~deadline ctx ~keep)
                  fp fps
          in
          Selection.select ~stats ~trace ctx residual joined
  in
  let t_eval = clock () in
  let answers =
    if strict_leaf_semantics then begin
      Deadline.check deadline;
      Trace.with_span trace "strict-leaf" (fun () -> strict_leaf_filter ctx q answers)
    end
    else answers
  in
  let t_end = clock () in
  let phase_ns =
    [ ("scan", t_scan - t0); ("evaluate", t_eval - t_scan) ]
    @ if strict_leaf_semantics then [ ("strict-leaf", t_end - t_eval) ] else []
  in
  if Trace.is_enabled trace then
    Trace.add_attr trace "answers" (Json.Int (Frag_set.cardinal answers));
  {
    answers;
    stats;
    strategy_used;
    keyword_node_counts;
    elapsed_ns = t_end - t0;
    phase_ns;
  }

let run ?(strategy = Auto) ?(strict_leaf_semantics = false) ?cache
    ?(trace = Trace.disabled) ?clock ?(deadline = Deadline.none) ctx
    (q : Query.t) =
  exec ?clock ctx
    {
      (Exec.Request.of_query q) with
      Exec.Request.strategy;
      strict_leaf = strict_leaf_semantics;
      cache;
      trace;
      deadline;
    }

let answers ?strategy ?strict_leaf_semantics ?cache ?deadline ctx q =
  (run ?strategy ?strict_leaf_semantics ?cache ?deadline ctx q).answers
