(** Selection predicates ("filters", Definition 3) with an
    anti-monotonicity classification (Definition 11).

    A filter P is anti-monotonic iff P(f) implies P(f') for every
    subfragment f' ⊆ f.  Only such filters commute with join (Theorem 3)
    and may be pushed below join operations.  {!is_anti_monotonic} is a
    sound syntactic classification: [true] guarantees the property;
    [false] means "not guaranteed" (e.g. [Not] of an anti-monotonic
    filter, which the paper shows does not preserve the property).

    Filters that inspect keywords or labels need the document context, so
    evaluation takes a {!Context.t}. *)

type t =
  | True  (** satisfied by every fragment; anti-monotonic *)
  | Size_at_most of int  (** size(f) ≤ β (§3.3.1); anti-monotonic *)
  | Size_at_least of int  (** the paper's example of a non-anti-monotonic filter (§3.4) *)
  | Height_at_most of int  (** height(f) ≤ h (§3.3.2); anti-monotonic *)
  | Span_at_most of int  (** pre-order span ≤ w — the "horizontal distance" filter (§3.3.2); anti-monotonic *)
  | Diameter_at_most of int
      (** max tree distance (edges) between any two member nodes ≤ d;
          anti-monotonic — a node subset can only shrink the maximum *)
  | Width_at_most of int
      (** leaf-rank distance between the fragment's extreme nodes ≤ w —
          the paper's horizontal-distance filter (§3.3.2), see
          {!Fragment.width}; anti-monotonic *)
  | Depth_under of int  (** every node's absolute document depth ≤ d; anti-monotonic *)
  | Labels_among of string list  (** every node's label is in the list; anti-monotonic *)
  | Contains_keyword of string  (** some node's text contains the keyword; monotonic, hence NOT anti-monotonic *)
  | Root_label_is of string  (** fragment root has this label; not anti-monotonic *)
  | Equal_depth of string * string
      (** the paper's 'equal depth filter' (§3.4): every node containing
          the first keyword is at the same distance from the fragment
          root as every node containing the second; NOT anti-monotonic *)
  | Not of t
  | And of t * t
  | Or of t * t

val evaluate : Context.t -> t -> Fragment.t -> bool

val is_anti_monotonic : t -> bool
(** Sound syntactic classification (conjunction and disjunction preserve
    the property; negation and the inherently non-anti-monotonic leaves
    do not). *)

val conjuncts : t -> t list
(** Flatten nested [And]s. *)

val conjoin : t list -> t
(** Inverse of {!conjuncts}; [conjoin [] = True]. *)

val decompose : t -> t * t
(** [decompose p] splits a conjunction into
    [(anti_monotonic_part, residual)] with
    [p ≡ And (anti_monotonic_part, residual)].  The first component is
    always anti-monotonic; either component may be [True]. *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse the CLI filter syntax: a comma-separated conjunction of
    [size<=N], [height<=N], [span<=N], [diameter<=N], [width<=N], [depth<=N], [size>=N],
    [rootlabel=NAME], [labels=a|b|c], [keyword=K], [eqdepth=K1/K2],
    [true]; a term may be prefixed with [not:]. *)
