(** Document fragments (paper, Definition 2).

    A fragment is a set of document nodes whose induced subgraph is
    connected — equivalently, a node set with a unique minimal-depth
    member (the fragment root) such that every other member's parent is
    also a member.  Because node ids are pre-order ranks, the root is
    always the smallest id in the set.

    Values of this type are immutable and always connected: the checked
    constructors enforce connectivity, and the algebra's operations
    preserve it. *)

type t

val nodes : t -> Xfrag_util.Int_sorted.t
(** The node set, sorted ascending. *)

val root : t -> Xfrag_doctree.Doctree.node
(** The fragment root — the minimum id. *)

val size : t -> int
(** Number of nodes (the paper's [size(f)] filter measure). *)

val singleton : Xfrag_doctree.Doctree.node -> t
(** A single-node fragment (what the paper calls simply "a node"). *)

val of_nodes : Context.t -> int list -> t
(** Checked constructor.
    @raise Invalid_argument if the set is empty, contains out-of-range
    ids, or induces a disconnected subgraph. *)

val of_sorted : Context.t -> Xfrag_util.Int_sorted.t -> t
(** Checked constructor from an already-sorted set. *)

val of_sorted_unchecked : Xfrag_util.Int_sorted.t -> t
(** Trusted constructor for algebra internals: the caller guarantees the
    set is non-empty, sorted, and connected.  Joins use this to avoid
    re-validating sets they construct correct by design. *)

val is_connected : Context.t -> Xfrag_util.Int_sorted.t -> bool
(** Would this node set be a valid fragment? *)

val mem : Xfrag_doctree.Doctree.node -> t -> bool

val subfragment : t -> t -> bool
(** [subfragment f f'] — is [f] contained in [f'] (node-set inclusion,
    the paper's f ⊆ f')? *)

val equal : t -> t -> bool

val compare : t -> t -> int

val hash : t -> int

val height : Context.t -> t -> int
(** Vertical distance between the root and the deepest node (paper,
    §3.3.2). A single node has height 0. *)

val span : t -> int
(** Pre-order span [max id - min id] — a cheap anti-monotonic proxy for
    horizontal extent; see DESIGN.md. *)

val width : Context.t -> t -> int
(** The paper's "horizontal distance between extreme nodes"
    (§3.3.2), realized as leaf-rank distance: the difference between the
    rightmost and leftmost document-leaf ranks covered by the member
    nodes' subtree intervals.  A single leaf has width 0.  Anti-monotonic
    (removing members can only shrink the extremes). *)

val leaves : Context.t -> t -> Xfrag_doctree.Doctree.node list
(** Nodes of the fragment with no child inside the fragment (the
    fragment's own leaves, not the document's). *)

val depth_of : Context.t -> t -> Xfrag_doctree.Doctree.node -> int
(** Depth of a member node relative to the fragment root.
    @raise Invalid_argument if the node is not a member. *)

val contains_keyword : Context.t -> t -> string -> bool
(** Does some member node's text contain the keyword? *)

val to_xml : Context.t -> t -> Xfrag_xml.Xml_dom.node
(** Project the fragment back to an XML tree: member elements keep their
    labels and text; non-member descendants are omitted. *)

(** Hash-consing of fragments into dense integer identities.

    An interner assigns each structurally-distinct fragment a small id
    (0, 1, 2, …) the first time it is seen and returns the same id ever
    after.  Downstream tables — notably the join memo table in
    {!Join_cache} — can then key on an id pair (two machine words,
    O(1) hash and compare) instead of hashing whole node arrays per
    probe; the fragment is hashed once, at interning time per lookup,
    instead of once per bucket comparison.

    Ids are only meaningful relative to the interner that issued them
    (and, transitively, the document generation its fragments came
    from); {!clear} restarts the numbering. *)
module Interner : sig
  type fragment = t

  type t

  val create : unit -> t

  val intern : t -> fragment -> int
  (** The fragment's id, allocating a fresh one on first sight. *)

  val find : t -> fragment -> int option
  (** The id if already interned; never allocates. *)

  val size : t -> int
  (** Number of distinct fragments interned since creation/{!clear}. *)

  val clear : t -> unit
  (** Forget every interned fragment and restart ids at 0. *)
end

val pp : Format.formatter -> t -> unit
(** Prints the paper's ⟨n1, n2, …⟩ notation. *)

val pp_labeled : Context.t -> Format.formatter -> t -> unit
(** Like {!pp} but with node labels. *)
