(** EXPLAIN ANALYZE: execute the optimizer's chosen plan and annotate
    every operator with what actually happened — wall time, input and
    output cardinalities, and the operation-counter deltas (joins,
    pruned, duplicates, …) attributable to it.

    This is the audit view for {!Optimizer} / {!Eval.Auto}: the
    estimated cost that drove the plan choice is printed next to the
    measured per-operator reality, so a mis-costed rewrite is visible at
    a glance.

    Timings use an injectable {!Xfrag_obs.Clock.t}; pass
    {!Xfrag_obs.Clock.counter} to make the rendering deterministic
    (snapshot tests). *)

type node = {
  op : string;  (** rendered operator, e.g. ["σ size<=3"] or ["⋈"] *)
  rows : int;  (** output cardinality *)
  in_rows : int list;  (** input cardinalities, one per child *)
  self_ns : int;  (** wall time of this operator, children excluded *)
  counters : (string * int) list;
      (** non-zero {!Op_stats} deltas recorded while this operator ran
          (children excluded) *)
  children : node list;
}

type report = {
  query : Query.t;
  plan : Plan.t;  (** the optimizer's winner, the plan that was run *)
  estimated_cost : float;  (** the {!Cost} price that made it win *)
  root : node;
  answers : Frag_set.t;
  total_ns : int;  (** inclusive wall time of the whole plan *)
}

val analyze_request : ?clock:Xfrag_obs.Clock.t -> Context.t -> Exec.Request.t -> report
(** Optimize the request's query, execute the winning plan operator by
    operator, and annotate — the {!Exec.Request} entry point used by
    [POST /explain] and the CLI.  Uses the request's [cache] and
    [deadline]; [strategy] is ignored (the optimizer picks the plan) and
    [limit]/[strict_leaf] are presentation concerns EXPLAIN does not
    model.
    @raise Deadline.Expired once the request deadline passes.
    @raise Invalid_argument when no keyword survives normalization. *)

val analyze :
  ?clock:Xfrag_obs.Clock.t ->
  ?cache:Join_cache.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  Query.t ->
  report
(** @deprecated Optional-argument wrapper around {!analyze_request},
    kept for one release.

    Optimize [q], execute the winning plan operator by operator, and
    annotate.  The answers equal [Eval.answers ctx q] for the same plan
    semantics (property-tested).  With [cache], join operators serve
    repeated fragment joins from the memo table; the per-operator
    counter deltas then include [cache_hits]/[cache_misses]/
    [cache_evictions] (zero deltas are omitted, so cache-less reports
    are unchanged).  [deadline] bounds the execution like {!Eval.run}'s.
    @raise Deadline.Expired once [deadline] passes. *)

val total_ns : node -> int
(** Inclusive time: [self_ns] plus all descendants. *)

val pp_node : Format.formatter -> node -> unit

val pp : Format.formatter -> report -> unit
(** The full report: query, plan, estimated cost, measured total, and
    the indented per-operator tree. *)
