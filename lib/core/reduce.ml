module Trace = Xfrag_obs.Trace
module Json = Xfrag_obs.Json

let bump stats f = match stats with None -> () | Some s -> f s

let reduce_impl ?stats ?cache ctx set =
  let elems = Array.of_list (Frag_set.elements set) in
  let n = Array.length elems in
  if n <= 2 then set
  else begin
    (* Precompute all pairwise joins once: joins.(i).(j) for i < j. *)
    let joins =
      Array.init n (fun i ->
          Array.init n (fun j ->
              if j <= i then None
              else Some (Join.fragment ?stats ?cache ctx elems.(i) elems.(j))))
    in
    let join i j = Option.get (if i < j then joins.(i).(j) else joins.(j).(i)) in
    let keep f_idx =
      let f = elems.(f_idx) in
      let subsumed = ref false in
      let i = ref 0 in
      while (not !subsumed) && !i < n do
        if !i <> f_idx then begin
          let j = ref (!i + 1) in
          while (not !subsumed) && !j < n do
            if !j <> f_idx then begin
              bump stats (fun s ->
                  s.Op_stats.reduce_subset_checks <- s.Op_stats.reduce_subset_checks + 1);
              if Fragment.subfragment f (join !i !j) then subsumed := true
            end;
            incr j
          done
        end;
        incr i
      done;
      not !subsumed
    in
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if keep i then kept := elems.(i) :: !kept
    done;
    Frag_set.of_list !kept
  end

let reduce ?stats ?cache ?(trace = Trace.disabled) ctx set =
  if not (Trace.is_enabled trace) then reduce_impl ?stats ?cache ctx set
  else
    Trace.with_span trace
      ~attrs:[ ("in", Json.Int (Frag_set.cardinal set)) ]
      "reduce"
      (fun () ->
        let out = reduce_impl ?stats ?cache ctx set in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        out)

let factor_of ~original ~reduced =
  let a = Frag_set.cardinal original in
  if a = 0 then 0.0
  else float_of_int (a - Frag_set.cardinal reduced) /. float_of_int a

let reduction_factor ?stats ?cache ctx set =
  let a = Frag_set.cardinal set in
  if a = 0 then 0.0
  else factor_of ~original:set ~reduced:(reduce ?stats ?cache ctx set)
