type t =
  | Scan_keyword of string
  | Select of Filter.t * t
  | Pair_join of t * t
  | Pair_join_filtered of Filter.t * t * t
  | Power_join of t * t
  | Fixed_point of t
  | Fixed_point_reduced of t
  | Fixed_point_filtered of Filter.t * t

let initial (q : Query.t) =
  match List.map (fun k -> Scan_keyword k) q.keywords with
  | [] -> invalid_arg "Plan.initial: query has no keywords"
  | scan :: rest -> Select (q.filter, List.fold_left (fun acc s -> Power_join (acc, s)) scan rest)

let rec eval ?stats ?trace ctx = function
  | Scan_keyword k -> Selection.keyword ?trace ctx k
  | Select (p, x) -> Selection.select ?stats ?trace ctx p (eval ?stats ?trace ctx x)
  | Pair_join (a, b) ->
      Join.pairwise ?stats ?trace ctx (eval ?stats ?trace ctx a) (eval ?stats ?trace ctx b)
  | Pair_join_filtered (p, a, b) ->
      Join.pairwise_filtered ?stats ?trace ctx
        ~keep:(Filter.evaluate ctx p)
        (eval ?stats ?trace ctx a) (eval ?stats ?trace ctx b)
  | Power_join (a, b) ->
      Powerset.via_fixed_points ?stats ?trace ctx (eval ?stats ?trace ctx a)
        (eval ?stats ?trace ctx b)
  | Fixed_point x -> Fixed_point.naive ?stats ?trace ctx (eval ?stats ?trace ctx x)
  | Fixed_point_reduced x ->
      Fixed_point.with_reduction ?stats ?trace ctx (eval ?stats ?trace ctx x)
  | Fixed_point_filtered (p, x) ->
      Fixed_point.naive_filtered ?stats ?trace ctx
        ~keep:(Filter.evaluate ctx p)
        (eval ?stats ?trace ctx x)

let rec equal a b =
  match (a, b) with
  | Scan_keyword k, Scan_keyword k' -> String.equal k k'
  | Select (p, x), Select (p', x') -> p = p' && equal x x'
  | Pair_join (x, y), Pair_join (x', y') -> equal x x' && equal y y'
  | Pair_join_filtered (p, x, y), Pair_join_filtered (p', x', y') ->
      p = p' && equal x x' && equal y y'
  | Power_join (x, y), Power_join (x', y') -> equal x x' && equal y y'
  | Fixed_point x, Fixed_point x' -> equal x x'
  | Fixed_point_reduced x, Fixed_point_reduced x' -> equal x x'
  | Fixed_point_filtered (p, x), Fixed_point_filtered (p', x') -> p = p' && equal x x'
  | ( ( Scan_keyword _ | Select _ | Pair_join _ | Pair_join_filtered _ | Power_join _
      | Fixed_point _ | Fixed_point_reduced _ | Fixed_point_filtered _ ),
      _ ) ->
      false

let rec operator_count = function
  | Scan_keyword _ -> 1
  | Select (_, x) | Fixed_point x | Fixed_point_reduced x | Fixed_point_filtered (_, x) ->
      1 + operator_count x
  | Pair_join (a, b) | Power_join (a, b) -> 1 + operator_count a + operator_count b
  | Pair_join_filtered (_, a, b) -> 1 + operator_count a + operator_count b

let rec pp ppf = function
  | Scan_keyword k -> Format.fprintf ppf "F(%s)" k
  | Select (p, x) -> Format.fprintf ppf "\xCF\x83_{%a}(%a)" Filter.pp p pp x
  | Pair_join (a, b) -> Format.fprintf ppf "(%a \xE2\x8B\x88 %a)" pp a pp b
  | Pair_join_filtered (p, a, b) ->
      Format.fprintf ppf "(%a \xE2\x8B\x88[%a] %a)" pp a Filter.pp p pp b
  | Power_join (a, b) -> Format.fprintf ppf "(%a \xE2\x8B\x88* %a)" pp a pp b
  | Fixed_point x -> Format.fprintf ppf "%a\xE2\x81\xBA" pp x
  | Fixed_point_reduced x -> Format.fprintf ppf "%a\xE2\x81\xBA\xCA\xB3" pp x
  | Fixed_point_filtered (p, x) -> Format.fprintf ppf "%a\xE2\x81\xBA[%a]" pp x Filter.pp p

let pp_tree ppf plan =
  let rec go indent node =
    let pad = String.make indent ' ' in
    match node with
    | Scan_keyword k -> Format.fprintf ppf "%sscan keyword=%s@," pad k
    | Select (p, x) ->
        Format.fprintf ppf "%s\xCF\x83 %a@," pad Filter.pp p;
        go (indent + 2) x
    | Pair_join (a, b) ->
        Format.fprintf ppf "%s\xE2\x8B\x88@," pad;
        go (indent + 2) a;
        go (indent + 2) b
    | Pair_join_filtered (p, a, b) ->
        Format.fprintf ppf "%s\xE2\x8B\x88 [prune %a]@," pad Filter.pp p;
        go (indent + 2) a;
        go (indent + 2) b
    | Power_join (a, b) ->
        Format.fprintf ppf "%s\xE2\x8B\x88*@," pad;
        go (indent + 2) a;
        go (indent + 2) b
    | Fixed_point x ->
        Format.fprintf ppf "%sfixed-point@," pad;
        go (indent + 2) x
    | Fixed_point_reduced x ->
        Format.fprintf ppf "%sfixed-point [rounds = |\xE2\x8A\x96|]@," pad;
        go (indent + 2) x
    | Fixed_point_filtered (p, x) ->
        Format.fprintf ppf "%sfixed-point [prune %a]@," pad Filter.pp p;
        go (indent + 2) x
  in
  Format.fprintf ppf "@[<v>";
  go 0 plan;
  Format.fprintf ppf "@]"
