(** Logical query-evaluation trees (the trees of Figure 5).

    A plan is a symbolic expression over the algebra; {!eval} executes
    any plan, so algebraic rewrites (see {!Rewrite}) can be tested for
    semantics preservation by executing both sides.  The initial plan of
    a query is the paper's evaluation formula
    σ_P(F1 ⋈* F2 ⋈* … ⋈* Fm). *)

type t =
  | Scan_keyword of string  (** σ_{keyword=k}(nodes D) *)
  | Select of Filter.t * t  (** σ_P *)
  | Pair_join of t * t  (** ⋈ *)
  | Pair_join_filtered of Filter.t * t * t
      (** ⋈ discarding results that fail an anti-monotonic filter *)
  | Power_join of t * t  (** ⋈* *)
  | Fixed_point of t  (** F⁺, naive convergence check *)
  | Fixed_point_reduced of t  (** F⁺ via Theorem 1 round count *)
  | Fixed_point_filtered of Filter.t * t
      (** pruned fixed point (push-down inside rounds) *)

val initial : Query.t -> t
(** σ_P(F1 ⋈* … ⋈* Fm), joins left-associated. *)

val eval :
  ?stats:Op_stats.t -> ?trace:Xfrag_obs.Trace.t -> Context.t -> t -> Frag_set.t

val equal : t -> t -> bool

val operator_count : t -> int
(** Number of operator nodes in the plan tree. *)

val pp : Format.formatter -> t -> unit
(** One-line algebraic rendering, e.g. [σ_size<=3(F(xquery)⁺ ⋈ F(optimization)⁺)]. *)

val pp_tree : Format.formatter -> t -> unit
(** Multi-line indented rendering of the evaluation tree (Figure 5
    style). *)
