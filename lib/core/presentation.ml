type policy = All | Hide_subsumed | Nest

type group = { representative : Fragment.t; subsumed : Fragment.t list }

let proper_sub f g = (not (Fragment.equal f g)) && Fragment.subfragment f g

let maximal set =
  let elems = Frag_set.elements set in
  List.filter (fun f -> not (List.exists (proper_sub f) elems)) elems

let groups set =
  let elems = Frag_set.elements set in
  maximal set
  |> List.map (fun m ->
         { representative = m; subsumed = List.filter (fun f -> proper_sub f m) elems })

let overlap_ratio set =
  let n = Frag_set.cardinal set in
  if n = 0 then 0.0
  else begin
    let elems = Frag_set.elements set in
    let subsumed =
      List.length (List.filter (fun f -> List.exists (proper_sub f) elems) elems)
    in
    float_of_int subsumed /. float_of_int n
  end

let select policy set =
  match policy with
  | Nest -> groups set
  | Hide_subsumed -> List.map (fun g -> { g with subsumed = [] }) (groups set)
  | All ->
      List.map
        (fun f -> { representative = f; subsumed = [] })
        (Frag_set.elements set)

let snippet ?(window = 4) (ctx : Context.t) ~keywords f =
  let module Tok = Xfrag_doctree.Tokenizer in
  let norm_keywords = List.map Tok.normalize keywords in
  let word_matches w =
    match Tok.tokenize w with
    | [ tok ] -> List.mem tok norm_keywords
    | toks -> List.exists (fun t -> List.mem t norm_keywords) toks
  in
  let excerpt_of_node n =
    let text = Xfrag_doctree.Doctree.text ctx.Context.tree n in
    let words =
      String.split_on_char ' ' text |> List.filter (fun w -> String.trim w <> "")
    in
    let words = Array.of_list words in
    let n_words = Array.length words in
    let first_match = ref (-1) in
    (try
       Array.iteri
         (fun i w ->
           if word_matches w then begin
             first_match := i;
             raise Exit
           end)
         words
     with Exit -> ());
    if !first_match < 0 then None
    else begin
      let lo = max 0 (!first_match - window) in
      let hi = min (n_words - 1) (!first_match + window) in
      let buf = Buffer.create 64 in
      if lo > 0 then Buffer.add_string buf "\xE2\x80\xA6";
      for i = lo to hi do
        if i > lo then Buffer.add_char buf ' ';
        if word_matches words.(i) then begin
          Buffer.add_string buf "\xC2\xAB";
          Buffer.add_string buf words.(i);
          Buffer.add_string buf "\xC2\xBB"
        end
        else Buffer.add_string buf words.(i)
      done;
      if hi < n_words - 1 then Buffer.add_string buf "\xE2\x80\xA6";
      Some (Buffer.contents buf)
    end
  in
  let excerpts =
    Xfrag_util.Int_sorted.fold
      (fun acc n -> match excerpt_of_node n with Some e -> e :: acc | None -> acc)
      [] (Fragment.nodes f)
    |> List.rev
  in
  match excerpts with
  | [] ->
      let text = Xfrag_doctree.Doctree.text ctx.Context.tree (Fragment.root f) in
      let words =
        String.split_on_char ' ' text |> List.filter (fun w -> String.trim w <> "")
      in
      let head = List.filteri (fun i _ -> i <= 2 * window) words in
      String.concat " " head
  | es -> String.concat " \xE2\x80\xA6 " es

let pp ctx ppf gs =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i g ->
      if i > 0 then Format.fprintf ppf "@,";
      Format.fprintf ppf "%a" (Fragment.pp_labeled ctx) g.representative;
      List.iter
        (fun f ->
          Format.fprintf ppf "@,  \xE2\x86\xB3 %a" (Fragment.pp_labeled ctx) f)
        g.subsumed)
    gs;
  Format.fprintf ppf "@]"
