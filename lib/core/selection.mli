(** Selection σ_P (Definition 3). *)

val select :
  ?stats:Op_stats.t -> Context.t -> Filter.t -> Frag_set.t -> Frag_set.t
(** σ_P(F) = \{ f ∈ F | P(f) \}.  Counts rejected fragments in
    [stats.filtered]. *)

val keyword : Context.t -> string -> Frag_set.t
(** σ_{keyword=k}(nodes D) — the single-node fragments whose keywords
    contain [k] (§2.3), served by the inverted index. *)
