(** Selection σ_P (Definition 3). *)

val select :
  ?stats:Op_stats.t ->
  ?trace:Xfrag_obs.Trace.t ->
  Context.t ->
  Filter.t ->
  Frag_set.t ->
  Frag_set.t
(** σ_P(F) = \{ f ∈ F | P(f) \}.  Counts rejected fragments in
    [stats.filtered]; with an enabled [trace], records a [select] span
    with the filter and input/output cardinalities. *)

val keyword : ?trace:Xfrag_obs.Trace.t -> Context.t -> string -> Frag_set.t
(** σ_{keyword=k}(nodes D) — the single-node fragments whose keywords
    contain [k] (§2.3), served by the inverted index.  Traced as a
    [scan] span (the per-keyword posting-list lookup). *)
