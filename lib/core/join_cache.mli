(** Memoization of fragment joins (⋈, Definition 4).

    Every fixed-point strategy re-derives [Join.fragment] for fragment
    pairs it has already joined — the naive fixed point re-joins the
    whole [acc × seed] product each round, reduce pre-computes all
    pairwise joins, and ⋈*-heavy plans repeat subset joins across
    operands.  A join cache makes that reuse explicit: bounded LRU
    tables from unordered pairs of interned fragment ids to the joined
    fragment (which embeds the LCA path the join depended on, so the
    path computation is amortized away with it).

    {b Keying.}  Fragments are first interned ({!Fragment.Interner}) to
    dense ids; the memo key is the unordered id pair, exploiting join
    commutativity ([f1 ⋈ f2 = f2 ⋈ f1]).  A lookup therefore hashes each
    operand once, and bucket collisions compare two ints instead of two
    node arrays.

    {b Per-document scoping.}  Cached results are only valid for the
    context whose node numbering produced them, identified by
    {!Context.generation}.  Each generation gets its own {e partition} —
    an LRU table plus the interner that allocated its ids — so serving a
    different document warms a different partition instead of
    invalidating everything (the old design dropped the whole table on
    any generation change, so a cache shared by two documents thrashed
    to zero hits).  At most [max_docs] partitions are retained per
    stripe; evicting the least recently used partition discards its
    interner with it, which bounds memory and makes a stale hit
    impossible by construction: an interned id is only ever interpreted
    inside the partition that allocated it.

    {b Admission.}  Not every join is worth memoizing: on unpruned
    strategies the operands are huge intermediate fragments, and hashing
    one to probe the table costs as much as joining it.  The
    {!Admission} policy decides (a) whether attaching the cache {!pays}
    for a strategy at all — the evaluator detaches it when not — and
    (b) which individual results to store ([Min_nodes] size threshold,
    checked in O(1) before any hashing; [Second_touch] sketch that only
    stores keys missed twice).  Declined stores bump the [rejected]
    counter.  The default comes from [XFRAG_CACHE_ADMIT]
    ([all] | [none] | [second-touch] | a minimum combined operand node
    count), falling back to [Min_nodes 0]: store everything, but only on
    pruned (pushdown-family) strategies, where measurements show the
    cache always wins.

    {b Why answers are unchanged.}  [Join.fragment] is a pure function
    of the context and the two operands; the cache only ever returns a
    value previously computed by the same function for structurally
    equal operands under the same generation.  Strategy answer sets are
    therefore bit-identical with the cache on or off, under any
    admission policy and stripe count (property-tested).

    {b Concurrency.}  By default not domain-safe: [Join.pairwise_parallel]
    workers bypass the cache rather than serialize on a lock, and only
    the calling domain's sequential joins are memoized.  A cache created
    with [~synchronized:true] is split into [stripes] mutex-guarded
    segments — an unordered pair always lands on one stripe (chosen from
    the operands' O(1) root/size summaries), so worker domains contend
    only when they touch the same segment.  Within a stripe the lookup
    and the store are separate short critical sections, and the join
    itself — the expensive part, and the only part that can raise —
    always runs outside the lock, so an aborted evaluation (deadline,
    exception) can never leave a table mid-update.  Two workers racing
    on the same miss both compute the (pure, identical) join; one store
    wins.  Lifetime counters are [Atomic], so metrics pages read them
    without touching the stripe locks.

    A cache with capacity 0 is a legal no-op (always misses, stores
    nothing) — useful to exercise the "disabled" configuration through
    the same code path. *)

(** Store-admission policy, and the strategy-level "does caching pay"
    model derived from it. *)
module Admission : sig
  type t =
    | Admit_all  (** memoize every join, on every strategy *)
    | Admit_none  (** never memoize (the cache becomes a no-op) *)
    | Min_nodes of int
        (** store only joins whose combined operand node count meets the
            threshold; [Min_nodes 0] stores everything but still
            declines unpruned strategies (see {!pays}) *)
    | Second_touch
        (** store a key only the second time it misses, so one-shot
            joins never pay insert/evict churn *)

  val of_string : string -> (t, string) result
  (** Parses ["all"] | ["none"] | ["second-touch"] | a non-negative
      integer (as [Min_nodes]). *)

  val to_string : t -> string

  val default : unit -> t
  (** [XFRAG_CACHE_ADMIT] if set and well-formed, else [Min_nodes 0]. *)

  val pays : t -> pruned:bool -> bool
  (** Whether attaching a cache with this policy is expected to pay for
      a strategy; [pruned] says the strategy bounds its operands with an
      anti-monotone filter (pushdown family).  Unpruned strategies only
      pay under [Admit_all] or an explicit [Min_nodes n > 0]. *)
end

type t

val default_capacity : int
(** 65536 entries, divided evenly across stripes. *)

val create :
  ?synchronized:bool ->
  ?capacity:int ->
  ?stripes:int ->
  ?max_docs:int ->
  ?admission:Admission.t ->
  unit ->
  t
(** A fresh, empty cache.  [capacity <= 0] gives the no-op cache.
    [synchronized] (default false) makes the cache safe to share across
    domains/threads; only then does [stripes] apply (default
    [XFRAG_CACHE_STRIPES] or 8; unsynchronized caches always have one
    stripe and no mutex).  [max_docs] (default 4) bounds the retained
    per-document partitions {e per stripe}; worst-case resident entries
    are [max_docs * capacity].  [admission] defaults to
    {!Admission.default}. *)

val synchronized : t -> bool

val find_or_join :
  t ->
  ?stats:Op_stats.t ->
  Context.t ->
  Fragment.t ->
  Fragment.t ->
  join:(unit -> Fragment.t) ->
  Fragment.t
(** [find_or_join t ctx f1 f2 ~join] returns the memoized [f1 ⋈ f2] if
    present in [ctx]'s partition, else calls [join], stores its result
    if admitted, and returns it.  Bumps [stats.cache_hits] /
    [cache_misses] / [cache_evictions] / [cache_rejected] accordingly
    ([join] itself is expected to count the actual join work). *)

val enabled : t -> bool
(** [capacity t > 0] and the admission policy is not [Admit_none]. *)

val pays : t -> pruned:bool -> bool
(** {!enabled} and {!Admission.pays} for this cache's policy.  The
    evaluator consults this after strategy selection and detaches the
    cache from strategies where it would lose. *)

val capacity : t -> int

val stripes : t -> int

val max_docs : t -> int

val admission : t -> Admission.t

val length : t -> int
(** Live memo entries, summed across partitions and stripes. *)

val interned : t -> int
(** Distinct fragments interned across live partitions. *)

val partitions : t -> int
(** Live per-document partitions across all stripes. *)

val generation : t -> int
(** Generation of the most recently served context; [-1] before first
    use.  (Other generations' partitions may still be warm.) *)

val clear : t -> unit
(** Drop all partitions (entries and interned ids); cumulative counters
    survive. *)

val retire : t -> generation:int -> unit
(** Drop the one partition belonging to [generation] from every stripe
    (no-op if none is resident).  This is the document-mutation hook:
    replacing or deleting a document retires exactly that document's
    memo state — counted as an invalidation if it held entries — while
    every other resident document stays warm. *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int
(** Entry-level LRU evictions within partitions. *)

val invalidations : t -> int
(** Non-empty per-document partitions dropped by the [max_docs] bound
    (each lost one document's memo state). *)

val rejected : t -> int
(** Joins the admission policy declined to memoize. *)

val metrics_assoc : t -> (string * int) list
(** Lifetime counters and gauges as [("cache.hits", …); …] — ready for
    [Xfrag_obs.Metrics.add_assoc]. *)
