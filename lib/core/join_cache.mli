(** Memoization of fragment joins (⋈, Definition 4).

    Every fixed-point strategy re-derives [Join.fragment] for fragment
    pairs it has already joined — the naive fixed point re-joins the
    whole [acc × seed] product each round, reduce pre-computes all
    pairwise joins, and ⋈*-heavy plans repeat subset joins across
    operands.  A join cache makes that reuse explicit: a bounded LRU
    table from unordered pairs of interned fragment ids to the joined
    fragment (which embeds the LCA path the join depended on, so the
    path computation is amortized away with it).

    {b Keying.}  Fragments are first interned ({!Fragment.Interner}) to
    dense ids; the memo key is the unordered id pair, exploiting join
    commutativity ([f1 ⋈ f2 = f2 ⋈ f1]).  A lookup therefore hashes each
    operand once, and bucket collisions compare two ints instead of two
    node arrays.

    {b Invalidation.}  Cached results are only valid for the context
    whose node numbering produced them.  The cache tracks
    {!Context.generation}: serving a context with a different generation
    (a rebuilt document, another corpus member) atomically drops every
    entry and every interned id before the first lookup, so a stale hit
    is impossible by construction.  Rebuilding a corpus thus invalidates
    simply by virtue of {!Context.create} stamping fresh generations.

    {b Why answers are unchanged.}  [Join.fragment] is a pure function
    of the context and the two operands; the cache only ever returns a
    value previously computed by the same function for structurally
    equal operands under the same generation.  Strategy answer sets are
    therefore bit-identical with the cache on or off (property-tested).

    {b Concurrency.}  By default not domain-safe: [Join.pairwise_parallel]
    workers bypass the cache rather than serialize on a lock, and only
    the calling domain's sequential joins are memoized.  A cache created
    with [~synchronized:true] guards its table with a mutex so it can be
    shared across server worker domains: the lookup and the store are
    separate short critical sections, and the join itself — the
    expensive part, and the only part that can raise — always runs
    outside the lock, so an aborted evaluation (deadline, exception)
    can never leave the table mid-update.  Two workers racing on the
    same miss both compute the (pure, identical) join; one store wins.

    A cache with capacity 0 is a legal no-op (always misses, stores
    nothing) — useful to exercise the "disabled" configuration through
    the same code path. *)

type t

val default_capacity : int
(** 65536 entries. *)

val create : ?synchronized:bool -> ?capacity:int -> unit -> t
(** A fresh, empty cache.  [capacity <= 0] gives the no-op cache.
    [synchronized] (default false) makes the cache safe to share across
    domains/threads at the price of a mutex around lookups and stores. *)

val synchronized : t -> bool

val find_or_join :
  t ->
  ?stats:Op_stats.t ->
  Context.t ->
  Fragment.t ->
  Fragment.t ->
  join:(unit -> Fragment.t) ->
  Fragment.t
(** [find_or_join t ctx f1 f2 ~join] returns the memoized [f1 ⋈ f2] if
    present, else calls [join], stores its result, and returns it.
    Bumps [stats.cache_hits] / [cache_misses] / [cache_evictions]
    accordingly ([join] itself is expected to count the actual join
    work).  Adopts [ctx]'s generation first, invalidating stale
    entries. *)

val enabled : t -> bool
(** [capacity t > 0]. *)

val capacity : t -> int

val length : t -> int
(** Live memo entries. *)

val interned : t -> int
(** Distinct fragments interned under the current generation. *)

val generation : t -> int
(** Generation of the last context served; [-1] before first use. *)

val clear : t -> unit
(** Drop all entries and interned ids; cumulative counters survive. *)

val hits : t -> int

val misses : t -> int

val evictions : t -> int

val invalidations : t -> int
(** Generation changes observed (each dropped the whole table). *)

val metrics_assoc : t -> (string * int) list
(** Lifetime counters as [("cache.hits", …); …] — ready for
    [Xfrag_obs.Metrics.add_assoc]. *)
