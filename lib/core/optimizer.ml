type choice = {
  plan : Plan.t;
  estimated_cost : float;
  alternatives : (Plan.t * float) list;
  reduction_factors : (string * float) list;
}

let rf_threshold = 0.25

let rf_probe_limit = 48

let measured_reduction_factors ctx (q : Query.t) =
  List.filter_map
    (fun k ->
      let set = Selection.keyword ctx k in
      if Frag_set.cardinal set <= rf_probe_limit then
        Some (k, Reduce.reduction_factor ctx set)
      else None)
    q.keywords

let optimize ctx (q : Query.t) =
  let initial = Plan.initial q in
  let base = Rewrite.power_to_fixpoint initial in
  let reduction_factors = measured_reduction_factors ctx q in
  let reduction_profitable =
    reduction_factors <> []
    && List.exists (fun (_, rf) -> rf >= rf_threshold) reduction_factors
  in
  let candidates =
    [ base; Rewrite.push_selection base ]
    @ (if reduction_profitable then
         [ Rewrite.use_reduction base; Rewrite.optimize_fully initial ]
       else [])
  in
  (* Deduplicate structurally identical candidates (push_selection is the
     identity when the filter has no anti-monotonic part). *)
  let candidates =
    List.fold_left
      (fun acc p -> if List.exists (Plan.equal p) acc then acc else p :: acc)
      [] candidates
    |> List.rev
  in
  let priced = List.map (fun p -> (p, Cost.cost ctx p)) candidates in
  let sorted = List.sort (fun (_, a) (_, b) -> compare a b) priced in
  match sorted with
  | [] -> assert false
  | (plan, estimated_cost) :: _ ->
      { plan; estimated_cost; alternatives = sorted; reduction_factors }

let explain ctx q =
  let c = optimize ctx q in
  let buf = Buffer.create 512 in
  let ppf = Format.formatter_of_buffer buf in
  Format.fprintf ppf "@[<v>query: %a@," Query.pp q;
  Format.fprintf ppf "initial plan: %a@," Plan.pp (Plan.initial q);
  (match c.reduction_factors with
  | [] -> Format.fprintf ppf "reduction factors: (not probed)@,"
  | rfs ->
      Format.fprintf ppf "reduction factors:@,";
      List.iter (fun (k, rf) -> Format.fprintf ppf "  %-20s RF = %.2f@," k rf) rfs);
  Format.fprintf ppf "candidates:@,";
  List.iter
    (fun (p, cost) -> Format.fprintf ppf "  cost %12.1f  %a@," cost Plan.pp p)
    c.alternatives;
  Format.fprintf ppf "chosen evaluation tree:@,%a@]@." Plan.pp_tree c.plan;
  Buffer.contents buf
