module Clock = Xfrag_obs.Clock

exception Expired

type t = { limit : int; clock : Clock.t }

let none = { limit = max_int; clock = (fun () -> 0) }

let at ?(clock = Clock.monotonic) limit =
  (* max_int is reserved for [none]; an absolute deadline that far out
     is indistinguishable from no deadline anyway. *)
  { limit = min limit (max_int - 1); clock }

let after ?(clock = Clock.monotonic) ns = at ~clock (clock () + ns)

let is_none t = t.limit = max_int

let expired t = t.limit <> max_int && t.clock () > t.limit

let check t = if t.limit <> max_int && t.clock () > t.limit then raise Expired

let remaining_ns t =
  if t.limit = max_int then max_int else max 0 (t.limit - t.clock ())
