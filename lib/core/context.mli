(** Everything the algebra needs about one document, bundled: the tree,
    an LCA structure for fragment joins, and the keyword index for
    [σ_{keyword=k}] selections. *)

open Xfrag_doctree

type t = {
  tree : Doctree.t;
  lca : Lca.t;
  index : Inverted_index.t;
  generation : int;
      (** Process-unique stamp issued by {!create}.  Node ids only mean
          something relative to one built context, so anything caching
          derived results (see {!Join_cache}) must scope its entries by
          this stamp: the join cache keeps a partition per generation,
          so rebuilding a document — or interleaving documents of a
          corpus — never conflates entries across worlds. *)
}

val create : ?options:Tokenizer.options -> Doctree.t -> t

val of_xml : ?options:Tokenizer.options -> Xfrag_xml.Xml_dom.document -> t

val of_xml_string : ?options:Tokenizer.options -> string -> t
(** @raise Xfrag_xml.Xml_error.Parse_error on malformed XML. *)

val of_xml_file : ?options:Tokenizer.options -> string -> t

val size : t -> int
(** Number of document nodes. *)

val generation : t -> int
(** The context's generation stamp (see the field documentation). *)
