(** Cooperative cancellation deadlines for query evaluation.

    A deadline is an absolute instant on a {!Xfrag_obs.Clock.t}; the
    evaluation loops ({!Fixed_point} rounds, {!Powerset} subset
    enumeration, {!Join.pairwise} rows) call {!check} at allocation-free
    loop boundaries and abort with {!Expired} once the instant has
    passed.  This is what lets a server bound a pathological ⋈* — the
    powerset join is exponential in the worst case (the very reason the
    paper's Theorems 1–3 prune it), so a resident process must also
    bound it in wall-clock rather than trust the algebra.

    {b Placement contract.}  [check] is only ever called {e between}
    whole fragment joins, never inside {!Join_cache.find_or_join} — so
    an abort can cut an evaluation short but can never leave a shared
    join cache mid-update (every cached entry is a completed, valid
    join).  The regression test in [test_deadline.ml] relies on this.

    The no-deadline value {!none} reduces [check] to a single integer
    comparison with no clock read, so threading deadlines through the
    hot paths costs nothing when unused. *)

exception Expired
(** Raised by {!check} once the deadline has passed.  Escapes
    {!Eval.run} / {!Explain.analyze}; callers (e.g. the HTTP server's
    408 path) catch it at the request boundary. *)

type t

val none : t
(** Never expires; [check none] is a compare against [max_int]. *)

val after : ?clock:Xfrag_obs.Clock.t -> int -> t
(** [after ns] expires [ns] nanoseconds from now (on [clock], default
    {!Xfrag_obs.Clock.monotonic}).  [ns <= 0] is already expired. *)

val at : ?clock:Xfrag_obs.Clock.t -> int -> t
(** Absolute variant: expires when [clock ()] exceeds the given
    instant (same origin as the clock's). *)

val is_none : t -> bool

val expired : t -> bool
(** Has the instant passed?  Never true for {!none}. *)

val check : t -> unit
(** @raise Expired once {!expired} is true. *)

val remaining_ns : t -> int
(** Nanoseconds left ([max_int] for {!none}, 0 when expired). *)
