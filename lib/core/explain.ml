module Clock = Xfrag_obs.Clock

type node = {
  op : string;
  rows : int;
  in_rows : int list;
  self_ns : int;
  counters : (string * int) list;
  children : node list;
}

type report = {
  query : Query.t;
  plan : Plan.t;
  estimated_cost : float;
  root : node;
  answers : Frag_set.t;
  total_ns : int;
}

let rec total_ns n =
  List.fold_left (fun acc c -> acc + total_ns c) n.self_ns n.children

let filter_str p = Format.asprintf "%a" Filter.pp p

let op_label = function
  | Plan.Scan_keyword k -> Printf.sprintf "scan %s" k
  | Plan.Select (p, _) -> Printf.sprintf "\xCF\x83 %s" (filter_str p)
  | Plan.Pair_join _ -> "\xE2\x8B\x88"
  | Plan.Pair_join_filtered (p, _, _) ->
      Printf.sprintf "\xE2\x8B\x88 [prune %s]" (filter_str p)
  | Plan.Power_join _ -> "\xE2\x8B\x88*"
  | Plan.Fixed_point _ -> "fixed-point"
  | Plan.Fixed_point_reduced _ -> "fixed-point [rounds=|\xE2\x8A\x96|]"
  | Plan.Fixed_point_filtered (p, _) ->
      Printf.sprintf "fixed-point [prune %s]" (filter_str p)

(* [to_assoc] key order is stable, so positional subtraction is safe. *)
let counter_delta before after =
  List.map2 (fun (_, a) (k, b) -> (k, b - a)) before after
  |> List.filter (fun (_, d) -> d <> 0)

let analyze_query ?(clock = Clock.monotonic) ?cache ?deadline ctx (q : Query.t) =
  let choice = Optimizer.optimize ctx q in
  let stats = Op_stats.create () in
  (* Post-order: children are fully evaluated (and timed) first, so the
     window around the operator's own application measures it
     exclusively. *)
  let rec go plan =
    let children =
      match plan with
      | Plan.Scan_keyword _ -> []
      | Plan.Select (_, x)
      | Plan.Fixed_point x
      | Plan.Fixed_point_reduced x
      | Plan.Fixed_point_filtered (_, x) ->
          [ go x ]
      | Plan.Pair_join (a, b)
      | Plan.Pair_join_filtered (_, a, b)
      | Plan.Power_join (a, b) ->
          [ go a; go b ]
    in
    let child_sets = List.map fst children in
    let apply () =
      match (plan, child_sets) with
      | Plan.Scan_keyword k, [] -> Selection.keyword ctx k
      | Plan.Select (p, _), [ s ] -> Selection.select ~stats ctx p s
      | Plan.Pair_join _, [ a; b ] -> Join.pairwise ~stats ?cache ?deadline ctx a b
      | Plan.Pair_join_filtered (p, _, _), [ a; b ] ->
          Join.pairwise_filtered ~stats ?cache ?deadline ctx
            ~keep:(Filter.evaluate ctx p) a b
      | Plan.Power_join _, [ a; b ] ->
          Powerset.via_fixed_points ~stats ?cache ?deadline ctx a b
      | Plan.Fixed_point _, [ s ] -> Fixed_point.naive ~stats ?cache ?deadline ctx s
      | Plan.Fixed_point_reduced _, [ s ] ->
          Fixed_point.with_reduction ~stats ?cache ?deadline ctx s
      | Plan.Fixed_point_filtered (p, _), [ s ] ->
          Fixed_point.naive_filtered ~stats ?cache ?deadline ctx
            ~keep:(Filter.evaluate ctx p) s
      | _ -> assert false
    in
    let before = Op_stats.to_assoc stats in
    let t0 = clock () in
    let out = apply () in
    let t1 = clock () in
    let node =
      {
        op = op_label plan;
        rows = Frag_set.cardinal out;
        in_rows = List.map Frag_set.cardinal child_sets;
        self_ns = t1 - t0;
        counters = counter_delta before (Op_stats.to_assoc stats);
        children = List.map snd children;
      }
    in
    (out, node)
  in
  let answers, root = go choice.Optimizer.plan in
  {
    query = q;
    plan = choice.Optimizer.plan;
    estimated_cost = choice.Optimizer.estimated_cost;
    root;
    answers;
    total_ns = total_ns root;
  }

let analyze_request ?clock ctx (r : Exec.Request.t) =
  let q = Exec.Request.to_query r in
  let deadline = r.Exec.Request.deadline in
  (* Mirror Eval's strategy-aware attachment: the optimizer picks a
     pruned (filtered) plan exactly when the filter has a usable
     anti-monotone part, so gate the cache on the same predicate. *)
  let cache =
    match r.Exec.Request.cache with
    | Some c ->
        let am, _ = Filter.decompose q.Query.filter in
        if Join_cache.pays c ~pruned:(am <> Filter.True) then Some c else None
    | None -> None
  in
  analyze_query ?clock ?cache ~deadline ctx q

let analyze ?clock ?cache ?deadline ctx q = analyze_query ?clock ?cache ?deadline ctx q

let pp_node ppf root =
  let rec go indent n =
    let head = indent ^ n.op in
    Format.fprintf ppf "%-*s rows=%-6d" (max (String.length head + 1) 44) head n.rows;
    (match n.in_rows with
    | [] -> Format.fprintf ppf " %-12s" ""
    | cards ->
        Format.fprintf ppf " in=%-9s"
          (String.concat "x" (List.map string_of_int cards)));
    Format.fprintf ppf " time=%-8s self=%-8s"
      (Clock.ns_to_string (total_ns n))
      (Clock.ns_to_string n.self_ns);
    List.iter (fun (k, d) -> Format.fprintf ppf " %s=+%d" k d) n.counters;
    Format.fprintf ppf "@,";
    List.iter (go (indent ^ "  ")) n.children
  in
  Format.fprintf ppf "@[<v>";
  go "" root;
  Format.fprintf ppf "@]"

let pp ppf r =
  Format.fprintf ppf "@[<v>EXPLAIN ANALYZE@,";
  Format.fprintf ppf "query: %a@," Query.pp r.query;
  Format.fprintf ppf "plan:  %a@," Plan.pp r.plan;
  Format.fprintf ppf "estimated cost: %.1f@," r.estimated_cost;
  Format.fprintf ppf "actual: total %s, %d answer fragment(s)@,@,"
    (Clock.ns_to_string r.total_ns)
    (Frag_set.cardinal r.answers);
  pp_node ppf r.root;
  Format.fprintf ppf "@]"
