open Plan

let rec power_to_fixpoint = function
  | Scan_keyword _ as p -> p
  | Select (f, x) -> Select (f, power_to_fixpoint x)
  | Pair_join (a, b) -> Pair_join (power_to_fixpoint a, power_to_fixpoint b)
  | Pair_join_filtered (f, a, b) ->
      Pair_join_filtered (f, power_to_fixpoint a, power_to_fixpoint b)
  | Power_join (a, b) ->
      Pair_join (Fixed_point (power_to_fixpoint a), Fixed_point (power_to_fixpoint b))
  | Fixed_point x -> Fixed_point (power_to_fixpoint x)
  | Fixed_point_reduced x -> Fixed_point_reduced (power_to_fixpoint x)
  | Fixed_point_filtered (f, x) -> Fixed_point_filtered (f, power_to_fixpoint x)

let rec use_reduction = function
  | Scan_keyword _ as p -> p
  | Select (f, x) -> Select (f, use_reduction x)
  | Pair_join (a, b) -> Pair_join (use_reduction a, use_reduction b)
  | Pair_join_filtered (f, a, b) -> Pair_join_filtered (f, use_reduction a, use_reduction b)
  | Power_join (a, b) -> Power_join (use_reduction a, use_reduction b)
  | Fixed_point x | Fixed_point_reduced x -> Fixed_point_reduced (use_reduction x)
  | Fixed_point_filtered (f, x) -> Fixed_point_filtered (f, use_reduction x)

(* Push an anti-monotonic filter [am] into a subplan: prune at every
   join, inside fixed-point rounds, and at the scans. *)
let rec push am plan =
  match plan with
  | Scan_keyword _ -> Select (am, plan)
  | Select (f, x) -> Select (f, push am x)
  | Pair_join (a, b) | Pair_join_filtered (_, a, b) ->
      (* An existing pruning filter on the join is subsumed only if it is
         implied by [am]; be conservative and conjoin. *)
      let f' =
        match plan with
        | Pair_join_filtered (f, _, _) -> Filter.And (f, am)
        | _ -> am
      in
      Pair_join_filtered (f', push am a, push am b)
  | Power_join (a, b) ->
      (* Power joins must become fixed points before pruning can reach
         inside; convert on the fly. *)
      push am (Pair_join (Fixed_point a, Fixed_point b))
  | Fixed_point x | Fixed_point_reduced x -> Fixed_point_filtered (am, push am x)
  | Fixed_point_filtered (f, x) -> Fixed_point_filtered (Filter.And (f, am), push am x)

let rec push_selection = function
  | Scan_keyword _ as p -> p
  | Select (f, x) ->
      let am, residual = Filter.decompose f in
      let x = push_selection x in
      if am = Filter.True then Select (f, x)
      else if residual = Filter.True then Select (am, push am x)
      else Select (residual, Select (am, push am x))
  | Pair_join (a, b) -> Pair_join (push_selection a, push_selection b)
  | Pair_join_filtered (f, a, b) -> Pair_join_filtered (f, push_selection a, push_selection b)
  | Power_join (a, b) -> Power_join (push_selection a, push_selection b)
  | Fixed_point x -> Fixed_point (push_selection x)
  | Fixed_point_reduced x -> Fixed_point_reduced (push_selection x)
  | Fixed_point_filtered (f, x) -> Fixed_point_filtered (f, push_selection x)

let optimize_fully plan = push_selection (use_reduction (power_to_fixpoint plan))
