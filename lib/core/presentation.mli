(** Presentation of overlapping answers (§5).

    Answers of a query frequently subsume one another (a sub-fragment of
    an answer is often itself an answer).  The paper discusses the INEX
    overlap debate and suggests either hiding subsumed answers or
    presenting them with their structural relationship; this module
    implements both policies plus the flat view. *)

type policy =
  | All  (** every answer, flat *)
  | Hide_subsumed  (** only maximal answers *)
  | Nest  (** maximal answers, each with the answers it subsumes *)

type group = {
  representative : Fragment.t;  (** a maximal answer *)
  subsumed : Fragment.t list;
      (** answers that are proper subfragments of the representative,
          smallest first *)
}

val groups : Frag_set.t -> group list
(** One group per maximal answer (an answer not properly contained in any
    other), ordered by {!Fragment.compare} of the representatives.  Every
    answer appears in at least one group; an answer under several
    maximal answers appears in each. *)

val maximal : Frag_set.t -> Fragment.t list
(** The representatives only. *)

val overlap_ratio : Frag_set.t -> float
(** Fraction of answers that are proper subfragments of another answer;
    0 for the empty set. *)

val select : policy -> Frag_set.t -> group list
(** [groups] filtered per the policy: [All] puts every answer in its own
    group; [Hide_subsumed] keeps representatives with no subsumed lists;
    [Nest] is {!groups}. *)

val pp : Context.t -> Format.formatter -> group list -> unit
(** Indented rendering: representatives flush left, subsumed answers
    marked beneath them. *)

val snippet :
  ?window:int -> Context.t -> keywords:string list -> Fragment.t -> string
(** A one-line text preview of the fragment: for each member node whose
    text contains a query keyword, up to [window] words (default 4) of
    context on each side, with keyword occurrences wrapped in
    [«guillemets»]; node excerpts are joined by [" … "].  Nodes without
    matches contribute nothing; a fragment with no matches yields the
    first few words of its root's text. *)
