(* Keys are unordered pairs of interned fragment ids.  The mix keeps
   (a, b) collisions structured like a random function rather than the
   near-diagonal patterns dense sequential ids would otherwise produce
   in a power-of-two table. *)
module Pair_key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2

  let hash (a, b) = (a * 0x9e3779b1) lxor (b * 0x85ebca77)
end

module Lru = Xfrag_cache.Lru.Make (Pair_key)

type t = {
  lru : Fragment.t Lru.t;
  interner : Fragment.Interner.t;
  lock : Mutex.t option;
}

let default_capacity = 1 lsl 16

let create ?(synchronized = false) ?(capacity = default_capacity) () =
  {
    (* generation -1 never collides with a real context stamp (they
       start at 0), so the first use always adopts the context's
       generation without counting a spurious invalidation. *)
    lru = Lru.create ~generation:(-1) ~capacity ();
    interner = Fragment.Interner.create ();
    lock = (if synchronized then Some (Mutex.create ()) else None);
  }

let synchronized t = t.lock <> None

let capacity t = Lru.capacity t.lru

let length t = Lru.length t.lru

let enabled t = Lru.capacity t.lru > 0

let hits t = Lru.hits t.lru

let misses t = Lru.misses t.lru

let evictions t = Lru.evictions t.lru

let invalidations t = Lru.invalidations t.lru

let interned t = Fragment.Interner.size t.interner

let generation t = Lru.generation t.lru

let sync t (ctx : Context.t) =
  if Lru.generation t.lru <> ctx.generation then begin
    (* Interned ids embed the old document's node numbering; they must
       die with the cached results. *)
    Fragment.Interner.clear t.interner;
    Lru.set_generation t.lru ctx.generation
  end

let bump stats f = match stats with None -> () | Some s -> f s

(* The [cache.admit] failpoint models a failing admission path (e.g. an
   allocator refusing the entry): an injected raise degrades to "don't
   memoize this join" — answers are unchanged, the skip is counted —
   instead of escaping into the evaluation. *)
let admit () =
  match Xfrag_fault.Fault.Failpoint.hit "cache.admit" with
  | () -> true
  | exception Xfrag_fault.Fault.Injected _ ->
      Xfrag_fault.Fault.record "cache_admit_skipped";
      false

let find_or_join_unlocked t ?stats ctx f1 f2 ~join =
  sync t ctx;
  let i1 = Fragment.Interner.intern t.interner f1 in
  let i2 = Fragment.Interner.intern t.interner f2 in
  let key = if i1 <= i2 then (i1, i2) else (i2, i1) in
  match Lru.find t.lru key with
  | Some result ->
      bump stats (fun s -> s.Op_stats.cache_hits <- s.Op_stats.cache_hits + 1);
      result
  | None ->
      let evictions_before = Lru.evictions t.lru in
      let result = join () in
      if admit () then begin
        Lru.add t.lru key result;
        (* Interning the result means a later join that uses it as an
           operand (every fixed-point round does) gets its id for one
           hashtable probe. *)
        ignore (Fragment.Interner.intern t.interner result)
      end;
      bump stats (fun s ->
          s.Op_stats.cache_misses <- s.Op_stats.cache_misses + 1;
          s.Op_stats.cache_evictions <-
            s.Op_stats.cache_evictions + (Lru.evictions t.lru - evictions_before));
      result

(* Synchronized path: lookup and store are separate critical sections so
   the join itself — the expensive part, and the only part that can
   raise (e.g. [Deadline.Expired]) — runs outside the lock.  Two workers
   missing on the same key may both compute the join; both results are
   identical ([Join.fragment] is pure), so the second [Lru.add] merely
   refreshes the entry.  If another worker flipped the generation while
   we were joining, the interned key ids are stale and the result is
   dropped instead of stored under a wrong key. *)
let find_or_join_locked t m ?stats ctx f1 f2 ~join =
  Mutex.lock m;
  sync t ctx;
  let i1 = Fragment.Interner.intern t.interner f1 in
  let i2 = Fragment.Interner.intern t.interner f2 in
  let key = if i1 <= i2 then (i1, i2) else (i2, i1) in
  let cached = Lru.find t.lru key in
  Mutex.unlock m;
  match cached with
  | Some result ->
      bump stats (fun s -> s.Op_stats.cache_hits <- s.Op_stats.cache_hits + 1);
      result
  | None ->
      let result = join () in
      (* Admission decided before taking the lock: the failpoint action
         (raise, delay) must never run while holding the cache mutex. *)
      let admitted = admit () in
      Mutex.lock m;
      let evictions_before = Lru.evictions t.lru in
      if admitted && Lru.generation t.lru = ctx.Context.generation then begin
        Lru.add t.lru key result;
        ignore (Fragment.Interner.intern t.interner result)
      end;
      let evicted = Lru.evictions t.lru - evictions_before in
      Mutex.unlock m;
      bump stats (fun s ->
          s.Op_stats.cache_misses <- s.Op_stats.cache_misses + 1;
          s.Op_stats.cache_evictions <- s.Op_stats.cache_evictions + evicted);
      result

let find_or_join t ?stats ctx f1 f2 ~join =
  if not (enabled t) then join ()
  else
    match t.lock with
    | None -> find_or_join_unlocked t ?stats ctx f1 f2 ~join
    | Some m -> find_or_join_locked t m ?stats ctx f1 f2 ~join

let with_lock t f =
  match t.lock with
  | None -> f ()
  | Some m ->
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let clear t =
  with_lock t @@ fun () ->
  Fragment.Interner.clear t.interner;
  Lru.clear t.lru

let metrics_assoc t =
  [
    ("cache.hits", hits t);
    ("cache.misses", misses t);
    ("cache.evictions", evictions t);
    ("cache.invalidations", invalidations t);
    ("cache.entries", length t);
    ("cache.interned", interned t);
  ]
