(* Keys are unordered pairs of interned fragment ids.  The mix keeps
   (a, b) collisions structured like a random function rather than the
   near-diagonal patterns dense sequential ids would otherwise produce
   in a power-of-two table. *)
module Pair_key = struct
  type t = int * int

  let equal (a1, b1) (a2, b2) = a1 = a2 && b1 = b2

  let hash (a, b) = (a * 0x9e3779b1) lxor (b * 0x85ebca77)
end

module Lru = Xfrag_cache.Lru.Make (Pair_key)

module Admission = struct
  type t = Admit_all | Admit_none | Min_nodes of int | Second_touch

  let to_string = function
    | Admit_all -> "all"
    | Admit_none -> "none"
    | Min_nodes n -> string_of_int n
    | Second_touch -> "second-touch"

  let of_string s =
    match String.lowercase_ascii (String.trim s) with
    | "all" -> Ok Admit_all
    | "none" -> Ok Admit_none
    | "second-touch" | "second_touch" | "touch2" -> Ok Second_touch
    | s -> (
        match int_of_string_opt s with
        | Some n when n >= 0 -> Ok (Min_nodes n)
        | _ ->
            Error
              (Printf.sprintf
                 "XFRAG_CACHE_ADMIT: expected all | none | second-touch | \
                  <min-nodes>, got %S"
                 s))

  let default () =
    match Sys.getenv_opt "XFRAG_CACHE_ADMIT" with
    | None -> Min_nodes 0
    | Some s -> ( match of_string s with Ok a -> a | Error _ -> Min_nodes 0)

  (* Does attaching the cache pay for a strategy of this shape?  On
     pruned strategies (pushdown family) operands stay small — bounded
     by the anti-monotone filter — so probing is cheap and hits erase
     whole joins: measured 3-4x wins.  On unpruned strategies the
     operands are the huge intermediate fragments themselves; hashing
     one to probe costs as much as joining it, so even a 20% hit rate
     loses 2-4x.  The default policies therefore decline unpruned
     strategies outright; [Admit_all] forces attachment everywhere, and
     an explicit [Min_nodes n > 0] threshold widens to unpruned
     strategies too (the caller asked for selective memoization, and the
     size gate runs before any hashing). *)
  let pays t ~pruned =
    match t with
    | Admit_all -> true
    | Admit_none -> false
    | Min_nodes n -> pruned || n > 0
    | Second_touch -> pruned
end

(* One partition per context generation: a document's entries and
   interned ids live and die together, so a request against doc B can
   never invalidate doc A's warm entries — the failure mode of the old
   single-generation design, where a shared cache serving alternating
   documents thrashed to zero hits.  A partition evicted by the
   [max_docs] bound takes its interner with it, which both bounds memory
   and keeps stale hits impossible by construction (an id is only ever
   interpreted inside the partition that allocated it). *)
type partition = {
  part_gen : int;
  lru : Fragment.t Lru.t;
  interner : Fragment.Interner.t;
}

type stripe = {
  lock : Mutex.t option;
  mutable parts : partition list;  (* MRU first; length <= max_docs *)
  touched : int array;  (* second-touch fingerprint sketch; [||] unless used *)
}

type t = {
  stripes : stripe array;
  capacity : int;
  part_capacity : int;
  max_docs : int;
  admission : Admission.t;
  (* Lifetime counters are [Atomic] so the metrics/scratch paths can
     read them without the stripe locks (and without tearing). *)
  c_hits : int Atomic.t;
  c_misses : int Atomic.t;
  c_evictions : int Atomic.t;
  c_invalidations : int Atomic.t;
  c_rejected : int Atomic.t;
  last_gen : int Atomic.t;
}

let default_capacity = 1 lsl 16

let default_max_docs = 4

let default_stripes () =
  match Sys.getenv_opt "XFRAG_CACHE_STRIPES" with
  | Some s -> (
      match int_of_string_opt s with Some n when n >= 1 -> n | _ -> 8)
  | None -> 8

let sketch_slots = 2048

let create ?(synchronized = false) ?(capacity = default_capacity) ?stripes
    ?(max_docs = default_max_docs) ?admission () =
  let admission =
    match admission with Some a -> a | None -> Admission.default ()
  in
  (* An unsynchronized cache is single-domain by contract, so striping
     buys nothing; force one stripe and skip the mutexes entirely. *)
  let nstripes =
    if synchronized then
      max 1 (match stripes with Some n -> n | None -> default_stripes ())
    else 1
  in
  let part_capacity = if capacity <= 0 then 0 else max 1 (capacity / nstripes) in
  {
    stripes =
      Array.init nstripes (fun _ ->
          {
            lock = (if synchronized then Some (Mutex.create ()) else None);
            parts = [];
            touched =
              (match admission with
              | Admission.Second_touch -> Array.make sketch_slots 0
              | _ -> [||]);
          });
    capacity;
    part_capacity;
    max_docs = max 1 max_docs;
    admission;
    c_hits = Atomic.make 0;
    c_misses = Atomic.make 0;
    c_evictions = Atomic.make 0;
    c_invalidations = Atomic.make 0;
    c_rejected = Atomic.make 0;
    (* -1 never collides with a real context stamp (they start at 0). *)
    last_gen = Atomic.make (-1);
  }

let synchronized t = t.stripes.(0).lock <> None

let capacity t = t.capacity

let stripes t = Array.length t.stripes

let max_docs t = t.max_docs

let admission t = t.admission

let enabled t = t.capacity > 0 && t.admission <> Admission.Admit_none

let pays t ~pruned = enabled t && Admission.pays t.admission ~pruned

let hits t = Atomic.get t.c_hits

let misses t = Atomic.get t.c_misses

let evictions t = Atomic.get t.c_evictions

let invalidations t = Atomic.get t.c_invalidations

let rejected t = Atomic.get t.c_rejected

let generation t = Atomic.get t.last_gen

let with_stripe stripe f =
  match stripe.lock with
  | None -> f ()
  | Some m ->
      Mutex.lock m;
      Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let length t =
  Array.fold_left
    (fun acc stripe ->
      acc
      + with_stripe stripe (fun () ->
            List.fold_left (fun a p -> a + Lru.length p.lru) 0 stripe.parts))
    0 t.stripes

let interned t =
  Array.fold_left
    (fun acc stripe ->
      acc
      + with_stripe stripe (fun () ->
            List.fold_left
              (fun a p -> a + Fragment.Interner.size p.interner)
              0 stripe.parts))
    0 t.stripes

let partitions t =
  Array.fold_left
    (fun acc stripe ->
      acc + with_stripe stripe (fun () -> List.length stripe.parts))
    0 t.stripes

let clear t =
  Array.iter
    (fun stripe -> with_stripe stripe (fun () -> stripe.parts <- []))
    t.stripes

(* Retiring one generation is the document-mutation hook: replacing or
   deleting a document invalidates exactly its partition (its interner
   dies with it, so a stale hit is impossible), and every other resident
   document stays warm — the whole point of per-generation partitions. *)
let retire t ~generation =
  Array.iter
    (fun stripe ->
      with_stripe stripe (fun () ->
          let dead, live =
            List.partition (fun p -> p.part_gen = generation) stripe.parts
          in
          List.iter
            (fun p ->
              if Lru.length p.lru > 0 then Atomic.incr t.c_invalidations)
            dead;
          stripe.parts <- live))
    t.stripes

(* Both orders of the same unordered pair must land on the same stripe,
   and picking it must not hash the node arrays (that O(n) cost is
   exactly what sinks the cache on large operands) — so mix each
   operand's O(1) summary (root, size) and combine commutatively. *)
let stripe_of t f1 f2 =
  let n = Array.length t.stripes in
  if n = 1 then t.stripes.(0)
  else
    let mix f =
      (Fragment.root f * 0x9e3779b1) lxor (Fragment.size f * 0x85ebca77)
    in
    t.stripes.((mix f1 + mix f2) land max_int mod n)

(* Dropping the over-[max_docs] tail: each dropped partition that still
   held entries is one invalidation event (its document's memo state is
   gone, exactly like the old generation flip — but scoped to the least
   recently used document instead of the whole world). *)
let rec trim t n parts =
  match parts with
  | [] -> []
  | rest when n = 0 ->
      List.iter
        (fun p -> if Lru.length p.lru > 0 then Atomic.incr t.c_invalidations)
        rest;
      []
  | p :: rest -> p :: trim t (n - 1) rest

(* Call with the stripe lock held (or unsynchronized). *)
let partition_of t stripe gen =
  match stripe.parts with
  | p :: _ when p.part_gen = gen -> p
  | parts -> (
      match List.find_opt (fun p -> p.part_gen = gen) parts with
      | Some p ->
          stripe.parts <- p :: List.filter (fun q -> q != p) parts;
          p
      | None ->
          let p =
            {
              part_gen = gen;
              lru = Lru.create ~generation:gen ~capacity:t.part_capacity ();
              interner = Fragment.Interner.create ();
            }
          in
          stripe.parts <- trim t t.max_docs (p :: parts);
          p)

(* Call with the stripe lock held (or unsynchronized). *)
let probe t stripe gen f1 f2 =
  let part = partition_of t stripe gen in
  let i1 = Fragment.Interner.intern part.interner f1 in
  let i2 = Fragment.Interner.intern part.interner f2 in
  let key = if i1 <= i2 then (i1, i2) else (i2, i1) in
  (part, key, Lru.find part.lru key)

let bump stats f = match stats with None -> () | Some s -> f s

(* The [cache.admit] failpoint models a failing admission path (e.g. an
   allocator refusing the entry): an injected raise degrades to "don't
   memoize this join" — answers are unchanged, the skip is counted —
   instead of escaping into the evaluation. *)
let admit () =
  match Xfrag_fault.Fault.Failpoint.hit "cache.admit" with
  | () -> true
  | exception Xfrag_fault.Fault.Injected _ ->
      Xfrag_fault.Fault.record "cache_admit_skipped";
      false

(* Second-touch admission: a fixed-size per-stripe fingerprint sketch
   remembers keys that missed once; a key is only stored the second time
   it is requested, so one-shot joins never pay insert/evict churn.
   Collisions merely admit early or forget a first touch — harmless
   either way.  Mutates the sketch, so call under the stripe lock. *)
let second_touch_ok t stripe part (i1, i2) =
  match t.admission with
  | Admission.Second_touch ->
      let fp =
        ((part.part_gen * 0x9e3779b1) lxor (i1 * 0x85ebca77)
        lxor (i2 * 0xc2b2ae35))
        land max_int
      in
      let fp = if fp = 0 then 1 else fp in
      let slot = fp land (sketch_slots - 1) in
      if stripe.touched.(slot) = fp then true
      else begin
        stripe.touched.(slot) <- fp;
        false
      end
  | _ -> true

(* Store under the stripe lock; returns [(stored, evicted)]. *)
let store t stripe part key result =
  if second_touch_ok t stripe part key then begin
    let ev0 = Lru.evictions part.lru in
    Lru.add part.lru key result;
    (* Interning the result means a later join that uses it as an
       operand (every fixed-point round does) gets its id for one
       hashtable probe. *)
    ignore (Fragment.Interner.intern part.interner result);
    (true, Lru.evictions part.lru - ev0)
  end
  else (false, 0)

let charge_miss t ?stats ~stored ~evicted () =
  Atomic.incr t.c_misses;
  if evicted > 0 then ignore (Atomic.fetch_and_add t.c_evictions evicted);
  if not stored then Atomic.incr t.c_rejected;
  bump stats (fun s ->
      s.Op_stats.cache_misses <- s.Op_stats.cache_misses + 1;
      s.Op_stats.cache_evictions <- s.Op_stats.cache_evictions + evicted;
      if not stored then
        s.Op_stats.cache_rejected <- s.Op_stats.cache_rejected + 1)

let charge_hit t ?stats () =
  Atomic.incr t.c_hits;
  bump stats (fun s -> s.Op_stats.cache_hits <- s.Op_stats.cache_hits + 1)

let find_or_join_unlocked t stripe ?stats gen f1 f2 ~join =
  let part, key, cached = probe t stripe gen f1 f2 in
  match cached with
  | Some result ->
      charge_hit t ?stats ();
      result
  | None ->
      let result = join () in
      let stored, evicted =
        if admit () then store t stripe part key result else (false, 0)
      in
      charge_miss t ?stats ~stored ~evicted ();
      result

(* Synchronized path: lookup and store are separate critical sections so
   the join itself — the expensive part, and the only part that can
   raise (e.g. [Deadline.Expired]) — runs outside the lock.  Two workers
   missing on the same key may both compute the join; both results are
   identical ([Join.fragment] is pure), so the second [Lru.add] merely
   refreshes the entry.  If the partition was evicted while we were
   joining, the interned key ids belong to a dead interner — the result
   is dropped instead of stored under a wrong key (physical membership
   is the validity token). *)
let find_or_join_locked t stripe m ?stats gen f1 f2 ~join =
  Mutex.lock m;
  let part, key, cached = probe t stripe gen f1 f2 in
  Mutex.unlock m;
  match cached with
  | Some result ->
      charge_hit t ?stats ();
      result
  | None ->
      let result = join () in
      (* Admission decided before taking the lock: the failpoint action
         (raise, delay) must never run while holding a cache mutex. *)
      let admitted = admit () in
      let stored, evicted =
        if admitted then begin
          Mutex.lock m;
          let r =
            if List.memq part stripe.parts then store t stripe part key result
            else (false, 0)
          in
          Mutex.unlock m;
          r
        end
        else (false, 0)
      in
      charge_miss t ?stats ~stored ~evicted ();
      result

let size_admitted t f1 f2 =
  match t.admission with
  | Admission.Min_nodes n when n > 0 ->
      Fragment.size f1 + Fragment.size f2 >= n
  | _ -> true

let find_or_join t ?stats ctx f1 f2 ~join =
  if not (enabled t) then join ()
  else if not (size_admitted t f1 f2) then begin
    (* Rejected before any interning or locking: the whole point of the
       size gate is that declined joins cost two O(1) size reads. *)
    Atomic.incr t.c_rejected;
    bump stats (fun s ->
        s.Op_stats.cache_rejected <- s.Op_stats.cache_rejected + 1);
    join ()
  end
  else begin
    let gen = ctx.Context.generation in
    if Atomic.get t.last_gen <> gen then Atomic.set t.last_gen gen;
    let stripe = stripe_of t f1 f2 in
    match stripe.lock with
    | None -> find_or_join_unlocked t stripe ?stats gen f1 f2 ~join
    | Some m -> find_or_join_locked t stripe m ?stats gen f1 f2 ~join
  end

let metrics_assoc t =
  [
    ("cache.hits", hits t);
    ("cache.misses", misses t);
    ("cache.evictions", evictions t);
    ("cache.invalidations", invalidations t);
    ("cache.rejected", rejected t);
    ("cache.entries", length t);
    ("cache.interned", interned t);
    ("cache.partitions", partitions t);
    ("cache.stripes", stripes t);
  ]
