(** Finite sets of fragments — the carrier of the set-level operations
    (pairwise join, powerset join, fixed point, selection).

    Duplicate elimination is intrinsic: the paper's operations are
    set-valued, and Table 1 shows duplicates being removed.  Iteration
    order is unspecified; use {!elements} for a deterministic (sorted)
    view. *)

type t

val empty : unit -> t
(** A fresh empty set.  This is a function because the representation is
    a mutable hash table: a single shared empty value could be silently
    corrupted for the whole program by any code path that mutates it
    (notably anything aliasing it the way {!Builder.freeze} aliases its
    builder).  Each call returns an independent set. *)

val is_empty : t -> bool

val singleton : Fragment.t -> t

val of_list : Fragment.t list -> t

val of_nodes : Xfrag_util.Int_sorted.t -> t
(** One single-node fragment per id — lifts a posting list into a
    fragment set ([F = σ_{keyword=k}(nodes D)]). *)

val elements : t -> Fragment.t list
(** Sorted by {!Fragment.compare} (size, then lexicographic). *)

val cardinal : t -> int

val mem : Fragment.t -> t -> bool

val add : Fragment.t -> t -> t
(** Functional add (copies; O(n)).  Use {!of_list} or folds for bulk
    construction. *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val equal : t -> t -> bool

val subset : t -> t -> bool

val for_all : (Fragment.t -> bool) -> t -> bool

val exists : (Fragment.t -> bool) -> t -> bool

val filter : (Fragment.t -> bool) -> t -> t

val map : (Fragment.t -> Fragment.t) -> t -> t
(** Image as a set (results are de-duplicated). *)

val iter : (Fragment.t -> unit) -> t -> unit

val fold : ('a -> Fragment.t -> 'a) -> 'a -> t -> 'a

val min_size_fragment : t -> Fragment.t option
(** A smallest fragment of the set, if non-empty. *)

val pp : Format.formatter -> t -> unit

(** Mutable builder for hot paths (join loops).  A builder is linear:
    freeze it once and discard. *)
module Builder : sig
  type set = t

  type t

  val create : ?size_hint:int -> unit -> t

  val add : t -> Fragment.t -> bool
  (** [true] iff the fragment was not already present. *)

  val mem : t -> Fragment.t -> bool

  val cardinal : t -> int

  val freeze : t -> set
  (** {b Aliasing, not copying:} the returned set shares the builder's
      storage (freezing is O(1), by design — builders exist so the join
      loops pay no copy at the end).  The builder must not be used again
      after [freeze]; adding to it afterwards would mutate the
      supposedly-frozen set.  Each builder therefore feeds exactly one
      set, and in particular never a shared constant. *)
end
