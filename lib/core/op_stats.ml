type t = {
  mutable fragment_joins : int;
  mutable candidates : int;
  mutable duplicates : int;
  mutable pruned : int;
  mutable filtered : int;
  mutable fixpoint_rounds : int;
  mutable reduce_subset_checks : int;
  mutable cache_hits : int;
  mutable cache_misses : int;
  mutable cache_evictions : int;
  mutable cache_rejected : int;
}

let create () =
  {
    fragment_joins = 0;
    candidates = 0;
    duplicates = 0;
    pruned = 0;
    filtered = 0;
    fixpoint_rounds = 0;
    reduce_subset_checks = 0;
    cache_hits = 0;
    cache_misses = 0;
    cache_evictions = 0;
    cache_rejected = 0;
  }

let reset t =
  t.fragment_joins <- 0;
  t.candidates <- 0;
  t.duplicates <- 0;
  t.pruned <- 0;
  t.filtered <- 0;
  t.fixpoint_rounds <- 0;
  t.reduce_subset_checks <- 0;
  t.cache_hits <- 0;
  t.cache_misses <- 0;
  t.cache_evictions <- 0;
  t.cache_rejected <- 0

let merge dst src =
  dst.fragment_joins <- dst.fragment_joins + src.fragment_joins;
  dst.candidates <- dst.candidates + src.candidates;
  dst.duplicates <- dst.duplicates + src.duplicates;
  dst.pruned <- dst.pruned + src.pruned;
  dst.filtered <- dst.filtered + src.filtered;
  dst.fixpoint_rounds <- dst.fixpoint_rounds + src.fixpoint_rounds;
  dst.reduce_subset_checks <- dst.reduce_subset_checks + src.reduce_subset_checks;
  dst.cache_hits <- dst.cache_hits + src.cache_hits;
  dst.cache_misses <- dst.cache_misses + src.cache_misses;
  dst.cache_evictions <- dst.cache_evictions + src.cache_evictions;
  dst.cache_rejected <- dst.cache_rejected + src.cache_rejected

let to_assoc t =
  [
    ("fragment_joins", t.fragment_joins);
    ("candidates", t.candidates);
    ("duplicates", t.duplicates);
    ("pruned", t.pruned);
    ("filtered", t.filtered);
    ("fixpoint_rounds", t.fixpoint_rounds);
    ("reduce_subset_checks", t.reduce_subset_checks);
    ("cache_hits", t.cache_hits);
    ("cache_misses", t.cache_misses);
    ("cache_evictions", t.cache_evictions);
    ("cache_rejected", t.cache_rejected);
  ]

let total_work t = t.fragment_joins + t.reduce_subset_checks

let pp ppf t =
  Format.fprintf ppf
    "@[<h>joins=%d candidates=%d duplicates=%d pruned=%d filtered=%d \
     rounds=%d reduce-checks=%d@]"
    t.fragment_joins t.candidates t.duplicates t.pruned t.filtered
    t.fixpoint_rounds t.reduce_subset_checks;
  if t.cache_hits + t.cache_misses + t.cache_evictions + t.cache_rejected > 0
  then
    Format.fprintf ppf
      "@[<h> cache-hits=%d cache-misses=%d cache-evictions=%d \
       cache-rejected=%d@]"
      t.cache_hits t.cache_misses t.cache_evictions t.cache_rejected
