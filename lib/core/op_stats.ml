type t = {
  mutable fragment_joins : int;
  mutable candidates : int;
  mutable duplicates : int;
  mutable pruned : int;
  mutable filtered : int;
  mutable fixpoint_rounds : int;
  mutable reduce_subset_checks : int;
}

let create () =
  {
    fragment_joins = 0;
    candidates = 0;
    duplicates = 0;
    pruned = 0;
    filtered = 0;
    fixpoint_rounds = 0;
    reduce_subset_checks = 0;
  }

let reset t =
  t.fragment_joins <- 0;
  t.candidates <- 0;
  t.duplicates <- 0;
  t.pruned <- 0;
  t.filtered <- 0;
  t.fixpoint_rounds <- 0;
  t.reduce_subset_checks <- 0

let total_work t = t.fragment_joins + t.reduce_subset_checks

let pp ppf t =
  Format.fprintf ppf
    "@[<h>joins=%d candidates=%d duplicates=%d pruned=%d filtered=%d \
     rounds=%d reduce-checks=%d@]"
    t.fragment_joins t.candidates t.duplicates t.pruned t.filtered
    t.fixpoint_rounds t.reduce_subset_checks
