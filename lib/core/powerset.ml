let check_size name max_set_size set =
  let n = Frag_set.cardinal set in
  if n > max_set_size then
    invalid_arg
      (Printf.sprintf
         "Powerset.%s: operand has %d fragments, above the %d-element guard \
          for exponential enumeration"
         name n max_set_size)

(* All joins ⋈S of non-empty subsets S of [elems], indexed by bitmask. *)
let subset_joins ?stats ?cache ?(deadline = Deadline.none) ctx
    (elems : Fragment.t array) =
  let n = Array.length elems in
  let joins = Array.make (1 lsl n) None in
  for mask = 1 to (1 lsl n) - 1 do
    (* Exponentially many masks: check between every two joins so even a
       millisecond deadline aborts the enumeration promptly. *)
    Deadline.check deadline;
    let lowest = mask land -mask in
    let idx =
      let rec bit i = if 1 lsl i = lowest then i else bit (i + 1) in
      bit 0
    in
    let rest = mask lxor lowest in
    let f =
      if rest = 0 then elems.(idx)
      else Join.fragment ?stats ?cache ctx elems.(idx) (Option.get joins.(rest))
    in
    joins.(mask) <- Some f
  done;
  joins

module Trace = Xfrag_obs.Trace
module Json = Xfrag_obs.Json

let traced trace name f =
  if not (Trace.is_enabled trace) then f ()
  else
    Trace.with_span trace name (fun () ->
        let out = f () in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        out)

let literal ?stats ?cache ?(trace = Trace.disabled)
    ?(deadline = Deadline.none) ?(max_set_size = 14) ctx s1 s2 =
  traced trace "powerset-literal" @@ fun () ->
  check_size "literal" max_set_size s1;
  check_size "literal" max_set_size s2;
  let e1 = Array.of_list (Frag_set.elements s1) in
  let e2 = Array.of_list (Frag_set.elements s2) in
  let j1 = subset_joins ?stats ?cache ~deadline ctx e1 in
  let j2 = subset_joins ?stats ?cache ~deadline ctx e2 in
  let out = Frag_set.Builder.create () in
  for m1 = 1 to (1 lsl Array.length e1) - 1 do
    Deadline.check deadline;
    for m2 = 1 to (1 lsl Array.length e2) - 1 do
      let f = Join.fragment ?stats ?cache ctx (Option.get j1.(m1)) (Option.get j2.(m2)) in
      ignore (Frag_set.Builder.add out f)
    done
  done;
  Frag_set.Builder.freeze out

let via_fixed_points ?stats ?cache ?trace ?deadline
    ?(fixed_point =
      fun ?stats ?trace ctx set -> Fixed_point.naive ?stats ?trace ctx set) ctx
    s1 s2 =
  Join.pairwise ?stats ?cache ?trace ?deadline ctx
    (fixed_point ?stats ?trace ctx s1)
    (fixed_point ?stats ?trace ctx s2)

let many_literal ?stats ?cache ?(trace = Trace.disabled)
    ?(deadline = Deadline.none) ?(max_set_size = 14) ctx sets =
  traced trace "powerset-literal" @@ fun () ->
  match sets with
  | [] -> invalid_arg "Powerset.many_literal: no operands"
  | [ s ] ->
      check_size "many_literal" max_set_size s;
      let e = Array.of_list (Frag_set.elements s) in
      let j = subset_joins ?stats ?cache ~deadline ctx e in
      let out = Frag_set.Builder.create () in
      for m = 1 to (1 lsl Array.length e) - 1 do
        ignore (Frag_set.Builder.add out (Option.get j.(m)))
      done;
      Frag_set.Builder.freeze out
  | first :: rest ->
      List.iter (check_size "many_literal" max_set_size) sets;
      (* Fold the binary literal product over the operands.  This is the
         associative reading of the m-ary definition: a join taking at
         least one fragment from each operand. *)
      let join_one acc s =
        let e = Array.of_list (Frag_set.elements s) in
        let j = subset_joins ?stats ?cache ~deadline ctx e in
        let out = Frag_set.Builder.create () in
        Frag_set.iter
          (fun fa ->
            Deadline.check deadline;
            for m = 1 to (1 lsl Array.length e) - 1 do
              ignore
                (Frag_set.Builder.add out
                   (Join.fragment ?stats ?cache ctx fa (Option.get j.(m))))
            done)
          acc;
        Frag_set.Builder.freeze out
      in
      let e1 = Array.of_list (Frag_set.elements first) in
      let j1 = subset_joins ?stats ?cache ~deadline ctx e1 in
      let acc = Frag_set.Builder.create () in
      for m = 1 to (1 lsl Array.length e1) - 1 do
        ignore (Frag_set.Builder.add acc (Option.get j1.(m)))
      done;
      List.fold_left join_one (Frag_set.Builder.freeze acc) rest

let many_via_fixed_points ?stats ?cache ?trace ?deadline
    ?(fixed_point =
      fun ?stats ?trace ctx set -> Fixed_point.naive ?stats ?trace ctx set) ctx
    sets =
  match sets with
  | [] -> invalid_arg "Powerset.many_via_fixed_points: no operands"
  | first :: rest ->
      let fps =
        fixed_point ?stats ?trace ctx first
        :: List.map (fixed_point ?stats ?trace ctx) rest
      in
      (match fps with
      | [] -> assert false
      | fp :: fps ->
          List.fold_left (Join.pairwise ?stats ?cache ?trace ?deadline ctx) fp fps)
