module Int_sorted = Xfrag_util.Int_sorted
module Doctree = Xfrag_doctree.Doctree
module Inverted_index = Xfrag_doctree.Inverted_index

type t = Int_sorted.t
(* Invariant: non-empty, strictly increasing, connected in the document
   tree.  With pre-order ids the first element is the fragment root. *)

let nodes f = f

let root f = f.(0)

let size = Array.length

let singleton n = Int_sorted.singleton n

let is_connected (ctx : Context.t) set =
  not (Int_sorted.is_empty set)
  && Int_sorted.for_all (fun n -> n >= 0 && n < Doctree.size ctx.tree) set
  &&
  let r = Int_sorted.min_elt set in
  Int_sorted.for_all
    (fun n -> n = r || Int_sorted.mem (Doctree.parent_exn ctx.tree n) set)
    set

let of_sorted ctx set =
  if not (is_connected ctx set) then
    invalid_arg "Fragment.of_sorted: node set does not induce a connected subtree";
  set

let of_nodes ctx ns = of_sorted ctx (Int_sorted.of_list ns)

let of_sorted_unchecked set = set

let mem n f = Int_sorted.mem n f

let subfragment f f' = Int_sorted.subset f f'

let equal = Int_sorted.equal

let compare = Int_sorted.compare

let hash = Int_sorted.hash

let height (ctx : Context.t) f =
  let rd = Doctree.depth ctx.tree (root f) in
  Int_sorted.fold (fun acc n -> max acc (Doctree.depth ctx.tree n - rd)) 0 f

let span f = Int_sorted.max_elt f - Int_sorted.min_elt f

let width (ctx : Context.t) f =
  let lo = ref max_int and hi = ref (-1) in
  Int_sorted.iter
    (fun n ->
      let l, h = Doctree.leaf_interval ctx.tree n in
      if l < !lo then lo := l;
      if h > !hi then hi := h)
    f;
  !hi - !lo

let leaves (ctx : Context.t) f =
  (* A member is a fragment leaf iff none of its document children is a
     member.  Membership of children: a child c has parent n, so scan f
     and mark parents as internal. *)
  let internal = Hashtbl.create (size f) in
  Int_sorted.iter
    (fun n ->
      if n <> root f then Hashtbl.replace internal (Doctree.parent_exn ctx.tree n) ())
    f;
  Int_sorted.fold (fun acc n -> if Hashtbl.mem internal n then acc else n :: acc) [] f
  |> List.rev

let depth_of (ctx : Context.t) f n =
  if not (mem n f) then invalid_arg "Fragment.depth_of: node is not a member";
  Doctree.depth ctx.tree n - Doctree.depth ctx.tree (root f)

let contains_keyword (ctx : Context.t) f keyword =
  Int_sorted.exists (fun n -> Inverted_index.node_contains ctx.index n keyword) f

let to_xml (ctx : Context.t) f =
  let module Dom = Xfrag_xml.Xml_dom in
  let rec build n =
    let kids =
      Doctree.children ctx.tree n
      |> List.filter (fun c -> mem c f)
      |> List.map build
    in
    let text = Doctree.text ctx.tree n in
    let content = if String.trim text = "" then kids else Dom.text text :: kids in
    Dom.element (Doctree.label ctx.tree n) content
  in
  build (root f)

module Interner = struct
  type fragment = t

  module Tbl = Hashtbl.Make (struct
    type nonrec t = t

    let equal = Int_sorted.equal

    let hash = Int_sorted.hash
  end)

  type interner = { tbl : int Tbl.t; mutable next : int }

  type t = interner

  let create () = { tbl = Tbl.create 1024; next = 0 }

  let intern t f =
    match Tbl.find_opt t.tbl f with
    | Some id -> id
    | None ->
        let id = t.next in
        t.next <- id + 1;
        Tbl.replace t.tbl f id;
        id

  let find t f = Tbl.find_opt t.tbl f

  let size t = t.next

  let clear t =
    Tbl.reset t.tbl;
    t.next <- 0
end

let pp = Int_sorted.pp

let pp_labeled ctx ppf f =
  Format.fprintf ppf "@[<h>\xE2\x9F\xA8";
  Array.iteri
    (fun i n ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "%a" (Doctree.pp_node ctx.Context.tree) n)
    f;
  Format.fprintf ppf "\xE2\x9F\xA9@]"
