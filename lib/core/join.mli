(** Fragment join (Definition 4) and pairwise fragment join
    (Definition 5).

    [fragment ctx f1 f2] is the minimal fragment containing both inputs.
    Because f1 and f2 are themselves connected, that minimal fragment is
    exactly [f1 ∪ f2 ∪ path(root f1, root f2)]:

    - it is connected (f1 reaches its root r1; the tree path joins r1 to
      r2; f2 hangs off r2), and
    - any fragment containing f1 and f2 contains r1 and r2, and a
      connected node set containing two nodes necessarily contains the
      unique tree path between them, hence this whole set — so it is the
      minimum, and in particular unique.

    The algebraic laws of Definition 4 (idempotency, commutativity,
    associativity, absorption) follow and are property-tested. *)

val fragment :
  ?stats:Op_stats.t -> Context.t -> Fragment.t -> Fragment.t -> Fragment.t
(** f1 ⋈ f2. *)

val fragment_many : ?stats:Op_stats.t -> Context.t -> Fragment.t list -> Fragment.t
(** ⋈{f1, …, fn} — left fold of {!fragment}.
    @raise Invalid_argument on the empty list. *)

val pairwise :
  ?stats:Op_stats.t ->
  ?trace:Xfrag_obs.Trace.t ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t ->
  Frag_set.t
(** F1 ⋈ F2 = { f1 ⋈ f2 | f1 ∈ F1, f2 ∈ F2 } (duplicates collapse).
    With an enabled [trace], records a [pairwise-join] span carrying the
    operand and result cardinalities. *)

val pairwise_filtered :
  ?stats:Op_stats.t ->
  ?trace:Xfrag_obs.Trace.t ->
  Context.t ->
  keep:(Fragment.t -> bool) ->
  Frag_set.t ->
  Frag_set.t ->
  Frag_set.t
(** Pairwise join that discards any result failing [keep] as soon as it
    is produced — the primitive behind Theorem 3 push-down evaluation.
    Only sound when [keep] is anti-monotonic (the caller guarantees
    this). *)

val pairwise_parallel :
  ?stats:Op_stats.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?domains:int ->
  ?keep:(Fragment.t -> bool) ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t ->
  Frag_set.t
(** {!pairwise_filtered} with the outer operand partitioned across
    OCaml 5 domains (default: [Domain.recommended_domain_count], capped
    at 8).  The context is only read, so sharing it is safe; results are
    merged deterministically.  Falls back to the sequential path for
    small inputs.  [stats] is updated once at the end with the summed
    per-domain counters. *)
