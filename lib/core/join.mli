(** Fragment join (Definition 4) and pairwise fragment join
    (Definition 5).

    [fragment ctx f1 f2] is the minimal fragment containing both inputs.
    Because f1 and f2 are themselves connected, that minimal fragment is
    exactly [f1 ∪ f2 ∪ path(root f1, root f2)]:

    - it is connected (f1 reaches its root r1; the tree path joins r1 to
      r2; f2 hangs off r2), and
    - any fragment containing f1 and f2 contains r1 and r2, and a
      connected node set containing two nodes necessarily contains the
      unique tree path between them, hence this whole set — so it is the
      minimum, and in particular unique.

    The algebraic laws of Definition 4 (idempotency, commutativity,
    associativity, absorption) follow and are property-tested.

    Every operation accepts an optional [?cache] ({!Join_cache.t}):
    when given, single-fragment joins are memoized by interned operand
    identity, answering repeats in O(1) without recomputing the LCA
    path or the node-set unions.  Answers are unchanged (the cache only
    replays previously computed results for the same context
    generation); accounting moves from [fragment_joins] to
    [cache_hits] for the joins avoided.

    The set-level operations also accept an optional [?deadline]
    ({!Deadline.t}, default {!Deadline.none}): the pairwise loops call
    {!Deadline.check} once per outer-operand row, between whole
    fragment joins, so a long-running join product aborts with
    {!Deadline.Expired} without ever interrupting a cache update. *)

val fragment :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  Context.t ->
  Fragment.t ->
  Fragment.t ->
  Fragment.t
(** f1 ⋈ f2. *)

val fragment_many :
  ?stats:Op_stats.t -> ?cache:Join_cache.t -> Context.t -> Fragment.t list -> Fragment.t
(** ⋈{f1, …, fn} — left fold of {!fragment}.
    @raise Invalid_argument on the empty list. *)

val max_size_hint : int
(** Cap on builder pre-allocation in the pairwise loops: the |F1|·|F2|
    upper bound is used as the initial table size only up to this many
    buckets (2^20); larger outputs grow the table organically instead of
    pre-allocating gigabytes for a product that overwhelmingly
    collapses. *)

val pairwise :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t ->
  Frag_set.t
(** F1 ⋈ F2 = { f1 ⋈ f2 | f1 ∈ F1, f2 ∈ F2 } (duplicates collapse).
    With an enabled [trace], records a [pairwise-join] span carrying the
    operand and result cardinalities. *)

val pairwise_filtered :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  keep:(Fragment.t -> bool) ->
  Frag_set.t ->
  Frag_set.t ->
  Frag_set.t
(** Pairwise join that discards any result failing [keep] as soon as it
    is produced — the primitive behind Theorem 3 push-down evaluation.
    Only sound when [keep] is anti-monotonic (the caller guarantees
    this). *)

val pairwise_parallel :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?domains:int ->
  ?keep:(Fragment.t -> bool) ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t ->
  Frag_set.t
(** {!pairwise_filtered} with the outer operand partitioned across
    OCaml 5 domains (default: [Domain.recommended_domain_count], capped
    at 8).  The context is only read, so sharing it is safe; results are
    merged deterministically.  Falls back to the sequential path for
    small inputs.  [stats] is updated once at the end with the summed
    per-domain counters plus the cross-domain duplicate collapses, so
    [candidates], [duplicates] and [pruned] match what the sequential
    join reports on the same input.  [cache] is honored only on the
    sequential fallback — the memo table is not domain-safe, so workers
    always compute their joins directly. *)
