open Xfrag_doctree

type t = {
  tree : Doctree.t;
  lca : Lca.t;
  index : Inverted_index.t;
  generation : int;
}

(* Monotone stamp handed to every freshly built context.  Atomic so
   corpora can be built from several domains without ever reissuing a
   generation — caches keyed on it must never see two distinct worlds
   under one stamp. *)
let generations = Atomic.make 0

let create ?options tree =
  {
    tree;
    lca = Lca.build tree;
    index = Inverted_index.build ?options tree;
    generation = Atomic.fetch_and_add generations 1;
  }

let of_xml ?options doc = create ?options (Doctree.of_xml doc)

let of_xml_string ?options s =
  of_xml ?options (Xfrag_xml.Xml_parser.parse_string s)

let of_xml_file ?options path =
  of_xml ?options (Xfrag_xml.Xml_parser.parse_file path)

let size t = Doctree.size t.tree

let generation t = t.generation
