open Xfrag_doctree

type t = { tree : Doctree.t; lca : Lca.t; index : Inverted_index.t }

let create ?options tree =
  { tree; lca = Lca.build tree; index = Inverted_index.build ?options tree }

let of_xml ?options doc = create ?options (Doctree.of_xml doc)

let of_xml_string ?options s =
  of_xml ?options (Xfrag_xml.Xml_parser.parse_string s)

let of_xml_file ?options path =
  of_xml ?options (Xfrag_xml.Xml_parser.parse_file path)

let size t = Doctree.size t.tree
