(** Powerset fragment join ⋈* (Definition 6).

    F1 ⋈* F2 = \{ ⋈(F1' ∪ F2') | F1' ⊆ F1, F2' ⊆ F2, both non-empty \}.

    {!literal} enumerates subsets exactly as the definition reads —
    exponential, usable only on small inputs, and kept as the oracle the
    optimized paths are tested against.  {!via_fixed_points} is
    Theorem 2: F1 ⋈* F2 = F1⁺ ⋈ F2⁺.

    All operations accept [?deadline] ({!Deadline.t}): the exponential
    enumeration checks it between every two subset joins, so even a
    worst-case ⋈* aborts with {!Deadline.Expired} within microseconds of
    the instant passing.  [fixed_point] callbacks are expected to close
    over the same deadline (see {!Eval}). *)

val literal :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  ?max_set_size:int ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t ->
  Frag_set.t
(** Direct subset enumeration, 2^|F1|·2^|F2| joins.  Refuses inputs
    larger than [max_set_size] (default 14) per operand.
    @raise Invalid_argument when an operand is too large. *)

val via_fixed_points :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  ?fixed_point:
    (?stats:Op_stats.t ->
    ?trace:Xfrag_obs.Trace.t ->
    Context.t ->
    Frag_set.t ->
    Frag_set.t) ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t ->
  Frag_set.t
(** Theorem 2 evaluation.  [fixed_point] selects the fixed-point
    algorithm (default {!Fixed_point.naive}). *)

val many_literal :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  ?max_set_size:int ->
  Context.t ->
  Frag_set.t list ->
  Frag_set.t
(** m-ary extension: \{ ⋈(∪ᵢ Fi') | Fi' ⊆ Fi non-empty \} — the paper's
    query formula for m keywords.
    @raise Invalid_argument on the empty list or oversized operands. *)

val many_via_fixed_points :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  ?fixed_point:
    (?stats:Op_stats.t ->
    ?trace:Xfrag_obs.Trace.t ->
    Context.t ->
    Frag_set.t ->
    Frag_set.t) ->
  Context.t ->
  Frag_set.t list ->
  Frag_set.t
(** m-ary Theorem 2: F1⁺ ⋈ F2⁺ ⋈ … ⋈ Fm⁺.
    @raise Invalid_argument on the empty list. *)
