module Fault = Xfrag_fault.Fault

type t = {
  mutex : Mutex.t;
  work_ready : Condition.t;
  jobs : (unit -> unit) Queue.t;
  mutable stopping : bool;
  mutable domains : unit Domain.t list;
  mutable live : int;  (** workers currently in their loop *)
  mutable restarts : int;
  restart_cap : int;
  mutable degraded : bool;
}

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let worker_loop t =
  let rec next () =
    Mutex.lock t.mutex;
    while Queue.is_empty t.jobs && not t.stopping do
      Condition.wait t.work_ready t.mutex
    done;
    if Queue.is_empty t.jobs then Mutex.unlock t.mutex
    else begin
      let job = Queue.pop t.jobs in
      Mutex.unlock t.mutex;
      (* Deterministic fault site: a raise here is a worker domain dying
         mid-run.  The popped job is a claim-wrapper (see [map_all]), so
         losing it loses no work — the caller's help loop runs the
         underlying task — and the supervisor replaces the domain. *)
      Fault.Failpoint.hit "shard.worker";
      (* Jobs are claim-wrappers built by [map_all]; they never raise. *)
      job ();
      next ()
    end
  in
  next ()

(* Every worker runs under this supervisor: a clean loop exit (shutdown)
   just decrements [live]; a death — which only a bug or an armed
   failpoint can cause, since jobs are wrapped — is counted, logged, and
   the domain replaced, up to [restart_cap] lifetime restarts.  Past the
   cap the pool stops replacing and is marked degraded: it keeps working
   with fewer (possibly zero) domains because [map_all]'s caller-helps
   discipline never depends on any worker existing.  The supervisor
   swallows the exception so [Domain.join] at shutdown stays clean. *)
let rec supervised t () =
  match worker_loop t with
  | () -> with_lock t (fun () -> t.live <- t.live - 1)
  | exception e ->
      Fault.record "worker_restarts";
      with_lock t (fun () ->
          t.live <- t.live - 1;
          if (not t.stopping) && t.restarts < t.restart_cap then begin
            t.restarts <- t.restarts + 1;
            Printf.eprintf
              "xfrag: shard worker died (%s); restarting (%d/%d)\n%!"
              (Printexc.to_string e) t.restarts t.restart_cap;
            t.live <- t.live + 1;
            t.domains <- Domain.spawn (supervised t) :: t.domains
          end
          else if not t.degraded then begin
            t.degraded <- true;
            Fault.record "pool_degraded";
            Printf.eprintf
              "xfrag: shard worker died (%s); restart cap %d reached, \
               degrading to %d domain(s)\n%!"
              (Printexc.to_string e) t.restart_cap t.live;
            (* Degradation is exactly when you want the recent request
               history: snapshot the flight recorder before traffic
               under the degraded pool overwrites it. *)
            if Xfrag_obs.Recorder.enabled () then
              Xfrag_obs.Recorder.dump ~reason:"shard pool degraded" stderr
          end)

let recommended_domains () =
  min 7 (max 0 (Domain.recommended_domain_count () - 1))

let create ?domains ?(restart_cap = 8) () =
  let domains =
    match domains with Some d -> max 0 d | None -> recommended_domains ()
  in
  let t =
    {
      mutex = Mutex.create ();
      work_ready = Condition.create ();
      jobs = Queue.create ();
      stopping = false;
      domains = [];
      live = domains;
      restarts = 0;
      restart_cap = max 0 restart_cap;
      degraded = false;
    }
  in
  t.domains <- List.init domains (fun _ -> Domain.spawn (supervised t));
  t

let domains t = with_lock t (fun () -> t.live)

let parallelism t = domains t + 1

let restarts t = with_lock t (fun () -> t.restarts)

let degraded t = with_lock t (fun () -> t.degraded)

let shutdown t =
  let ds =
    with_lock t (fun () ->
        t.stopping <- true;
        Condition.broadcast t.work_ready;
        let ds = t.domains in
        t.domains <- [];
        ds)
  in
  List.iter Domain.join ds

(* Process-wide pool, created on first use so merely linking the
   library never spawns domains.  Joined at exit: leaving domains
   blocked in [Condition.wait] at program termination is undefined
   behaviour territory. *)
let default_pool = ref None

let default_mutex = Mutex.create ()

let default () =
  Mutex.lock default_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock default_mutex) @@ fun () ->
  match !default_pool with
  | Some t -> t
  | None ->
      let domains =
        match Sys.getenv_opt "XFRAG_SHARD_DOMAINS" with
        | Some s -> (
            match int_of_string_opt s with
            | Some d when d >= 0 -> d
            | _ -> recommended_domains ())
        | None -> recommended_domains ()
      in
      let t = create ~domains () in
      default_pool := Some t;
      at_exit (fun () -> shutdown t);
      t

let map_all t fs =
  let n = Array.length fs in
  if n = 0 then [||]
  else begin
    let results = Array.make n (Error Stdlib.Exit) in
    let claimed = Array.init n (fun _ -> Atomic.make false) in
    let done_mutex = Mutex.create () in
    let all_done = Condition.create () in
    let pending = ref n in
    let run_task i =
      let r = try Ok (fs.(i) ()) with e -> Error e in
      results.(i) <- r;
      Mutex.lock done_mutex;
      pending := !pending - 1;
      if !pending = 0 then Condition.signal all_done;
      Mutex.unlock done_mutex
    in
    (* First-claim wins: a task is run by whichever of the pool workers
       and the calling domain gets to it first, so a saturated (or
       empty, or fully degraded) pool falls back to inline execution
       instead of blocking. *)
    let try_run i =
      if Atomic.compare_and_set claimed.(i) false true then run_task i
    in
    let offloaded =
      with_lock t (fun () ->
          if t.stopping || t.live = 0 then false
          else begin
            for i = 1 to n - 1 do
              Queue.push (fun () -> try_run i) t.jobs
            done;
            Condition.broadcast t.work_ready;
            true
          end)
    in
    ignore offloaded;
    (* Help: run task 0, then claim whatever the workers haven't. *)
    try_run 0;
    for i = 1 to n - 1 do
      try_run i
    done;
    Mutex.lock done_mutex;
    while !pending > 0 do
      Condition.wait all_done done_mutex
    done;
    Mutex.unlock done_mutex;
    results
  end
