(** Multi-document collections.

    The paper closes by noting the model "can accommodate a very large
    collection of XML documents" (§7).  A corpus is a set of named
    documents, each with its own {!Context.t}; queries run per document
    (fragments never span documents — a fragment is connected within one
    tree) and results carry their document of origin. *)

type t

type hit = { doc : string; fragment : Fragment.t }

val empty : t

val add : t -> name:string -> Xfrag_doctree.Doctree.t -> t
(** Functional add; builds the document's context eagerly.
    @raise Invalid_argument on a duplicate name. *)

val of_documents : (string * Xfrag_doctree.Doctree.t) list -> t

val size : t -> int
(** Number of documents. *)

val names : t -> string list
(** Sorted. *)

val context : t -> string -> Context.t
(** @raise Not_found for an unknown document. *)

val total_nodes : t -> int

val search : ?strategy:Eval.strategy -> t -> Query.t -> hit list
(** All answers across the corpus, grouped by document name (sorted) and
    {!Fragment.compare} within a document. *)

val search_scored :
  scorer:(Context.t -> Fragment.t -> float) -> ?strategy:Eval.strategy ->
  ?limit:int -> t -> Query.t -> (hit * float) list
(** Answers ordered by descending score (ties by document/fragment
    order); [limit] truncates (default: no truncation). *)

val document_frequency : t -> string -> int
(** Number of documents whose index contains the keyword. *)
