(** Multi-document collections and the sharded corpus engine.

    The paper closes by noting the model "can accommodate a very large
    collection of XML documents" (§7).  A corpus is a set of named
    documents, each with its own {!Context.t}; queries run per document
    (fragments never span documents — a fragment is connected within one
    tree) and results carry their document of origin.

    {!run} is the engine: the corpus is partitioned into shards
    (documents hash-assigned by name, then rebalanced by node count),
    each shard evaluates the request on a shared pool of reused domains
    ({!Shard_pool}), keeps only its top-k hits in a bounded heap, and
    the per-shard runs meet in a k-way merge — never materializing more
    than [shards x k] scored hits.  Because the ranking order is a
    strict total order, the sharded answer list is bit-identical to the
    sequential one for any shard count (property-tested).

    Corpora also maintain a corpus-wide inverted index
    ({!Xfrag_index.Corpus_index}), kept incrementally by {!add}.  {!run}
    uses it for {e routing} — a conjunctive query dispatches only to
    documents containing all keywords, before sharding, so shard load
    reflects candidate node counts and an empty intersection never
    touches the pool — and, with a caller-supplied {!score_bound}, for
    {e top-k early termination}: shards visit candidates bound-first and
    skip documents whose bound cannot strictly beat the worst kept
    score.  Both are transparent: routed answers are bit-identical to
    full scans (property-tested), and [XFRAG_ROUTING=0] (or
    [~routing:false]) restores the plain full scan. *)

type t

type hit = { doc : string; fragment : Fragment.t }

type doc_report = {
  doc_name : string;
  doc_nodes : int;  (** tree size, the shard-balancing weight *)
  doc_answers : int;  (** answer fragments before any top-k truncation *)
  doc_elapsed_ns : int;
  doc_strategy : Exec.strategy;  (** what [Auto] resolved to, per doc *)
}

type doc_error = {
  err_doc : string;
  err_detail : string;  (** [Printexc.to_string] of the contained exception *)
  err_request_id : string;
      (** id of the request whose evaluation failed ([Exec.Request.id];
          [""] when the request was anonymous) — lets a structured 500
          or access-log line be joined back to the exact victim row *)
}
(** A document whose evaluation raised: contained per shard, reported as
    data.  The surviving documents' hits are bit-identical to a run of
    the corpus without the failing document. *)

type shard_report = {
  shard_index : int;
  shard_docs : doc_report list;  (** documents evaluated, in name order *)
  shard_errors : doc_error list;
      (** documents whose evaluation was contained, in name order *)
  shard_nodes : int;
  shard_elapsed_ns : int;
  shard_deadline_expired : bool;
      (** the shard stopped early; [shard_docs] lists only the documents
          that completed *)
  shard_bound_skips : int;
      (** documents this shard never evaluated because their score upper
          bound could not beat the shard's full top-k heap threshold *)
}

type routing = {
  candidates : int;
      (** documents containing every query keyword (what was dispatched) *)
  routed_out : int;  (** documents excluded before sharding *)
  bound_skips : int;  (** Σ [shard_bound_skips] across shards *)
}

type outcome = {
  hits : (hit * float) list;
      (** merged, score descending (ties by document name then
          fragment), truncated to the request's [limit] *)
  stats : Op_stats.t;  (** merged across every evaluated document *)
  shard_reports : shard_report list;  (** by [shard_index] *)
  errors : doc_error list;
      (** flattened [shard_errors] in shard order — every contained
          per-document failure of the run *)
  merge_ns : int;  (** wall time of the k-way merge alone *)
  elapsed_ns : int;  (** wall time of the whole corpus run *)
  total_answers : int;
      (** answer fragments across all documents, before truncation *)
  deadline_expired : bool;
      (** some shard hit the request deadline; [hits] are the complete
          merge of what finished (partial results, never an exception) *)
  routing : routing option;
      (** [Some] when posting-list routing applied to this run; [None]
          when it could not (disabled, index dropped, or the request's
          keywords fail normalization) and every document was scanned *)
}

val empty : t

val add : t -> name:string -> Xfrag_doctree.Doctree.t -> t
(** Functional add-or-replace (PUT semantics); builds the document's
    context eagerly and folds it into the corpus index.  Adding an
    existing name {e replaces} that document: the old version is
    retracted first (retiring its {!Context.generation} — callers
    holding a {!Join_cache.t} should {!Join_cache.retire} it, see
    {!generation}) and the new version gets a fresh context.

    Index maintenance degrades, never fails the mutation: if folding
    the new document in raises (e.g. the [index.build] failpoint), the
    index is dropped — the corpus degrades gracefully to full-scan
    execution (and bumps the [index_build_errors] fault counter); the
    document is still added.  A replace additionally passes the retract
    ladder documented at {!remove}. *)

val replace : t -> name:string -> Xfrag_doctree.Doctree.t -> t
(** Alias of {!add} — the name callers on the mutation path should use
    when they expect the document to exist (though, like HTTP PUT, it
    creates on a fresh name too). *)

val remove : t -> name:string -> t
(** Functional delete; a no-op for unknown names.  The corpus index is
    maintained down a three-rung degradation ladder, each rung
    preserving answer correctness and losing only speed:

    + {b incremental retract} — [Corpus_index.remove_document] drops
      the document from every posting list (passes the [index.retract]
      failpoint, keyed by name);
    + {b full rebuild} — if the retract raises, the index is rebuilt
      from the surviving documents ([index_retract_errors] bumped; each
      fold step re-passes [index.build]);
    + {b no index} — if the rebuild raises too, the index is dropped
      ([index_build_errors] bumped) and queries full-scan.

    A corpus whose index was already dropped stays unindexed. *)

val generation : t -> string -> int option
(** The named document's {!Context.generation} — the key identifying
    its join-cache partition.  Read it {e before} a {!remove} /
    {!replace} and pass it to {!Join_cache.retire} so the mutation
    invalidates exactly that document's cached joins.  [None] for
    unknown names. *)

val mem : t -> string -> bool

val of_documents : (string * Xfrag_doctree.Doctree.t) list -> t
(** Folds {!add} left-to-right: duplicate names keep the last tree. *)

val size : t -> int
(** Number of documents. *)

val names : t -> string list
(** Sorted. *)

val context : t -> string -> Context.t
(** @raise Not_found for an unknown document. *)

val total_nodes : t -> int

val index : t -> Xfrag_index.Corpus_index.t option
(** The corpus-wide inverted index; [None] once index maintenance has
    failed and the corpus fell back to full scans. *)

val score_bound :
  t -> keywords:string list -> (string -> float) option
(** A per-document upper bound on [Ranking.score ~keywords] (or any
    scorer it dominates), backed by the index's posting statistics —
    what {!run}'s [?bound] expects.  [None] when the corpus has no
    index.  Pass the request's {e normalized} keywords
    ([(Exec.Request.to_query r).keywords]). *)

val run :
  ?pool:Shard_pool.t ->
  ?shards:int ->
  ?routing:bool ->
  ?bound:(string -> float) ->
  ?scorer:(Context.t -> Fragment.t -> float) ->
  ?clock:Xfrag_obs.Clock.t ->
  t ->
  Exec.Request.t ->
  outcome
(** Evaluate [request] against every document, sharded.

    [routing] defaults to the [XFRAG_ROUTING] environment variable
    (enabled unless it is [0]/[off]/[false]/[no]).  When routing
    applies, posting lists are intersected and only documents
    containing every keyword are sharded and evaluated; an empty
    intersection short-circuits to an empty outcome without touching
    the pool.  [bound] enables top-k early termination on the routed
    path: shards visit candidates bound-descending and skip a document
    only when the heap holds a full top-k and the document's bound is
    {e strictly} below the worst kept score (ties break by name, so an
    equal bound could still win).  The bound must be conservative —
    [bound doc >= scorer ctx f] for every fragment of [doc] (see
    {!score_bound}); a conservative bound never changes answers, it
    only skips work.  Both default off for callers that pass nothing:
    no index → full scan, no [bound] → no skipping.

    [shards] defaults to the [XFRAG_SHARDS] environment variable when it
    is a positive integer, else to the pool's parallelism; it is clamped
    to the candidate document count.  [pool] defaults to {!Shard_pool.default}
    (shared process-wide — concurrent callers reuse the same worker
    domains).  [scorer] ranks hits (default: constant [0.], which orders
    purely by document name and fragment).  [clock] times the shards and
    the merge; an injected clock must be safe to call from multiple
    domains.

    Each document evaluates with the request's [trace] stripped (the
    span stack is not domain-safe).  The [cache] is kept when it is
    safe: a [~synchronized:true] cache (striped mutexes, per-document
    partitions) serves all shards concurrently, and any cache works on
    the single-shard path.  An unsynchronized cache under a multi-shard
    run is dropped for that run rather than raced over.

    When the request deadline expires mid-run, each shard stops at the
    next document boundary, the in-flight document's answers are
    dropped, and the outcome carries everything that completed with
    [deadline_expired] set — {!Deadline.Expired} never escapes.

    {b Failure containment}: any other exception raised while
    evaluating or scoring one document (a malformed tree, an
    adversarial evaluation blowing the stack, an armed [eval.document]
    / [eval.join] failpoint, a raising [scorer]) is caught at the
    document boundary and reported in [shard_errors] / [errors]; the
    failing document contributes no hits, no stats, and no report row,
    so the surviving hits are bit-identical to a run of the corpus
    without that document (property-tested).  Each contained failure
    bumps the [doc_errors] fault counter.  Note the trade-off: a
    request-level mistake that makes {e every} document raise (e.g. an
    unvalidated keyword list) surfaces as one error per document, not
    as a single exception — callers should pre-validate requests with
    {!Exec.Request.of_json} / {!Query.make}. *)

val search : ?strategy:Eval.strategy -> t -> Query.t -> hit list
  [@@deprecated "use Corpus.run with an Exec.Request.t"]
(** All answers across the corpus, grouped by document name (sorted) and
    {!Fragment.compare} within a document.
    @deprecated Thin wrapper over {!run} (identical answers). *)

val search_scored :
  scorer:(Context.t -> Fragment.t -> float) ->
  ?strategy:Eval.strategy ->
  ?limit:int ->
  t ->
  Query.t ->
  (hit * float) list
  [@@deprecated "use Corpus.run with an Exec.Request.t"]
(** Answers ordered by descending score (ties by document/fragment
    order); [limit] truncates (default: no truncation).
    @deprecated Thin wrapper over {!run} (identical ranking). *)

val document_frequency : t -> string -> int
(** Number of documents whose index contains the keyword — an O(log n)
    posting-list lookup on the corpus index when present, a rescan of
    every document's index (unchanged behavior) when the corpus is
    unindexed. *)
