module String_map = Map.Make (String)
module Clock = Xfrag_obs.Clock
module Min_heap = Xfrag_util.Min_heap
module Corpus_index = Xfrag_index.Corpus_index

type t = {
  docs : Context.t String_map.t;
  cindex : Corpus_index.t option;
      (* [None] after an index-maintenance failure: the corpus degrades
         to full-scan execution rather than serving a half-built index
         (a missing posting would silently drop answers). *)
}

type hit = { doc : string; fragment : Fragment.t }

type doc_report = {
  doc_name : string;
  doc_nodes : int;
  doc_answers : int;
  doc_elapsed_ns : int;
  doc_strategy : Exec.strategy;
}

type doc_error = {
  err_doc : string;
  err_detail : string;
  err_request_id : string;
}

type shard_report = {
  shard_index : int;
  shard_docs : doc_report list;
  shard_errors : doc_error list;
  shard_nodes : int;
  shard_elapsed_ns : int;
  shard_deadline_expired : bool;
  shard_bound_skips : int;
}

type routing = { candidates : int; routed_out : int; bound_skips : int }

type outcome = {
  hits : (hit * float) list;
  stats : Op_stats.t;
  shard_reports : shard_report list;
  errors : doc_error list;
  merge_ns : int;
  elapsed_ns : int;
  total_answers : int;
  deadline_expired : bool;
  routing : routing option;
}

let empty = { docs = String_map.empty; cindex = Some Corpus_index.empty }

(* Full rebuild from the surviving documents — the middle rung of the
   index-maintenance degradation ladder (incremental retract → rebuild →
   no index).  Each fold step re-passes the [index.build] failpoint, so
   a rebuild failure lands exactly where a failed initial build would:
   the index is dropped and queries full-scan. *)
let rebuild_index docs =
  match
    String_map.fold
      (fun name ctx idx -> Corpus_index.add_document idx ~name ctx.Context.index)
      docs Corpus_index.empty
  with
  | idx -> Some idx
  | exception e ->
      Xfrag_fault.Fault.record "index_build_errors";
      ignore e;
      None

let remove t ~name =
  if not (String_map.mem name t.docs) then t
  else begin
    let docs = String_map.remove name t.docs in
    let cindex =
      match t.cindex with
      | None -> None (* a dropped index stays dropped; full scans *)
      | Some idx -> (
          (* Incremental retract first (O(vocabulary), no re-tokenizing);
             if it fails — the armed [index.retract] failpoint, or any
             real defect — fall back to rebuilding from scratch rather
             than serving an index that may still list the dead
             document (a stale posting would route queries to a missing
             context). *)
          match Corpus_index.remove_document idx name with
          | idx -> Some idx
          | exception e ->
              Xfrag_fault.Fault.record "index_retract_errors";
              ignore e;
              rebuild_index docs)
    in
    { docs; cindex }
  end

let add t ~name tree =
  (* Add-or-replace: PUT semantics.  Replacing starts with a retract of
     the old version (no-op for fresh names, so a plain add never pays
     for it), then folds the new document in — the old context's
     generation is thereby retired, which is the caller's cue to retire
     its join-cache partition (see [generation]). *)
  let t = remove t ~name in
  let ctx = Context.create tree in
  let cindex =
    match t.cindex with
    | None -> None
    | Some idx -> (
        (* Index maintenance is an optimization, never a correctness
           dependency: if folding this document in fails (the armed
           [index.build] failpoint, or any real defect), drop the whole
           index and let every later run full-scan.  The document itself
           is still added — queries lose speed, not answers. *)
        match Corpus_index.add_document idx ~name ctx.Context.index with
        | idx -> Some idx
        | exception e ->
            Xfrag_fault.Fault.record "index_build_errors";
            ignore e;
            None)
  in
  { docs = String_map.add name ctx t.docs; cindex }

let replace = add

let generation t name =
  match String_map.find_opt name t.docs with
  | Some ctx -> Some ctx.Context.generation
  | None -> None

let mem t name = String_map.mem name t.docs

let of_documents docs =
  List.fold_left (fun t (name, tree) -> add t ~name tree) empty docs

let size t = String_map.cardinal t.docs

let names t = List.map fst (String_map.bindings t.docs)

let context t name =
  match String_map.find_opt name t.docs with
  | Some c -> c
  | None -> raise Not_found

let total_nodes t =
  String_map.fold (fun _ ctx acc -> acc + Context.size ctx) t.docs 0

let index t = t.cindex

let document_frequency t keyword =
  match t.cindex with
  | Some idx -> Corpus_index.document_frequency idx keyword
  | None ->
      String_map.fold
        (fun _ ctx acc ->
          if
            Xfrag_doctree.Inverted_index.node_count ctx.Context.index keyword
            > 0
          then acc + 1
          else acc)
        t.docs 0

let score_bound t ~keywords =
  match t.cindex with
  | None -> None
  | Some idx -> Some (fun doc -> Corpus_index.score_bound idx ~doc ~keywords)

(* Ranking order shared by the per-shard top-k heaps, the k-way merge,
   and the legacy full sort: score descending, then document name, then
   fragment.  Hits are pairwise distinct (unique doc names, sets of
   fragments per doc), so this is a strict total order — which is what
   makes sharded execution bit-identical to sequential: the global top-k
   under a total order is a subset of the union of per-shard top-ks. *)
let cmp_scored (h1, s1) (h2, s2) =
  let c = compare (s2 : float) s1 in
  if c <> 0 then c
  else
    let c = String.compare h1.doc h2.doc in
    if c <> 0 then c else Fragment.compare h1.fragment h2.fragment

(* Documents hash-assign to shards by name (stable across runs and
   corpus mutations elsewhere), then a greedy rebalance moves documents
   from the heaviest to the lightest shard while that strictly shrinks
   the gap — node count is the work proxy.  Each move reduces the
   sum of squared shard weights, so the loop terminates; the cap is
   belt and braces. *)
let plan_shards docs n =
  let bindings = String_map.bindings docs in
  if n <= 1 then [| bindings |]
  else begin
    let buckets = Array.make n [] in
    let weights = Array.make n 0 in
    List.iter
      (fun ((name, ctx) as doc) ->
        let i = Hashtbl.hash name mod n in
        buckets.(i) <- doc :: buckets.(i);
        weights.(i) <- weights.(i) + Context.size ctx)
      bindings;
    let arg_extreme better =
      let best = ref 0 in
      for i = 1 to n - 1 do
        if better weights.(i) weights.(!best) then best := i
      done;
      !best
    in
    let moves = ref (0, (4 * List.length bindings) + 16) in
    let progress = ref true in
    while !progress && fst !moves < snd !moves do
      progress := false;
      let hi = arg_extreme ( > ) and lo = arg_extreme ( < ) in
      if hi <> lo then begin
        (* Smallest movable document that still strictly improves:
           small moves converge toward balance without overshooting. *)
        let candidate =
          List.fold_left
            (fun acc ((_, ctx) as doc) ->
              let s = Context.size ctx in
              if weights.(lo) + s < weights.(hi) then
                match acc with
                | Some (_, best_s) when best_s <= s -> acc
                | _ -> Some (doc, s)
              else acc)
            None buckets.(hi)
        in
        match candidate with
        | None -> ()
        | Some (((name, _) as doc), s) ->
            buckets.(hi) <-
              List.filter (fun (n', _) -> n' <> name) buckets.(hi);
            buckets.(lo) <- doc :: buckets.(lo);
            weights.(hi) <- weights.(hi) - s;
            weights.(lo) <- weights.(lo) + s;
            moves := (fst !moves + 1, snd !moves);
            progress := true
      end
    done;
    Array.map
      (List.sort (fun (a, _) (b, _) -> String.compare a b))
      buckets
  end

type shard_eval = {
  s_report : shard_report;
  s_run : (hit * float) list;  (* sorted best-first by [cmp_scored] *)
  s_stats : Op_stats.t;
  s_answers : int;
}

let eval_shard ~scorer ~bound ~clock (request : Exec.Request.t) idx docs =
  let t0 = clock () in
  let stats = Op_stats.create () in
  let expired = ref false in
  let doc_reports = ref [] in
  let doc_errors = ref [] in
  let total_answers = ref 0 in
  let bound_skips = ref 0 in
  let limit = request.Exec.Request.limit in
  (* Early-termination order: visit high-bound documents first so the
     heap threshold rises as fast as possible and low-bound documents
     become skippable.  Ties keep name order (the input is name-sorted
     and the sort is stable), so the visit order is deterministic. *)
  let docs =
    match bound with
    | None -> docs
    | Some b ->
        List.stable_sort
          (fun (d1, _) (d2, _) -> Float.compare (b d2) (b d1))
          docs
  in
  (* Per-document request: the join cache is kept — its per-generation
     partitions give each document a scoped view, so shard workers warm
     one shared cache instead of thrashing it (the domain-safety gate
     for unsynchronized caches lives in [run]).  Tracing is disabled
     (the span stack is not safe to interleave across domains). *)
  let doc_request = { request with Exec.Request.trace = Xfrag_obs.Trace.disabled } in
  let heap = Min_heap.create ~cmp:(fun a b -> cmp_scored b a) in
  let all = ref [] in
  let add_hit scored =
    match limit with
    | None -> all := scored :: !all
    | Some k when k <= 0 -> ()
    | Some k ->
        if Min_heap.length heap < k then Min_heap.push heap scored
        else (
          match Min_heap.peek heap with
          | Some worst when cmp_scored scored worst < 0 ->
              Min_heap.replace_min heap scored
          | _ -> ())
  in
  (* A document is skippable only when the heap already holds a full
     top-k AND its score bound is *strictly* below the current worst
     kept score: ties break by document name after score, so a document
     whose bound equals the threshold could still displace the worst
     hit.  Strictness is what keeps early termination bit-identical to
     the full scan (property-tested). *)
  let can_skip doc =
    match (bound, limit) with
    | Some b, Some k when k > 0 && Min_heap.length heap >= k -> (
        match Min_heap.peek heap with
        | Some (_, worst_score) -> b doc < worst_score
        | None -> false)
    | _ -> false
  in
  (try
     List.iter
       (fun (doc, ctx) ->
         if Deadline.expired request.Exec.Request.deadline then begin
           expired := true;
           raise_notrace Stdlib.Exit
         end;
         if can_skip doc then incr bound_skips
         else
         (* Evaluate and score into a local buffer, then commit: a
            document that fails anywhere — evaluation, scoring, an armed
            [eval.document] failpoint — contributes nothing, so the
            surviving hits are bit-identical to a run without it. *)
         match
           Xfrag_fault.Fault.Failpoint.hit ~key:doc "eval.document";
           let outcome = Eval.exec ctx doc_request in
           let scored =
             List.map
               (fun fragment -> ({ doc; fragment }, scorer ctx fragment))
               (Frag_set.elements outcome.Eval.answers)
           in
           (outcome, scored)
         with
         | outcome, scored ->
             Op_stats.merge stats outcome.Eval.stats;
             let n = Frag_set.cardinal outcome.Eval.answers in
             total_answers := !total_answers + n;
             List.iter add_hit scored;
             doc_reports :=
               {
                 doc_name = doc;
                 doc_nodes = Context.size ctx;
                 doc_answers = n;
                 doc_elapsed_ns = outcome.Eval.elapsed_ns;
                 doc_strategy = outcome.Eval.strategy_used;
               }
               :: !doc_reports
         | exception Deadline.Expired ->
             (* Partial-result contract: the in-flight document's
                answers are dropped wholesale (a half-evaluated answer
                set would not be bit-identical to any shard plan), the
                shard stops, and the expiry is reported as data — the
                corpus engine never lets [Expired] escape. *)
             expired := true;
             raise_notrace Stdlib.Exit
         | exception e ->
             (* Failure containment: one document blowing up — corrupt
                structure, an adversarial evaluation, an injected fault —
                is data about that document, not a reason to lose the
                other N−1 documents' answers or the process. *)
             Xfrag_fault.Fault.record "doc_errors";
             doc_errors :=
               {
                 err_doc = doc;
                 err_detail = Printexc.to_string e;
                 err_request_id = request.Exec.Request.id;
               }
               :: !doc_errors)
       docs
   with Stdlib.Exit -> ());
  let run =
    match limit with
    | None -> List.sort cmp_scored !all
    | Some _ -> List.sort cmp_scored (Min_heap.to_list heap)
  in
  let nodes = List.fold_left (fun a (_, c) -> a + Context.size c) 0 docs in
  (* Bound ordering visits documents out of name order; the report
     contract is name order regardless. *)
  let by_name field = List.sort (fun a b -> String.compare (field a) (field b)) in
  {
    s_report =
      {
        shard_index = idx;
        shard_docs = by_name (fun d -> d.doc_name) (List.rev !doc_reports);
        shard_errors = by_name (fun e -> e.err_doc) (List.rev !doc_errors);
        shard_nodes = nodes;
        shard_elapsed_ns = clock () - t0;
        shard_deadline_expired = !expired;
        shard_bound_skips = !bound_skips;
      };
    s_run = run;
    s_stats = stats;
    s_answers = !total_answers;
  }

(* K-way merge of per-shard best-first runs: a heap of run heads, pop
   the global best, push its successor.  At most [shards] heads are
   live, and with a limit at most [limit] hits are ever emitted, so the
   merge never materializes more than [shards x limit] scored hits
   (the per-shard runs) plus the output. *)
let merge_runs ~limit runs =
  let heap = Min_heap.create ~cmp:(fun (a, _) (b, _) -> cmp_scored a b) in
  List.iter
    (function [] -> () | head :: rest -> Min_heap.push heap (head, rest))
    runs;
  let out = ref [] in
  let emitted = ref 0 in
  let want_more () =
    match limit with None -> true | Some k -> !emitted < k
  in
  let continue = ref true in
  while !continue && want_more () do
    match Min_heap.pop heap with
    | None -> continue := false
    | Some (best, rest) ->
        out := best :: !out;
        incr emitted;
        (match rest with
        | [] -> ()
        | head :: rest' -> Min_heap.push heap (head, rest'))
  done;
  List.rev !out

let routing_env_enabled () =
  match Sys.getenv_opt "XFRAG_ROUTING" with
  | Some ("0" | "off" | "false" | "no") -> false
  | _ -> true

let run ?pool ?shards ?routing ?bound ?(scorer = fun _ _ -> 0.)
    ?(clock = Clock.monotonic) t (request : Exec.Request.t) =
  let t0 = clock () in
  let pool = match pool with Some p -> p | None -> Shard_pool.default () in
  let requested =
    match shards with
    | Some n -> max 1 n
    | None -> (
        match Sys.getenv_opt "XFRAG_SHARDS" with
        | Some s -> (
            match int_of_string_opt s with
            | Some n when n >= 1 -> n
            | _ -> Shard_pool.parallelism pool)
        | None -> Shard_pool.parallelism pool)
  in
  let routing_enabled =
    match routing with Some b -> b | None -> routing_env_enabled ()
  in
  (* Routing: intersect the corpus-wide posting lists so only documents
     containing every keyword are dispatched at all.  Any reason it
     cannot apply — routing disabled, index dropped, a request whose
     keywords do not survive normalization (that path keeps its
     documented one-error-per-document behavior) — falls back to the
     full document set. *)
  let routed =
    if not routing_enabled then None
    else
      match t.cindex with
      | None -> None
      | Some idx -> (
          match Exec.Request.to_query request with
          | q -> Some (Corpus_index.route idx ~keywords:q.Query.keywords)
          | exception Invalid_argument _ -> None)
  in
  let docs =
    match routed with
    | None -> t.docs
    | Some candidates ->
        List.fold_left
          (fun acc name ->
            match String_map.find_opt name t.docs with
            | Some ctx -> String_map.add name ctx acc
            | None -> acc)
          String_map.empty candidates
  in
  let routing_info ~bound_skips =
    match routed with
    | None -> None
    | Some _ ->
        let candidates = String_map.cardinal docs in
        Some
          {
            candidates;
            routed_out = String_map.cardinal t.docs - candidates;
            bound_skips;
          }
  in
  if routed <> None && String_map.is_empty docs then
    (* Empty intersection: no document can match; answer without
       touching the shard pool at all. *)
    {
      hits = [];
      stats = Op_stats.create ();
      shard_reports = [];
      errors = [];
      merge_ns = 0;
      elapsed_ns = clock () - t0;
      total_answers = 0;
      deadline_expired = false;
      routing = routing_info ~bound_skips:0;
    }
  else begin
    let n = max 1 (min requested (max 1 (String_map.cardinal docs))) in
    (* Caching across shards: a synchronized cache is striped and safe to
       share between worker domains; an unsynchronized one is only kept
       when there is a single shard (the pool runs one job at a time and
       hands results back through a synchronized channel, so access is
       sequential).  Multi-shard + unsynchronized is the one combination
       that must stay detached. *)
    let request =
      match request.Exec.Request.cache with
      | Some c when n > 1 && not (Join_cache.synchronized c) ->
          Exec.Request.with_cache None request
      | _ -> request
    in
    (* Early termination only composes with routing: the bound's
       soundness is the caller's claim about the scorer, and disabling
       routing (the escape hatch, XFRAG_ROUTING=0) must yield a plain
       full scan. *)
    let bound = if routed = None then None else bound in
    let shard_docs = plan_shards docs n in
    let jobs =
      Array.mapi
        (fun i docs () -> eval_shard ~scorer ~bound ~clock request i docs)
        shard_docs
    in
    let results = Shard_pool.map_all pool jobs in
    let shard_results =
      Array.to_list results
      |> List.map (function Ok r -> r | Error e -> raise e)
    in
    let t_merge = clock () in
    let hits =
      merge_runs ~limit:request.Exec.Request.limit
        (List.map (fun r -> r.s_run) shard_results)
    in
    let merge_ns = clock () - t_merge in
    let stats = Op_stats.create () in
    List.iter (fun r -> Op_stats.merge stats r.s_stats) shard_results;
    {
      hits;
      stats;
      shard_reports = List.map (fun r -> r.s_report) shard_results;
      errors = List.concat_map (fun r -> r.s_report.shard_errors) shard_results;
      merge_ns;
      elapsed_ns = clock () - t0;
      total_answers =
        List.fold_left (fun a r -> a + r.s_answers) 0 shard_results;
      deadline_expired =
        List.exists (fun r -> r.s_report.shard_deadline_expired) shard_results;
      routing =
        routing_info
          ~bound_skips:
            (List.fold_left
               (fun a r -> a + r.s_report.shard_bound_skips)
               0 shard_results);
    }
  end

let request_of ?strategy query =
  let request = Exec.Request.of_query query in
  match strategy with
  | None -> request
  | Some s -> Exec.Request.with_strategy s request

let search ?strategy t query =
  List.map fst (run t (request_of ?strategy query)).hits

let search_scored ~scorer ?strategy ?limit t query =
  let request = request_of ?strategy query in
  let request =
    match limit with
    | None -> request
    | Some _ -> Exec.Request.with_limit limit request
  in
  (run ~scorer t request).hits
