module String_map = Map.Make (String)

type t = Context.t String_map.t

type hit = { doc : string; fragment : Fragment.t }

let empty = String_map.empty

let add t ~name tree =
  if String_map.mem name t then
    invalid_arg (Printf.sprintf "Corpus.add: duplicate document name %S" name);
  String_map.add name (Context.create tree) t

let of_documents docs =
  List.fold_left (fun t (name, tree) -> add t ~name tree) empty docs

let size = String_map.cardinal

let names t = List.map fst (String_map.bindings t)

let context t name =
  match String_map.find_opt name t with Some c -> c | None -> raise Not_found

let total_nodes t =
  String_map.fold (fun _ ctx acc -> acc + Context.size ctx) t 0

let search ?strategy t query =
  String_map.fold
    (fun doc ctx acc ->
      let answers = Eval.answers ?strategy ctx query in
      let hits =
        List.map (fun fragment -> { doc; fragment }) (Frag_set.elements answers)
      in
      acc @ hits)
    t []

let search_scored ~scorer ?strategy ?limit t query =
  let scored =
    String_map.fold
      (fun doc ctx acc ->
        let answers = Eval.answers ?strategy ctx query in
        Frag_set.fold
          (fun acc fragment -> ({ doc; fragment }, scorer ctx fragment) :: acc)
          acc answers)
      t []
  in
  let sorted =
    List.stable_sort
      (fun (h1, s1) (h2, s2) ->
        let c = compare s2 s1 in
        if c <> 0 then c
        else
          let c = String.compare h1.doc h2.doc in
          if c <> 0 then c else Fragment.compare h1.fragment h2.fragment)
      scored
  in
  match limit with
  | None -> sorted
  | Some n -> List.filteri (fun i _ -> i < n) sorted

let document_frequency t keyword =
  String_map.fold
    (fun _ ctx acc ->
      if Xfrag_doctree.Inverted_index.node_count ctx.Context.index keyword > 0 then
        acc + 1
      else acc)
    t 0
