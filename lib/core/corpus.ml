module String_map = Map.Make (String)
module Clock = Xfrag_obs.Clock
module Min_heap = Xfrag_util.Min_heap

type t = Context.t String_map.t

type hit = { doc : string; fragment : Fragment.t }

type doc_report = {
  doc_name : string;
  doc_nodes : int;
  doc_answers : int;
  doc_elapsed_ns : int;
  doc_strategy : Exec.strategy;
}

type doc_error = {
  err_doc : string;
  err_detail : string;
  err_request_id : string;
}

type shard_report = {
  shard_index : int;
  shard_docs : doc_report list;
  shard_errors : doc_error list;
  shard_nodes : int;
  shard_elapsed_ns : int;
  shard_deadline_expired : bool;
}

type outcome = {
  hits : (hit * float) list;
  stats : Op_stats.t;
  shard_reports : shard_report list;
  errors : doc_error list;
  merge_ns : int;
  elapsed_ns : int;
  total_answers : int;
  deadline_expired : bool;
}

let empty = String_map.empty

let add t ~name tree =
  if String_map.mem name t then
    invalid_arg (Printf.sprintf "Corpus.add: duplicate document name %S" name);
  String_map.add name (Context.create tree) t

let of_documents docs =
  List.fold_left (fun t (name, tree) -> add t ~name tree) empty docs

let size = String_map.cardinal

let names t = List.map fst (String_map.bindings t)

let context t name =
  match String_map.find_opt name t with Some c -> c | None -> raise Not_found

let total_nodes t =
  String_map.fold (fun _ ctx acc -> acc + Context.size ctx) t 0

let document_frequency t keyword =
  String_map.fold
    (fun _ ctx acc ->
      if Xfrag_doctree.Inverted_index.node_count ctx.Context.index keyword > 0 then
        acc + 1
      else acc)
    t 0

(* Ranking order shared by the per-shard top-k heaps, the k-way merge,
   and the legacy full sort: score descending, then document name, then
   fragment.  Hits are pairwise distinct (unique doc names, sets of
   fragments per doc), so this is a strict total order — which is what
   makes sharded execution bit-identical to sequential: the global top-k
   under a total order is a subset of the union of per-shard top-ks. *)
let cmp_scored (h1, s1) (h2, s2) =
  let c = compare (s2 : float) s1 in
  if c <> 0 then c
  else
    let c = String.compare h1.doc h2.doc in
    if c <> 0 then c else Fragment.compare h1.fragment h2.fragment

(* Documents hash-assign to shards by name (stable across runs and
   corpus mutations elsewhere), then a greedy rebalance moves documents
   from the heaviest to the lightest shard while that strictly shrinks
   the gap — node count is the work proxy.  Each move reduces the
   sum of squared shard weights, so the loop terminates; the cap is
   belt and braces. *)
let plan_shards t n =
  let bindings = String_map.bindings t in
  if n <= 1 then [| bindings |]
  else begin
    let buckets = Array.make n [] in
    let weights = Array.make n 0 in
    List.iter
      (fun ((name, ctx) as doc) ->
        let i = Hashtbl.hash name mod n in
        buckets.(i) <- doc :: buckets.(i);
        weights.(i) <- weights.(i) + Context.size ctx)
      bindings;
    let arg_extreme better =
      let best = ref 0 in
      for i = 1 to n - 1 do
        if better weights.(i) weights.(!best) then best := i
      done;
      !best
    in
    let moves = ref (0, (4 * List.length bindings) + 16) in
    let progress = ref true in
    while !progress && fst !moves < snd !moves do
      progress := false;
      let hi = arg_extreme ( > ) and lo = arg_extreme ( < ) in
      if hi <> lo then begin
        (* Smallest movable document that still strictly improves:
           small moves converge toward balance without overshooting. *)
        let candidate =
          List.fold_left
            (fun acc ((_, ctx) as doc) ->
              let s = Context.size ctx in
              if weights.(lo) + s < weights.(hi) then
                match acc with
                | Some (_, best_s) when best_s <= s -> acc
                | _ -> Some (doc, s)
              else acc)
            None buckets.(hi)
        in
        match candidate with
        | None -> ()
        | Some (((name, _) as doc), s) ->
            buckets.(hi) <-
              List.filter (fun (n', _) -> n' <> name) buckets.(hi);
            buckets.(lo) <- doc :: buckets.(lo);
            weights.(hi) <- weights.(hi) - s;
            weights.(lo) <- weights.(lo) + s;
            moves := (fst !moves + 1, snd !moves);
            progress := true
      end
    done;
    Array.map
      (List.sort (fun (a, _) (b, _) -> String.compare a b))
      buckets
  end

type shard_eval = {
  s_report : shard_report;
  s_run : (hit * float) list;  (* sorted best-first by [cmp_scored] *)
  s_stats : Op_stats.t;
  s_answers : int;
}

let eval_shard ~scorer ~clock (request : Exec.Request.t) idx docs =
  let t0 = clock () in
  let stats = Op_stats.create () in
  let expired = ref false in
  let doc_reports = ref [] in
  let doc_errors = ref [] in
  let total_answers = ref 0 in
  let limit = request.Exec.Request.limit in
  (* Per-document request: the join cache is kept — its per-generation
     partitions give each document a scoped view, so shard workers warm
     one shared cache instead of thrashing it (the domain-safety gate
     for unsynchronized caches lives in [run]).  Tracing is disabled
     (the span stack is not safe to interleave across domains). *)
  let doc_request = { request with Exec.Request.trace = Xfrag_obs.Trace.disabled } in
  let heap = Min_heap.create ~cmp:(fun a b -> cmp_scored b a) in
  let all = ref [] in
  let add_hit scored =
    match limit with
    | None -> all := scored :: !all
    | Some k when k <= 0 -> ()
    | Some k ->
        if Min_heap.length heap < k then Min_heap.push heap scored
        else (
          match Min_heap.peek heap with
          | Some worst when cmp_scored scored worst < 0 ->
              Min_heap.replace_min heap scored
          | _ -> ())
  in
  (try
     List.iter
       (fun (doc, ctx) ->
         if Deadline.expired request.Exec.Request.deadline then begin
           expired := true;
           raise_notrace Stdlib.Exit
         end;
         (* Evaluate and score into a local buffer, then commit: a
            document that fails anywhere — evaluation, scoring, an armed
            [eval.document] failpoint — contributes nothing, so the
            surviving hits are bit-identical to a run without it. *)
         match
           Xfrag_fault.Fault.Failpoint.hit ~key:doc "eval.document";
           let outcome = Eval.exec ctx doc_request in
           let scored =
             List.map
               (fun fragment -> ({ doc; fragment }, scorer ctx fragment))
               (Frag_set.elements outcome.Eval.answers)
           in
           (outcome, scored)
         with
         | outcome, scored ->
             Op_stats.merge stats outcome.Eval.stats;
             let n = Frag_set.cardinal outcome.Eval.answers in
             total_answers := !total_answers + n;
             List.iter add_hit scored;
             doc_reports :=
               {
                 doc_name = doc;
                 doc_nodes = Context.size ctx;
                 doc_answers = n;
                 doc_elapsed_ns = outcome.Eval.elapsed_ns;
                 doc_strategy = outcome.Eval.strategy_used;
               }
               :: !doc_reports
         | exception Deadline.Expired ->
             (* Partial-result contract: the in-flight document's
                answers are dropped wholesale (a half-evaluated answer
                set would not be bit-identical to any shard plan), the
                shard stops, and the expiry is reported as data — the
                corpus engine never lets [Expired] escape. *)
             expired := true;
             raise_notrace Stdlib.Exit
         | exception e ->
             (* Failure containment: one document blowing up — corrupt
                structure, an adversarial evaluation, an injected fault —
                is data about that document, not a reason to lose the
                other N−1 documents' answers or the process. *)
             Xfrag_fault.Fault.record "doc_errors";
             doc_errors :=
               {
                 err_doc = doc;
                 err_detail = Printexc.to_string e;
                 err_request_id = request.Exec.Request.id;
               }
               :: !doc_errors)
       docs
   with Stdlib.Exit -> ());
  let run =
    match limit with
    | None -> List.sort cmp_scored !all
    | Some _ -> List.sort cmp_scored (Min_heap.to_list heap)
  in
  let nodes = List.fold_left (fun a (_, c) -> a + Context.size c) 0 docs in
  {
    s_report =
      {
        shard_index = idx;
        shard_docs = List.rev !doc_reports;
        shard_errors = List.rev !doc_errors;
        shard_nodes = nodes;
        shard_elapsed_ns = clock () - t0;
        shard_deadline_expired = !expired;
      };
    s_run = run;
    s_stats = stats;
    s_answers = !total_answers;
  }

(* K-way merge of per-shard best-first runs: a heap of run heads, pop
   the global best, push its successor.  At most [shards] heads are
   live, and with a limit at most [limit] hits are ever emitted, so the
   merge never materializes more than [shards x limit] scored hits
   (the per-shard runs) plus the output. *)
let merge_runs ~limit runs =
  let heap = Min_heap.create ~cmp:(fun (a, _) (b, _) -> cmp_scored a b) in
  List.iter
    (function [] -> () | head :: rest -> Min_heap.push heap (head, rest))
    runs;
  let out = ref [] in
  let emitted = ref 0 in
  let want_more () =
    match limit with None -> true | Some k -> !emitted < k
  in
  let continue = ref true in
  while !continue && want_more () do
    match Min_heap.pop heap with
    | None -> continue := false
    | Some (best, rest) ->
        out := best :: !out;
        incr emitted;
        (match rest with
        | [] -> ()
        | head :: rest' -> Min_heap.push heap (head, rest'))
  done;
  List.rev !out

let run ?pool ?shards ?(scorer = fun _ _ -> 0.)
    ?(clock = Clock.monotonic) t (request : Exec.Request.t) =
  let t0 = clock () in
  let pool = match pool with Some p -> p | None -> Shard_pool.default () in
  let requested =
    match shards with
    | Some n -> max 1 n
    | None -> (
        match Sys.getenv_opt "XFRAG_SHARDS" with
        | Some s -> (
            match int_of_string_opt s with
            | Some n when n >= 1 -> n
            | _ -> Shard_pool.parallelism pool)
        | None -> Shard_pool.parallelism pool)
  in
  let n = max 1 (min requested (max 1 (String_map.cardinal t))) in
  (* Caching across shards: a synchronized cache is striped and safe to
     share between worker domains; an unsynchronized one is only kept
     when there is a single shard (the pool runs one job at a time and
     hands results back through a synchronized channel, so access is
     sequential).  Multi-shard + unsynchronized is the one combination
     that must stay detached. *)
  let request =
    match request.Exec.Request.cache with
    | Some c when n > 1 && not (Join_cache.synchronized c) ->
        Exec.Request.with_cache None request
    | _ -> request
  in
  let shard_docs = plan_shards t n in
  let jobs =
    Array.mapi
      (fun i docs () -> eval_shard ~scorer ~clock request i docs)
      shard_docs
  in
  let results = Shard_pool.map_all pool jobs in
  let shard_results =
    Array.to_list results
    |> List.map (function Ok r -> r | Error e -> raise e)
  in
  let t_merge = clock () in
  let hits =
    merge_runs ~limit:request.Exec.Request.limit
      (List.map (fun r -> r.s_run) shard_results)
  in
  let merge_ns = clock () - t_merge in
  let stats = Op_stats.create () in
  List.iter (fun r -> Op_stats.merge stats r.s_stats) shard_results;
  {
    hits;
    stats;
    shard_reports = List.map (fun r -> r.s_report) shard_results;
    errors = List.concat_map (fun r -> r.s_report.shard_errors) shard_results;
    merge_ns;
    elapsed_ns = clock () - t0;
    total_answers =
      List.fold_left (fun a r -> a + r.s_answers) 0 shard_results;
    deadline_expired =
      List.exists (fun r -> r.s_report.shard_deadline_expired) shard_results;
  }

let request_of ?strategy query =
  let request = Exec.Request.of_query query in
  match strategy with
  | None -> request
  | Some s -> Exec.Request.with_strategy s request

let search ?strategy t query =
  List.map fst (run t (request_of ?strategy query)).hits

let search_scored ~scorer ?strategy ?limit t query =
  let request = request_of ?strategy query in
  let request =
    match limit with
    | None -> request
    | Some _ -> Exec.Request.with_limit limit request
  in
  (run ~scorer t request).hits
