let bump stats f = match stats with None -> () | Some s -> f s

let round stats = bump stats (fun s -> s.Op_stats.fixpoint_rounds <- s.Op_stats.fixpoint_rounds + 1)

(* One pairwise-join round.  Every element of [acc] is a join of members
   of [seed], hence contains some member as a subfragment, hence absorbs
   it — so the round result is a superset of [acc] and no explicit union
   is needed. *)
let step ?stats ctx ~keep acc seed =
  Join.pairwise_filtered ?stats ctx ~keep acc seed

let naive_general ?stats ctx ~keep set =
  let seed = Frag_set.filter keep set in
  if Frag_set.is_empty seed then seed
  else begin
    let rec go acc =
      round stats;
      let next = step ?stats ctx ~keep acc seed in
      if Frag_set.cardinal next = Frag_set.cardinal acc then acc else go next
    in
    go seed
  end

let naive ?stats ctx set = naive_general ?stats ctx ~keep:(fun _ -> true) set

(* Delta iteration: only last round's discoveries are joined against the
   seed.  Complete because every k-fold join factors as a (k−1)-fold
   join ⋈ one seed member (associativity/commutativity), and that prefix
   was some round's discovery. *)
let semi_naive ?stats ?(keep = fun _ -> true) ctx set =
  let seed = Frag_set.filter keep set in
  if Frag_set.is_empty seed then seed
  else begin
    let rec go acc delta =
      if Frag_set.is_empty delta then acc
      else begin
        round stats;
        let produced = Join.pairwise_filtered ?stats ctx ~keep delta seed in
        let fresh = Frag_set.diff produced acc in
        go (Frag_set.union acc fresh) fresh
      end
    in
    go seed seed
  end

let naive_filtered ?stats ctx ~keep set = naive_general ?stats ctx ~keep set

let iterate ?stats ctx n set =
  if n < 1 then invalid_arg "Fixed_point.iterate: n must be at least 1";
  let rec go acc remaining =
    if remaining = 0 then acc
    else begin
      round stats;
      go (step ?stats ctx ~keep:(fun _ -> true) acc set) (remaining - 1)
    end
  in
  go set (n - 1)

(* Theorem 1: k = |⊖(seed)| rounds reach the fixed point with no
   per-round convergence check.  The claim is only valid for single-node
   seeds (see the erratum in the interface); [confirm] appends a checked
   loop that makes the result correct for arbitrary seeds at the price of
   at least one confirming round. *)
let with_reduction_general ?stats ctx ~keep ~confirm set =
  let seed = Frag_set.filter keep set in
  if Frag_set.is_empty seed then seed
  else begin
    (* ⊖ of a general set can be empty — mutual subsumption eliminates
       every member (e.g. {⟨0,2,3⟩, ⟨0,1,2,4⟩, ⟨0,2,3,4⟩, ⟨0,1,2,3,4⟩}
       under a flat root) — so floor the round count at one. *)
    let k = max 1 (Frag_set.cardinal (Reduce.reduce ?stats ctx seed)) in
    let rec fast_forward acc remaining =
      if remaining <= 0 then acc
      else begin
        round stats;
        fast_forward (step ?stats ctx ~keep acc seed) (remaining - 1)
      end
    in
    let acc = fast_forward seed (k - 1) in
    if not confirm then acc
    else begin
      let rec converge acc =
        round stats;
        let next = step ?stats ctx ~keep acc seed in
        if Frag_set.cardinal next = Frag_set.cardinal acc then acc else converge next
      in
      converge acc
    end
  end

let with_reduction ?stats ctx set =
  with_reduction_general ?stats ctx ~keep:(fun _ -> true) ~confirm:true set

let with_reduction_unchecked ?stats ctx set =
  with_reduction_general ?stats ctx ~keep:(fun _ -> true) ~confirm:false set

let with_reduction_filtered ?stats ctx ~keep set =
  with_reduction_general ?stats ctx ~keep ~confirm:true set

let with_reduction_filtered_unchecked ?stats ctx ~keep set =
  with_reduction_general ?stats ctx ~keep ~confirm:false set
