module Trace = Xfrag_obs.Trace
module Json = Xfrag_obs.Json

let bump stats f = match stats with None -> () | Some s -> f s

let round stats = bump stats (fun s -> s.Op_stats.fixpoint_rounds <- s.Op_stats.fixpoint_rounds + 1)

(* Wrap one fixed-point round in a [round] span carrying the working-set
   size going in and out.  [n] is the 1-based round number. *)
let traced_round trace n in_size f =
  if not (Trace.is_enabled trace) then f ()
  else
    Trace.with_span trace
      ~attrs:[ ("n", Json.Int n); ("in", Json.Int in_size) ]
      "round"
      (fun () ->
        let out = f () in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        out)

let traced_fixed_point trace name seed_size f =
  if not (Trace.is_enabled trace) then f ()
  else
    Trace.with_span trace
      ~attrs:[ ("seed", Json.Int seed_size) ]
      name
      (fun () ->
        let out = f () in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        out)

(* One pairwise-join round.  Every element of [acc] is a join of members
   of [seed], hence contains some member as a subfragment, hence absorbs
   it — so the round result is a superset of [acc] and no explicit union
   is needed. *)
let step ?stats ?cache ?trace ?deadline ctx ~keep acc seed =
  Join.pairwise_filtered ?stats ?cache ?trace ?deadline ctx ~keep acc seed

let naive_general ?stats ?cache ?(trace = Trace.disabled)
    ?(deadline = Deadline.none) ~name ctx ~keep set =
  let seed = Frag_set.filter keep set in
  if Frag_set.is_empty seed then seed
  else
    traced_fixed_point trace name (Frag_set.cardinal seed) (fun () ->
        let rec go n acc =
          Deadline.check deadline;
          round stats;
          let next =
            traced_round trace n (Frag_set.cardinal acc) (fun () ->
                step ?stats ?cache ~trace ~deadline ctx ~keep acc seed)
          in
          if Frag_set.cardinal next = Frag_set.cardinal acc then acc
          else go (n + 1) next
        in
        go 1 seed)

let naive ?stats ?cache ?trace ?deadline ctx set =
  naive_general ?stats ?cache ?trace ?deadline ~name:"fixed-point" ctx
    ~keep:(fun _ -> true)
    set

(* Delta iteration: only last round's discoveries are joined against the
   seed.  Complete because every k-fold join factors as a (k−1)-fold
   join ⋈ one seed member (associativity/commutativity), and that prefix
   was some round's discovery. *)
let semi_naive ?stats ?cache ?(trace = Trace.disabled)
    ?(deadline = Deadline.none) ?(keep = fun _ -> true) ctx set =
  let seed = Frag_set.filter keep set in
  if Frag_set.is_empty seed then seed
  else
    traced_fixed_point trace "fixed-point:semi-naive" (Frag_set.cardinal seed)
      (fun () ->
        let rec go n acc delta =
          if Frag_set.is_empty delta then acc
          else begin
            Deadline.check deadline;
            round stats;
            let fresh =
              traced_round trace n (Frag_set.cardinal delta) (fun () ->
                  let produced =
                    Join.pairwise_filtered ?stats ?cache ~trace ~deadline ctx
                      ~keep delta seed
                  in
                  Frag_set.diff produced acc)
            in
            go (n + 1) (Frag_set.union acc fresh) fresh
          end
        in
        go 1 seed seed)

let naive_filtered ?stats ?cache ?trace ?deadline ctx ~keep set =
  naive_general ?stats ?cache ?trace ?deadline ~name:"fixed-point:pruned" ctx
    ~keep set

let iterate ?stats ?cache ?trace ?deadline ctx n set =
  if n < 1 then invalid_arg "Fixed_point.iterate: n must be at least 1";
  let rec go acc remaining =
    if remaining = 0 then acc
    else begin
      round stats;
      go
        (step ?stats ?cache ?trace ?deadline ctx ~keep:(fun _ -> true) acc set)
        (remaining - 1)
    end
  in
  go set (n - 1)

(* Theorem 1: k = |⊖(seed)| rounds reach the fixed point with no
   per-round convergence check.  The claim is only valid for single-node
   seeds (see the erratum in the interface); [confirm] appends a checked
   loop that makes the result correct for arbitrary seeds at the price of
   at least one confirming round. *)
let with_reduction_general ?stats ?cache ?(trace = Trace.disabled)
    ?(deadline = Deadline.none) ?reduced ctx ~keep ~confirm set =
  let seed = Frag_set.filter keep set in
  if Frag_set.is_empty seed then seed
  else
    traced_fixed_point trace "fixed-point:reduced" (Frag_set.cardinal seed)
      (fun () ->
        (* ⊖ of a general set can be empty — mutual subsumption eliminates
           every member (e.g. {⟨0,2,3⟩, ⟨0,1,2,4⟩, ⟨0,2,3,4⟩, ⟨0,1,2,3,4⟩}
           under a flat root) — so floor the round count at one. *)
        let reduced_seed =
          match reduced with
          | Some r -> r
          | None -> Reduce.reduce ?stats ?cache ~trace ctx seed
        in
        let k = max 1 (Frag_set.cardinal reduced_seed) in
        if Trace.is_enabled trace then Trace.add_attr trace "rounds" (Json.Int k);
        let rec fast_forward n acc remaining =
          if remaining <= 0 then (n, acc)
          else begin
            Deadline.check deadline;
            round stats;
            let next =
              traced_round trace n (Frag_set.cardinal acc) (fun () ->
                  step ?stats ?cache ~trace ~deadline ctx ~keep acc seed)
            in
            fast_forward (n + 1) next (remaining - 1)
          end
        in
        let n, acc = fast_forward 1 seed (k - 1) in
        if not confirm then acc
        else begin
          let rec converge n acc =
            Deadline.check deadline;
            round stats;
            let next =
              traced_round trace n (Frag_set.cardinal acc) (fun () ->
                  step ?stats ?cache ~trace ~deadline ctx ~keep acc seed)
            in
            if Frag_set.cardinal next = Frag_set.cardinal acc then acc
            else converge (n + 1) next
          in
          converge n acc
        end)

let with_reduction ?stats ?cache ?trace ?deadline ctx set =
  with_reduction_general ?stats ?cache ?trace ?deadline ctx
    ~keep:(fun _ -> true)
    ~confirm:true set

let with_reduction_unchecked ?stats ?cache ?trace ?deadline ?reduced ctx set =
  with_reduction_general ?stats ?cache ?trace ?deadline ?reduced ctx
    ~keep:(fun _ -> true)
    ~confirm:false set

let with_reduction_filtered ?stats ?cache ?trace ?deadline ctx ~keep set =
  with_reduction_general ?stats ?cache ?trace ?deadline ctx ~keep ~confirm:true
    set

let with_reduction_filtered_unchecked ?stats ?cache ?trace ?deadline ctx ~keep
    set =
  with_reduction_general ?stats ?cache ?trace ?deadline ctx ~keep
    ~confirm:false set
