(** Fragment set reduce ⊖ (Definition 10) and the reduction factor RF
    (§5).

    Definition 10 as printed in the paper is missing its negation — read
    literally it returns the fragments to be *eliminated*.  The worked
    example (Figure 4) fixes the intent, which is what we implement:

    ⊖(F) = \{ f ∈ F | ¬∃ distinct f', f'' ∈ F∖\{f\} : f ⊆ f' ⋈ f'' \}

    Theorem 1 then states that |⊖(F)| pairwise-join rounds suffice to
    reach the fixed point F⁺. *)

val reduce :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t
(** O(|F|² joins + |F|³ subset checks); the join of every pair is
    computed once and reused across candidates (and served from [cache]
    when one is attached — reduce's pairwise joins frequently recur in
    the fixed-point rounds that follow it). *)

val factor_of : original:Frag_set.t -> reduced:Frag_set.t -> float
(** RF from an already-computed reduction — lets a caller that needs
    both the factor {e and} the reduced set (e.g. the Auto strategy
    probe) pay for one {!reduce} instead of two. *)

val reduction_factor :
  ?stats:Op_stats.t -> ?cache:Join_cache.t -> Context.t -> Frag_set.t -> float
(** RF = (|F| − |⊖(F)|) / |F|; 0 when |F| ≤ 2 (nothing can be reduced).
    The paper claims RF < 1, which holds for single-node fragment sets;
    for general sets mutual subsumption can empty ⊖(F) entirely, giving
    RF = 1 (see the erratum in {!Fixed_point}). *)
