(** Algebraic plan rewrites (§3).

    Each rule returns an equivalent plan — tests execute both sides on
    random documents and compare answer sets:

    - {!power_to_fixpoint}: Theorem 2, F1 ⋈* F2 ⇒ F1⁺ ⋈ F2⁺;
    - {!use_reduction}: Theorem 1, compute fixed points with the
      pre-computed |⊖(F)| round count;
    - {!push_selection}: Theorem 3, push the anti-monotonic part of every
      selection below joins and into fixed-point rounds, keeping the
      residual on top. *)

val power_to_fixpoint : Plan.t -> Plan.t

val use_reduction : Plan.t -> Plan.t

val push_selection : Plan.t -> Plan.t

val optimize_fully : Plan.t -> Plan.t
(** [push_selection ∘ use_reduction ∘ power_to_fixpoint] — the paper's
    full §4.3 strategy as a plan transformation. *)
