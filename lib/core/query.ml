module Tokenizer = Xfrag_doctree.Tokenizer
module Inverted_index = Xfrag_doctree.Inverted_index

type t = { keywords : string list; filter : Filter.t }

let make ?(filter = Filter.True) keywords =
  let keywords =
    keywords |> List.map Tokenizer.normalize
    |> List.filter (fun k -> k <> "")
    |> List.sort_uniq String.compare
  in
  if keywords = [] then invalid_arg "Query.make: at least one keyword is required";
  { keywords; filter }

let keyword_in_nodes ctx nodes k =
  List.exists (fun n -> Inverted_index.node_contains ctx.Context.index n k) nodes

let matches ctx q f =
  List.for_all
    (fun k -> keyword_in_nodes ctx (Xfrag_util.Int_sorted.to_list (Fragment.nodes f)) k)
    q.keywords
  && Filter.evaluate ctx q.filter f

let matches_strict ctx q f =
  let leaves = Fragment.leaves ctx f in
  List.for_all (fun k -> keyword_in_nodes ctx leaves k) q.keywords
  && Filter.evaluate ctx q.filter f

let pp ppf q =
  Format.fprintf ppf "Q[%a]{%s}" Filter.pp q.filter (String.concat ", " q.keywords)
