(** Fixed points of fragment sets (Definition 9).

    F⁺ = \{ ⋈F' | F' ⊆ F, F' ≠ ∅ \} — every fragment obtainable by
    joining any non-empty subset of F.  Because pairwise join is
    monotonic and absorption holds, F⁺ equals ⋈ₙ(F), the n-fold pairwise
    self-join, and Theorem 1 shows k = |⊖(F)| rounds suffice.

    {b Erratum (reproduction finding).}  Theorem 1 as stated is {e false}
    for general fragment sets: with
    F = \{⟨n0,n4⟩, ⟨n0,n2,n3⟩, ⟨n0,n1,n2,n3,n4⟩\} under a root with four
    children, ⊖(F) is a singleton (k = 1, so "zero rounds"), yet
    ⟨n0,n4⟩ ⋈ ⟨n0,n2,n3⟩ = ⟨n0,n2,n3,n4⟩ is a new fragment
    (see test_fixed_point.ml).  The theorem {e does} hold empirically for
    sets of single-node fragments — the only inputs the paper's query
    evaluation ever feeds it (keyword-selected node sets, §2.3) — with no
    counterexample in 65 000 random singleton-seed instances.

    Computation strategies, all returning the same set:
    - {!naive}: iterate [G ← G ⋈ F] with a fixed-point check after every
      round (§3.1.1);
    - {!with_reduction}: fast-forward k−1 = |⊖(F)|−1 unchecked rounds
      (§3.1.2), then verify convergence — sound for every input;
    - {!with_reduction_unchecked}: the paper's exact Theorem 1 recipe,
      exactly k−1 rounds and no check — use only on single-node seeds;
    - {!naive_filtered} / {!with_reduction_filtered}: the same, pruning
      with an anti-monotonic predicate after every join (Theorem 3
      push-down inside the fixed point).

    Every strategy accepts an optional [?deadline] ({!Deadline.t},
    default {!Deadline.none}): checked at the top of every round and
    once per row inside the round's pairwise join, so a runaway fixed
    point aborts with {!Deadline.Expired} between whole joins. *)

val naive :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t

val semi_naive :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  ?keep:(Fragment.t -> bool) ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t
(** Delta iteration (the classic datalog optimization; the paper's
    "algorithms to implement all the operations" future work): each round
    joins only the fragments *discovered in the previous round* against
    the seed, instead of the whole accumulated set.  Correct because
    join results involving two old fragments were already produced in an
    earlier round.  Performs strictly fewer joins than {!naive} after the
    first round; answers are identical (property-tested).  [keep] prunes
    anti-monotonically as in {!naive_filtered}. *)

val with_reduction :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t

val with_reduction_unchecked :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  ?reduced:Frag_set.t ->
  Context.t ->
  Frag_set.t ->
  Frag_set.t
(** Theorem 1 verbatim: exactly |⊖(F)|−1 pairwise-join rounds, no
    convergence check.  Correct when every member of the input is a
    single-node fragment (the paper's use case); may under-compute on
    general inputs — see the erratum above.  [reduced], when given, must
    be ⊖ of the input computed against the same context — it skips the
    internal reduce so a caller that already reduced the seed (e.g. the
    Auto-strategy probe in {!Eval}) does not pay for it twice. *)

val iterate :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  int ->
  Frag_set.t ->
  Frag_set.t
(** [iterate ctx n f] is ⋈ₙ(F): the pairwise self-join applied to [n]
    copies of [F] (so [iterate ctx 1 f = f]).
    @raise Invalid_argument if [n < 1]. *)

val naive_filtered :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  keep:(Fragment.t -> bool) ->
  Frag_set.t ->
  Frag_set.t
(** Fixed point of the [keep]-pruned join sequence, starting from
    [filter keep F].  Sound for anti-monotonic [keep] in the sense that
    [σ_keep F⁺ = σ_keep (naive_filtered ~keep F)]. *)

val with_reduction_filtered :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  keep:(Fragment.t -> bool) ->
  Frag_set.t ->
  Frag_set.t
(** Like {!naive_filtered} but fast-forwarded through |⊖|−1 rounds of the
    pruned seed set before the convergence check. *)

val with_reduction_filtered_unchecked :
  ?stats:Op_stats.t ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  keep:(Fragment.t -> bool) ->
  Frag_set.t ->
  Frag_set.t
(** Theorem 1 + Theorem 3 combined with no convergence check: exactly
    |⊖(σ_keep F)|−1 pruned rounds.  Correct when the input is a set of
    single-node fragments and [keep] is anti-monotonic (σ_keep of the
    answer is then reached within that round count — see the induction
    in DESIGN.md). *)
