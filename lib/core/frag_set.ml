module H = Hashtbl.Make (struct
  type t = Fragment.t

  let equal = Fragment.equal

  let hash = Fragment.hash
end)

type t = unit H.t

let create_table n : t = H.create (max 16 n)

(* A function, not a shared constant: the representation is a mutable
   hashtable, and a single global "empty" value would be corrupted for
   every holder by the first caller that mutates it (e.g. through
   [Builder.freeze] aliasing).  Each call returns a fresh table. *)
let empty () : t = create_table 1

let is_empty t = H.length t = 0

let cardinal t = H.length t

let mem f t = H.mem t f

let iter f t = H.iter (fun frag () -> f frag) t

let fold f init t = H.fold (fun frag () acc -> f acc frag) t init

let elements t =
  fold (fun acc f -> f :: acc) [] t |> List.sort Fragment.compare

let of_list fs =
  let t = create_table (List.length fs) in
  List.iter (fun f -> H.replace t f ()) fs;
  t

let singleton f = of_list [ f ]

let of_nodes ids =
  let t = create_table (Xfrag_util.Int_sorted.cardinal ids) in
  Xfrag_util.Int_sorted.iter (fun n -> H.replace t (Fragment.singleton n) ()) ids;
  t

let copy t : t = H.copy t

let add f t =
  let t' = copy t in
  H.replace t' f ();
  t'

let union a b =
  let small, large = if cardinal a <= cardinal b then (a, b) else (b, a) in
  let t = copy large in
  iter (fun f -> H.replace t f ()) small;
  t

let inter a b =
  let small, large = if cardinal a <= cardinal b then (a, b) else (b, a) in
  let t = create_table (cardinal small) in
  iter (fun f -> if mem f large then H.replace t f ()) small;
  t

let diff a b =
  let t = create_table (cardinal a) in
  iter (fun f -> if not (mem f b) then H.replace t f ()) a;
  t

let subset a b = cardinal a <= cardinal b && fold (fun ok f -> ok && mem f b) true a

let equal a b = cardinal a = cardinal b && subset a b

let for_all p t = fold (fun ok f -> ok && p f) true t

let exists p t = fold (fun found f -> found || p f) false t

let filter p t =
  let t' = create_table (cardinal t) in
  iter (fun f -> if p f then H.replace t' f ()) t;
  t'

let map g t =
  let t' = create_table (cardinal t) in
  iter (fun f -> H.replace t' (g f) ()) t;
  t'

let min_size_fragment t =
  fold
    (fun best f ->
      match best with
      | None -> Some f
      | Some b -> if Fragment.size f < Fragment.size b then Some f else best)
    None t

let pp ppf t =
  Format.fprintf ppf "@[<v>{";
  List.iteri
    (fun i f ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Fragment.pp ppf f)
    (elements t);
  Format.fprintf ppf "}@]"

module Builder = struct
  type set = t

  type t = set

  let create ?(size_hint = 64) () : t = create_table size_hint

  let mem t f = H.mem t f

  let add t f =
    if H.mem t f then false
    else begin
      H.replace t f ();
      true
    end

  let cardinal = H.length

  let freeze t = t
end
