(** Operation counters threaded through the algebra.

    The paper argues about *amount of computation* (number of join
    operations avoided, candidates never generated).  These counters make
    that argument measurable independently of wall-clock noise; the bench
    harness reports both. *)

type t = {
  mutable fragment_joins : int;  (** f1 ⋈ f2 computations *)
  mutable candidates : int;  (** fragments produced before dedup *)
  mutable duplicates : int;  (** candidates that were already present *)
  mutable pruned : int;  (** fragments discarded by a pushed-down filter *)
  mutable filtered : int;  (** fragments discarded by the final selection *)
  mutable fixpoint_rounds : int;  (** pairwise-join rounds executed *)
  mutable reduce_subset_checks : int;  (** subset tests inside ⊖ *)
  mutable cache_hits : int;  (** joins answered from the memo table *)
  mutable cache_misses : int;  (** memoized joins computed then stored *)
  mutable cache_evictions : int;  (** memo entries displaced by LRU *)
  mutable cache_rejected : int;  (** joins the admission policy declined *)
}

val create : unit -> t

val reset : t -> unit

val merge : t -> t -> unit
(** [merge dst src] adds every counter of [src] into [dst].  Used to
    aggregate per-worker counters after a Domain-parallel join, and to
    fold per-operator deltas into a query total. *)

val to_assoc : t -> (string * int) list
(** Stable snapshot [(name, value)] in declaration order — the bridge
    into a {!Xfrag_obs.Metrics} registry and the JSON exporters. *)

val total_work : t -> int
(** A single scalar proxy for the paper's "amount of computation":
    joins + subset checks — the two operations §4/§5 count when
    comparing strategies.  [candidates] is deliberately excluded: every
    candidate is the output of exactly one counted fragment join, so
    adding it would double-count the same work; [duplicates], [pruned]
    and [filtered] are likewise classifications of already-counted
    outputs, not additional computation.  Cache counters are excluded
    too: a hit is an O(1) table probe standing in for a join the engine
    did {e not} perform — with a {!Join_cache} attached,
    [cache_hits + fragment_joins] is comparable to an uncached run's
    [fragment_joins]. *)

val pp : Format.formatter -> t -> unit
(** One line of [k=v] pairs; the cache counters are appended only when
    at least one of them is non-zero, so uncached runs print exactly as
    they did before the join cache existed. *)
