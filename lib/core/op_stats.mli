(** Operation counters threaded through the algebra.

    The paper argues about *amount of computation* (number of join
    operations avoided, candidates never generated).  These counters make
    that argument measurable independently of wall-clock noise; the bench
    harness reports both. *)

type t = {
  mutable fragment_joins : int;  (** f1 ⋈ f2 computations *)
  mutable candidates : int;  (** fragments produced before dedup *)
  mutable duplicates : int;  (** candidates that were already present *)
  mutable pruned : int;  (** fragments discarded by a pushed-down filter *)
  mutable filtered : int;  (** fragments discarded by the final selection *)
  mutable fixpoint_rounds : int;  (** pairwise-join rounds executed *)
  mutable reduce_subset_checks : int;  (** subset tests inside ⊖ *)
}

val create : unit -> t

val reset : t -> unit

val total_work : t -> int
(** A single scalar proxy: joins + subset checks. *)

val pp : Format.formatter -> t -> unit
