(** A coarse analytical cost model for plans (§5 asks for one as future
    work; this is a deliberately simple instance).

    Costs are abstract units proportional to the number of fragment-join
    operations a plan would perform, driven by estimated operand
    cardinalities:

    - a scan costs its posting-list length;
    - a pairwise join of estimated sizes a and b costs a·b and yields up
      to a·b fragments;
    - a fixed point over a set of estimated size a runs an estimated
      r = min(a, round_cap) rounds of self-joins with a growth cap (the
      output of a fixed point cannot exceed the number of connected
      fragments, which we bound by [set_growth_cap]);
    - a selection costs its input size; its output is input size times a
      per-filter selectivity estimate.

    The model exists to rank alternative plans, not to predict wall
    time; the bench harness measures how well the ranking matches
    reality. *)

type estimate = { cost : float; cardinality : float }

val selectivity : Filter.t -> float
(** Heuristic fraction of fragments that survive the filter. *)

val estimate : Context.t -> Plan.t -> estimate

val cost : Context.t -> Plan.t -> float

val set_growth_cap : float
(** Cap on the estimated cardinality of any intermediate fragment set. *)
