module Doctree = Xfrag_doctree.Doctree
module Inverted_index = Xfrag_doctree.Inverted_index

type t =
  | True
  | Size_at_most of int
  | Size_at_least of int
  | Height_at_most of int
  | Span_at_most of int
  | Diameter_at_most of int
  | Width_at_most of int
  | Depth_under of int
  | Labels_among of string list
  | Contains_keyword of string
  | Root_label_is of string
  | Equal_depth of string * string
  | Not of t
  | And of t * t
  | Or of t * t

let rec evaluate (ctx : Context.t) p f =
  match p with
  | True -> true
  | Size_at_most beta -> Fragment.size f <= beta
  | Size_at_least beta -> Fragment.size f >= beta
  | Height_at_most h -> Fragment.height ctx f <= h
  | Span_at_most w -> Fragment.span f <= w
  | Diameter_at_most d ->
      (* Fragments are small; the quadratic pairwise scan with O(1) LCA
         distances is fine.  The diameter of a connected subtree is
         realised between two fragment leaves (or a leaf and the root). *)
      let nodes = Xfrag_util.Int_sorted.to_list (Fragment.nodes f) in
      let ok = ref true in
      let rec scan = function
        | [] -> ()
        | n :: rest ->
            List.iter
              (fun m ->
                if Xfrag_doctree.Lca.distance ctx.lca n m > d then ok := false)
              rest;
            if !ok then scan rest
      in
      scan nodes;
      !ok
  | Width_at_most w -> Fragment.width ctx f <= w
  | Depth_under d ->
      Xfrag_util.Int_sorted.for_all (fun n -> Doctree.depth ctx.tree n <= d) (Fragment.nodes f)
  | Labels_among labels ->
      Xfrag_util.Int_sorted.for_all
        (fun n -> List.mem (Doctree.label ctx.tree n) labels)
        (Fragment.nodes f)
  | Contains_keyword k -> Fragment.contains_keyword ctx f k
  | Root_label_is l -> String.equal (Doctree.label ctx.tree (Fragment.root f)) l
  | Equal_depth (k1, k2) ->
      (* Member nodes containing each keyword must exist, and all of them
         must sit at one common depth relative to the fragment root. *)
      let depths k =
        Xfrag_util.Int_sorted.fold
          (fun acc n ->
            if Inverted_index.node_contains ctx.index n k then
              Fragment.depth_of ctx f n :: acc
            else acc)
          [] (Fragment.nodes f)
      in
      (match (depths k1, depths k2) with
      | [], _ | _, [] -> false
      | d1s, d2s ->
          let all = d1s @ d2s in
          List.for_all (fun d -> d = List.hd all) all)
  | Not p -> not (evaluate ctx p f)
  | And (p1, p2) -> evaluate ctx p1 f && evaluate ctx p2 f
  | Or (p1, p2) -> evaluate ctx p1 f || evaluate ctx p2 f

let rec is_anti_monotonic = function
  | True | Size_at_most _ | Height_at_most _ | Span_at_most _ | Diameter_at_most _
  | Width_at_most _ | Depth_under _ | Labels_among _ ->
      true
  | Size_at_least _ | Contains_keyword _ | Root_label_is _ | Equal_depth _ | Not _ ->
      false
  | And (p1, p2) | Or (p1, p2) -> is_anti_monotonic p1 && is_anti_monotonic p2

let rec conjuncts = function
  | And (p1, p2) -> conjuncts p1 @ conjuncts p2
  | True -> []
  | p -> [ p ]

let conjoin = function
  | [] -> True
  | p :: rest -> List.fold_left (fun acc q -> And (acc, q)) p rest

let decompose p =
  let am, residual = List.partition is_anti_monotonic (conjuncts p) in
  (conjoin am, conjoin residual)

let rec pp ppf = function
  | True -> Format.pp_print_string ppf "true"
  | Size_at_most b -> Format.fprintf ppf "size<=%d" b
  | Size_at_least b -> Format.fprintf ppf "size>=%d" b
  | Height_at_most h -> Format.fprintf ppf "height<=%d" h
  | Span_at_most w -> Format.fprintf ppf "span<=%d" w
  | Diameter_at_most d -> Format.fprintf ppf "diameter<=%d" d
  | Width_at_most w -> Format.fprintf ppf "width<=%d" w
  | Depth_under d -> Format.fprintf ppf "depth<=%d" d
  | Labels_among ls -> Format.fprintf ppf "labels=%s" (String.concat "|" ls)
  | Contains_keyword k -> Format.fprintf ppf "keyword=%s" k
  | Root_label_is l -> Format.fprintf ppf "rootlabel=%s" l
  | Equal_depth (k1, k2) -> Format.fprintf ppf "eqdepth=%s/%s" k1 k2
  | Not p -> Format.fprintf ppf "not:(%a)" pp p
  | And (p1, p2) -> Format.fprintf ppf "(%a \xE2\x88\xA7 %a)" pp p1 pp p2
  | Or (p1, p2) -> Format.fprintf ppf "(%a \xE2\x88\xA8 %a)" pp p1 pp p2

let to_string p = Format.asprintf "%a" pp p

let parse_term term =
  let fail () = Error (Printf.sprintf "cannot parse filter term %S" term) in
  let int_suffix prefix k =
    let n = String.length prefix in
    if String.length term > n && String.sub term 0 n = prefix then
      match int_of_string_opt (String.sub term n (String.length term - n)) with
      | Some v -> Some (k v)
      | None -> None
    else None
  in
  let str_suffix prefix k =
    let n = String.length prefix in
    if String.length term > n && String.sub term 0 n = prefix then
      Some (k (String.sub term n (String.length term - n)))
    else None
  in
  if term = "true" then Ok True
  else if String.length term > 8 && String.sub term 0 8 = "eqdepth=" then begin
    let body = String.sub term 8 (String.length term - 8) in
    match String.split_on_char '/' body with
    | [ k1; k2 ] when k1 <> "" && k2 <> "" -> Ok (Equal_depth (k1, k2))
    | _ -> Error (Printf.sprintf "eqdepth expects two '/'-separated keywords in %S" term)
  end
  else
    let candidates =
      [
        int_suffix "size<=" (fun v -> Size_at_most v);
        int_suffix "size>=" (fun v -> Size_at_least v);
        int_suffix "height<=" (fun v -> Height_at_most v);
        int_suffix "span<=" (fun v -> Span_at_most v);
        int_suffix "diameter<=" (fun v -> Diameter_at_most v);
        int_suffix "width<=" (fun v -> Width_at_most v);
        int_suffix "depth<=" (fun v -> Depth_under v);
        str_suffix "rootlabel=" (fun s -> Root_label_is s);
        str_suffix "labels=" (fun s -> Labels_among (String.split_on_char '|' s));
        str_suffix "keyword=" (fun s -> Contains_keyword s);
      ]
    in
    match List.find_opt Option.is_some candidates with
    | Some (Some p) -> Ok p
    | Some None | None -> fail ()

let of_string s =
  let terms =
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun t -> t <> "")
  in
  if terms = [] then Ok True
  else
    let rec go acc = function
      | [] -> Ok (conjoin (List.rev acc))
      | term :: rest ->
          let negated = String.length term > 4 && String.sub term 0 4 = "not:" in
          let body = if negated then String.sub term 4 (String.length term - 4) else term in
          (match parse_term body with
          | Ok p -> go ((if negated then Not p else p) :: acc) rest
          | Error e -> Error e)
    in
    go [] terms
