(** The unified evaluation-request API.

    Every front end — the CLI, [POST /query], [POST /explain],
    [POST /corpus/query], and the sharded corpus engine — used to
    re-thread the same six optional arguments ([?strategy]
    [?strict_leaf_semantics] [?cache] [?trace] [?deadline] [?limit])
    and re-parse them independently.  {!Request.t} bundles them into one
    value with one JSON codec, so the entry points cannot drift:
    validation rules (the [deadline_ms] overflow rejection, keyword
    non-emptiness, filter syntax) live here and nowhere else.

    The evaluation {!strategy} type also lives here (it is part of a
    request, not of any one evaluator); {!Eval} re-exports it, so
    existing [Eval.Auto]-style code keeps compiling. *)

type strategy =
  | Brute_force
  | Naive_fixpoint
  | Set_reduction
  | Pushdown
  | Pushdown_reduction
  | Semi_naive
  | Auto

val strategy_name : strategy -> string

val strategy_of_string : string -> (strategy, string) result
(** Recognizes [brute-force], [naive], [set-reduction], [pushdown],
    [pushdown-reduction], [semi-naive], [auto]. *)

val all_strategies : strategy list
(** The six concrete strategies (without [Auto]). *)

val deadline_of_ms : int -> (Deadline.t, string) result
(** [deadline_of_ms ms] is a deadline [ms] milliseconds from now.
    Negative values and values whose nanosecond conversion would
    overflow are rejected with a message (they are validation errors —
    HTTP 400 — not expirations).  The single home of this rule. *)

module Request : sig
  type t = {
    keywords : string list;  (** raw; normalized by {!to_query} *)
    filter : Filter.t;
    strategy : strategy;
    strict_leaf : bool;  (** Definition 8 leaf-occurrence semantics *)
    deadline : Deadline.t;
    cache : Join_cache.t option;  (** join memo table, see {!Join_cache} *)
    trace : Xfrag_obs.Trace.t;  (** span sink, default disabled *)
    limit : int option;  (** top-k bound; [None] = unlimited *)
    id : string;
        (** request id ({!Xfrag_obs.Reqid}); [""] = anonymous.  Like
            [cache] and [trace] this is transport-level state — set by
            the router or CLI, carried through sharding and eval, and
            deliberately absent from the JSON codec. *)
  }

  val default : t
  (** Empty keywords (invalid to evaluate as-is), [Filter.True], [Auto],
      no deadline, no cache, disabled trace, no limit — the seed for the
      [with_*] builders. *)

  val with_keywords : string list -> t -> t

  val with_filter : Filter.t -> t -> t

  val with_strategy : strategy -> t -> t

  val with_strict_leaf : bool -> t -> t

  val with_deadline : Deadline.t -> t -> t

  val with_cache : Join_cache.t option -> t -> t

  val with_trace : Xfrag_obs.Trace.t -> t -> t

  val with_limit : int option -> t -> t

  val with_id : string -> t -> t

  val of_query : Query.t -> t
  (** [default] carrying the query's keywords and filter. *)

  val to_query : t -> Query.t
  (** Normalizes and validates the keyword list.
      @raise Invalid_argument when no keyword survives normalization. *)

  val of_json : ?default_deadline_ns:int -> Xfrag_obs.Json.t -> (t, string) result
  (** The single request decoder shared by every HTTP endpoint and the
      batch corpus path.  Fields: [keywords] (required array of
      non-empty strings), [filter] (string, {!Filter.of_string}
      syntax), [filters] (object with [max_size]/[max_height]/
      [max_width] integer bounds, conjoined with [filter]), [strategy]
      (string), [strict_leaf] (bool), [deadline_ms] (int, validated by
      {!deadline_of_ms}; absent → [default_deadline_ns] if given),
      [limit] (int; absent → 100, [<= 0] → unlimited).  Error strings
      are ready to surface as HTTP 400 bodies. *)

  val of_body : ?default_deadline_ns:int -> string -> (t, string) result
  (** {!of_json} after parsing; a malformed body yields
      [Error "bad JSON body: …"]. *)

  val to_json : t -> Xfrag_obs.Json.t
  (** Inverse of {!of_json} for the serializable fields (keywords,
      filter, strategy, strict_leaf, limit, and a remaining-time
      [deadline_ms] when a deadline is set).  [cache] and [trace] are
      process-local handles and do not serialize. *)
end
