(** Keyword queries Q_P\{k1, …, km\} (Definition 7) and the answer
    semantics (Definition 8).

    The paper's operational formula — σ_P(F1 ⋈* … ⋈* Fm) — and its
    declarative Definition 8 disagree on one point: the definition asks
    for every keyword to occur in a *leaf* of the answer fragment, while
    the formula (and Table 1, e.g. answer ⟨n16, n18⟩ whose keyword
    'optimization' occurs only in the fragment root n16) does not enforce
    leafness.  We follow the formula; {!matches_strict} implements the
    verbatim Definition 8 for callers who want it (see DESIGN.md). *)

type t = {
  keywords : string list;  (** normalized, non-empty, de-duplicated *)
  filter : Filter.t;
}

val make : ?filter:Filter.t -> string list -> t
(** Normalizes (lower-cases) and de-duplicates the keywords.
    @raise Invalid_argument if no keyword remains. *)

val matches : Context.t -> t -> Fragment.t -> bool
(** Operational semantics: every keyword occurs in some member node, and
    the filter holds.  (Conjunctive semantics, as in the paper.) *)

val matches_strict : Context.t -> t -> Fragment.t -> bool
(** Definition 8 verbatim: every keyword occurs in some node that is a
    leaf *of the fragment*, and the filter holds. *)

val pp : Format.formatter -> t -> unit
