module Trace = Xfrag_obs.Trace
module Json = Xfrag_obs.Json

type strategy =
  | Brute_force
  | Naive_fixpoint
  | Set_reduction
  | Pushdown
  | Pushdown_reduction
  | Semi_naive
  | Auto

let strategy_name = function
  | Brute_force -> "brute-force"
  | Naive_fixpoint -> "naive"
  | Set_reduction -> "set-reduction"
  | Pushdown -> "pushdown"
  | Pushdown_reduction -> "pushdown-red"
  | Semi_naive -> "semi-naive"
  | Auto -> "auto"

let strategy_of_string = function
  | "brute-force" | "bruteforce" | "brute" -> Ok Brute_force
  | "naive" | "naive-fixpoint" -> Ok Naive_fixpoint
  | "set-reduction" | "reduction" -> Ok Set_reduction
  | "pushdown" | "push-down" -> Ok Pushdown
  | "pushdown-reduction" | "pushdown-red" -> Ok Pushdown_reduction
  | "semi-naive" | "seminaive" -> Ok Semi_naive
  | "auto" -> Ok Auto
  | s -> Error (Printf.sprintf "unknown strategy %S" s)

let all_strategies =
  [
    Brute_force; Naive_fixpoint; Set_reduction; Pushdown; Pushdown_reduction;
    Semi_naive;
  ]

(* ms * 1_000_000 overflowing into a negative, already-expired deadline
   is a validation error, not a 408; this rule must live in exactly one
   place (it used to be re-implemented per endpoint). *)
let deadline_of_ms ms =
  if ms < 0 then Error "deadline_ms must be non-negative"
  else if ms > max_int / 1_000_000 then Error "deadline_ms too large"
  else Ok (Deadline.after (ms * 1_000_000))

module Request = struct
  type t = {
    keywords : string list;
    filter : Filter.t;
    strategy : strategy;
    strict_leaf : bool;
    deadline : Deadline.t;
    cache : Join_cache.t option;
    trace : Trace.t;
    limit : int option;
    id : string;
  }

  let default =
    {
      keywords = [];
      filter = Filter.True;
      strategy = Auto;
      strict_leaf = false;
      deadline = Deadline.none;
      cache = None;
      trace = Trace.disabled;
      limit = None;
      id = "";
    }

  let with_keywords keywords t = { t with keywords }

  let with_filter filter t = { t with filter }

  let with_strategy strategy t = { t with strategy }

  let with_strict_leaf strict_leaf t = { t with strict_leaf }

  let with_deadline deadline t = { t with deadline }

  let with_cache cache t = { t with cache }

  let with_trace trace t = { t with trace }

  let with_limit limit t = { t with limit }

  let with_id id t = { t with id }

  let of_query (q : Query.t) =
    { default with keywords = q.Query.keywords; filter = q.Query.filter }

  let to_query t = Query.make ~filter:t.filter t.keywords

  (* --- the one JSON codec ---------------------------------------------- *)

  let ( let* ) = Result.bind

  let member_opt key decode what j =
    match Json.member key j with
    | None -> Ok None
    | Some v -> (
        match decode v with
        | Some x -> Ok (Some x)
        | None -> Error (Printf.sprintf "%S must be %s" key what))

  let keywords_of_json j =
    match Json.member "keywords" j with
    | None -> Error "missing \"keywords\""
    | Some v -> (
        match Json.to_list_opt v with
        | None -> Error "\"keywords\" must be an array"
        | Some l ->
            let rec go acc = function
              | [] -> Ok (List.rev acc)
              | k :: rest -> (
                  match Json.to_string_opt k with
                  | Some s when s <> "" -> go (s :: acc) rest
                  | _ -> Error "\"keywords\" must be non-empty strings")
            in
            go [] l)

  let filter_of_json j =
    let* from_string =
      match Json.member "filter" j with
      | None -> Ok Filter.True
      | Some v -> (
          match Json.to_string_opt v with
          | None -> Error "\"filter\" must be a string"
          | Some s -> (
              match Filter.of_string s with
              | Ok f -> Ok f
              | Error msg -> Error ("bad \"filter\": " ^ msg)))
    in
    let* from_bounds =
      match Json.member "filters" j with
      | None -> Ok Filter.True
      | Some bounds ->
          let bound key make acc =
            let* acc = acc in
            let* b = member_opt key Json.to_int_opt "an integer" bounds in
            Ok (match b with None -> acc | Some n -> make n :: acc)
          in
          let* terms =
            Ok []
            |> bound "max_size" (fun n -> Filter.Size_at_most n)
            |> bound "max_height" (fun n -> Filter.Height_at_most n)
            |> bound "max_width" (fun n -> Filter.Width_at_most n)
          in
          Ok (Filter.conjoin (List.rev terms))
    in
    (* [conjuncts] drops [True] terms, so absent fields contribute
       nothing and a lone filter decodes back to itself. *)
    Ok (Filter.conjoin (Filter.conjuncts from_bounds @ Filter.conjuncts from_string))

  let of_json ?default_deadline_ns j =
    let* keywords = keywords_of_json j in
    let* filter = filter_of_json j in
    (* Validate the keyword list the way evaluation will (normalization
       can empty it out), so a bad request fails here, with a message,
       not mid-evaluation. *)
    let* () =
      match Query.make ~filter keywords with
      | (_ : Query.t) -> Ok ()
      | exception Invalid_argument msg -> Error msg
    in
    let* strategy =
      let* s = member_opt "strategy" Json.to_string_opt "a string" j in
      match s with None -> Ok Auto | Some s -> strategy_of_string s
    in
    let* strict_leaf =
      let* b = member_opt "strict_leaf" Json.to_bool_opt "a boolean" j in
      Ok (Option.value ~default:false b)
    in
    let* deadline =
      let* ms = member_opt "deadline_ms" Json.to_int_opt "an integer" j in
      match ms with
      | Some ms -> deadline_of_ms ms
      | None -> (
          match default_deadline_ns with
          | Some ns -> Ok (Deadline.after ns)
          | None -> Ok Deadline.none)
    in
    let* limit =
      let* l = member_opt "limit" Json.to_int_opt "an integer" j in
      Ok
        (match l with
        | None -> Some 100
        | Some n when n <= 0 -> None
        | Some n -> Some n)
    in
    Ok
      {
        keywords;
        filter;
        strategy;
        strict_leaf;
        deadline;
        cache = None;
        trace = Trace.disabled;
        limit;
        id = "";
      }

  let of_body ?default_deadline_ns body =
    match Json.of_string body with
    | Error msg -> Error ("bad JSON body: " ^ msg)
    | Ok j -> of_json ?default_deadline_ns j

  let to_json t =
    let fields =
      [ ("keywords", Json.List (List.map (fun k -> Json.String k) t.keywords)) ]
    in
    let fields =
      if t.filter = Filter.True then fields
      else fields @ [ ("filter", Json.String (Filter.to_string t.filter)) ]
    in
    let fields =
      if t.strategy = Auto then fields
      else fields @ [ ("strategy", Json.String (strategy_name t.strategy)) ]
    in
    let fields =
      if t.strict_leaf then fields @ [ ("strict_leaf", Json.Bool true) ]
      else fields
    in
    let fields =
      if Deadline.is_none t.deadline then fields
      else
        let ms =
          (* Round up so a still-live deadline never serializes to an
             already-expired 0. *)
          (Deadline.remaining_ns t.deadline + 999_999) / 1_000_000
        in
        fields @ [ ("deadline_ms", Json.Int ms) ]
    in
    let fields =
      match t.limit with
      | None -> fields @ [ ("limit", Json.Int 0) ]
      | Some n -> fields @ [ ("limit", Json.Int n) ]
    in
    Json.Obj fields
end
