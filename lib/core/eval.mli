(** Query evaluation strategies (§4).

    All strategies compute the same answer set
    σ_P(F1 ⋈* F2 ⋈* … ⋈* Fm); they differ in how much work they do:

    - {!Brute_force} (§4.1): literal powerset join of the keyword node
      sets, then one final selection.  Exponential; refuses keyword sets
      larger than the powerset guard.
    - {!Naive_fixpoint} (§3.1.1): Theorem 2 with the dynamic-programming
      fixed point (convergence checked each round).
    - {!Set_reduction} (§4.2): Theorem 2 with Theorem 1's pre-computed
      round count |⊖(F)|.
    - {!Pushdown} (§4.3): additionally pushes the anti-monotonic part of
      the filter below every join, inside fixed-point rounds included
      (Theorem 3).  The non-anti-monotonic residual is applied in a final
      selection, so answers are unchanged.
    - {!Pushdown_reduction}: the full §4.3 pipeline — Theorem 3 pruning
      combined with Theorem 1's pre-computed round count on the pruned
      seeds (valid: pruned keyword seeds are still single-node sets).
    - {!Semi_naive}: Theorem 3 pruning with delta-iterated fixed points —
      each round joins only the previous round's discoveries against the
      seed (see {!Fixed_point.semi_naive}).
    - {!Auto}: the {!Optimizer}'s choice.

    When [strict_leaf_semantics] is set, answers are additionally
    filtered by Definition 8's leaf-occurrence requirement (see
    {!Query}). *)

type strategy = Exec.strategy =
  | Brute_force
  | Naive_fixpoint
  | Set_reduction
  | Pushdown
  | Pushdown_reduction
  | Semi_naive
  | Auto
(** Re-export of {!Exec.strategy} — the type lives with the request
    API; this equation keeps [Eval.Auto]-style code compiling. *)

type outcome = {
  answers : Frag_set.t;
  stats : Op_stats.t;
  strategy_used : strategy;  (** [Auto] resolved to a concrete strategy *)
  keyword_node_counts : (string * int) list;
      (** posting-list size per query keyword *)
  elapsed_ns : int;  (** wall-clock time of the whole evaluation *)
  phase_ns : (string * int) list;
      (** coarse wall-clock breakdown, in execution order: [scan]
          (posting-list lookups), [evaluate] (strategy choice, joins,
          fixed points, final selection) and, when requested,
          [strict-leaf].  Measured with a handful of clock reads, so it
          is present whether or not tracing is enabled. *)
}

val strategy_name : strategy -> string

val strategy_of_string : string -> (strategy, string) result
(** Recognizes [brute-force], [naive], [set-reduction], [pushdown],
    [pushdown-reduction], [semi-naive], [auto]. *)

val all_strategies : strategy list
(** The six concrete strategies (without [Auto]). *)

val exec : ?clock:Xfrag_obs.Clock.t -> Context.t -> Exec.Request.t -> outcome
(** Evaluate an {!Exec.Request.t} — the primary entry point; the CLI,
    the HTTP endpoints, and the sharded corpus engine all build one
    request value and land here.  A keyword with an empty posting list
    makes the answer empty (conjunctive semantics).  The request's
    [limit] is presentation-side and is {e not} applied here: [answers]
    is always the full set (the corpus engine and the endpoints
    truncate).

    [request.cache], when set, memoizes fragment joins across the whole
    evaluation (and across evaluations sharing the cache) — see
    {!Join_cache}.  Answers are unchanged; [stats] gains
    [cache_hits]/[cache_misses]/[cache_evictions] and [fragment_joins]
    counts only the joins actually computed.

    With an enabled [request.trace] (default
    {!Xfrag_obs.Trace.disabled}, which costs nothing), the evaluation is
    recorded as a span tree rooted at [query] — see {!Xfrag_obs.Export}.
    [clock] only affects the [elapsed_ns] / [phase_ns] measurements
    (injectable for deterministic tests).  [request.deadline] bounds the
    evaluation in wall-clock: every strategy's inner loops check it
    between whole fragment joins and abort with {!Deadline.Expired} once
    it passes — a shared cache is never left mid-update (see
    {!Deadline}).
    @raise Deadline.Expired once [request.deadline] passes.
    @raise Invalid_argument if the request has no usable keyword, or if
    [Brute_force] is asked to enumerate a keyword set above the
    exponential-enumeration guard. *)

val run :
  ?strategy:strategy ->
  ?strict_leaf_semantics:bool ->
  ?cache:Join_cache.t ->
  ?trace:Xfrag_obs.Trace.t ->
  ?clock:Xfrag_obs.Clock.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  Query.t ->
  outcome
(** @deprecated Thin wrapper kept for one release: builds an
    {!Exec.Request.t} from the optional arguments and calls {!exec}.
    New code should construct the request with the {!Exec.Request}
    builders instead.  Semantics are exactly {!exec}'s. *)

val answers :
  ?strategy:strategy ->
  ?strict_leaf_semantics:bool ->
  ?cache:Join_cache.t ->
  ?deadline:Deadline.t ->
  Context.t ->
  Query.t ->
  Frag_set.t
(** [run] without the accounting.
    @deprecated Same wrapper status as {!run}: prefer
    [(Eval.exec ctx request).answers]. *)
