module Int_sorted = Xfrag_util.Int_sorted
module Lca = Xfrag_doctree.Lca
module Trace = Xfrag_obs.Trace
module Json = Xfrag_obs.Json

let bump stats f = match stats with None -> () | Some s -> f s

let compute_fragment ?stats (ctx : Context.t) f1 f2 =
  (* Disarmed cost is one atomic load; armed, this site can abort or
     slow any join deep inside a fixed point — the engine above must
     contain it at the document boundary. *)
  Xfrag_fault.Fault.Failpoint.hit "eval.join";
  bump stats (fun s -> s.Op_stats.fragment_joins <- s.Op_stats.fragment_joins + 1);
  let r1 = Fragment.root f1 and r2 = Fragment.root f2 in
  if r1 = r2 then
    Fragment.of_sorted_unchecked (Int_sorted.union (Fragment.nodes f1) (Fragment.nodes f2))
  else begin
    let path = Lca.path ctx.lca r1 r2 in
    Fragment.of_sorted_unchecked
      (Int_sorted.union
         (Int_sorted.union (Fragment.nodes f1) (Fragment.nodes f2))
         (Int_sorted.of_list path))
  end

let fragment ?stats ?cache ctx f1 f2 =
  match cache with
  | None -> compute_fragment ?stats ctx f1 f2
  | Some cache ->
      Join_cache.find_or_join cache ?stats ctx f1 f2 ~join:(fun () ->
          compute_fragment ?stats ctx f1 f2)

let fragment_many ?stats ?cache ctx = function
  | [] -> invalid_arg "Join.fragment_many: empty list"
  | f :: rest -> List.fold_left (fragment ?stats ?cache ctx) f rest

(* Upper bound on builder pre-allocation.  The true output cardinality of
   a pairwise join is at most |s1|·|s2|, but that product explodes on
   large operands (two 100k-element keyword sets would ask for 10^10
   buckets up front) while actual outputs collapse heavily; beyond this
   bound we let the hashtable grow organically. *)
let max_size_hint = 1 lsl 20

let product_hint c1 c2 =
  if c1 = 0 || c2 = 0 then 0
  else if c1 > max_size_hint / c2 then max_size_hint
  else c1 * c2

let pairwise_loop ?stats ?cache ?(deadline = Deadline.none) ctx ~keep s1 s2 =
  let out =
    Frag_set.Builder.create
      ~size_hint:(product_hint (Frag_set.cardinal s1) (Frag_set.cardinal s2))
      ()
  in
  Frag_set.iter
    (fun f1 ->
      (* One check per outer row: between whole joins, never inside
         [find_or_join], so an abort cannot leave a shared cache
         mid-update.  The inner loop allocates at most |s2| fragments
         between checks. *)
      Deadline.check deadline;
      Frag_set.iter
        (fun f2 ->
          let f = fragment ?stats ?cache ctx f1 f2 in
          bump stats (fun s -> s.Op_stats.candidates <- s.Op_stats.candidates + 1);
          if keep f then begin
            if not (Frag_set.Builder.add out f) then
              bump stats (fun s -> s.Op_stats.duplicates <- s.Op_stats.duplicates + 1)
          end
          else bump stats (fun s -> s.Op_stats.pruned <- s.Op_stats.pruned + 1))
        s2)
    s1;
  Frag_set.Builder.freeze out

let pairwise_general ?stats ?cache ?(trace = Trace.disabled) ?deadline ctx ~keep
    s1 s2 =
  if not (Trace.is_enabled trace) then
    pairwise_loop ?stats ?cache ?deadline ctx ~keep s1 s2
  else
    Trace.with_span trace
      ~attrs:
        [
          ("left", Json.Int (Frag_set.cardinal s1));
          ("right", Json.Int (Frag_set.cardinal s2));
        ]
      "pairwise-join"
      (fun () ->
        let out = pairwise_loop ?stats ?cache ?deadline ctx ~keep s1 s2 in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        out)

let pairwise ?stats ?cache ?trace ?deadline ctx s1 s2 =
  pairwise_general ?stats ?cache ?trace ?deadline ctx ~keep:(fun _ -> true) s1 s2

let pairwise_filtered ?stats ?cache ?trace ?deadline ctx ~keep s1 s2 =
  pairwise_general ?stats ?cache ?trace ?deadline ctx ~keep s1 s2

let pairwise_parallel ?stats ?cache ?trace ?domains ?(keep = fun _ -> true) ctx s1 s2 =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> min 8 (Domain.recommended_domain_count ())
  in
  let elems = Array.of_list (Frag_set.elements s1) in
  let n = Array.length elems in
  if domains = 1 || n < 2 * domains then
    pairwise_general ?stats ?cache ?trace ctx ~keep s1 s2
  else begin
    (* One span in the spawning domain around the whole fan-out; workers
       do not touch the tracer (its open-span stack is per-tracer) and
       bypass the join cache (it is not domain-safe). *)
    let run () =
      let chunk = (n + domains - 1) / domains in
      let worker lo =
        Domain.spawn (fun () ->
            (* Per-domain counters; folded into [stats] after the join. *)
            let local = Op_stats.create () in
            let out =
              Frag_set.Builder.create
                ~size_hint:
                  (product_hint
                     (min chunk (max 0 (n - lo)))
                     (Frag_set.cardinal s2))
                ()
            in
            for i = lo to min (lo + chunk - 1) (n - 1) do
              Frag_set.iter
                (fun f2 ->
                  let f = compute_fragment ~stats:local ctx elems.(i) f2 in
                  local.Op_stats.candidates <- local.Op_stats.candidates + 1;
                  if keep f then begin
                    if not (Frag_set.Builder.add out f) then
                      local.Op_stats.duplicates <- local.Op_stats.duplicates + 1
                  end
                  else local.Op_stats.pruned <- local.Op_stats.pruned + 1)
                s2
            done;
            (Frag_set.Builder.freeze out, local))
      in
      let handles = List.init domains (fun d -> worker (d * chunk)) in
      let results = List.map Domain.join handles in
      let merged =
        List.fold_left
          (fun acc (set, _) -> Frag_set.union acc set)
          (Frag_set.empty ()) results
      in
      bump stats (fun s ->
          List.iter (fun (_, local) -> Op_stats.merge s local) results;
          (* Per-domain counters only see collisions within their own
             partition; fragments produced independently by two domains
             collapse in the union above.  Charging that difference to
             [duplicates] makes the parallel accounting identical to the
             serial one: per-domain collisions + cross-domain collapses
             = kept candidates − distinct results, exactly what the
             sequential loop counts. *)
          let kept_per_domain =
            List.fold_left (fun acc (set, _) -> acc + Frag_set.cardinal set) 0 results
          in
          s.Op_stats.duplicates <-
            s.Op_stats.duplicates + (kept_per_domain - Frag_set.cardinal merged));
      merged
    in
    match trace with
    | None -> run ()
    | Some trace when not (Trace.is_enabled trace) -> run ()
    | Some trace ->
        Trace.with_span trace
          ~attrs:
            [
              ("left", Json.Int (Frag_set.cardinal s1));
              ("right", Json.Int (Frag_set.cardinal s2));
              ("domains", Json.Int domains);
            ]
          "pairwise-join-parallel"
          (fun () ->
            let out = run () in
            Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
            out)
  end
