module Int_sorted = Xfrag_util.Int_sorted
module Lca = Xfrag_doctree.Lca
module Trace = Xfrag_obs.Trace
module Json = Xfrag_obs.Json

let bump stats f = match stats with None -> () | Some s -> f s

let fragment ?stats (ctx : Context.t) f1 f2 =
  bump stats (fun s -> s.Op_stats.fragment_joins <- s.Op_stats.fragment_joins + 1);
  let r1 = Fragment.root f1 and r2 = Fragment.root f2 in
  if r1 = r2 then
    Fragment.of_sorted_unchecked (Int_sorted.union (Fragment.nodes f1) (Fragment.nodes f2))
  else begin
    let path = Lca.path ctx.lca r1 r2 in
    Fragment.of_sorted_unchecked
      (Int_sorted.union
         (Int_sorted.union (Fragment.nodes f1) (Fragment.nodes f2))
         (Int_sorted.of_list path))
  end

let fragment_many ?stats ctx = function
  | [] -> invalid_arg "Join.fragment_many: empty list"
  | f :: rest -> List.fold_left (fragment ?stats ctx) f rest

let pairwise_loop ?stats ctx ~keep s1 s2 =
  let out =
    Frag_set.Builder.create ~size_hint:(Frag_set.cardinal s1 * Frag_set.cardinal s2) ()
  in
  Frag_set.iter
    (fun f1 ->
      Frag_set.iter
        (fun f2 ->
          let f = fragment ?stats ctx f1 f2 in
          bump stats (fun s -> s.Op_stats.candidates <- s.Op_stats.candidates + 1);
          if keep f then begin
            if not (Frag_set.Builder.add out f) then
              bump stats (fun s -> s.Op_stats.duplicates <- s.Op_stats.duplicates + 1)
          end
          else bump stats (fun s -> s.Op_stats.pruned <- s.Op_stats.pruned + 1))
        s2)
    s1;
  Frag_set.Builder.freeze out

let pairwise_general ?stats ?(trace = Trace.disabled) ctx ~keep s1 s2 =
  if not (Trace.is_enabled trace) then pairwise_loop ?stats ctx ~keep s1 s2
  else
    Trace.with_span trace
      ~attrs:
        [
          ("left", Json.Int (Frag_set.cardinal s1));
          ("right", Json.Int (Frag_set.cardinal s2));
        ]
      "pairwise-join"
      (fun () ->
        let out = pairwise_loop ?stats ctx ~keep s1 s2 in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        out)

let pairwise ?stats ?trace ctx s1 s2 =
  pairwise_general ?stats ?trace ctx ~keep:(fun _ -> true) s1 s2

let pairwise_filtered ?stats ?trace ctx ~keep s1 s2 =
  pairwise_general ?stats ?trace ctx ~keep s1 s2

let pairwise_parallel ?stats ?trace ?domains ?(keep = fun _ -> true) ctx s1 s2 =
  let domains =
    match domains with
    | Some d -> max 1 d
    | None -> min 8 (Domain.recommended_domain_count ())
  in
  let elems = Array.of_list (Frag_set.elements s1) in
  let n = Array.length elems in
  if domains = 1 || n < 2 * domains then pairwise_general ?stats ?trace ctx ~keep s1 s2
  else begin
    (* One span in the spawning domain around the whole fan-out; workers
       do not touch the tracer (its open-span stack is per-tracer). *)
    let run () =
      let chunk = (n + domains - 1) / domains in
      let worker lo =
        Domain.spawn (fun () ->
            (* Per-domain counters; folded into [stats] after the join. *)
            let local = Op_stats.create () in
            let out = Frag_set.Builder.create () in
            for i = lo to min (lo + chunk - 1) (n - 1) do
              Frag_set.iter
                (fun f2 ->
                  let f = fragment ~stats:local ctx elems.(i) f2 in
                  local.Op_stats.candidates <- local.Op_stats.candidates + 1;
                  if keep f then ignore (Frag_set.Builder.add out f)
                  else local.Op_stats.pruned <- local.Op_stats.pruned + 1)
                s2
            done;
            (Frag_set.Builder.freeze out, local))
      in
      let handles = List.init domains (fun d -> worker (d * chunk)) in
      let results = List.map Domain.join handles in
      bump stats (fun s ->
          List.iter (fun (_, local) -> Op_stats.merge s local) results);
      List.fold_left (fun acc (set, _) -> Frag_set.union acc set) Frag_set.empty results
    in
    match trace with
    | None -> run ()
    | Some trace when not (Trace.is_enabled trace) -> run ()
    | Some trace ->
        Trace.with_span trace
          ~attrs:
            [
              ("left", Json.Int (Frag_set.cardinal s1));
              ("right", Json.Int (Frag_set.cardinal s2));
              ("domains", Json.Int domains);
            ]
          "pairwise-join-parallel"
          (fun () ->
            let out = run () in
            Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
            out)
  end
