module Trace = Xfrag_obs.Trace
module Json = Xfrag_obs.Json

let select_impl ?stats ctx p set =
  match stats with
  | None -> Frag_set.filter (Filter.evaluate ctx p) set
  | Some s ->
      Frag_set.filter
        (fun f ->
          let ok = Filter.evaluate ctx p f in
          if not ok then s.Op_stats.filtered <- s.Op_stats.filtered + 1;
          ok)
        set

let select ?stats ?(trace = Trace.disabled) ctx p set =
  if not (Trace.is_enabled trace) then select_impl ?stats ctx p set
  else
    Trace.with_span trace
      ~attrs:
        [
          ("filter", Json.String (Format.asprintf "%a" Filter.pp p));
          ("in", Json.Int (Frag_set.cardinal set));
        ]
      "select"
      (fun () ->
        let out = select_impl ?stats ctx p set in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        out)

let keyword ?(trace = Trace.disabled) (ctx : Context.t) k =
  if not (Trace.is_enabled trace) then
    Frag_set.of_nodes (Xfrag_doctree.Inverted_index.lookup ctx.index k)
  else
    Trace.with_span trace
      ~attrs:[ ("keyword", Json.String k) ]
      "scan"
      (fun () ->
        let out = Frag_set.of_nodes (Xfrag_doctree.Inverted_index.lookup ctx.index k) in
        Trace.add_attr trace "out" (Json.Int (Frag_set.cardinal out));
        out)
