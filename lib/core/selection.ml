let select ?stats ctx p set =
  match stats with
  | None -> Frag_set.filter (Filter.evaluate ctx p) set
  | Some s ->
      Frag_set.filter
        (fun f ->
          let ok = Filter.evaluate ctx p f in
          if not ok then s.Op_stats.filtered <- s.Op_stats.filtered + 1;
          ok)
        set

let keyword (ctx : Context.t) k =
  Frag_set.of_nodes (Xfrag_doctree.Inverted_index.lookup ctx.index k)
