(** Plan-level query optimization (§5's sketch of an optimizer, made
    concrete).

    The optimizer enumerates the rewrites of the initial plan (Theorem 2
    transformation, Theorem 1 round counting, Theorem 3 push-down),
    prices each with the {!Cost} model, and returns the cheapest.  The
    reduction-factor gate of §5 is applied: [use_reduction] is only
    considered when the estimated RF of the keyword sets clears
    [rf_threshold]. *)

type choice = {
  plan : Plan.t;
  estimated_cost : float;
  alternatives : (Plan.t * float) list;  (** all candidates, sorted by cost *)
  reduction_factors : (string * float) list;
      (** measured RF per keyword set, when probing was affordable *)
}

val rf_threshold : float
(** Minimum reduction factor for the set-reduction rewrite to be
    considered profitable (the paper's [v], §5). *)

val optimize : Context.t -> Query.t -> choice

val explain : Context.t -> Query.t -> string
(** Human-readable report: initial plan, candidates with costs, the
    winner's evaluation tree. *)
