(** Shared pool of worker domains for sharded corpus execution.

    One pool serves every concurrent corpus query in the process: the
    server's request workers all submit their shard jobs here, so the
    number of live domains stays [domains + server workers] instead of
    [shards x in-flight queries].

    [map_all] uses a caller-helps discipline: each job carries an atomic
    claimed flag; the calling domain enqueues the jobs, runs what the
    workers have not claimed yet, and blocks only for jobs a worker is
    actively running.  A saturated (or zero-domain) pool therefore
    degrades to plain sequential execution in the caller — it can never
    deadlock, and [create ~domains:0] is a valid "sequential mode".

    {b Supervision}: every worker domain runs under a supervisor.  A
    worker dying (only a bug or the armed [shard.worker] failpoint can
    cause it — jobs are exception-proof claim-wrappers) is detected,
    logged to stderr, counted in the [worker_restarts] fault counter,
    and replaced by a fresh domain, up to [restart_cap] restarts over
    the pool's lifetime.  Past the cap the pool is marked {!degraded}
    (counted as [pool_degraded]) and keeps serving with fewer — possibly
    zero — domains: caller-helps makes a shrunken pool a slower pool,
    never a stuck one, and no in-flight [map_all] ever loses a task to
    a dying worker (the task's claim-wrapper is re-run by the caller). *)

type t

val create : ?domains:int -> ?restart_cap:int -> unit -> t
(** Spawn [domains] worker domains (default
    [min 7 (recommended_domain_count () - 1)], which is [0] on a
    single-core machine).  [domains:0] is allowed: [map_all] then runs
    everything in the caller.  [restart_cap] (default 8) bounds lifetime
    worker replacements — the restart-storm brake. *)

val default : unit -> t
(** The lazily created process-wide pool, shut down via [at_exit].
    Domain count comes from [XFRAG_SHARD_DOMAINS] when set to a
    non-negative integer, else the [create] default. *)

val domains : t -> int
(** Number of live worker domains (0 after [shutdown], and possibly
    lower than requested after unreplaced deaths). *)

val restarts : t -> int
(** Worker replacements performed so far. *)

val degraded : t -> bool
(** The restart cap was reached; dead workers are no longer replaced. *)

val parallelism : t -> int
(** [domains t + 1] — the workers plus the calling domain, which always
    helps. *)

val map_all : t -> (unit -> 'a) array -> ('a, exn) result array
(** Run every thunk, distributing across the pool's workers and the
    calling domain, and wait for all of them.  Result order matches
    input order.  A raising thunk yields [Error exn] in its slot and
    never disturbs its siblings.  Safe to call from multiple domains
    concurrently. *)

val shutdown : t -> unit
(** Stop and join the workers.  Subsequent [map_all] calls run entirely
    in the caller.  Idempotent. *)
