(** Shared pool of worker domains for sharded corpus execution.

    One pool serves every concurrent corpus query in the process: the
    server's request workers all submit their shard jobs here, so the
    number of live domains stays [domains + server workers] instead of
    [shards x in-flight queries].

    [map_all] uses a caller-helps discipline: each job carries an atomic
    claimed flag; the calling domain enqueues the jobs, runs what the
    workers have not claimed yet, and blocks only for jobs a worker is
    actively running.  A saturated (or zero-domain) pool therefore
    degrades to plain sequential execution in the caller — it can never
    deadlock, and [create ~domains:0] is a valid "sequential mode". *)

type t

val create : ?domains:int -> unit -> t
(** Spawn [domains] worker domains (default
    [min 7 (recommended_domain_count () - 1)], which is [0] on a
    single-core machine).  [domains:0] is allowed: [map_all] then runs
    everything in the caller. *)

val default : unit -> t
(** The lazily created process-wide pool, shut down via [at_exit].
    Domain count comes from [XFRAG_SHARD_DOMAINS] when set to a
    non-negative integer, else the [create] default. *)

val domains : t -> int
(** Number of worker domains (0 after [shutdown]). *)

val parallelism : t -> int
(** [domains t + 1] — the workers plus the calling domain, which always
    helps. *)

val map_all : t -> (unit -> 'a) array -> ('a, exn) result array
(** Run every thunk, distributing across the pool's workers and the
    calling domain, and wait for all of them.  Result order matches
    input order.  A raising thunk yields [Error exn] in its slot and
    never disturbs its siblings.  Safe to call from multiple domains
    concurrently. *)

val shutdown : t -> unit
(** Stop and join the workers.  Subsequent [map_all] calls run entirely
    in the caller.  Idempotent. *)
