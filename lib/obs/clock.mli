(** Nanosecond clocks for tracing and timing.

    A clock is a thunk returning nanoseconds from an arbitrary origin;
    only differences are meaningful.  {!monotonic} is the wall clock used
    in production; {!counter} is a deterministic fake for golden tests
    (every read advances by a fixed step, so rendered durations are
    reproducible). *)

type t = unit -> int
(** Nanoseconds since an unspecified origin. *)

val monotonic : t
(** Best wall clock available without extra dependencies
    ([Unix.gettimeofday], ~µs resolution).  Not strictly monotonic under
    NTP slew, but overhead is a few tens of ns per read, which is what
    the hot path needs. *)

val counter : ?start:int -> ?step:int -> unit -> t
(** [counter ~start ~step ()] returns [start], [start+step],
    [start+2*step], … on successive reads (defaults: 0, 1000).
    Deterministic; for tests. *)

val pp_ns : Format.formatter -> int -> unit
(** Human duration: [420ns], [12.5us], [3.14ms], [2.50s]. *)

val ns_to_string : int -> string
