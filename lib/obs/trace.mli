(** Hierarchical span tracer.

    A trace is a forest of spans: named intervals on a nanosecond clock
    with parent/child structure (the innermost open span is the parent
    of any span started inside it) and [key = value] attributes.

    The {!disabled} tracer is a zero-cost sink: {!with_span} on it calls
    its body directly — no allocation, no clock read — so every operator
    can accept a [?trace] argument defaulting to [disabled] without
    penalizing untraced runs.

    Span creation takes a mutex, so a tracer may be shared across
    domains; the open-span stack is global to the tracer, so only the
    spawning domain should open spans during a parallel section (the
    Domain-parallel join records one span around the whole fan-out). *)

type span = {
  id : int;  (** unique within the tracer, in start order from 0 *)
  parent : int;  (** parent span id, [-1] for roots *)
  name : string;
  start_ns : int;
  mutable stop_ns : int;  (** = [start_ns - 1] while still open *)
  mutable attrs : (string * Json.t) list;  (** in insertion order *)
}

type t

val disabled : t
(** The no-op tracer: every operation returns immediately. *)

val create : ?clock:Clock.t -> unit -> t
(** A live tracer (default clock {!Clock.monotonic}; pass
    {!Clock.counter} for deterministic tests). *)

val is_enabled : t -> bool

val with_span : t -> ?attrs:(string * Json.t) list -> string -> (unit -> 'a) -> 'a
(** [with_span t name f] opens a span, runs [f], closes the span (also
    on exception).  Spans started by [f] become children. *)

val add_attr : t -> string -> Json.t -> unit
(** Attach an attribute to the innermost open span (for values only
    known mid-span, e.g. output cardinality).  No-op when disabled or
    when no span is open. *)

val duration_ns : span -> int
(** Span duration; 0 for a span that never closed. *)

val spans : t -> span list
(** Completed and still-open spans, in start order. *)

val root_ns : t -> int
(** Total duration of root spans — the traced wall time. *)
