(* Request-id minting.  Ids must be unique within a process, cheap to
   mint from any domain, and deterministic under test: the process seed
   hashes pid + start time unless XFRAG_REQUEST_SEED pins it, and the
   per-request suffix is a process-wide atomic counter. *)

let seed =
  lazy
    (match Sys.getenv_opt "XFRAG_REQUEST_SEED" with
    | Some s when s <> "" -> s
    | _ ->
        let pid = Unix.getpid () in
        let t = Unix.gettimeofday () in
        Printf.sprintf "%08x"
          (Hashtbl.hash (pid, Int64.bits_of_float t) land 0xffffffff))

let counter = Atomic.make 0

let mint () =
  let n = Atomic.fetch_and_add counter 1 in
  Printf.sprintf "req-%s-%d" (Lazy.force seed) n

let max_len = 128

let valid id =
  let n = String.length id in
  n > 0 && n <= max_len
  && (let ok = ref true in
      String.iter
        (fun c ->
          match c with
          | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '.' | '_' | '-' -> ()
          | _ -> ok := false)
        id;
      !ok)

let accept_or_mint = function
  | Some id when valid id -> id
  | _ -> mint ()
