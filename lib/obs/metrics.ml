module Counter = struct
  type t = int Atomic.t

  let incr c = Atomic.incr c

  let add c k = ignore (Atomic.fetch_and_add c k)

  let value c = Atomic.get c
end

module Gauge = struct
  type t = float Atomic.t

  let set g v = Atomic.set g v

  let value g = Atomic.get g
end

module Histogram = struct
  (* Bucket i counts samples in (2^(i-1), 2^i]; bucket 0 counts v <= 1.
     64 buckets cover every int-expressible nanosecond duration.

     Server worker domains observe into shared histograms concurrently,
     so all mutation and every multi-field read goes through [lock]:
     a torn (counts, count, sum) triple would break the cumulative
     invariants the Prometheus exposition depends on. *)
  let n_buckets = 64

  type t = {
    counts : int array;
    mutable count : int;
    mutable sum : float;
    lock : Mutex.t;
  }

  let create () =
    { counts = Array.make n_buckets 0; count = 0; sum = 0.0; lock = Mutex.create () }

  let locked h f =
    Mutex.lock h.lock;
    Fun.protect ~finally:(fun () -> Mutex.unlock h.lock) f

  let bucket_of v =
    let rec go i ub = if v <= ub || i = n_buckets - 1 then i else go (i + 1) (ub *. 2.0) in
    go 0 1.0

  let upper_bound i = Float.pow 2.0 (float_of_int i)

  let lower_bound i = if i = 0 then 0.0 else upper_bound (i - 1)

  let observe h v =
    let v = Float.max 0.0 v in
    let i = bucket_of v in
    locked h (fun () ->
        h.counts.(i) <- h.counts.(i) + 1;
        h.count <- h.count + 1;
        h.sum <- h.sum +. v)

  let count h = locked h (fun () -> h.count)

  let sum h = locked h (fun () -> h.sum)

  let buckets h =
    locked h (fun () ->
        let out = ref [] in
        for i = n_buckets - 1 downto 0 do
          if h.counts.(i) > 0 then out := (upper_bound i, h.counts.(i)) :: !out
        done;
        !out)

  (* Quantile with within-bucket log-linear interpolation.  The target
     rank is q*count; the bucket holding it is located by cumulative
     counts, then the sample is assumed log-uniform across the bucket:
     value = lo * (hi/lo)^frac (linear for bucket 0, whose lower bound
     is 0).  q=1 still returns the top bucket's upper bound; every
     answer is <= the pre-interpolation estimate. *)
  let quantile h q =
    locked h (fun () ->
        if h.count = 0 then 0.0
        else begin
          let q = Float.min 1.0 (Float.max 0.0 q) in
          let target = q *. float_of_int h.count in
          let rec go i before =
            if i >= n_buckets then upper_bound (n_buckets - 1)
            else
              let n = h.counts.(i) in
              let seen = before + n in
              if n > 0 && float_of_int seen >= target then begin
                let frac = (target -. float_of_int before) /. float_of_int n in
                let frac = Float.min 1.0 (Float.max 0.0 frac) in
                let lo = lower_bound i and hi = upper_bound i in
                if i = 0 then lo +. (frac *. (hi -. lo))
                else lo *. Float.pow (hi /. lo) frac
              end
              else go (i + 1) seen
          in
          go 0 0
        end)
end

type instrument =
  | C of Counter.t
  | G of Gauge.t
  | H of Histogram.t

type t = { tbl : (string, instrument) Hashtbl.t; lock : Mutex.t }

let create () : t = { tbl = Hashtbl.create 32; lock = Mutex.create () }

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let describe = function C _ -> "counter" | G _ -> "gauge" | H _ -> "histogram"

let counter t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (C c) -> c
      | Some i ->
          invalid_arg
            (Printf.sprintf "Metrics.counter: %S is a %s" name (describe i))
      | None ->
          let c = Atomic.make 0 in
          Hashtbl.add t.tbl name (C c);
          c)

let gauge t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (G g) -> g
      | Some i ->
          invalid_arg (Printf.sprintf "Metrics.gauge: %S is a %s" name (describe i))
      | None ->
          let g = Atomic.make 0.0 in
          Hashtbl.add t.tbl name (G g);
          g)

let histogram t name =
  locked t (fun () ->
      match Hashtbl.find_opt t.tbl name with
      | Some (H h) -> h
      | Some i ->
          invalid_arg
            (Printf.sprintf "Metrics.histogram: %S is a %s" name (describe i))
      | None ->
          let h = Histogram.create () in
          Hashtbl.add t.tbl name (H h);
          h)

let add_assoc ?(prefix = "") t assoc =
  List.iter (fun (name, n) -> Counter.add (counter t (prefix ^ name)) n) assoc

let sync_assoc ?(prefix = "") t assoc =
  List.iter
    (fun (name, n) ->
      let c = counter t (prefix ^ name) in
      Counter.add c (n - Counter.value c))
    assoc

let sorted_bindings t =
  locked t (fun () -> Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.tbl [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let bindings t =
  List.map
    (fun (name, inst) ->
      ( name,
        match inst with
        | C c -> `Counter (Counter.value c)
        | G g -> `Gauge (Gauge.value g)
        | H h -> `Histogram (Histogram.buckets h, Histogram.count h, Histogram.sum h)
      ))
    (sorted_bindings t)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iteri
    (fun i (name, inst) ->
      if i > 0 then Format.fprintf ppf "@,";
      match inst with
      | C c -> Format.fprintf ppf "counter   %-32s %d" name (Counter.value c)
      | G g -> Format.fprintf ppf "gauge     %-32s %g" name (Gauge.value g)
      | H h ->
          Format.fprintf ppf "histogram %-32s count=%d sum=%.0f p50<=%.0f p99<=%.0f"
            name (Histogram.count h) (Histogram.sum h)
            (Float.ceil (Histogram.quantile h 0.5))
            (Float.ceil (Histogram.quantile h 0.99)))
    (sorted_bindings t);
  Format.fprintf ppf "@]"

let to_json t =
  let bindings = sorted_bindings t in
  let section f =
    List.filter_map (fun (name, inst) -> Option.map (fun j -> (name, j)) (f inst)) bindings
  in
  Json.Obj
    [
      ( "counters",
        Json.Obj
          (section (function C c -> Some (Json.Int (Counter.value c)) | _ -> None)) );
      ( "gauges",
        Json.Obj
          (section (function G g -> Some (Json.Float (Gauge.value g)) | _ -> None)) );
      ( "histograms",
        Json.Obj
          (section (function
            | H h ->
                Some
                  (Json.Obj
                     [
                       ("count", Json.Int (Histogram.count h));
                       ("sum", Json.Float (Histogram.sum h));
                       ( "buckets",
                         Json.List
                           (List.map
                              (fun (ub, n) -> Json.List [ Json.Float ub; Json.Int n ])
                              (Histogram.buckets h)) );
                     ])
            | _ -> None)) );
    ]
