type t = unit -> int

let monotonic () = int_of_float (Unix.gettimeofday () *. 1e9)

let counter ?(start = 0) ?(step = 1000) () =
  let now = ref (start - step) in
  fun () ->
    now := !now + step;
    !now

let ns_to_string ns =
  let f = float_of_int ns in
  if ns < 1_000 then Printf.sprintf "%dns" ns
  else if ns < 1_000_000 then Printf.sprintf "%.1fus" (f /. 1e3)
  else if ns < 1_000_000_000 then Printf.sprintf "%.2fms" (f /. 1e6)
  else Printf.sprintf "%.2fs" (f /. 1e9)

let pp_ns ppf ns = Format.pp_print_string ppf (ns_to_string ns)
