(** Prometheus text exposition (version 0.0.4) of a {!Metrics}
    registry — what a [GET /metrics] endpoint serves.

    Registry names map to Prometheus metric names by sanitizing every
    character outside [[a-zA-Z0-9_:]] to ['_'] (so ["query.elapsed_ns"]
    becomes [query_elapsed_ns]).  A registry name may carry a literal
    label block — e.g.
    ["server.requests{endpoint=\"/query\",status=\"200\"}"] — which is
    preserved verbatim, letting label-free {!Metrics} model labelled
    families; instruments sharing a base name are grouped under one
    [# TYPE] header.

    Histograms render in the standard cumulative form:
    [name_bucket{le="…"}] for each non-empty power-of-two bucket, the
    [le="+Inf"] bucket, then [name_sum] and [name_count]. *)

val escape_label_value : string -> string
(** Escape a label value per text format 0.0.4: exactly backslash,
    double quote and newline gain a backslash prefix (newline becomes
    backslash-n); every other byte passes through verbatim. *)

val render : ?namespace:string -> Metrics.t -> string
(** The whole registry, families sorted by name.  [namespace] (default
    none) prefixes every metric name as [namespace ^ "_"]. *)
