type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape_to buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  escape_to buf s;
  Buffer.contents buf

let add_float buf f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Buffer.add_string buf (Printf.sprintf "%.1f" f)
  else if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.17g" f)
  else Buffer.add_string buf "null"

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f -> add_float buf f
  | String s -> escape_to buf s
  | List xs ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char buf ',';
          to_buffer buf x)
        xs;
      Buffer.add_char buf ']'
  | Obj kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          escape_to buf k;
          Buffer.add_char buf ':';
          to_buffer buf v)
        kvs;
      Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

(* --- parser ------------------------------------------------------------ *)

exception Parse_fail of string

(* Recursion depth bound: a hostile body of 100k '[' characters must
   produce an [Error], not a stack overflow in a server worker. *)
let max_depth = 512

let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_fail (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    if !pos < n && s.[!pos] = c then advance ()
    else fail (Printf.sprintf "expected %C" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "expected %s" word)
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let digit c =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail "bad \\u escape"
    in
    let v =
      (digit s.[!pos] lsl 12) lor (digit s.[!pos + 1] lsl 8)
      lor (digit s.[!pos + 2] lsl 4) lor digit s.[!pos + 3]
    in
    pos := !pos + 4;
    v
  in
  (* Encode a code point as UTF-8; surrogate pairs are combined first. *)
  let add_utf8 buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else if cp < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      match s.[!pos] with
      | '"' -> advance (); Buffer.contents buf
      | '\\' ->
          advance ();
          if !pos >= n then fail "unterminated escape";
          (match s.[!pos] with
          | '"' -> Buffer.add_char buf '"'; advance ()
          | '\\' -> Buffer.add_char buf '\\'; advance ()
          | '/' -> Buffer.add_char buf '/'; advance ()
          | 'b' -> Buffer.add_char buf '\b'; advance ()
          | 'f' -> Buffer.add_char buf '\012'; advance ()
          | 'n' -> Buffer.add_char buf '\n'; advance ()
          | 'r' -> Buffer.add_char buf '\r'; advance ()
          | 't' -> Buffer.add_char buf '\t'; advance ()
          | 'u' ->
              advance ();
              let cp = hex4 () in
              let cp =
                if cp >= 0xD800 && cp <= 0xDBFF then begin
                  (* A high surrogate is only meaningful as the first
                     half of a \uXXXX\uXXXX pair. *)
                  if not (!pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u')
                  then fail "unpaired surrogate";
                  pos := !pos + 2;
                  let lo = hex4 () in
                  if lo >= 0xDC00 && lo <= 0xDFFF then
                    0x10000 + ((cp - 0xD800) lsl 10) + (lo - 0xDC00)
                  else fail "unpaired surrogate"
                end
                else if cp >= 0xDC00 && cp <= 0xDFFF then
                  fail "unpaired surrogate"
                else cp
              in
              add_utf8 buf cp
          | c -> fail (Printf.sprintf "bad escape \\%c" c));
          go ()
      | c when Char.code c < 0x20 -> fail "control character in string"
      | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    if peek () = Some '-' then advance ();
    let is_digit () =
      match peek () with Some ('0' .. '9') -> true | _ -> false
    in
    if not (is_digit ()) then fail "bad number";
    while is_digit () do advance () done;
    let is_float = ref false in
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      if not (is_digit ()) then fail "bad number";
      while is_digit () do advance () done
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        is_float := true;
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        if not (is_digit ()) then fail "bad number";
        while is_digit () do advance () done
    | _ -> ());
    let lit = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string lit)
    else
      match int_of_string_opt lit with
      | Some i -> Int i
      | None -> Float (float_of_string lit)
  in
  let rec parse_value depth =
    if depth > max_depth then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin advance (); List [] end
        else begin
          let rec items acc =
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); items (v :: acc)
            | Some ']' -> advance (); List (List.rev (v :: acc))
            | _ -> fail "expected ',' or ']'"
          in
          items []
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin advance (); Obj [] end
        else begin
          let rec members acc =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            skip_ws ();
            match peek () with
            | Some ',' -> advance (); members ((k, v) :: acc)
            | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
            | _ -> fail "expected ',' or '}'"
          in
          members []
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_fail msg -> Error msg

(* --- accessors --------------------------------------------------------- *)

let member key = function Obj kvs -> List.assoc_opt key kvs | _ -> None

let to_string_opt = function String s -> Some s | _ -> None

let to_int_opt = function
  | Int i -> Some i
  | Float f when Float.is_integer f && Float.abs f <= 2. ** 53. ->
      Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
