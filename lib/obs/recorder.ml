(* Always-on flight recorder: a striped ring buffer of wide events,
   one JSON-able record per request.

   Hot path (record): one atomic load to check enablement, one
   fetch-and-add on the global sequence, one fetch-and-add on the
   writing stripe's cursor, one pointer store into the slot array —
   no locks, no allocation beyond the event record itself.  Stripes
   are picked by domain id so concurrent writers rarely share a
   cursor cache line; a slot store is a single word write under the
   OCaml memory model, so readers never observe a torn event (they
   may observe a slightly stale ring, which is fine for debugging).
   Readers merge all stripes and sort by the global sequence. *)

type event = {
  seq : int;
  id : string;
  endpoint : string;
  strategy : string;
  shards : int;
  queue_ns : int;
  parse_ns : int;
  eval_ns : int;
  merge_ns : int;
  total_ns : int;
  hits : int;
  cache_hits : int;
  cache_misses : int;
  doc_errors : int;
  routed_out : int;
  bound_skips : int;
  status : int;
  outcome : string;
  site : string;
}

let n_stripes = 8

type stripe = { slots : event option array; cursor : int Atomic.t }

let default_capacity = 256

let env_capacity () =
  match Sys.getenv_opt "XFRAG_RECORDER" with
  | None | Some "" -> Some default_capacity
  | Some s -> (
      match String.lowercase_ascii s with
      | "0" | "off" | "false" -> None
      | s -> (
          match int_of_string_opt s with
          | Some n when n > 0 -> Some n
          | _ -> Some default_capacity))

let requested = env_capacity ()

let enabled_flag = Atomic.make (requested <> None)

(* Per-stripe capacity: total capacity split across stripes, >= 1. *)
let stripe_capacity =
  let cap = match requested with Some n -> n | None -> default_capacity in
  max 1 ((cap + n_stripes - 1) / n_stripes)

let stripes =
  Array.init n_stripes (fun _ ->
      { slots = Array.make stripe_capacity None; cursor = Atomic.make 0 })

let seq_counter = Atomic.make 0

let enabled () = Atomic.get enabled_flag

let set_enabled b = Atomic.set enabled_flag b

let capacity () = n_stripes * stripe_capacity

let clear () =
  Array.iter
    (fun s ->
      Array.fill s.slots 0 (Array.length s.slots) None;
      Atomic.set s.cursor 0)
    stripes;
  Atomic.set seq_counter 0

let record ?(endpoint = "") ?(strategy = "") ?(shards = 0) ?(queue_ns = 0)
    ?(parse_ns = 0) ?(eval_ns = 0) ?(merge_ns = 0) ?(total_ns = 0) ?(hits = 0)
    ?(cache_hits = 0) ?(cache_misses = 0) ?(doc_errors = 0) ?(routed_out = 0)
    ?(bound_skips = 0) ?(status = 0) ?(site = "") ~id ~outcome () =
  if Atomic.get enabled_flag then begin
    let seq = Atomic.fetch_and_add seq_counter 1 in
    let ev =
      {
        seq;
        id;
        endpoint;
        strategy;
        shards;
        queue_ns;
        parse_ns;
        eval_ns;
        merge_ns;
        total_ns;
        hits;
        cache_hits;
        cache_misses;
        doc_errors;
        routed_out;
        bound_skips;
        status;
        outcome;
        site;
      }
    in
    let s = stripes.((Domain.self () :> int) mod n_stripes) in
    let i = Atomic.fetch_and_add s.cursor 1 in
    s.slots.(i mod stripe_capacity) <- Some ev
  end

let events () =
  let out = ref [] in
  Array.iter
    (fun s ->
      Array.iter
        (function Some ev -> out := ev :: !out | None -> ())
        s.slots)
    stripes;
  List.sort (fun a b -> compare a.seq b.seq) !out

let last n =
  let evs = events () in
  let len = List.length evs in
  if len <= n then evs else List.filteri (fun i _ -> i >= len - n) evs

let find id =
  List.fold_left
    (fun acc ev -> if ev.id = id then Some ev else acc)
    None (events ())

let slow ~threshold_ns =
  List.filter (fun ev -> ev.total_ns >= threshold_ns) (events ())

let to_json ev =
  let base =
    [
      ("seq", Json.Int ev.seq);
      ("id", Json.String ev.id);
      ("endpoint", Json.String ev.endpoint);
      ("strategy", Json.String ev.strategy);
      ("shards", Json.Int ev.shards);
      ("queue_ns", Json.Int ev.queue_ns);
      ("parse_ns", Json.Int ev.parse_ns);
      ("eval_ns", Json.Int ev.eval_ns);
      ("merge_ns", Json.Int ev.merge_ns);
      ("total_ns", Json.Int ev.total_ns);
      ("hits", Json.Int ev.hits);
      ("cache_hits", Json.Int ev.cache_hits);
      ("cache_misses", Json.Int ev.cache_misses);
      ("doc_errors", Json.Int ev.doc_errors);
      ("status", Json.Int ev.status);
      ("outcome", Json.String ev.outcome);
    ]
  in
  (* Routing counters and [site] are omitted when trivial: most events
     have nothing to say about them, and the stable golden shape
     predates both. *)
  let base =
    if ev.routed_out = 0 && ev.bound_skips = 0 then base
    else
      base
      @ [
          ("routed_out", Json.Int ev.routed_out);
          ("bound_skips", Json.Int ev.bound_skips);
        ]
  in
  Json.Obj (if ev.site = "" then base else base @ [ ("site", Json.String ev.site) ])

let dump ?(reason = "") oc =
  let evs = events () in
  Printf.fprintf oc "xfrag: recorder dump%s (%d event%s)\n"
    (if reason = "" then "" else Printf.sprintf " [%s]" reason)
    (List.length evs)
    (if List.length evs = 1 then "" else "s");
  List.iter (fun ev -> Printf.fprintf oc "%s\n" (Json.to_string (to_json ev))) evs;
  flush oc
