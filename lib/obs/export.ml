let span_attrs_json (sp : Trace.span) = Json.Obj sp.attrs

(* --- human tree ---------------------------------------------------- *)

let pp_tree ppf trace =
  let spans = Trace.spans trace in
  let children =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (sp : Trace.span) ->
        Hashtbl.replace tbl sp.parent
          (sp :: (Option.value ~default:[] (Hashtbl.find_opt tbl sp.parent))))
      (List.rev spans);
    tbl
  in
  let kids id = Option.value ~default:[] (Hashtbl.find_opt children id) in
  let rec go indent (sp : Trace.span) =
    Format.fprintf ppf "%s%-*s %8s" indent
      (max 1 (36 - String.length indent))
      sp.name
      (Clock.ns_to_string (Trace.duration_ns sp));
    List.iter
      (fun (k, v) ->
        Format.fprintf ppf "  %s=%s" k
          (match v with Json.String s -> s | j -> Json.to_string j))
      sp.attrs;
    Format.fprintf ppf "@,";
    List.iter (go (indent ^ "  ")) (kids sp.id)
  in
  Format.fprintf ppf "@[<v>";
  List.iter (go "") (kids (-1));
  Format.fprintf ppf "@]"

(* --- JSON lines ---------------------------------------------------- *)

let span_json (sp : Trace.span) =
  Json.Obj
    [
      ("id", Json.Int sp.id);
      ("parent", if sp.parent < 0 then Json.Null else Json.Int sp.parent);
      ("name", Json.String sp.name);
      ("start_ns", Json.Int sp.start_ns);
      ("dur_ns", Json.Int (Trace.duration_ns sp));
      ("attrs", span_attrs_json sp);
    ]

let to_jsonl trace =
  let buf = Buffer.create 1024 in
  List.iter
    (fun sp ->
      Json.to_buffer buf (span_json sp);
      Buffer.add_char buf '\n')
    (Trace.spans trace);
  Buffer.contents buf

(* --- Chrome trace-event format ------------------------------------- *)

let chrome_event (sp : Trace.span) =
  Json.Obj
    [
      ("name", Json.String sp.name);
      ("cat", Json.String "xfrag");
      ("ph", Json.String "X");
      ("ts", Json.Float (float_of_int sp.start_ns /. 1e3));
      ("dur", Json.Float (float_of_int (Trace.duration_ns sp) /. 1e3));
      ("pid", Json.Int 1);
      ("tid", Json.Int 1);
      ("args", span_attrs_json sp);
    ]

let to_chrome trace =
  Json.to_string
    (Json.Obj
       [
         ("traceEvents", Json.List (List.map chrome_event (Trace.spans trace)));
         ("displayTimeUnit", Json.String "ns");
       ])

let write_file path contents =
  match open_out path with
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc contents);
      Ok ()
  | exception Sys_error msg -> Error msg
