(** Request-id minting and validation.

    Every request handled by the server or the CLI corpus path carries
    a request id: either the client's inbound [X-Request-Id] (when it
    passes {!valid}) or a freshly minted [req-<seed>-<n>].  The seed
    hashes pid + process start time — or honors [XFRAG_REQUEST_SEED]
    verbatim for deterministic tests — and [n] is a process-wide
    atomic counter, so minting is domain-safe and ids never collide
    within a process. *)

val mint : unit -> string
(** A fresh [req-<seed>-<n>] id. *)

val valid : string -> bool
(** Accept client-supplied ids only when 1–128 chars drawn from
    [[A-Za-z0-9._-]] — anything else (empty, oversized, spaces,
    control bytes, header-splitting attempts) is rejected and a fresh
    id minted instead. *)

val accept_or_mint : string option -> string
(** [accept_or_mint inbound] returns the inbound id when it's
    {!valid}, else {!mint}[ ()]. *)
