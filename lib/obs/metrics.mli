(** Named registry of counters, gauges, and latency histograms.

    A registry maps names to instruments; [counter]/[gauge]/[histogram]
    get-or-create, so call sites need no registration step.  The
    engine's hot-path accounting stays in [Op_stats] (a bare mutable
    record); {!add_assoc} snapshots such counters into the registry
    under a prefix for export.

    Every instrument is safe to mutate from multiple domains: counters
    and gauges are atomics, histograms guard their (buckets, count,
    sum) triple with a per-histogram mutex, and registry get-or-create
    is serialized — concurrent server worker domains never lose
    updates or expose torn snapshots. *)

module Counter : sig
  type t

  val incr : t -> unit

  val add : t -> int -> unit

  val value : t -> int
end

module Gauge : sig
  type t

  val set : t -> float -> unit

  val value : t -> float
end

module Histogram : sig
  (** Log-bucketed (powers of two) histogram for non-negative samples,
      e.g. latencies in nanoseconds.  A sample [v] lands in the bucket
      whose upper bound is the smallest power of two ≥ [v]. *)

  type t

  val observe : t -> float -> unit

  val count : t -> int

  val sum : t -> float

  val buckets : t -> (float * int) list
  (** Non-empty buckets as [(upper_bound, count)], ascending. *)

  val quantile : t -> float -> float
  (** [quantile h q] (0 ≤ q ≤ 1): estimate of the q-th sample using
      within-bucket log-linear interpolation — the target rank
      [q * count] is located by cumulative bucket counts and the value
      interpolated as [lo * (hi/lo)^frac] across that bucket's bounds
      (linearly for the first bucket, whose lower bound is 0).  Always
      ≤ the bucket's upper bound; [q = 1] returns it exactly.  0 when
      empty. *)
end

type t

val create : unit -> t

val counter : t -> string -> Counter.t

val gauge : t -> string -> Gauge.t

val histogram : t -> string -> Histogram.t

val add_assoc : ?prefix:string -> t -> (string * int) list -> unit
(** Add each [(name, n)] into counter [prefix ^ name]. *)

val sync_assoc : ?prefix:string -> t -> (string * int) list -> unit
(** Set counter [prefix ^ name] to exactly [n] for each [(name, n)] —
    the idempotent mirror for externally-owned monotonic counters
    (cache stats, fault counters) snapshotted into the registry at
    scrape time.  Unlike {!add_assoc}, repeated calls don't double
    count. *)

val bindings :
  t ->
  (string
  * [ `Counter of int
    | `Gauge of float
    | `Histogram of (float * int) list * int * float ])
  list
(** Value snapshot of every instrument, sorted by name; histograms as
    [(buckets, count, sum)].  Exporters ({!Prometheus}) build on this. *)

val pp : Format.formatter -> t -> unit
(** Human-readable dump, sorted by name. *)

val to_json : t -> Json.t
(** [{"counters":{…},"gauges":{…},"histograms":{name:{"count":…,
    "sum":…,"buckets":[[ub,n],…]}}}] with each section sorted. *)
