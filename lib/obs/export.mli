(** Trace exporters.

    Three views of the same span forest:
    - {!pp_tree}: human-readable indented tree (durations + attributes);
    - {!to_jsonl}: one JSON object per span per line, machine-greppable;
    - {!to_chrome}: Chrome trace-event format — load the file in
      [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. *)

val pp_tree : Format.formatter -> Trace.t -> unit

val to_jsonl : Trace.t -> string
(** Per span: [{"id":…,"parent":id|null,"name":…,"start_ns":…,
    "dur_ns":…,"attrs":{…}}], one per line, start order, trailing
    newline. *)

val to_chrome : Trace.t -> string
(** A single JSON object [{"traceEvents":[…],"displayTimeUnit":"ns"}].
    Each span becomes a complete ("ph":"X") event with microsecond
    [ts]/[dur] (fractional µs keep ns resolution) and its attributes
    under ["args"]. *)

val write_file : string -> string -> (unit, string) result
(** [write_file path contents] — convenience used by the CLI. *)
