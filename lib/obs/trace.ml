type span = {
  id : int;
  parent : int;
  name : string;
  start_ns : int;
  mutable stop_ns : int;
  mutable attrs : (string * Json.t) list;
}

type state = {
  clock : Clock.t;
  mutable next_id : int;
  mutable spans : span list;  (* reverse start order *)
  mutable open_stack : span list;  (* innermost first *)
  mutex : Mutex.t;
}

type t = Disabled | Enabled of state

let disabled = Disabled

let create ?(clock = Clock.monotonic) () =
  Enabled
    {
      clock;
      next_id = 0;
      spans = [];
      open_stack = [];
      mutex = Mutex.create ();
    }

let is_enabled = function Disabled -> false | Enabled _ -> true

let locked st f =
  Mutex.lock st.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock st.mutex) f

let open_span st attrs name =
  locked st (fun () ->
      let parent = match st.open_stack with [] -> -1 | s :: _ -> s.id in
      let start_ns = st.clock () in
      let sp =
        { id = st.next_id; parent; name; start_ns; stop_ns = start_ns - 1; attrs }
      in
      st.next_id <- st.next_id + 1;
      st.spans <- sp :: st.spans;
      st.open_stack <- sp :: st.open_stack;
      sp)

let close_span st sp =
  locked st (fun () ->
      sp.stop_ns <- st.clock ();
      (* Pop up to and including [sp]; tolerates a body that leaked an
         open child (it closes with its parent). *)
      let rec pop = function
        | [] -> []
        | s :: rest -> if s.id = sp.id then rest else pop rest
      in
      st.open_stack <- pop st.open_stack)

let with_span t ?(attrs = []) name f =
  match t with
  | Disabled -> f ()
  | Enabled st ->
      let sp = open_span st attrs name in
      Fun.protect ~finally:(fun () -> close_span st sp) f

let add_attr t key value =
  match t with
  | Disabled -> ()
  | Enabled st ->
      locked st (fun () ->
          match st.open_stack with
          | [] -> ()
          | sp :: _ -> sp.attrs <- sp.attrs @ [ (key, value) ])

let duration_ns sp = max 0 (sp.stop_ns - sp.start_ns)

let spans = function
  | Disabled -> []
  | Enabled st -> locked st (fun () -> List.rev st.spans)

let root_ns t =
  List.fold_left
    (fun acc sp -> if sp.parent = -1 then acc + duration_ns sp else acc)
    0 (spans t)
