(** Always-on flight recorder: a fixed-size striped ring buffer of
    {e wide events} — one JSON-able record per request, overwritten
    oldest-first, readable after the fact without any pre-arming.

    The write path is lock-free: an atomic enablement check, a
    fetch-and-add on the global sequence, a fetch-and-add on the
    writing stripe's cursor (stripes are picked by domain id so
    concurrent server workers rarely contend), and a single word
    store of the event pointer — readers can never observe a torn
    event, only a slightly stale ring.  Readers merge every stripe
    and order by the global sequence.

    Capacity and enablement come from [XFRAG_RECORDER] at process
    start: unset → enabled with the default capacity (256); a positive
    integer → enabled with that capacity; ["0"]/["off"]/["false"] →
    disabled, making {!record} a single atomic load.  {!set_enabled}
    flips the switch at runtime (benchmarks measure both sides). *)

type event = {
  seq : int;  (** global insertion order, process-wide *)
  id : string;  (** request id ({!Reqid}) *)
  endpoint : string;  (** e.g. ["/query"], ["/corpus/query"], ["cli.corpus"] *)
  strategy : string;
  shards : int;
  queue_ns : int;  (** admission-queue wait before a worker picked it up *)
  parse_ns : int;  (** request-body decode *)
  eval_ns : int;  (** algebra evaluation (or whole corpus run) *)
  merge_ns : int;  (** shard k-way merge *)
  total_ns : int;
  hits : int;
  cache_hits : int;  (** join-cache hit delta attributed to this request *)
  cache_misses : int;
  doc_errors : int;  (** quarantined per-document failures (corpus runs) *)
  routed_out : int;
      (** documents excluded by posting-list routing (corpus runs) *)
  bound_skips : int;
      (** documents skipped by top-k score-bound termination (corpus runs) *)
  status : int;  (** HTTP status, 0 for CLI *)
  outcome : string;
      (** ["ok"], ["client_error"], ["deadline"], ["fault"], ["error"],
          ["shed"] *)
  site : string;  (** failpoint site when [outcome = "fault"], else [""] *)
}

val enabled : unit -> bool

val set_enabled : bool -> unit

val capacity : unit -> int
(** Total slots across stripes (≥ the configured capacity). *)

val record :
  ?endpoint:string ->
  ?strategy:string ->
  ?shards:int ->
  ?queue_ns:int ->
  ?parse_ns:int ->
  ?eval_ns:int ->
  ?merge_ns:int ->
  ?total_ns:int ->
  ?hits:int ->
  ?cache_hits:int ->
  ?cache_misses:int ->
  ?doc_errors:int ->
  ?routed_out:int ->
  ?bound_skips:int ->
  ?status:int ->
  ?site:string ->
  id:string ->
  outcome:string ->
  unit ->
  unit
(** Append one wide event; a no-op when disabled. *)

val events : unit -> event list
(** Every retained event, oldest first. *)

val last : int -> event list
(** The newest [n] events, oldest first. *)

val find : string -> event option
(** Newest event whose [id] matches. *)

val slow : threshold_ns:int -> event list
(** Retained events with [total_ns ≥ threshold_ns], oldest first. *)

val to_json : event -> Json.t
(** One flat object; [site] omitted when empty, the routing counters
    omitted when both are zero. *)

val dump : ?reason:string -> out_channel -> unit
(** Human-triggered dump (SIGQUIT, pool degradation): a header line
    then one JSON line per event, flushed. *)

val clear : unit -> unit
(** Drop every retained event and reset sequence — tests only. *)
