(* Prometheus text format 0.0.4.  The registry is label-free, so label
   blocks ride inside registry names ("name{k=\"v\"}"): the part before
   '{' is sanitized into the metric name, the block is kept verbatim. *)

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* A metric name must not start with a digit. *)
let metric_name base =
  let base = sanitize base in
  if base = "" then "_"
  else match base.[0] with '0' .. '9' -> "_" ^ base | _ -> base

let split_labels name =
  match String.index_opt name '{' with
  | None -> (name, None)
  | Some i ->
      let base = String.sub name 0 i in
      let rest = String.sub name i (String.length name - i) in
      (* Keep the block only if it closes; otherwise sanitize it away. *)
      if String.length rest >= 2 && rest.[String.length rest - 1] = '}' then
        (base, Some (String.sub rest 1 (String.length rest - 2)))
      else (name, None)

let number f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else if Float.is_finite f then Printf.sprintf "%.17g" f
  else if f > 0.0 then "+Inf"
  else if f < 0.0 then "-Inf"
  else "NaN"

let with_labels name = function
  | None | Some "" -> name
  | Some labels -> Printf.sprintf "%s{%s}" name labels

(* Text-format 0.0.4 escapes exactly backslash, double-quote and
   newline inside label values — OCaml's %S would additionally emit
   decimal \ddd escapes Prometheus parsers reject. *)
let escape_label_value v =
  let buf = Buffer.create (String.length v + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

(* [labels] plus one more [k="v"] pair. *)
let add_label labels k v =
  let pair = Printf.sprintf "%s=\"%s\"" k (escape_label_value v) in
  match labels with
  | None | Some "" -> Some pair
  | Some l -> Some (l ^ "," ^ pair)

let render ?namespace registry =
  let buf = Buffer.create 1024 in
  let prefix = match namespace with None -> "" | Some ns -> sanitize ns ^ "_" in
  let last_family = ref "" in
  let type_header family kind =
    if family <> !last_family then begin
      Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" family kind);
      last_family := family
    end
  in
  List.iter
    (fun (name, value) ->
      let base, labels = split_labels name in
      let family = prefix ^ metric_name base in
      match value with
      | `Counter v ->
          type_header family "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" (with_labels family labels) v)
      | `Gauge v ->
          type_header family "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_labels family labels) (number v))
      | `Histogram (buckets, count, sum) ->
          type_header family "histogram";
          let cumulative = ref 0 in
          List.iter
            (fun (ub, n) ->
              cumulative := !cumulative + n;
              Buffer.add_string buf
                (Printf.sprintf "%s %d\n"
                   (with_labels (family ^ "_bucket")
                      (add_label labels "le" (number ub)))
                   !cumulative))
            buckets;
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n"
               (with_labels (family ^ "_bucket") (add_label labels "le" "+Inf"))
               count);
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" (with_labels (family ^ "_sum") labels)
               (number sum));
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" (with_labels (family ^ "_count") labels)
               count))
    (Metrics.bindings registry);
  Buffer.contents buf
