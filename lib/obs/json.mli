(** Minimal JSON emitter (no parser, no external dependency).

    Used by the trace/metrics exporters and the bench harness.  Strings
    are escaped per RFC 8259; floats print with enough digits to
    round-trip; non-finite floats degrade to [null]. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val escape_string : string -> string
(** The quoted, escaped JSON literal for a string. *)
