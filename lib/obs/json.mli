(** Minimal JSON emitter and parser (no external dependency).

    Used by the trace/metrics exporters, the bench harness, and the
    HTTP server's request bodies.  Strings are escaped per RFC 8259;
    floats print with enough digits to round-trip; non-finite floats
    degrade to [null].  The parser is strict RFC 8259 with a recursion
    bound, so hostile inputs yield [Error], never an exception. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val to_buffer : Buffer.t -> t -> unit

val to_string : t -> string
(** Compact (single-line) rendering. *)

val escape_string : string -> string
(** The quoted, escaped JSON literal for a string. *)

val of_string : string -> (t, string) result
(** Parse one JSON document.  Numeric literals without a fraction or
    exponent that fit in an OCaml [int] parse as [Int], everything else
    as [Float]; [\u] escapes (including surrogate pairs) decode to
    UTF-8.  Rejects trailing garbage and nesting deeper than 512 levels;
    never raises. *)

(** {2 Accessors} — shape-tolerant helpers for picking a request body
    apart; each returns [None] on a type mismatch. *)

val member : string -> t -> t option
(** Object field lookup; [None] for non-objects and absent keys. *)

val to_string_opt : t -> string option

val to_int_opt : t -> int option
(** [Int], or a [Float] with integral value (JSON has one number type). *)

val to_bool_opt : t -> bool option

val to_list_opt : t -> t list option
