(** Event-based (SAX-style) XML processing.

    For pipelines that don't need a DOM — statistics, indexing, filtering
    — events avoid materializing the tree.  The event stream for a
    well-formed document is:

    [Start_element] / [End_element] properly nested around [Text],
    [Comment], and [Pi] events; prolog PIs arrive before the root's
    [Start_element].

    The same well-formedness rules as {!Xml_parser} apply (it shares the
    grammar); [fold] raises {!Xml_error.Parse_error} on malformed
    input. *)

type event =
  | Start_element of { name : string; attributes : (string * string) list }
  | End_element of string
  | Text of string  (** merged runs of character data and CDATA *)
  | Comment of string
  | Pi of { target : string; content : string }

val fold : ('a -> event -> 'a) -> 'a -> string -> 'a
(** Left fold over the event stream of a document.
    @raise Xml_error.Parse_error on malformed input. *)

val iter : (event -> unit) -> string -> unit

val events : string -> event list
(** The whole stream, materialized (mostly for tests). *)

val count_elements : string -> int
(** Elements in the document, without building a DOM. *)

val to_dom : string -> Xml_dom.document
(** Rebuild a DOM from the event stream — exercised by tests to confirm
    the two parsers agree. *)
