module S = Xml_source

type options = { keep_comments : bool; keep_pis : bool }

let default_options = { keep_comments = false; keep_pis = false }

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c
  || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let parse_name src =
  match S.peek src with
  | Some c when is_name_start c ->
      S.advance src;
      let rest = S.take_while src is_name_char in
      String.make 1 c ^ rest
  | Some c -> S.error src (Printf.sprintf "invalid name start character %C" c)
  | None -> S.error src "unexpected end of input while reading a name"

(* Reference ::= '&' (Name | '#' digits | '#x' hexdigits) ';' *)
let parse_reference src =
  S.expect src '&';
  let body =
    S.take_while src (fun c -> c <> ';' && c <> '<' && c <> '&' && c <> '\n')
  in
  S.expect src ';';
  if body = "" then S.error src "empty entity reference"
  else if body.[0] = '#' then
    match Xml_entities.decode_char_ref body with
    | Some s -> s
    | None -> S.error src (Printf.sprintf "malformed character reference &%s;" body)
  else
    match Xml_entities.decode_named body with
    | Some s -> s
    | None -> S.error src (Printf.sprintf "unknown entity &%s;" body)

let parse_attribute_value src =
  let quote =
    match S.next src with
    | ('"' | '\'') as q -> q
    | c -> S.error src (Printf.sprintf "expected quoted attribute value, found %C" c)
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match S.peek src with
    | None -> S.error src "unterminated attribute value"
    | Some c when c = quote -> S.advance src
    | Some '<' -> S.error src "'<' is not allowed in attribute values"
    | Some '&' ->
        Buffer.add_string buf (parse_reference src);
        go ()
    | Some c ->
        S.advance src;
        (* Attribute-value normalization: whitespace becomes a space. *)
        Buffer.add_char buf (match c with '\t' | '\r' | '\n' -> ' ' | c -> c);
        go ()
  in
  go ();
  Buffer.contents buf

let parse_attributes src =
  let rec go acc =
    S.skip_whitespace src;
    match S.peek src with
    | Some c when is_name_start c ->
        let name = parse_name src in
        S.skip_whitespace src;
        S.expect src '=';
        S.skip_whitespace src;
        let value = parse_attribute_value src in
        if List.mem_assoc name acc then
          S.error src (Printf.sprintf "duplicate attribute %S" name)
        else go ((name, value) :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_comment src =
  S.expect_string src "<!--";
  let buf = Buffer.create 32 in
  let rec go () =
    if S.looking_at src "-->" then S.expect_string src "-->"
    else if S.looking_at src "--" then S.error src "'--' is not allowed inside a comment"
    else
      match S.peek src with
      | None -> S.error src "unterminated comment"
      | Some c ->
          S.advance src;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Buffer.contents buf

let parse_pi src =
  S.expect_string src "<?";
  let target = parse_name src in
  if String.lowercase_ascii target = "xml" then
    S.error src "reserved processing instruction target 'xml'";
  S.skip_whitespace src;
  let buf = Buffer.create 16 in
  let rec go () =
    if S.looking_at src "?>" then S.expect_string src "?>"
    else
      match S.peek src with
      | None -> S.error src "unterminated processing instruction"
      | Some c ->
          S.advance src;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  (target, Buffer.contents buf)

let parse_cdata src =
  S.expect_string src "<![CDATA[";
  let buf = Buffer.create 32 in
  let rec go () =
    if S.looking_at src "]]>" then S.expect_string src "]]>"
    else
      match S.peek src with
      | None -> S.error src "unterminated CDATA section"
      | Some c ->
          S.advance src;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Buffer.contents buf

(* Skip '<!DOCTYPE … >', including a bracketed internal subset. *)
let parse_doctype src =
  S.expect_string src "<!DOCTYPE";
  let depth = ref 0 and finished = ref false in
  while not !finished do
    match S.peek src with
    | None -> S.error src "unterminated DOCTYPE declaration"
    | Some '[' ->
        S.advance src;
        incr depth
    | Some ']' ->
        S.advance src;
        decr depth
    | Some '>' when !depth = 0 ->
        S.advance src;
        finished := true
    | Some ('"' | '\'') ->
        let q = S.next src in
        let rec skip () =
          match S.next src with c when c = q -> () | _ -> skip ()
        in
        skip ()
    | Some _ -> S.advance src
  done

let parse_xml_decl src =
  if S.looking_at src "<?xml" then begin
    (* Only valid if followed by whitespace (otherwise it is a PI whose
       target merely starts with "xml", which is reserved anyway). *)
    S.expect_string src "<?xml";
    let rec go () =
      if S.looking_at src "?>" then S.expect_string src "?>"
      else
        match S.peek src with
        | None -> S.error src "unterminated XML declaration"
        | Some _ ->
            S.advance src;
            go ()
    in
    go ()
  end

let rec parse_element options src =
  S.expect src '<';
  let name = parse_name src in
  let attributes = parse_attributes src in
  S.skip_whitespace src;
  match S.peek src with
  | Some '/' ->
      S.expect_string src "/>";
      { Xml_dom.name; attributes; children = [] }
  | Some '>' ->
      S.advance src;
      let children = parse_content options src in
      S.expect_string src "</";
      let close = parse_name src in
      if close <> name then
        S.error src (Printf.sprintf "mismatched end tag </%s>, expected </%s>" close name);
      S.skip_whitespace src;
      S.expect src '>';
      { Xml_dom.name; attributes; children }
  | Some c -> S.error src (Printf.sprintf "expected '>' or '/>', found %C" c)
  | None -> S.error src "unexpected end of input inside a start tag"

and parse_content options src =
  let items = ref [] in
  let text_buf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      items := Xml_dom.Text (Buffer.contents text_buf) :: !items;
      Buffer.clear text_buf
    end
  in
  let rec go () =
    match S.peek src with
    | None -> S.error src "unexpected end of input inside element content"
    | Some '<' ->
        if S.looking_at src "</" then flush_text ()
        else if S.looking_at src "<!--" then begin
          flush_text ();
          let c = parse_comment src in
          if options.keep_comments then items := Xml_dom.Comment c :: !items;
          go ()
        end
        else if S.looking_at src "<![CDATA[" then begin
          Buffer.add_string text_buf (parse_cdata src);
          go ()
        end
        else if S.looking_at src "<?" then begin
          flush_text ();
          let target, content = parse_pi src in
          if options.keep_pis then items := Xml_dom.Pi { target; content } :: !items;
          go ()
        end
        else begin
          flush_text ();
          let e = parse_element options src in
          items := Xml_dom.Element e :: !items;
          go ()
        end
    | Some '&' ->
        Buffer.add_string text_buf (parse_reference src);
        go ()
    | Some c ->
        S.advance src;
        Buffer.add_char text_buf c;
        go ()
  in
  go ();
  List.rev !items

let parse_prolog src =
  parse_xml_decl src;
  let pis = ref [] in
  let rec go () =
    S.skip_whitespace src;
    if S.looking_at src "<!--" then begin
      ignore (parse_comment src);
      go ()
    end
    else if S.looking_at src "<!DOCTYPE" then begin
      parse_doctype src;
      go ()
    end
    else if S.looking_at src "<?" then begin
      let pi = parse_pi src in
      pis := pi :: !pis;
      go ()
    end
  in
  go ();
  List.rev !pis

let parse_epilog src =
  let rec go () =
    S.skip_whitespace src;
    if S.looking_at src "<!--" then begin
      ignore (parse_comment src);
      go ()
    end
    else if S.looking_at src "<?" then begin
      ignore (parse_pi src);
      go ()
    end
    else if not (S.eof src) then S.error src "content after the root element"
  in
  go ()

let parse_string ?(options = default_options) data =
  let src = S.of_string data in
  let prolog_pis = parse_prolog src in
  (match S.peek src with
  | Some '<' -> ()
  | Some c -> S.error src (Printf.sprintf "expected root element, found %C" c)
  | None -> S.error src "document has no root element");
  let root = parse_element options src in
  parse_epilog src;
  { Xml_dom.root; prolog_pis }

let parse_string_result ?options data =
  match parse_string ?options data with
  | doc -> Ok doc
  | exception Xml_error.Parse_error e -> Error e

let parse_file ?options path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  parse_string ?options data
