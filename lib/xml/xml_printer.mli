(** Serialization of DOM trees back to XML text. *)

val to_string : ?decl:bool -> Xml_dom.document -> string
(** Compact serialization.  [decl] (default true) emits the
    [<?xml version="1.0"?>] declaration. *)

val to_string_pretty : ?decl:bool -> ?indent:int -> Xml_dom.document -> string
(** Indented serialization for human consumption.  Text nodes are emitted
    verbatim (no re-wrapping), so pretty-printing is not round-trip safe
    for mixed content; use {!to_string} when fidelity matters. *)

val node_to_string : Xml_dom.node -> string
(** Compact serialization of a single node. *)
