type step = {
  axis : [ `Child | `Descendant ];
  name : string option;
  index : int option;
  attribute : (string * string option) option;
}

let parse_predicate body =
  (* body is the text inside [...] *)
  if body = "" then Error "empty predicate"
  else if body.[0] = '@' then begin
    let body = String.sub body 1 (String.length body - 1) in
    match String.index_opt body '=' with
    | None ->
        if body = "" then Error "empty attribute name"
        else Ok (`Attr (body, None))
    | Some i ->
        let name = String.sub body 0 i in
        let value = String.sub body (i + 1) (String.length body - i - 1) in
        let n = String.length value in
        if n >= 2 && value.[0] = '\'' && value.[n - 1] = '\'' then
          Ok (`Attr (name, Some (String.sub value 1 (n - 2))))
        else Error (Printf.sprintf "attribute value must be quoted in [%s]" body)
  end
  else
    match int_of_string_opt body with
    | Some k when k >= 1 -> Ok (`Index k)
    | Some _ -> Error "positional predicate must be >= 1"
    | None -> Error (Printf.sprintf "cannot parse predicate [%s]" body)

let parse_step axis text =
  (* text is e.g. "par", "*", "sec[2]", "sec[@id='x']" *)
  let name_part, preds =
    match String.index_opt text '[' with
    | None -> (text, [])
    | Some i ->
        let name = String.sub text 0 i in
        let rest = String.sub text i (String.length text - i) in
        (* split balanced [..] groups *)
        let preds = ref [] in
        let j = ref 0 in
        let n = String.length rest in
        let ok = ref true in
        while !ok && !j < n do
          if rest.[!j] <> '[' then ok := false
          else begin
            match String.index_from_opt rest !j ']' with
            | None -> ok := false
            | Some close ->
                preds := String.sub rest (!j + 1) (close - !j - 1) :: !preds;
                j := close + 1
          end
        done;
        if !ok && !j = n then (name, List.rev !preds) else (text, [ "\x00bad" ])
  in
  if List.mem "\x00bad" preds then Error (Printf.sprintf "malformed predicates in %S" text)
  else if name_part = "" then Error "empty step name"
  else begin
    let name = if name_part = "*" then None else Some name_part in
    let rec fold acc = function
      | [] -> Ok acc
      | p :: rest -> (
          match parse_predicate p with
          | Error e -> Error e
          | Ok (`Index k) ->
              if acc.index <> None then Error "duplicate positional predicate"
              else fold { acc with index = Some k } rest
          | Ok (`Attr (a, v)) ->
              if acc.attribute <> None then Error "duplicate attribute predicate"
              else fold { acc with attribute = Some (a, v) } rest)
    in
    fold { axis; name; index = None; attribute = None } preds
  end

let parse path =
  let path = String.trim path in
  if path = "" then Error "empty path"
  else begin
    (* Tokenize on '/' keeping '//' markers: split and interpret empty
       segments between separators as descendant axis flags. *)
    let segments = String.split_on_char '/' path in
    (* A leading '/' yields an initial empty segment; '//x' yields two. *)
    let rec go axis acc = function
      | [] -> Ok (List.rev acc)
      | "" :: rest -> go `Descendant acc rest
      | seg :: rest -> (
          match parse_step axis seg with
          | Error e -> Error e
          | Ok step -> go `Child (step :: acc) rest)
    in
    let segments, first_axis =
      match segments with
      | "" :: "" :: rest -> (rest, `Descendant)  (* starts with // *)
      | "" :: rest -> (rest, `Child)  (* starts with / *)
      | rest -> (rest, `Descendant)
      (* a bare name selects anywhere, XPath-'//'-like; documented *)
    in
    match segments with
    | [] -> Error "empty path"
    | seg :: rest -> (
        match parse_step first_axis seg with
        | Error e -> Error e
        | Ok step -> go `Child [ step ] rest)
  end

let attr_matches (e : Xml_dom.element) = function
  | None -> true
  | Some (name, expected) -> (
      match Xml_dom.attribute e name with
      | None -> false
      | Some v -> ( match expected with None -> true | Some want -> String.equal v want))

let name_matches (e : Xml_dom.element) = function
  | None -> true
  | Some n -> String.equal e.Xml_dom.name n

let rec descendants_or_self (e : Xml_dom.element) =
  e :: List.concat_map descendants_or_self (Xml_dom.child_elements e)

(* Candidates for one step from a single context element. *)
let step_candidates step (context : Xml_dom.element) =
  let pool =
    match step.axis with
    | `Child -> Xml_dom.child_elements context
    | `Descendant -> List.concat_map descendants_or_self (Xml_dom.child_elements context)
  in
  let filtered =
    List.filter
      (fun e -> name_matches e step.name && attr_matches e step.attribute)
      pool
  in
  match step.index with
  | None -> filtered
  | Some k -> ( match List.nth_opt filtered (k - 1) with Some e -> [ e ] | None -> [])

let dedup_in_order elems =
  (* Physical identity is the right notion here: the same element value
     reached twice via different descendant paths is one match. *)
  let seen = ref [] in
  List.filter
    (fun e ->
      if List.memq e !seen then false
      else begin
        seen := e :: !seen;
        true
      end)
    elems

let select_steps (doc : Xml_dom.document) steps =
  match steps with
  | [] -> []
  | first :: rest ->
      (* The first step matches against the root: child axis means "the
         root itself", descendant axis means "any element". *)
      let initial =
        let pool =
          match first.axis with
          | `Child -> [ doc.Xml_dom.root ]
          | `Descendant -> descendants_or_self doc.Xml_dom.root
        in
        let filtered =
          List.filter
            (fun e -> name_matches e first.name && attr_matches e first.attribute)
            pool
        in
        match first.index with
        | None -> filtered
        | Some k -> ( match List.nth_opt filtered (k - 1) with Some e -> [ e ] | None -> [])
      in
      List.fold_left
        (fun contexts step ->
          dedup_in_order (List.concat_map (step_candidates step) contexts))
        initial rest

let select doc path =
  match parse path with Error e -> Error e | Ok steps -> Ok (select_steps doc steps)

let select_first doc path =
  match select doc path with
  | Error e -> Error e
  | Ok [] -> Ok None
  | Ok (e :: _) -> Ok (Some e)

let matches_count doc path =
  match select doc path with Error e -> Error e | Ok l -> Ok (List.length l)
