(** A small XPath-like selector language over DOM trees.

    Supported syntax (a practical subset — enough to address document
    components in examples, tests, and tooling):

    - [/a/b/c] — child steps from the root;
    - [//par] — descendant-or-self step ([//] may appear at any depth:
      [/article//par], [//sec//title]);
    - [*] — any element name;
    - [name\[k\]] — k-th match of the step, 1-based ([/a/b\[2\]]);
    - [name\[@attr='value'\]] — attribute equality predicate;
    - [name\[@attr\]] — attribute presence predicate.

    A leading [/] is optional; paths are resolved against the document
    root, and the first step must match the root itself when the path
    starts with a single [/] (as in XPath, [/article] selects the root
    only if it is named [article]). *)

type step = {
  axis : [ `Child | `Descendant ];
  name : string option;  (** [None] = [*] *)
  index : int option;  (** 1-based positional predicate *)
  attribute : (string * string option) option;
      (** attribute presence / equality predicate *)
}

val parse : string -> (step list, string) result

val select : Xml_dom.document -> string -> (Xml_dom.element list, string) result
(** All elements matched by the path, in document order, without
    duplicates. *)

val select_first : Xml_dom.document -> string -> (Xml_dom.element option, string) result

val matches_count : Xml_dom.document -> string -> (int, string) result
