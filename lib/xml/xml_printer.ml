let add_attrs buf attributes =
  List.iter
    (fun (k, v) ->
      Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_string buf "=\"";
      Buffer.add_string buf (Xml_entities.escape_attribute v);
      Buffer.add_char buf '"')
    attributes

let rec add_node buf (node : Xml_dom.node) =
  match node with
  | Text s -> Buffer.add_string buf (Xml_entities.escape_text s)
  | Comment c ->
      Buffer.add_string buf "<!--";
      Buffer.add_string buf c;
      Buffer.add_string buf "-->"
  | Pi { target; content } ->
      Buffer.add_string buf "<?";
      Buffer.add_string buf target;
      if content <> "" then begin
        Buffer.add_char buf ' ';
        Buffer.add_string buf content
      end;
      Buffer.add_string buf "?>"
  | Element e -> add_element buf e

and add_element buf (e : Xml_dom.element) =
  Buffer.add_char buf '<';
  Buffer.add_string buf e.name;
  add_attrs buf e.attributes;
  if e.children = [] then Buffer.add_string buf "/>"
  else begin
    Buffer.add_char buf '>';
    List.iter (add_node buf) e.children;
    Buffer.add_string buf "</";
    Buffer.add_string buf e.name;
    Buffer.add_char buf '>'
  end

let node_to_string node =
  let buf = Buffer.create 256 in
  add_node buf node;
  Buffer.contents buf

let to_string ?(decl = true) (doc : Xml_dom.document) =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  List.iter
    (fun (target, content) ->
      Buffer.add_string buf ("<?" ^ target ^ " " ^ content ^ "?>\n"))
    doc.prolog_pis;
  add_element buf doc.root;
  Buffer.contents buf

let rec add_pretty buf indent level (node : Xml_dom.node) =
  let pad () = Buffer.add_string buf (String.make (indent * level) ' ') in
  match node with
  | Text s ->
      let s = String.trim s in
      if s <> "" then begin
        pad ();
        Buffer.add_string buf (Xml_entities.escape_text s);
        Buffer.add_char buf '\n'
      end
  | Comment c ->
      pad ();
      Buffer.add_string buf ("<!--" ^ c ^ "-->\n")
  | Pi { target; content } ->
      pad ();
      Buffer.add_string buf ("<?" ^ target ^ " " ^ content ^ "?>\n")
  | Element e ->
      pad ();
      Buffer.add_char buf '<';
      Buffer.add_string buf e.name;
      add_attrs buf e.attributes;
      let only_text =
        List.for_all
          (function Xml_dom.Text _ -> true | Element _ | Comment _ | Pi _ -> false)
          e.children
      in
      if e.children = [] then Buffer.add_string buf "/>\n"
      else if only_text then begin
        Buffer.add_char buf '>';
        List.iter
          (function
            | Xml_dom.Text s -> Buffer.add_string buf (Xml_entities.escape_text s)
            | Element _ | Comment _ | Pi _ -> ())
          e.children;
        Buffer.add_string buf ("</" ^ e.name ^ ">\n")
      end
      else begin
        Buffer.add_string buf ">\n";
        List.iter (add_pretty buf indent (level + 1)) e.children;
        pad ();
        Buffer.add_string buf ("</" ^ e.name ^ ">\n")
      end

let to_string_pretty ?(decl = true) ?(indent = 2) (doc : Xml_dom.document) =
  let buf = Buffer.create 1024 in
  if decl then Buffer.add_string buf "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n";
  add_pretty buf indent 0 (Element doc.root);
  Buffer.contents buf
