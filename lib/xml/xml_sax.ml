module S = Xml_source

type event =
  | Start_element of { name : string; attributes : (string * string) list }
  | End_element of string
  | Text of string
  | Comment of string
  | Pi of { target : string; content : string }

(* The tokenizer pieces live in Xml_parser; to keep a single grammar we
   re-run its element parser in a callback-driven mode.  Rather than
   duplicate the lexical layer, we walk the source with the same helper
   functions re-exposed here in terms of Xml_source.  The code mirrors
   Xml_parser deliberately; both are covered by the agreement test. *)

let is_name_start = function
  | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
  | c -> Char.code c >= 0x80

let is_name_char c =
  is_name_start c || match c with '0' .. '9' | '-' | '.' -> true | _ -> false

let parse_name src =
  match S.peek src with
  | Some c when is_name_start c ->
      S.advance src;
      String.make 1 c ^ S.take_while src is_name_char
  | Some c -> S.error src (Printf.sprintf "invalid name start character %C" c)
  | None -> S.error src "unexpected end of input while reading a name"

let parse_reference src =
  S.expect src '&';
  let body = S.take_while src (fun c -> c <> ';' && c <> '<' && c <> '&' && c <> '\n') in
  S.expect src ';';
  if body = "" then S.error src "empty entity reference"
  else if body.[0] = '#' then
    match Xml_entities.decode_char_ref body with
    | Some s -> s
    | None -> S.error src (Printf.sprintf "malformed character reference &%s;" body)
  else
    match Xml_entities.decode_named body with
    | Some s -> s
    | None -> S.error src (Printf.sprintf "unknown entity &%s;" body)

let parse_attribute_value src =
  let quote =
    match S.next src with
    | ('"' | '\'') as q -> q
    | c -> S.error src (Printf.sprintf "expected quoted attribute value, found %C" c)
  in
  let buf = Buffer.create 16 in
  let rec go () =
    match S.peek src with
    | None -> S.error src "unterminated attribute value"
    | Some c when c = quote -> S.advance src
    | Some '<' -> S.error src "'<' is not allowed in attribute values"
    | Some '&' ->
        Buffer.add_string buf (parse_reference src);
        go ()
    | Some c ->
        S.advance src;
        Buffer.add_char buf (match c with '\t' | '\r' | '\n' -> ' ' | c -> c);
        go ()
  in
  go ();
  Buffer.contents buf

let parse_attributes src =
  let rec go acc =
    S.skip_whitespace src;
    match S.peek src with
    | Some c when is_name_start c ->
        let name = parse_name src in
        S.skip_whitespace src;
        S.expect src '=';
        S.skip_whitespace src;
        let value = parse_attribute_value src in
        if List.mem_assoc name acc then
          S.error src (Printf.sprintf "duplicate attribute %S" name)
        else go ((name, value) :: acc)
    | _ -> List.rev acc
  in
  go []

let parse_comment src =
  S.expect_string src "<!--";
  let buf = Buffer.create 32 in
  let rec go () =
    if S.looking_at src "-->" then S.expect_string src "-->"
    else if S.looking_at src "--" then S.error src "'--' is not allowed inside a comment"
    else
      match S.peek src with
      | None -> S.error src "unterminated comment"
      | Some c ->
          S.advance src;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Buffer.contents buf

let parse_pi src =
  S.expect_string src "<?";
  let target = parse_name src in
  if String.lowercase_ascii target = "xml" then
    S.error src "reserved processing instruction target 'xml'";
  S.skip_whitespace src;
  let buf = Buffer.create 16 in
  let rec go () =
    if S.looking_at src "?>" then S.expect_string src "?>"
    else
      match S.peek src with
      | None -> S.error src "unterminated processing instruction"
      | Some c ->
          S.advance src;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  (target, Buffer.contents buf)

let parse_cdata src =
  S.expect_string src "<![CDATA[";
  let buf = Buffer.create 32 in
  let rec go () =
    if S.looking_at src "]]>" then S.expect_string src "]]>"
    else
      match S.peek src with
      | None -> S.error src "unterminated CDATA section"
      | Some c ->
          S.advance src;
          Buffer.add_char buf c;
          go ()
  in
  go ();
  Buffer.contents buf

let parse_doctype src =
  S.expect_string src "<!DOCTYPE";
  let depth = ref 0 and finished = ref false in
  while not !finished do
    match S.peek src with
    | None -> S.error src "unterminated DOCTYPE declaration"
    | Some '[' ->
        S.advance src;
        incr depth
    | Some ']' ->
        S.advance src;
        decr depth
    | Some '>' when !depth = 0 ->
        S.advance src;
        finished := true
    | Some ('"' | '\'') ->
        let q = S.next src in
        let rec skip () = match S.next src with c when c = q -> () | _ -> skip () in
        skip ()
    | Some _ -> S.advance src
  done

let parse_xml_decl src =
  if S.looking_at src "<?xml" then begin
    S.expect_string src "<?xml";
    let rec go () =
      if S.looking_at src "?>" then S.expect_string src "?>"
      else
        match S.peek src with
        | None -> S.error src "unterminated XML declaration"
        | Some _ ->
            S.advance src;
            go ()
    in
    go ()
  end

let fold f init data =
  let src = S.of_string data in
  let acc = ref init in
  let emit ev = acc := f !acc ev in
  (* prolog *)
  parse_xml_decl src;
  let rec prolog () =
    S.skip_whitespace src;
    if S.looking_at src "<!--" then begin
      emit (Comment (parse_comment src));
      prolog ()
    end
    else if S.looking_at src "<!DOCTYPE" then begin
      parse_doctype src;
      prolog ()
    end
    else if S.looking_at src "<?" then begin
      let target, content = parse_pi src in
      emit (Pi { target; content });
      prolog ()
    end
  in
  prolog ();
  (match S.peek src with
  | Some '<' -> ()
  | Some c -> S.error src (Printf.sprintf "expected root element, found %C" c)
  | None -> S.error src "document has no root element");
  (* element events, driven by an explicit open-tag stack *)
  let stack = ref [] in
  let text_buf = Buffer.create 64 in
  let flush_text () =
    if Buffer.length text_buf > 0 then begin
      emit (Text (Buffer.contents text_buf));
      Buffer.clear text_buf
    end
  in
  let open_element () =
    S.expect src '<';
    let name = parse_name src in
    let attributes = parse_attributes src in
    S.skip_whitespace src;
    match S.peek src with
    | Some '/' ->
        S.expect_string src "/>";
        emit (Start_element { name; attributes });
        emit (End_element name)
    | Some '>' ->
        S.advance src;
        emit (Start_element { name; attributes });
        stack := name :: !stack
    | Some c -> S.error src (Printf.sprintf "expected '>' or '/>', found %C" c)
    | None -> S.error src "unexpected end of input inside a start tag"
  in
  open_element ();
  while !stack <> [] do
    match S.peek src with
    | None -> S.error src "unexpected end of input inside element content"
    | Some '<' ->
        if S.looking_at src "</" then begin
          flush_text ();
          S.expect_string src "</";
          let close = parse_name src in
          (match !stack with
          | top :: rest when top = close ->
              S.skip_whitespace src;
              S.expect src '>';
              emit (End_element close);
              stack := rest
          | top :: _ ->
              S.error src
                (Printf.sprintf "mismatched end tag </%s>, expected </%s>" close top)
          | [] -> assert false)
        end
        else if S.looking_at src "<!--" then begin
          flush_text ();
          emit (Comment (parse_comment src))
        end
        else if S.looking_at src "<![CDATA[" then
          Buffer.add_string text_buf (parse_cdata src)
        else if S.looking_at src "<?" then begin
          flush_text ();
          let target, content = parse_pi src in
          emit (Pi { target; content })
        end
        else begin
          flush_text ();
          open_element ()
        end
    | Some '&' -> Buffer.add_string text_buf (parse_reference src)
    | Some c ->
        S.advance src;
        Buffer.add_char text_buf c
  done;
  (* epilog *)
  let rec epilog () =
    S.skip_whitespace src;
    if S.looking_at src "<!--" then begin
      emit (Comment (parse_comment src));
      epilog ()
    end
    else if S.looking_at src "<?" then begin
      let target, content = parse_pi src in
      emit (Pi { target; content });
      epilog ()
    end
    else if not (S.eof src) then S.error src "content after the root element"
  in
  epilog ();
  !acc

let iter f data = fold (fun () ev -> f ev) () data

let events data = List.rev (fold (fun acc ev -> ev :: acc) [] data)

let count_elements data =
  fold (fun n ev -> match ev with Start_element _ -> n + 1 | _ -> n) 0 data

let to_dom data =
  (* Stack of (name, attributes, reversed children). *)
  let prolog_pis = ref [] in
  let result = ref None in
  let stack = ref [] in
  let add_node node =
    match !stack with
    | (name, attrs, kids) :: rest -> stack := (name, attrs, node :: kids) :: rest
    | [] -> ()
  in
  iter
    (fun ev ->
      match ev with
      | Start_element { name; attributes } -> stack := (name, attributes, []) :: !stack
      | End_element _ -> (
          match !stack with
          | (name, attributes, kids) :: rest ->
              let e =
                { Xml_dom.name; attributes; children = List.rev kids }
              in
              stack := rest;
              if rest = [] then result := Some e else add_node (Xml_dom.Element e)
          | [] -> ())
      | Text s -> add_node (Xml_dom.Text s)
      | Comment c -> add_node (Xml_dom.Comment c)
      | Pi { target; content } ->
          if !stack = [] && !result = None then
            prolog_pis := (target, content) :: !prolog_pis
          else add_node (Xml_dom.Pi { target; content }))
    data;
  match !result with
  | Some root -> { Xml_dom.root; prolog_pis = List.rev !prolog_pis }
  | None -> Xml_error.raise_error { line = 0; column = 0; offset = 0 } "no root element"
