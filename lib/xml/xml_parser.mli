(** Recursive-descent XML 1.0 parser.

    Supported: prolog ([<?xml …?>]), comments, processing instructions,
    CDATA sections, a DOCTYPE declaration (skipped, including an internal
    subset), the five predefined entities, decimal and hexadecimal
    character references, single- and double-quoted attributes, and
    well-formedness checks (matching end tags, unique attributes, a
    single root element, no markup after the root).

    Not supported (out of scope for document retrieval): external DTDs,
    custom entity definitions, namespace resolution (prefixes are kept
    verbatim in names). *)

type options = {
  keep_comments : bool;  (** retain [Comment] nodes (default false) *)
  keep_pis : bool;  (** retain in-document [Pi] nodes (default false) *)
}

val default_options : options

val parse_string : ?options:options -> string -> Xml_dom.document
(** @raise Xml_error.Parse_error on malformed input. *)

val parse_string_result :
  ?options:options -> string -> (Xml_dom.document, Xml_error.t) result

val parse_file : ?options:options -> string -> Xml_dom.document
(** Read a whole file and parse it.
    @raise Sys_error if the file cannot be read.
    @raise Xml_error.Parse_error on malformed input. *)
