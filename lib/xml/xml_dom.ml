type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; content : string }

and element = {
  name : string;
  attributes : (string * string) list;
  children : node list;
}

type document = { root : element; prolog_pis : (string * string) list }

let element ?(attributes = []) name children =
  Element { name; attributes; children }

let text s = Text s

let document root = { root; prolog_pis = [] }

let name e = e.name

let attribute e k = List.assoc_opt k e.attributes

let children e = e.children

let child_elements e =
  List.filter_map (function Element e -> Some e | Text _ | Comment _ | Pi _ -> None) e.children

let rec add_text buf e =
  List.iter
    (function
      | Text s -> Buffer.add_string buf s
      | Element e -> add_text buf e
      | Comment _ | Pi _ -> ())
    e.children

let text_content e =
  let buf = Buffer.create 64 in
  add_text buf e;
  Buffer.contents buf

let immediate_text e =
  let buf = Buffer.create 64 in
  List.iter
    (function Text s -> Buffer.add_string buf s | Element _ | Comment _ | Pi _ -> ())
    e.children;
  Buffer.contents buf

let rec descendant_count e =
  List.fold_left
    (fun acc n ->
      match n with
      | Element e -> acc + descendant_count e
      | Text _ | Comment _ | Pi _ -> acc)
    1 e.children

let rec find_first p e =
  if p e then Some e
  else
    List.fold_left
      (fun acc n ->
        match (acc, n) with
        | (Some _ as found), _ -> found
        | None, Element e -> find_first p e
        | None, (Text _ | Comment _ | Pi _) -> None)
      None e.children

let rec fold_elements f acc e =
  let acc = f acc e in
  List.fold_left
    (fun acc n ->
      match n with
      | Element e -> fold_elements f acc e
      | Text _ | Comment _ | Pi _ -> acc)
    acc e.children

let rec equal_node a b =
  match (a, b) with
  | Text s, Text s' -> String.equal s s'
  | Comment s, Comment s' -> String.equal s s'
  | Pi { target; content }, Pi { target = t'; content = c' } ->
      String.equal target t' && String.equal content c'
  | Element e, Element e' ->
      String.equal e.name e'.name
      && e.attributes = e'.attributes
      && List.length e.children = List.length e'.children
      && List.for_all2 equal_node e.children e'.children
  | (Text _ | Comment _ | Pi _ | Element _), _ -> false
