(** In-memory XML document trees.

    The DOM is deliberately simple: elements with attributes and ordered
    children, text, comments, and processing instructions.  Namespace
    prefixes are kept verbatim in names — document-centric retrieval
    treats tag names as opaque labels (paper, §1). *)

type node =
  | Element of element
  | Text of string
  | Comment of string
  | Pi of { target : string; content : string }

and element = {
  name : string;
  attributes : (string * string) list;  (** in document order *)
  children : node list;  (** in document order *)
}

type document = {
  root : element;
  prolog_pis : (string * string) list;
      (** processing instructions appearing before the root element *)
}

val element : ?attributes:(string * string) list -> string -> node list -> node
(** Convenience constructor. *)

val text : string -> node

val document : element -> document
(** Wrap a root element with an empty prolog. *)

val name : element -> string

val attribute : element -> string -> string option
(** First attribute with the given name, if any. *)

val children : element -> node list

val child_elements : element -> element list
(** Element children only, in order. *)

val text_content : element -> string
(** Concatenation of all descendant text, in document order. *)

val immediate_text : element -> string
(** Concatenation of the element's direct text children only. *)

val descendant_count : element -> int
(** Number of element nodes in the subtree rooted here (inclusive). *)

val find_first : (element -> bool) -> element -> element option
(** Pre-order search. *)

val fold_elements : ('a -> element -> 'a) -> 'a -> element -> 'a
(** Pre-order fold over all element nodes (inclusive). *)

val equal_node : node -> node -> bool
(** Structural equality. *)
