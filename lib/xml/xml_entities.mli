(** Decoding and encoding of XML entity and character references. *)

val predefined : (string * string) list
(** The five predefined XML entities: [amp], [lt], [gt], [apos], [quot]. *)

val decode_named : string -> string option
(** [decode_named "amp"] is [Some "&"]; unknown names give [None]. *)

val decode_char_ref : string -> string option
(** [decode_char_ref body] decodes the body of a character reference —
    ["#38"] or ["#x26"] — to its UTF-8 encoding.  [None] if malformed or
    outside the Unicode scalar range. *)

val escape_text : string -> string
(** Escape [&], [<], [>] for element content. *)

val escape_attribute : string -> string
(** Escape ampersand, angle brackets, and both quote characters for
    attribute values. *)

val utf8_of_code_point : int -> string option
(** UTF-8 bytes for a Unicode scalar value; [None] if out of range or a
    surrogate. *)
