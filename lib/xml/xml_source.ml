type t = {
  data : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let of_string data = { data; pos = 0; line = 1; col = 1 }

let position t : Xml_error.position = { line = t.line; column = t.col; offset = t.pos }

let eof t = t.pos >= String.length t.data

let peek t = if eof t then None else Some t.data.[t.pos]

let peek2 t =
  if t.pos + 1 >= String.length t.data then None else Some t.data.[t.pos + 1]

let advance t =
  if not (eof t) then begin
    (if t.data.[t.pos] = '\n' then begin
       t.line <- t.line + 1;
       t.col <- 1
     end
     else t.col <- t.col + 1);
    t.pos <- t.pos + 1
  end

let error t msg = Xml_error.raise_error (position t) msg

let next t =
  match peek t with
  | None -> error t "unexpected end of input"
  | Some c ->
      advance t;
      c

let expect t c =
  let got = next t in
  if got <> c then error t (Printf.sprintf "expected %C, found %C" c got)

let looking_at t s =
  let n = String.length s in
  t.pos + n <= String.length t.data
  &&
  let rec go i = i >= n || (t.data.[t.pos + i] = s.[i] && go (i + 1)) in
  go 0

let expect_string t s =
  if looking_at t s then String.iter (fun _ -> advance t) s
  else error t (Printf.sprintf "expected %S" s)

let is_space = function ' ' | '\t' | '\r' | '\n' -> true | _ -> false

let skip_whitespace t =
  while (match peek t with Some c when is_space c -> true | _ -> false) do
    advance t
  done

let take_while t p =
  let start = t.pos in
  while (match peek t with Some c when p c -> true | _ -> false) do
    advance t
  done;
  String.sub t.data start (t.pos - start)
