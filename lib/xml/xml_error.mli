(** Errors raised by the XML parser, with source positions. *)

type position = { line : int; column : int; offset : int }
(** 1-based line and column; 0-based byte offset. *)

type t = { position : position; message : string }

exception Parse_error of t

val raise_error : position -> string -> 'a
(** Raise {!Parse_error} at the given position. *)

val pp_position : Format.formatter -> position -> unit

val pp : Format.formatter -> t -> unit

val to_string : t -> string
