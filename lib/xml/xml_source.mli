(** A read cursor over an in-memory XML document that tracks line and
    column for error reporting.  All parser layers read through this. *)

type t

val of_string : string -> t

val position : t -> Xml_error.position

val eof : t -> bool

val peek : t -> char option
(** Look at the next byte without consuming it. *)

val peek2 : t -> char option
(** Look one byte past {!peek}. *)

val advance : t -> unit
(** Consume one byte.  No-op at end of input. *)

val next : t -> char
(** Consume and return the next byte.
    @raise Xml_error.Parse_error at end of input. *)

val expect : t -> char -> unit
(** Consume the next byte, failing unless it equals the argument. *)

val expect_string : t -> string -> unit
(** Consume an exact byte sequence. *)

val looking_at : t -> string -> bool
(** True iff the upcoming bytes start with the given string. *)

val skip_whitespace : t -> unit
(** Consume any run of space, tab, CR, LF. *)

val take_while : t -> (char -> bool) -> string
(** Consume the maximal prefix of bytes satisfying the predicate. *)

val error : t -> string -> 'a
(** Fail at the current position. *)
