type position = { line : int; column : int; offset : int }

type t = { position : position; message : string }

exception Parse_error of t

let raise_error position message = raise (Parse_error { position; message })

let pp_position ppf p = Format.fprintf ppf "line %d, column %d" p.line p.column

let pp ppf e = Format.fprintf ppf "%a: %s" pp_position e.position e.message

let to_string e = Format.asprintf "%a" pp e
