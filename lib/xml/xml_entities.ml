let predefined =
  [ ("amp", "&"); ("lt", "<"); ("gt", ">"); ("apos", "'"); ("quot", "\"") ]

let decode_named name = List.assoc_opt name predefined

let utf8_of_code_point cp =
  if cp < 0 || cp > 0x10FFFF || (cp >= 0xD800 && cp <= 0xDFFF) then None
  else if cp < 0x80 then Some (String.make 1 (Char.chr cp))
  else begin
    let buf = Buffer.create 4 in
    (if cp < 0x800 then begin
       Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
       Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
     end
     else if cp < 0x10000 then begin
       Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
       Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
       Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
     end
     else begin
       Buffer.add_char buf (Char.chr (0xF0 lor (cp lsr 18)));
       Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 12) land 0x3F)));
       Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
       Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
     end);
    Some (Buffer.contents buf)
  end

let parse_int_opt ~hex s =
  if s = "" then None
  else
    let ok =
      String.for_all
        (fun c ->
          match c with
          | '0' .. '9' -> true
          | 'a' .. 'f' | 'A' .. 'F' -> hex
          | _ -> false)
        s
    in
    if not ok then None
    else int_of_string_opt (if hex then "0x" ^ s else s)

let decode_char_ref body =
  if String.length body < 2 || body.[0] <> '#' then None
  else
    let digits, hex =
      if body.[1] = 'x' || body.[1] = 'X' then
        (String.sub body 2 (String.length body - 2), true)
      else (String.sub body 1 (String.length body - 1), false)
    in
    match parse_int_opt ~hex digits with
    | None -> None
    | Some cp -> utf8_of_code_point cp

let escape ~quotes s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' when quotes -> Buffer.add_string buf "&quot;"
      | '\'' when quotes -> Buffer.add_string buf "&apos;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let escape_text = escape ~quotes:false

let escape_attribute = escape ~quotes:true
