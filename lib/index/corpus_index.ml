module String_map = Map.Make (String)
module Inverted_index = Xfrag_doctree.Inverted_index
module Doctree = Xfrag_doctree.Doctree
module Tokenizer = Xfrag_doctree.Tokenizer
module Fault = Xfrag_fault.Fault

type posting = { term_count : int; max_weight : float }

type doc_info = {
  doc_nodes : int;
  doc_keywords : int;  (** distinct keywords, i.e. this doc's posting entries *)
}

type t = {
  options : Tokenizer.options option;
      (* fixed by the first document so every probe normalizes the way
         the per-document indexes did *)
  docs : doc_info String_map.t;
  postings : posting String_map.t String_map.t;  (* keyword -> doc -> posting *)
}

let empty = { options = None; docs = String_map.empty; postings = String_map.empty }

let add_document t ~name idx =
  Fault.Failpoint.hit ~key:name "index.build";
  if String_map.mem name t.docs then
    invalid_arg (Printf.sprintf "Corpus_index.add_document: duplicate document %S" name);
  let nodes = Doctree.size (Inverted_index.tree idx) in
  let stats = Inverted_index.stats idx in
  let postings, keyword_count =
    List.fold_left
      (fun (acc, count) (k, df_nodes, occurrences) ->
        (* Mirror [Ranking.idf]: log ((N + 1) / (df + 1)) over document
           nodes.  [occurrences x idf] bounds any fragment's tf.idf
           contribution because fragment tf <= document occurrences and
           the length penalty divides by >= 1. *)
        let idf =
          Float.log
            ((float_of_int nodes +. 1.0) /. (float_of_int df_nodes +. 1.0))
        in
        let p =
          { term_count = occurrences; max_weight = float_of_int occurrences *. idf }
        in
        let per_doc =
          Option.value (String_map.find_opt k acc) ~default:String_map.empty
        in
        (String_map.add k (String_map.add name p per_doc) acc, count + 1))
      (t.postings, 0) stats
  in
  {
    options =
      (match t.options with
      | Some _ as o -> o
      | None -> Some (Inverted_index.options idx));
    docs = String_map.add name { doc_nodes = nodes; doc_keywords = keyword_count } t.docs;
    postings;
  }

let remove_document t name =
  Fault.Failpoint.hit ~key:name "index.retract";
  match String_map.find_opt name t.docs with
  | None -> t
  | Some _ ->
      let postings =
        String_map.filter_map
          (fun _k per_doc ->
            let per_doc = String_map.remove name per_doc in
            if String_map.is_empty per_doc then None else Some per_doc)
          t.postings
      in
      { t with docs = String_map.remove name t.docs; postings }

let options t = t.options

let doc_count t = String_map.cardinal t.docs

let vocabulary_size t = String_map.cardinal t.postings

let total_postings t =
  String_map.fold (fun _ info acc -> acc + info.doc_keywords) t.docs 0

(* Same probe normalization as [Inverted_index.normalize_probe], using
   the options the index was built with. *)
let normalize_probe t keyword =
  let options = Option.value t.options ~default:Tokenizer.default_options in
  match Tokenizer.tokenize ~options keyword with
  | [ tok ] -> tok
  | _ -> Tokenizer.normalize keyword

let posting_map t keyword =
  match String_map.find_opt (normalize_probe t keyword) t.postings with
  | Some m -> m
  | None -> String_map.empty

let document_frequency t keyword = String_map.cardinal (posting_map t keyword)

let postings t keyword = String_map.bindings (posting_map t keyword)

let route t ~keywords =
  match keywords with
  | [] -> List.map fst (String_map.bindings t.docs)
  | first :: rest ->
      let maps = posting_map t first :: List.map (posting_map t) rest in
      let smallest =
        List.fold_left
          (fun best m ->
            if String_map.cardinal m < String_map.cardinal best then m else best)
          (List.hd maps) (List.tl maps)
      in
      String_map.fold
        (fun name _ acc ->
          if List.for_all (String_map.mem name) maps then name :: acc else acc)
        smallest []
      |> List.rev

let score_bound t ~doc ~keywords =
  List.fold_left
    (fun acc k ->
      match String_map.find_opt doc (posting_map t k) with
      | Some p -> acc +. p.max_weight
      | None -> acc)
    0.0 keywords

(* --- serialization ------------------------------------------------- *)

let format_version = 1

(* Same percent-escape discipline as [Codec]: protect the line/field
   structure ('%', '\t', '\n', '\r'). *)
let escape s =
  let needs_escape = function '%' | '\t' | '\n' | '\r' -> true | _ -> false in
  if String.exists needs_escape s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if needs_escape c then
          Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let unescape s =
  match String.index_opt s '%' with
  | None -> Ok s
  | Some _ ->
      let buf = Buffer.create (String.length s) in
      let n = String.length s in
      let rec go i =
        if i >= n then Ok (Buffer.contents buf)
        else if s.[i] = '%' then
          if i + 2 < n then begin
            match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
            | Some code ->
                Buffer.add_char buf (Char.chr code);
                go (i + 3)
            | None -> Error (Printf.sprintf "bad escape at offset %d" i)
          end
          else Error "truncated escape"
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
      in
      go 0

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "xfrag-corpus-index %d\n" format_version);
  (match t.options with
  | None -> Buffer.add_string buf "options -\n"
  | Some o ->
      Buffer.add_string buf
        (Printf.sprintf "options %d %d %d\n" o.Tokenizer.min_length
           (if o.Tokenizer.stopwords then 1 else 0)
           (if o.Tokenizer.stem then 1 else 0)));
  Buffer.add_string buf (Printf.sprintf "docs %d\n" (String_map.cardinal t.docs));
  String_map.iter
    (fun name info ->
      Buffer.add_string buf
        (Printf.sprintf "d\t%s\t%d\t%d\n" (escape name) info.doc_nodes
           info.doc_keywords))
    t.docs;
  Buffer.add_string buf
    (Printf.sprintf "keywords %d\n" (String_map.cardinal t.postings));
  String_map.iter
    (fun k per_doc ->
      Buffer.add_string buf
        (Printf.sprintf "k\t%s\t%d\n" (escape k) (String_map.cardinal per_doc));
      String_map.iter
        (fun doc p ->
          (* %h prints the exact hex-float representation, so load/save
             round-trips the bound bit-for-bit. *)
          Buffer.add_string buf
            (Printf.sprintf "p\t%s\t%d\t%h\n" (escape doc) p.term_count
               p.max_weight))
        per_doc)
    t.postings;
  Buffer.contents buf

exception Corrupt of string

let of_string_exn data =
  let lines = ref (String.split_on_char '\n' data) in
  let next what =
    match !lines with
    | [] -> raise (Corrupt (Printf.sprintf "truncated input, expected %s" what))
    | l :: rest ->
        lines := rest;
        l
  in
  let fail fmt = Printf.ksprintf (fun m -> raise (Corrupt m)) fmt in
  let unescape_exn s =
    match unescape s with Ok s -> s | Error e -> fail "%s" e
  in
  (match String.split_on_char ' ' (next "header") with
  | [ "xfrag-corpus-index"; v ] -> (
      match int_of_string_opt v with
      | Some v when v = format_version -> ()
      | Some v -> fail "unsupported format version %d" v
      | None -> fail "malformed header")
  | _ -> fail "not an xfrag-corpus-index file");
  let options =
    match String.split_on_char ' ' (next "options") with
    | [ "options"; "-" ] -> None
    | [ "options"; ml; sw; st ] -> (
        match (int_of_string_opt ml, int_of_string_opt sw, int_of_string_opt st) with
        | Some min_length, Some sw, Some st ->
            Some
              {
                Tokenizer.min_length;
                stopwords = sw <> 0;
                stem = st <> 0;
              }
        | _ -> fail "malformed options line")
    | _ -> fail "malformed options line"
  in
  let count_of prefix line =
    match String.split_on_char ' ' line with
    | [ p; n ] when String.equal p prefix -> (
        match int_of_string_opt n with
        | Some n when n >= 0 && n <= String.length data -> n
        | Some n -> fail "implausible %s count %d" prefix n
        | None -> fail "malformed %s line" prefix)
    | _ -> fail "expected %s line, got %S" prefix line
  in
  let doc_lines = count_of "docs" (next "docs header") in
  let docs = ref String_map.empty in
  for _ = 1 to doc_lines do
    match String.split_on_char '\t' (next "doc record") with
    | [ "d"; name; nodes; keywords ] -> (
        match (int_of_string_opt nodes, int_of_string_opt keywords) with
        | Some doc_nodes, Some doc_keywords ->
            docs := String_map.add (unescape_exn name) { doc_nodes; doc_keywords } !docs
        | _ -> fail "bad counts in doc record")
    | l -> fail "malformed doc record %S" (String.concat "\\t" l)
  done;
  let keyword_lines = count_of "keywords" (next "keywords header") in
  let postings = ref String_map.empty in
  for _ = 1 to keyword_lines do
    let k, ndocs =
      match String.split_on_char '\t' (next "keyword record") with
      | [ "k"; k; ndocs ] -> (
          match int_of_string_opt ndocs with
          | Some n when n >= 0 && n <= String.length data -> (unescape_exn k, n)
          | _ -> fail "bad posting count in keyword record")
      | l -> fail "malformed keyword record %S" (String.concat "\\t" l)
    in
    let per_doc = ref String_map.empty in
    for _ = 1 to ndocs do
      match String.split_on_char '\t' (next "posting record") with
      | [ "p"; doc; tc; w ] -> (
          match (int_of_string_opt tc, float_of_string_opt w) with
          | Some term_count, Some max_weight ->
              per_doc :=
                String_map.add (unescape_exn doc) { term_count; max_weight } !per_doc
          | _ -> fail "bad fields in posting record")
      | l -> fail "malformed posting record %S" (String.concat "\\t" l)
    done;
    postings := String_map.add k !per_doc !postings
  done;
  (match List.filter (fun l -> l <> "") !lines with
  | [] -> ()
  | l :: _ -> fail "trailing garbage %S" l);
  { options; docs = !docs; postings = !postings }

let of_string data =
  match of_string_exn data with
  | t -> Ok t
  | exception Corrupt m -> Error m
  (* Belt and braces, as in [Codec]: a corrupted file must never crash
     the caller even through a path the parser missed. *)
  | exception e -> Error ("corrupt corpus index: " ^ Printexc.to_string e)

let save t path =
  let oc = open_out_bin path in
  output_string oc (to_string t);
  close_out oc

let load path =
  let ic = open_in_bin path in
  match
    let n = in_channel_length ic in
    really_input_string ic n
  with
  | data ->
      close_in ic;
      of_string data
  | exception End_of_file ->
      close_in_noerr ic;
      Error "truncated file"
  | exception e ->
      close_in_noerr ic;
      raise e
