(** Corpus-wide inverted index: keyword → document posting lists with
    score upper bounds.

    The per-document {!Xfrag_doctree.Inverted_index} answers "which
    {e nodes} of this document contain [k]"; this module lifts that one
    level to "which {e documents} of the corpus contain [k]", which is
    what turns corpus query cost from O(documents) into O(matching
    documents).  Each posting [(doc, term_count, max_term_weight)]
    carries the document's total occurrence count of the keyword and a
    precomputed upper bound on the tf·idf weight any single fragment of
    that document can earn from it:

    {v max_term_weight(k, d) = occurrences(d, k) x idf_d(k)
       idf_d(k)             = log ((size(d) + 1) / (df_nodes(d, k) + 1)) v}

    This dominates [Ranking.score]'s per-keyword contribution because a
    fragment's term frequency never exceeds the document's total
    occurrence count and the fragment-length penalty divides by at
    least 1.  Summing [max_term_weight] over the query keywords
    therefore bounds the score of {e every} fragment of the document —
    the WAND-style invariant the corpus engine's top-k early
    termination relies on.  The bound is conservative by construction,
    never exact: it may admit documents that score lower, but it can
    never exclude a document holding a true top-k answer.

    Keywords are stored exactly as the per-document index normalized
    them (same {!Xfrag_doctree.Tokenizer} options, including stemming),
    and probes are normalized with those same options, so index-time
    and query-time normalization cannot drift.

    The structure is functional (persistent maps) to match
    [Corpus.add]'s functional contract, and serializable with the same
    versioned, percent-escaped line format as [Codec]: decoding
    untrusted bytes returns [Error], never raises. *)

type posting = {
  term_count : int;  (** total occurrences of the keyword in the doc *)
  max_weight : float;
      (** upper bound on any fragment's tf·idf contribution for this
          keyword (see the module preamble) *)
}

type t

val empty : t

val add_document : t -> name:string -> Xfrag_doctree.Inverted_index.t -> t
(** Fold one document's per-node index into the corpus index.  Passes
    the [index.build] failpoint (keyed by document name) first, so the
    build path is fault-injectable; callers are expected to degrade to
    an unindexed (full-scan) corpus when it raises.  The first document
    fixes the tokenizer options the whole index probes with.
    @raise Invalid_argument on a duplicate document name. *)

val remove_document : t -> string -> t
(** Drop a document from every posting list (no-op for unknown names).
    Passes the [index.retract] failpoint (keyed by document name) first,
    mirroring [add_document]'s [index.build] site; callers are expected
    to fall back to a full rebuild — and from there to an unindexed
    corpus — when it raises.  The hook incremental corpus maintenance
    builds on. *)

val options : t -> Xfrag_doctree.Tokenizer.options option
(** Probe-normalization options, fixed by the first added document;
    [None] while the index is empty. *)

val doc_count : t -> int

val vocabulary_size : t -> int

val total_postings : t -> int
(** Total posting entries, i.e. Σ over documents of distinct keywords. *)

val document_frequency : t -> string -> int
(** Number of documents whose text contains the keyword — an O(log n)
    posting-list lookup. *)

val postings : t -> string -> (string * posting) list
(** The keyword's posting list, sorted by document name; [[]] if the
    keyword occurs nowhere. *)

val route : t -> keywords:string list -> string list
(** Documents containing {e all} keywords (conjunctive intersection of
    posting lists), sorted by name.  A keyword occurring nowhere makes
    the result empty.  [route ~keywords:[]] is every document (no
    constraint). *)

val score_bound : t -> doc:string -> keywords:string list -> float
(** Σ over [keywords] of the document's [max_weight] (0 for keywords
    the document lacks) — an upper bound on [Ranking.score] for every
    fragment of the document. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Decode untrusted bytes: any corruption comes back as [Error],
    never an exception. *)

val save : t -> string -> unit
(** Write {!to_string} to a file.  @raise Sys_error on I/O failure. *)

val load : string -> (t, string) result
(** Read and decode a file written by {!save}.
    @raise Sys_error when the file cannot be opened. *)
