(** Text-to-keyword tokenization.

    The paper assumes a function [keywords(n)] returning the
    representative keywords of a node.  We realize it the way IR systems
    do: lower-case, split on non-alphanumeric characters, drop very short
    tokens and (optionally) stopwords. *)

type options = {
  min_length : int;  (** drop tokens shorter than this (default 1) *)
  stopwords : bool;  (** drop common English stopwords (default false) *)
  stem : bool;  (** apply the Porter stemmer to every token (default false) *)
}

val default_options : options

val tokenize : ?options:options -> string -> string list
(** Tokens in occurrence order, duplicates preserved. *)

val keyword_set : ?options:options -> string -> string list
(** Sorted, de-duplicated tokens. *)

val contains_keyword : ?options:options -> string -> keyword:string -> bool
(** Does the text contain the keyword as a whole token?  The keyword is
    normalized (lower-cased) before comparison. *)

val normalize : string -> string
(** Lower-case a keyword the same way tokenization does. *)

val is_stopword : string -> bool
