module Int_sorted = Xfrag_util.Int_sorted

type t = {
  tree : Doctree.t;
  options : Tokenizer.options;
  postings : (string, Int_sorted.t) Hashtbl.t;
  occurrences : (string, int) Hashtbl.t;
  memberships : (string * int, unit) Hashtbl.t;
}

let build ?(options = Tokenizer.default_options) tree =
  let acc : (string, int list ref) Hashtbl.t = Hashtbl.create 1024 in
  let occurrences = Hashtbl.create 1024 in
  let memberships = Hashtbl.create 4096 in
  Doctree.iter
    (fun n ->
      (* Per the paper, tag names are searchable keywords too: index the
         label alongside the node text. *)
      let tokens =
        Tokenizer.tokenize ~options
          (Doctree.label tree n ^ " " ^ Doctree.text tree n)
      in
      List.iter
        (fun k ->
          Hashtbl.replace occurrences k
            (1 + Option.value (Hashtbl.find_opt occurrences k) ~default:0))
        tokens;
      let keywords = List.sort_uniq String.compare tokens in
      List.iter
        (fun k ->
          Hashtbl.replace memberships (k, n) ();
          match Hashtbl.find_opt acc k with
          | Some l -> l := n :: !l
          | None -> Hashtbl.add acc k (ref [ n ]))
        keywords)
    tree;
  let postings = Hashtbl.create (Hashtbl.length acc) in
  Hashtbl.iter (fun k l -> Hashtbl.replace postings k (Int_sorted.of_list !l)) acc;
  { tree; options; postings; occurrences; memberships }

let tree t = t.tree

let options t = t.options

(* Apply the index's own tokenization to the probe keyword, so stemming
   (when enabled at build time) is symmetric between text and queries. *)
let normalize_probe t keyword =
  match Tokenizer.tokenize ~options:t.options keyword with
  | [ tok ] -> tok
  | _ -> Tokenizer.normalize keyword

let lookup t keyword =
  match Hashtbl.find_opt t.postings (normalize_probe t keyword) with
  | Some s -> s
  | None -> Int_sorted.empty

let node_count t keyword = Int_sorted.cardinal (lookup t keyword)

let occurrence_count t keyword =
  Option.value
    (Hashtbl.find_opt t.occurrences (normalize_probe t keyword))
    ~default:0

let node_contains t n keyword =
  Hashtbl.mem t.memberships (normalize_probe t keyword, n)

let stats t =
  Hashtbl.fold
    (fun k s acc ->
      let occ = Option.value (Hashtbl.find_opt t.occurrences k) ~default:0 in
      (k, Int_sorted.cardinal s, occ) :: acc)
    t.postings []
  |> List.sort (fun (a, _, _) (b, _, _) -> String.compare a b)

let vocabulary t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.postings []
  |> List.sort String.compare

let vocabulary_size t = Hashtbl.length t.postings

let total_postings t =
  Hashtbl.fold (fun _ s acc -> acc + Int_sorted.cardinal s) t.postings 0
