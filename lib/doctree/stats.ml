type t = {
  node_count : int;
  leaf_count : int;
  max_depth : int;
  avg_depth : float;
  max_fanout : int;
  avg_fanout : float;
  label_histogram : (string * int) list;
}

let compute tree =
  let n = Doctree.size tree in
  let leaves = ref 0 in
  let depth_sum = ref 0 in
  let max_fanout = ref 0 in
  let internal = ref 0 in
  let fanout_sum = ref 0 in
  let labels : (string, int) Hashtbl.t = Hashtbl.create 64 in
  Doctree.iter
    (fun node ->
      let kids = List.length (Doctree.children tree node) in
      if kids = 0 then incr leaves
      else begin
        incr internal;
        fanout_sum := !fanout_sum + kids;
        if kids > !max_fanout then max_fanout := kids
      end;
      depth_sum := !depth_sum + Doctree.depth tree node;
      let l = Doctree.label tree node in
      Hashtbl.replace labels l (1 + Option.value ~default:0 (Hashtbl.find_opt labels l)))
    tree;
  let label_histogram =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) labels []
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  {
    node_count = n;
    leaf_count = !leaves;
    max_depth = Doctree.max_depth tree;
    avg_depth = float_of_int !depth_sum /. float_of_int (max n 1);
    max_fanout = !max_fanout;
    avg_fanout =
      (if !internal = 0 then 0.0
       else float_of_int !fanout_sum /. float_of_int !internal);
    label_histogram;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>nodes: %d@,leaves: %d@,max depth: %d@,avg depth: %.2f@,max fanout: \
     %d@,avg fanout: %.2f@,labels:@,%a@]"
    t.node_count t.leaf_count t.max_depth t.avg_depth t.max_fanout t.avg_fanout
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut (fun ppf (l, c) ->
         Format.fprintf ppf "  %-16s %d" l c))
    t.label_histogram
