(** Descriptive statistics of a document tree — used by the CLI [stats]
    command and by EXPERIMENTS.md to characterize generated workloads. *)

type t = {
  node_count : int;
  leaf_count : int;
  max_depth : int;
  avg_depth : float;
  max_fanout : int;
  avg_fanout : float;  (** over internal nodes *)
  label_histogram : (string * int) list;  (** sorted by count, descending *)
}

val compute : Doctree.t -> t

val pp : Format.formatter -> t -> unit
