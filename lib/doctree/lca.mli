(** Constant-time lowest-common-ancestor queries.

    Classic Euler-tour + sparse-table reduction: the LCA of two nodes is
    the minimum-depth node between their first occurrences in an Euler
    tour of the tree.  Preprocessing is O(n log n); each query is O(1).
    The fragment-join operation calls this in its inner loop, so query
    cost matters. *)

type t

val build : Doctree.t -> t

val lca : t -> Doctree.node -> Doctree.node -> Doctree.node

val lca_many : t -> Doctree.node list -> Doctree.node
(** LCA of a non-empty list of nodes.
    @raise Invalid_argument on the empty list. *)

val distance : t -> Doctree.node -> Doctree.node -> int
(** Number of edges on the tree path between two nodes. *)

val path : t -> Doctree.node -> Doctree.node -> Doctree.node list
(** The unique tree path between two nodes, inclusive of both endpoints,
    ordered from the first argument to the second. *)
