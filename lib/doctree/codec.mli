(** Persistent serialization of document trees.

    A simple, versioned, line-oriented format — one header line, then one
    record per node — so parsed documents (and therefore their contexts)
    can be cached and reloaded without re-parsing XML.  Round trip is
    exact: labels and texts survive byte-for-byte (texts are
    percent-escaped to keep the format line-based). *)

val format_version : int

val to_string : Doctree.t -> string

val of_string : string -> (Doctree.t, string) result
(** Rejects unknown versions, malformed records, and node sets that do
    not form a valid pre-order tree.  Safe on untrusted bytes:
    truncation, bit flips, and bogus header length fields all return
    [Error] — never an exception, and never an allocation sized by a
    corrupt count. *)

val save : Doctree.t -> string -> unit
(** [save tree path] writes the serialized form.
    @raise Sys_error on I/O failure. *)

val load : string -> (Doctree.t, string) result
(** @raise Sys_error on I/O failure. *)
