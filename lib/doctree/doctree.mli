(** The document model: a rooted ordered tree with per-node labels and
    text (paper, Definition 1).

    Nodes are identified by their depth-first pre-order rank, so node [0]
    is always the root and an ancestor always has a smaller id than any
    of its descendants.  This invariant is what lets the fragment algebra
    represent a fragment as a sorted id array whose first element is the
    fragment root.

    Only element nodes become tree nodes; the text under an element is
    attached to that element as its [text], mirroring the paper's
    [keywords(n)] function over logical document components. *)

type t

type node = int
(** Pre-order rank, [0 .. size-1]. *)

(** Specification of one node when building a tree directly (used for the
    paper's figures, where node ids are prescribed). *)
type spec = {
  spec_id : int;  (** externally-chosen id; must be pre-order consistent *)
  spec_parent : int;  (** parent's id, or [-1] for the root *)
  spec_label : string;
  spec_text : string;
}

val of_xml : Xfrag_xml.Xml_dom.document -> t
(** Build from a parsed XML document.  Element tag names become labels;
    each element's immediate text (and attribute names/values, per the
    paper's "we do not distinguish between tag/attribute names and text
    contents") becomes its node text. *)

val of_specs : spec list -> t
(** Build from explicit node specifications.  Ids must be exactly
    [0 .. n-1], each parent must precede its children, and siblings must
    appear in document order.
    @raise Invalid_argument if the specification is not a valid pre-order
    tree. *)

val size : t -> int
(** Number of nodes. *)

val root : t -> node
(** Always [0]. *)

val parent : t -> node -> node option
(** [None] for the root. *)

val parent_exn : t -> node -> node
(** @raise Invalid_argument on the root. *)

val depth : t -> node -> int
(** Root has depth 0. *)

val label : t -> node -> string

val text : t -> node -> string

val children : t -> node -> node list
(** In document order. *)

val first_child : t -> node -> node option

val next_sibling : t -> node -> node option

val is_leaf : t -> node -> bool

val is_ancestor : t -> node -> node -> bool
(** [is_ancestor t a b] — is [a] a proper ancestor of [b]?  O(1) via
    pre/post intervals. *)

val is_ancestor_or_self : t -> node -> node -> bool

val subtree_size : t -> node -> int
(** Number of nodes in the full rooted subtree at the given node. *)

val subtree_nodes : t -> node -> Xfrag_util.Int_sorted.t
(** All nodes of the full rooted subtree — a contiguous pre-order
    interval. *)

val leaf_count : t -> int
(** Number of leaves in the document. *)

val leaf_interval : t -> node -> int * int
(** [(lo, hi)] — the 0-based ranks (in left-to-right leaf order) of the
    leftmost and rightmost leaves of the node's rooted subtree.  A leaf
    has [lo = hi].  This is the "horizontal position" measure behind the
    paper's width filter (§3.3.2). *)

val path_to_ancestor : t -> node -> node -> node list
(** [path_to_ancestor t n a] lists the nodes from [n] up to [a]
    inclusive.  @raise Invalid_argument if [a] is not an ancestor-or-self
    of [n]. *)

val all_nodes : t -> node list

val iter : (node -> unit) -> t -> unit
(** Pre-order iteration. *)

val fold : ('a -> node -> 'a) -> 'a -> t -> 'a

val max_depth : t -> int

val pp_node : t -> Format.formatter -> node -> unit
(** Prints ["n<id>:<label>"]. *)

val validate : t -> (unit, string) result
(** Internal-consistency check (used by tests and after builders):
    pre-order ids, parent/child agreement, depth correctness. *)
