(** Keyword → node inverted index over a document tree.

    This implements the selection [σ_{keyword = k}(nodes(D))] of the
    paper (Definition 3 and §2.3): the posting list of [k] is exactly the
    set of single-node fragments whose [keywords(n)] contains [k].

    The paper performs "no preprocessing of data" beyond this (§6); the
    index is the standard keyword-lookup structure every strategy shares. *)

type t

val build : ?options:Tokenizer.options -> Doctree.t -> t

val tree : t -> Doctree.t

val options : t -> Tokenizer.options
(** The tokenizer options the index was built with (what
    {!normalize_probe}-style query normalization must mirror). *)

val lookup : t -> string -> Xfrag_util.Int_sorted.t
(** Nodes whose keywords contain the probe keyword; empty set if the
    keyword does not occur.  The probe is normalized with the same
    tokenizer options the index was built with, so stemming (when
    enabled) applies to queries symmetrically. *)

val node_count : t -> string -> int
(** Posting-list length, i.e. document frequency in nodes. *)

val occurrence_count : t -> string -> int
(** Total token occurrences of the keyword across the whole document
    (label and text, every repetition counted).  This dominates the
    per-fragment term frequency of any fragment of the document, which
    is what makes it usable as a score upper bound at corpus scale. *)

val node_contains : t -> Doctree.node -> string -> bool
(** Does this node's own text contain the keyword? O(1) expected. *)

val stats : t -> (string * int * int) list
(** [(keyword, node_count, occurrence_count)] for every indexed keyword,
    sorted by keyword.  Keywords are returned exactly as stored (already
    normalized), with no probe re-normalization — the walk a corpus-wide
    index builds its posting lists from. *)

val vocabulary : t -> string list
(** All indexed keywords, sorted. *)

val vocabulary_size : t -> int

val total_postings : t -> int
(** Sum of all posting-list lengths. *)
