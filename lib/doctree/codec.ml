let format_version = 1

(* Percent-escape everything that would break the line/field structure:
   '%', '\t', '\n', '\r'. *)
let escape s =
  let needs_escape = function '%' | '\t' | '\n' | '\r' -> true | _ -> false in
  if String.exists needs_escape s then begin
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        if needs_escape c then Buffer.add_string buf (Printf.sprintf "%%%02X" (Char.code c))
        else Buffer.add_char buf c)
      s;
    Buffer.contents buf
  end
  else s

let unescape s =
  match String.index_opt s '%' with
  | None -> Ok s
  | Some _ ->
      let buf = Buffer.create (String.length s) in
      let n = String.length s in
      let rec go i =
        if i >= n then Ok (Buffer.contents buf)
        else if s.[i] = '%' then
          if i + 2 < n then begin
            match int_of_string_opt ("0x" ^ String.sub s (i + 1) 2) with
            | Some code ->
                Buffer.add_char buf (Char.chr code);
                go (i + 3)
            | None -> Error (Printf.sprintf "bad escape at offset %d" i)
          end
          else Error "truncated escape"
        else begin
          Buffer.add_char buf s.[i];
          go (i + 1)
        end
      in
      go 0

let to_string tree =
  let buf = Buffer.create (Doctree.size tree * 48) in
  Buffer.add_string buf (Printf.sprintf "xfrag-doctree %d %d\n" format_version (Doctree.size tree));
  Doctree.iter
    (fun n ->
      let parent = match Doctree.parent tree n with None -> -1 | Some p -> p in
      Buffer.add_string buf
        (Printf.sprintf "%d\t%d\t%s\t%s\n" n parent
           (escape (Doctree.label tree n))
           (escape (Doctree.text tree n))))
    tree;
  Buffer.contents buf

(* Decoding untrusted bytes: every failure — bogus header counts,
   truncated records, bit flips that break field structure — must come
   back as [Error], never an exception, and never an allocation sized
   by a corrupt length field (records are counted, not pre-allocated,
   so a bogus count can only produce a mismatch error). *)
let of_string_exn data =
  let lines = String.split_on_char '\n' data in
  match lines with
  | header :: records -> (
      match String.split_on_char ' ' header with
      | [ "xfrag-doctree"; version; count ] -> (
          match (int_of_string_opt version, int_of_string_opt count) with
          | Some v, _ when v <> format_version ->
              Error (Printf.sprintf "unsupported format version %d" v)
          | Some _, Some count when count < 0 || count > String.length data ->
              (* Each record takes at least two bytes, so a count beyond
                 the input size is corrupt; reject before touching the
                 records. *)
              Error (Printf.sprintf "implausible record count %d" count)
          | Some _, Some count -> (
              let records = List.filter (fun l -> l <> "") records in
              if List.length records <> count then
                Error
                  (Printf.sprintf "expected %d records, found %d" count
                     (List.length records))
              else begin
                let parse_record line =
                  match String.split_on_char '\t' line with
                  | [ id; parent; label; text ] -> (
                      match (int_of_string_opt id, int_of_string_opt parent) with
                      | Some id, Some parent -> (
                          match (unescape label, unescape text) with
                          | Ok label, Ok text ->
                              Ok
                                {
                                  Doctree.spec_id = id;
                                  spec_parent = parent;
                                  spec_label = label;
                                  spec_text = text;
                                }
                          | Error e, _ | _, Error e -> Error e)
                      | _ -> Error (Printf.sprintf "bad ids in record %S" line))
                  | _ -> Error (Printf.sprintf "malformed record %S" line)
                in
                let rec collect acc = function
                  | [] -> Ok (List.rev acc)
                  | line :: rest -> (
                      match parse_record line with
                      | Ok spec -> collect (spec :: acc) rest
                      | Error e -> Error e)
                in
                match collect [] records with
                | Error e -> Error e
                | Ok specs -> (
                    match Doctree.of_specs specs with
                    | tree -> Ok tree
                    | exception Invalid_argument msg -> Error msg)
              end)
          | _ -> Error "malformed header")
      | _ -> Error "not an xfrag-doctree file")
  | [] -> Error "empty input"

let of_string data =
  (* Belt and braces: the decoder is written to return [Error]s, but a
     corrupted file must never crash the caller even if some path was
     missed, so convert any escapee too. *)
  match of_string_exn data with
  | result -> result
  | exception e -> Error ("corrupt doctree: " ^ Printexc.to_string e)

let save tree path =
  let oc = open_out_bin path in
  output_string oc (to_string tree);
  close_out oc

let load path =
  let ic = open_in_bin path in
  match
    let n = in_channel_length ic in
    really_input_string ic n
  with
  | data -> (
      close_in ic;
      (* The [codec.read] failpoint models a torn or short read of the
         cache file: truncation exercises the decoder's corrupt-input
         handling, a raise is converted to the same [Error] channel. *)
      match Xfrag_fault.Fault.Failpoint.data ~key:path "codec.read" data with
      | data -> of_string data
      | exception Xfrag_fault.Fault.Injected (site, detail) ->
          Error (Printf.sprintf "injected fault at %s: %s" site detail))
  | exception End_of_file ->
      (* The file shrank between [in_channel_length] and the read. *)
      close_in_noerr ic;
      Error "truncated file"
  | exception e ->
      close_in_noerr ic;
      raise e
