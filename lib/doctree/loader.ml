module Fault = Xfrag_fault.Fault

type quarantined = { q_file : string; q_reason : string }

let load_tree path =
  match
    Fault.Failpoint.hit ~key:path "parse.document";
    if Filename.check_suffix path ".doctree" then
      match Codec.load path with
      | Ok tree -> Ok tree
      | Error msg -> Error (Printf.sprintf "%s: %s" path msg)
    else
      match Xfrag_xml.Xml_parser.parse_file path with
      | doc -> Ok (Doctree.of_xml doc)
      | exception Xfrag_xml.Xml_error.Parse_error e ->
          Error (Printf.sprintf "%s: %s" path (Xfrag_xml.Xml_error.to_string e))
  with
  | result -> result
  | exception Sys_error msg -> Error msg
  | exception Fault.Injected (site, detail) ->
      Error (Printf.sprintf "%s: injected fault at %s: %s" path site detail)
  | exception e ->
      (* Quarantine contract: corrupt input surfaces as a reason string,
         never as an exception, even for an escape the typed paths
         missed. *)
      Error (Printf.sprintf "%s: %s" path (Printexc.to_string e))

let load_documents ?(name_of = Filename.basename) files =
  let docs, quarantine =
    List.fold_left
      (fun (docs, quarantine) file ->
        let reject reason =
          Fault.record "quarantined_docs";
          (docs, { q_file = file; q_reason = reason } :: quarantine)
        in
        match load_tree file with
        | Error reason -> reject reason
        | Ok tree ->
            let name = name_of file in
            if List.exists (fun (n, _) -> String.equal n name) docs then
              reject (Printf.sprintf "duplicate document name %S" name)
            else ((name, tree) :: docs, quarantine))
      ([], []) files
  in
  (List.rev docs, List.rev quarantine)
