(* Porter stemming algorithm (M. F. Porter, 1980), the standard steps
   1a-5b over lower-case ASCII words.  The measure m counts VC sequences
   in the [C](VC)^m[V] decomposition of the word. *)

let is_ascii_lower s = String.for_all (fun c -> c >= 'a' && c <= 'z') s

(* y is a vowel iff preceded by a consonant. *)
let rec is_consonant w i =
  match w.[i] with
  | 'a' | 'e' | 'i' | 'o' | 'u' -> false
  | 'y' -> i = 0 || not (is_consonant w (i - 1))
  | _ -> true

let measure w =
  let n = String.length w in
  let m = ref 0 in
  let prev_vowel = ref false in
  for i = 0 to n - 1 do
    let c = is_consonant w i in
    if c && !prev_vowel then incr m;
    prev_vowel := not c
  done;
  !m

let contains_vowel w =
  let n = String.length w in
  let rec go i = i < n && ((not (is_consonant w i)) || go (i + 1)) in
  go 0

let ends_double_consonant w =
  let n = String.length w in
  n >= 2 && w.[n - 1] = w.[n - 2] && is_consonant w (n - 1)

(* cvc with final consonant not w, x, y — the *o condition. *)
let ends_cvc w =
  let n = String.length w in
  n >= 3
  && is_consonant w (n - 3)
  && (not (is_consonant w (n - 2)))
  && is_consonant w (n - 1)
  && (match w.[n - 1] with 'w' | 'x' | 'y' -> false | _ -> true)

let chop w k = String.sub w 0 (String.length w - k)

let ends w suffix =
  let n = String.length w and m = String.length suffix in
  n > m && String.sub w (n - m) m = suffix

let stem_of w suffix = chop w (String.length suffix)

(* Replace [suffix] with [repl] when the stem's measure satisfies [cond]. *)
let rule w suffix repl cond =
  if ends w suffix then begin
    let s = stem_of w suffix in
    if cond s then Some (s ^ repl) else None
  end
  else None

let first_rule w rules =
  let rec go = function
    | [] -> None
    | (suffix, repl, cond) :: rest -> (
        (* Porter: the longest matching suffix decides, even if its
           condition fails. *)
        if ends w suffix then
          match rule w suffix repl cond with Some w' -> Some w' | None -> Some w
        else go rest)
  in
  go rules

let step1a w =
  if ends w "sses" then chop w 2
  else if ends w "ies" then chop w 2
  else if ends w "ss" then w
  else if ends w "s" then chop w 1
  else w

let step1b w =
  let post w =
    if ends w "at" || ends w "bl" || ends w "iz" then w ^ "e"
    else if ends_double_consonant w then begin
      match w.[String.length w - 1] with
      | 'l' | 's' | 'z' -> w
      | _ -> chop w 1
    end
    else if measure w = 1 && ends_cvc w then w ^ "e"
    else w
  in
  if ends w "eed" then begin
    let s = stem_of w "eed" in
    if measure s > 0 then chop w 1 else w
  end
  else if ends w "ed" && contains_vowel (stem_of w "ed") then post (chop w 2)
  else if ends w "ing" && contains_vowel (stem_of w "ing") then post (chop w 3)
  else w

let step1c w =
  if ends w "y" && contains_vowel (chop w 1) then chop w 1 ^ "i" else w

let step2 w =
  let m_pos s = measure s > 0 in
  match
    first_rule w
      [
        ("ational", "ate", m_pos); ("tional", "tion", m_pos); ("enci", "ence", m_pos);
        ("anci", "ance", m_pos); ("izer", "ize", m_pos); ("abli", "able", m_pos);
        ("alli", "al", m_pos); ("entli", "ent", m_pos); ("eli", "e", m_pos);
        ("ousli", "ous", m_pos); ("ization", "ize", m_pos); ("ation", "ate", m_pos);
        ("ator", "ate", m_pos); ("alism", "al", m_pos); ("iveness", "ive", m_pos);
        ("fulness", "ful", m_pos); ("ousness", "ous", m_pos); ("aliti", "al", m_pos);
        ("iviti", "ive", m_pos); ("biliti", "ble", m_pos);
      ]
  with
  | Some w' -> w'
  | None -> w

let step3 w =
  let m_pos s = measure s > 0 in
  match
    first_rule w
      [
        ("icate", "ic", m_pos); ("ative", "", m_pos); ("alize", "al", m_pos);
        ("iciti", "ic", m_pos); ("ical", "ic", m_pos); ("ful", "", m_pos);
        ("ness", "", m_pos);
      ]
  with
  | Some w' -> w'
  | None -> w

let step4 w =
  let m1 s = measure s > 1 in
  let ion s =
    measure s > 1
    && String.length s > 0
    && (match s.[String.length s - 1] with 's' | 't' -> true | _ -> false)
  in
  match
    first_rule w
      [
        ("al", "", m1); ("ance", "", m1); ("ence", "", m1); ("er", "", m1);
        ("ic", "", m1); ("able", "", m1); ("ible", "", m1); ("ant", "", m1);
        ("ement", "", m1); ("ment", "", m1); ("ent", "", m1); ("ion", "", ion);
        ("ou", "", m1); ("ism", "", m1); ("ate", "", m1); ("iti", "", m1);
        ("ous", "", m1); ("ive", "", m1); ("ize", "", m1);
      ]
  with
  | Some w' -> w'
  | None -> w

let step5a w =
  if ends w "e" then begin
    let s = chop w 1 in
    let m = measure s in
    if m > 1 || (m = 1 && not (ends_cvc s)) then s else w
  end
  else w

let step5b w =
  if measure w > 1 && ends_double_consonant w && w.[String.length w - 1] = 'l' then
    chop w 1
  else w

let stem word =
  if String.length word < 3 || not (is_ascii_lower word) then word
  else word |> step1a |> step1b |> step1c |> step2 |> step3 |> step4 |> step5a |> step5b
