module Sax = Xfrag_xml.Xml_sax

(* Mirrors Doctree.of_xml's text convention: attributes fold into the
   node text, then the element's immediate character data. *)
type open_element = {
  id : int;
  attr_text : string;
  text : Buffer.t;
}

let of_xml_string data =
  let specs = ref [] in
  let counter = ref 0 in
  let stack : open_element list ref = ref [] in
  let parents = Hashtbl.create 256 in
  let labels = Hashtbl.create 256 in
  let finish_text oe =
    let direct = Buffer.contents oe.text in
    if oe.attr_text = "" then String.trim direct |> fun t -> if t = "" then "" else direct
    else if String.trim direct = "" then oe.attr_text
    else oe.attr_text ^ " " ^ direct
  in
  let texts = Hashtbl.create 256 in
  Sax.iter
    (fun ev ->
      match ev with
      | Sax.Start_element { name; attributes } ->
          let id = !counter in
          incr counter;
          let parent = match !stack with [] -> -1 | top :: _ -> top.id in
          Hashtbl.replace parents id parent;
          Hashtbl.replace labels id name;
          let attr_text =
            String.concat " "
              (List.concat_map (fun (k, v) -> [ k; v ]) attributes)
          in
          stack := { id; attr_text; text = Buffer.create 16 } :: !stack
      | Sax.End_element _ -> (
          match !stack with
          | top :: rest ->
              Hashtbl.replace texts top.id (finish_text top);
              stack := rest
          | [] -> ())
      | Sax.Text s -> (
          match !stack with
          | top :: _ -> Buffer.add_string top.text s
          | [] -> ())
      | Sax.Comment _ | Sax.Pi _ -> ())
    data;
  for id = 0 to !counter - 1 do
    specs :=
      {
        Doctree.spec_id = id;
        spec_parent = Hashtbl.find parents id;
        spec_label = Hashtbl.find labels id;
        spec_text = (match Hashtbl.find_opt texts id with Some t -> t | None -> "");
      }
      :: !specs
  done;
  Doctree.of_specs !specs

let of_xml_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let data = really_input_string ic n in
  close_in ic;
  of_xml_string data
