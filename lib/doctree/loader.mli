(** Fault-contained document ingestion.

    The one load path shared by the CLI, the server, and the tests.
    Loading a file never raises: every failure mode — unreadable file,
    malformed XML, corrupt [.doctree] bytes, an injected
    [parse.document] fault — comes back as [Error] from {!load_tree},
    and {!load_documents} turns per-file errors into {e quarantine}
    entries so one bad document cannot abort loading a collection.

    Failpoints: [parse.document] is hit once per file with the file
    path as key; [codec.read] (inside {!Codec.load}) can truncate or
    corrupt the bytes of a [.doctree] read. *)

type quarantined = { q_file : string; q_reason : string }

val load_tree : string -> (Doctree.t, string) result
(** Parse [path] as XML, or decode it with {!Codec.load} when it ends
    in [.doctree].  Never raises. *)

val load_documents :
  ?name_of:(string -> string) ->
  string list ->
  (string * Doctree.t) list * quarantined list
(** Load every file, quarantining the ones that fail instead of
    stopping: returns the surviving [(name, tree)] pairs in input order
    and the quarantine list (also in input order).  [name_of] derives
    the document name from the path (default [Filename.basename]); a
    name collision quarantines the later file.  Each quarantined file
    bumps the [quarantined_docs] fault counter. *)
