(** A Porter-style English stemmer (the classic 1980 algorithm, steps
    1a–5b), so that queries like "optimizations" match text containing
    "optimization" when stemming is enabled in {!Tokenizer.options}.

    The implementation follows the published rules; the test suite pins
    the standard examples (caresses→caress, ponies→poni,
    relational→relate, …).  Tokens shorter than 3 characters are returned
    unchanged. *)

val stem : string -> string
(** Input is expected lower-case (the tokenizer guarantees it); non-ASCII
    bytes make the token pass through unchanged. *)
