type options = { min_length : int; stopwords : bool; stem : bool }

let default_options = { min_length = 1; stopwords = false; stem = false }

let stopword_list =
  [
    "a"; "an"; "and"; "are"; "as"; "at"; "be"; "but"; "by"; "for"; "if";
    "in"; "into"; "is"; "it"; "its"; "no"; "not"; "of"; "on"; "or"; "such";
    "that"; "the"; "their"; "then"; "there"; "these"; "they"; "this"; "to";
    "was"; "we"; "were"; "will"; "with";
  ]

let stopword_table =
  let tbl = Hashtbl.create 64 in
  List.iter (fun w -> Hashtbl.replace tbl w ()) stopword_list;
  tbl

let is_stopword w = Hashtbl.mem stopword_table (String.lowercase_ascii w)

let is_token_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> true
  | c -> Char.code c >= 0x80  (* keep multi-byte UTF-8 sequences intact *)

let normalize = String.lowercase_ascii

let tokenize ?(options = default_options) text =
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    while !i < n && not (is_token_char text.[!i]) do
      incr i
    done;
    let start = !i in
    while !i < n && is_token_char text.[!i] do
      incr i
    done;
    if !i > start then begin
      let tok = normalize (String.sub text start (!i - start)) in
      if
        String.length tok >= options.min_length
        && not (options.stopwords && Hashtbl.mem stopword_table tok)
      then out := (if options.stem then Stemmer.stem tok else tok) :: !out
    end
  done;
  List.rev !out

let keyword_set ?options text =
  List.sort_uniq String.compare (tokenize ?options text)

let contains_keyword ?(options = default_options) text ~keyword =
  let k = normalize keyword in
  let k = if options.stem then Stemmer.stem k else k in
  List.exists (String.equal k) (tokenize ~options text)
