(** Build a document tree directly from the SAX event stream — no DOM is
    materialized, so peak memory is the tree itself plus one path of
    open elements.  Produces exactly the same tree as
    [Doctree.of_xml ∘ Xml_parser.parse_string] (tested). *)

val of_xml_string : string -> Doctree.t
(** @raise Xfrag_xml.Xml_error.Parse_error on malformed input. *)

val of_xml_file : string -> Doctree.t
(** @raise Sys_error if the file cannot be read. *)
