type t = {
  tree : Doctree.t;
  euler : int array;  (* node at each tour position; length 2n-1 *)
  first : int array;  (* first tour position of each node *)
  table : int array array;  (* sparse table of tour positions, min by depth *)
  log2 : int array;  (* floor(log2 i) for i in [1, 2n-1] *)
}

let build tree =
  let n = Doctree.size tree in
  let tour_len = (2 * n) - 1 in
  let euler = Array.make tour_len 0 in
  let first = Array.make n (-1) in
  let pos = ref 0 in
  (* Iterative Euler tour: record the node, then for each child the
     child's subtree followed by the node again. *)
  let stack = Stack.create () in
  Stack.push (`Visit 0) stack;
  while not (Stack.is_empty stack) do
    match Stack.pop stack with
    | `Record node ->
        euler.(!pos) <- node;
        incr pos
    | `Visit node ->
        euler.(!pos) <- node;
        if first.(node) < 0 then first.(node) <- !pos;
        incr pos;
        let kids = Doctree.children tree node in
        List.iter
          (fun c ->
            Stack.push (`Record node) stack;
            Stack.push (`Visit c) stack)
          (List.rev kids)
  done;
  assert (!pos = tour_len);
  let log2 = Array.make (tour_len + 1) 0 in
  for i = 2 to tour_len do
    log2.(i) <- log2.(i / 2) + 1
  done;
  let levels = log2.(tour_len) + 1 in
  let table = Array.make levels [||] in
  table.(0) <- Array.init tour_len Fun.id;
  let depth_at p = Doctree.depth tree euler.(p) in
  for k = 1 to levels - 1 do
    let half = 1 lsl (k - 1) in
    let len = tour_len - (1 lsl k) + 1 in
    if len > 0 then
      table.(k) <-
        Array.init len (fun i ->
            let a = table.(k - 1).(i) and b = table.(k - 1).(i + half) in
            if depth_at a <= depth_at b then a else b)
  done;
  { tree; euler; first; table; log2 }

let lca t a b =
  if a = b then a
  else begin
    let i = t.first.(a) and j = t.first.(b) in
    let lo = min i j and hi = max i j in
    let k = t.log2.(hi - lo + 1) in
    let p1 = t.table.(k).(lo) and p2 = t.table.(k).(hi - (1 lsl k) + 1) in
    let d1 = Doctree.depth t.tree t.euler.(p1)
    and d2 = Doctree.depth t.tree t.euler.(p2) in
    t.euler.(if d1 <= d2 then p1 else p2)
  end

let lca_many t = function
  | [] -> invalid_arg "Lca.lca_many: empty list"
  | first :: rest -> List.fold_left (lca t) first rest

let distance t a b =
  let l = lca t a b in
  Doctree.depth t.tree a + Doctree.depth t.tree b - (2 * Doctree.depth t.tree l)

let path t a b =
  let l = lca t a b in
  let up = Doctree.path_to_ancestor t.tree a l in
  let down = Doctree.path_to_ancestor t.tree b l in
  (* up ends at l; down also ends at l.  Join: a..l then l-excluded
     reverse of b..l. *)
  up @ List.tl (List.rev down)
