module Int_sorted = Xfrag_util.Int_sorted
module Xml_dom = Xfrag_xml.Xml_dom

type node = int

type t = {
  parent : int array;  (* -1 for the root *)
  depth : int array;
  labels : string array;
  texts : string array;
  children : int array array;  (* document order *)
  post : int array;  (* post-order rank, for O(1) ancestor tests *)
  sub_size : int array;  (* rooted-subtree sizes *)
  leaf_lo : int array;  (* leftmost leaf rank of the rooted subtree *)
  leaf_hi : int array;  (* rightmost leaf rank of the rooted subtree *)
  leaf_count : int;
}

type spec = {
  spec_id : int;
  spec_parent : int;
  spec_label : string;
  spec_text : string;
}

let size t = Array.length t.parent

let root (_ : t) : node = 0

let check_bounds t n fn =
  if n < 0 || n >= size t then
    invalid_arg (Printf.sprintf "Doctree.%s: node %d out of range" fn n)

let parent t n =
  check_bounds t n "parent";
  if n = 0 then None else Some t.parent.(n)

let parent_exn t n =
  check_bounds t n "parent_exn";
  if n = 0 then invalid_arg "Doctree.parent_exn: the root has no parent"
  else t.parent.(n)

let depth t n =
  check_bounds t n "depth";
  t.depth.(n)

let label t n =
  check_bounds t n "label";
  t.labels.(n)

let text t n =
  check_bounds t n "text";
  t.texts.(n)

let children t n =
  check_bounds t n "children";
  Array.to_list t.children.(n)

let first_child t n =
  check_bounds t n "first_child";
  if Array.length t.children.(n) = 0 then None else Some t.children.(n).(0)

let next_sibling t n =
  check_bounds t n "next_sibling";
  if n = 0 then None
  else begin
    let siblings = t.children.(t.parent.(n)) in
    let rec go i =
      if i >= Array.length siblings - 1 then None
      else if siblings.(i) = n then Some siblings.(i + 1)
      else go (i + 1)
    in
    go 0
  end

let is_leaf t n =
  check_bounds t n "is_leaf";
  Array.length t.children.(n) = 0

(* In a pre/post numbering, a is a proper ancestor of b iff a's pre-order
   id is smaller and its post-order rank is larger. *)
let is_ancestor t a b =
  check_bounds t a "is_ancestor";
  check_bounds t b "is_ancestor";
  a < b && t.post.(a) > t.post.(b)

let is_ancestor_or_self t a b = a = b || is_ancestor t a b

let subtree_size t n =
  check_bounds t n "subtree_size";
  t.sub_size.(n)

let subtree_nodes t n =
  check_bounds t n "subtree_nodes";
  (* Pre-order makes every rooted subtree a contiguous id interval. *)
  Array.init t.sub_size.(n) (fun i -> n + i)

let leaf_count t = t.leaf_count

let leaf_interval t n =
  check_bounds t n "leaf_interval";
  (t.leaf_lo.(n), t.leaf_hi.(n))

let path_to_ancestor t n a =
  check_bounds t n "path_to_ancestor";
  check_bounds t a "path_to_ancestor";
  if not (is_ancestor_or_self t a n) then
    invalid_arg "Doctree.path_to_ancestor: second node is not an ancestor";
  let rec go acc cur = if cur = a then a :: acc else go (cur :: acc) t.parent.(cur) in
  List.rev (go [] n)

let all_nodes t = List.init (size t) Fun.id

let iter f t =
  for n = 0 to size t - 1 do
    f n
  done

let fold f init t =
  let acc = ref init in
  for n = 0 to size t - 1 do
    acc := f !acc n
  done;
  !acc

let max_depth t = Array.fold_left max 0 t.depth

let pp_node t ppf n = Format.fprintf ppf "n%d:%s" n (label t n)

(* Compute post-order ranks and subtree sizes from parent/children. *)
let finish ~parent ~depth ~labels ~texts ~children =
  let n = Array.length parent in
  let post = Array.make n 0 in
  let sub_size = Array.make n 1 in
  let counter = ref 0 in
  (* Iterative post-order traversal to avoid stack overflow on deep docs. *)
  let stack = Stack.create () in
  if n > 0 then Stack.push (0, 0) stack;
  while not (Stack.is_empty stack) do
    let node, child_idx = Stack.pop stack in
    if child_idx < Array.length children.(node) then begin
      Stack.push (node, child_idx + 1) stack;
      Stack.push (children.(node).(child_idx), 0) stack
    end
    else begin
      post.(node) <- !counter;
      incr counter;
      Array.iter (fun c -> sub_size.(node) <- sub_size.(node) + sub_size.(c)) children.(node)
    end
  done;
  (* Leaf ranks: number the leaves left to right (pre-order visits them
     in document order); internal nodes inherit the span of their
     children.  The reverse pre-order sweep sees children before
     parents. *)
  let leaf_lo = Array.make n max_int in
  let leaf_hi = Array.make n (-1) in
  let leaf_counter = ref 0 in
  for node = 0 to n - 1 do
    if Array.length children.(node) = 0 then begin
      leaf_lo.(node) <- !leaf_counter;
      leaf_hi.(node) <- !leaf_counter;
      incr leaf_counter
    end
  done;
  for node = n - 1 downto 1 do
    let p = parent.(node) in
    if leaf_lo.(node) < leaf_lo.(p) then leaf_lo.(p) <- leaf_lo.(node);
    if leaf_hi.(node) > leaf_hi.(p) then leaf_hi.(p) <- leaf_hi.(node)
  done;
  { parent; depth; labels; texts; children; post; sub_size; leaf_lo; leaf_hi;
    leaf_count = !leaf_counter }

let validate t =
  let n = size t in
  let fail fmt = Printf.ksprintf (fun s -> Error s) fmt in
  let rec check i =
    if i >= n then Ok ()
    else if i = 0 && t.parent.(0) <> -1 then fail "root parent is not -1"
    else if i > 0 && (t.parent.(i) < 0 || t.parent.(i) >= i) then
      fail "node %d: parent %d does not precede it" i t.parent.(i)
    else if i > 0 && t.depth.(i) <> t.depth.(t.parent.(i)) + 1 then
      fail "node %d: depth inconsistent with parent" i
    else if
      i > 0
      && not (Array.exists (fun c -> c = i) t.children.(t.parent.(i)))
    then fail "node %d: missing from its parent's child list" i
    else if
      (* Pre-order: every node must fall inside its parent's contiguous
         pre-order interval [p, p + sub_size p). *)
      i > 0 && not (t.parent.(i) < i && i < t.parent.(i) + t.sub_size.(t.parent.(i)))
    then fail "node %d: outside its parent's pre-order interval" i
    else check (i + 1)
  in
  check 0

let of_specs specs =
  let specs = List.sort (fun a b -> compare a.spec_id b.spec_id) specs in
  let n = List.length specs in
  if n = 0 then invalid_arg "Doctree.of_specs: empty specification";
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  let labels = Array.make n "" in
  let texts = Array.make n "" in
  let kids = Array.make n [] in
  List.iteri
    (fun i s ->
      if s.spec_id <> i then
        invalid_arg
          (Printf.sprintf "Doctree.of_specs: ids must be 0..n-1 (missing or duplicate id %d)" i);
      if i = 0 then begin
        if s.spec_parent <> -1 then
          invalid_arg "Doctree.of_specs: node 0 must be the root (parent -1)"
      end
      else begin
        if s.spec_parent < 0 || s.spec_parent >= i then
          invalid_arg
            (Printf.sprintf
               "Doctree.of_specs: node %d has parent %d; parents must precede children"
               i s.spec_parent);
        parent.(i) <- s.spec_parent;
        depth.(i) <- depth.(s.spec_parent) + 1;
        kids.(s.spec_parent) <- i :: kids.(s.spec_parent)
      end;
      labels.(i) <- s.spec_label;
      texts.(i) <- s.spec_text)
    specs;
  let children = Array.map (fun l -> Array.of_list (List.rev l)) kids in
  (* Pre-order consistency: children of each node must be increasing (they
     are, as we appended in id order) and must form contiguous subtree
     intervals.  The latter is checked by validate below. *)
  let t = finish ~parent ~depth ~labels ~texts ~children in
  match validate t with
  | Ok () -> t
  | Error msg -> invalid_arg ("Doctree.of_specs: " ^ msg)

let node_text (e : Xml_dom.element) =
  (* The paper does not distinguish attribute names from text contents;
     fold attributes into the node's text.  The tag name stays in [label]
     and is added by the keyword index. *)
  let buf = Buffer.create 64 in
  List.iter
    (fun (k, v) ->
      if Buffer.length buf > 0 then Buffer.add_char buf ' ';
      Buffer.add_string buf k;
      Buffer.add_char buf ' ';
      Buffer.add_string buf v)
    e.attributes;
  let direct = Xml_dom.immediate_text e in
  if String.trim direct <> "" then begin
    if Buffer.length buf > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf direct
  end;
  Buffer.contents buf

let of_xml (doc : Xml_dom.document) =
  let n = Xml_dom.descendant_count doc.root in
  let parent = Array.make n (-1) in
  let depth = Array.make n 0 in
  let labels = Array.make n "" in
  let texts = Array.make n "" in
  let kids = Array.make n [] in
  let counter = ref 0 in
  (* Explicit work stack: (element, parent id, depth).  Children are
     pushed in reverse so they are visited in document order. *)
  let stack = Stack.create () in
  Stack.push (doc.root, -1, 0) stack;
  while not (Stack.is_empty stack) do
    let e, p, d = Stack.pop stack in
    let id = !counter in
    incr counter;
    parent.(id) <- p;
    depth.(id) <- d;
    labels.(id) <- e.Xml_dom.name;
    texts.(id) <- node_text e;
    if p >= 0 then kids.(p) <- id :: kids.(p);
    let elems = Xml_dom.child_elements e in
    List.iter (fun c -> Stack.push (c, id, d + 1) stack) (List.rev elems)
  done;
  let children = Array.map (fun l -> Array.of_list (List.rev l)) kids in
  finish ~parent ~depth ~labels ~texts ~children
