exception Injected of string * string

type action = Raise | Delay of int | Truncate of int

type trigger = Always | Nth of int | From of int | Key of string

type point = {
  p_action : action;
  p_trigger : trigger;
  mutable p_hits : int;
}

(* All slow-path state lives behind one mutex; the fast path (nothing
   armed anywhere, the production steady state) is a single atomic load
   of [armed_total]. *)
let lock = Mutex.create ()

let points : (string, point) Hashtbl.t = Hashtbl.create 8

let armed_total = Atomic.make 0

(* Fired counts survive disarming so telemetry can report what a whole
   run injected; [counters_tbl] holds the containment-side counters
   ([worker_restarts], [doc_errors], …). *)
let fired_totals : (string, int ref) Hashtbl.t = Hashtbl.create 8

let counters_tbl : (string, int ref) Hashtbl.t = Hashtbl.create 8

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let bump tbl name n =
  match Hashtbl.find_opt tbl name with
  | Some r -> r := !r + n
  | None -> Hashtbl.replace tbl name (ref n)

(* --- fault counters --------------------------------------------------- *)

let add name n = if n <> 0 then with_lock (fun () -> bump counters_tbl name n)

let record name = add name 1

let count name =
  with_lock (fun () ->
      match Hashtbl.find_opt counters_tbl name with
      | Some r -> !r
      | None -> 0)

let counters () =
  with_lock (fun () ->
      let acc =
        Hashtbl.fold (fun name r acc -> (name, !r) :: acc) counters_tbl []
      in
      let acc =
        Hashtbl.fold
          (fun site r acc ->
            (Printf.sprintf "injected{site=%S}" site, !r) :: acc)
          fired_totals acc
      in
      List.sort compare acc)

let reset_counters () =
  with_lock (fun () ->
      Hashtbl.reset counters_tbl;
      Hashtbl.reset fired_totals)

(* --- failpoints ------------------------------------------------------- *)

module Failpoint = struct
  (* Deterministic stand-in for "this operation got slow": data-dependent
     spinning, no clock, no syscall, so the same arming produces the
     same schedule perturbation on every run. *)
  let default_delay n =
    let x = ref 0 in
    for i = 1 to n * 512 do
      x := !x lxor (i * 0x9e3779b1)
    done;
    ignore (Sys.opaque_identity !x)

  let delay_hook = ref default_delay

  let set_delay_hook f = delay_hook := f

  let arm ?(trigger = Always) site action =
    with_lock (fun () ->
        if not (Hashtbl.mem points site) then Atomic.incr armed_total;
        Hashtbl.replace points site
          { p_action = action; p_trigger = trigger; p_hits = 0 })

  let disarm site =
    with_lock (fun () ->
        if Hashtbl.mem points site then begin
          Hashtbl.remove points site;
          Atomic.decr armed_total
        end)

  let clear () =
    with_lock (fun () ->
        Hashtbl.reset points;
        Atomic.set armed_total 0)

  let armed site = with_lock (fun () -> Hashtbl.mem points site)

  let hit_count site =
    with_lock (fun () ->
        match Hashtbl.find_opt points site with
        | Some p -> p.p_hits
        | None -> 0)

  let fired_count site =
    with_lock (fun () ->
        match Hashtbl.find_opt fired_totals site with
        | Some r -> !r
        | None -> 0)

  (* Decide under the lock, act outside it: a [Raise] or [Delay] must
     never run while holding [lock]. *)
  let strike site key =
    with_lock (fun () ->
        match Hashtbl.find_opt points site with
        | None -> None
        | Some p ->
            p.p_hits <- p.p_hits + 1;
            let fires =
              match p.p_trigger with
              | Always -> true
              | Nth n -> p.p_hits = n
              | From n -> p.p_hits >= n
              | Key k -> ( match key with Some k' -> String.equal k k' | None -> false)
            in
            if fires then begin
              bump fired_totals site 1;
              Some p.p_action
            end
            else None)

  let hit ?key site =
    if Atomic.get armed_total = 0 then ()
    else
      match strike site key with
      | None | Some (Truncate _) -> ()
      | Some Raise -> raise (Injected (site, "injected fault"))
      | Some (Delay n) -> !delay_hook n

  let data ?key site s =
    if Atomic.get armed_total = 0 then s
    else
      match strike site key with
      | None -> s
      | Some Raise -> raise (Injected (site, "injected fault"))
      | Some (Delay n) ->
          !delay_hook n;
          s
      | Some (Truncate n) ->
          let n = max 0 n in
          if String.length s <= n then s else String.sub s 0 n

  let with_armed ?trigger site action f =
    arm ?trigger site action;
    Fun.protect ~finally:(fun () -> disarm site) f

  (* --- spec parsing --------------------------------------------------- *)

  let parse_trigger s =
    if String.length s > 4 && String.sub s 0 4 = "key=" then
      Ok (Key (String.sub s 4 (String.length s - 4)))
    else if String.length s > 1 && s.[String.length s - 1] = '+' then
      match int_of_string_opt (String.sub s 0 (String.length s - 1)) with
      | Some n when n >= 1 -> Ok (From n)
      | _ -> Error (Printf.sprintf "bad trigger %S" s)
    else
      match int_of_string_opt s with
      | Some n when n >= 1 -> Ok (Nth n)
      | _ -> Error (Printf.sprintf "bad trigger %S" s)

  let parse_action s =
    match String.index_opt s ':' with
    | None -> (
        match s with
        | "raise" -> Ok (Some Raise)
        | "off" -> Ok None
        | _ -> Error (Printf.sprintf "unknown action %S" s))
    | Some i -> (
        let name = String.sub s 0 i in
        let arg = String.sub s (i + 1) (String.length s - i - 1) in
        match (name, int_of_string_opt arg) with
        | "delay", Some n when n >= 0 -> Ok (Some (Delay n))
        | "truncate", Some n when n >= 0 -> Ok (Some (Truncate n))
        | ("delay" | "truncate"), _ ->
            Error (Printf.sprintf "bad %s argument %S" name arg)
        | _ -> Error (Printf.sprintf "unknown action %S" s))

  let parse_entry entry =
    match String.index_opt entry '=' with
    | None -> Error (Printf.sprintf "missing '=' in %S" entry)
    | Some i -> (
        let site = String.trim (String.sub entry 0 i) in
        let rhs = String.sub entry (i + 1) (String.length entry - i - 1) in
        if site = "" then Error (Printf.sprintf "empty site in %S" entry)
        else
          let action_str, trigger_str =
            match String.index_opt rhs '@' with
            | None -> (rhs, None)
            | Some j ->
                ( String.sub rhs 0 j,
                  Some (String.sub rhs (j + 1) (String.length rhs - j - 1)) )
          in
          let ( let* ) = Result.bind in
          let* action = parse_action (String.trim action_str) in
          let* trigger =
            match trigger_str with
            | None -> Ok Always
            | Some t -> parse_trigger (String.trim t)
          in
          match action with
          | None ->
              disarm site;
              Ok ()
          | Some a ->
              arm ~trigger site a;
              Ok ())

  let arm_spec spec =
    let entries =
      String.split_on_char ';' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> "")
    in
    let errors =
      List.filter_map
        (fun e -> match parse_entry e with Ok () -> None | Error m -> Some m)
        entries
    in
    if errors = [] then Ok () else Error (String.concat "; " errors)

  let init_from_env () =
    match Sys.getenv_opt "XFRAG_FAILPOINTS" with
    | None | Some "" -> ()
    | Some spec -> (
        match arm_spec spec with
        | Ok () -> ()
        | Error msg ->
            (* A bad spec must degrade to "partially armed", never crash:
               the injector may not amplify faults. *)
            Printf.eprintf "xfrag: ignoring bad XFRAG_FAILPOINTS entries: %s\n%!"
              msg)

  let reset () =
    clear ();
    init_from_env ()

  let () = init_from_env ()
end
