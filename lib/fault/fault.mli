(** Deterministic fault injection and process-wide fault accounting.

    A {e failpoint} is a named site in the code ([parse.document],
    [eval.join], [shard.worker], [index.build], …) that normally does
    nothing and costs one atomic load.  Arming a site — through the test API or the
    [XFRAG_FAILPOINTS] environment variable — makes the site raise
    {!Injected}, spin a deterministic delay, or truncate the data
    flowing through it, under a trigger evaluated against a seeded
    per-site hit counter (no wall clock, no randomness): the same
    program run fires the same faults at the same hits.

    The containment layers (corpus per-document isolation, pool worker
    supervision, load-path quarantine, router error mapping) are written
    against these sites; the test suite and the CI chaos legs arm them
    to prove one failing document, worker, or connection cannot take
    down a corpus query or the serving process.

    {b Spec grammar} ([XFRAG_FAILPOINTS], {!Failpoint.arm_spec}):
    {v entries   ::= entry (';' entry)*
entry     ::= site '=' action ('@' trigger)?
action    ::= 'raise' | 'off' | 'delay:' INT | 'truncate:' INT
trigger   ::= INT            fire only on the Nth hit (1-based)
            | INT '+'        fire on the Nth hit and every later one
            | 'key=' STRING  fire on hits whose key matches exactly v}
    Example: [parse.document=raise@key=b.xml;shard.worker=raise@1;
    eval.join=delay:16].  Without a trigger the site fires on every
    hit.  Malformed entries are reported on stderr and skipped — a bad
    spec must never take the process down (that would be a fault
    amplifier, not an injector).

    Everything here is domain-safe: sites are hit from pool workers. *)

exception Injected of string * string
(** [Injected (site, detail)] — the exception an armed [raise] site
    throws.  Containment layers may match on it to label the failure,
    but must contain {e any} exception the same way; fault injection
    only proves the path. *)

type action =
  | Raise  (** raise {!Injected} at the site *)
  | Delay of int
      (** spin the deterministic delay hook for [n] units — models a
          slow document / lock-holder without touching any clock *)
  | Truncate of int
      (** cut the string passing through a {!Failpoint.data} site to at
          most [n] bytes; plain {!Failpoint.hit} sites treat it as a
          no-op *)

type trigger =
  | Always
  | Nth of int  (** fire only on the [n]-th hit since arming (1-based) *)
  | From of int  (** fire on the [n]-th hit and all later ones *)
  | Key of string
      (** fire on hits whose [?key] (document name, file path…) matches *)

module Failpoint : sig
  val arm : ?trigger:trigger -> string -> action -> unit
  (** Arm [site]; replaces any previous arming and resets the site's
      hit counter, so triggers count from the arming point. *)

  val disarm : string -> unit

  val clear : unit -> unit
  (** Disarm every site (including the ones armed from the
      environment).  Fired-count telemetry is kept. *)

  val reset : unit -> unit
  (** {!clear}, then re-arm from [XFRAG_FAILPOINTS]. *)

  val with_armed : ?trigger:trigger -> string -> action -> (unit -> 'a) -> 'a
  (** Scoped arming: arm, run, disarm (also on exception). *)

  val arm_spec : string -> (unit, string) result
  (** Parse and arm a spec string (grammar above).  Valid entries are
      armed even when later ones are malformed; the error lists every
      rejected entry. *)

  val armed : string -> bool

  val hit : ?key:string -> string -> unit
  (** Pass through the site: no-op unless the site is armed and its
      trigger matches, in which case the action runs ([Raise] raises
      {!Injected}, [Delay] spins, [Truncate] is a no-op).  Disarmed
      cost is one atomic load. *)

  val data : ?key:string -> string -> string -> string
  (** [data site s]: like {!hit} but for sites with bytes in flight —
      [Truncate n] returns the first [n] bytes of [s]. *)

  val hit_count : string -> int
  (** Hits since the site was (last) armed; 0 for unarmed sites. *)

  val fired_count : string -> int
  (** Times the site's action actually ran, across armings. *)

  val set_delay_hook : (int -> unit) -> unit
  (** Replace the [Delay] implementation (default: a deterministic
      spin).  Tests inject a recorder. *)
end

val record : string -> unit
(** Bump process-wide fault counter [name] — e.g. the pools record
    [worker_restarts], the corpus engine [doc_errors], the loader
    [quarantined_docs].  These surface as [faults.*] metrics. *)

val add : string -> int -> unit

val count : string -> int

val counters : unit -> (string * int) list
(** Snapshot, sorted by name: every {!record}ed counter plus
    [injected{site="…"}] fired counts for sites that ever fired. *)

val reset_counters : unit -> unit
(** Zero all counters and fired counts (tests only). *)
