(** Deterministic query workloads over a generated document.

    Draws query keywords from the document's own vocabulary, constrained
    to a posting-list size band so experiments can control keyword
    selectivity (rare vs. frequent terms). *)

type spec = {
  keyword_count : int;  (** keywords per query *)
  min_postings : int;  (** smallest acceptable posting-list length *)
  max_postings : int;  (** largest acceptable posting-list length *)
}

val pick_keywords :
  seed:int -> spec -> Xfrag_core.Context.t -> string list option
(** One keyword set satisfying the band, or [None] if the vocabulary
    cannot supply [keyword_count] distinct terms in the band. *)

val queries :
  seed:int ->
  count:int ->
  ?filter:Xfrag_core.Filter.t ->
  spec ->
  Xfrag_core.Context.t ->
  Xfrag_core.Query.t list
(** Up to [count] distinct queries (fewer if the band is too narrow). *)
