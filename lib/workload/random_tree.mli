(** Random trees and random fragments for property-based tests.

    These are the generators behind the qcheck properties that validate
    the algebraic laws (idempotency, commutativity, associativity,
    absorption, Theorems 1–3) on arbitrary shapes, not just the paper's
    figures. *)

val tree : seed:int -> size:int -> Xfrag_doctree.Doctree.t
(** A random tree with [size] nodes: each node's parent is drawn
    uniformly from a bounded-depth window of earlier nodes, giving
    realistic mixes of deep chains and wide fanouts.  Node texts embed
    the node id as token [idN] plus a few shared tokens, so keyword
    queries have controllable matches.
    @raise Invalid_argument if [size < 1]. *)

val context : seed:int -> size:int -> Xfrag_core.Context.t

val fragment : Xfrag_core.Context.t -> Xfrag_util.Prng.t -> Xfrag_core.Fragment.t
(** A uniform-ish random connected fragment: pick a random node, then
    grow by repeatedly adding a random neighbour (parent or child of a
    member) a random number of times. *)

val fragment_set :
  Xfrag_core.Context.t -> Xfrag_util.Prng.t -> max_fragments:int -> Xfrag_core.Frag_set.t
(** A random set of 1..[max_fragments] random fragments. *)
