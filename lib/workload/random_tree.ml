module Doctree = Xfrag_doctree.Doctree
module Prng = Xfrag_util.Prng
module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set

let tree ~seed ~size =
  if size < 1 then invalid_arg "Random_tree.tree: size must be positive";
  let prng = Prng.create seed in
  (* Pre-order requires each new node to attach somewhere on the
     rightmost path (any other parent would already have a later
     subtree).  Drawing the attachment point from the shallow end vs. the
     deep end of that path mixes wide fanouts with deep chains. *)
  let parents = Array.make size (-1) in
  let rightmost = ref [ 0 ] in
  for id = 1 to size - 1 do
    let path = Array.of_list !rightmost in
    let k = Prng.int prng (min (Array.length path) 4) in
    let parent = path.(k) in
    parents.(id) <- parent;
    (* New node becomes the deepest element of the rightmost path; drop
       everything deeper than its parent. *)
    let rec drop = function
      | p :: rest when p <> parent -> drop rest
      | l -> l
    in
    rightmost := id :: drop !rightmost
  done;
  let prng_text = Prng.create (seed + 1) in
  Doctree.of_specs
    (List.init size (fun id ->
         let shared = Printf.sprintf "tok%d" (Prng.int prng_text 8) in
         {
           Doctree.spec_id = id;
           spec_parent = parents.(id);
           spec_label = (if id = 0 then "root" else "node");
           spec_text = Printf.sprintf "id%d %s" id shared;
         }))

let context ~seed ~size = Context.create (tree ~seed ~size)

let fragment (ctx : Context.t) prng =
  let n = Doctree.size ctx.tree in
  let start = Prng.int prng n in
  let members = Hashtbl.create 8 in
  Hashtbl.replace members start ();
  let grow_steps = Prng.int prng 6 in
  for _ = 1 to grow_steps do
    (* Candidate neighbours: parents and children of current members. *)
    let candidates =
      Hashtbl.fold
        (fun m () acc ->
          let acc =
            match Doctree.parent ctx.tree m with
            | Some p when not (Hashtbl.mem members p) -> p :: acc
            | Some _ | None -> acc
          in
          List.fold_left
            (fun acc c -> if Hashtbl.mem members c then acc else c :: acc)
            acc
            (Doctree.children ctx.tree m))
        members []
    in
    match candidates with
    | [] -> ()
    | cs -> Hashtbl.replace members (Prng.choose prng (Array.of_list cs)) ()
  done;
  Fragment.of_nodes ctx (Hashtbl.fold (fun m () acc -> m :: acc) members [])

let fragment_set ctx prng ~max_fragments =
  let count = 1 + Prng.int prng max_fragments in
  Frag_set.of_list (List.init count (fun _ -> fragment ctx prng))
