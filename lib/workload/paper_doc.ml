module Doctree = Xfrag_doctree.Doctree
module Dom = Xfrag_xml.Xml_dom
module Printer = Xfrag_xml.Xml_printer
module Context = Xfrag_core.Context

let spec id parent label text =
  { Doctree.spec_id = id; spec_parent = parent; spec_label = label; spec_text = text }

(* Filler prose for nodes the paper leaves unspecified.  None of these
   sentences may contain the tokens 'xquery' or 'optimization', which
   must occur in exactly the nodes the paper prescribes. *)
let filler_sentences =
  [|
    "Structured documents interleave narrative text with explicit markup.";
    "A retrieval unit should be self contained and readable on its own.";
    "Element boundaries rarely align with the granularity users expect.";
    "Path expressions describe structure but not topical relevance.";
    "Inverted files map terms to the components in which they occur.";
    "Logical components nest to arbitrary depth in real articles.";
    "Relevance judgements in element retrieval remain contentious.";
    "Schema information is often absent from narrative collections.";
    "Tag names describe layout roles rather than domain semantics.";
    "Users prefer concise answers over entire documents.";
    "Fragment granularity trades recall against readability.";
    "Processing cost grows quickly with the number of candidate answers.";
  |]

let filler i = filler_sentences.(i mod Array.length filler_sentences)

let figure1_specs () =
  let pars parent lo hi =
    List.init (hi - lo + 1) (fun i -> spec (lo + i) parent "par" (filler (lo + i)))
  in
  List.concat
    [
      [ spec 0 (-1) "article" "" ];
      [ spec 1 0 "section" "" ];
      [ spec 2 1 "title" "Processing Declarative Queries over Structured Text" ];
      pars 1 3 13;
      [ spec 14 1 "subsection" "" ];
      [ spec 15 14 "title" "Evaluation Strategies for Declarative Queries" ];
      [
        spec 16 14 "subsubsection"
          "Approaches to cost based optimization of declarative query languages";
        spec 17 16 "par"
          "The XQuery language admits systematic optimization through algebraic \
           rewriting of its core expressions.";
        spec 18 16 "par"
          "Static typing in XQuery further narrows the search space considered \
           by the planner.";
      ];
      pars 14 19 28;
      [ spec 29 0 "section" "" ];
      [ spec 30 29 "title" "Storage Models for Hierarchical Data" ];
      pars 29 31 41;
      [ spec 42 29 "subsection" "" ];
      [ spec 43 42 "title" "Indexing Element Paths" ];
      pars 42 44 53;
      [ spec 54 0 "section" "" ];
      [ spec 55 54 "title" "Ranking and Relevance in Element Retrieval" ];
      pars 54 56 66;
      [ spec 67 54 "subsection" "" ];
      [ spec 68 67 "title" "Evaluation Benchmarks" ];
      pars 67 69 78;
      [ spec 79 0 "section" "" ];
      [ spec 80 79 "subsection" "" ];
      [
        spec 81 80 "par"
          "Heuristic optimization of physical operator trees remains effective \
           when statistics are stale.";
      ];
    ]

let figure1 () = Doctree.of_specs (figure1_specs ())

let figure1_context () = Context.create (figure1 ())

let dom_of_tree tree =
  let rec build n =
    let kids = List.map build (Doctree.children tree n) in
    let text = Doctree.text tree n in
    let content = if String.trim text = "" then kids else Dom.text text :: kids in
    Dom.element (Doctree.label tree n) content
  in
  match build 0 with
  | Dom.Element root -> { Dom.root; prolog_pis = [] }
  | Dom.Text _ | Dom.Comment _ | Dom.Pi _ -> assert false

let figure1_xml () = Printer.to_string (dom_of_tree (figure1 ()))

let figure3 () =
  Doctree.of_specs
    [
      spec 0 (-1) "n" "";
      spec 1 0 "n" "";
      spec 2 1 "n" "";
      spec 3 0 "n" "";
      spec 4 3 "n" "";
      spec 5 4 "n" "";
      spec 6 3 "n" "";
      spec 7 6 "n" "";
      spec 8 7 "n" "";
      spec 9 7 "n" "";
    ]

let figure3_context () = Context.create (figure3 ())

let figure4 () =
  Doctree.of_specs
    [
      spec 0 (-1) "n" "";
      spec 1 0 "n" "";
      spec 2 1 "n" "";
      spec 3 0 "n" "";
      spec 4 3 "n" "";
      spec 5 3 "n" "";
      spec 6 0 "n" "";
      spec 7 6 "n" "";
    ]

let figure4_context () = Context.create (figure4 ())

let query_keywords = [ "xquery"; "optimization" ]

let fragment_of_interest = [ 16; 17; 18 ]

let table1_rows =
  [
    ([ [ 17 ]; [ 18 ] ], [ 16; 17; 18 ]);
    ([ [ 16 ]; [ 17 ] ], [ 16; 17 ]);
    ([ [ 16 ]; [ 18 ] ], [ 16; 18 ]);
    ([ [ 17 ] ], [ 17 ]);
    ([ [ 17 ]; [ 81 ] ], [ 0; 1; 14; 16; 17; 79; 80; 81 ]);
    ([ [ 18 ]; [ 81 ] ], [ 0; 1; 14; 16; 18; 79; 80; 81 ]);
    ([ [ 17 ]; [ 18 ]; [ 81 ] ], [ 0; 1; 14; 16; 17; 18; 79; 80; 81 ]);
    ([ [ 16 ]; [ 17 ]; [ 18 ] ], [ 16; 17; 18 ]);
    ([ [ 16 ]; [ 17 ]; [ 81 ] ], [ 0; 1; 14; 16; 17; 79; 80; 81 ]);
    ([ [ 16 ]; [ 18 ]; [ 81 ] ], [ 0; 1; 14; 16; 18; 79; 80; 81 ]);
    ([ [ 16 ]; [ 17 ]; [ 18 ]; [ 81 ] ], [ 0; 1; 14; 16; 17; 18; 79; 80; 81 ]);
  ]

let table1_irrelevant_rows = [ 5; 6; 7; 9; 10; 11 ]
