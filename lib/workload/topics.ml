module Doctree = Xfrag_doctree.Doctree

type pattern =
  | Colocated_plus_context
  | Sibling_split
  | Title_body
  | Same_node
  | Cousins

type topic = { tree : Xfrag_doctree.Doctree.t; keywords : string list; target : int list }

let pattern_name = function
  | Colocated_plus_context -> "colocated+context"
  | Sibling_split -> "sibling-split"
  | Title_body -> "title-body"
  | Same_node -> "same-node"
  | Cousins -> "cousins"

let all_patterns =
  [ Colocated_plus_context; Sibling_split; Title_body; Same_node; Cousins ]

let keywords = [ "needleone"; "needletwo" ]

(* Rebuild [base] with extra keyword text appended to selected nodes. *)
let with_extra base extras =
  Doctree.of_specs
    (List.init (Doctree.size base) (fun id ->
         let extra =
           match List.assoc_opt id extras with Some s -> " " ^ s | None -> ""
         in
         {
           Doctree.spec_id = id;
           spec_parent = (match Doctree.parent base id with None -> -1 | Some p -> p);
           spec_label = Doctree.label base id;
           spec_text = Doctree.text base id ^ extra;
         }))

(* First subsection with at least two paragraph children. *)
let find_subsection_with_pars base =
  Doctree.fold
    (fun acc n ->
      match acc with
      | Some _ -> acc
      | None ->
          if Doctree.label base n = "subsection" then begin
            let pars =
              List.filter (fun c -> Doctree.label base c = "par") (Doctree.children base n)
            in
            match pars with p1 :: p2 :: _ -> Some (n, p1, p2) | _ -> None
          end
          else None)
    None base

(* First section with a title child and a direct paragraph child. *)
let find_section_with_title_and_par base =
  Doctree.fold
    (fun acc n ->
      match acc with
      | Some _ -> acc
      | None ->
          if Doctree.label base n = "section" then begin
            let kids = Doctree.children base n in
            let title = List.find_opt (fun c -> Doctree.label base c = "title") kids in
            let par = List.find_opt (fun c -> Doctree.label base c = "par") kids in
            match (title, par) with Some t, Some p -> Some (n, t, p) | _ -> None
          end
          else None)
    None base

(* First section owning two subsections that each have a paragraph. *)
let find_section_with_two_subsections base =
  Doctree.fold
    (fun acc n ->
      match acc with
      | Some _ -> acc
      | None ->
          if Doctree.label base n = "section" then begin
            let subs =
              List.filter
                (fun c -> Doctree.label base c = "subsection")
                (Doctree.children base n)
            in
            let par_of sub =
              List.find_opt (fun c -> Doctree.label base c = "par") (Doctree.children base sub)
            in
            match subs with
            | s1 :: s2 :: _ -> (
                match (par_of s1, par_of s2) with
                | Some p1, Some p2 -> Some (n, s1, p1, s2, p2)
                | _ -> None)
            | _ -> None
          end
          else None)
    None base

let generate ~seed pattern =
  let base = Docgen.generate { Docgen.default with seed; sections = 5 } in
  match pattern with
  | Colocated_plus_context -> (
      match find_subsection_with_pars base with
      | None -> None
      | Some (sub, p1, p2) ->
          Some
            {
              tree =
                with_extra base
                  [ (p1, "needleone needletwo"); (p2, "needleone"); (sub, "needletwo") ];
              keywords;
              target = [ sub; p1; p2 ];
            })
  | Sibling_split -> (
      match find_subsection_with_pars base with
      | None -> None
      | Some (sub, p1, p2) ->
          Some
            {
              tree = with_extra base [ (p1, "needleone"); (p2, "needletwo") ];
              keywords;
              target = [ sub; p1; p2 ];
            })
  | Title_body -> (
      match find_section_with_title_and_par base with
      | None -> None
      | Some (sec, title, par) ->
          Some
            {
              tree = with_extra base [ (title, "needleone"); (par, "needletwo") ];
              keywords;
              target = [ sec; title; par ];
            })
  | Same_node -> (
      match find_subsection_with_pars base with
      | None -> None
      | Some (_, p1, _) ->
          Some
            {
              tree = with_extra base [ (p1, "needleone needletwo") ];
              keywords;
              target = [ p1 ];
            })
  | Cousins -> (
      match find_section_with_two_subsections base with
      | None -> None
      | Some (sec, s1, p1, s2, p2) ->
          Some
            {
              tree = with_extra base [ (p1, "needleone"); (p2, "needletwo") ];
              keywords;
              target = [ sec; s1; p1; s2; p2 ];
            })

let generate_many ~seeds pattern =
  List.filter_map (fun seed -> generate ~seed pattern) seeds
