module Doctree = Xfrag_doctree.Doctree
module Prng = Xfrag_util.Prng
module Zipf = Xfrag_util.Zipf
module Context = Xfrag_core.Context

type config = {
  seed : int;
  sections : int;
  subsections_per_section : int;
  subsubsections_per_subsection : int;
  paragraphs_per_container : int;
  words_per_paragraph : int;
  vocabulary_size : int;
  zipf_exponent : float;
}

let default =
  {
    seed = 42;
    sections = 5;
    subsections_per_section = 3;
    subsubsections_per_subsection = 0;
    paragraphs_per_container = 6;
    words_per_paragraph = 40;
    vocabulary_size = 1000;
    zipf_exponent = 1.0;
  }

let deep =
  {
    default with
    sections = 3;
    subsections_per_section = 2;
    subsubsections_per_subsection = 3;
    paragraphs_per_container = 3;
    words_per_paragraph = 25;
  }

let wide =
  {
    default with
    sections = 14;
    subsections_per_section = 0;
    paragraphs_per_container = 10;
  }

let term r = Printf.sprintf "term%04d" r

(* mean ± 50%; at least 1 for positive means, 0 stays 0 *)
let jitter prng mean =
  if mean <= 0 then 0
  else if mean = 1 then 1
  else begin
    let half = max 1 (mean / 2) in
    max 1 (mean - half + Prng.int prng (2 * half + 1))
  end

let paragraph_text prng zipf words =
  let buf = Buffer.create (words * 9) in
  for i = 0 to words - 1 do
    if i > 0 then Buffer.add_char buf ' ';
    Buffer.add_string buf (term (Zipf.sample zipf prng))
  done;
  Buffer.contents buf

let title_text prng zipf =
  paragraph_text prng zipf (3 + Prng.int prng 4)

let generate cfg =
  if cfg.sections < 1 then invalid_arg "Docgen.generate: sections must be positive";
  let prng = Prng.create cfg.seed in
  let zipf = Zipf.create ~n:cfg.vocabulary_size ~s:cfg.zipf_exponent in
  let specs = ref [] in
  let counter = ref 0 in
  let add parent label text =
    let id = !counter in
    incr counter;
    specs :=
      { Doctree.spec_id = id; spec_parent = parent; spec_label = label; spec_text = text }
      :: !specs;
    id
  in
  let add_paragraphs parent =
    let n = jitter prng cfg.paragraphs_per_container in
    for _ = 1 to n do
      ignore
        (add parent "par" (paragraph_text prng zipf (jitter prng cfg.words_per_paragraph)))
    done
  in
  let root = add (-1) "article" "" in
  ignore (add root "title" (title_text prng zipf));
  for _ = 1 to cfg.sections do
    let sec = add root "section" "" in
    ignore (add sec "title" (title_text prng zipf));
    add_paragraphs sec;
    let subs = jitter prng cfg.subsections_per_section in
    for _ = 1 to subs do
      let sub = add sec "subsection" "" in
      ignore (add sub "title" (title_text prng zipf));
      add_paragraphs sub;
      let subsubs = jitter prng cfg.subsubsections_per_subsection in
      for _ = 1 to subsubs do
        let subsub = add sub "subsubsection" "" in
        ignore (add subsub "title" (title_text prng zipf));
        add_paragraphs subsub
      done
    done
  done;
  Doctree.of_specs !specs

let generate_context cfg = Context.create (generate cfg)

let generate_xml cfg =
  let tree = generate cfg in
  let rec build n =
    let kids = List.map build (Doctree.children tree n) in
    let text = Doctree.text tree n in
    let content =
      if String.trim text = "" then kids else Xfrag_xml.Xml_dom.text text :: kids
    in
    Xfrag_xml.Xml_dom.element (Doctree.label tree n) content
  in
  match build 0 with
  | Xfrag_xml.Xml_dom.Element root ->
      Xfrag_xml.Xml_printer.to_string { Xfrag_xml.Xml_dom.root; prolog_pis = [] }
  | Xfrag_xml.Xml_dom.Text _ | Xfrag_xml.Xml_dom.Comment _ | Xfrag_xml.Xml_dom.Pi _ ->
      assert false

let with_planted_keywords cfg ~plant =
  let tree = generate cfg in
  let paragraphs =
    Doctree.fold
      (fun acc n -> if Doctree.label tree n = "par" then n :: acc else acc)
      [] tree
    |> List.rev |> Array.of_list
  in
  let prng = Prng.create (cfg.seed + 7919) in
  (* Rebuild specs with the planted keywords appended to chosen nodes. *)
  let extra : (int, string list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (keyword, count) ->
      if count > Array.length paragraphs then
        invalid_arg
          (Printf.sprintf
             "Docgen.with_planted_keywords: %d occurrences of %S requested but \
              only %d paragraphs exist"
             count keyword (Array.length paragraphs));
      let slots = Array.copy paragraphs in
      Prng.shuffle prng slots;
      for i = 0 to count - 1 do
        let n = slots.(i) in
        Hashtbl.replace extra n
          (keyword :: Option.value ~default:[] (Hashtbl.find_opt extra n))
      done)
    plant;
  let specs =
    List.init (Doctree.size tree) (fun id ->
        let text =
          match Hashtbl.find_opt extra id with
          | None -> Doctree.text tree id
          | Some ks -> Doctree.text tree id ^ " " ^ String.concat " " ks
        in
        {
          Doctree.spec_id = id;
          spec_parent = (match Doctree.parent tree id with None -> -1 | Some p -> p);
          spec_label = Doctree.label tree id;
          spec_text = text;
        })
  in
  Doctree.of_specs specs
