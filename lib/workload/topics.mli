(** Topic generation: documents with planted keyword patterns and known
    target fragments, for effectiveness evaluation.

    Each pattern encodes one way two query keywords can split across the
    nodes of the desired retrieval unit (the paper's Figure 2 taxonomy):

    - {!Colocated_plus_context} — the Figure 1/Figure 8 situation: one
      paragraph holds both keywords, a sibling paragraph holds only k1,
      the enclosing container holds only k2.  The intended answer is the
      self-contained container fragment ⟨container, par, par⟩ — the case
      smallest-subtree semantics cannot produce.
    - {!Sibling_split} — k1 and k2 in two sibling paragraphs; intended
      answer ⟨container, par1, par2⟩ (prior semantics produce the same
      node set here, as full subtrees or witness trees).
    - {!Title_body} — k1 in a section's title, k2 in one of its
      paragraphs; intended answer ⟨section, title, par⟩.
    - {!Same_node} — both keywords in one paragraph; intended answer
      ⟨par⟩ (a control: every semantics should succeed here).
    - {!Cousins} — k1 and k2 in paragraphs of two different subsections
      of the same section; intended answer spans both subsections:
      ⟨section, sub1, par1, sub2, par2⟩. *)

type pattern =
  | Colocated_plus_context
  | Sibling_split
  | Title_body
  | Same_node
  | Cousins

type topic = {
  tree : Xfrag_doctree.Doctree.t;
  keywords : string list;  (** always two fresh planted keywords *)
  target : int list;  (** node ids of the intended answer fragment *)
}

val pattern_name : pattern -> string

val all_patterns : pattern list

val generate : seed:int -> pattern -> topic option
(** Builds a synthetic article (deterministic in [seed]) and plants the
    pattern; [None] if the generated article lacks the required
    structure (rare). *)

val generate_many : seeds:int list -> pattern -> topic list
