(** The paper's figures as concrete documents.

    The running example (Figure 1 / Figure 8) is an 82-node
    document-centric article, nodes n0…n81.  The paper prescribes only
    part of the structure; the rest is filler that respects every stated
    constraint:

    - parent chains n17→n16→n14→n1→n0 and n81→n80→n79→n0
      (from the joins in Table 1);
    - keyword [xquery] occurs in exactly \{n17, n18\} and keyword
      [optimization] in exactly \{n16, n17, n81\} (the F1 and F2 of §4);
    - n16's children include n17 and n18, so that f17 ⋈ f18 =
      ⟨n16, n17, n18⟩ — the paper's fragment of interest;
    - node ids are pre-order ranks of an article/section/subsection/
      paragraph hierarchy, 82 nodes in total. *)

val figure1 : unit -> Xfrag_doctree.Doctree.t
(** The Figure 1 document tree. *)

val figure1_context : unit -> Xfrag_core.Context.t

val figure1_xml : unit -> string
(** The same document serialized as XML text (round-trips through the
    parser to an identical tree; tested). *)

val figure3 : unit -> Xfrag_doctree.Doctree.t
(** The 10-node tree of Figure 3(a): n0 root; n1→n2; n3 with children n4
    (→n5) and n6 (→n7 with children n8, n9).  Fragment join of ⟨n4,n5⟩
    and ⟨n7,n9⟩ is ⟨n3,n4,n5,n6,n7,n9⟩ as in Figure 3(b). *)

val figure3_context : unit -> Xfrag_core.Context.t

val figure4 : unit -> Xfrag_doctree.Doctree.t
(** The 8-node tree behind Figure 4: n0 root with children n1 (→n2), n3
    (→n4, n5), n6 (→n7).  The set \{⟨n1⟩,⟨n3⟩,⟨n5⟩,⟨n6⟩,⟨n7⟩\} reduces to
    \{⟨n1⟩,⟨n5⟩,⟨n7⟩\}. *)

val figure4_context : unit -> Xfrag_core.Context.t

val query_keywords : string list
(** ["xquery"; "optimization"] — the running example query. *)

val fragment_of_interest : int list
(** [n16; n17; n18] — Figure 8(b). *)

val table1_rows : (int list list * int list) list
(** Table 1 verbatim: for each row, the list of input fragments (each a
    node-id list) to be joined, and the expected output fragment.  Rows
    appear in the paper's order, so rows 1–7 (indices 0–6) are the unique
    outputs and rows 8–11 are the duplicates. *)

val table1_irrelevant_rows : int list
(** 1-based row numbers marked "Irrelevant (to be filtered)" in Table 1
    under the size ≤ 3 filter: rows 5, 6, 7, 9, 10, 11. *)
