(** Synthetic document-centric XML generator.

    Substitutes for the real narrative corpora (e.g. INEX) that the
    paper's setting assumes: article / section / subsection / paragraph
    hierarchies with titles, and paragraph text drawn from a synthetic
    vocabulary under a Zipf distribution, so keyword selectivities span
    orders of magnitude as in real text.  Fully deterministic for a given
    config (explicit-state PRNG). *)

type config = {
  seed : int;
  sections : int;
  subsections_per_section : int;  (** mean; actual is mean ± 50% *)
  subsubsections_per_subsection : int;
      (** mean; 0 disables the fourth structural level *)
  paragraphs_per_container : int;  (** mean, per section and subsection *)
  words_per_paragraph : int;  (** mean *)
  vocabulary_size : int;
  zipf_exponent : float;
}

val default : config
(** 5 sections, 3 subsections each, no subsubsections, 6 paragraphs per
    container, 40 words per paragraph, 1000-term vocabulary, exponent
    1.0, seed 42. *)

val deep : config
(** An INEX-article-like profile: fewer, deeper sections with
    subsubsection nesting and shorter paragraphs — exercises taller
    fragment shapes. *)

val wide : config
(** A flat profile: many sections, no subsections — exercises wide
    fanouts and long sibling runs. *)

val term : int -> string
(** [term r] is the synthetic vocabulary word of Zipf rank [r]
    (["term0000"] is the most frequent). *)

val generate : config -> Xfrag_doctree.Doctree.t

val generate_context : config -> Xfrag_core.Context.t

val generate_xml : config -> string
(** The same document as XML text. *)

val with_planted_keywords :
  config ->
  plant:(string * int) list ->
  Xfrag_doctree.Doctree.t
(** Generate, then append each keyword to the text of [count] paragraph
    nodes chosen deterministically, so tests and benches can control
    posting-list sizes exactly.  The planted words are fresh (not in the
    synthetic vocabulary).
    @raise Invalid_argument if a count exceeds the number of paragraphs. *)
