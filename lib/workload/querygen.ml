module Prng = Xfrag_util.Prng
module Inverted_index = Xfrag_doctree.Inverted_index
module Context = Xfrag_core.Context
module Query = Xfrag_core.Query

type spec = { keyword_count : int; min_postings : int; max_postings : int }

let band_vocabulary (ctx : Context.t) spec =
  Inverted_index.vocabulary ctx.index
  |> List.filter (fun k ->
         let c = Inverted_index.node_count ctx.index k in
         c >= spec.min_postings && c <= spec.max_postings)
  |> Array.of_list

let pick_keywords ~seed spec ctx =
  let vocab = band_vocabulary ctx spec in
  if Array.length vocab < spec.keyword_count then None
  else begin
    let prng = Prng.create seed in
    let pool = Array.copy vocab in
    Prng.shuffle prng pool;
    Some (Array.to_list (Array.sub pool 0 spec.keyword_count))
  end

let queries ~seed ~count ?(filter = Xfrag_core.Filter.True) spec ctx =
  let vocab = band_vocabulary ctx spec in
  if Array.length vocab < spec.keyword_count then []
  else begin
    let prng = Prng.create seed in
    let seen = Hashtbl.create count in
    let out = ref [] in
    let attempts = ref 0 in
    while List.length !out < count && !attempts < count * 20 do
      incr attempts;
      let pool = Array.copy vocab in
      Prng.shuffle prng pool;
      let ks =
        Array.sub pool 0 spec.keyword_count |> Array.to_list
        |> List.sort String.compare
      in
      let key = String.concat "," ks in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.replace seen key ();
        out := Query.make ~filter ks :: !out
      end
    done;
    List.rev !out
  end
