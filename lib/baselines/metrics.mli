(** Set-retrieval quality metrics over fragment answers.

    Element-retrieval evaluations (INEX) score systems by how well the
    returned components match assessor-marked target components; the
    natural fragment analogue scores node-set overlap.  A retrieved
    fragment counts as a hit for a target when their Jaccard similarity
    reaches a threshold (1.0 = exact match). *)

val jaccard : Xfrag_core.Fragment.t -> Xfrag_core.Fragment.t -> float
(** |A ∩ B| / |A ∪ B| of the node sets. *)

val best_match : Xfrag_core.Fragment.t -> Xfrag_core.Frag_set.t -> float
(** Highest Jaccard similarity against any member; 0 for the empty set. *)

type scores = {
  precision : float;  (** retrieved fragments matching some target *)
  recall : float;  (** targets matched by some retrieved fragment *)
  f1 : float;
  retrieved : int;
  relevant : int;  (** number of targets *)
}

val evaluate :
  ?threshold:float ->
  retrieved:Xfrag_core.Frag_set.t ->
  targets:Xfrag_core.Frag_set.t ->
  unit ->
  scores
(** Default [threshold] is 1.0 (exact fragment match).  Conventions:
    precision is 1 when nothing was retrieved; recall is 1 when there are
    no targets; F1 is 0 when precision + recall = 0. *)

val pp : Format.formatter -> scores -> unit
