module Doctree = Xfrag_doctree.Doctree
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set

let answer ctx keywords =
  match Keyword_matches.build ctx keywords with
  | None -> []
  | Some km ->
      let tree = ctx.Xfrag_core.Context.tree in
      let cands = Array.of_list (Keyword_matches.candidates km) in
      let m = List.length (Keyword_matches.keywords km) in
      (* Candidate children: for each candidate, the maximal candidates
         strictly inside its interval.  Candidates are in pre-order, so a
         stack sweep recovers the candidate forest. *)
      let children = Array.make (Array.length cands) [] in
      let stack = ref [] in
      Array.iteri
        (fun i v ->
          let interval_end v = v + Doctree.subtree_size tree v in
          let rec pop () =
            match !stack with
            | j :: rest when v >= interval_end cands.(j) ->
                stack := rest;
                pop ()
            | _ -> ()
          in
          pop ();
          (match !stack with
          | parent :: _ -> children.(parent) <- i :: children.(parent)
          | [] -> ());
          stack := i :: !stack)
        cands;
      let is_elca i =
        let v = cands.(i) in
        let ok = ref true in
        for k = 0 to m - 1 do
          let excl =
            List.fold_left
              (fun acc j -> acc - Keyword_matches.subtree_count km k cands.(j))
              (Keyword_matches.subtree_count km k v)
              children.(i)
          in
          if excl <= 0 then ok := false
        done;
        !ok
      in
      let out = ref [] in
      for i = Array.length cands - 1 downto 0 do
        if is_elca i then out := cands.(i) :: !out
      done;
      !out

let answer_subtrees ctx keywords =
  answer ctx keywords
  |> List.map (fun v ->
         Fragment.of_sorted_unchecked (Doctree.subtree_nodes ctx.Xfrag_core.Context.tree v))
  |> Frag_set.of_list
