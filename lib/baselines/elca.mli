(** Exclusive LCA semantics (XRank, Guo et al., SIGMOD 2003 — the
    paper's reference [7]).

    A node v is an ELCA iff its subtree contains every keyword even
    after excluding the subtrees of v's *candidate children* — the
    maximal proper descendants of v whose own subtrees contain every
    keyword.  Every SLCA is an ELCA; ELCA additionally keeps ancestors
    that have their own exclusive witnesses. *)

val answer : Xfrag_core.Context.t -> string list -> Xfrag_doctree.Doctree.node list
(** ELCA nodes in pre-order; empty if some keyword has no match. *)

val answer_subtrees : Xfrag_core.Context.t -> string list -> Xfrag_core.Frag_set.t
(** Each ELCA node expanded to its full rooted subtree. *)
