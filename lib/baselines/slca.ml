module Doctree = Xfrag_doctree.Doctree
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set

let answer ctx keywords =
  match Keyword_matches.build ctx keywords with
  | None -> []
  | Some km ->
      let cands = Keyword_matches.candidates km in
      (* v is an SLCA iff no candidate lies strictly inside v's pre-order
         interval.  Candidates are in pre-order: v's candidate successor
         is inside v iff it starts before the interval ends. *)
      let tree = ctx.Xfrag_core.Context.tree in
      let rec sift = function
        | [] -> []
        | v :: rest ->
            let last = v + Doctree.subtree_size tree v in
            let inside = List.exists (fun u -> u > v && u < last) rest in
            if inside then sift rest else v :: sift (List.filter (fun u -> u >= last) rest)
      in
      sift cands

let answer_subtrees ctx keywords =
  answer ctx keywords
  |> List.map (fun v ->
         Fragment.of_sorted_unchecked (Doctree.subtree_nodes ctx.Xfrag_core.Context.tree v))
  |> Frag_set.of_list
