(** Smallest LCA semantics (Xu & Papakonstantinou, SIGMOD 2005 — the
    paper's reference [20]): the answer to a keyword query is the set of
    nodes v such that v's subtree contains every keyword and no proper
    descendant of v does.

    This is the "smallest subtree" semantics the paper argues is too
    narrow for document-centric XML (§1): on the Figure 1 document and
    query \{XQuery, optimization\} it returns exactly \{n17\}, never the
    self-contained fragment ⟨n16, n17, n18⟩. *)

val answer : Xfrag_core.Context.t -> string list -> Xfrag_doctree.Doctree.node list
(** SLCA nodes in pre-order; empty if some keyword has no match. *)

val answer_subtrees : Xfrag_core.Context.t -> string list -> Xfrag_core.Frag_set.t
(** Each SLCA node expanded to its full rooted subtree, as fragments —
    the retrieval unit an element-retrieval system would return. *)
