module Doctree = Xfrag_doctree.Doctree
module Inverted_index = Xfrag_doctree.Inverted_index
module Tokenizer = Xfrag_doctree.Tokenizer
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set

type scored = { fragment : Fragment.t; score : float }

let idf (ctx : Xfrag_core.Context.t) keyword =
  let df = Inverted_index.node_count ctx.index keyword in
  if df = 0 then 0.0
  else begin
    let n = float_of_int (Doctree.size ctx.tree) in
    Float.log ((n +. 1.0) /. (float_of_int df +. 1.0))
  end

let term_frequency (ctx : Xfrag_core.Context.t) f keyword =
  let k = Tokenizer.normalize keyword in
  Xfrag_util.Int_sorted.fold
    (fun acc n ->
      let tokens =
        Tokenizer.tokenize (Doctree.label ctx.tree n ^ " " ^ Doctree.text ctx.tree n)
      in
      acc + List.length (List.filter (String.equal k) tokens))
    0 (Fragment.nodes f)

let score ctx ~keywords f =
  let raw =
    List.fold_left
      (fun acc k -> acc +. (float_of_int (term_frequency ctx f k) *. idf ctx k))
      0.0 keywords
  in
  raw /. (1.0 +. Float.log (float_of_int (Fragment.size f)))

let rank ctx ~keywords set =
  Frag_set.elements set
  |> List.map (fun fragment -> { fragment; score = score ctx ~keywords fragment })
  |> List.stable_sort (fun a b -> compare b.score a.score)

let top_k ctx ~keywords ~k set =
  rank ctx ~keywords set |> List.filteri (fun i _ -> i < k)
