module Doctree = Xfrag_doctree.Doctree
module Lca = Xfrag_doctree.Lca
module Int_sorted = Xfrag_util.Int_sorted
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Join = Xfrag_core.Join

let answer (ctx : Xfrag_core.Context.t) keywords =
  match Keyword_matches.build ctx keywords with
  | None -> (Frag_set.empty ())
  | Some km ->
      let m = List.length (Keyword_matches.keywords km) in
      let slcas = Slca.answer ctx keywords in
      let fragment_for v =
        let last = v + Doctree.subtree_size ctx.tree v in
        let witness k =
          (* Closest match to v inside v's subtree, by tree distance. *)
          let in_subtree =
            Int_sorted.filter (fun n -> n >= v && n < last) (Keyword_matches.matches km k)
          in
          Int_sorted.fold
            (fun best n ->
              match best with
              | None -> Some n
              | Some b ->
                  if Lca.distance ctx.lca v n < Lca.distance ctx.lca v b then Some n
                  else best)
            None in_subtree
        in
        let witnesses = List.init m witness |> List.filter_map Fun.id in
        match witnesses with
        | [] -> None
        | ws -> Some (Join.fragment_many ctx (List.map Fragment.singleton ws))
      in
      Frag_set.of_list (List.filter_map fragment_for slcas)
