(** The "smallest subtree containing all the keywords" semantics that
    §1 attributes to prior work: for each SLCA node, the minimal
    connected fragment spanning one witness per keyword.

    On the running example this returns exactly ⟨n17⟩ — the paragraph —
    demonstrating the paper's motivating complaint: the self-contained
    unit ⟨n16, n17, n18⟩ is never produced by this semantics. *)

val answer : Xfrag_core.Context.t -> string list -> Xfrag_core.Frag_set.t
(** One minimal witness fragment per SLCA node.  Witnesses are chosen
    greedily (the match closest to the SLCA per keyword), which yields
    the unique minimal fragment whenever each keyword has a single match
    in the SLCA's subtree. *)
