(** Shared scaffolding for the LCA-based baselines: per-keyword match
    sets and per-node subtree occurrence counts. *)

type t

val build : Xfrag_core.Context.t -> string list -> t option
(** [None] if some keyword has no matches (conjunctive semantics: the
    query answer is empty). *)

val keywords : t -> string list

val matches : t -> int -> Xfrag_util.Int_sorted.t
(** Match nodes of the i-th keyword (0-based). *)

val subtree_count : t -> int -> Xfrag_doctree.Doctree.node -> int
(** Occurrences of the i-th keyword within the full rooted subtree of a
    node (inclusive). *)

val contains_all : t -> Xfrag_doctree.Doctree.node -> bool
(** Does the node's rooted subtree contain every keyword? *)

val candidates : t -> Xfrag_doctree.Doctree.node list
(** All nodes whose rooted subtree contains every keyword, in pre-order.
    Non-empty iff [build] returned [Some] (the document root qualifies). *)
