(** IR-style scoring of answer fragments (tf·idf), for contrast with the
    paper's database-style filtering (§6 positions the two approaches as
    complements). *)

type scored = { fragment : Xfrag_core.Fragment.t; score : float }

val idf : Xfrag_core.Context.t -> string -> float
(** log((N+1) / (df+1)) over nodes; 0 for unseen keywords. *)

val score : Xfrag_core.Context.t -> keywords:string list -> Xfrag_core.Fragment.t -> float
(** Σ_k tf(f, k) · idf(k) / (1 + log size(f)) — term frequency over the
    fragment's member nodes with a mild length normalization. *)

val rank :
  Xfrag_core.Context.t -> keywords:string list -> Xfrag_core.Frag_set.t -> scored list
(** Fragments sorted by descending score (ties broken by fragment
    order, smallest first). *)

val top_k :
  Xfrag_core.Context.t -> keywords:string list -> k:int -> Xfrag_core.Frag_set.t -> scored list
