module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Int_sorted = Xfrag_util.Int_sorted

let jaccard a b =
  let na = Fragment.nodes a and nb = Fragment.nodes b in
  let inter = Int_sorted.cardinal (Int_sorted.inter na nb) in
  let union = Int_sorted.cardinal na + Int_sorted.cardinal nb - inter in
  if union = 0 then 0.0 else float_of_int inter /. float_of_int union

let best_match f set =
  Frag_set.fold (fun best g -> Float.max best (jaccard f g)) 0.0 set

type scores = {
  precision : float;
  recall : float;
  f1 : float;
  retrieved : int;
  relevant : int;
}

let evaluate ?(threshold = 1.0) ~retrieved ~targets () =
  let n_ret = Frag_set.cardinal retrieved in
  let n_rel = Frag_set.cardinal targets in
  let hits_ret =
    Frag_set.fold
      (fun acc f -> if best_match f targets >= threshold then acc + 1 else acc)
      0 retrieved
  in
  let hits_rel =
    Frag_set.fold
      (fun acc t -> if best_match t retrieved >= threshold then acc + 1 else acc)
      0 targets
  in
  let precision = if n_ret = 0 then 1.0 else float_of_int hits_ret /. float_of_int n_ret in
  let recall = if n_rel = 0 then 1.0 else float_of_int hits_rel /. float_of_int n_rel in
  let f1 =
    if precision +. recall = 0.0 then 0.0
    else 2.0 *. precision *. recall /. (precision +. recall)
  in
  { precision; recall; f1; retrieved = n_ret; relevant = n_rel }

let pp ppf s =
  Format.fprintf ppf "P=%.2f R=%.2f F1=%.2f (retrieved %d, relevant %d)" s.precision
    s.recall s.f1 s.retrieved s.relevant
