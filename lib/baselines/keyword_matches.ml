module Doctree = Xfrag_doctree.Doctree
module Inverted_index = Xfrag_doctree.Inverted_index
module Int_sorted = Xfrag_util.Int_sorted

type t = {
  keywords : string list;
  match_sets : Int_sorted.t array;
  counts : int array array;  (* counts.(i).(n): occurrences of keyword i in subtree n *)
}

let build (ctx : Xfrag_core.Context.t) keywords =
  let keywords = List.map Xfrag_doctree.Tokenizer.normalize keywords in
  let match_sets =
    Array.of_list (List.map (Inverted_index.lookup ctx.index) keywords)
  in
  if Array.exists Int_sorted.is_empty match_sets then None
  else begin
    let n = Doctree.size ctx.tree in
    let counts =
      Array.map
        (fun set ->
          let c = Array.make n 0 in
          Int_sorted.iter (fun node -> c.(node) <- 1) set;
          (* Reverse pre-order: children precede parents in the sweep, so
             each node accumulates its full subtree count. *)
          for node = n - 1 downto 1 do
            let p = Doctree.parent_exn ctx.tree node in
            c.(p) <- c.(p) + c.(node)
          done;
          c)
        match_sets
    in
    Some { keywords; match_sets; counts }
  end

let keywords t = t.keywords

let matches t i = t.match_sets.(i)

let subtree_count t i node = t.counts.(i).(node)

let contains_all t node = Array.for_all (fun c -> c.(node) > 0) t.counts

let candidates t =
  let n = Array.length t.counts.(0) in
  let out = ref [] in
  for node = n - 1 downto 0 do
    if contains_all t node then out := node :: !out
  done;
  !out
