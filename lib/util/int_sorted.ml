type t = int array

let empty : t = [||]

let is_empty a = Array.length a = 0

let singleton x = [| x |]

let dedup_sorted a =
  let n = Array.length a in
  if n = 0 then a
  else begin
    let w = ref 1 in
    for r = 1 to n - 1 do
      if a.(r) <> a.(!w - 1) then begin
        a.(!w) <- a.(r);
        incr w
      end
    done;
    if !w = n then a else Array.sub a 0 !w
  end

let of_array a =
  let b = Array.copy a in
  Array.sort compare b;
  dedup_sorted b

let of_list xs = of_array (Array.of_list xs)

let to_list = Array.to_list

let cardinal = Array.length

let min_elt a =
  if Array.length a = 0 then invalid_arg "Int_sorted.min_elt: empty"
  else a.(0)

let max_elt a =
  if Array.length a = 0 then invalid_arg "Int_sorted.max_elt: empty"
  else a.(Array.length a - 1)

let mem x a =
  let lo = ref 0 and hi = ref (Array.length a - 1) in
  let found = ref false in
  while not !found && !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    let v = a.(mid) in
    if v = x then found := true
    else if v < x then lo := mid + 1
    else hi := mid - 1
  done;
  !found

let equal a b =
  let n = Array.length a in
  n = Array.length b
  &&
  let rec go i = i >= n || (a.(i) = b.(i) && go (i + 1)) in
  go 0

let compare a b =
  let na = Array.length a and nb = Array.length b in
  if na <> nb then Stdlib.compare na nb
  else
    let rec go i =
      if i >= na then 0
      else
        let c = Stdlib.compare a.(i) b.(i) in
        if c <> 0 then c else go (i + 1)
    in
    go 0

let subset a b =
  let na = Array.length a and nb = Array.length b in
  if na > nb then false
  else begin
    (* Merge walk: advance through b looking for each element of a. *)
    let i = ref 0 and j = ref 0 and ok = ref true in
    while !ok && !i < na do
      if !j >= nb then ok := false
      else if b.(!j) = a.(!i) then begin incr i; incr j end
      else if b.(!j) < a.(!i) then incr j
      else ok := false
    done;
    !ok
  end

let union a b =
  let na = Array.length a and nb = Array.length b in
  if na = 0 then b
  else if nb = 0 then a
  else begin
    let out = Array.make (na + nb) 0 in
    let i = ref 0 and j = ref 0 and w = ref 0 in
    while !i < na && !j < nb do
      let x = a.(!i) and y = b.(!j) in
      if x < y then begin out.(!w) <- x; incr i end
      else if y < x then begin out.(!w) <- y; incr j end
      else begin out.(!w) <- x; incr i; incr j end;
      incr w
    done;
    while !i < na do out.(!w) <- a.(!i); incr i; incr w done;
    while !j < nb do out.(!w) <- b.(!j); incr j; incr w done;
    if !w = na + nb then out else Array.sub out 0 !w
  end

let inter a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make (min na nb) 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  while !i < na && !j < nb do
    let x = a.(!i) and y = b.(!j) in
    if x < y then incr i
    else if y < x then incr j
    else begin out.(!w) <- x; incr w; incr i; incr j end
  done;
  Array.sub out 0 !w

let diff a b =
  let na = Array.length a and nb = Array.length b in
  let out = Array.make na 0 in
  let i = ref 0 and j = ref 0 and w = ref 0 in
  while !i < na do
    if !j >= nb || a.(!i) < b.(!j) then begin
      out.(!w) <- a.(!i); incr w; incr i
    end
    else if a.(!i) = b.(!j) then begin incr i; incr j end
    else incr j
  done;
  if !w = na then out else Array.sub out 0 !w

let add x a = if mem x a then a else union [| x |] a

let remove x a = if mem x a then diff a [| x |] else a

let union_many sets =
  let rec round = function
    | [] -> empty
    | [ s ] -> s
    | s1 :: s2 :: rest -> round (union s1 s2 :: pair rest)
  and pair = function
    | s1 :: s2 :: rest -> union s1 s2 :: pair rest
    | rest -> rest
  in
  round sets

let hash a =
  let h = ref 0x811c9dc5 in
  for i = 0 to Array.length a - 1 do
    h := (!h * 16777619) lxor a.(i);
    h := !h land max_int
  done;
  !h

let iter f a = Array.iter f a

let fold f init a = Array.fold_left f init a

let for_all p a = Array.for_all p a

let exists p a = Array.exists p a

let filter p a =
  let out = Array.make (Array.length a) 0 in
  let w = ref 0 in
  Array.iter (fun x -> if p x then begin out.(!w) <- x; incr w end) a;
  Array.sub out 0 !w

let pp ppf a =
  Format.fprintf ppf "@[<h>\xE2\x9F\xA8";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf ppf ",@ ";
      Format.fprintf ppf "n%d" x)
    a;
  Format.fprintf ppf "\xE2\x9F\xA9@]"
