(** Sets of integers represented as strictly increasing immutable arrays.

    This is the backing representation for document fragments: a fragment
    is the sorted array of its pre-order node identifiers.  All operations
    treat their inputs as read-only and return fresh arrays.  Every input
    array must be strictly increasing; [of_list] and [of_array] sort and
    de-duplicate arbitrary input. *)

type t = int array

val empty : t

val is_empty : t -> bool

val singleton : int -> t

val of_list : int list -> t
(** [of_list xs] sorts and de-duplicates [xs]. *)

val of_array : int array -> t
(** [of_array a] sorts and de-duplicates a copy of [a]; [a] is unchanged. *)

val to_list : t -> int list

val cardinal : t -> int

val min_elt : t -> int
(** Smallest element.  @raise Invalid_argument on the empty set. *)

val max_elt : t -> int
(** Largest element.  @raise Invalid_argument on the empty set. *)

val mem : int -> t -> bool
(** Binary search; O(log n). *)

val equal : t -> t -> bool

val compare : t -> t -> int
(** Total order: by cardinality, then lexicographic.  Suitable for use as
    a [Map]/[Set] key. *)

val subset : t -> t -> bool
(** [subset a b] is true iff every element of [a] is in [b]; O(|a|+|b|). *)

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val add : int -> t -> t

val remove : int -> t -> t

val union_many : t list -> t
(** Union of any number of sets; O(total log k) via pairwise merging. *)

val hash : t -> int
(** Polynomial hash consistent with [equal]. *)

val iter : (int -> unit) -> t -> unit

val fold : ('a -> int -> 'a) -> 'a -> t -> 'a

val for_all : (int -> bool) -> t -> bool

val exists : (int -> bool) -> t -> bool

val filter : (int -> bool) -> t -> t

val pp : Format.formatter -> t -> unit
(** Prints as [⟨n1, n2, …⟩], matching the paper's fragment notation. *)
