(** Zipf-distributed sampling over ranks [0 .. n-1].

    Document-centric text has heavily skewed term frequencies; the
    workload generator draws vocabulary terms from this distribution so
    that keyword selectivities span several orders of magnitude, as they
    do in real corpora such as INEX. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over ranks [0..n-1] with exponent
    [s] (s = 0 is uniform; s ≈ 1 is classic Zipf).
    @raise Invalid_argument if [n <= 0] or [s < 0]. *)

val sample : t -> Prng.t -> int
(** Draw a rank; rank 0 is the most frequent. *)

val probability : t -> int -> float
(** [probability t r] is the probability mass of rank [r]. *)

val size : t -> int
