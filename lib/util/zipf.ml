type t = { cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let w = Array.init n (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) s) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  let cdf =
    Array.map
      (fun x ->
        acc := !acc +. (x /. total);
        !acc)
      w
  in
  cdf.(n - 1) <- 1.0;
  { cdf }

let size t = Array.length t.cdf

let sample t prng =
  let u = Prng.float prng 1.0 in
  (* Binary search for the first rank whose cdf exceeds u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) > u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t r =
  if r < 0 || r >= Array.length t.cdf then invalid_arg "Zipf.probability: rank out of range";
  if r = 0 then t.cdf.(0) else t.cdf.(r) -. t.cdf.(r - 1)
