(** Array-backed binary min-heap with an explicit comparator.

    Two corpus-engine uses: bounded top-k selection per shard (keep the
    k best hits: a min-heap ordered "worst of the kept first", with
    {!replace_min} displacing it when a better hit arrives), and the
    k-way merge of per-shard sorted runs (a heap of run heads).  Both
    need [O(log k)] push/pop on small [k], nothing fancier. *)

type 'a t

val create : cmp:('a -> 'a -> int) -> 'a t
(** Empty heap; the minimum is wrt [cmp]. *)

val length : 'a t -> int

val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** The minimum, without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum. *)

val replace_min : 'a t -> 'a -> unit
(** Replace the minimum with a new element and restore the heap —
    [push] after [pop] minus one sift.  On an empty heap, just [push]. *)

val to_list : 'a t -> 'a list
(** Elements in unspecified order. *)

val sorted : 'a t -> 'a list
(** Elements ascending wrt the heap's comparator. *)
