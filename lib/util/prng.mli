(** Deterministic pseudo-random number generation (splitmix64).

    Benchmarks and workload generators must be reproducible across runs
    and machines, so we avoid [Random] and use an explicit-state
    splitmix64 generator.  The sequence for a given seed is fixed
    forever. *)

type t

val create : int -> t
(** [create seed] makes an independent generator. *)

val copy : t -> t

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].
    @raise Invalid_argument if [bound <= 0]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val split : t -> t
(** Derive an independent child generator (gamma-mixing). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array.
    @raise Invalid_argument on an empty array. *)
