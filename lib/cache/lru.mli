(** Bounded LRU memo tables.

    A cache maps keys to values, holds at most [capacity] live entries,
    and evicts the least-recently-used entry on overflow.  Every lookup
    and insertion is amortized O(1): a hash table indexes an intrusive
    doubly-linked recency list.

    Caches keep cumulative counters ([hits], [misses], [evictions],
    [invalidations]) that survive {!clear} — they describe the cache's
    whole lifetime, which is what an operations dashboard wants; per-query
    deltas are the caller's job (see [Xfrag_core.Op_stats]).

    A cache additionally carries a [generation] stamp.  Cached entries
    are only meaningful relative to the world they were computed in (for
    the join cache: one built corpus); {!set_generation} with a new stamp
    drops every entry and counts one invalidation, so a caller can simply
    stamp the cache with its current world's generation before each
    lookup and stale hits become impossible.

    Capacity 0 (or negative) is a legal degenerate cache: every lookup
    misses, insertions are dropped, nothing is ever stored.  This gives
    callers a uniform "cache disabled" object instead of an option type
    in every hot-path signature.

    Not domain-safe: share a cache between domains only under external
    synchronization (the join path simply bypasses the cache inside
    parallel workers). *)

module type KEY = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int
end

module Make (K : KEY) : sig
  type 'v t

  val create : ?generation:int -> capacity:int -> unit -> 'v t
  (** [capacity <= 0] creates a disabled cache (see above). *)

  val capacity : 'v t -> int

  val length : 'v t -> int
  (** Live entries, [0 <= length <= max 0 capacity]. *)

  val find : 'v t -> K.t -> 'v option
  (** Lookup; on a hit the entry becomes most-recently-used.  Counts one
      hit or one miss. *)

  val add : 'v t -> K.t -> 'v -> unit
  (** Insert as most-recently-used, evicting the least-recently-used
      entry if the cache is full.  Re-adding an existing key replaces its
      value and refreshes its recency without eviction.  Does not count a
      hit or a miss. *)

  val mem : 'v t -> K.t -> bool
  (** Membership without touching recency or counters. *)

  val clear : 'v t -> unit
  (** Drop every entry.  Counters and generation are preserved. *)

  val generation : 'v t -> int

  val set_generation : 'v t -> int -> unit
  (** [set_generation c g]: if [g] differs from [generation c], drop
      every entry and adopt [g], counting one invalidation when the
      cache actually held entries (adopting a generation on an empty
      cache — notably the first use — discards nothing and is not an
      invalidation event); otherwise do nothing. *)

  val hits : 'v t -> int

  val misses : 'v t -> int

  val evictions : 'v t -> int

  val invalidations : 'v t -> int
end
