module type KEY = sig
  type t

  val equal : t -> t -> bool

  val hash : t -> int
end

module Make (K : KEY) = struct
  module H = Hashtbl.Make (K)

  (* Intrusive doubly-linked recency list; [head] is most recent, [tail]
     least recent.  Options keep the code total at the cost of one word
     per link — fine at cache sizes. *)
  type 'v node = {
    key : K.t;
    mutable value : 'v;
    mutable prev : 'v node option;  (* towards head *)
    mutable next : 'v node option;  (* towards tail *)
  }

  type 'v t = {
    capacity : int;
    table : 'v node H.t;
    mutable head : 'v node option;
    mutable tail : 'v node option;
    mutable generation : int;
    mutable hits : int;
    mutable misses : int;
    mutable evictions : int;
    mutable invalidations : int;
  }

  let create ?(generation = 0) ~capacity () =
    {
      capacity;
      table = H.create (min 1024 (max 16 capacity));
      head = None;
      tail = None;
      generation;
      hits = 0;
      misses = 0;
      evictions = 0;
      invalidations = 0;
    }

  let capacity t = t.capacity

  let length t = H.length t.table

  let unlink t n =
    (match n.prev with Some p -> p.next <- n.next | None -> t.head <- n.next);
    (match n.next with Some s -> s.prev <- n.prev | None -> t.tail <- n.prev);
    n.prev <- None;
    n.next <- None

  let push_front t n =
    n.prev <- None;
    n.next <- t.head;
    (match t.head with Some h -> h.prev <- Some n | None -> t.tail <- Some n);
    t.head <- Some n

  let touch t n =
    match n.prev with
    | None -> () (* already most recent *)
    | Some _ ->
        unlink t n;
        push_front t n

  let find t k =
    match H.find_opt t.table k with
    | Some n ->
        t.hits <- t.hits + 1;
        touch t n;
        Some n.value
    | None ->
        t.misses <- t.misses + 1;
        None

  let mem t k = H.mem t.table k

  let evict_lru t =
    match t.tail with
    | None -> ()
    | Some n ->
        unlink t n;
        H.remove t.table n.key;
        t.evictions <- t.evictions + 1

  let add t k v =
    if t.capacity > 0 then
      match H.find_opt t.table k with
      | Some n ->
          n.value <- v;
          touch t n
      | None ->
          if H.length t.table >= t.capacity then evict_lru t;
          let n = { key = k; value = v; prev = None; next = None } in
          H.replace t.table k n;
          push_front t n

  let clear t =
    H.reset t.table;
    t.head <- None;
    t.tail <- None

  let generation t = t.generation

  let set_generation t g =
    if g <> t.generation then begin
      (* Adopting a generation on an empty cache (notably the very first
         use) discards nothing and is not an invalidation event. *)
      if H.length t.table > 0 then t.invalidations <- t.invalidations + 1;
      clear t;
      t.generation <- g
    end

  let hits t = t.hits

  let misses t = t.misses

  let evictions t = t.evictions

  let invalidations t = t.invalidations
end
