(* Tests for the document-tree substrate: construction, navigation,
   ancestor tests, LCA, tokenization, inverted index, statistics. *)

module Doctree = Xfrag_doctree.Doctree
module Lca = Xfrag_doctree.Lca
module Tokenizer = Xfrag_doctree.Tokenizer
module Index = Xfrag_doctree.Inverted_index
module Stats = Xfrag_doctree.Stats
module Int_sorted = Xfrag_util.Int_sorted
module Prng = Xfrag_util.Prng

let spec id parent label text =
  { Doctree.spec_id = id; spec_parent = parent; spec_label = label; spec_text = text }

(*      0
       / \
      1   4
     / \   \
    2   3   5   *)
let small () =
  Doctree.of_specs
    [
      spec 0 (-1) "a" "alpha";
      spec 1 0 "b" "beta gamma";
      spec 2 1 "c" "gamma";
      spec 3 1 "d" "";
      spec 4 0 "e" "delta";
      spec 5 4 "f" "beta";
    ]

let test_size_and_root () =
  let t = small () in
  Alcotest.(check int) "size" 6 (Doctree.size t);
  Alcotest.(check int) "root" 0 (Doctree.root t)

let test_parent () =
  let t = small () in
  Alcotest.(check (option int)) "root" None (Doctree.parent t 0);
  Alcotest.(check (option int)) "n2" (Some 1) (Doctree.parent t 2);
  Alcotest.(check (option int)) "n5" (Some 4) (Doctree.parent t 5);
  Alcotest.check_raises "parent_exn of root"
    (Invalid_argument "Doctree.parent_exn: the root has no parent") (fun () ->
      ignore (Doctree.parent_exn t 0))

let test_depth () =
  let t = small () in
  Alcotest.(check int) "root depth" 0 (Doctree.depth t 0);
  Alcotest.(check int) "n1" 1 (Doctree.depth t 1);
  Alcotest.(check int) "n2" 2 (Doctree.depth t 2);
  Alcotest.(check int) "max depth" 2 (Doctree.max_depth t)

let test_children_order () =
  let t = small () in
  Alcotest.(check (list int)) "root children" [ 1; 4 ] (Doctree.children t 0);
  Alcotest.(check (list int)) "n1 children" [ 2; 3 ] (Doctree.children t 1);
  Alcotest.(check (list int)) "leaf" [] (Doctree.children t 2)

let test_siblings () =
  let t = small () in
  Alcotest.(check (option int)) "first child of 1" (Some 2) (Doctree.first_child t 1);
  Alcotest.(check (option int)) "next sibling of 2" (Some 3) (Doctree.next_sibling t 2);
  Alcotest.(check (option int)) "last sibling" None (Doctree.next_sibling t 3);
  Alcotest.(check (option int)) "root has no sibling" None (Doctree.next_sibling t 0)

let test_is_leaf () =
  let t = small () in
  List.iter (fun n -> Alcotest.(check bool) (string_of_int n) true (Doctree.is_leaf t n))
    [ 2; 3; 5 ];
  List.iter (fun n -> Alcotest.(check bool) (string_of_int n) false (Doctree.is_leaf t n))
    [ 0; 1; 4 ]

let test_ancestor () =
  let t = small () in
  Alcotest.(check bool) "0 anc 5" true (Doctree.is_ancestor t 0 5);
  Alcotest.(check bool) "1 anc 3" true (Doctree.is_ancestor t 1 3);
  Alcotest.(check bool) "1 not anc 5" false (Doctree.is_ancestor t 1 5);
  Alcotest.(check bool) "not self" false (Doctree.is_ancestor t 2 2);
  Alcotest.(check bool) "or self" true (Doctree.is_ancestor_or_self t 2 2);
  Alcotest.(check bool) "child not anc of parent" false (Doctree.is_ancestor t 2 1)

let test_subtree () =
  let t = small () in
  Alcotest.(check int) "whole tree" 6 (Doctree.subtree_size t 0);
  Alcotest.(check int) "n1 subtree" 3 (Doctree.subtree_size t 1);
  Alcotest.(check int) "leaf subtree" 1 (Doctree.subtree_size t 5);
  Alcotest.(check (list int)) "n1 nodes" [ 1; 2; 3 ]
    (Int_sorted.to_list (Doctree.subtree_nodes t 1))

let test_leaf_intervals () =
  let t = small () in
  (* Leaves in document order: 2, 3, 5 → ranks 0, 1, 2. *)
  Alcotest.(check int) "leaf count" 3 (Doctree.leaf_count t);
  Alcotest.(check (pair int int)) "leaf 2" (0, 0) (Doctree.leaf_interval t 2);
  Alcotest.(check (pair int int)) "leaf 3" (1, 1) (Doctree.leaf_interval t 3);
  Alcotest.(check (pair int int)) "leaf 5" (2, 2) (Doctree.leaf_interval t 5);
  Alcotest.(check (pair int int)) "n1 spans leaves 0-1" (0, 1) (Doctree.leaf_interval t 1);
  Alcotest.(check (pair int int)) "n4 spans leaf 2" (2, 2) (Doctree.leaf_interval t 4);
  Alcotest.(check (pair int int)) "root spans all" (0, 2) (Doctree.leaf_interval t 0)

let test_path_to_ancestor () =
  let t = small () in
  Alcotest.(check (list int)) "n2 to root" [ 2; 1; 0 ] (Doctree.path_to_ancestor t 2 0);
  Alcotest.(check (list int)) "self" [ 3 ] (Doctree.path_to_ancestor t 3 3);
  Alcotest.check_raises "not an ancestor"
    (Invalid_argument "Doctree.path_to_ancestor: second node is not an ancestor")
    (fun () -> ignore (Doctree.path_to_ancestor t 2 4))

let test_of_specs_rejects_bad_input () =
  let expect_invalid name specs =
    match Doctree.of_specs specs with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" name
  in
  expect_invalid "empty" [];
  expect_invalid "gap in ids" [ spec 0 (-1) "a" ""; spec 2 0 "b" "" ];
  expect_invalid "parent after child" [ spec 0 (-1) "a" ""; spec 1 2 "b" ""; spec 2 0 "c" "" ];
  expect_invalid "root with parent" [ spec 0 3 "a" "" ];
  (* Non-pre-order: node 3's parent is 1, but node 2 (a child of 0)
     closes 1's interval first. *)
  expect_invalid "not pre-order"
    [ spec 0 (-1) "a" ""; spec 1 0 "b" ""; spec 2 0 "c" ""; spec 3 1 "d" "" ]

let test_of_xml () =
  let doc = Xfrag_xml.Xml_parser.parse_string
      {|<article><sec t="intro">hello <b>bold</b> tail</sec><sec/></article>|}
  in
  let t = Doctree.of_xml doc in
  Alcotest.(check int) "element count" 4 (Doctree.size t);
  Alcotest.(check string) "root label" "article" (Doctree.label t 0);
  Alcotest.(check string) "first sec" "sec" (Doctree.label t 1);
  Alcotest.(check string) "bold label" "b" (Doctree.label t 2);
  Alcotest.(check (list int)) "root children" [ 1; 3 ] (Doctree.children t 0);
  (* Attribute name/value folded into node text, per the paper. *)
  Alcotest.(check bool) "attr searchable" true
    (Tokenizer.contains_keyword (Doctree.text t 1) ~keyword:"intro");
  Alcotest.(check bool) "direct text" true
    (Tokenizer.contains_keyword (Doctree.text t 1) ~keyword:"hello");
  Alcotest.(check bool) "descendant text not inherited" false
    (Tokenizer.contains_keyword (Doctree.text t 1) ~keyword:"bold")

let test_validate_ok () =
  match Doctree.validate (small ()) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "expected valid tree, got %s" e

let test_deep_tree_no_stack_overflow () =
  let n = 200_000 in
  let specs =
    List.init n (fun id -> spec id (if id = 0 then -1 else id - 1) "n" "")
  in
  let t = Doctree.of_specs specs in
  Alcotest.(check int) "depth" (n - 1) (Doctree.max_depth t);
  Alcotest.(check int) "subtree" n (Doctree.subtree_size t 0)

(* --- streaming builder --- *)

module Stream_builder = Xfrag_doctree.Stream_builder

let trees_agree a b =
  Doctree.size a = Doctree.size b
  && List.for_all
       (fun n ->
         Doctree.parent a n = Doctree.parent b n
         && Doctree.label a n = Doctree.label b n
         && Doctree.text a n = Doctree.text b n)
       (Doctree.all_nodes a)

let test_stream_builder_agrees () =
  let inputs =
    [
      "<a/>";
      {|<article><sec t="intro">hello <b>bold</b> tail</sec><sec/></article>|};
      Xfrag_workload.Paper_doc.figure1_xml ();
    ]
  in
  List.iter
    (fun xml ->
      let via_dom = Doctree.of_xml (Xfrag_xml.Xml_parser.parse_string xml) in
      let via_stream = Stream_builder.of_xml_string xml in
      Alcotest.(check bool)
        (Printf.sprintf "%d-byte input" (String.length xml))
        true
        (trees_agree via_dom via_stream))
    inputs

let stream_builder_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"streaming builder = DOM builder" ~count:40
       QCheck2.Gen.(1 -- 10_000)
       (fun seed ->
         let xml =
           Xfrag_workload.Docgen.generate_xml
             { Xfrag_workload.Docgen.default with seed; sections = 2 }
         in
         trees_agree
           (Doctree.of_xml (Xfrag_xml.Xml_parser.parse_string xml))
           (Stream_builder.of_xml_string xml)))

(* --- codec --- *)

module Codec = Xfrag_doctree.Codec

let trees_equal a b =
  Doctree.size a = Doctree.size b
  && List.for_all
       (fun n ->
         Doctree.parent a n = Doctree.parent b n
         && Doctree.label a n = Doctree.label b n
         && Doctree.text a n = Doctree.text b n)
       (Doctree.all_nodes a)

let test_codec_roundtrip () =
  let t = small () in
  match Codec.of_string (Codec.to_string t) with
  | Ok t' -> Alcotest.(check bool) "round trip" true (trees_equal t t')
  | Error e -> Alcotest.fail e

let test_codec_escaping () =
  let t =
    Doctree.of_specs
      [
        spec 0 (-1) "root" "tab\there";
        spec 1 0 "n" "newline\nand % percent\r";
      ]
  in
  match Codec.of_string (Codec.to_string t) with
  | Ok t' ->
      Alcotest.(check string) "tab preserved" "tab\there" (Doctree.text t' 0);
      Alcotest.(check string) "newline preserved" "newline\nand % percent\r"
        (Doctree.text t' 1)
  | Error e -> Alcotest.fail e

let test_codec_rejects_garbage () =
  List.iter
    (fun input ->
      match Codec.of_string input with
      | Ok _ -> Alcotest.failf "expected error for %S" input
      | Error _ -> ())
    [
      "";
      "not a doctree";
      "xfrag-doctree 999 1\n0\t-1\ta\tb\n";
      "xfrag-doctree 1 2\n0\t-1\ta\tb\n";
      "xfrag-doctree 1 1\nmalformed\n";
      "xfrag-doctree 1 2\n0\t-1\ta\t\n1\t5\tb\t\n";
    ]

let test_codec_file_roundtrip () =
  let t = Xfrag_workload.Paper_doc.figure1 () in
  let path = Filename.temp_file "xfrag_codec" ".doctree" in
  Codec.save t path;
  let result = Codec.load path in
  Sys.remove path;
  match result with
  | Ok t' ->
      Alcotest.(check bool) "file round trip" true (trees_equal t t');
      (* The reloaded tree supports queries identically. *)
      let ctx = Xfrag_core.Context.create t' in
      Alcotest.(check int) "postings survive" 2
        (Index.node_count ctx.Xfrag_core.Context.index "xquery")
  | Error e -> Alcotest.fail e

let codec_roundtrip_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"codec round trip on random trees" ~count:100
       QCheck2.Gen.(pair (1 -- 10_000) (1 -- 60))
       (fun (seed, size) ->
         let t = Xfrag_workload.Random_tree.tree ~seed ~size in
         match Codec.of_string (Codec.to_string t) with
         | Ok t' -> trees_equal t t'
         | Error _ -> false))

(* --- LCA --- *)

let naive_lca t a b =
  let rec ancestors n acc =
    let acc = n :: acc in
    match Doctree.parent t n with None -> acc | Some p -> ancestors p acc
  in
  let pa = ancestors a [] and pb = ancestors b [] in
  let rec common last = function
    | x :: xs, y :: ys when x = y -> common x (xs, ys)
    | _ -> last
  in
  common (-1) (pa, pb)

let test_lca_small () =
  let t = small () in
  let l = Lca.build t in
  Alcotest.(check int) "2,3 -> 1" 1 (Lca.lca l 2 3);
  Alcotest.(check int) "2,5 -> 0" 0 (Lca.lca l 2 5);
  Alcotest.(check int) "1,2 -> 1" 1 (Lca.lca l 1 2);
  Alcotest.(check int) "self" 4 (Lca.lca l 4 4);
  Alcotest.(check int) "many" 0 (Lca.lca_many l [ 2; 3; 5 ]);
  Alcotest.(check int) "many single" 2 (Lca.lca_many l [ 2 ])

let test_lca_distance_path () =
  let t = small () in
  let l = Lca.build t in
  Alcotest.(check int) "distance 2,3" 2 (Lca.distance l 2 3);
  Alcotest.(check int) "distance 2,5" 4 (Lca.distance l 2 5);
  Alcotest.(check int) "distance self" 0 (Lca.distance l 3 3);
  Alcotest.(check (list int)) "path 2->5" [ 2; 1; 0; 4; 5 ] (Lca.path l 2 5);
  Alcotest.(check (list int)) "path down" [ 0; 1; 3 ] (Lca.path l 0 3);
  Alcotest.(check (list int)) "path self" [ 2 ] (Lca.path l 2 2)

let lca_matches_naive_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sparse-table LCA matches naive" ~count:100
       QCheck2.Gen.(pair (1 -- 1000) (2 -- 60))
       (fun (seed, size) ->
         let t = Xfrag_workload.Random_tree.tree ~seed ~size in
         let l = Lca.build t in
         let prng = Prng.create seed in
         let ok = ref true in
         for _ = 1 to 50 do
           let a = Prng.int prng size and b = Prng.int prng size in
           if Lca.lca l a b <> naive_lca t a b then ok := false
         done;
         !ok))

(* --- tokenizer --- *)

let test_tokenize_basic () =
  Alcotest.(check (list string)) "tokens" [ "hello"; "world"; "42" ]
    (Tokenizer.tokenize "Hello, WORLD! 42")

let test_tokenize_empty_and_punct () =
  Alcotest.(check (list string)) "empty" [] (Tokenizer.tokenize "");
  Alcotest.(check (list string)) "punct only" [] (Tokenizer.tokenize "!!! ... ---")

let test_keyword_set_dedups () =
  Alcotest.(check (list string)) "set" [ "a"; "b" ] (Tokenizer.keyword_set "a b A B a")

let test_min_length_option () =
  let options = { Tokenizer.min_length = 3; stopwords = false; stem = false } in
  Alcotest.(check (list string)) "short dropped" [ "abc"; "wxyz" ]
    (Tokenizer.tokenize ~options "ab abc b wxyz")

let test_stopwords_option () =
  let options = { Tokenizer.min_length = 1; stopwords = true; stem = false } in
  Alcotest.(check (list string)) "stopwords dropped" [ "quick"; "fox" ]
    (Tokenizer.tokenize ~options "the quick fox");
  Alcotest.(check bool) "is_stopword" true (Tokenizer.is_stopword "The")

let test_contains_keyword () =
  Alcotest.(check bool) "case-insensitive whole token" true
    (Tokenizer.contains_keyword "Querying XML Documents" ~keyword:"xml");
  Alcotest.(check bool) "substring does not match" false
    (Tokenizer.contains_keyword "metaxml here" ~keyword:"xml")

(* --- stemmer --- *)

module Stemmer = Xfrag_doctree.Stemmer

let test_stemmer_standard_examples () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected (Stemmer.stem input))
    [
      (* step 1a *)
      ("caresses", "caress"); ("ponies", "poni"); ("caress", "caress"); ("cats", "cat");
      (* step 1b *)
      ("feed", "feed"); ("agreed", "agre"); ("plastered", "plaster");
      ("motoring", "motor"); ("sing", "sing"); ("conflated", "conflat");
      ("hopping", "hop"); ("tanned", "tan"); ("falling", "fall"); ("hissing", "hiss");
      ("failing", "fail"); ("filing", "file");
      (* step 1c *)
      ("happy", "happi"); ("sky", "sky");
      (* step 2 *)
      ("relational", "relat"); ("conditional", "condit"); ("rational", "ration");
      ("digitizer", "digit"); ("operator", "oper"); ("feudalism", "feudal");
      ("decisiveness", "decis"); ("hopefulness", "hope"); ("callousness", "callous");
      (* step 3 *)
      ("triplicate", "triplic"); ("formative", "form"); ("formalize", "formal");
      ("electrical", "electr"); ("hopeful", "hope"); ("goodness", "good");
      (* step 4 *)
      ("allowance", "allow"); ("inference", "infer"); ("airliner", "airlin");
      ("adjustable", "adjust"); ("replacement", "replac"); ("adoption", "adopt");
      ("communism", "commun"); ("effective", "effect");
      (* step 5 *)
      ("probate", "probat"); ("rate", "rate"); ("cease", "ceas"); ("controll", "control");
      ("roll", "roll");
      (* the running example's keywords *)
      ("optimization", "optim"); ("optimizations", "optim");
      (* guards *)
      ("at", "at"); ("caf\xC3\xA9", "caf\xC3\xA9");
    ]

let test_stemmed_tokenization () =
  let options = { Tokenizer.default_options with stem = true } in
  Alcotest.(check (list string)) "stemmed tokens" [ "optim"; "queri" ]
    (Tokenizer.tokenize ~options "Optimizations queries");
  Alcotest.(check bool) "contains via stem" true
    (Tokenizer.contains_keyword ~options "several optimizations applied"
       ~keyword:"optimization")

let test_stemmed_index_end_to_end () =
  (* With a stemming index, the query keyword 'optimizations' matches
     text containing 'optimization' (and vice versa). *)
  let tree = Xfrag_workload.Paper_doc.figure1 () in
  let options = { Tokenizer.default_options with stem = true } in
  let idx = Index.build ~options tree in
  Alcotest.(check (list int)) "plural query" [ 16; 17; 81 ]
    (Int_sorted.to_list (Index.lookup idx "optimizations"));
  Alcotest.(check bool) "node_contains stems" true
    (Index.node_contains idx 16 "optimizations");
  (* Unstemmed index: no match for the plural. *)
  let plain = Index.build tree in
  Alcotest.(check (list int)) "plain misses plural" []
    (Int_sorted.to_list (Index.lookup plain "optimizations"))

let stemmer_shortens_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"stemmer never lengthens by more than one" ~count:300
       QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 15))
       (fun w ->
         (* step 1b can append 'e' after chopping, so +1 is possible on
            contrived inputs, but never more. *)
         String.length (Stemmer.stem w) <= String.length w + 1))

let stemmer_total_prop =
  (* Porter is famously not idempotent; what must hold is totality and
     output shape: always non-empty, always lower-case ASCII. *)
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"stemmer is total and shape-preserving" ~count:300
       QCheck2.Gen.(string_size ~gen:(char_range 'a' 'z') (1 -- 15))
       (fun w ->
         let s = Stemmer.stem w in
         String.length s > 0 && String.for_all (fun c -> c >= 'a' && c <= 'z') s))

(* --- inverted index --- *)

let test_index_lookup () =
  let t = small () in
  let idx = Index.build t in
  Alcotest.(check (list int)) "beta" [ 1; 5 ] (Int_sorted.to_list (Index.lookup idx "beta"));
  Alcotest.(check (list int)) "gamma" [ 1; 2 ] (Int_sorted.to_list (Index.lookup idx "gamma"));
  Alcotest.(check (list int)) "missing" [] (Int_sorted.to_list (Index.lookup idx "nope"));
  Alcotest.(check int) "node_count" 2 (Index.node_count idx "beta")

let test_index_includes_labels () =
  let t = small () in
  let idx = Index.build t in
  (* label of node 4 is "e" *)
  Alcotest.(check bool) "label indexed" true
    (Int_sorted.mem 4 (Index.lookup idx "e"))

let test_index_case_insensitive () =
  let t = small () in
  let idx = Index.build t in
  Alcotest.(check (list int)) "BETA" [ 1; 5 ] (Int_sorted.to_list (Index.lookup idx "BETA"))

let test_node_contains () =
  let t = small () in
  let idx = Index.build t in
  Alcotest.(check bool) "n1 beta" true (Index.node_contains idx 1 "beta");
  Alcotest.(check bool) "n2 beta" false (Index.node_contains idx 2 "beta")

let test_vocabulary () =
  let t = small () in
  let idx = Index.build t in
  let vocab = Index.vocabulary idx in
  Alcotest.(check bool) "contains alpha" true (List.mem "alpha" vocab);
  Alcotest.(check int) "size agrees" (List.length vocab) (Index.vocabulary_size idx);
  Alcotest.(check bool) "postings positive" true (Index.total_postings idx > 0)

(* --- stats --- *)

let test_stats () =
  let s = Stats.compute (small ()) in
  Alcotest.(check int) "nodes" 6 s.Stats.node_count;
  Alcotest.(check int) "leaves" 3 s.Stats.leaf_count;
  Alcotest.(check int) "max depth" 2 s.Stats.max_depth;
  Alcotest.(check int) "max fanout" 2 s.Stats.max_fanout;
  Alcotest.(check bool) "histogram covers all labels" true
    (List.length s.Stats.label_histogram = 6)

let () =
  Alcotest.run "doctree"
    [
      ( "structure",
        [
          Alcotest.test_case "size and root" `Quick test_size_and_root;
          Alcotest.test_case "parent" `Quick test_parent;
          Alcotest.test_case "depth" `Quick test_depth;
          Alcotest.test_case "children order" `Quick test_children_order;
          Alcotest.test_case "siblings" `Quick test_siblings;
          Alcotest.test_case "is_leaf" `Quick test_is_leaf;
          Alcotest.test_case "ancestor" `Quick test_ancestor;
          Alcotest.test_case "subtree" `Quick test_subtree;
          Alcotest.test_case "leaf intervals" `Quick test_leaf_intervals;
          Alcotest.test_case "path to ancestor" `Quick test_path_to_ancestor;
          Alcotest.test_case "of_specs rejects bad input" `Quick test_of_specs_rejects_bad_input;
          Alcotest.test_case "of_xml" `Quick test_of_xml;
          Alcotest.test_case "validate" `Quick test_validate_ok;
          Alcotest.test_case "deep tree (no stack overflow)" `Slow test_deep_tree_no_stack_overflow;
        ] );
      ( "stream_builder",
        [
          Alcotest.test_case "agrees with DOM builder" `Quick test_stream_builder_agrees;
          stream_builder_prop;
        ] );
      ( "codec",
        [
          Alcotest.test_case "round trip" `Quick test_codec_roundtrip;
          Alcotest.test_case "escaping" `Quick test_codec_escaping;
          Alcotest.test_case "rejects garbage" `Quick test_codec_rejects_garbage;
          Alcotest.test_case "file round trip" `Quick test_codec_file_roundtrip;
          codec_roundtrip_prop;
        ] );
      ( "lca",
        [
          Alcotest.test_case "small tree" `Quick test_lca_small;
          Alcotest.test_case "distance and path" `Quick test_lca_distance_path;
          lca_matches_naive_prop;
        ] );
      ( "tokenizer",
        [
          Alcotest.test_case "basic" `Quick test_tokenize_basic;
          Alcotest.test_case "empty/punct" `Quick test_tokenize_empty_and_punct;
          Alcotest.test_case "keyword_set" `Quick test_keyword_set_dedups;
          Alcotest.test_case "min_length" `Quick test_min_length_option;
          Alcotest.test_case "stopwords" `Quick test_stopwords_option;
          Alcotest.test_case "contains_keyword" `Quick test_contains_keyword;
        ] );
      ( "stemmer",
        [
          Alcotest.test_case "standard examples" `Quick test_stemmer_standard_examples;
          Alcotest.test_case "stemmed tokenization" `Quick test_stemmed_tokenization;
          Alcotest.test_case "stemmed index end to end" `Quick test_stemmed_index_end_to_end;
          stemmer_shortens_prop;
          stemmer_total_prop;
        ] );
      ( "index",
        [
          Alcotest.test_case "lookup" `Quick test_index_lookup;
          Alcotest.test_case "labels indexed" `Quick test_index_includes_labels;
          Alcotest.test_case "case insensitive" `Quick test_index_case_insensitive;
          Alcotest.test_case "node_contains" `Quick test_node_contains;
          Alcotest.test_case "vocabulary" `Quick test_vocabulary;
        ] );
      ("stats", [ Alcotest.test_case "compute" `Quick test_stats ]);
    ]
