(* HTTP request-parser unit tests — no sockets anywhere: every case
   feeds bytes through Http.reader_of_string, including multi-message
   (pipelined keep-alive) streams. *)

module Http = Xfrag_server.Http

let req = Alcotest.testable (fun ppf (r : Http.request) ->
    Format.fprintf ppf "%s %s" r.Http.meth r.Http.path)
    (fun a b -> a = b)

let _ = req

let parse ?max_body s = Http.read_request ?max_body (Http.reader_of_string s)

let parse_ok ?max_body s =
  match parse ?max_body s with
  | Ok r -> r
  | Error _ -> Alcotest.fail ("expected parse success on " ^ String.escaped s)

let check_error name expected s =
  match parse s with
  | Ok _ -> Alcotest.failf "%s: expected failure" name
  | Error e ->
      let tag =
        match e with
        | Http.Bad_request _ -> "bad_request"
        | Http.Payload_too_large -> "too_large"
        | Http.Timeout -> "timeout"
        | Http.Closed -> "closed"
      in
      Alcotest.(check string) name expected tag

(* --- well-formed messages --- *)

let test_simple_get () =
  let r = parse_ok "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n" in
  Alcotest.(check string) "meth" "GET" r.Http.meth;
  Alcotest.(check string) "path" "/healthz" r.Http.path;
  Alcotest.(check string) "version" "HTTP/1.1" r.Http.version;
  Alcotest.(check (option string)) "host" (Some "x") (Http.header r "Host");
  Alcotest.(check string) "body" "" r.Http.body

let test_body () =
  let r =
    parse_ok "POST /query HTTP/1.1\r\nContent-Length: 11\r\n\r\nhello worldEXTRA"
  in
  (* Exactly Content-Length bytes: the EXTRA stays for the next message. *)
  Alcotest.(check string) "body" "hello world" r.Http.body

let test_query_params () =
  let r = parse_ok "GET /query?deadline_ns=5000&x=a%20b+c HTTP/1.1\r\n\r\n" in
  Alcotest.(check string) "path" "/query" r.Http.path;
  Alcotest.(check (option string)) "deadline" (Some "5000")
    (Http.query_param r "deadline_ns");
  Alcotest.(check (option string)) "decoded" (Some "a b c")
    (Http.query_param r "x")

let test_percent_path () =
  let r = parse_ok "GET /a%2Fb HTTP/1.1\r\n\r\n" in
  Alcotest.(check string) "decoded path" "/a/b" r.Http.path

let test_header_case_and_trim () =
  let r = parse_ok "GET / HTTP/1.1\r\nX-Thing:   padded value  \r\n\r\n" in
  Alcotest.(check (option string)) "trimmed, case-insensitive"
    (Some "padded value") (Http.header r "x-thing")

let test_header_folding () =
  (* obs-fold: a continuation line starting with whitespace extends the
     previous header's value. *)
  let r =
    parse_ok "GET / HTTP/1.1\r\nX-Long: first\r\n  second\r\n\tthird\r\n\r\n"
  in
  Alcotest.(check (option string)) "unfolded"
    (Some "first second third") (Http.header r "X-Long")

let test_pipelined_keep_alive () =
  let reader =
    Http.reader_of_string
      ("POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\nab"
      ^ "GET /metrics HTTP/1.1\r\n\r\n"
      ^ "GET /bye HTTP/1.1\r\nConnection: close\r\n\r\n")
  in
  (match Http.read_request reader with
  | Ok r ->
      Alcotest.(check string) "first" "/query" r.Http.path;
      Alcotest.(check string) "first body" "ab" r.Http.body;
      Alcotest.(check bool) "keep-alive" true (Http.keep_alive r)
  | Error _ -> Alcotest.fail "first request");
  (match Http.read_request reader with
  | Ok r -> Alcotest.(check string) "second" "/metrics" r.Http.path
  | Error _ -> Alcotest.fail "second request");
  (match Http.read_request reader with
  | Ok r ->
      Alcotest.(check string) "third" "/bye" r.Http.path;
      Alcotest.(check bool) "close" false (Http.keep_alive r)
  | Error _ -> Alcotest.fail "third request");
  match Http.read_request reader with
  | Error Http.Closed -> ()
  | _ -> Alcotest.fail "expected clean EOF after last message"

let test_keep_alive_rules () =
  let ka s = Http.keep_alive (parse_ok s) in
  Alcotest.(check bool) "1.1 default" true (ka "GET / HTTP/1.1\r\n\r\n");
  Alcotest.(check bool) "1.1 close" false
    (ka "GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
  Alcotest.(check bool) "1.1 Close case-insensitive" false
    (ka "GET / HTTP/1.1\r\nConnection: Close\r\n\r\n");
  Alcotest.(check bool) "1.0 default" false (ka "GET / HTTP/1.0\r\n\r\n");
  Alcotest.(check bool) "1.0 keep-alive" true
    (ka "GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")

(* --- malformed messages --- *)

let test_malformed_request_lines () =
  check_error "two tokens" "bad_request" "GET /\r\n\r\n";
  check_error "four tokens" "bad_request" "GET / HTTP/1.1 junk\r\n\r\n";
  check_error "empty method" "bad_request" " / HTTP/1.1\r\n\r\n";
  check_error "bad method chars" "bad_request" "GE T / HTTP/1.1\r\n\r\n";
  check_error "bad version" "bad_request" "GET / HTTP/2.0\r\n\r\n";
  check_error "relative target" "bad_request" "GET nope HTTP/1.1\r\n\r\n";
  check_error "garbage" "bad_request" "\x00\x01\x02\r\n\r\n"

let test_malformed_headers () =
  check_error "no colon" "bad_request" "GET / HTTP/1.1\r\nNoColonHere\r\n\r\n";
  check_error "empty name" "bad_request" "GET / HTTP/1.1\r\n: v\r\n\r\n";
  check_error "space in name" "bad_request" "GET / HTTP/1.1\r\nBad Name: v\r\n\r\n";
  check_error "fold before any header" "bad_request" "GET / HTTP/1.1\r\n folded\r\n\r\n"

let test_content_length_errors () =
  check_error "non-numeric" "bad_request"
    "POST / HTTP/1.1\r\nContent-Length: ten\r\n\r\n";
  check_error "negative" "bad_request"
    "POST / HTTP/1.1\r\nContent-Length: -1\r\n\r\n";
  check_error "conflicting duplicates" "bad_request"
    "POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n\r\nxx";
  check_error "absurdly long digits" "too_large"
    "POST / HTTP/1.1\r\nContent-Length: 99999999999999999999\r\n\r\n";
  check_error "transfer-encoding" "bad_request"
    "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"

let test_oversized_body () =
  match
    Http.read_request ~max_body:8
      (Http.reader_of_string "POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789")
  with
  | Error Http.Payload_too_large -> ()
  | _ -> Alcotest.fail "expected Payload_too_large"

let test_truncated () =
  (* EOF after part of a message is Bad_request, not Closed. *)
  check_error "mid request line" "bad_request" "GET /he";
  check_error "mid headers" "bad_request" "GET / HTTP/1.1\r\nHost: x\r\n";
  check_error "mid body" "bad_request"
    "POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort";
  check_error "clean EOF" "closed" ""

let test_line_too_long () =
  check_error "giant header line" "bad_request"
    ("GET / HTTP/1.1\r\nX: " ^ String.make 10000 'a' ^ "\r\n\r\n")

let test_fold_bomb () =
  (* Obs-fold continuations must not bypass the header limits: an
     endless stream of fold lines is a memory-growth DoS unless each
     one counts toward max_header_count... *)
  let folds = Buffer.create 4096 in
  for _ = 1 to 500 do
    Buffer.add_string folds " x\r\n"
  done;
  check_error "fold flood" "bad_request"
    ("GET / HTTP/1.1\r\nX: v\r\n" ^ Buffer.contents folds ^ "\r\n");
  (* ...and the unfolded value is capped: a few fold lines that are
     each under max_line but accumulate past it are rejected too. *)
  let big = String.make 3000 'a' in
  check_error "unfolded value too long" "bad_request"
    ("GET / HTTP/1.1\r\nX: " ^ big ^ "\r\n " ^ big ^ "\r\n " ^ big ^ "\r\n\r\n")

(* --- responses --- *)

let test_response_round_trip () =
  let resp =
    Http.response ~headers:[ ("Content-Type", "text/plain") ] ~status:200 "hi"
  in
  let wire = Http.response_to_string ~keep_alive:false resp in
  match Http.read_response (Http.reader_of_string wire) with
  | Ok (status, headers, body) ->
      Alcotest.(check int) "status" 200 status;
      Alcotest.(check string) "body" "hi" body;
      Alcotest.(check (option string)) "content-length" (Some "2")
        (List.assoc_opt "content-length" headers)
  | Error _ -> Alcotest.fail "response should parse"

let () =
  Alcotest.run "http"
    [
      ( "parse",
        [
          Alcotest.test_case "simple GET" `Quick test_simple_get;
          Alcotest.test_case "content-length body" `Quick test_body;
          Alcotest.test_case "query params" `Quick test_query_params;
          Alcotest.test_case "percent-decoded path" `Quick test_percent_path;
          Alcotest.test_case "header case/trim" `Quick test_header_case_and_trim;
          Alcotest.test_case "header folding" `Quick test_header_folding;
          Alcotest.test_case "pipelined keep-alive" `Quick test_pipelined_keep_alive;
          Alcotest.test_case "keep-alive rules" `Quick test_keep_alive_rules;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed request lines" `Quick test_malformed_request_lines;
          Alcotest.test_case "malformed headers" `Quick test_malformed_headers;
          Alcotest.test_case "content-length" `Quick test_content_length_errors;
          Alcotest.test_case "oversized body" `Quick test_oversized_body;
          Alcotest.test_case "truncation" `Quick test_truncated;
          Alcotest.test_case "line too long" `Quick test_line_too_long;
          Alcotest.test_case "fold bomb" `Quick test_fold_bomb;
        ] );
      ( "response",
        [ Alcotest.test_case "round trip" `Quick test_response_round_trip ] );
    ]
