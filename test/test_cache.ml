(* Tests for the join memo cache stack: the generic bounded LRU
   (lib/cache), fragment interning, generation-based invalidation, and
   the headline guarantees — answers are bit-identical with the cache on
   or off, cached/serial/parallel pairwise joins agree on both results
   and Op_stats accounting, and the cache actually eliminates repeated
   fragment joins.

   Capacity selection honours the XFRAG_JOIN_CACHE environment variable
   (used by CI to run the suite once with the cache disabled and once
   with a tiny, eviction-heavy cache); unset, tests use the default
   capacity. *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Join = Xfrag_core.Join
module Join_cache = Xfrag_core.Join_cache
module Fixed_point = Xfrag_core.Fixed_point
module Reduce = Xfrag_core.Reduce
module Eval = Xfrag_core.Eval
module Query = Xfrag_core.Query
module Filter = Xfrag_core.Filter
module Op_stats = Xfrag_core.Op_stats
module Paper = Xfrag_workload.Paper_doc
module Random_tree = Xfrag_workload.Random_tree
module Prng = Xfrag_util.Prng

let set_testable = Alcotest.testable Frag_set.pp Frag_set.equal

let env_capacity =
  match Sys.getenv_opt "XFRAG_JOIN_CACHE" with
  | Some s -> int_of_string_opt s
  | None -> None

let make_cache () = Join_cache.create ?capacity:env_capacity ()

(* --- generic LRU --- *)

module Int_lru = Xfrag_cache.Lru.Make (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

let test_lru_eviction_order () =
  let c = Int_lru.create ~capacity:2 () in
  Int_lru.add c 1 "one";
  Int_lru.add c 2 "two";
  (* Touch 1 so 2 becomes least recently used. *)
  Alcotest.(check (option string)) "hit 1" (Some "one") (Int_lru.find c 1);
  Int_lru.add c 3 "three";
  Alcotest.(check bool) "1 survives" true (Int_lru.mem c 1);
  Alcotest.(check bool) "2 evicted" false (Int_lru.mem c 2);
  Alcotest.(check bool) "3 present" true (Int_lru.mem c 3);
  Alcotest.(check int) "one eviction" 1 (Int_lru.evictions c);
  Alcotest.(check int) "length stays at capacity" 2 (Int_lru.length c);
  (* Re-adding an existing key replaces in place, no eviction. *)
  Int_lru.add c 3 "THREE";
  Alcotest.(check int) "still one eviction" 1 (Int_lru.evictions c);
  Alcotest.(check (option string)) "replaced" (Some "THREE") (Int_lru.find c 3)

let test_lru_counters_and_clear () =
  let c = Int_lru.create ~capacity:4 () in
  ignore (Int_lru.find c 7);
  Int_lru.add c 7 "x";
  ignore (Int_lru.find c 7);
  Alcotest.(check int) "hits" 1 (Int_lru.hits c);
  Alcotest.(check int) "misses" 1 (Int_lru.misses c);
  Int_lru.clear c;
  Alcotest.(check int) "cleared" 0 (Int_lru.length c);
  Alcotest.(check int) "hits survive clear" 1 (Int_lru.hits c);
  Alcotest.(check int) "misses survive clear" 1 (Int_lru.misses c)

let test_lru_disabled () =
  let c = Int_lru.create ~capacity:0 () in
  Int_lru.add c 1 "one";
  Alcotest.(check int) "stores nothing" 0 (Int_lru.length c);
  Alcotest.(check (option string)) "always misses" None (Int_lru.find c 1);
  Alcotest.(check int) "no eviction" 0 (Int_lru.evictions c)

let test_lru_generation () =
  let c = Int_lru.create ~generation:0 ~capacity:4 () in
  Int_lru.add c 1 "one";
  Int_lru.set_generation c 0;
  Alcotest.(check int) "same generation keeps entries" 1 (Int_lru.length c);
  Alcotest.(check int) "no invalidation" 0 (Int_lru.invalidations c);
  Int_lru.set_generation c 1;
  Alcotest.(check int) "new generation drops entries" 0 (Int_lru.length c);
  Alcotest.(check int) "one invalidation" 1 (Int_lru.invalidations c);
  Alcotest.(check int) "generation adopted" 1 (Int_lru.generation c)

(* --- fragment interner --- *)

let test_interner () =
  let ctx = Paper.figure3_context () in
  let i = Fragment.Interner.create () in
  let f1 = Fragment.of_nodes ctx [ 4; 5 ] in
  let f1' = Fragment.of_nodes ctx [ 4; 5 ] in
  let f2 = Fragment.of_nodes ctx [ 7; 9 ] in
  let id1 = Fragment.Interner.intern i f1 in
  Alcotest.(check int) "structural equality shares ids" id1
    (Fragment.Interner.intern i f1');
  Alcotest.(check bool) "distinct fragments get distinct ids" true
    (Fragment.Interner.intern i f2 <> id1);
  Alcotest.(check int) "two interned" 2 (Fragment.Interner.size i);
  Alcotest.(check (option int)) "find does not allocate ids" (Some id1)
    (Fragment.Interner.find i f1);
  Alcotest.(check (option int)) "unseen fragment not found" None
    (Fragment.Interner.find i (Fragment.of_nodes ctx [ 3; 6 ]));
  Fragment.Interner.clear i;
  Alcotest.(check int) "clear restarts" 0 (Fragment.Interner.size i)

(* --- Join_cache behaviour --- *)

let test_join_cache_hits () =
  let ctx = Paper.figure3_context () in
  let cache = Join_cache.create ~capacity:64 () in
  let stats = Op_stats.create () in
  let f1 = Fragment.of_nodes ctx [ 4; 5 ] and f2 = Fragment.of_nodes ctx [ 7; 9 ] in
  let a = Join.fragment ~stats ~cache ctx f1 f2 in
  (* Commutativity: the swapped pair must hit the same entry. *)
  let b = Join.fragment ~stats ~cache ctx f2 f1 in
  Alcotest.(check bool) "same result" true (Fragment.equal a b);
  Alcotest.(check int) "one computed join" 1 stats.Op_stats.fragment_joins;
  Alcotest.(check int) "one hit" 1 stats.Op_stats.cache_hits;
  Alcotest.(check int) "one miss" 1 stats.Op_stats.cache_misses;
  Alcotest.(check int) "cache agrees" 1 (Join_cache.hits cache)

let test_join_cache_generation_invalidation () =
  let cache = Join_cache.create ~capacity:64 () in
  let ctx1 = Paper.figure3_context () in
  let f1 = Fragment.of_nodes ctx1 [ 4; 5 ] and f2 = Fragment.of_nodes ctx1 [ 7; 9 ] in
  ignore (Join.fragment ~cache ctx1 f1 f2);
  Alcotest.(check int) "entry cached" 1 (Join_cache.length cache);
  (* A rebuilt context gets a fresh generation; its first lookup must
     drop everything the old world cached. *)
  let ctx2 = Paper.figure3_context () in
  Alcotest.(check bool) "generations differ" true
    (Context.generation ctx1 <> Context.generation ctx2);
  let stats = Op_stats.create () in
  ignore (Join.fragment ~stats ~cache ctx2 f1 f2);
  Alcotest.(check int) "stale entry not served" 1 stats.Op_stats.cache_misses;
  Alcotest.(check int) "one invalidation" 1 (Join_cache.invalidations cache);
  Alcotest.(check int) "generation adopted" (Context.generation ctx2)
    (Join_cache.generation cache)

let test_join_cache_eviction_correctness () =
  (* A 2-entry cache under a workload with many distinct pairs: lots of
     evictions, answers still exact. *)
  let ctx = Random_tree.context ~seed:99 ~size:40 in
  let prng = Prng.create 99 in
  let s1 = Frag_set.of_list (List.init 8 (fun _ -> Random_tree.fragment ctx prng)) in
  let s2 = Frag_set.of_list (List.init 8 (fun _ -> Random_tree.fragment ctx prng)) in
  let cache = Join_cache.create ~capacity:2 () in
  let cached = Join.pairwise ~cache ctx s1 s2 in
  Alcotest.check set_testable "tiny cache, same answers"
    (Join.pairwise ctx s1 s2) cached;
  Alcotest.(check bool) "evictions happened" true (Join_cache.evictions cache > 0);
  Alcotest.(check bool) "length bounded" true (Join_cache.length cache <= 2)

let test_join_cache_metrics_assoc () =
  let cache = Join_cache.create ~capacity:8 () in
  let keys = List.map fst (Join_cache.metrics_assoc cache) in
  List.iter
    (fun k -> Alcotest.(check bool) k true (List.mem k keys))
    [
      "cache.hits"; "cache.misses"; "cache.evictions"; "cache.invalidations";
      "cache.entries"; "cache.interned";
    ]

(* --- fewer joins with the cache on --- *)

let test_cache_reduces_fragment_joins () =
  let ctx = Random_tree.context ~seed:7 ~size:50 in
  let prng = Prng.create 7 in
  let seed =
    Frag_set.of_list
      (List.init 10 (fun _ -> Fragment.singleton (Random_tree.fragment ctx prng |> Fragment.root)))
  in
  let plain = Op_stats.create () in
  let baseline = Fixed_point.naive ~stats:plain ctx seed in
  let cached_stats = Op_stats.create () in
  let cache = Join_cache.create ~capacity:(1 lsl 12) () in
  let cached = Fixed_point.naive ~stats:cached_stats ~cache ctx seed in
  Alcotest.check set_testable "fixed point unchanged" baseline cached;
  Alcotest.(check bool) "cache hits occurred" true
    (cached_stats.Op_stats.cache_hits > 0);
  Alcotest.(check bool) "fewer joins computed" true
    (cached_stats.Op_stats.fragment_joins < plain.Op_stats.fragment_joins);
  Alcotest.(check int) "work is conserved"
    plain.Op_stats.fragment_joins
    (cached_stats.Op_stats.fragment_joins + cached_stats.Op_stats.cache_hits)

(* --- property: serial / parallel / cached pairwise agree --- *)

let prop_pairwise_variants_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"serial = parallel = cached (sets and stats)"
       ~count:60
       QCheck2.Gen.(pair (1 -- 10_000) (2 -- 40))
       (fun (seed, size) ->
         let ctx = Random_tree.context ~seed ~size in
         let prng = Prng.create (seed * 13) in
         let s1 =
           Frag_set.of_list (List.init 9 (fun _ -> Random_tree.fragment ctx prng))
         in
         let s2 =
           Frag_set.of_list (List.init 6 (fun _ -> Random_tree.fragment ctx prng))
         in
         let serial_stats = Op_stats.create () in
         let serial = Join.pairwise ~stats:serial_stats ctx s1 s2 in
         let agree name set (stats : Op_stats.t) =
           if not (Frag_set.equal serial set) then
             QCheck2.Test.fail_reportf "%s: sets differ" name;
           if stats.Op_stats.candidates <> serial_stats.Op_stats.candidates then
             QCheck2.Test.fail_reportf "%s: candidates %d <> serial %d" name
               stats.Op_stats.candidates serial_stats.Op_stats.candidates;
           if stats.Op_stats.duplicates <> serial_stats.Op_stats.duplicates then
             QCheck2.Test.fail_reportf "%s: duplicates %d <> serial %d" name
               stats.Op_stats.duplicates serial_stats.Op_stats.duplicates
         in
         List.iter
           (fun domains ->
             let stats = Op_stats.create () in
             let par = Join.pairwise_parallel ~stats ~domains ctx s1 s2 in
             agree (Printf.sprintf "parallel/%d" domains) par stats)
           [ 1; 2; 8 ];
         let cached_stats = Op_stats.create () in
         let cache = make_cache () in
         let cached = Join.pairwise ~stats:cached_stats ~cache ctx s1 s2 in
         agree "cached" cached cached_stats;
         (* Within one pairwise join, every candidate is either computed
            or served from the memo table. *)
         if
           cached_stats.Op_stats.fragment_joins + cached_stats.Op_stats.cache_hits
           <> serial_stats.Op_stats.fragment_joins
         then
           QCheck2.Test.fail_reportf
             "cached: joins %d + hits %d <> uncached joins %d"
             cached_stats.Op_stats.fragment_joins cached_stats.Op_stats.cache_hits
             serial_stats.Op_stats.fragment_joins;
         true))

(* --- cache on/off equality across every strategy, Table 1 document --- *)

let test_strategies_cache_transparent () =
  let ctx = Paper.figure1_context () in
  let queries =
    [
      (Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords, false);
      (Query.make ~filter:Filter.True Paper.query_keywords, false);
      (Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords, true);
    ]
  in
  List.iter
    (fun strategy ->
      List.iter
        (fun (q, strict) ->
          let baseline = Eval.answers ~strategy ~strict_leaf_semantics:strict ctx q in
          let cache = make_cache () in
          let cached =
            Eval.answers ~strategy ~strict_leaf_semantics:strict ~cache ctx q
          in
          Alcotest.check set_testable
            (Printf.sprintf "%s%s cache-transparent"
               (Eval.strategy_name strategy)
               (if strict then " (strict)" else ""))
            baseline cached;
          (* One shared cache across repeated evaluations must also be
             transparent (this is the service configuration). *)
          let again =
            Eval.answers ~strategy ~strict_leaf_semantics:strict ~cache ctx q
          in
          Alcotest.check set_testable
            (Printf.sprintf "%s warm re-run" (Eval.strategy_name strategy))
            baseline again)
        queries)
    (Eval.Auto :: Eval.all_strategies)

let test_auto_probe_charged_once () =
  (* The Auto probe reduces each keyword set; when Set_reduction wins the
     probe's reduced seeds must be reused, not recomputed.  Compare
     against an explicit Set_reduction run: Auto's reduce work must not
     exceed it (it was exactly double before the fix). *)
  let ctx = Paper.figure1_context () in
  let q = Query.make ~filter:Filter.True Paper.query_keywords in
  let auto = Eval.run ~strategy:Eval.Auto ctx q in
  let explicit = Eval.run ~strategy:Eval.Set_reduction ctx q in
  Alcotest.check set_testable "same answers" explicit.Eval.answers auto.Eval.answers;
  if auto.Eval.strategy_used = Eval.Set_reduction then
    Alcotest.(check int) "probe reduce reused, not repeated"
      explicit.Eval.stats.Op_stats.reduce_subset_checks
      auto.Eval.stats.Op_stats.reduce_subset_checks

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "counters and clear" `Quick test_lru_counters_and_clear;
          Alcotest.test_case "capacity 0 is a no-op" `Quick test_lru_disabled;
          Alcotest.test_case "generation invalidation" `Quick test_lru_generation;
        ] );
      ( "interner",
        [ Alcotest.test_case "dense ids, structural sharing" `Quick test_interner ] );
      ( "join-cache",
        [
          Alcotest.test_case "commutative hits" `Quick test_join_cache_hits;
          Alcotest.test_case "context generation invalidates" `Quick
            test_join_cache_generation_invalidation;
          Alcotest.test_case "eviction keeps answers exact" `Quick
            test_join_cache_eviction_correctness;
          Alcotest.test_case "metrics assoc keys" `Quick test_join_cache_metrics_assoc;
          Alcotest.test_case "cache reduces fragment joins" `Quick
            test_cache_reduces_fragment_joins;
        ] );
      ( "properties",
        [
          prop_pairwise_variants_agree;
          Alcotest.test_case "all strategies cache-transparent" `Quick
            test_strategies_cache_transparent;
          Alcotest.test_case "auto probe charged once" `Quick
            test_auto_probe_charged_once;
        ] );
    ]
