(* Tests for the join memo cache stack: the generic bounded LRU
   (lib/cache), fragment interning, per-document partitioning, admission
   policies, mutex striping, and the headline guarantees — answers are
   bit-identical with the cache on or off (under any admission policy
   and stripe count), cached/serial/parallel pairwise joins agree on
   both results and Op_stats accounting, and the cache actually
   eliminates repeated fragment joins.

   Capacity selection honours the XFRAG_JOIN_CACHE environment variable
   (used by CI to run the suite once with the cache disabled and once
   with a tiny, eviction-heavy cache); unset, tests use the default
   capacity. *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Join = Xfrag_core.Join
module Join_cache = Xfrag_core.Join_cache
module Fixed_point = Xfrag_core.Fixed_point
module Reduce = Xfrag_core.Reduce
module Eval = Xfrag_core.Eval
module Query = Xfrag_core.Query
module Filter = Xfrag_core.Filter
module Op_stats = Xfrag_core.Op_stats
module Paper = Xfrag_workload.Paper_doc
module Random_tree = Xfrag_workload.Random_tree
module Prng = Xfrag_util.Prng

let set_testable = Alcotest.testable Frag_set.pp Frag_set.equal

let env_capacity =
  match Sys.getenv_opt "XFRAG_JOIN_CACHE" with
  | Some s -> int_of_string_opt s
  | None -> None

let make_cache () = Join_cache.create ?capacity:env_capacity ()

(* --- generic LRU --- *)

module Int_lru = Xfrag_cache.Lru.Make (struct
  type t = int

  let equal = Int.equal

  let hash = Hashtbl.hash
end)

let test_lru_eviction_order () =
  let c = Int_lru.create ~capacity:2 () in
  Int_lru.add c 1 "one";
  Int_lru.add c 2 "two";
  (* Touch 1 so 2 becomes least recently used. *)
  Alcotest.(check (option string)) "hit 1" (Some "one") (Int_lru.find c 1);
  Int_lru.add c 3 "three";
  Alcotest.(check bool) "1 survives" true (Int_lru.mem c 1);
  Alcotest.(check bool) "2 evicted" false (Int_lru.mem c 2);
  Alcotest.(check bool) "3 present" true (Int_lru.mem c 3);
  Alcotest.(check int) "one eviction" 1 (Int_lru.evictions c);
  Alcotest.(check int) "length stays at capacity" 2 (Int_lru.length c);
  (* Re-adding an existing key replaces in place, no eviction. *)
  Int_lru.add c 3 "THREE";
  Alcotest.(check int) "still one eviction" 1 (Int_lru.evictions c);
  Alcotest.(check (option string)) "replaced" (Some "THREE") (Int_lru.find c 3)

let test_lru_counters_and_clear () =
  let c = Int_lru.create ~capacity:4 () in
  ignore (Int_lru.find c 7);
  Int_lru.add c 7 "x";
  ignore (Int_lru.find c 7);
  Alcotest.(check int) "hits" 1 (Int_lru.hits c);
  Alcotest.(check int) "misses" 1 (Int_lru.misses c);
  Int_lru.clear c;
  Alcotest.(check int) "cleared" 0 (Int_lru.length c);
  Alcotest.(check int) "hits survive clear" 1 (Int_lru.hits c);
  Alcotest.(check int) "misses survive clear" 1 (Int_lru.misses c)

let test_lru_disabled () =
  let c = Int_lru.create ~capacity:0 () in
  Int_lru.add c 1 "one";
  Alcotest.(check int) "stores nothing" 0 (Int_lru.length c);
  Alcotest.(check (option string)) "always misses" None (Int_lru.find c 1);
  Alcotest.(check int) "no eviction" 0 (Int_lru.evictions c)

let test_lru_generation () =
  let c = Int_lru.create ~generation:0 ~capacity:4 () in
  Int_lru.add c 1 "one";
  Int_lru.set_generation c 0;
  Alcotest.(check int) "same generation keeps entries" 1 (Int_lru.length c);
  Alcotest.(check int) "no invalidation" 0 (Int_lru.invalidations c);
  Int_lru.set_generation c 1;
  Alcotest.(check int) "new generation drops entries" 0 (Int_lru.length c);
  Alcotest.(check int) "one invalidation" 1 (Int_lru.invalidations c);
  Alcotest.(check int) "generation adopted" 1 (Int_lru.generation c)

(* --- fragment interner --- *)

let test_interner () =
  let ctx = Paper.figure3_context () in
  let i = Fragment.Interner.create () in
  let f1 = Fragment.of_nodes ctx [ 4; 5 ] in
  let f1' = Fragment.of_nodes ctx [ 4; 5 ] in
  let f2 = Fragment.of_nodes ctx [ 7; 9 ] in
  let id1 = Fragment.Interner.intern i f1 in
  Alcotest.(check int) "structural equality shares ids" id1
    (Fragment.Interner.intern i f1');
  Alcotest.(check bool) "distinct fragments get distinct ids" true
    (Fragment.Interner.intern i f2 <> id1);
  Alcotest.(check int) "two interned" 2 (Fragment.Interner.size i);
  Alcotest.(check (option int)) "find does not allocate ids" (Some id1)
    (Fragment.Interner.find i f1);
  Alcotest.(check (option int)) "unseen fragment not found" None
    (Fragment.Interner.find i (Fragment.of_nodes ctx [ 3; 6 ]));
  Fragment.Interner.clear i;
  Alcotest.(check int) "clear restarts" 0 (Fragment.Interner.size i)

(* --- Join_cache behaviour --- *)

(* Counter-asserting tests pin [Admit_all] so the XFRAG_CACHE_ADMIT CI
   legs (admit-none, admit-all) cannot skew their exact expectations. *)
let admit_all = Join_cache.Admission.Admit_all

let test_join_cache_hits () =
  let ctx = Paper.figure3_context () in
  let cache = Join_cache.create ~capacity:64 ~admission:admit_all () in
  let stats = Op_stats.create () in
  let f1 = Fragment.of_nodes ctx [ 4; 5 ] and f2 = Fragment.of_nodes ctx [ 7; 9 ] in
  let a = Join.fragment ~stats ~cache ctx f1 f2 in
  (* Commutativity: the swapped pair must hit the same entry. *)
  let b = Join.fragment ~stats ~cache ctx f2 f1 in
  Alcotest.(check bool) "same result" true (Fragment.equal a b);
  Alcotest.(check int) "one computed join" 1 stats.Op_stats.fragment_joins;
  Alcotest.(check int) "one hit" 1 stats.Op_stats.cache_hits;
  Alcotest.(check int) "one miss" 1 stats.Op_stats.cache_misses;
  Alcotest.(check int) "cache agrees" 1 (Join_cache.hits cache)

let test_join_cache_per_document_partitions () =
  let cache = Join_cache.create ~capacity:64 ~admission:admit_all () in
  let ctx1 = Paper.figure3_context () in
  let f1 = Fragment.of_nodes ctx1 [ 4; 5 ] and f2 = Fragment.of_nodes ctx1 [ 7; 9 ] in
  ignore (Join.fragment ~cache ctx1 f1 f2);
  Alcotest.(check int) "entry cached" 1 (Join_cache.length cache);
  (* A rebuilt context gets a fresh generation; it must get its own
     partition — never a stale hit — while the old document's entry
     stays warm. *)
  let ctx2 = Paper.figure3_context () in
  Alcotest.(check bool) "generations differ" true
    (Context.generation ctx1 <> Context.generation ctx2);
  let stats = Op_stats.create () in
  ignore (Join.fragment ~stats ~cache ctx2 f1 f2);
  Alcotest.(check int) "stale entry not served" 1 stats.Op_stats.cache_misses;
  Alcotest.(check int) "no invalidation" 0 (Join_cache.invalidations cache);
  Alcotest.(check int) "both partitions live" 2 (Join_cache.partitions cache);
  Alcotest.(check int) "both entries live" 2 (Join_cache.length cache);
  (* Returning to the first document hits its still-warm partition —
     the old single-generation design re-missed here. *)
  let stats1 = Op_stats.create () in
  ignore (Join.fragment ~stats:stats1 ~cache ctx1 f1 f2);
  Alcotest.(check int) "first document still warm" 1 stats1.Op_stats.cache_hits;
  Alcotest.(check int) "generation tracks last served" (Context.generation ctx1)
    (Join_cache.generation cache)

let test_join_cache_retire () =
  (* The document-mutation hook: a PUT/DELETE retires exactly the
     replaced document's partition (by retired generation), the other
     resident documents stay warm, and the dead interner goes with the
     partition so a recycled generation could never be served stale
     fragments. *)
  let cache = Join_cache.create ~capacity:64 ~admission:admit_all () in
  let serve ctx =
    let stats = Op_stats.create () in
    let f1 = Fragment.of_nodes ctx [ 4; 5 ]
    and f2 = Fragment.of_nodes ctx [ 7; 9 ] in
    ignore (Join.fragment ~stats ~cache ctx f1 f2);
    stats
  in
  let ctx1 = Paper.figure3_context () in
  let ctx2 = Paper.figure3_context () in
  ignore (serve ctx1);
  ignore (serve ctx2);
  Alcotest.(check int) "two partitions warm" 2 (Join_cache.partitions cache);
  Join_cache.retire cache ~generation:(Context.generation ctx1);
  Alcotest.(check int) "retired partition dropped" 1
    (Join_cache.partitions cache);
  Alcotest.(check int) "non-empty retirement counts as invalidation" 1
    (Join_cache.invalidations cache);
  let stats2 = serve ctx2 in
  Alcotest.(check int) "survivor still warm" 1 stats2.Op_stats.cache_hits;
  let stats1 = serve ctx1 in
  Alcotest.(check int) "retired document re-misses" 1
    stats1.Op_stats.cache_misses;
  (* Retiring a generation nobody holds is a no-op, not an error. *)
  Join_cache.retire cache ~generation:(-1);
  Alcotest.(check int) "unknown generation is a no-op" 1
    (Join_cache.invalidations cache)

let test_join_cache_partition_eviction () =
  (* Only [max_docs] per-document partitions are retained per stripe;
     the least recently used one is dropped (counted as an
     invalidation), so re-serving that document misses. *)
  let cache = Join_cache.create ~capacity:64 ~max_docs:2 ~admission:admit_all () in
  let serve ctx =
    let stats = Op_stats.create () in
    let f1 = Fragment.of_nodes ctx [ 4; 5 ] and f2 = Fragment.of_nodes ctx [ 7; 9 ] in
    ignore (Join.fragment ~stats ~cache ctx f1 f2);
    stats
  in
  let ctx1 = Paper.figure3_context () in
  let ctx2 = Paper.figure3_context () in
  let ctx3 = Paper.figure3_context () in
  ignore (serve ctx1);
  ignore (serve ctx2);
  ignore (serve ctx3);
  Alcotest.(check int) "bounded partitions" 2 (Join_cache.partitions cache);
  Alcotest.(check int) "oldest partition invalidated" 1
    (Join_cache.invalidations cache);
  let stats = serve ctx1 in
  Alcotest.(check int) "evicted document re-misses" 1 stats.Op_stats.cache_misses

let test_min_nodes_admission () =
  (* Joins under the size threshold are declined in O(1): no probe, no
     store, a [rejected] tick — repeated small joins never hit. *)
  let ctx = Paper.figure3_context () in
  let cache =
    Join_cache.create ~capacity:64
      ~admission:(Join_cache.Admission.Min_nodes 100) ()
  in
  let stats = Op_stats.create () in
  let f1 = Fragment.of_nodes ctx [ 4; 5 ] and f2 = Fragment.of_nodes ctx [ 7; 9 ] in
  ignore (Join.fragment ~stats ~cache ctx f1 f2);
  ignore (Join.fragment ~stats ~cache ctx f1 f2);
  Alcotest.(check int) "both joins computed" 2 stats.Op_stats.fragment_joins;
  Alcotest.(check int) "both rejected" 2 stats.Op_stats.cache_rejected;
  Alcotest.(check int) "cache agrees" 2 (Join_cache.rejected cache);
  Alcotest.(check int) "no hits" 0 (Join_cache.hits cache);
  Alcotest.(check int) "nothing stored" 0 (Join_cache.length cache)

let test_second_touch_admission () =
  (* First miss is not stored (one-shot joins never pay insert churn);
     the second miss stores; the third request hits. *)
  let ctx = Paper.figure3_context () in
  let cache =
    Join_cache.create ~capacity:64 ~admission:Join_cache.Admission.Second_touch
      ()
  in
  let stats = Op_stats.create () in
  let f1 = Fragment.of_nodes ctx [ 4; 5 ] and f2 = Fragment.of_nodes ctx [ 7; 9 ] in
  ignore (Join.fragment ~stats ~cache ctx f1 f2);
  Alcotest.(check int) "first touch rejected" 1 stats.Op_stats.cache_rejected;
  Alcotest.(check int) "not stored yet" 0 (Join_cache.length cache);
  ignore (Join.fragment ~stats ~cache ctx f1 f2);
  Alcotest.(check int) "second touch stored" 1 (Join_cache.length cache);
  ignore (Join.fragment ~stats ~cache ctx f1 f2);
  Alcotest.(check int) "third touch hits" 1 stats.Op_stats.cache_hits;
  Alcotest.(check int) "two misses total" 2 stats.Op_stats.cache_misses

let test_admit_none_is_noop () =
  let ctx = Paper.figure3_context () in
  let cache =
    Join_cache.create ~capacity:64 ~admission:Join_cache.Admission.Admit_none ()
  in
  Alcotest.(check bool) "disabled" false (Join_cache.enabled cache);
  let stats = Op_stats.create () in
  let f1 = Fragment.of_nodes ctx [ 4; 5 ] and f2 = Fragment.of_nodes ctx [ 7; 9 ] in
  ignore (Join.fragment ~stats ~cache ctx f1 f2);
  ignore (Join.fragment ~stats ~cache ctx f1 f2);
  Alcotest.(check int) "all joins computed" 2 stats.Op_stats.fragment_joins;
  Alcotest.(check int) "no cache traffic" 0
    (Join_cache.hits cache + Join_cache.misses cache + Join_cache.length cache)

let test_admission_pays () =
  let open Join_cache.Admission in
  let pays admission pruned =
    Join_cache.pays (Join_cache.create ~capacity:8 ~admission ()) ~pruned
  in
  Alcotest.(check bool) "all/unpruned" true (pays Admit_all false);
  Alcotest.(check bool) "none/pruned" false (pays Admit_none true);
  Alcotest.(check bool) "default/pruned" true (pays (Min_nodes 0) true);
  Alcotest.(check bool) "default/unpruned" false (pays (Min_nodes 0) false);
  Alcotest.(check bool) "threshold/unpruned" true (pays (Min_nodes 8) false);
  Alcotest.(check bool) "second-touch/pruned" true (pays Second_touch true);
  Alcotest.(check bool) "second-touch/unpruned" false (pays Second_touch false);
  (* Env-string round trips. *)
  List.iter
    (fun a ->
      Alcotest.(check bool)
        (to_string a ^ " round-trips")
        true
        (of_string (to_string a) = Ok a))
    [ Admit_all; Admit_none; Min_nodes 0; Min_nodes 17; Second_touch ];
  Alcotest.(check bool) "garbage rejected" true
    (match of_string "bogus" with Error _ -> true | Ok _ -> false)

let test_join_cache_eviction_correctness () =
  (* A 2-entry cache under a workload with many distinct pairs: lots of
     evictions, answers still exact. *)
  let ctx = Random_tree.context ~seed:99 ~size:40 in
  let prng = Prng.create 99 in
  let s1 = Frag_set.of_list (List.init 8 (fun _ -> Random_tree.fragment ctx prng)) in
  let s2 = Frag_set.of_list (List.init 8 (fun _ -> Random_tree.fragment ctx prng)) in
  let cache = Join_cache.create ~capacity:2 ~admission:admit_all () in
  let cached = Join.pairwise ~cache ctx s1 s2 in
  Alcotest.check set_testable "tiny cache, same answers"
    (Join.pairwise ctx s1 s2) cached;
  Alcotest.(check bool) "evictions happened" true (Join_cache.evictions cache > 0);
  Alcotest.(check bool) "length bounded" true (Join_cache.length cache <= 2)

let test_join_cache_metrics_assoc () =
  let cache = Join_cache.create ~capacity:8 () in
  let keys = List.map fst (Join_cache.metrics_assoc cache) in
  List.iter
    (fun k -> Alcotest.(check bool) k true (List.mem k keys))
    [
      "cache.hits"; "cache.misses"; "cache.evictions"; "cache.invalidations";
      "cache.rejected"; "cache.entries"; "cache.interned"; "cache.partitions";
      "cache.stripes";
    ]

(* --- fewer joins with the cache on --- *)

let test_cache_reduces_fragment_joins () =
  let ctx = Random_tree.context ~seed:7 ~size:50 in
  let prng = Prng.create 7 in
  let seed =
    Frag_set.of_list
      (List.init 10 (fun _ -> Fragment.singleton (Random_tree.fragment ctx prng |> Fragment.root)))
  in
  let plain = Op_stats.create () in
  let baseline = Fixed_point.naive ~stats:plain ctx seed in
  let cached_stats = Op_stats.create () in
  let cache = Join_cache.create ~capacity:(1 lsl 12) ~admission:admit_all () in
  let cached = Fixed_point.naive ~stats:cached_stats ~cache ctx seed in
  Alcotest.check set_testable "fixed point unchanged" baseline cached;
  Alcotest.(check bool) "cache hits occurred" true
    (cached_stats.Op_stats.cache_hits > 0);
  Alcotest.(check bool) "fewer joins computed" true
    (cached_stats.Op_stats.fragment_joins < plain.Op_stats.fragment_joins);
  Alcotest.(check int) "work is conserved"
    plain.Op_stats.fragment_joins
    (cached_stats.Op_stats.fragment_joins + cached_stats.Op_stats.cache_hits)

(* --- property: serial / parallel / cached pairwise agree --- *)

let prop_pairwise_variants_agree =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"serial = parallel = cached (sets and stats)"
       ~count:60
       QCheck2.Gen.(pair (1 -- 10_000) (2 -- 40))
       (fun (seed, size) ->
         let ctx = Random_tree.context ~seed ~size in
         let prng = Prng.create (seed * 13) in
         let s1 =
           Frag_set.of_list (List.init 9 (fun _ -> Random_tree.fragment ctx prng))
         in
         let s2 =
           Frag_set.of_list (List.init 6 (fun _ -> Random_tree.fragment ctx prng))
         in
         let serial_stats = Op_stats.create () in
         let serial = Join.pairwise ~stats:serial_stats ctx s1 s2 in
         let agree name set (stats : Op_stats.t) =
           if not (Frag_set.equal serial set) then
             QCheck2.Test.fail_reportf "%s: sets differ" name;
           if stats.Op_stats.candidates <> serial_stats.Op_stats.candidates then
             QCheck2.Test.fail_reportf "%s: candidates %d <> serial %d" name
               stats.Op_stats.candidates serial_stats.Op_stats.candidates;
           if stats.Op_stats.duplicates <> serial_stats.Op_stats.duplicates then
             QCheck2.Test.fail_reportf "%s: duplicates %d <> serial %d" name
               stats.Op_stats.duplicates serial_stats.Op_stats.duplicates
         in
         List.iter
           (fun domains ->
             let stats = Op_stats.create () in
             let par = Join.pairwise_parallel ~stats ~domains ctx s1 s2 in
             agree (Printf.sprintf "parallel/%d" domains) par stats)
           [ 1; 2; 8 ];
         let cached_stats = Op_stats.create () in
         let cache = make_cache () in
         let cached = Join.pairwise ~stats:cached_stats ~cache ctx s1 s2 in
         agree "cached" cached cached_stats;
         (* Within one pairwise join, every candidate is either computed
            or served from the memo table. *)
         if
           cached_stats.Op_stats.fragment_joins + cached_stats.Op_stats.cache_hits
           <> serial_stats.Op_stats.fragment_joins
         then
           QCheck2.Test.fail_reportf
             "cached: joins %d + hits %d <> uncached joins %d"
             cached_stats.Op_stats.fragment_joins cached_stats.Op_stats.cache_hits
             serial_stats.Op_stats.fragment_joins;
         true))

(* --- cache on/off equality across every strategy, Table 1 document --- *)

(* The cache configurations the transparency tests sweep: the default,
   every admission policy, and striped synchronized variants — answers
   must be bit-identical under all of them. *)
let cache_variants () =
  [
    ("default", make_cache ());
    ("admit-all", Join_cache.create ~admission:admit_all ());
    ("admit-none", Join_cache.create ~admission:Join_cache.Admission.Admit_none ());
    ("min-nodes-3", Join_cache.create ~admission:(Join_cache.Admission.Min_nodes 3) ());
    ("second-touch", Join_cache.create ~admission:Join_cache.Admission.Second_touch ());
    ( "striped-2",
      Join_cache.create ~synchronized:true ~stripes:2 ~admission:admit_all () );
    ( "striped-7",
      Join_cache.create ~synchronized:true ~stripes:7
        ~admission:(Join_cache.Admission.Min_nodes 2) () );
  ]

let test_strategies_cache_transparent () =
  let ctx = Paper.figure1_context () in
  let queries =
    [
      (Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords, false);
      (Query.make ~filter:Filter.True Paper.query_keywords, false);
      (Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords, true);
    ]
  in
  List.iter
    (fun strategy ->
      List.iter
        (fun (q, strict) ->
          let baseline = Eval.answers ~strategy ~strict_leaf_semantics:strict ctx q in
          List.iter
            (fun (variant, cache) ->
              let cached =
                Eval.answers ~strategy ~strict_leaf_semantics:strict ~cache ctx q
              in
              Alcotest.check set_testable
                (Printf.sprintf "%s%s/%s cache-transparent"
                   (Eval.strategy_name strategy)
                   (if strict then " (strict)" else "")
                   variant)
                baseline cached;
              (* One shared cache across repeated evaluations must also
                 be transparent (this is the service configuration). *)
              let again =
                Eval.answers ~strategy ~strict_leaf_semantics:strict ~cache ctx q
              in
              Alcotest.check set_testable
                (Printf.sprintf "%s/%s warm re-run"
                   (Eval.strategy_name strategy)
                   variant)
                baseline again)
            (cache_variants ()))
        queries)
    (Eval.Auto :: Eval.all_strategies)

(* --- cross-document sharing: the regression this PR exists for --- *)

let test_cross_document_sharing_stays_warm () =
  (* One shared (synchronized, striped) cache, two documents, requests
     alternating between them — the old single-generation design
     invalidated the whole table on every switch (zero hits forever);
     per-document partitions must keep both documents warm: hit count
     grows every round after the first and no invalidation ever fires. *)
  let cache =
    Join_cache.create ~synchronized:true ~stripes:4 ~admission:admit_all ()
  in
  let ctx_a = Paper.figure1_context () in
  let ctx_b = Random_tree.context ~seed:11 ~size:30 in
  let q = Query.make ~filter:(Filter.Size_at_most 4) Paper.query_keywords in
  let qb = Query.make ~filter:(Filter.Size_at_most 4) [ "n1"; "n2" ] in
  let baseline_a = Eval.answers ~strategy:Eval.Semi_naive ctx_a q in
  let baseline_b = Eval.answers ~strategy:Eval.Semi_naive ctx_b qb in
  let round () =
    Alcotest.check set_testable "doc A answers stable" baseline_a
      (Eval.answers ~strategy:Eval.Semi_naive ~cache ctx_a q);
    Alcotest.check set_testable "doc B answers stable" baseline_b
      (Eval.answers ~strategy:Eval.Semi_naive ~cache ctx_b qb)
  in
  round ();
  let warm = Join_cache.hits cache in
  let prev = ref warm in
  for _ = 1 to 3 do
    round ();
    let now = Join_cache.hits cache in
    Alcotest.(check bool) "hits grow every alternating round" true (now > !prev);
    prev := now
  done;
  Alcotest.(check int) "no invalidation storm" 0 (Join_cache.invalidations cache);
  (* Partitions are per (stripe, document): both documents hold at
     least one, and nothing beyond what 2 documents over 4 stripes can
     occupy. *)
  let parts = Join_cache.partitions cache in
  Alcotest.(check bool) "both documents partitioned" true
    (parts >= 2 && parts <= 8)

let test_striped_cache_concurrent_domains () =
  (* Four domains hammer one striped cache across two documents; every
     evaluation must keep returning the baseline answer set. *)
  let cache =
    Join_cache.create ~synchronized:true ~stripes:4 ~admission:admit_all ()
  in
  let ctx_a = Paper.figure1_context () in
  let ctx_b = Random_tree.context ~seed:23 ~size:40 in
  let q_a = Query.make ~filter:(Filter.Size_at_most 4) Paper.query_keywords in
  let q_b = Query.make ~filter:(Filter.Size_at_most 4) [ "n1"; "n3" ] in
  let baseline_a = Eval.answers ~strategy:Eval.Semi_naive ctx_a q_a in
  let baseline_b = Eval.answers ~strategy:Eval.Semi_naive ctx_b q_b in
  let errors = Atomic.make 0 in
  let worker i () =
    let ctx, q, baseline =
      if i mod 2 = 0 then (ctx_a, q_a, baseline_a) else (ctx_b, q_b, baseline_b)
    in
    for _ = 1 to 8 do
      let got = Eval.answers ~strategy:Eval.Semi_naive ~cache ctx q in
      if not (Frag_set.equal got baseline) then Atomic.incr errors
    done
  in
  let domains = List.init 4 (fun i -> Domain.spawn (worker i)) in
  List.iter Domain.join domains;
  Alcotest.(check int) "all concurrent answers exact" 0 (Atomic.get errors);
  Alcotest.(check bool) "shared cache saw traffic" true
    (Join_cache.hits cache + Join_cache.misses cache > 0)

let test_auto_probe_charged_once () =
  (* The Auto probe reduces each keyword set; when Set_reduction wins the
     probe's reduced seeds must be reused, not recomputed.  Compare
     against an explicit Set_reduction run: Auto's reduce work must not
     exceed it (it was exactly double before the fix). *)
  let ctx = Paper.figure1_context () in
  let q = Query.make ~filter:Filter.True Paper.query_keywords in
  let auto = Eval.run ~strategy:Eval.Auto ctx q in
  let explicit = Eval.run ~strategy:Eval.Set_reduction ctx q in
  Alcotest.check set_testable "same answers" explicit.Eval.answers auto.Eval.answers;
  if auto.Eval.strategy_used = Eval.Set_reduction then
    Alcotest.(check int) "probe reduce reused, not repeated"
      explicit.Eval.stats.Op_stats.reduce_subset_checks
      auto.Eval.stats.Op_stats.reduce_subset_checks

let () =
  Alcotest.run "cache"
    [
      ( "lru",
        [
          Alcotest.test_case "eviction order" `Quick test_lru_eviction_order;
          Alcotest.test_case "counters and clear" `Quick test_lru_counters_and_clear;
          Alcotest.test_case "capacity 0 is a no-op" `Quick test_lru_disabled;
          Alcotest.test_case "generation invalidation" `Quick test_lru_generation;
        ] );
      ( "interner",
        [ Alcotest.test_case "dense ids, structural sharing" `Quick test_interner ] );
      ( "join-cache",
        [
          Alcotest.test_case "commutative hits" `Quick test_join_cache_hits;
          Alcotest.test_case "per-document partitions" `Quick
            test_join_cache_per_document_partitions;
          Alcotest.test_case "retire one generation" `Quick
            test_join_cache_retire;
          Alcotest.test_case "partition eviction bound" `Quick
            test_join_cache_partition_eviction;
          Alcotest.test_case "eviction keeps answers exact" `Quick
            test_join_cache_eviction_correctness;
          Alcotest.test_case "metrics assoc keys" `Quick test_join_cache_metrics_assoc;
          Alcotest.test_case "cache reduces fragment joins" `Quick
            test_cache_reduces_fragment_joins;
        ] );
      ( "admission",
        [
          Alcotest.test_case "min-nodes threshold" `Quick test_min_nodes_admission;
          Alcotest.test_case "second touch" `Quick test_second_touch_admission;
          Alcotest.test_case "admit-none is a no-op" `Quick test_admit_none_is_noop;
          Alcotest.test_case "pays model" `Quick test_admission_pays;
        ] );
      ( "sharing",
        [
          Alcotest.test_case "alternating documents stay warm" `Quick
            test_cross_document_sharing_stays_warm;
          Alcotest.test_case "striped cache under concurrent domains" `Quick
            test_striped_cache_concurrent_domains;
        ] );
      ( "properties",
        [
          prop_pairwise_variants_agree;
          Alcotest.test_case "all strategies cache-transparent" `Quick
            test_strategies_cache_transparent;
          Alcotest.test_case "auto probe charged once" `Quick
            test_auto_probe_charged_once;
        ] );
    ]
