(* Tests for the unified Exec.Request API: builders, query conversion,
   and the single JSON codec every front end (CLI, /query, /explain,
   /corpus/query) decodes through. *)

module Exec = Xfrag_core.Exec
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Deadline = Xfrag_core.Deadline
module Json = Xfrag_obs.Json

let decode ?default_deadline_ns s =
  match Json.of_string s with
  | Error e -> Alcotest.failf "test fixture is not JSON: %s" e
  | Ok j -> Exec.Request.of_json ?default_deadline_ns j

let expect_error name expected = function
  | Ok (_ : Exec.Request.t) -> Alcotest.failf "%s: expected an error" name
  | Error msg -> Alcotest.(check string) name expected msg

let expect_ok name = function
  | Ok r -> r
  | Error msg -> Alcotest.failf "%s: unexpected error %S" name msg

(* --- builders and query conversion --- *)

let test_default_and_builders () =
  let r =
    Exec.Request.default
    |> Exec.Request.with_keywords [ "xml"; "index" ]
    |> Exec.Request.with_filter (Filter.Size_at_most 4)
    |> Exec.Request.with_strategy Exec.Semi_naive
    |> Exec.Request.with_strict_leaf true
    |> Exec.Request.with_limit (Some 7)
  in
  Alcotest.(check (list string)) "keywords" [ "xml"; "index" ]
    r.Exec.Request.keywords;
  Alcotest.(check bool) "strategy" true (r.Exec.Request.strategy = Exec.Semi_naive);
  Alcotest.(check bool) "strict" true r.Exec.Request.strict_leaf;
  Alcotest.(check (option int)) "limit" (Some 7) r.Exec.Request.limit;
  Alcotest.(check bool) "default deadline is none" true
    (Deadline.is_none Exec.Request.default.Exec.Request.deadline);
  Alcotest.(check (option int)) "default limit unlimited" None
    Exec.Request.default.Exec.Request.limit

let test_query_round_trip () =
  let q = Query.make ~filter:(Filter.Height_at_most 2) [ "alpha"; "beta" ] in
  let r = Exec.Request.of_query q in
  let q' = Exec.Request.to_query r in
  Alcotest.(check (list string)) "keywords survive" q.Query.keywords q'.Query.keywords;
  Alcotest.(check bool) "filter survives" true (q.Query.filter = q'.Query.filter)

let test_to_query_validates () =
  match Exec.Request.to_query Exec.Request.default with
  | (_ : Query.t) -> Alcotest.fail "empty keywords must be rejected"
  | exception Invalid_argument _ -> ()

(* --- strategy names --- *)

let test_strategy_round_trip () =
  List.iter
    (fun s ->
      match Exec.strategy_of_string (Exec.strategy_name s) with
      | Ok s' -> Alcotest.(check bool) (Exec.strategy_name s) true (s = s')
      | Error e -> Alcotest.fail e)
    (Exec.Auto :: Exec.all_strategies);
  (match Exec.strategy_of_string "wat" with
  | Ok _ -> Alcotest.fail "unknown strategy accepted"
  | Error _ -> ())

(* --- deadline_of_ms: the one overflow rule --- *)

let test_deadline_of_ms () =
  (match Exec.deadline_of_ms 50 with
  | Ok d -> Alcotest.(check bool) "live deadline" false (Deadline.expired d)
  | Error e -> Alcotest.fail e);
  expect_error "negative" "deadline_ms must be non-negative"
    (Result.map (fun _ -> Exec.Request.default) (Exec.deadline_of_ms (-1)));
  expect_error "overflow" "deadline_ms too large"
    (Result.map
       (fun _ -> Exec.Request.default)
       (Exec.deadline_of_ms ((max_int / 1_000_000) + 1)))

(* --- the JSON codec --- *)

let test_of_json_minimal () =
  let r = expect_ok "minimal" (decode {|{"keywords":["xml"]}|}) in
  Alcotest.(check (list string)) "keywords" [ "xml" ] r.Exec.Request.keywords;
  Alcotest.(check bool) "filter true" true (r.Exec.Request.filter = Filter.True);
  Alcotest.(check bool) "auto" true (r.Exec.Request.strategy = Exec.Auto);
  Alcotest.(check bool) "no deadline" true (Deadline.is_none r.Exec.Request.deadline);
  Alcotest.(check (option int)) "default limit 100" (Some 100) r.Exec.Request.limit

let test_of_json_full () =
  let r =
    expect_ok "full"
      (decode
         {|{"keywords":["a","b"],"filter":"size<=5",
            "filters":{"max_size":9,"max_height":3},
            "strategy":"semi-naive","strict_leaf":true,
            "deadline_ms":1000,"limit":5}|})
  in
  Alcotest.(check (list string)) "keywords" [ "a"; "b" ] r.Exec.Request.keywords;
  Alcotest.(check bool) "strategy" true (r.Exec.Request.strategy = Exec.Semi_naive);
  Alcotest.(check bool) "strict" true r.Exec.Request.strict_leaf;
  Alcotest.(check (option int)) "limit" (Some 5) r.Exec.Request.limit;
  Alcotest.(check bool) "deadline live" false (Deadline.expired r.Exec.Request.deadline);
  (* filter and filters conjoin into a non-trivial predicate. *)
  match r.Exec.Request.filter with
  | Filter.True -> Alcotest.fail "filters were dropped"
  | _ -> ()

let test_of_json_errors () =
  expect_error "missing keywords" "missing \"keywords\"" (decode {|{}|});
  expect_error "keywords not array" "\"keywords\" must be an array"
    (decode {|{"keywords":"xml"}|});
  expect_error "empty keyword" "\"keywords\" must be non-empty strings"
    (decode {|{"keywords":[""]}|});
  expect_error "non-string keyword" "\"keywords\" must be non-empty strings"
    (decode {|{"keywords":[3]}|});
  (match decode {|{"keywords":[]}|} with
  | Ok _ -> Alcotest.fail "empty keyword list accepted"
  | Error _ -> ());
  (match decode {|{"keywords":["a"],"filter":"size<=x"}|} with
  | Error msg ->
      Alcotest.(check bool) "filter error is prefixed" true
        (String.length msg > 14 && String.sub msg 0 14 = {|bad "filter": |})
  | Ok _ -> Alcotest.fail "bad filter accepted");
  expect_error "bad strategy" "unknown strategy \"wat\""
    (decode {|{"keywords":["a"],"strategy":"wat"}|});
  expect_error "bad strict_leaf" "\"strict_leaf\" must be a boolean"
    (decode {|{"keywords":["a"],"strict_leaf":3}|});
  expect_error "negative deadline" "deadline_ms must be non-negative"
    (decode {|{"keywords":["a"],"deadline_ms":-5}|});
  expect_error "overflowing deadline" "deadline_ms too large"
    (decode
       (Printf.sprintf {|{"keywords":["a"],"deadline_ms":%d}|}
          ((max_int / 1_000_000) + 1)))

let test_of_json_limit_rules () =
  let limit s = (expect_ok s (decode s)).Exec.Request.limit in
  Alcotest.(check (option int)) "absent -> 100" (Some 100)
    (limit {|{"keywords":["a"]}|});
  Alcotest.(check (option int)) "zero -> unlimited" None
    (limit {|{"keywords":["a"],"limit":0}|});
  Alcotest.(check (option int)) "negative -> unlimited" None
    (limit {|{"keywords":["a"],"limit":-2}|});
  Alcotest.(check (option int)) "positive kept" (Some 3)
    (limit {|{"keywords":["a"],"limit":3}|})

let test_of_json_default_deadline () =
  let r =
    expect_ok "default applied"
      (decode ~default_deadline_ns:1_000_000_000 {|{"keywords":["a"]}|})
  in
  Alcotest.(check bool) "deadline set" false
    (Deadline.is_none r.Exec.Request.deadline);
  let r =
    expect_ok "body overrides default"
      (decode ~default_deadline_ns:1 {|{"keywords":["a"],"deadline_ms":60000}|})
  in
  Alcotest.(check bool) "body deadline wins (not yet expired)" false
    (Deadline.expired r.Exec.Request.deadline)

let test_of_body () =
  (match Exec.Request.of_body {|{"keywords":["a"]}|} with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  match Exec.Request.of_body "{nope" with
  | Ok _ -> Alcotest.fail "malformed body accepted"
  | Error msg ->
      Alcotest.(check bool) "prefixed" true
        (String.length msg > 14 && String.sub msg 0 14 = "bad JSON body:")

let test_json_round_trip () =
  let r =
    Exec.Request.default
    |> Exec.Request.with_keywords [ "xml"; "query" ]
    |> Exec.Request.with_filter (Filter.Size_at_most 4)
    |> Exec.Request.with_strategy Exec.Pushdown
    |> Exec.Request.with_strict_leaf true
    |> Exec.Request.with_limit (Some 9)
  in
  let r' = expect_ok "decode(encode)" (
    Exec.Request.of_json (Exec.Request.to_json r)) in
  Alcotest.(check (list string)) "keywords" r.Exec.Request.keywords
    r'.Exec.Request.keywords;
  Alcotest.(check bool) "filter" true
    (r.Exec.Request.filter = r'.Exec.Request.filter);
  Alcotest.(check bool) "strategy" true
    (r.Exec.Request.strategy = r'.Exec.Request.strategy);
  Alcotest.(check bool) "strict" true
    (r.Exec.Request.strict_leaf = r'.Exec.Request.strict_leaf);
  Alcotest.(check (option int)) "limit" r.Exec.Request.limit r'.Exec.Request.limit;
  (* Unlimited serializes as 0 and decodes back to unlimited. *)
  let unl = Exec.Request.with_limit None r in
  let unl' = expect_ok "unlimited" (Exec.Request.of_json (Exec.Request.to_json unl)) in
  Alcotest.(check (option int)) "unlimited survives" None unl'.Exec.Request.limit

let () =
  Alcotest.run "exec"
    [
      ( "request",
        [
          Alcotest.test_case "builders" `Quick test_default_and_builders;
          Alcotest.test_case "query round trip" `Quick test_query_round_trip;
          Alcotest.test_case "to_query validates" `Quick test_to_query_validates;
          Alcotest.test_case "strategy names" `Quick test_strategy_round_trip;
          Alcotest.test_case "deadline_of_ms" `Quick test_deadline_of_ms;
        ] );
      ( "codec",
        [
          Alcotest.test_case "minimal body" `Quick test_of_json_minimal;
          Alcotest.test_case "full body" `Quick test_of_json_full;
          Alcotest.test_case "validation errors" `Quick test_of_json_errors;
          Alcotest.test_case "limit rules" `Quick test_of_json_limit_rules;
          Alcotest.test_case "default deadline" `Quick test_of_json_default_deadline;
          Alcotest.test_case "of_body" `Quick test_of_body;
          Alcotest.test_case "json round trip" `Quick test_json_round_trip;
        ] );
    ]
