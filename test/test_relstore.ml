(* Tests for the mini relational engine and the relational
   implementation of the fragment algebra ([13]). *)

module Value = Xfrag_relstore.Value
module Schema = Xfrag_relstore.Schema
module Relation = Xfrag_relstore.Relation
module Database = Xfrag_relstore.Database
module Relalg = Xfrag_relstore.Relalg
module Mapping = Xfrag_relstore.Mapping
module Frag_rel = Xfrag_relstore.Frag_rel
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Paper = Xfrag_workload.Paper_doc
module Int_sorted = Xfrag_util.Int_sorted

let set_testable = Alcotest.testable Frag_set.pp Frag_set.equal

(* --- values and schemas --- *)

let test_value_order () =
  Alcotest.(check bool) "null < int" true (Value.compare Value.Null (Value.Int 0) < 0);
  Alcotest.(check bool) "int < text" true (Value.compare (Value.Int 5) (Value.Text "a") < 0);
  Alcotest.(check int) "int order" (-1) (Value.compare (Value.Int 1) (Value.Int 2));
  Alcotest.(check bool) "hash equal consistent" true
    (Value.hash (Value.Text "x") = Value.hash (Value.Text "x"))

let test_schema () =
  let s = Schema.make [ ("id", Schema.Tint); ("name", Schema.Ttext) ] in
  Alcotest.(check int) "arity" 2 (Schema.arity s);
  Alcotest.(check int) "position" 1 (Schema.position s "name");
  Alcotest.(check bool) "mem" true (Schema.mem s "id");
  Alcotest.(check bool) "not mem" false (Schema.mem s "nope");
  (match Schema.make [ ("a", Schema.Tint); ("a", Schema.Tint) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected duplicate-column rejection");
  let r = Schema.rename ~prefix:"t" s in
  Alcotest.(check int) "renamed position" 0 (Schema.position r "t.id")

let test_relation_basics () =
  let s = Schema.make [ ("id", Schema.Tint) ] in
  let r = Relation.of_rows s [ [| Value.Int 1 |]; [| Value.Int 2 |] ] in
  Alcotest.(check int) "cardinality" 2 (Relation.cardinality r);
  (match Relation.insert r [| Value.Int 1; Value.Int 2 |] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity mismatch rejection");
  Alcotest.(check int) "column values" 2
    (List.length (Relation.column_values r "id"))

(* --- a small database for operator tests --- *)

let people_db () =
  let db = Database.create () in
  Database.create_table db "person"
    (Schema.make [ ("id", Schema.Tint); ("name", Schema.Ttext); ("age", Schema.Tint) ]);
  Database.create_table db "city"
    (Schema.make [ ("person", Schema.Tint); ("city", Schema.Ttext) ]);
  Database.create_index db ~table:"person" ~column:"id";
  List.iter
    (fun (id, name, age) ->
      Database.insert db "person" [| Value.Int id; Value.Text name; Value.Int age |])
    [ (1, "ada", 36); (2, "bob", 17); (3, "cyd", 63); (4, "dee", 17) ];
  List.iter
    (fun (p, c) -> Database.insert db "city" [| Value.Int p; Value.Text c |])
    [ (1, "paris"); (2, "oslo"); (3, "paris") ];
  db

let test_scan_select () =
  let db = people_db () in
  let r =
    Relalg.eval db
      (Relalg.Select
         ( Relalg.Le (Relalg.Col "p.age", Relalg.Const (Value.Int 17)),
           Relalg.Scan { table = "person"; alias = "p" } ))
  in
  Alcotest.(check int) "two minors" 2 (Relation.cardinality r)

let test_project () =
  let db = people_db () in
  let r =
    Relalg.eval db
      (Relalg.Project ([ "p.name" ], Relalg.Scan { table = "person"; alias = "p" }))
  in
  Alcotest.(check int) "arity 1" 1 (Schema.arity (Relation.schema r));
  Alcotest.(check int) "4 rows" 4 (Relation.cardinality r)

let test_hash_join () =
  let db = people_db () in
  let r =
    Relalg.eval db
      (Relalg.Hash_join
         {
           left = Relalg.Scan { table = "person"; alias = "p" };
           right = Relalg.Scan { table = "city"; alias = "c" };
           on = [ ("p.id", "c.person") ];
         })
  in
  Alcotest.(check int) "three matches" 3 (Relation.cardinality r);
  Alcotest.(check int) "concatenated arity" 5 (Schema.arity (Relation.schema r))

let test_nested_loop_join () =
  let db = people_db () in
  let r =
    Relalg.eval db
      (Relalg.Nested_loop_join
         {
           left = Relalg.Scan { table = "person"; alias = "p" };
           right = Relalg.Scan { table = "person"; alias = "q" };
           pred = Relalg.Lt (Relalg.Col "p.age", Relalg.Col "q.age");
         })
  in
  (* pairs with strictly increasing age: (17,36)×2, (17,63)×2, (36,63) *)
  Alcotest.(check int) "five pairs" 5 (Relation.cardinality r)

let test_distinct_union_orderby_limit () =
  let db = people_db () in
  let ages = Relalg.Project ([ "p.age" ], Relalg.Scan { table = "person"; alias = "p" }) in
  let distinct = Relalg.eval db (Relalg.Distinct ages) in
  Alcotest.(check int) "three distinct ages" 3 (Relation.cardinality distinct);
  let union = Relalg.eval db (Relalg.Union (ages, ages)) in
  Alcotest.(check int) "bag union" 8 (Relation.cardinality union);
  let ordered = Relalg.eval db (Relalg.Order_by ([ "p.age" ], ages)) in
  (match Relation.rows ordered with
  | first :: _ -> Alcotest.(check int) "min first" 17 (Value.to_int first.(0))
  | [] -> Alcotest.fail "empty");
  let limited = Relalg.eval db (Relalg.Limit (2, ages)) in
  Alcotest.(check int) "limit" 2 (Relation.cardinality limited)

let test_group_by () =
  let db = people_db () in
  let r =
    Relalg.eval db
      (Relalg.Group_by
         {
           keys = [ "p.age" ];
           aggregates =
             [
               (Relalg.Count, "", "n");
               (Relalg.Min, "p.id", "min_id");
               (Relalg.Max, "p.id", "max_id");
               (Relalg.Sum, "p.id", "sum_id");
             ];
           input = Relalg.Scan { table = "person"; alias = "p" };
         })
  in
  Alcotest.(check int) "three groups" 3 (Relation.cardinality r);
  (* age 17 group: ids 2 and 4 *)
  let age17 =
    List.find
      (fun row -> Value.equal row.(0) (Value.Int 17))
      (Relation.rows r)
  in
  Alcotest.(check int) "count" 2 (Value.to_int age17.(1));
  Alcotest.(check int) "min" 2 (Value.to_int age17.(2));
  Alcotest.(check int) "max" 4 (Value.to_int age17.(3));
  Alcotest.(check int) "sum" 6 (Value.to_int age17.(4))

let test_group_by_empty_keys () =
  let db = people_db () in
  let r =
    Relalg.eval db
      (Relalg.Group_by
         {
           keys = [];
           aggregates = [ (Relalg.Count, "", "n") ];
           input = Relalg.Scan { table = "person"; alias = "p" };
         })
  in
  Alcotest.(check int) "single row" 1 (Relation.cardinality r);
  Alcotest.(check int) "count all" 4
    (Value.to_int (List.hd (Relation.rows r)).(0))

let test_rename () =
  let db = people_db () in
  let r =
    Relalg.eval db
      (Relalg.Rename
         ( [ "x"; "y"; "z" ],
           Relalg.Scan { table = "person"; alias = "p" } ))
  in
  Alcotest.(check int) "renamed position" 2 (Schema.position (Relation.schema r) "z");
  match
    Relalg.eval db
      (Relalg.Rename ([ "only" ], Relalg.Scan { table = "person"; alias = "p" }))
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected arity mismatch"

let test_index_lookup () =
  let db = people_db () in
  let r =
    Relalg.eval db
      (Relalg.Index_lookup
         { table = "person"; alias = "p"; column = "id"; key = Value.Int 3 })
  in
  Alcotest.(check int) "one row" 1 (Relation.cardinality r);
  let miss =
    Relalg.eval db
      (Relalg.Index_lookup
         { table = "person"; alias = "p"; column = "id"; key = Value.Int 99 })
  in
  Alcotest.(check int) "no rows" 0 (Relation.cardinality miss)

let test_index_maintained_on_insert () =
  let db = people_db () in
  Database.insert db "person" [| Value.Int 9; Value.Text "eve"; Value.Int 30 |];
  Alcotest.(check int) "new row visible via index" 1
    (List.length (Database.index_lookup db ~table:"person" ~column:"id" (Value.Int 9)))

(* --- mapping --- *)

let test_mapping_tables () =
  let db = Mapping.of_doctree (Paper.figure1 ()) in
  Alcotest.(check int) "82 node rows" 82 Mapping.(node_count db);
  Alcotest.(check (list string)) "tables" [ "keyword"; "node" ] (Database.table_names db);
  (* ancestorhood as a relational predicate: n1 is an ancestor of n17 *)
  let r =
    Relalg.eval db
      (Relalg.Select
         ( Relalg.And
             ( Relalg.Lt (Relalg.Col "a.id", Relalg.Col "b.id"),
               Relalg.Le (Relalg.Col "b.id", Relalg.Col "a.last") ),
           Relalg.Nested_loop_join
             {
               left =
                 Relalg.Index_lookup
                   { table = "node"; alias = "a"; column = "id"; key = Value.Int 1 };
               right =
                 Relalg.Index_lookup
                   { table = "node"; alias = "b"; column = "id"; key = Value.Int 17 };
               pred = Relalg.True;
             } ))
  in
  Alcotest.(check int) "ancestor predicate holds" 1 (Relation.cardinality r)

(* --- frag_rel --- *)

let frag_rel () = Frag_rel.of_doctree (Paper.figure1 ())

let test_frag_rel_postings () =
  let t = frag_rel () in
  Alcotest.(check (list int)) "xquery" [ 17; 18 ]
    (Int_sorted.to_list (Frag_rel.postings t "xquery"));
  Alcotest.(check (list int)) "optimization" [ 16; 17; 81 ]
    (Int_sorted.to_list (Frag_rel.postings t "OPTIMIZATION"));
  Alcotest.(check (list int)) "missing" [] (Int_sorted.to_list (Frag_rel.postings t "zzz"))

let test_frag_rel_navigation () =
  let t = frag_rel () in
  Alcotest.(check (option int)) "parent 17" (Some 16) (Frag_rel.parent t 17);
  Alcotest.(check (option int)) "parent 0" None (Frag_rel.parent t 0);
  Alcotest.(check int) "depth 17" 4 (Frag_rel.depth t 17);
  Alcotest.(check (list int)) "path 17-81 (set)" [ 0; 1; 14; 16; 17; 79; 80; 81 ]
    (List.sort compare (Frag_rel.path t 17 81));
  Alcotest.(check (list int)) "path self" [ 17 ] (Frag_rel.path t 17 17)

let test_frag_rel_join () =
  let t = frag_rel () in
  let ctx = Paper.figure1_context () in
  let j =
    Frag_rel.join_fragments t (Fragment.singleton 17) (Fragment.singleton 18)
  in
  Alcotest.(check bool) "⟨16,17,18⟩" true
    (Fragment.equal j (Fragment.of_nodes ctx [ 16; 17; 18 ]))

let test_frag_rel_query_matches_native () =
  let t = frag_rel () in
  let ctx = Paper.figure1_context () in
  let relational = Frag_rel.eval_query ~size_limit:3 t ~keywords:Paper.query_keywords in
  let native =
    Eval.answers ctx (Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords)
  in
  Alcotest.check set_testable "same answers" native relational;
  Alcotest.(check bool) "issued relational queries" true (Frag_rel.queries_issued t > 0)

let test_frag_rel_query_unfiltered () =
  let t = frag_rel () in
  let ctx = Paper.figure1_context () in
  let relational = Frag_rel.eval_query t ~keywords:Paper.query_keywords in
  let native = Eval.answers ctx (Query.make Paper.query_keywords) in
  Alcotest.check set_testable "same answers (no filter)" native relational

let test_frag_rel_random_docs () =
  for seed = 1 to 10 do
    let tree = Xfrag_workload.Random_tree.tree ~seed ~size:30 in
    let t = Frag_rel.of_doctree tree in
    let ctx = Xfrag_core.Context.create tree in
    let keywords = [ Printf.sprintf "id%d" (seed mod 30); "tok3" ] in
    let native =
      match
        Eval.answers ctx (Query.make ~filter:(Filter.Size_at_most 4) keywords)
      with
      | s -> s
      | exception Invalid_argument _ -> (Frag_set.empty ())
    in
    let relational = Frag_rel.eval_query ~size_limit:4 t ~keywords in
    if not (Frag_set.equal native relational) then
      Alcotest.failf "seed %d: relational and native answers differ" seed
  done

(* --- ordered index --- *)

module Ordered_index = Xfrag_relstore.Ordered_index

let test_ordered_index_basics () =
  let db = people_db () in
  let idx = Ordered_index.build (Database.table db "person") ~column:"age" in
  Alcotest.(check int) "cardinality" 4 (Ordered_index.cardinality idx);
  Alcotest.(check (option int)) "min" (Some 17) (Ordered_index.min_key idx);
  Alcotest.(check (option int)) "max" (Some 63) (Ordered_index.max_key idx);
  Alcotest.(check int) "point hit" 2 (List.length (Ordered_index.point idx 17));
  Alcotest.(check int) "point miss" 0 (List.length (Ordered_index.point idx 99));
  Alcotest.(check int) "range" 3 (List.length (Ordered_index.range idx ~lo:17 ~hi:40));
  Alcotest.(check int) "empty range" 0 (List.length (Ordered_index.range idx ~lo:40 ~hi:17))

let test_ordered_index_rejects_text () =
  let db = people_db () in
  match Ordered_index.build (Database.table db "person") ~column:"name" with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected rejection of a text column"

let test_ordered_index_descendant_scan () =
  (* The pre-order interval encoding: descendants of v are the node rows
     with v < id <= last(v), one range scan. *)
  let db = Mapping.of_doctree (Paper.figure1 ()) in
  let idx = Ordered_index.build (Database.table db "node") ~column:"id" in
  let last_of v =
    match Database.index_lookup db ~table:"node" ~column:"id" (Value.Int v) with
    | [ row ] -> Value.to_int row.(Schema.position Mapping.node_schema "last")
    | _ -> Alcotest.fail "node lookup"
  in
  let descendants v =
    Ordered_index.range idx ~lo:(v + 1) ~hi:(last_of v)
    |> List.map (fun row -> Value.to_int row.(0))
  in
  Alcotest.(check (list int)) "descendants of n16" [ 17; 18 ] (descendants 16);
  Alcotest.(check (list int)) "descendants of n79" [ 80; 81 ] (descendants 79);
  Alcotest.(check int) "descendants of root" 81 (List.length (descendants 0))

(* --- frag_tables: set-at-a-time relational fragment algebra --- *)

module Frag_tables = Xfrag_relstore.Frag_tables

let test_frag_tables_roundtrip () =
  let ctx = Paper.figure1_context () in
  let set =
    Frag_set.of_list
      [ Fragment.of_nodes ctx [ 16; 17; 18 ]; Fragment.singleton 81 ]
  in
  let back = Frag_tables.set_of_relation (Frag_tables.relation_of_set set) in
  Alcotest.check set_testable "round trip" set back

let test_frag_tables_pairwise_matches_native () =
  let tree = Paper.figure1 () in
  let ctx = Paper.figure1_context () in
  let t = Frag_tables.of_doctree tree in
  let s1 =
    Frag_set.of_list [ Fragment.singleton 17; Fragment.singleton 18 ]
  in
  let s2 =
    Frag_set.of_list
      [ Fragment.singleton 16; Fragment.singleton 17; Fragment.singleton 81 ]
  in
  let native = Xfrag_core.Join.pairwise ctx s1 s2 in
  let relational = Frag_tables.pairwise_join t s1 s2 in
  Alcotest.check set_testable "pairwise join" native relational

let test_frag_tables_pairwise_nonsingleton_fragments () =
  let tree = Paper.figure1 () in
  let ctx = Paper.figure1_context () in
  let t = Frag_tables.of_doctree tree in
  let s1 = Frag_set.of_list [ Fragment.of_nodes ctx [ 16; 17 ] ] in
  let s2 =
    Frag_set.of_list [ Fragment.of_nodes ctx [ 79; 80; 81 ]; Fragment.singleton 14 ]
  in
  let native = Xfrag_core.Join.pairwise ctx s1 s2 in
  Alcotest.check set_testable "non-singleton inputs" native
    (Frag_tables.pairwise_join t s1 s2)

let test_frag_tables_empty_operands () =
  let t = Frag_tables.of_doctree (Paper.figure1 ()) in
  let s = Frag_set.of_list [ Fragment.singleton 17 ] in
  Alcotest.(check int) "left empty" 0
    (Frag_set.cardinal (Frag_tables.pairwise_join t (Frag_set.empty ()) s));
  Alcotest.(check int) "right empty" 0
    (Frag_set.cardinal (Frag_tables.pairwise_join t s (Frag_set.empty ())))

let test_frag_tables_fixed_point_matches_native () =
  let tree = Paper.figure1 () in
  let ctx = Paper.figure1_context () in
  let t = Frag_tables.of_doctree tree in
  let s =
    Frag_set.of_list
      [ Fragment.singleton 16; Fragment.singleton 17; Fragment.singleton 81 ]
  in
  Alcotest.check set_testable "F2+" (Xfrag_core.Fixed_point.naive ctx s)
    (Frag_tables.fixed_point t s)

let test_frag_tables_query_matches_native () =
  let tree = Paper.figure1 () in
  let ctx = Paper.figure1_context () in
  let t = Frag_tables.of_doctree tree in
  let native =
    Eval.answers ctx (Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords)
  in
  Alcotest.check set_testable "paper query"
    native
    (Frag_tables.eval_query ~size_limit:3 t ~keywords:Paper.query_keywords)

let frag_tables_random_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"set-at-a-time pairwise join = native" ~count:30
       QCheck2.Gen.(pair (1 -- 10_000) (3 -- 25))
       (fun (seed, size) ->
         let tree = Xfrag_workload.Random_tree.tree ~seed ~size in
         let ctx = Xfrag_core.Context.create tree in
         let t = Frag_tables.of_doctree tree in
         let prng = Xfrag_util.Prng.create (seed * 53) in
         let s1 = Xfrag_workload.Random_tree.fragment_set ctx prng ~max_fragments:3 in
         let s2 = Xfrag_workload.Random_tree.fragment_set ctx prng ~max_fragments:3 in
         Frag_set.equal (Xfrag_core.Join.pairwise ctx s1 s2)
           (Frag_tables.pairwise_join t s1 s2)))

(* --- operator properties on random tables --- *)

let random_db_and_tables prng =
  let db = Database.create () in
  Database.create_table db "r"
    (Schema.make [ ("a", Schema.Tint); ("b", Schema.Tint) ]);
  Database.create_table db "s"
    (Schema.make [ ("c", Schema.Tint); ("d", Schema.Tint) ]);
  let fill name cols =
    let rows = Xfrag_util.Prng.int prng 20 in
    for _ = 1 to rows do
      Database.insert db name
        (Array.init cols (fun _ -> Value.Int (Xfrag_util.Prng.int prng 6)))
    done
  in
  fill "r" 2;
  fill "s" 2;
  db

let sorted_rows rel =
  List.sort compare (List.map Array.to_list (Relation.rows rel))

let hash_join_equals_nested_loop_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"hash join = nested loop (equi-join)" ~count:100
       QCheck2.Gen.(1 -- 100_000)
       (fun seed ->
         let prng = Xfrag_util.Prng.create seed in
         let db = random_db_and_tables prng in
         let left = Relalg.Scan { table = "r"; alias = "r" } in
         let right = Relalg.Scan { table = "s"; alias = "s" } in
         let hash =
           Relalg.eval db (Relalg.Hash_join { left; right; on = [ ("r.a", "s.c") ] })
         in
         let nl =
           Relalg.eval db
             (Relalg.Nested_loop_join
                { left; right; pred = Relalg.Eq (Relalg.Col "r.a", Relalg.Col "s.c") })
         in
         sorted_rows hash = sorted_rows nl))

let select_commutes_with_join_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"single-table selection commutes with join" ~count:100
       QCheck2.Gen.(1 -- 100_000)
       (fun seed ->
         let prng = Xfrag_util.Prng.create seed in
         let db = random_db_and_tables prng in
         let pred = Relalg.Le (Relalg.Col "r.b", Relalg.Const (Value.Int 3)) in
         let join l r = Relalg.Hash_join { left = l; right = r; on = [ ("r.a", "s.c") ] } in
         let scan_r = Relalg.Scan { table = "r"; alias = "r" } in
         let scan_s = Relalg.Scan { table = "s"; alias = "s" } in
         let late = Relalg.eval db (Relalg.Select (pred, join scan_r scan_s)) in
         let early = Relalg.eval db (join (Relalg.Select (pred, scan_r)) scan_s) in
         sorted_rows late = sorted_rows early))

let distinct_idempotent_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"distinct is idempotent" ~count:100
       QCheck2.Gen.(1 -- 100_000)
       (fun seed ->
         let prng = Xfrag_util.Prng.create seed in
         let db = random_db_and_tables prng in
         let scan = Relalg.Scan { table = "r"; alias = "r" } in
         let once = Relalg.eval db (Relalg.Distinct scan) in
         let twice = Relalg.eval db (Relalg.Distinct (Relalg.Distinct scan)) in
         sorted_rows once = sorted_rows twice))

let ordered_index_matches_filter_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"range scan = filter scan" ~count:100
       QCheck2.Gen.(1 -- 100_000)
       (fun seed ->
         let prng = Xfrag_util.Prng.create seed in
         let db = random_db_and_tables prng in
         let rel = Database.table db "r" in
         let idx = Ordered_index.build rel ~column:"a" in
         let lo = Xfrag_util.Prng.int prng 7 - 1 in
         let hi = lo + Xfrag_util.Prng.int prng 7 in
         let via_index =
           Ordered_index.range idx ~lo ~hi |> List.map Array.to_list |> List.sort compare
         in
         let via_scan =
           Relation.fold
             (fun acc row ->
               match row.(0) with
               | Value.Int k when k >= lo && k <= hi -> Array.to_list row :: acc
               | Value.Int _ | Value.Text _ | Value.Null -> acc)
             [] rel
           |> List.sort compare
         in
         via_index = via_scan))

let sql_matches_handwritten_plan_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"SQL compiles to an equivalent plan" ~count:60
       QCheck2.Gen.(1 -- 100_000)
       (fun seed ->
         let prng = Xfrag_util.Prng.create seed in
         let db = random_db_and_tables prng in
         let via_sql =
           match
             Xfrag_relstore.Sql.run db
               "SELECT r.a, s.d FROM r, s WHERE r.a = s.c AND r.b <= 3"
           with
           | Ok rel -> rel
           | Error e -> Alcotest.fail e
         in
         let handwritten =
           Relalg.eval db
             (Relalg.Project
                ( [ "r.a"; "s.d" ],
                  Relalg.Select
                    ( Relalg.Le (Relalg.Col "r.b", Relalg.Const (Value.Int 3)),
                      Relalg.Nested_loop_join
                        {
                          left = Relalg.Scan { table = "r"; alias = "r" };
                          right = Relalg.Scan { table = "s"; alias = "s" };
                          pred = Relalg.Eq (Relalg.Col "r.a", Relalg.Col "s.c");
                        } ) ))
         in
         sorted_rows via_sql = sorted_rows handwritten))

let () =
  Alcotest.run "relstore"
    [
      ( "primitives",
        [
          Alcotest.test_case "value order" `Quick test_value_order;
          Alcotest.test_case "schema" `Quick test_schema;
          Alcotest.test_case "relation" `Quick test_relation_basics;
        ] );
      ( "operators",
        [
          Alcotest.test_case "scan+select" `Quick test_scan_select;
          Alcotest.test_case "project" `Quick test_project;
          Alcotest.test_case "hash join" `Quick test_hash_join;
          Alcotest.test_case "nested loop join" `Quick test_nested_loop_join;
          Alcotest.test_case "distinct/union/order/limit" `Quick
            test_distinct_union_orderby_limit;
          Alcotest.test_case "group by" `Quick test_group_by;
          Alcotest.test_case "group by (no keys)" `Quick test_group_by_empty_keys;
          Alcotest.test_case "rename" `Quick test_rename;
          Alcotest.test_case "index lookup" `Quick test_index_lookup;
          Alcotest.test_case "index maintenance" `Quick test_index_maintained_on_insert;
        ] );
      ( "mapping",
        [ Alcotest.test_case "tables and ancestor predicate" `Quick test_mapping_tables ] );
      ( "frag_rel",
        [
          Alcotest.test_case "postings" `Quick test_frag_rel_postings;
          Alcotest.test_case "navigation" `Quick test_frag_rel_navigation;
          Alcotest.test_case "join" `Quick test_frag_rel_join;
          Alcotest.test_case "query = native (filtered)" `Quick
            test_frag_rel_query_matches_native;
          Alcotest.test_case "query = native (unfiltered)" `Quick
            test_frag_rel_query_unfiltered;
          Alcotest.test_case "random documents" `Quick test_frag_rel_random_docs;
        ] );
      ( "ordered_index",
        [
          Alcotest.test_case "basics" `Quick test_ordered_index_basics;
          Alcotest.test_case "rejects text column" `Quick test_ordered_index_rejects_text;
          Alcotest.test_case "descendant range scan" `Quick
            test_ordered_index_descendant_scan;
          ordered_index_matches_filter_prop;
        ] );
      ( "frag_tables",
        [
          Alcotest.test_case "relation round trip" `Quick test_frag_tables_roundtrip;
          Alcotest.test_case "pairwise = native" `Quick
            test_frag_tables_pairwise_matches_native;
          Alcotest.test_case "non-singleton fragments" `Quick
            test_frag_tables_pairwise_nonsingleton_fragments;
          Alcotest.test_case "empty operands" `Quick test_frag_tables_empty_operands;
          Alcotest.test_case "fixed point = native" `Quick
            test_frag_tables_fixed_point_matches_native;
          Alcotest.test_case "query = native" `Quick test_frag_tables_query_matches_native;
          frag_tables_random_prop;
        ] );
      ( "operator-properties",
        [
          hash_join_equals_nested_loop_prop;
          select_commutes_with_join_prop;
          distinct_idempotent_prop;
          sql_matches_handwritten_plan_prop;
        ] );
    ]
