(* Request-scoped telemetry: the flight recorder's ring semantics and
   domain safety, request-id minting/validation, the now-atomic metrics
   instruments hammered from parallel domains, interpolated histogram
   quantiles, Prometheus exposition invariants, and request-id
   propagation into corpus doc_error rows. *)

module Metrics = Xfrag_obs.Metrics
module Prometheus = Xfrag_obs.Prometheus
module Recorder = Xfrag_obs.Recorder
module Reqid = Xfrag_obs.Reqid
module Json = Xfrag_obs.Json
module Corpus = Xfrag_core.Corpus
module Exec = Xfrag_core.Exec
module Fault = Xfrag_fault.Fault
module Failpoint = Xfrag_fault.Fault.Failpoint
module Docgen = Xfrag_workload.Docgen

(* The recorder is process-global and env-gated; unit tests of its
   mechanics force it on and restore the initial state, so the
   XFRAG_RECORDER=0 CI leg still proves the *engine* never needs it. *)
let with_recorder f =
  let was = Recorder.enabled () in
  Recorder.set_enabled true;
  Recorder.clear ();
  Fun.protect
    ~finally:(fun () ->
      Recorder.clear ();
      Recorder.set_enabled was)
    f

(* --- metrics: multi-domain hammer --- *)

let test_metrics_hammer () =
  let reg = Metrics.create () in
  (* Pre-create so the hammer measures instrument mutation, not
     registry get-or-create (itself serialized, exercised below). *)
  let c = Metrics.counter reg "hammer.ops" in
  let g = Metrics.gauge reg "hammer.level" in
  let h = Metrics.histogram reg "hammer.lat" in
  let domains = 4 and per_domain = 25_000 in
  let body () =
    for i = 1 to per_domain do
      Metrics.Counter.incr c;
      Metrics.Counter.add c 2;
      Metrics.Gauge.set g (float_of_int i);
      Metrics.Histogram.observe h 1.0
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn body) in
  List.iter Domain.join ds;
  let total = domains * per_domain in
  Alcotest.(check int) "counter exact under 4 domains" (3 * total)
    (Metrics.Counter.value c);
  Alcotest.(check int) "histogram count exact" total (Metrics.Histogram.count h);
  Alcotest.(check (float 0.0))
    "histogram sum exact (1.0 samples)" (float_of_int total)
    (Metrics.Histogram.sum h);
  Alcotest.(check (list (pair (float 0.0) int)))
    "buckets hold every observation" [ (1.0, total) ]
    (Metrics.Histogram.buckets h);
  let gv = Metrics.Gauge.value g in
  Alcotest.(check bool) "gauge holds one of the written values" true
    (gv >= 1.0 && gv <= float_of_int per_domain)

let test_metrics_concurrent_get_or_create () =
  let reg = Metrics.create () in
  let domains = 4 and per_domain = 1_000 in
  let body () =
    for _ = 1 to per_domain do
      Metrics.Counter.incr (Metrics.counter reg "shared.ops")
    done
  in
  let ds = List.init domains (fun _ -> Domain.spawn body) in
  List.iter Domain.join ds;
  (* All domains raced the first creation; exactly one instrument must
     have won and absorbed every increment. *)
  Alcotest.(check int) "one instrument, all increments"
    (domains * per_domain)
    (Metrics.Counter.value (Metrics.counter reg "shared.ops"))

(* --- histogram quantile interpolation --- *)

let test_quantile_interpolation () =
  let h = Metrics.histogram (Metrics.create ()) "q" in
  Alcotest.(check (float 0.0)) "empty" 0.0 (Metrics.Histogram.quantile h 0.5);
  Metrics.Histogram.observe h 5.0;
  (* One sample in (4,8]: q=1 hits the upper bound, q=0.5 lands
     mid-bucket log-linearly. *)
  Alcotest.(check (float 0.0)) "single sample q=1" 8.0
    (Metrics.Histogram.quantile h 1.0);
  Alcotest.(check (float 1e-9))
    "single sample q=0.5 interpolates"
    (4.0 *. Float.sqrt 2.0)
    (Metrics.Histogram.quantile h 0.5)

let test_quantile_monotone_and_bounded () =
  let h = Metrics.histogram (Metrics.create ()) "q2" in
  let prng = ref 12345 in
  let next () =
    prng := (!prng * 1103515245) + 1221;
    float_of_int (abs !prng mod 10_000) +. 1.0
  in
  for _ = 1 to 500 do
    Metrics.Histogram.observe h (next ())
  done;
  let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.95; 0.99; 1.0 ] in
  let values = List.map (Metrics.Histogram.quantile h) qs in
  let rec monotone = function
    | a :: (b :: _ as rest) -> a <= b && monotone rest
    | _ -> true
  in
  Alcotest.(check bool) "monotone in q" true (monotone values);
  (* Samples live in [1, 10000] ⊂ (0, 2^14]: every interpolated
     quantile must too — the old implementation could only answer
     power-of-two upper bounds. *)
  List.iter
    (fun v ->
      Alcotest.(check bool) "within sample range bucketing" true
        (v >= 0.0 && v <= 16384.0))
    values;
  let p50 = Metrics.Histogram.quantile h 0.5 in
  Alcotest.(check bool) "p50 is not a power-of-two bound" true
    (Float.rem p50 1.0 <> 0.0 || p50 < 8192.0)

(* --- Prometheus exposition --- *)

let test_prometheus_histogram_golden () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "lat{endpoint=\"/q\"}" in
  List.iter (Metrics.Histogram.observe h) [ 1.0; 3.0; 3.5; 100.0 ];
  let expected =
    "# TYPE lat histogram\n\
     lat_bucket{endpoint=\"/q\",le=\"1\"} 1\n\
     lat_bucket{endpoint=\"/q\",le=\"4\"} 3\n\
     lat_bucket{endpoint=\"/q\",le=\"128\"} 4\n\
     lat_bucket{endpoint=\"/q\",le=\"+Inf\"} 4\n\
     lat_sum{endpoint=\"/q\"} 107.5\n\
     lat_count{endpoint=\"/q\"} 4\n"
  in
  Alcotest.(check string) "golden exposition" expected (Prometheus.render reg)

let test_prometheus_histogram_invariants () =
  let reg = Metrics.create () in
  let h = Metrics.histogram reg "inv" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 2.0; 2.5; 7.0; 7.5; 300.0 ];
  let page = Prometheus.render reg in
  let lines = String.split_on_char '\n' page in
  let bucket_counts =
    List.filter_map
      (fun l ->
        match String.index_opt l '}' with
        | Some i
          when String.length l > 11
               && String.sub l 0 11 = "inv_bucket{" ->
            int_of_string_opt
              (String.trim (String.sub l (i + 1) (String.length l - i - 1)))
        | _ -> None)
      lines
  in
  (* le buckets are cumulative: non-decreasing, ending at +Inf=count. *)
  let rec nondecreasing = function
    | a :: (b :: _ as rest) -> a <= b && nondecreasing rest
    | _ -> true
  in
  Alcotest.(check bool) "cumulative buckets" true (nondecreasing bucket_counts);
  Alcotest.(check int) "+Inf equals Histogram.count"
    (Metrics.Histogram.count h)
    (List.nth bucket_counts (List.length bucket_counts - 1));
  let has_line l = List.mem l lines in
  Alcotest.(check bool) "_count agrees" true
    (has_line (Printf.sprintf "inv_count %d" (Metrics.Histogram.count h)));
  Alcotest.(check bool) "_sum agrees" true
    (has_line
       (Printf.sprintf "inv_sum %s"
          (let s = Metrics.Histogram.sum h in
           if Float.is_integer s then Printf.sprintf "%.0f" s
           else Printf.sprintf "%.17g" s)))

let test_prometheus_label_escaping () =
  Alcotest.(check string)
    "backslash, quote, newline" "a\\\"b\\\\c\\nd"
    (Prometheus.escape_label_value "a\"b\\c\nd");
  (* Bytes OCaml's %S would mangle into \ddd must pass through. *)
  Alcotest.(check string) "high bytes verbatim" "caf\xc3\xa9"
    (Prometheus.escape_label_value "caf\xc3\xa9");
  Alcotest.(check string) "tab verbatim" "a\tb"
    (Prometheus.escape_label_value "a\tb")

(* --- request ids --- *)

let test_reqid_mint_and_validate () =
  let a = Reqid.mint () and b = Reqid.mint () in
  Alcotest.(check bool) "minted ids are distinct" true (a <> b);
  Alcotest.(check bool) "minted ids validate" true
    (Reqid.valid a && Reqid.valid b);
  Alcotest.(check bool) "minted ids have the req- prefix" true
    (String.length a > 4 && String.sub a 0 4 = "req-");
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "reject %S" id) false
        (Reqid.valid id))
    [
      "";
      "has space";
      "semi;colon";
      "new\nline";
      "quote\"";
      String.make 129 'a';
      "caf\xc3\xa9";
    ];
  List.iter
    (fun id ->
      Alcotest.(check bool) (Printf.sprintf "accept %S" id) true
        (Reqid.valid id))
    [ "abc"; "A-b_c.9"; String.make 128 'x' ]

let test_reqid_accept_or_mint () =
  Alcotest.(check string) "valid inbound honored" "client-77"
    (Reqid.accept_or_mint (Some "client-77"));
  let minted = Reqid.accept_or_mint (Some "bad id!") in
  Alcotest.(check bool) "invalid inbound replaced" true
    (minted <> "bad id!" && Reqid.valid minted);
  Alcotest.(check bool) "absent inbound minted" true
    (Reqid.valid (Reqid.accept_or_mint None))

(* --- flight recorder --- *)

let test_recorder_basics () =
  with_recorder (fun () ->
      Recorder.record ~endpoint:"/query" ~strategy:"auto" ~eval_ns:5_000
        ~total_ns:9_000 ~hits:3 ~status:200 ~id:"r1" ~outcome:"ok" ();
      Recorder.record ~endpoint:"/query" ~eval_ns:90_000 ~total_ns:120_000
        ~status:200 ~id:"r2" ~outcome:"ok" ();
      Recorder.record ~endpoint:"/corpus/query" ~shards:4 ~status:500
        ~site:"eval.request" ~id:"r3" ~outcome:"fault" ();
      let evs = Recorder.events () in
      Alcotest.(check int) "three retained" 3 (List.length evs);
      Alcotest.(check (list string))
        "ordered by sequence" [ "r1"; "r2"; "r3" ]
        (List.map (fun e -> e.Recorder.id) evs);
      (match Recorder.find "r3" with
      | None -> Alcotest.fail "find r3"
      | Some e ->
          Alcotest.(check string) "outcome" "fault" e.Recorder.outcome;
          Alcotest.(check string) "site" "eval.request" e.Recorder.site;
          Alcotest.(check int) "shards" 4 e.Recorder.shards);
      Alcotest.(check int) "last 2" 2 (List.length (Recorder.last 2));
      Alcotest.(check (list string))
        "slow threshold filters" [ "r2" ]
        (List.map
           (fun e -> e.Recorder.id)
           (Recorder.slow ~threshold_ns:100_000));
      (* JSON shape: flat object, site only when set. *)
      let j = Recorder.to_json (Option.get (Recorder.find "r1")) in
      Alcotest.(check (option string))
        "json id" (Some "r1")
        (Option.bind (Json.member "id" j) Json.to_string_opt);
      Alcotest.(check bool) "no site field when empty" true
        (Json.member "site" j = None);
      let j3 = Recorder.to_json (Option.get (Recorder.find "r3")) in
      Alcotest.(check (option string))
        "site surfaces" (Some "eval.request")
        (Option.bind (Json.member "site" j3) Json.to_string_opt))

let test_recorder_disabled_is_noop () =
  with_recorder (fun () ->
      Recorder.set_enabled false;
      Recorder.record ~id:"ghost" ~outcome:"ok" ();
      Alcotest.(check int) "nothing retained while disabled" 0
        (List.length (Recorder.events ()));
      Recorder.set_enabled true;
      Recorder.record ~id:"real" ~outcome:"ok" ();
      Alcotest.(check int) "recording resumes" 1
        (List.length (Recorder.events ())))

let test_recorder_overwrites_oldest () =
  with_recorder (fun () ->
      let cap = Recorder.capacity () in
      for i = 1 to cap + 50 do
        Recorder.record ~id:(Printf.sprintf "e%d" i) ~outcome:"ok" ()
      done;
      let evs = Recorder.events () in
      Alcotest.(check bool) "bounded by capacity" true
        (List.length evs <= cap);
      (* The newest write always survives; the oldest is gone. *)
      Alcotest.(check bool) "newest retained" true
        (Recorder.find (Printf.sprintf "e%d" (cap + 50)) <> None);
      Alcotest.(check (option string)) "oldest overwritten" None
        (Option.map (fun e -> e.Recorder.id) (Recorder.find "e1")))

let test_recorder_multi_domain () =
  with_recorder (fun () ->
      let writers = 4 and per_writer = 50 in
      let ds =
        List.init writers (fun w ->
            Domain.spawn (fun () ->
                for i = 1 to per_writer do
                  Recorder.record
                    ~id:(Printf.sprintf "w%d-%d" w i)
                    ~outcome:"ok" ()
                done))
      in
      List.iter Domain.join ds;
      let evs = Recorder.events () in
      Alcotest.(check bool) "within capacity" true
        (List.length evs <= Recorder.capacity ());
      (* Sequences are unique even under concurrent writers... *)
      let seqs = List.map (fun e -> e.Recorder.seq) evs in
      Alcotest.(check int) "unique seqs"
        (List.length seqs)
        (List.length (List.sort_uniq compare seqs));
      (* ...and every writer's final event survives: it was the last
         write into its stripe's ring. *)
      for w = 0 to writers - 1 do
        Alcotest.(check bool)
          (Printf.sprintf "writer %d's last event retained" w)
          true
          (Recorder.find (Printf.sprintf "w%d-%d" w per_writer) <> None)
      done)

(* --- request id reaches doc_error rows --- *)

let test_doc_error_carries_request_id () =
  let corpus =
    Corpus.of_documents
      [
        ("ok.xml", Docgen.with_planted_keywords
                     { Docgen.default with seed = 7; sections = 2 }
                     ~plant:[ ("mangrove", 2) ]);
        ("bad.xml", Docgen.with_planted_keywords
                      { Docgen.default with seed = 8; sections = 2 }
                      ~plant:[ ("mangrove", 1) ]);
      ]
  in
  let request =
    Exec.Request.default
    |> Exec.Request.with_keywords [ "mangrove" ]
    |> Exec.Request.with_id "trace-me-42"
  in
  let outcome =
    Failpoint.with_armed ~trigger:(Fault.Key "bad.xml") "eval.document"
      Fault.Raise (fun () -> Corpus.run ~shards:2 corpus request)
  in
  match outcome.Corpus.errors with
  | [ e ] ->
      Alcotest.(check string) "victim" "bad.xml" e.Corpus.err_doc;
      Alcotest.(check string) "doc_error carries the request id"
        "trace-me-42" e.Corpus.err_request_id
  | errs -> Alcotest.failf "expected one doc_error, got %d" (List.length errs)

let () =
  Alcotest.run "telemetry"
    [
      ( "metrics",
        [
          Alcotest.test_case "multi-domain hammer, exact counts" `Slow
            test_metrics_hammer;
          Alcotest.test_case "concurrent get-or-create" `Quick
            test_metrics_concurrent_get_or_create;
        ] );
      ( "quantile",
        [
          Alcotest.test_case "log-linear interpolation" `Quick
            test_quantile_interpolation;
          Alcotest.test_case "monotone and bounded" `Quick
            test_quantile_monotone_and_bounded;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "histogram golden" `Quick
            test_prometheus_histogram_golden;
          Alcotest.test_case "cumulative sum/count invariants" `Quick
            test_prometheus_histogram_invariants;
          Alcotest.test_case "label value escaping" `Quick
            test_prometheus_label_escaping;
        ] );
      ( "reqid",
        [
          Alcotest.test_case "mint and validate" `Quick
            test_reqid_mint_and_validate;
          Alcotest.test_case "accept or mint" `Quick test_reqid_accept_or_mint;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "record, find, last, slow" `Quick
            test_recorder_basics;
          Alcotest.test_case "disabled is a no-op" `Quick
            test_recorder_disabled_is_noop;
          Alcotest.test_case "overwrites oldest" `Quick
            test_recorder_overwrites_oldest;
          Alcotest.test_case "multi-domain writers" `Quick
            test_recorder_multi_domain;
        ] );
      ( "propagation",
        [
          Alcotest.test_case "doc_error carries request id" `Quick
            test_doc_error_carries_request_id;
        ] );
    ]
