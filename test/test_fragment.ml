(* Tests for Fragment: construction, connectivity validation, measures,
   leaves, keyword containment, XML projection. *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Doctree = Xfrag_doctree.Doctree
module Int_sorted = Xfrag_util.Int_sorted
module Paper = Xfrag_workload.Paper_doc

let ctx = lazy (Paper.figure1_context ())

let frag ns = Fragment.of_nodes (Lazy.force ctx) ns

let test_singleton () =
  let f = Fragment.singleton 17 in
  Alcotest.(check int) "root" 17 (Fragment.root f);
  Alcotest.(check int) "size" 1 (Fragment.size f)

let test_of_nodes_valid () =
  let f = frag [ 17; 16; 18 ] in
  Alcotest.(check int) "root is min id" 16 (Fragment.root f);
  Alcotest.(check int) "size" 3 (Fragment.size f);
  Alcotest.(check (list int)) "sorted" [ 16; 17; 18 ]
    (Int_sorted.to_list (Fragment.nodes f))

let expect_invalid name ns =
  match frag ns with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.failf "%s: expected Invalid_argument" name

let test_of_nodes_invalid () =
  expect_invalid "empty" [];
  expect_invalid "disconnected siblings" [ 17; 18 ];
  expect_invalid "gap in chain" [ 0; 14 ];
  expect_invalid "out of range" [ 99999 ]

let test_is_connected () =
  let c = Lazy.force ctx in
  Alcotest.(check bool) "connected" true
    (Fragment.is_connected c (Int_sorted.of_list [ 16; 17 ]));
  Alcotest.(check bool) "disconnected" false
    (Fragment.is_connected c (Int_sorted.of_list [ 17; 81 ]));
  Alcotest.(check bool) "empty" false (Fragment.is_connected c Int_sorted.empty)

let test_subfragment () =
  let f = frag [ 16; 17; 18 ] in
  let f' = frag [ 16; 17 ] in
  Alcotest.(check bool) "sub" true (Fragment.subfragment f' f);
  Alcotest.(check bool) "not sub" false (Fragment.subfragment f f');
  Alcotest.(check bool) "self" true (Fragment.subfragment f f)

let test_equal_compare_hash () =
  let a = frag [ 16; 17 ] and b = frag [ 17; 16 ] and c = frag [ 16; 18 ] in
  Alcotest.(check bool) "equal" true (Fragment.equal a b);
  Alcotest.(check bool) "not equal" false (Fragment.equal a c);
  Alcotest.(check int) "compare eq" 0 (Fragment.compare a b);
  Alcotest.(check bool) "hash eq" true (Fragment.hash a = Fragment.hash b)

let test_height () =
  let c = Lazy.force ctx in
  Alcotest.(check int) "single node" 0 (Fragment.height c (Fragment.singleton 17));
  Alcotest.(check int) "one level" 1 (Fragment.height c (frag [ 16; 17; 18 ]));
  Alcotest.(check int) "chain to root" 3 (Fragment.height c (frag [ 0; 1; 14; 16 ]))

let test_span () =
  Alcotest.(check int) "singleton" 0 (Fragment.span (Fragment.singleton 5));
  Alcotest.(check int) "16..18" 2 (Fragment.span (frag [ 16; 17; 18 ]));
  Alcotest.(check int) "wide" 81 (Fragment.span (frag [ 0; 1; 14; 16; 79; 80; 81 ]))

let test_leaves () =
  let c = Lazy.force ctx in
  Alcotest.(check (list int)) "leaves of interest fragment" [ 17; 18 ]
    (Fragment.leaves c (frag [ 16; 17; 18 ]));
  Alcotest.(check (list int)) "chain leaf" [ 16 ]
    (Fragment.leaves c (frag [ 0; 1; 14; 16 ]));
  Alcotest.(check (list int)) "singleton leaf" [ 17 ]
    (Fragment.leaves c (Fragment.singleton 17));
  (* n16 is internal in ⟨n16,n17⟩ even though n18 (a document child) is
     absent: fragment leaves are relative to the fragment. *)
  Alcotest.(check (list int)) "fragment-relative" [ 17 ]
    (Fragment.leaves c (frag [ 16; 17 ]))

let test_depth_of () =
  let c = Lazy.force ctx in
  let f = frag [ 14; 16; 17 ] in
  Alcotest.(check int) "root" 0 (Fragment.depth_of c f 14);
  Alcotest.(check int) "leaf" 2 (Fragment.depth_of c f 17);
  Alcotest.check_raises "non-member" (Invalid_argument "Fragment.depth_of: node is not a member")
    (fun () -> ignore (Fragment.depth_of c f 18))

let test_contains_keyword () =
  let c = Lazy.force ctx in
  let f = frag [ 16; 17; 18 ] in
  Alcotest.(check bool) "xquery" true (Fragment.contains_keyword c f "xquery");
  Alcotest.(check bool) "case" true (Fragment.contains_keyword c f "XQuery");
  Alcotest.(check bool) "absent" false (Fragment.contains_keyword c f "relational");
  Alcotest.(check bool) "singleton without" false
    (Fragment.contains_keyword c (Fragment.singleton 18) "optimization")

let test_to_xml () =
  let c = Lazy.force ctx in
  let f = frag [ 16; 17; 18 ] in
  match Fragment.to_xml c f with
  | Xfrag_xml.Xml_dom.Element e ->
      Alcotest.(check string) "root label" "subsubsection" e.Xfrag_xml.Xml_dom.name;
      Alcotest.(check int) "two child pars" 2
        (List.length (Xfrag_xml.Xml_dom.child_elements e))
  | _ -> Alcotest.fail "expected an element"

let test_to_xml_excludes_nonmembers () =
  let c = Lazy.force ctx in
  let f = frag [ 16; 17 ] in
  match Fragment.to_xml c f with
  | Xfrag_xml.Xml_dom.Element e ->
      Alcotest.(check int) "only member children" 1
        (List.length (Xfrag_xml.Xml_dom.child_elements e))
  | _ -> Alcotest.fail "expected an element"

let test_pp () =
  let rendered = Format.asprintf "%a" Fragment.pp (frag [ 16; 17; 18 ]) in
  Alcotest.(check string) "paper notation" "\xE2\x9F\xA8n16, n17, n18\xE2\x9F\xA9" rendered

(* Property: every random fragment from the generator satisfies the
   connectivity invariant, and root = min id. *)
let random_fragment_valid =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"random fragments are connected" ~count:200
       QCheck2.Gen.(pair (1 -- 10_000) (2 -- 80))
       (fun (seed, size) ->
         let c = Xfrag_workload.Random_tree.context ~seed ~size in
         let prng = Xfrag_util.Prng.create seed in
         let ok = ref true in
         for _ = 1 to 20 do
           let f = Xfrag_workload.Random_tree.fragment c prng in
           if not (Fragment.is_connected c (Fragment.nodes f)) then ok := false;
           if Fragment.root f <> Int_sorted.min_elt (Fragment.nodes f) then ok := false
         done;
         !ok))

let () =
  Alcotest.run "fragment"
    [
      ( "construction",
        [
          Alcotest.test_case "singleton" `Quick test_singleton;
          Alcotest.test_case "of_nodes valid" `Quick test_of_nodes_valid;
          Alcotest.test_case "of_nodes invalid" `Quick test_of_nodes_invalid;
          Alcotest.test_case "is_connected" `Quick test_is_connected;
        ] );
      ( "relations",
        [
          Alcotest.test_case "subfragment" `Quick test_subfragment;
          Alcotest.test_case "equal/compare/hash" `Quick test_equal_compare_hash;
        ] );
      ( "measures",
        [
          Alcotest.test_case "height" `Quick test_height;
          Alcotest.test_case "span" `Quick test_span;
          Alcotest.test_case "leaves" `Quick test_leaves;
          Alcotest.test_case "depth_of" `Quick test_depth_of;
          Alcotest.test_case "contains_keyword" `Quick test_contains_keyword;
        ] );
      ( "projection",
        [
          Alcotest.test_case "to_xml" `Quick test_to_xml;
          Alcotest.test_case "to_xml excludes non-members" `Quick test_to_xml_excludes_nonmembers;
          Alcotest.test_case "pp" `Quick test_pp;
        ] );
      ("properties", [ random_fragment_valid ]);
    ]
