(* Tests for retrieval metrics and topic generation. *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Metrics = Xfrag_baselines.Metrics
module Topics = Xfrag_workload.Topics
module Paper = Xfrag_workload.Paper_doc
module Doctree = Xfrag_doctree.Doctree

let ctx = lazy (Paper.figure1_context ())

let frag ns = Fragment.of_nodes (Lazy.force ctx) ns

(* --- jaccard --- *)

let test_jaccard () =
  let a = frag [ 16; 17; 18 ] and b = frag [ 16; 17 ] in
  Alcotest.(check (float 1e-9)) "identical" 1.0 (Metrics.jaccard a a);
  Alcotest.(check (float 1e-9)) "2/3" (2.0 /. 3.0) (Metrics.jaccard a b);
  Alcotest.(check (float 1e-9)) "symmetric" (Metrics.jaccard a b) (Metrics.jaccard b a);
  Alcotest.(check (float 1e-9)) "disjoint" 0.0
    (Metrics.jaccard (frag [ 17 ]) (frag [ 81 ]))

let test_best_match () =
  let set = Frag_set.of_list [ frag [ 16; 17 ]; frag [ 81 ] ] in
  Alcotest.(check (float 1e-9)) "best" (2.0 /. 3.0)
    (Metrics.best_match (frag [ 16; 17; 18 ]) set);
  Alcotest.(check (float 1e-9)) "empty set" 0.0
    (Metrics.best_match (frag [ 17 ]) (Frag_set.empty ()))

(* --- evaluate --- *)

let test_evaluate_exact () =
  let target = frag [ 16; 17; 18 ] in
  let retrieved = Frag_set.of_list [ target; frag [ 17 ] ] in
  let s = Metrics.evaluate ~retrieved ~targets:(Frag_set.singleton target) () in
  Alcotest.(check (float 1e-9)) "precision 1/2" 0.5 s.Metrics.precision;
  Alcotest.(check (float 1e-9)) "recall 1" 1.0 s.Metrics.recall;
  Alcotest.(check (float 1e-9)) "f1" (2.0 *. 0.5 /. 1.5) s.Metrics.f1;
  Alcotest.(check int) "counts" 2 s.Metrics.retrieved

let test_evaluate_threshold () =
  let target = frag [ 16; 17; 18 ] in
  let retrieved = Frag_set.singleton (frag [ 16; 17 ]) in
  let strict = Metrics.evaluate ~retrieved ~targets:(Frag_set.singleton target) () in
  Alcotest.(check (float 1e-9)) "strict misses" 0.0 strict.Metrics.recall;
  let lenient =
    Metrics.evaluate ~threshold:0.5 ~retrieved ~targets:(Frag_set.singleton target) ()
  in
  Alcotest.(check (float 1e-9)) "lenient hits" 1.0 lenient.Metrics.recall;
  Alcotest.(check (float 1e-9)) "lenient precision" 1.0 lenient.Metrics.precision

let test_evaluate_edge_cases () =
  let target = frag [ 17 ] in
  let empty_ret = Metrics.evaluate ~retrieved:(Frag_set.empty ())
      ~targets:(Frag_set.singleton target) () in
  Alcotest.(check (float 1e-9)) "empty retrieval precision" 1.0 empty_ret.Metrics.precision;
  Alcotest.(check (float 1e-9)) "empty retrieval recall" 0.0 empty_ret.Metrics.recall;
  Alcotest.(check (float 1e-9)) "f1 zero" 0.0 empty_ret.Metrics.f1;
  let no_targets =
    Metrics.evaluate ~retrieved:(Frag_set.singleton target) ~targets:(Frag_set.empty ()) ()
  in
  Alcotest.(check (float 1e-9)) "no targets recall" 1.0 no_targets.Metrics.recall

(* --- topics --- *)

let test_topics_deterministic () =
  match (Topics.generate ~seed:31 Topics.Colocated_plus_context,
         Topics.generate ~seed:31 Topics.Colocated_plus_context) with
  | Some a, Some b ->
      Alcotest.(check (list int)) "same target" a.Topics.target b.Topics.target;
      Alcotest.(check int) "same size" (Doctree.size a.Topics.tree)
        (Doctree.size b.Topics.tree)
  | _ -> Alcotest.fail "expected topics"

let check_pattern pattern ~expect_algebra_hit ~expect_smallest_hit =
  match Topics.generate ~seed:31 pattern with
  | None -> Alcotest.failf "%s: no topic" (Topics.pattern_name pattern)
  | Some t ->
      let ctx = Context.create t.Topics.tree in
      let target = Fragment.of_nodes ctx t.Topics.target in
      let beta = List.length t.Topics.target in
      let algebra =
        Eval.answers ctx
          (Query.make ~filter:(Filter.Size_at_most beta) t.Topics.keywords)
      in
      Alcotest.(check bool)
        (Topics.pattern_name pattern ^ ": algebra")
        expect_algebra_hit (Frag_set.mem target algebra);
      let smallest = Xfrag_baselines.Smallest_subtree.answer ctx t.Topics.keywords in
      Alcotest.(check bool)
        (Topics.pattern_name pattern ^ ": smallest-subtree")
        expect_smallest_hit (Frag_set.mem target smallest)

let test_colocated_pattern () =
  (* The Figure-8 case: only the algebra retrieves the target. *)
  check_pattern Topics.Colocated_plus_context ~expect_algebra_hit:true
    ~expect_smallest_hit:false

let test_sibling_pattern () =
  (* Here the minimal witness tree IS the target: both retrieve it. *)
  check_pattern Topics.Sibling_split ~expect_algebra_hit:true ~expect_smallest_hit:true

let test_title_body_pattern () =
  check_pattern Topics.Title_body ~expect_algebra_hit:true ~expect_smallest_hit:true

let test_same_node_pattern () =
  (* Control: every semantics retrieves a single co-located paragraph. *)
  check_pattern Topics.Same_node ~expect_algebra_hit:true ~expect_smallest_hit:true

let test_cousins_pattern () =
  check_pattern Topics.Cousins ~expect_algebra_hit:true ~expect_smallest_hit:true

let test_target_is_valid_fragment () =
  List.iter
    (fun pattern ->
      List.iter
        (fun (t : Topics.topic) ->
          let ctx = Context.create t.Topics.tree in
          (* of_nodes validates connectivity. *)
          ignore (Fragment.of_nodes ctx t.Topics.target))
        (Topics.generate_many ~seeds:[ 1; 2; 3; 4; 5 ] pattern))
    Topics.all_patterns

let test_keywords_planted_exactly () =
  match Topics.generate ~seed:31 Topics.Sibling_split with
  | None -> Alcotest.fail "no topic"
  | Some t ->
      let ctx = Context.create t.Topics.tree in
      List.iter
        (fun k ->
          Alcotest.(check int) k 1
            (Xfrag_doctree.Inverted_index.node_count ctx.Context.index k))
        t.Topics.keywords

let () =
  Alcotest.run "metrics"
    [
      ( "jaccard",
        [
          Alcotest.test_case "jaccard" `Quick test_jaccard;
          Alcotest.test_case "best_match" `Quick test_best_match;
        ] );
      ( "evaluate",
        [
          Alcotest.test_case "exact" `Quick test_evaluate_exact;
          Alcotest.test_case "threshold" `Quick test_evaluate_threshold;
          Alcotest.test_case "edge cases" `Quick test_evaluate_edge_cases;
        ] );
      ( "topics",
        [
          Alcotest.test_case "deterministic" `Quick test_topics_deterministic;
          Alcotest.test_case "colocated+context" `Quick test_colocated_pattern;
          Alcotest.test_case "sibling-split" `Quick test_sibling_pattern;
          Alcotest.test_case "title-body" `Quick test_title_body_pattern;
          Alcotest.test_case "same-node (control)" `Quick test_same_node_pattern;
          Alcotest.test_case "cousins" `Quick test_cousins_pattern;
          Alcotest.test_case "targets are fragments" `Quick test_target_is_valid_fragment;
          Alcotest.test_case "keywords planted exactly" `Quick test_keywords_planted_exactly;
        ] );
    ]
