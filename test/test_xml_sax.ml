(* Tests for the event-based XML interface, including agreement with the
   DOM parser. *)

module Sax = Xfrag_xml.Xml_sax
module Dom = Xfrag_xml.Xml_dom
module Parser = Xfrag_xml.Xml_parser

let test_event_stream () =
  let evs = Sax.events "<a x=\"1\">hi<b/>bye</a>" in
  match evs with
  | [
   Sax.Start_element { name = "a"; attributes = [ ("x", "1") ] };
   Sax.Text "hi";
   Sax.Start_element { name = "b"; attributes = [] };
   Sax.End_element "b";
   Sax.Text "bye";
   Sax.End_element "a";
  ] ->
      ()
  | _ -> Alcotest.failf "unexpected stream (%d events)" (List.length evs)

let test_prolog_pi_event () =
  match Sax.events "<?xml version=\"1.0\"?><?style x?><a/>" with
  | [ Sax.Pi { target = "style"; content = "x" }; Sax.Start_element _; Sax.End_element _ ]
    ->
      ()
  | evs -> Alcotest.failf "unexpected stream (%d events)" (List.length evs)

let test_nesting_balanced () =
  let depth = ref 0 and max_depth = ref 0 in
  Sax.iter
    (function
      | Sax.Start_element _ ->
          incr depth;
          if !depth > !max_depth then max_depth := !depth
      | Sax.End_element _ -> decr depth
      | Sax.Text _ | Sax.Comment _ | Sax.Pi _ -> ())
    "<a><b><c/></b><d><e><f/></e></d></a>";
  Alcotest.(check int) "balanced" 0 !depth;
  Alcotest.(check int) "max depth" 4 !max_depth

let test_count_elements () =
  Alcotest.(check int) "count" 6 (Sax.count_elements "<a><b><c/></b><d><e><f/></e></d></a>")

let test_cdata_merges_into_text () =
  match Sax.events "<a>one<![CDATA[ two ]]>three</a>" with
  | [ Sax.Start_element _; Sax.Text "one two three"; Sax.End_element _ ] -> ()
  | _ -> Alcotest.fail "CDATA not merged"

let test_entities_decoded () =
  match Sax.events "<a>&lt;&#65;&gt;</a>" with
  | [ Sax.Start_element _; Sax.Text "<A>"; Sax.End_element _ ] -> ()
  | _ -> Alcotest.fail "entities not decoded"

let test_errors_raised () =
  List.iter
    (fun input ->
      match Sax.events input with
      | exception Xfrag_xml.Xml_error.Parse_error _ -> ()
      | _ -> Alcotest.failf "expected parse error for %S" input)
    [ "<a><b></a>"; "<a/><b/>"; "<a>&nope;</a>"; "" ]

let test_agreement_with_dom_parser () =
  let inputs =
    [
      "<a/>";
      {|<a x="1" y="2"><b>text &amp; more</b><!-- c --><c/></a>|};
      "<?xml version=\"1.0\"?><?pi data?><root><k><l/></k>tail</root>";
      Xfrag_workload.Paper_doc.figure1_xml ();
    ]
  in
  (* SAX keeps comments and PIs; ask the DOM parser to do the same. *)
  let options = { Parser.keep_comments = true; keep_pis = true } in
  List.iter
    (fun input ->
      let via_dom = Parser.parse_string ~options input in
      let via_sax = Sax.to_dom input in
      Alcotest.(check bool)
        (Printf.sprintf "agree on %d-byte input" (String.length input))
        true
        (Dom.equal_node (Dom.Element via_dom.Dom.root) (Dom.Element via_sax.Dom.root)))
    inputs

let agreement_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"SAX and DOM parsers agree on generated XML" ~count:50
       QCheck2.Gen.(1 -- 10_000)
       (fun seed ->
         let xml =
           Xfrag_workload.Docgen.generate_xml
             { Xfrag_workload.Docgen.default with seed; sections = 2 }
         in
         let via_dom = Parser.parse_string xml in
         let via_sax = Sax.to_dom xml in
         Dom.equal_node (Dom.Element via_dom.Dom.root) (Dom.Element via_sax.Dom.root)))

let test_streaming_statistics () =
  (* The point of SAX: compute document statistics with no DOM. *)
  let xml = Xfrag_workload.Paper_doc.figure1_xml () in
  let elements = Sax.count_elements xml in
  Alcotest.(check int) "82 elements" 82 elements;
  let text_bytes =
    Sax.fold
      (fun n -> function Sax.Text s -> n + String.length s | _ -> n)
      0 xml
  in
  Alcotest.(check bool) "text present" true (text_bytes > 1000)

let () =
  Alcotest.run "xml_sax"
    [
      ( "events",
        [
          Alcotest.test_case "stream shape" `Quick test_event_stream;
          Alcotest.test_case "prolog pi" `Quick test_prolog_pi_event;
          Alcotest.test_case "nesting balanced" `Quick test_nesting_balanced;
          Alcotest.test_case "count elements" `Quick test_count_elements;
          Alcotest.test_case "cdata merge" `Quick test_cdata_merges_into_text;
          Alcotest.test_case "entities" `Quick test_entities_decoded;
          Alcotest.test_case "errors" `Quick test_errors_raised;
        ] );
      ( "agreement",
        [
          Alcotest.test_case "fixed inputs" `Quick test_agreement_with_dom_parser;
          agreement_prop;
          Alcotest.test_case "streaming statistics" `Quick test_streaming_statistics;
        ] );
    ]
