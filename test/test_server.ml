(* Server-subsystem tests: worker pool semantics (bounded queue,
   shedding, graceful drain), router dispatch against the paper's
   Figure 1 document, the Prometheus exporter, the JSON parser, and an
   in-process end-to-end run over real sockets (accept loop on its own
   domain, no external tooling). *)

module Http = Xfrag_server.Http
module Pool = Xfrag_server.Pool
module Router = Xfrag_server.Router
module Server = Xfrag_server.Server
module Client = Xfrag_server.Client
module Json = Xfrag_obs.Json
module Metrics = Xfrag_obs.Metrics
module Prometheus = Xfrag_obs.Prometheus
module Paper = Xfrag_workload.Paper_doc

(* --- pool --- *)

let test_pool_runs_everything () =
  let pool = Pool.create ~workers:3 ~queue_cap:64 () in
  let hits = Atomic.make 0 in
  for _ = 1 to 50 do
    assert (Pool.submit pool (fun () -> Atomic.incr hits))
  done;
  Pool.shutdown pool;
  Alcotest.(check int) "all jobs ran before shutdown returned" 50
    (Atomic.get hits)

let test_pool_sheds_when_full () =
  let pool = Pool.create ~workers:1 ~queue_cap:2 () in
  let release = Atomic.make false in
  let started = Atomic.make false in
  (* Occupy the single worker... *)
  assert (
    Pool.submit pool (fun () ->
        Atomic.set started true;
        while not (Atomic.get release) do Domain.cpu_relax () done));
  while not (Atomic.get started) do Domain.cpu_relax () done;
  (* ...fill the queue... *)
  assert (Pool.submit pool ignore);
  assert (Pool.submit pool ignore);
  Alcotest.(check int) "queue depth" 2 (Pool.queue_depth pool);
  (* ...and the next submit is refused without blocking. *)
  Alcotest.(check bool) "shed" false (Pool.submit pool ignore);
  Atomic.set release true;
  Pool.shutdown pool

let test_pool_job_exception_is_contained () =
  let pool = Pool.create ~workers:1 ~queue_cap:8 () in
  let ran = Atomic.make false in
  assert (Pool.submit pool (fun () -> failwith "boom"));
  assert (Pool.submit pool (fun () -> Atomic.set ran true));
  Pool.shutdown pool;
  Alcotest.(check bool) "worker survived the raising job" true (Atomic.get ran)

(* --- router --- *)

let make_request ?(meth = "POST") ?(path = "/query") ?(query = [])
    ?(headers = []) body =
  {
    Http.meth;
    path;
    query;
    version = "HTTP/1.1";
    headers;
    body;
  }

let make_router () = Router.create (Paper.figure1_context ())

let body_json (resp : Http.response) =
  match Json.of_string resp.Http.resp_body with
  | Ok j -> j
  | Error e -> Alcotest.failf "response body is not JSON (%s): %s" e resp.Http.resp_body

let int_field key j =
  match Option.bind (Json.member key j) Json.to_int_opt with
  | Some n -> n
  | None -> Alcotest.failf "missing int field %S" key

let test_router_query () =
  let router = make_router () in
  let keywords =
    Json.List (List.map (fun k -> Json.String k) Paper.query_keywords)
  in
  let body = Json.to_string (Json.Obj [ ("keywords", keywords) ]) in
  let resp = Router.handle router (make_request body) in
  Alcotest.(check int) "status" 200 resp.Http.status;
  let j = body_json resp in
  Alcotest.(check bool) "has answers" true (int_field "count" j > 0);
  (* The answer set must match a direct evaluation. *)
  let direct =
    Xfrag_core.Eval.answers (Paper.figure1_context ())
      (Xfrag_core.Query.make Paper.query_keywords)
  in
  Alcotest.(check int) "count agrees with direct Eval"
    (Xfrag_core.Frag_set.cardinal direct) (int_field "count" j)

let test_router_filters () =
  let router = make_router () in
  let keywords =
    Json.List (List.map (fun k -> Json.String k) Paper.query_keywords)
  in
  let body filters =
    Json.to_string (Json.Obj [ ("keywords", keywords); ("filters", filters) ])
  in
  let count filters =
    int_field "count"
      (body_json (Router.handle router (make_request (body filters))))
  in
  let unfiltered = count (Json.Obj []) in
  let tight = count (Json.Obj [ ("max_size", Json.Int 2) ]) in
  Alcotest.(check bool) "max_size filters answers" true (tight <= unfiltered)

let test_router_errors () =
  let router = make_router () in
  let status ?meth ?path ?query body =
    (Router.handle router (make_request ?meth ?path ?query body)).Http.status
  in
  Alcotest.(check int) "bad JSON" 400 (status "{nope");
  Alcotest.(check int) "missing keywords" 400 (status "{}");
  Alcotest.(check int) "empty keywords" 400 (status "{\"keywords\":[]}");
  Alcotest.(check int) "bad strategy" 400
    (status "{\"keywords\":[\"a\"],\"strategy\":\"wat\"}");
  Alcotest.(check int) "bad filter" 400
    (status "{\"keywords\":[\"a\"],\"filter\":\"size<=x\"}");
  Alcotest.(check int) "unknown path" 404 (status ~path:"/nope" "{}");
  Alcotest.(check int) "GET /query" 405 (status ~meth:"GET" "");
  Alcotest.(check int) "POST /healthz" 405 (status ~path:"/healthz" "{}");
  Alcotest.(check int) "healthz" 200 (status ~meth:"GET" ~path:"/healthz" "")

let test_router_deadline_408 () =
  let router = make_router () in
  let body =
    Json.to_string
      (Json.Obj
         [
           ( "keywords",
             Json.List (List.map (fun k -> Json.String k) Paper.query_keywords)
           );
         ])
  in
  let resp =
    Router.handle router
      (make_request ~query:[ ("deadline_ns", "0") ] body)
  in
  Alcotest.(check int) "deadline 0 -> 408" 408 resp.Http.status

let test_router_explain () =
  let router = make_router () in
  let body =
    Json.to_string
      (Json.Obj
         [
           ( "keywords",
             Json.List (List.map (fun k -> Json.String k) Paper.query_keywords)
           );
         ])
  in
  let resp = Router.handle router (make_request ~path:"/explain" body) in
  Alcotest.(check int) "status" 200 resp.Http.status;
  let j = body_json resp in
  Alcotest.(check bool) "has a plan" true (Json.member "plan" j <> None);
  Alcotest.(check bool) "has an operator tree" true (Json.member "root" j <> None)

let test_router_metrics_page () =
  let router = make_router () in
  ignore (Router.handle router (make_request ~meth:"GET" ~path:"/healthz" ""));
  Router.record_shed router;
  let page = Router.metrics_page router in
  let contains sub =
    Astring.String.find_sub ~sub page <> None
  in
  Alcotest.(check bool) "request series" true
    (contains "server_requests{endpoint=\"/healthz\",status=\"200\"}");
  Alcotest.(check bool) "latency series" true
    (contains "server_latency_ns_bucket{endpoint=\"/healthz\",le=");
  Alcotest.(check bool) "shed counter" true (contains "server_shed 1");
  Alcotest.(check bool) "queue depth gauge" true (contains "server_queue_depth")

let test_router_metrics_label_cardinality () =
  (* Untrusted request paths must not mint metric series: a scanner
     probing distinct paths would otherwise grow the registry (and the
     /metrics page) without bound.  Unknown paths share one "other"
     label. *)
  let router = make_router () in
  List.iter
    (fun path ->
      ignore (Router.handle router (make_request ~meth:"GET" ~path "")))
    [ "/nope"; "/admin.php"; "/%2e%2e/etc/passwd" ];
  let page = Router.metrics_page router in
  let contains sub = Astring.String.find_sub ~sub page <> None in
  Alcotest.(check bool) "bucketed under \"other\"" true
    (contains "server_requests{endpoint=\"other\",status=\"404\"} 3");
  Alcotest.(check bool) "raw path is not a label" false (contains "nope");
  Alcotest.(check bool) "decoded path is not a label" false (contains "passwd")

let test_router_deadline_ms_overflow () =
  (* A deadline_ms whose ns conversion would overflow is a validation
     error (400), not a negative deadline masquerading as a 408. *)
  let router = make_router () in
  let body =
    Json.to_string
      (Json.Obj
         [
           ("keywords", Json.List [ Json.String "xml" ]);
           ("deadline_ms", Json.Int ((max_int / 1_000_000) + 1));
         ])
  in
  let resp = Router.handle router (make_request body) in
  Alcotest.(check int) "overflowing deadline_ms -> 400" 400 resp.Http.status

let oversized_brute_force_body () =
  (* 15 occurrences of one keyword is above Powerset's 14-element
     enumeration guard, so Brute_force raises Invalid_argument. *)
  Json.to_string
    (Json.Obj
       [
         ("keywords", Json.List [ Json.String "alpha" ]);
         ("strategy", Json.String "brute-force");
       ])

let test_router_powerset_guard_is_400 () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "<doc>";
  for i = 1 to 15 do
    Buffer.add_string buf (Printf.sprintf "<p>alpha filler%d</p>" i)
  done;
  Buffer.add_string buf "</doc>";
  let router =
    Router.create (Xfrag_core.Context.of_xml_string (Buffer.contents buf))
  in
  let resp = Router.handle router (make_request (oversized_brute_force_body ())) in
  Alcotest.(check int) "enumeration guard -> 400, not 500" 400 resp.Http.status

(* --- /corpus/query --- *)

let corpus_fixture () =
  let doc seed plant =
    Xfrag_workload.Docgen.with_planted_keywords
      { Xfrag_workload.Docgen.default with seed; sections = 2 }
      ~plant
  in
  Xfrag_core.Corpus.of_documents
    [
      ("a.xml", doc 11 [ ("mangrove", 2); ("estuary", 1) ]);
      ("b.xml", doc 12 [ ("mangrove", 3) ]);
      ("c.xml", doc 13 [ ("estuary", 2) ]);
    ]

let make_corpus_router ?shards () =
  Router.create ?shards ~corpus:(corpus_fixture ()) (Paper.figure1_context ())

let corpus_body =
  Json.to_string (Json.Obj [ ("keywords", Json.List [ Json.String "mangrove" ]) ])

let list_field key j =
  match Json.member key j with
  | Some (Json.List l) -> l
  | _ -> Alcotest.failf "missing list field %S" key

let test_corpus_query_single () =
  let router = make_corpus_router ~shards:2 () in
  let resp =
    Router.handle router (make_request ~path:"/corpus/query" corpus_body)
  in
  Alcotest.(check int) "status" 200 resp.Http.status;
  let j = body_json resp in
  Alcotest.(check bool) "has hits" true (int_field "count" j > 0);
  Alcotest.(check int) "two shard reports" 2 (List.length (list_field "shards" j));
  Alcotest.(check bool) "merge timing" true (int_field "merge_ns" j >= 0);
  (* Every hit names its document and carries a score. *)
  List.iter
    (fun h ->
      (match Json.member "doc" h with
      | Some (Json.String _) -> ()
      | _ -> Alcotest.fail "hit is missing its doc name");
      match Json.member "score" h with
      | Some (Json.Float _) -> ()
      | _ -> Alcotest.fail "hit is missing its score")
    (list_field "hits" j);
  (* Hit counts agree with a direct sharded run over the same corpus. *)
  let direct =
    Xfrag_core.Corpus.run ~shards:2 (corpus_fixture ())
      Xfrag_core.Exec.Request.(
        with_limit (Some 100) (with_keywords [ "mangrove" ] default))
  in
  Alcotest.(check int) "count agrees with direct Corpus.run"
    (List.length direct.Xfrag_core.Corpus.hits)
    (int_field "count" j)

let test_corpus_query_batch () =
  let router = make_corpus_router () in
  let one kw = Json.Obj [ ("keywords", Json.List [ Json.String kw ]) ] in
  let body = Json.to_string (Json.List [ one "mangrove"; one "estuary" ]) in
  let resp = Router.handle router (make_request ~path:"/corpus/query" body) in
  Alcotest.(check int) "status" 200 resp.Http.status;
  let results = list_field "results" (body_json resp) in
  Alcotest.(check int) "one result per batch entry" 2 (List.length results);
  List.iter
    (fun r -> Alcotest.(check bool) "each has hits" true (int_field "count" r > 0))
    results

let test_corpus_query_batch_limits () =
  let router = make_corpus_router () in
  let status body =
    (Router.handle router (make_request ~path:"/corpus/query" body)).Http.status
  in
  Alcotest.(check int) "empty batch" 400 (status "[]");
  let one = {|{"keywords":["mangrove"]}|} in
  let oversized =
    "[" ^ String.concat "," (List.init 33 (fun _ -> one)) ^ "]"
  in
  Alcotest.(check int) "batch above cap" 400 (status oversized);
  (* A bad entry rejects the whole batch: one ticket, one verdict. *)
  Alcotest.(check int) "bad entry poisons batch" 400
    (status ("[" ^ one ^ ",{}]"))

let test_corpus_query_without_corpus () =
  let router = make_router () in
  let resp =
    Router.handle router (make_request ~path:"/corpus/query" corpus_body)
  in
  Alcotest.(check int) "no corpus -> 404" 404 resp.Http.status

let test_corpus_metrics () =
  let router = make_corpus_router ~shards:2 () in
  ignore (Router.handle router (make_request ~path:"/corpus/query" corpus_body));
  let page = Router.metrics_page router in
  let contains sub = Astring.String.find_sub ~sub page <> None in
  Alcotest.(check bool) "shard-count gauge" true (contains "corpus_shards 2");
  Alcotest.(check bool) "per-shard latency histogram" true
    (contains "corpus_shard_elapsed_ns_bucket");
  Alcotest.(check bool) "merge latency histogram" true
    (contains "corpus_merge_ns_count 1");
  Alcotest.(check bool) "endpoint counter" true
    (contains "server_requests{endpoint=\"/corpus/query\",status=\"200\"} 1")

(* --- request ids and /debug endpoints --- *)

module Recorder = Xfrag_obs.Recorder

(* The recorder is process-global; force it on and restore so these
   tests stay meaningful (and honest) under the XFRAG_RECORDER=0 CI
   leg, which proves the engine never depends on it. *)
let with_recorder f =
  let was = Recorder.enabled () in
  Recorder.set_enabled true;
  Recorder.clear ();
  Fun.protect
    ~finally:(fun () ->
      Recorder.clear ();
      Recorder.set_enabled was)
    f

let resp_header name (resp : Http.response) =
  List.find_map
    (fun (k, v) ->
      if String.lowercase_ascii k = String.lowercase_ascii name then Some v
      else None)
    resp.Http.resp_headers

let string_field key j =
  match Option.bind (Json.member key j) Json.to_string_opt with
  | Some s -> s
  | None -> Alcotest.failf "missing string field %S" key

let query_body =
  Json.to_string
    (Json.Obj
       [
         ( "keywords",
           Json.List (List.map (fun k -> Json.String k) Paper.query_keywords) );
       ])

let test_request_id_echo () =
  let router = make_router () in
  let resp =
    Router.handle router
      (make_request ~headers:[ ("x-request-id", "client-abc.1") ] query_body)
  in
  Alcotest.(check int) "status" 200 resp.Http.status;
  Alcotest.(check (option string)) "inbound id echoed" (Some "client-abc.1")
    (resp_header "x-request-id" resp);
  Alcotest.(check string) "inbound id in body" "client-abc.1"
    (string_field "request_id" (body_json resp))

let test_request_id_minted_when_invalid () =
  let router = make_router () in
  let check_minted resp =
    match resp_header "x-request-id" resp with
    | None -> Alcotest.fail "response lost its X-Request-Id"
    | Some id ->
        Alcotest.(check bool) "fresh mint, not the bad inbound id" true
          (id <> "bad id!" && String.length id > 4 && String.sub id 0 4 = "req-")
  in
  check_minted
    (Router.handle router
       (make_request ~headers:[ ("x-request-id", "bad id!") ] query_body));
  (* Absent header: still minted. *)
  check_minted (Router.handle router (make_request query_body))

let test_request_id_on_error_responses () =
  let router = make_router () in
  let has_id ?meth ?path ?query body =
    let resp = Router.handle router (make_request ?meth ?path ?query body) in
    (match resp_header "x-request-id" resp with
    | None -> Alcotest.failf "%d response has no X-Request-Id" resp.Http.status
    | Some _ -> ());
    Alcotest.(check bool)
      (Printf.sprintf "%d body carries request_id" resp.Http.status)
      true
      (String.length (string_field "request_id" (body_json resp)) > 0)
  in
  has_id "{nope";
  (* 400: unparseable body *)
  has_id ~path:"/nope" "{}";
  (* 404 *)
  has_id ~meth:"GET" ~path:"/query" "";
  (* 405 *)
  has_id ~query:[ ("deadline_ns", "0") ] query_body (* 408 *)

let test_debug_requests () =
  with_recorder (fun () ->
      let router = make_router () in
      let resp =
        Router.handle router
          (make_request ~headers:[ ("x-request-id", "debug-probe-1") ] query_body)
      in
      Alcotest.(check int) "query status" 200 resp.Http.status;
      let dbg =
        Router.handle router
          (make_request ~meth:"GET" ~path:"/debug/requests"
             ~query:[ ("id", "debug-probe-1") ]
             "")
      in
      Alcotest.(check int) "debug status" 200 dbg.Http.status;
      let j = body_json dbg in
      Alcotest.(check int) "one matching event" 1 (int_field "count" j);
      match list_field "events" j with
      | [ ev ] ->
          Alcotest.(check string) "event id" "debug-probe-1"
            (string_field "id" ev);
          Alcotest.(check string) "endpoint" "/query" (string_field "endpoint" ev);
          Alcotest.(check string) "outcome" "ok" (string_field "outcome" ev);
          Alcotest.(check int) "status" 200 (int_field "status" ev);
          (* Stage timings: eval and total are non-zero for a real
             evaluation (parse can round to 0 at clock resolution). *)
          Alcotest.(check bool) "eval_ns > 0" true (int_field "eval_ns" ev > 0);
          Alcotest.(check bool) "total_ns > 0" true (int_field "total_ns" ev > 0);
          Alcotest.(check bool) "hits recorded" true (int_field "hits" ev > 0)
      | evs -> Alcotest.failf "expected one event, got %d" (List.length evs))

let test_debug_requests_last_n () =
  with_recorder (fun () ->
      let router = make_router () in
      for i = 1 to 5 do
        ignore
          (Router.handle router
             (make_request
                ~headers:[ ("x-request-id", Printf.sprintf "burst-%d" i) ]
                query_body))
      done;
      let dbg =
        Router.handle router
          (make_request ~meth:"GET" ~path:"/debug/requests"
             ~query:[ ("n", "3") ] "")
      in
      let j = body_json dbg in
      Alcotest.(check int) "last 3" 3 (int_field "count" j);
      let ids = List.map (string_field "id") (list_field "events" j) in
      Alcotest.(check (list string)) "newest three, oldest first"
        [ "burst-3"; "burst-4"; "burst-5" ] ids;
      (* Junk n is a client error, not a crash. *)
      let bad =
        Router.handle router
          (make_request ~meth:"GET" ~path:"/debug/requests"
             ~query:[ ("n", "wat") ] "")
      in
      Alcotest.(check int) "non-numeric n -> 400" 400 bad.Http.status)

let test_debug_slow () =
  with_recorder (fun () ->
      let router = make_router () in
      ignore
        (Router.handle router
           (make_request ~headers:[ ("x-request-id", "slow-probe") ] query_body));
      let slow_at ms =
        body_json
          (Router.handle router
             (make_request ~meth:"GET" ~path:"/debug/slow"
                ~query:[ ("ms", ms) ] ""))
      in
      (* Threshold 0: everything qualifies. *)
      let j = slow_at "0" in
      Alcotest.(check bool) "threshold surfaces" true
        (Json.member "threshold_ns" j <> None);
      Alcotest.(check bool) "all requests qualify at 0ms" true
        (int_field "count" j >= 1);
      (* An hour: nothing does. *)
      Alcotest.(check int) "none at 3600000ms" 0
        (int_field "count" (slow_at "3600000")))

let test_debug_endpoints_are_get_only () =
  let router = make_router () in
  List.iter
    (fun path ->
      let resp = Router.handle router (make_request ~path "{}") in
      Alcotest.(check int) (path ^ " POST -> 405") 405 resp.Http.status)
    [ "/debug/requests"; "/debug/slow" ]

let test_fault_500_lands_in_recorder () =
  with_recorder (fun () ->
      let router = make_router () in
      let resp =
        Xfrag_fault.Fault.Failpoint.with_armed "eval.request" Xfrag_fault.Fault.Raise
          (fun () ->
            Router.handle router
              (make_request ~headers:[ ("x-request-id", "chaos-1") ] query_body))
      in
      Alcotest.(check int) "fault -> 500" 500 resp.Http.status;
      Alcotest.(check (option string)) "500 echoes the id" (Some "chaos-1")
        (resp_header "x-request-id" resp);
      Alcotest.(check string) "500 body carries request_id" "chaos-1"
        (string_field "request_id" (body_json resp));
      match Recorder.find "chaos-1" with
      | None -> Alcotest.fail "fault event not in the flight recorder"
      | Some ev ->
          Alcotest.(check string) "outcome" "fault" ev.Recorder.outcome;
          Alcotest.(check string) "site" "eval.request" ev.Recorder.site;
          Alcotest.(check int) "status" 500 ev.Recorder.status)

(* --- document CRUD over /corpus/docs --- *)

module Fault = Xfrag_fault.Fault

let small_doc_xml =
  "<doc><sec>mangrove mangrove estuary</sec><sec>mangrove wetlands</sec></doc>"

let obj_field key j =
  match Json.member key j with
  | Some (Json.Obj _ as o) -> o
  | _ -> Alcotest.failf "missing object field %S" key

let bool_field key j =
  match Json.member key j with
  | Some (Json.Bool b) -> b
  | _ -> Alcotest.failf "missing bool field %S" key

(* limit 100 so every resident document's hits are visible — the
   concurrency test below asserts on the full doc set. *)
let mangrove_query = {|{"keywords":["mangrove"],"limit":100}|}

let hit_docs router =
  let resp =
    Router.handle router (make_request ~path:"/corpus/query" mangrove_query)
  in
  Alcotest.(check int) "corpus query status" 200 resp.Http.status;
  List.map (string_field "doc") (list_field "hits" (body_json resp))

let listing_count router =
  int_field "count"
    (body_json
       (Router.handle router (make_request ~meth:"GET" ~path:"/corpus/docs" "")))

let test_crud_lifecycle () =
  let router = make_corpus_router () in
  let put body =
    Router.handle router
      (make_request ~meth:"PUT" ~path:"/corpus/docs/d.xml" body)
  in
  (* Create: 201, and the next query sees it without a restart. *)
  let resp = put small_doc_xml in
  Alcotest.(check int) "create -> 201" 201 resp.Http.status;
  let j = body_json resp in
  Alcotest.(check bool) "created" true (bool_field "created" j);
  Alcotest.(check bool) "not a replace" false (bool_field "replaced" j);
  Alcotest.(check int) "corpus grew" 4 (int_field "corpus_docs" j);
  Alcotest.(check bool) "nodes parsed" true (int_field "nodes" j > 0);
  Alcotest.(check bool) "new doc answers queries" true
    (List.mem "d.xml" (hit_docs router));
  (* Resource read. *)
  let got =
    Router.handle router (make_request ~meth:"GET" ~path:"/corpus/docs/d.xml" "")
  in
  Alcotest.(check int) "GET doc" 200 got.Http.status;
  let gj = body_json got in
  Alcotest.(check bool) "doc nodes" true (int_field "nodes" gj > 0);
  Alcotest.(check bool) "doc keywords" true (int_field "keywords" gj > 0);
  (* Replace: 200, corpus size unchanged. *)
  let resp = put small_doc_xml in
  Alcotest.(check int) "replace -> 200" 200 resp.Http.status;
  Alcotest.(check bool) "replaced" true (bool_field "replaced" (body_json resp));
  Alcotest.(check int) "size unchanged on replace" 4
    (int_field "corpus_docs" (body_json resp));
  (* Delete: gone from the next query, and a second delete is 404. *)
  let del =
    Router.handle router
      (make_request ~meth:"DELETE" ~path:"/corpus/docs/d.xml" "")
  in
  Alcotest.(check int) "delete" 200 del.Http.status;
  Alcotest.(check bool) "deleted" true (bool_field "deleted" (body_json del));
  Alcotest.(check int) "corpus shrank" 3
    (int_field "corpus_docs" (body_json del));
  Alcotest.(check bool) "deleted doc gone from answers" false
    (List.mem "d.xml" (hit_docs router));
  Alcotest.(check int) "re-delete -> 404" 404
    (Router.handle router
       (make_request ~meth:"DELETE" ~path:"/corpus/docs/d.xml" ""))
      .Http.status;
  Alcotest.(check int) "GET gone -> 404" 404
    (Router.handle router (make_request ~meth:"GET" ~path:"/corpus/docs/d.xml" ""))
      .Http.status

let test_put_bootstraps_empty_server () =
  (* A router with no corpus still serves the resource endpoints: the
     listing is an empty 200, and the first PUT brings /corpus/query to
     life. *)
  let router = make_router () in
  Alcotest.(check int) "no corpus -> 404" 404
    (Router.handle router (make_request ~path:"/corpus/query" mangrove_query))
      .Http.status;
  Alcotest.(check int) "empty listing is legal" 0 (listing_count router);
  let resp =
    Router.handle router
      (make_request ~meth:"PUT" ~path:"/corpus/docs/figure1.xml"
         (Paper.figure1_xml ()))
  in
  Alcotest.(check int) "bootstrap PUT" 201 resp.Http.status;
  let q =
    Json.to_string
      (Json.Obj
         [
           ( "keywords",
             Json.List (List.map (fun k -> Json.String k) Paper.query_keywords)
           );
         ])
  in
  let resp = Router.handle router (make_request ~path:"/corpus/query" q) in
  Alcotest.(check int) "corpus query now serves" 200 resp.Http.status;
  Alcotest.(check bool) "has hits" true
    (int_field "count" (body_json resp) > 0)

let test_put_invalid_xml_quarantined () =
  let router = make_corpus_router () in
  let before = Fault.count "quarantined_docs" in
  let resp =
    Router.handle router
      (make_request ~meth:"PUT" ~path:"/corpus/docs/broken.xml"
         "<doc><unclosed>")
  in
  Alcotest.(check int) "bad XML -> 400" 400 resp.Http.status;
  let j = body_json resp in
  Alcotest.(check string) "kind parse_error" "parse_error"
    (string_field "kind" (obj_field "error" j));
  Alcotest.(check int) "quarantine counter bumped" (before + 1)
    (Fault.count "quarantined_docs");
  Alcotest.(check int) "corpus unchanged" 3 (listing_count router)

let test_corpus_stats_endpoint () =
  let router = make_corpus_router () in
  let resp =
    Router.handle router (make_request ~meth:"GET" ~path:"/corpus/stats" "")
  in
  Alcotest.(check int) "status" 200 resp.Http.status;
  let j = body_json resp in
  Alcotest.(check int) "docs" 3 (int_field "docs" j);
  Alcotest.(check bool) "total nodes" true (int_field "total_nodes" j > 0);
  let idx = obj_field "index" j in
  Alcotest.(check int) "index docs" 3 (int_field "docs" idx);
  Alcotest.(check bool) "index vocabulary" true
    (int_field "vocabulary" idx > 0);
  (* No cache configured: the cache slot is an explicit null. *)
  Alcotest.(check bool) "cache null" true (Json.member "cache" j = Some Json.Null)

let test_error_envelope_shape () =
  let router = make_corpus_router () in
  let resp =
    Router.handle router
      (make_request ~meth:"GET" ~path:"/corpus/docs/nope.xml" "")
  in
  Alcotest.(check int) "404" 404 resp.Http.status;
  let j = body_json resp in
  let env = obj_field "error" j in
  Alcotest.(check string) "envelope kind" "not_found" (string_field "kind" env);
  Alcotest.(check bool) "envelope message" true
    (String.length (string_field "message" env) > 0);
  let id = string_field "request_id" env in
  Alcotest.(check bool) "envelope request_id" true (String.length id > 0);
  (* Deprecated top-level aliases mirror the envelope for one release. *)
  Alcotest.(check string) "alias kind" "not_found" (string_field "kind" j);
  Alcotest.(check string) "alias request_id" id (string_field "request_id" j)

let test_405_allow () =
  let router = make_corpus_router () in
  let check_allow ~meth ~path expect =
    let resp = Router.handle router (make_request ~meth ~path "{}") in
    Alcotest.(check int) (path ^ " -> 405") 405 resp.Http.status;
    Alcotest.(check (option string))
      (path ^ " Allow header")
      (Some (String.concat ", " expect))
      (resp_header "allow" resp);
    let j = body_json resp in
    Alcotest.(check (list string))
      (path ^ " allow body")
      expect
      (List.map
         (function Json.String s -> s | _ -> "?")
         (list_field "allow" j));
    Alcotest.(check string) (path ^ " kind") "method_not_allowed"
      (string_field "kind" (obj_field "error" j))
  in
  check_allow ~meth:"GET" ~path:"/query" [ "POST" ];
  check_allow ~meth:"POST" ~path:"/corpus/docs" [ "GET" ];
  check_allow ~meth:"POST" ~path:"/corpus/docs/a.xml" [ "DELETE"; "GET"; "PUT" ]

let test_corpus_write_fault_leaves_snapshot () =
  let router = make_corpus_router () in
  let resp =
    Fault.Failpoint.with_armed "corpus.write" Fault.Raise (fun () ->
        Router.handle router
          (make_request ~meth:"PUT" ~path:"/corpus/docs/d.xml" small_doc_xml))
  in
  Alcotest.(check int) "injected write -> 500" 500 resp.Http.status;
  let env = obj_field "error" (body_json resp) in
  Alcotest.(check string) "kind" "fault_injected" (string_field "kind" env);
  Alcotest.(check string) "site" "corpus.write" (string_field "site" env);
  (* The failpoint fires before any state change: snapshot untouched. *)
  Alcotest.(check int) "corpus unchanged" 3 (listing_count router);
  Alcotest.(check bool) "no half-applied doc" false
    (List.mem "d.xml" (hit_docs router));
  (* And the write path recovers once disarmed. *)
  Alcotest.(check int) "PUT succeeds after disarm" 201
    (Router.handle router
       (make_request ~meth:"PUT" ~path:"/corpus/docs/d.xml" small_doc_xml))
      .Http.status

let test_write_metrics () =
  let router = make_corpus_router () in
  ignore
    (Router.handle router
       (make_request ~meth:"PUT" ~path:"/corpus/docs/d.xml" small_doc_xml));
  ignore
    (Router.handle router
       (make_request ~meth:"DELETE" ~path:"/corpus/docs/d.xml" ""));
  let page = Router.metrics_page router in
  let contains sub = Astring.String.find_sub ~sub page <> None in
  Alcotest.(check bool) "put counter" true (contains "corpus_put 1");
  Alcotest.(check bool) "delete counter" true (contains "corpus_delete 1");
  Alcotest.(check bool) "put latency" true (contains "corpus_put_ns_count 1");
  Alcotest.(check bool) "writer wait" true
    (contains "corpus_writer_wait_ns_count 2");
  Alcotest.(check bool) "retract timing" true
    (contains "index_retract_ns_count 1");
  (* Doc paths bucket to one label — no per-name series. *)
  Alcotest.(check bool) "bucketed endpoint label" true
    (contains "server_requests{endpoint=\"/corpus/docs/{name}\",status=\"201\"} 1");
  Alcotest.(check bool) "doc name is not a label" false (contains "d.xml")

let test_concurrent_readers_and_writer () =
  (* Readers pin a snapshot per request while a writer cycles d.xml in
     and out: every read must see a complete corpus — the two stable
     documents always answer, and nothing but the three known names ever
     appears.  A torn swap, a lost index, or a stale cross-generation
     hit would all break one of those invariants. *)
  let router = make_corpus_router () in
  let stop = Atomic.make false in
  let failures = Atomic.make 0 in
  let reader () =
    while not (Atomic.get stop) do
      let resp =
        Router.handle router
          (make_request ~path:"/corpus/query" mangrove_query)
      in
      let ok =
        resp.Http.status = 200
        &&
        let docs =
          List.map (string_field "doc") (list_field "hits" (body_json resp))
        in
        List.mem "a.xml" docs && List.mem "b.xml" docs
        && List.for_all
             (fun d -> List.mem d [ "a.xml"; "b.xml"; "d.xml" ])
             docs
      in
      if not ok then Atomic.incr failures
    done
  in
  let readers = List.init 2 (fun _ -> Domain.spawn reader) in
  let writes_ok = ref true in
  for _ = 1 to 25 do
    let put =
      Router.handle router
        (make_request ~meth:"PUT" ~path:"/corpus/docs/d.xml" small_doc_xml)
    in
    let del =
      Router.handle router
        (make_request ~meth:"DELETE" ~path:"/corpus/docs/d.xml" "")
    in
    if put.Http.status <> 201 || del.Http.status <> 200 then writes_ok := false
  done;
  Atomic.set stop true;
  List.iter Domain.join readers;
  Alcotest.(check bool) "every write round-tripped" true !writes_ok;
  Alcotest.(check int) "no torn or stale reads" 0 (Atomic.get failures)

(* --- prometheus exporter --- *)

let test_prometheus_render () =
  let reg = Metrics.create () in
  Metrics.Counter.add (Metrics.counter reg "reqs{endpoint=\"/q\"}") 3;
  Metrics.Counter.add (Metrics.counter reg "reqs{endpoint=\"/x\"}") 1;
  Metrics.Gauge.set (Metrics.gauge reg "queue.depth") 2.0;
  let h = Metrics.histogram reg "lat_ns" in
  Metrics.Histogram.observe h 1.0;
  Metrics.Histogram.observe h 3.0;
  Metrics.Histogram.observe h 3.0;
  let out = Prometheus.render reg in
  Alcotest.(check string) "full exposition"
    "# TYPE lat_ns histogram\n\
     lat_ns_bucket{le=\"1\"} 1\n\
     lat_ns_bucket{le=\"4\"} 3\n\
     lat_ns_bucket{le=\"+Inf\"} 3\n\
     lat_ns_sum 7\n\
     lat_ns_count 3\n\
     # TYPE queue_depth gauge\n\
     queue_depth 2\n\
     # TYPE reqs counter\n\
     reqs{endpoint=\"/q\"} 3\n\
     reqs{endpoint=\"/x\"} 1\n"
    out

let test_prometheus_sanitize () =
  let reg = Metrics.create () in
  Metrics.Counter.incr (Metrics.counter reg "ops.fragment-joins");
  let out = Prometheus.render ~namespace:"xfrag" reg in
  Alcotest.(check string) "sanitized + namespaced"
    "# TYPE xfrag_ops_fragment_joins counter\nxfrag_ops_fragment_joins 1\n" out

(* --- JSON parser --- *)

let parse_json s =
  match Json.of_string s with
  | Ok j -> j
  | Error e -> Alcotest.failf "parse %S failed: %s" s e

let test_json_values () =
  Alcotest.(check bool) "null" true (parse_json " null " = Json.Null);
  Alcotest.(check bool) "ints" true (parse_json "[0,-5,123]"
    = Json.List [ Json.Int 0; Json.Int (-5); Json.Int 123 ]);
  Alcotest.(check bool) "float" true (parse_json "1.5" = Json.Float 1.5);
  Alcotest.(check bool) "exponent is float" true
    (match parse_json "1e3" with Json.Float f -> f = 1000.0 | _ -> false);
  Alcotest.(check bool) "nested" true
    (parse_json "{\"a\":[true,false],\"b\":{\"c\":\"d\"}}"
    = Json.Obj
        [
          ("a", Json.List [ Json.Bool true; Json.Bool false ]);
          ("b", Json.Obj [ ("c", Json.String "d") ]);
        ])

let test_json_strings () =
  Alcotest.(check bool) "escapes" true
    (parse_json {|"a\"b\\c\nd\t"|} = Json.String "a\"b\\c\nd\t");
  Alcotest.(check bool) "unicode escape" true
    (parse_json "\"\\u0041\"" = Json.String "A");
  Alcotest.(check bool) "surrogate pair" true
    (parse_json "\"\\ud83d\\ude00\"" = Json.String "\xf0\x9f\x98\x80")

let test_json_round_trip () =
  let j =
    Json.Obj
      [
        ("keywords", Json.List [ Json.String "xml"; Json.String "query" ]);
        ("n", Json.Int 42);
        ("f", Json.Float 2.5);
        ("deep", Json.Obj [ ("l", Json.List [ Json.Null; Json.Bool true ]) ]);
      ]
  in
  Alcotest.(check bool) "to_string |> of_string is identity" true
    (parse_json (Json.to_string j) = j)

let test_json_errors () =
  let fails s =
    match Json.of_string s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (fails "");
  Alcotest.(check bool) "trailing garbage" true (fails "1 2");
  Alcotest.(check bool) "unterminated string" true (fails "\"abc");
  Alcotest.(check bool) "bare word" true (fails "nope");
  Alcotest.(check bool) "trailing comma" true (fails "[1,]");
  Alcotest.(check bool) "control char in string" true (fails "\"a\nb\"");
  Alcotest.(check bool) "lone surrogate" true (fails {|"\ud83d"|});
  Alcotest.(check bool) "deep nesting bounded" true
    (fails (String.make 1000 '[' ^ String.make 1000 ']'))

(* --- end to end over real sockets --- *)

let test_end_to_end () =
  let ctx = Paper.figure1_context () in
  let cache = Xfrag_core.Join_cache.create ~synchronized:true () in
  let router = Router.create ~cache ctx in
  let config =
    { Server.default_config with workers = 2; queue_cap = 8; port = 0 }
  in
  let server = Server.start ~config router in
  let accept_domain = Domain.spawn (fun () -> Server.run server) in
  let port = Server.port server in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join accept_domain)
    (fun () ->
      (* healthz *)
      (match
         Client.once ~host:"127.0.0.1" ~port ~meth:"GET" ~path:"/healthz" ()
       with
      | Ok (200, _, body) -> Alcotest.(check string) "healthz" "ok\n" body
      | Ok (s, _, _) -> Alcotest.failf "healthz: %d" s
      | Error e -> Alcotest.fail e);
      (* keep-alive: two queries on one connection *)
      let conn = Client.connect ~host:"127.0.0.1" ~port () in
      let body =
        Json.to_string
          (Json.Obj
             [
               ( "keywords",
                 Json.List
                   (List.map (fun k -> Json.String k) Paper.query_keywords) );
             ])
      in
      let do_query () =
        match Client.request conn ~meth:"POST" ~path:"/query" ~body () with
        | Ok (200, _, body) -> int_field "count" (parse_json body)
        | Ok (s, _, _) -> Alcotest.failf "query: %d" s
        | Error e -> Alcotest.fail e
      in
      let c1 = do_query () in
      let c2 = do_query () in
      Client.close conn;
      Alcotest.(check bool) "answers" true (c1 > 0);
      Alcotest.(check int) "same on reused connection" c1 c2;
      (* metrics reflect what happened *)
      match
        Client.once ~host:"127.0.0.1" ~port ~meth:"GET" ~path:"/metrics" ()
      with
      | Ok (200, _, page) ->
          Alcotest.(check bool) "query counter" true
            (Astring.String.find_sub
               ~sub:"server_requests{endpoint=\"/query\",status=\"200\"} 2" page
            <> None)
      | Ok (s, _, _) -> Alcotest.failf "metrics: %d" s
      | Error e -> Alcotest.fail e)

let () =
  Alcotest.run "server"
    [
      ( "pool",
        [
          Alcotest.test_case "runs everything" `Quick test_pool_runs_everything;
          Alcotest.test_case "sheds when full" `Quick test_pool_sheds_when_full;
          Alcotest.test_case "contains exceptions" `Quick
            test_pool_job_exception_is_contained;
        ] );
      ( "router",
        [
          Alcotest.test_case "query" `Quick test_router_query;
          Alcotest.test_case "filters" `Quick test_router_filters;
          Alcotest.test_case "errors" `Quick test_router_errors;
          Alcotest.test_case "deadline 408" `Quick test_router_deadline_408;
          Alcotest.test_case "explain" `Quick test_router_explain;
          Alcotest.test_case "metrics page" `Quick test_router_metrics_page;
          Alcotest.test_case "metrics label cardinality" `Quick
            test_router_metrics_label_cardinality;
          Alcotest.test_case "deadline_ms overflow" `Quick
            test_router_deadline_ms_overflow;
          Alcotest.test_case "powerset guard is 400" `Quick
            test_router_powerset_guard_is_400;
        ] );
      ( "corpus endpoint",
        [
          Alcotest.test_case "single request" `Quick test_corpus_query_single;
          Alcotest.test_case "batch" `Quick test_corpus_query_batch;
          Alcotest.test_case "batch limits" `Quick test_corpus_query_batch_limits;
          Alcotest.test_case "404 without corpus" `Quick
            test_corpus_query_without_corpus;
          Alcotest.test_case "metrics" `Quick test_corpus_metrics;
        ] );
      ( "telemetry",
        [
          Alcotest.test_case "X-Request-Id echo" `Quick test_request_id_echo;
          Alcotest.test_case "invalid id re-minted" `Quick
            test_request_id_minted_when_invalid;
          Alcotest.test_case "ids on error responses" `Quick
            test_request_id_on_error_responses;
          Alcotest.test_case "/debug/requests by id" `Quick test_debug_requests;
          Alcotest.test_case "/debug/requests last n" `Quick
            test_debug_requests_last_n;
          Alcotest.test_case "/debug/slow" `Quick test_debug_slow;
          Alcotest.test_case "debug endpoints GET-only" `Quick
            test_debug_endpoints_are_get_only;
          Alcotest.test_case "fault 500 in recorder" `Quick
            test_fault_500_lands_in_recorder;
        ] );
      ( "corpus crud",
        [
          Alcotest.test_case "lifecycle" `Quick test_crud_lifecycle;
          Alcotest.test_case "PUT bootstraps empty server" `Quick
            test_put_bootstraps_empty_server;
          Alcotest.test_case "invalid XML quarantined" `Quick
            test_put_invalid_xml_quarantined;
          Alcotest.test_case "/corpus/stats" `Quick test_corpus_stats_endpoint;
          Alcotest.test_case "error envelope shape" `Quick
            test_error_envelope_shape;
          Alcotest.test_case "405 carries Allow" `Quick test_405_allow;
          Alcotest.test_case "write fault leaves snapshot" `Quick
            test_corpus_write_fault_leaves_snapshot;
          Alcotest.test_case "write metrics" `Quick test_write_metrics;
          Alcotest.test_case "readers race writer" `Quick
            test_concurrent_readers_and_writer;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "render" `Quick test_prometheus_render;
          Alcotest.test_case "sanitize" `Quick test_prometheus_sanitize;
        ] );
      ( "json",
        [
          Alcotest.test_case "values" `Quick test_json_values;
          Alcotest.test_case "strings" `Quick test_json_strings;
          Alcotest.test_case "round trip" `Quick test_json_round_trip;
          Alcotest.test_case "errors" `Quick test_json_errors;
        ] );
      ( "end-to-end",
        [ Alcotest.test_case "sockets" `Quick test_end_to_end ] );
    ]
