(* Tests for powerset fragment join (Definition 6) and Theorem 2:
   F1 ⋈* F2 = F1⁺ ⋈ F2⁺. *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Join = Xfrag_core.Join
module Powerset = Xfrag_core.Powerset
module Fixed_point = Xfrag_core.Fixed_point
module Paper = Xfrag_workload.Paper_doc
module Random_tree = Xfrag_workload.Random_tree
module Prng = Xfrag_util.Prng

let set_testable = Alcotest.testable Frag_set.pp Frag_set.equal

let fig3 = lazy (Paper.figure3_context ())

let frag ctx ns = Fragment.of_nodes ctx ns

let test_literal_small () =
  let ctx = Lazy.force fig3 in
  let s1 = Frag_set.of_list [ Fragment.singleton 8 ] in
  let s2 = Frag_set.of_list [ Fragment.singleton 9 ] in
  Alcotest.check set_testable "singletons"
    (Frag_set.of_list [ frag ctx [ 7; 8; 9 ] ])
    (Powerset.literal ctx s1 s2)

let test_literal_produces_more_than_pairwise () =
  (* Figure 3(d) vs 3(c): powerset join yields a superset of pairwise
     join because it also joins multi-element subsets. *)
  let ctx = Lazy.force fig3 in
  let s1 = Frag_set.of_list [ frag ctx [ 4; 5 ]; Fragment.singleton 2 ] in
  let s2 = Frag_set.of_list [ frag ctx [ 7; 9 ]; Fragment.singleton 8 ] in
  let pw = Join.pairwise ctx s1 s2 in
  let ps = Powerset.literal ctx s1 s2 in
  Alcotest.(check bool) "pairwise ⊆ powerset" true (Frag_set.subset pw ps);
  Alcotest.(check bool) "powerset strictly larger" true
    (Frag_set.cardinal ps >= Frag_set.cardinal pw)

let test_literal_guard () =
  let ctx = Lazy.force fig3 in
  let big =
    Frag_set.of_list (List.init 10 (fun i -> Fragment.singleton i))
  in
  match Powerset.literal ~max_set_size:4 ctx big big with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected the exponential-enumeration guard to fire"

let test_theorem2_paper_example () =
  (* §4.2: F1 = {f17, f18}, F2 = {f16, f17, f81} over the Figure 1
     document; F1 ⋈* F2 must equal F1⁺ ⋈ F2⁺ and contain exactly the 7
     unique fragments of Table 1. *)
  let ctx = Paper.figure1_context () in
  let s1 = Frag_set.of_list [ Fragment.singleton 17; Fragment.singleton 18 ] in
  let s2 =
    Frag_set.of_list
      [ Fragment.singleton 16; Fragment.singleton 17; Fragment.singleton 81 ]
  in
  let literal = Powerset.literal ctx s1 s2 in
  let theorem2 = Powerset.via_fixed_points ctx s1 s2 in
  Alcotest.check set_testable "Theorem 2" literal theorem2;
  Alcotest.(check int) "7 unique fragments" 7 (Frag_set.cardinal literal)

let theorem2_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"Theorem 2: F1 ⋈* F2 = F1⁺ ⋈ F2⁺" ~count:60
       QCheck2.Gen.(pair (1 -- 10_000) (2 -- 30))
       (fun (seed, size) ->
         let ctx = Random_tree.context ~seed ~size in
         let prng = Prng.create (seed * 13) in
         let s1 = Random_tree.fragment_set ctx prng ~max_fragments:4 in
         let s2 = Random_tree.fragment_set ctx prng ~max_fragments:4 in
         Frag_set.equal (Powerset.literal ctx s1 s2)
           (Powerset.via_fixed_points ctx s1 s2)))

let theorem2_with_reduction_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"Theorem 2 via reduced fixed point" ~count:60
       QCheck2.Gen.(pair (1 -- 10_000) (2 -- 30))
       (fun (seed, size) ->
         let ctx = Random_tree.context ~seed ~size in
         let prng = Prng.create (seed * 19) in
         let s1 = Random_tree.fragment_set ctx prng ~max_fragments:4 in
         let s2 = Random_tree.fragment_set ctx prng ~max_fragments:4 in
         Frag_set.equal (Powerset.literal ctx s1 s2)
           (Powerset.via_fixed_points ~fixed_point:(fun ?stats ?trace ctx set ->
                 Fixed_point.with_reduction ?stats ?trace ctx set)
               ctx s1 s2)))

let test_many_literal_single () =
  (* With one operand, the m-ary powerset join degenerates to the fixed
     point of that operand. *)
  let ctx = Lazy.force fig3 in
  let s = Frag_set.of_list [ Fragment.singleton 8; Fragment.singleton 9 ] in
  Alcotest.check set_testable "single operand = fixed point"
    (Fixed_point.naive ctx s)
    (Powerset.many_literal ctx [ s ])

let test_many_literal_three_operands () =
  let ctx = Lazy.force fig3 in
  let s1 = Frag_set.of_list [ Fragment.singleton 2 ] in
  let s2 = Frag_set.of_list [ Fragment.singleton 5 ] in
  let s3 = Frag_set.of_list [ Fragment.singleton 8 ] in
  let result = Powerset.many_literal ctx [ s1; s2; s3 ] in
  (* All singletons: exactly one subset choice each, so one output. *)
  Alcotest.(check int) "one fragment" 1 (Frag_set.cardinal result);
  Alcotest.check set_testable "three-way join"
    (Frag_set.of_list [ Join.fragment_many ctx
                          [ Fragment.singleton 2; Fragment.singleton 5; Fragment.singleton 8 ] ])
    result

let many_theorem2_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"m-ary Theorem 2" ~count:40
       QCheck2.Gen.(pair (1 -- 10_000) (2 -- 25))
       (fun (seed, size) ->
         let ctx = Random_tree.context ~seed ~size in
         let prng = Prng.create (seed * 23) in
         let sets =
           List.init 3 (fun _ -> Random_tree.fragment_set ctx prng ~max_fragments:3)
         in
         Frag_set.equal
           (Powerset.many_literal ctx sets)
           (Powerset.many_via_fixed_points ctx sets)))

let test_empty_operand_list () =
  let ctx = Lazy.force fig3 in
  (match Powerset.many_literal ctx [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for []");
  match Powerset.many_via_fixed_points ctx [] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for []"

let () =
  Alcotest.run "powerset"
    [
      ( "literal",
        [
          Alcotest.test_case "small" `Quick test_literal_small;
          Alcotest.test_case "superset of pairwise (Fig 3c vs 3d)" `Quick
            test_literal_produces_more_than_pairwise;
          Alcotest.test_case "guard" `Quick test_literal_guard;
          Alcotest.test_case "many: single operand" `Quick test_many_literal_single;
          Alcotest.test_case "many: three operands" `Quick test_many_literal_three_operands;
          Alcotest.test_case "empty operand list" `Quick test_empty_operand_list;
        ] );
      ( "theorem2",
        [
          Alcotest.test_case "paper example (§4.2)" `Quick test_theorem2_paper_example;
          theorem2_prop;
          theorem2_with_reduction_prop;
          many_theorem2_prop;
        ] );
    ]
