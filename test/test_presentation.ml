(* Tests for overlap-aware answer presentation (§5). *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Presentation = Xfrag_core.Presentation
module Paper = Xfrag_workload.Paper_doc

let ctx = lazy (Paper.figure1_context ())

let paper_answers () =
  Eval.answers (Lazy.force ctx)
    (Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords)

let test_maximal_paper () =
  (* The four Table 1 answers nest inside ⟨n16,n17,n18⟩ except ⟨n16,n18⟩
     … which also nests inside it.  All are subfragments of the target,
     so exactly one maximal answer remains. *)
  let c = Lazy.force ctx in
  let maximal = Presentation.maximal (paper_answers ()) in
  Alcotest.(check int) "one maximal answer" 1 (List.length maximal);
  Alcotest.(check bool) "it is the fragment of interest" true
    (Fragment.equal (List.hd maximal) (Fragment.of_nodes c Paper.fragment_of_interest))

let test_groups_cover_all_answers () =
  let answers = paper_answers () in
  let groups = Presentation.groups answers in
  let covered =
    List.concat_map
      (fun g -> g.Presentation.representative :: g.Presentation.subsumed)
      groups
  in
  Frag_set.iter
    (fun f ->
      Alcotest.(check bool)
        (Format.asprintf "%a covered" Fragment.pp f)
        true
        (List.exists (Fragment.equal f) covered))
    answers

let test_subsumed_are_proper_subfragments () =
  let groups = Presentation.groups (paper_answers ()) in
  List.iter
    (fun g ->
      List.iter
        (fun f ->
          Alcotest.(check bool) "proper subfragment" true
            (Fragment.subfragment f g.Presentation.representative
            && not (Fragment.equal f g.Presentation.representative)))
        g.Presentation.subsumed)
    groups

let test_overlap_ratio () =
  (* 3 of the 4 paper answers are subsumed. *)
  Alcotest.(check (float 1e-9)) "3/4" 0.75 (Presentation.overlap_ratio (paper_answers ()));
  Alcotest.(check (float 1e-9)) "empty" 0.0 (Presentation.overlap_ratio (Frag_set.empty ()))

let test_no_overlap_case () =
  let c = Lazy.force ctx in
  let set = Frag_set.of_list [ Fragment.singleton 17; Fragment.singleton 81 ] in
  ignore c;
  Alcotest.(check (float 1e-9)) "disjoint answers" 0.0 (Presentation.overlap_ratio set);
  Alcotest.(check int) "both maximal" 2 (List.length (Presentation.maximal set))

let test_policies () =
  let answers = paper_answers () in
  let all = Presentation.select Presentation.All answers in
  Alcotest.(check int) "All: one group per answer" 4 (List.length all);
  List.iter
    (fun g -> Alcotest.(check int) "All: no nesting" 0 (List.length g.Presentation.subsumed))
    all;
  let hidden = Presentation.select Presentation.Hide_subsumed answers in
  Alcotest.(check int) "Hide: only maximal" 1 (List.length hidden);
  Alcotest.(check int) "Hide: no sublists" 0
    (List.length (List.hd hidden).Presentation.subsumed);
  let nested = Presentation.select Presentation.Nest answers in
  Alcotest.(check int) "Nest: one group" 1 (List.length nested);
  Alcotest.(check int) "Nest: three subsumed" 3
    (List.length (List.hd nested).Presentation.subsumed)

let test_pp_renders () =
  let c = Lazy.force ctx in
  let rendered =
    Format.asprintf "%a" (Presentation.pp c)
      (Presentation.select Presentation.Nest (paper_answers ()))
  in
  Alcotest.(check bool) "mentions n16" true
    (Astring.String.is_infix ~affix:"n16" rendered);
  Alcotest.(check bool) "has nesting marker" true
    (Astring.String.is_infix ~affix:"\xE2\x86\xB3" rendered)

let test_shared_subfragment_in_both_groups () =
  (* An answer subsumed by two different maximal answers appears under
     both. *)
  let c = Lazy.force ctx in
  let a = Fragment.of_nodes c [ 16; 17 ] in
  let b = Fragment.of_nodes c [ 16; 18 ] in
  let shared = Fragment.singleton 16 in
  let groups = Presentation.groups (Frag_set.of_list [ a; b; shared ]) in
  Alcotest.(check int) "two maximal groups" 2 (List.length groups);
  List.iter
    (fun g ->
      Alcotest.(check bool) "shared under each" true
        (List.exists (Fragment.equal shared) g.Presentation.subsumed))
    groups

(* --- snippets --- *)

let test_snippet_highlights () =
  let c = Lazy.force ctx in
  let f = Fragment.singleton 17 in
  let s = Presentation.snippet c ~keywords:[ "xquery"; "optimization" ] f in
  Alcotest.(check bool) "highlights xquery" true
    (Astring.String.is_infix ~affix:"\xC2\xABXQuery\xC2\xBB" s);
  Alcotest.(check bool) "has ellipsis or words" true (String.length s > 10)

let test_snippet_multi_node () =
  let c = Lazy.force ctx in
  let f = Fragment.of_nodes c [ 16; 17; 18 ] in
  let s = Presentation.snippet c ~keywords:[ "xquery" ] f in
  (* n17 and n18 both contain XQuery; two excerpts joined. *)
  Alcotest.(check bool) "two excerpts" true
    (Astring.String.is_infix ~affix:" \xE2\x80\xA6 " s)

let test_snippet_no_match_falls_back () =
  let c = Lazy.force ctx in
  let f = Fragment.singleton 15 in
  (* n15's text is a title with no query keyword. *)
  let s = Presentation.snippet c ~keywords:[ "zebra" ] f in
  Alcotest.(check bool) "non-empty fallback" true (String.length s > 0);
  Alcotest.(check bool) "no highlight marks" false
    (Astring.String.is_infix ~affix:"\xC2\xAB" s)

let test_snippet_window () =
  let c = Lazy.force ctx in
  let f = Fragment.singleton 17 in
  let tight = Presentation.snippet ~window:1 c ~keywords:[ "optimization" ] f in
  let wide = Presentation.snippet ~window:10 c ~keywords:[ "optimization" ] f in
  Alcotest.(check bool) "window bounds length" true
    (String.length tight < String.length wide)

let () =
  Alcotest.run "presentation"
    [
      ( "groups",
        [
          Alcotest.test_case "maximal on paper answers" `Quick test_maximal_paper;
          Alcotest.test_case "groups cover all" `Quick test_groups_cover_all_answers;
          Alcotest.test_case "subsumed are proper" `Quick test_subsumed_are_proper_subfragments;
          Alcotest.test_case "shared subfragment" `Quick test_shared_subfragment_in_both_groups;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "overlap ratio" `Quick test_overlap_ratio;
          Alcotest.test_case "no overlap" `Quick test_no_overlap_case;
        ] );
      ( "policies",
        [
          Alcotest.test_case "All/Hide/Nest" `Quick test_policies;
          Alcotest.test_case "pp" `Quick test_pp_renders;
        ] );
      ( "snippets",
        [
          Alcotest.test_case "highlights" `Quick test_snippet_highlights;
          Alcotest.test_case "multi node" `Quick test_snippet_multi_node;
          Alcotest.test_case "fallback" `Quick test_snippet_no_match_falls_back;
          Alcotest.test_case "window" `Quick test_snippet_window;
        ] );
    ]
