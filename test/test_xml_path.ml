(* Tests for the XPath-lite selector. *)

module Dom = Xfrag_xml.Xml_dom
module Path = Xfrag_xml.Xml_path

let doc =
  lazy
    (Xfrag_xml.Xml_parser.parse_string
       {|<article id="a1">
  <sec id="s1"><title>one</title><par>p1</par><par>p2</par></sec>
  <sec id="s2"><title>two</title><sub><par>p3</par></sub></sec>
  <appendix><par>p4</par></appendix>
</article>|})

let names path =
  match Path.select (Lazy.force doc) path with
  | Ok elems -> List.map Dom.name elems
  | Error e -> Alcotest.failf "%s: %s" path e

let texts path =
  match Path.select (Lazy.force doc) path with
  | Ok elems -> List.map Dom.text_content elems
  | Error e -> Alcotest.failf "%s: %s" path e

let count path =
  match Path.matches_count (Lazy.force doc) path with
  | Ok n -> n
  | Error e -> Alcotest.failf "%s: %s" path e

let test_root_step () =
  Alcotest.(check (list string)) "/article" [ "article" ] (names "/article");
  Alcotest.(check (list string)) "/sec (root is not sec)" [] (names "/sec")

let test_child_steps () =
  Alcotest.(check int) "two secs" 2 (count "/article/sec");
  Alcotest.(check (list string)) "titles" [ "one"; "two" ] (texts "/article/sec/title")

let test_descendant () =
  Alcotest.(check int) "all pars" 4 (count "//par");
  Alcotest.(check int) "pars under sec" 3 (count "/article/sec//par");
  Alcotest.(check int) "mid-path descendant" 4 (count "/article//par")

let test_wildcard () =
  Alcotest.(check int) "root children" 3 (count "/article/*");
  (* sec#1 contributes p1, p2; appendix contributes p4; sec#2's par is
     deeper than a grandchild. *)
  Alcotest.(check int) "any grandchild par" 3 (count "/article/*/par")

let test_positional () =
  Alcotest.(check (list string)) "second par" [ "p2" ] (texts "//par[2]");
  Alcotest.(check (list string)) "first sec title" [ "one" ] (texts "/article/sec[1]/title");
  Alcotest.(check int) "out of range" 0 (count "/article/sec[5]")

let test_attribute_predicates () =
  Alcotest.(check int) "sec by id" 1 (count "/article/sec[@id='s2']");
  Alcotest.(check (list string)) "its title" [ "two" ] (texts "/article/sec[@id='s2']/title");
  Alcotest.(check int) "attribute presence" 2 (count "//sec[@id]");
  Alcotest.(check int) "no such value" 0 (count "//sec[@id='zzz']")

let test_combined_predicates () =
  (* presence + position: second element with an id attribute *)
  Alcotest.(check int) "sec with id, positional" 1 (count "//sec[@id][2]")

let test_bare_name_selects_anywhere () =
  Alcotest.(check int) "bare par" 4 (count "par")

let test_no_duplicates () =
  (* //sub//par and equivalents must not duplicate elements reached
     through multiple descendant expansions. *)
  Alcotest.(check int) "dedup" 4 (count "//article//par")

let test_select_first () =
  match Path.select_first (Lazy.force doc) "//par" with
  | Ok (Some e) -> Alcotest.(check string) "p1" "p1" (Dom.text_content e)
  | Ok None -> Alcotest.fail "expected a match"
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  List.iter
    (fun path ->
      match Path.parse path with
      | Ok _ -> Alcotest.failf "%s: expected parse error" path
      | Error _ -> ())
    [ ""; "/"; "//"; "/a[0]"; "/a[b"; "/a[@x=unquoted]"; "/a[]"; "/a[1][2]" ]

let test_parse_shapes () =
  match Path.parse "//sec[@id='s1']/par[2]" with
  | Ok [ s1; s2 ] ->
      Alcotest.(check bool) "descendant first" true (s1.Path.axis = `Descendant);
      Alcotest.(check (option string)) "name" (Some "sec") s1.Path.name;
      Alcotest.(check bool) "attr" true (s1.Path.attribute = Some ("id", Some "s1"));
      Alcotest.(check (option int)) "index" (Some 2) s2.Path.index
  | Ok _ -> Alcotest.fail "expected two steps"
  | Error e -> Alcotest.fail e

let test_on_paper_document () =
  let doc =
    Xfrag_xml.Xml_parser.parse_string (Xfrag_workload.Paper_doc.figure1_xml ())
  in
  (match Path.matches_count doc "//par" with
  | Ok n -> Alcotest.(check int) "66 paragraphs" 66 n
  | Error e -> Alcotest.fail e);
  match Path.matches_count doc "/article/section/subsection/subsubsection/par" with
  | Ok n -> Alcotest.(check int) "n17 and n18" 2 n
  | Error e -> Alcotest.fail e

let () =
  Alcotest.run "xml_path"
    [
      ( "select",
        [
          Alcotest.test_case "root step" `Quick test_root_step;
          Alcotest.test_case "child steps" `Quick test_child_steps;
          Alcotest.test_case "descendant" `Quick test_descendant;
          Alcotest.test_case "wildcard" `Quick test_wildcard;
          Alcotest.test_case "positional" `Quick test_positional;
          Alcotest.test_case "attribute predicates" `Quick test_attribute_predicates;
          Alcotest.test_case "combined predicates" `Quick test_combined_predicates;
          Alcotest.test_case "bare name" `Quick test_bare_name_selects_anywhere;
          Alcotest.test_case "no duplicates" `Quick test_no_duplicates;
          Alcotest.test_case "select_first" `Quick test_select_first;
        ] );
      ( "parse",
        [
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "shapes" `Quick test_parse_shapes;
        ] );
      ( "paper",
        [ Alcotest.test_case "figure 1 document" `Quick test_on_paper_document ] );
    ]
