(* Exact reproduction of the paper's worked example (§4, Table 1,
   Figure 8) on the Figure 1 document. *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Join = Xfrag_core.Join
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Selection = Xfrag_core.Selection
module Paper = Xfrag_workload.Paper_doc
module Doctree = Xfrag_doctree.Doctree
module Int_sorted = Xfrag_util.Int_sorted

let ctx = lazy (Paper.figure1_context ())

let fragment_testable = Alcotest.testable Fragment.pp Fragment.equal

(* --- document sanity --- *)

let test_document_size () =
  Alcotest.(check int) "82 nodes (n0..n81)" 82 (Doctree.size (Paper.figure1 ()))

let test_prescribed_parent_chains () =
  let t = Paper.figure1 () in
  let chain n = Doctree.path_to_ancestor t n 0 in
  Alcotest.(check (list int)) "n17 chain" [ 17; 16; 14; 1; 0 ] (chain 17);
  Alcotest.(check (list int)) "n18 chain" [ 18; 16; 14; 1; 0 ] (chain 18);
  Alcotest.(check (list int)) "n81 chain" [ 81; 80; 79; 0 ] (chain 81)

let test_keyword_postings_match_paper () =
  let c = Lazy.force ctx in
  let nodes k = Int_sorted.to_list (Xfrag_doctree.Inverted_index.lookup c.Context.index k) in
  Alcotest.(check (list int)) "F1 = {n17, n18}" [ 17; 18 ] (nodes "xquery");
  Alcotest.(check (list int)) "F2 = {n16, n17, n81}" [ 16; 17; 81 ] (nodes "optimization")

let test_figure1_xml_roundtrip () =
  let original = Paper.figure1 () in
  let reparsed = Doctree.of_xml (Xfrag_xml.Xml_parser.parse_string (Paper.figure1_xml ())) in
  Alcotest.(check int) "same size" (Doctree.size original) (Doctree.size reparsed);
  for n = 0 to Doctree.size original - 1 do
    Alcotest.(check string) (Printf.sprintf "label n%d" n) (Doctree.label original n)
      (Doctree.label reparsed n);
    Alcotest.(check (option int)) (Printf.sprintf "parent n%d" n)
      (Doctree.parent original n) (Doctree.parent reparsed n)
  done;
  (* Keyword postings survive the round trip. *)
  let c2 = Context.create reparsed in
  Alcotest.(check (list int)) "xquery postings" [ 17; 18 ]
    (Int_sorted.to_list (Xfrag_doctree.Inverted_index.lookup c2.Context.index "xquery"))

(* --- Table 1, row by row --- *)

let test_table1_joins () =
  let c = Lazy.force ctx in
  List.iteri
    (fun i (inputs, expected) ->
      let fragments = List.map (fun ns -> Fragment.of_nodes c ns) inputs in
      Alcotest.check fragment_testable
        (Printf.sprintf "row %d" (i + 1))
        (Fragment.of_nodes c expected)
        (Join.fragment_many c fragments))
    Paper.table1_rows

let test_table1_rows_1_to_7_unique () =
  let c = Lazy.force ctx in
  let outputs =
    List.map (fun (_, expected) -> Fragment.of_nodes c expected) Paper.table1_rows
  in
  let first7 = List.filteri (fun i _ -> i < 7) outputs in
  let last4 = List.filteri (fun i _ -> i >= 7) outputs in
  Alcotest.(check int) "first seven distinct" 7
    (Frag_set.cardinal (Frag_set.of_list first7));
  (* Rows 8–11 are duplicates of earlier rows. *)
  List.iter
    (fun dup ->
      Alcotest.(check bool) "duplicate of an earlier row" true
        (List.exists (Fragment.equal dup) first7))
    last4

let test_table1_irrelevant_marking () =
  (* Rows marked irrelevant are exactly those whose output violates
     size ≤ 3. *)
  let c = Lazy.force ctx in
  List.iteri
    (fun i (_, expected) ->
      let row = i + 1 in
      let f = Fragment.of_nodes c expected in
      let marked = List.mem row Paper.table1_irrelevant_rows in
      Alcotest.(check bool)
        (Printf.sprintf "row %d" row)
        marked
        (not (Filter.evaluate c (Filter.Size_at_most 3) f)))
    Paper.table1_rows

let test_powerset_generates_exactly_table1_outputs () =
  let c = Lazy.force ctx in
  let s1 = Selection.keyword c "xquery" in
  let s2 = Selection.keyword c "optimization" in
  let generated = Xfrag_core.Powerset.literal c s1 s2 in
  let expected =
    Frag_set.of_list
      (List.map (fun (_, out) -> Fragment.of_nodes c out) Paper.table1_rows)
  in
  Alcotest.(check bool) "generated = Table 1 outputs" true
    (Frag_set.equal generated expected);
  Alcotest.(check int) "7 unique" 7 (Frag_set.cardinal generated)

(* --- the final answer (§4.1) --- *)

let test_final_answer_four_fragments () =
  let c = Lazy.force ctx in
  let q = Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords in
  let answers = Eval.answers c q in
  Alcotest.(check int) "four fragments" 4 (Frag_set.cardinal answers);
  List.iter
    (fun ns ->
      Alcotest.(check bool)
        (Format.asprintf "%a" Fragment.pp (Fragment.of_nodes c ns))
        true
        (Frag_set.mem (Fragment.of_nodes c ns) answers))
    [ [ 16; 17; 18 ]; [ 16; 17 ]; [ 16; 18 ]; [ 17 ] ]

(* --- Figure 8 --- *)

let test_figure8_target_fragment () =
  let c = Lazy.force ctx in
  let target = Fragment.of_nodes c Paper.fragment_of_interest in
  Alcotest.(check int) "root n16" 16 (Fragment.root target);
  let q = Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords in
  Alcotest.(check bool) "target retrieved" true
    (Frag_set.mem target (Eval.answers c q))

let test_figure8_irrelevant_fragment () =
  (* Without the filter the 9-node fragment of Figure 8(c) IS generated;
     the filter is what excludes it. *)
  let c = Lazy.force ctx in
  let irrelevant = Fragment.of_nodes c [ 0; 1; 14; 16; 17; 18; 79; 80; 81 ] in
  let unfiltered = Eval.answers c (Query.make Paper.query_keywords) in
  let filtered =
    Eval.answers c (Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords)
  in
  Alcotest.(check bool) "generated without filter" true (Frag_set.mem irrelevant unfiltered);
  Alcotest.(check bool) "excluded with filter" false (Frag_set.mem irrelevant filtered)

(* --- anti-monotonic pruning kills f16 ⋈ f81 early (§4.3) --- *)

let test_f16_join_f81_pruned_early () =
  let c = Lazy.force ctx in
  let f16 = Fragment.singleton 16 and f81 = Fragment.singleton 81 in
  let joined = Join.fragment c f16 f81 in
  Alcotest.check fragment_testable "f16 ⋈ f81 (7 nodes)"
    (Fragment.of_nodes c [ 0; 1; 14; 16; 79; 80; 81 ])
    joined;
  Alcotest.(check bool) "violates size ≤ 3" false
    (Filter.evaluate c (Filter.Size_at_most 3) joined)
  (* …so pushdown never extends it — covered by the op-stat assertions in
     test_eval. *)

let () =
  Alcotest.run "paper_example"
    [
      ( "document",
        [
          Alcotest.test_case "82 nodes" `Quick test_document_size;
          Alcotest.test_case "parent chains" `Quick test_prescribed_parent_chains;
          Alcotest.test_case "keyword postings" `Quick test_keyword_postings_match_paper;
          Alcotest.test_case "XML round trip" `Quick test_figure1_xml_roundtrip;
        ] );
      ( "table1",
        [
          Alcotest.test_case "all 11 joins" `Quick test_table1_joins;
          Alcotest.test_case "rows 1-7 unique, 8-11 duplicates" `Quick
            test_table1_rows_1_to_7_unique;
          Alcotest.test_case "irrelevant marking = size>3" `Quick test_table1_irrelevant_marking;
          Alcotest.test_case "powerset = Table 1 outputs" `Quick
            test_powerset_generates_exactly_table1_outputs;
        ] );
      ( "answer",
        [
          Alcotest.test_case "final four fragments" `Quick test_final_answer_four_fragments;
          Alcotest.test_case "Figure 8(b) target" `Quick test_figure8_target_fragment;
          Alcotest.test_case "Figure 8(c) irrelevant" `Quick test_figure8_irrelevant_fragment;
          Alcotest.test_case "f16 ⋈ f81 prunable" `Quick test_f16_join_f81_pruned_early;
        ] );
    ]
