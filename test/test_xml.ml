(* Tests for the XML substrate: lexing/parsing, entities, errors,
   serialization round trips. *)

module Dom = Xfrag_xml.Xml_dom
module Parser = Xfrag_xml.Xml_parser
module Printer = Xfrag_xml.Xml_printer
module Entities = Xfrag_xml.Xml_entities
module Error = Xfrag_xml.Xml_error

let parse s = Parser.parse_string s

let root s = (parse s).Dom.root

let check_parse_error name input =
  match Parser.parse_string_result input with
  | Ok _ -> Alcotest.failf "%s: expected a parse error for %S" name input
  | Error _ -> ()

(* --- basic parsing --- *)

let test_minimal () =
  let r = root "<a/>" in
  Alcotest.(check string) "name" "a" r.Dom.name;
  Alcotest.(check int) "no children" 0 (List.length r.Dom.children)

let test_nested () =
  let r = root "<a><b><c/></b><d/></a>" in
  Alcotest.(check int) "two children" 2 (List.length (Dom.child_elements r));
  let names = List.map Dom.name (Dom.child_elements r) in
  Alcotest.(check (list string)) "names" [ "b"; "d" ] names

let test_text_content () =
  let r = root "<a>hello <b>brave</b> world</a>" in
  Alcotest.(check string) "all text" "hello brave world" (Dom.text_content r);
  Alcotest.(check string) "immediate only" "hello  world" (Dom.immediate_text r)

let test_attributes () =
  let r = root {|<a x="1" y='two'/>|} in
  Alcotest.(check (option string)) "x" (Some "1") (Dom.attribute r "x");
  Alcotest.(check (option string)) "y" (Some "two") (Dom.attribute r "y");
  Alcotest.(check (option string)) "absent" None (Dom.attribute r "z")

let test_attribute_whitespace_normalized () =
  let r = root "<a x=\"one\ttwo\nthree\"/>" in
  Alcotest.(check (option string)) "normalized" (Some "one two three")
    (Dom.attribute r "x")

let test_xml_decl_and_doctype () =
  let r = root "<?xml version=\"1.0\"?><!DOCTYPE a [<!ELEMENT a ANY>]><a/>" in
  Alcotest.(check string) "name" "a" r.Dom.name

let test_prolog_pi () =
  let doc = parse "<?xml version=\"1.0\"?><?style sheet?><a/>" in
  Alcotest.(check int) "one prolog pi" 1 (List.length doc.Dom.prolog_pis)

let test_comments_dropped_by_default () =
  let r = root "<a><!-- note --><b/></a>" in
  Alcotest.(check int) "comment dropped" 1 (List.length r.Dom.children)

let test_comments_kept_with_option () =
  let doc =
    Parser.parse_string
      ~options:{ Parser.keep_comments = true; keep_pis = false }
      "<a><!-- note --></a>"
  in
  match doc.Dom.root.Dom.children with
  | [ Dom.Comment c ] -> Alcotest.(check string) "comment text" " note " c
  | _ -> Alcotest.fail "expected a single comment child"

let test_cdata () =
  let r = root "<a><![CDATA[<not> &parsed;]]></a>" in
  Alcotest.(check string) "cdata text" "<not> &parsed;" (Dom.text_content r)

let test_whitespace_between_elements_preserved_as_text () =
  let r = root "<a>\n  <b/>\n</a>" in
  (* Text nodes exist; immediate_text keeps them verbatim. *)
  Alcotest.(check string) "ws" "\n  \n" (Dom.immediate_text r)

let test_empty_element_variants () =
  let r1 = root "<a></a>" and r2 = root "<a/>" in
  Alcotest.(check bool) "equal" true (Dom.equal_node (Dom.Element r1) (Dom.Element r2))

let test_utf8_passthrough () =
  let r = root "<a>caf\xC3\xA9 \xE2\x9F\xA8x\xE2\x9F\xA9</a>" in
  Alcotest.(check string) "utf8" "caf\xC3\xA9 \xE2\x9F\xA8x\xE2\x9F\xA9" (Dom.text_content r)

(* --- entities --- *)

let test_predefined_entities () =
  let r = root "<a>&amp;&lt;&gt;&apos;&quot;</a>" in
  Alcotest.(check string) "decoded" "&<>'\"" (Dom.text_content r)

let test_char_refs () =
  let r = root "<a>&#65;&#x42;&#x1F600;</a>" in
  Alcotest.(check string) "decoded" "AB\xF0\x9F\x98\x80" (Dom.text_content r)

let test_entities_in_attributes () =
  let r = root {|<a x="&lt;&amp;&#48;"/>|} in
  Alcotest.(check (option string)) "decoded" (Some "<&0") (Dom.attribute r "x")

let test_entity_errors () =
  check_parse_error "unknown entity" "<a>&nope;</a>";
  check_parse_error "unterminated entity" "<a>&amp</a>";
  check_parse_error "bad char ref" "<a>&#xZZ;</a>";
  check_parse_error "surrogate char ref" "<a>&#xD800;</a>"

let test_utf8_of_code_point () =
  Alcotest.(check (option string)) "ascii" (Some "A") (Entities.utf8_of_code_point 65);
  Alcotest.(check (option string)) "two-byte" (Some "\xC2\xA9") (Entities.utf8_of_code_point 0xA9);
  Alcotest.(check (option string)) "three-byte" (Some "\xE2\x82\xAC") (Entities.utf8_of_code_point 0x20AC);
  Alcotest.(check (option string)) "out of range" None (Entities.utf8_of_code_point 0x110000);
  Alcotest.(check (option string)) "surrogate" None (Entities.utf8_of_code_point 0xD800)

(* --- well-formedness errors --- *)

let test_malformed () =
  check_parse_error "mismatched tags" "<a><b></a></b>";
  check_parse_error "unclosed" "<a><b></b>";
  check_parse_error "two roots" "<a/><b/>";
  check_parse_error "no root" "   ";
  check_parse_error "junk after root" "<a/>text";
  check_parse_error "duplicate attribute" {|<a x="1" x="2"/>|};
  check_parse_error "lt in attribute" {|<a x="<"/>|};
  check_parse_error "bad name start" "<1a/>";
  check_parse_error "double dash in comment" "<a><!-- -- --></a>";
  check_parse_error "unterminated comment" "<a><!-- oops</a>";
  check_parse_error "unterminated cdata" "<a><![CDATA[oops</a>"

let test_error_position () =
  match Parser.parse_string_result "<a>\n<b></c>\n</a>" with
  | Ok _ -> Alcotest.fail "expected error"
  | Error e ->
      Alcotest.(check int) "line" 2 e.Error.position.Error.line

(* --- serialization --- *)

let test_escape_text () =
  Alcotest.(check string) "escaped" "a&amp;b&lt;c&gt;d" (Entities.escape_text "a&b<c>d")

let test_escape_attribute () =
  Alcotest.(check string) "escaped" "&quot;&apos;&amp;"
    (Entities.escape_attribute "\"'&")

let test_roundtrip_simple () =
  let original = {|<a x="1"><b>text &amp; more</b><c/></a>|} in
  let doc = parse original in
  let printed = Printer.to_string ~decl:false doc in
  let doc2 = parse printed in
  Alcotest.(check bool) "round trip" true
    (Dom.equal_node (Dom.Element doc.Dom.root) (Dom.Element doc2.Dom.root))

let roundtrip_prop =
  (* Random small DOMs must survive print → parse unchanged. *)
  let open QCheck2.Gen in
  let name_gen = map (fun i -> Printf.sprintf "el%d" i) (0 -- 5) in
  let text_gen =
    map
      (fun i -> [ "plain"; "with & amp"; "angle < bracket"; "quote \" mix"; "caf\xC3\xA9" ]
                |> fun l -> List.nth l (i mod List.length l))
      (0 -- 4)
  in
  let rec node_gen depth =
    if depth = 0 then map Dom.text text_gen
    else
      frequency
        [
          (2, map Dom.text text_gen);
          ( 3,
            map2
              (fun name kids -> Dom.element name kids)
              name_gen
              (list_size (0 -- 3) (node_gen (depth - 1))) );
        ]
  in
  let doc_gen =
    map
      (fun kids -> { Dom.root = { Dom.name = "root"; attributes = []; children = kids };
                     prolog_pis = [] })
      (list_size (0 -- 4) (node_gen 3))
  in
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"print/parse round trip" ~count:200 doc_gen (fun doc ->
         let printed = Printer.to_string ~decl:false doc in
         match Parser.parse_string_result printed with
         | Error _ -> false
         | Ok doc2 ->
             (* Adjacent text nodes merge on reparse; compare text content
                and element structure instead of raw node lists. *)
             let rec skeleton (e : Dom.element) =
               Printf.sprintf "%s[%s](%s)" e.Dom.name (Dom.text_content e)
                 (String.concat ";" (List.map skeleton (Dom.child_elements e)))
             in
             skeleton doc.Dom.root = skeleton doc2.Dom.root))

let test_pretty_print_contains_structure () =
  let doc = parse "<a><b>inner</b></a>" in
  let pretty = Printer.to_string_pretty doc in
  Alcotest.(check bool) "has indented b" true
    (String.length pretty > 0
    &&
    let lines = String.split_on_char '\n' pretty in
    List.exists (fun l -> String.trim l = "<b>inner</b>") lines)

let test_parse_file () =
  let path = Filename.temp_file "xfrag_test" ".xml" in
  let oc = open_out path in
  output_string oc "<doc><p>from file</p></doc>";
  close_out oc;
  let doc = Parser.parse_file path in
  Sys.remove path;
  Alcotest.(check string) "root" "doc" doc.Dom.root.Dom.name

let () =
  Alcotest.run "xml"
    [
      ( "parsing",
        [
          Alcotest.test_case "minimal" `Quick test_minimal;
          Alcotest.test_case "nested" `Quick test_nested;
          Alcotest.test_case "text content" `Quick test_text_content;
          Alcotest.test_case "attributes" `Quick test_attributes;
          Alcotest.test_case "attribute whitespace" `Quick test_attribute_whitespace_normalized;
          Alcotest.test_case "xml decl + doctype" `Quick test_xml_decl_and_doctype;
          Alcotest.test_case "prolog PI" `Quick test_prolog_pi;
          Alcotest.test_case "comments dropped" `Quick test_comments_dropped_by_default;
          Alcotest.test_case "comments kept" `Quick test_comments_kept_with_option;
          Alcotest.test_case "cdata" `Quick test_cdata;
          Alcotest.test_case "whitespace text" `Quick test_whitespace_between_elements_preserved_as_text;
          Alcotest.test_case "empty element forms" `Quick test_empty_element_variants;
          Alcotest.test_case "utf8 passthrough" `Quick test_utf8_passthrough;
          Alcotest.test_case "parse file" `Quick test_parse_file;
        ] );
      ( "entities",
        [
          Alcotest.test_case "predefined" `Quick test_predefined_entities;
          Alcotest.test_case "char refs" `Quick test_char_refs;
          Alcotest.test_case "in attributes" `Quick test_entities_in_attributes;
          Alcotest.test_case "errors" `Quick test_entity_errors;
          Alcotest.test_case "utf8 encoding" `Quick test_utf8_of_code_point;
        ] );
      ( "errors",
        [
          Alcotest.test_case "malformed inputs" `Quick test_malformed;
          Alcotest.test_case "error position" `Quick test_error_position;
        ] );
      ( "serialization",
        [
          Alcotest.test_case "escape text" `Quick test_escape_text;
          Alcotest.test_case "escape attribute" `Quick test_escape_attribute;
          Alcotest.test_case "round trip" `Quick test_roundtrip_simple;
          roundtrip_prop;
          Alcotest.test_case "pretty print" `Quick test_pretty_print_contains_structure;
        ] );
    ]
