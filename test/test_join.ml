(* Tests for fragment join (Definition 4) and pairwise fragment join
   (Definition 5), including the paper's Figure 3 examples and the
   algebraic laws, both on fixed examples and as qcheck properties. *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Join = Xfrag_core.Join
module Op_stats = Xfrag_core.Op_stats
module Paper = Xfrag_workload.Paper_doc
module Random_tree = Xfrag_workload.Random_tree
module Prng = Xfrag_util.Prng

let fragment_testable =
  Alcotest.testable Fragment.pp Fragment.equal

let set_testable = Alcotest.testable Frag_set.pp Frag_set.equal

let fig3 = lazy (Paper.figure3_context ())

let frag ctx ns = Fragment.of_nodes ctx ns

(* --- Figure 3(b): the paper's worked join example --- *)

let test_figure3_join () =
  let ctx = Lazy.force fig3 in
  let f1 = frag ctx [ 4; 5 ] and f2 = frag ctx [ 7; 9 ] in
  Alcotest.check fragment_testable "⟨n4,n5⟩ ⋈ ⟨n7,n9⟩"
    (frag ctx [ 3; 4; 5; 6; 7; 9 ])
    (Join.fragment ctx f1 f2)

let test_join_single_nodes () =
  let ctx = Lazy.force fig3 in
  Alcotest.check fragment_testable "siblings join through parent"
    (frag ctx [ 7; 8; 9 ])
    (Join.fragment ctx (Fragment.singleton 8) (Fragment.singleton 9));
  Alcotest.check fragment_testable "cousins join through root"
    (frag ctx [ 0; 1; 2; 3; 4; 5 ])
    (Join.fragment ctx (frag ctx [ 1; 2 ]) (frag ctx [ 4; 5 ]))

let test_join_ancestor_descendant () =
  let ctx = Lazy.force fig3 in
  Alcotest.check fragment_testable "ancestor/descendant"
    (frag ctx [ 3; 6; 7 ])
    (Join.fragment ctx (Fragment.singleton 3) (Fragment.singleton 7))

let test_join_overlapping () =
  let ctx = Lazy.force fig3 in
  Alcotest.check fragment_testable "overlapping fragments"
    (frag ctx [ 3; 4; 5; 6 ])
    (Join.fragment ctx (frag ctx [ 3; 4; 5 ]) (frag ctx [ 3; 6 ]))

let test_fragment_many () =
  let ctx = Lazy.force fig3 in
  Alcotest.check fragment_testable "three-way join"
    (frag ctx [ 0; 1; 2; 3; 6; 7; 9 ])
    (Join.fragment_many ctx
       [ Fragment.singleton 2; Fragment.singleton 9; Fragment.singleton 6 ]);
  Alcotest.check_raises "empty list" (Invalid_argument "Join.fragment_many: empty list")
    (fun () -> ignore (Join.fragment_many ctx []))

(* --- Figure 3(c): pairwise fragment join --- *)

let test_figure3_pairwise () =
  let ctx = Lazy.force fig3 in
  let f11 = frag ctx [ 4; 5 ] and f12 = Fragment.singleton 2 in
  let f21 = frag ctx [ 7; 9 ] and f22 = Fragment.singleton 8 in
  let s1 = Frag_set.of_list [ f11; f12 ] and s2 = Frag_set.of_list [ f21; f22 ] in
  let expected =
    Frag_set.of_list
      [
        Join.fragment ctx f11 f21;
        Join.fragment ctx f11 f22;
        Join.fragment ctx f12 f21;
        Join.fragment ctx f12 f22;
      ]
  in
  Alcotest.check set_testable "pairwise = all pairs" expected (Join.pairwise ctx s1 s2)

let test_pairwise_with_empty () =
  let ctx = Lazy.force fig3 in
  let s = Frag_set.of_list [ Fragment.singleton 2 ] in
  Alcotest.(check int) "empty left" 0
    (Frag_set.cardinal (Join.pairwise ctx (Frag_set.empty ()) s));
  Alcotest.(check int) "empty right" 0
    (Frag_set.cardinal (Join.pairwise ctx s (Frag_set.empty ())))

let test_pairwise_dedups () =
  let ctx = Lazy.force fig3 in
  (* n8 ⋈ n9 = n9 ⋈ n8 = ⟨7,8,9⟩; both pairs collapse to one output. *)
  let s = Frag_set.of_list [ Fragment.singleton 8; Fragment.singleton 9 ] in
  let result = Join.pairwise ctx s s in
  Alcotest.(check int) "three distinct outputs" 3 (Frag_set.cardinal result)
  (* ⟨8⟩, ⟨9⟩ (self-joins) and ⟨7,8,9⟩ *)

let test_pairwise_filtered_prunes () =
  let ctx = Lazy.force fig3 in
  let s = Frag_set.of_list [ Fragment.singleton 2; Fragment.singleton 8 ] in
  let stats = Op_stats.create () in
  let result =
    Join.pairwise_filtered ~stats ctx ~keep:(fun f -> Fragment.size f <= 2) s s
  in
  (* Self-joins survive (size 1); the cross join n2 ⋈ n8 spans the whole
     root path (size 6) and is pruned. *)
  Alcotest.(check int) "kept" 2 (Frag_set.cardinal result);
  Alcotest.(check bool) "pruned counted" true (stats.Op_stats.pruned >= 1)

let test_stats_counting () =
  let ctx = Lazy.force fig3 in
  let stats = Op_stats.create () in
  let s = Frag_set.of_list [ Fragment.singleton 8; Fragment.singleton 9 ] in
  ignore (Join.pairwise ~stats ctx s s);
  Alcotest.(check int) "4 joins" 4 stats.Op_stats.fragment_joins;
  Alcotest.(check int) "4 candidates" 4 stats.Op_stats.candidates;
  Alcotest.(check int) "1 duplicate" 1 stats.Op_stats.duplicates

(* --- algebraic laws (Definition 4) as qcheck properties --- *)

let law name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:150 QCheck2.Gen.(pair (1 -- 10_000) (2 -- 60)) f)

let with_random_fragments (seed, size) k =
  let ctx = Random_tree.context ~seed ~size in
  let prng = Prng.create (seed * 31) in
  let f1 = Random_tree.fragment ctx prng in
  let f2 = Random_tree.fragment ctx prng in
  let f3 = Random_tree.fragment ctx prng in
  k ctx f1 f2 f3

let idempotency =
  law "idempotency: f ⋈ f = f" (fun input ->
      with_random_fragments input (fun ctx f1 _ _ ->
          Fragment.equal (Join.fragment ctx f1 f1) f1))

let commutativity =
  law "commutativity: f1 ⋈ f2 = f2 ⋈ f1" (fun input ->
      with_random_fragments input (fun ctx f1 f2 _ ->
          Fragment.equal (Join.fragment ctx f1 f2) (Join.fragment ctx f2 f1)))

let associativity =
  law "associativity: (f1 ⋈ f2) ⋈ f3 = f1 ⋈ (f2 ⋈ f3)" (fun input ->
      with_random_fragments input (fun ctx f1 f2 f3 ->
          Fragment.equal
            (Join.fragment ctx (Join.fragment ctx f1 f2) f3)
            (Join.fragment ctx f1 (Join.fragment ctx f2 f3))))

let absorption =
  law "absorption: f2 ⊆ f1 ⟹ f1 ⋈ f2 = f1" (fun input ->
      with_random_fragments input (fun ctx f1 f2 _ ->
          let joined = Join.fragment ctx f1 f2 in
          (* f2 ⊆ joined always; then joined ⋈ f2 = joined is absorption. *)
          Fragment.equal (Join.fragment ctx joined f2) joined))

let join_contains_inputs =
  law "lemma 1: f ⊆ f ⋈ f'" (fun input ->
      with_random_fragments input (fun ctx f1 f2 _ ->
          let j = Join.fragment ctx f1 f2 in
          Fragment.subfragment f1 j && Fragment.subfragment f2 j))

let join_is_minimal =
  law "minimality: no proper connected subset contains both inputs" (fun input ->
      with_random_fragments input (fun ctx f1 f2 _ ->
          let j = Join.fragment ctx f1 f2 in
          (* Removing any single non-input node from j either disconnects
             it or drops an input: j has no extraneous nodes. *)
          let inputs =
            Xfrag_util.Int_sorted.union (Fragment.nodes f1) (Fragment.nodes f2)
          in
          Xfrag_util.Int_sorted.for_all
            (fun n ->
              Xfrag_util.Int_sorted.mem n inputs
              ||
              let without = Xfrag_util.Int_sorted.remove n (Fragment.nodes j) in
              not (Fragment.is_connected ctx without))
            (Fragment.nodes j)))

(* --- pairwise laws (Definition 5) --- *)

let with_random_sets (seed, size) k =
  let ctx = Random_tree.context ~seed ~size in
  let prng = Prng.create (seed * 17) in
  let s1 = Random_tree.fragment_set ctx prng ~max_fragments:4 in
  let s2 = Random_tree.fragment_set ctx prng ~max_fragments:4 in
  let s3 = Random_tree.fragment_set ctx prng ~max_fragments:3 in
  k ctx s1 s2 s3

let pw_law name f =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name ~count:80 QCheck2.Gen.(pair (1 -- 10_000) (2 -- 40)) f)

let pairwise_commutativity =
  pw_law "pairwise commutativity" (fun input ->
      with_random_sets input (fun ctx s1 s2 _ ->
          Frag_set.equal (Join.pairwise ctx s1 s2) (Join.pairwise ctx s2 s1)))

let pairwise_associativity =
  pw_law "pairwise associativity" (fun input ->
      with_random_sets input (fun ctx s1 s2 s3 ->
          Frag_set.equal
            (Join.pairwise ctx (Join.pairwise ctx s1 s2) s3)
            (Join.pairwise ctx s1 (Join.pairwise ctx s2 s3))))

let pairwise_monotonicity =
  pw_law "pairwise monotonicity: F ⊆ F ⋈ F" (fun input ->
      with_random_sets input (fun ctx s1 _ _ ->
          Frag_set.subset s1 (Join.pairwise ctx s1 s1)))

let pairwise_distributes_over_union =
  pw_law "distributive law over ∪" (fun input ->
      with_random_sets input (fun ctx s1 s2 s3 ->
          Frag_set.equal
            (Join.pairwise ctx s1 (Frag_set.union s2 s3))
            (Frag_set.union (Join.pairwise ctx s1 s2) (Join.pairwise ctx s1 s3))))

let test_parallel_equals_sequential () =
  let ctx = Random_tree.context ~seed:404 ~size:60 in
  let prng = Prng.create 404 in
  let s1 =
    Frag_set.of_list (List.init 24 (fun _ -> Random_tree.fragment ctx prng))
  in
  let s2 =
    Frag_set.of_list (List.init 10 (fun _ -> Random_tree.fragment ctx prng))
  in
  let sequential = Join.pairwise ctx s1 s2 in
  List.iter
    (fun domains ->
      Alcotest.(check bool)
        (Printf.sprintf "%d domains" domains)
        true
        (Frag_set.equal sequential (Join.pairwise_parallel ~domains ctx s1 s2)))
    [ 1; 2; 4 ];
  (* Filtered variant, plus summed stats. *)
  let keep f = Fragment.size f <= 5 in
  let stats = Op_stats.create () in
  let par = Join.pairwise_parallel ~stats ~domains:4 ~keep ctx s1 s2 in
  Alcotest.(check bool) "filtered parallel = filtered sequential" true
    (Frag_set.equal (Join.pairwise_filtered ctx ~keep s1 s2) par);
  Alcotest.(check int) "summed candidates"
    (Frag_set.cardinal s1 * Frag_set.cardinal s2)
    stats.Op_stats.candidates

let test_parallel_stats_match_serial () =
  (* Regression: parallel workers used to drop Builder.add's result (no
     per-domain duplicate counting) and cross-domain collapses were never
     charged, so EXPLAIN ANALYZE reported different candidates/duplicates
     depending on the domain count. *)
  let ctx = Random_tree.context ~seed:505 ~size:50 in
  let prng = Prng.create 505 in
  let s1 =
    Frag_set.of_list (List.init 20 (fun _ -> Random_tree.fragment ctx prng))
  in
  let s2 =
    Frag_set.of_list (List.init 12 (fun _ -> Random_tree.fragment ctx prng))
  in
  let serial = Op_stats.create () in
  let seq = Join.pairwise ~stats:serial ctx s1 s2 in
  Alcotest.(check bool) "workload produces duplicates" true
    (serial.Op_stats.duplicates > 0);
  List.iter
    (fun domains ->
      let stats = Op_stats.create () in
      let par = Join.pairwise_parallel ~stats ~domains ctx s1 s2 in
      Alcotest.(check bool)
        (Printf.sprintf "%d domains: same set" domains)
        true (Frag_set.equal seq par);
      Alcotest.(check int)
        (Printf.sprintf "%d domains: candidates" domains)
        serial.Op_stats.candidates stats.Op_stats.candidates;
      Alcotest.(check int)
        (Printf.sprintf "%d domains: duplicates" domains)
        serial.Op_stats.duplicates stats.Op_stats.duplicates)
    [ 1; 2; 4; 8 ];
  (* Filtered variant: pruned and duplicates must match too. *)
  let keep f = Fragment.size f <= 6 in
  let serial_f = Op_stats.create () in
  ignore (Join.pairwise_filtered ~stats:serial_f ctx ~keep s1 s2);
  let par_f = Op_stats.create () in
  ignore (Join.pairwise_parallel ~stats:par_f ~domains:4 ~keep ctx s1 s2);
  Alcotest.(check int) "filtered: pruned" serial_f.Op_stats.pruned
    par_f.Op_stats.pruned;
  Alcotest.(check int) "filtered: duplicates" serial_f.Op_stats.duplicates
    par_f.Op_stats.duplicates

let pairwise_not_idempotent_witness () =
  (* The paper notes pairwise join is NOT idempotent; exhibit the
     counterexample: joining two disjoint single nodes creates a new
     fragment, so F ⋈ F ≠ F. *)
  let ctx = Lazy.force fig3 in
  let s = Frag_set.of_list [ Fragment.singleton 8; Fragment.singleton 9 ] in
  Alcotest.(check bool) "F ⋈ F ≠ F" false (Frag_set.equal (Join.pairwise ctx s s) s)

let () =
  Alcotest.run "join"
    [
      ( "figure3",
        [
          Alcotest.test_case "fragment join (Fig 3b)" `Quick test_figure3_join;
          Alcotest.test_case "single-node joins" `Quick test_join_single_nodes;
          Alcotest.test_case "ancestor/descendant" `Quick test_join_ancestor_descendant;
          Alcotest.test_case "overlapping" `Quick test_join_overlapping;
          Alcotest.test_case "fragment_many" `Quick test_fragment_many;
          Alcotest.test_case "pairwise (Fig 3c)" `Quick test_figure3_pairwise;
          Alcotest.test_case "pairwise with empty" `Quick test_pairwise_with_empty;
          Alcotest.test_case "pairwise dedups" `Quick test_pairwise_dedups;
          Alcotest.test_case "pairwise_filtered prunes" `Quick test_pairwise_filtered_prunes;
          Alcotest.test_case "stats counting" `Quick test_stats_counting;
          Alcotest.test_case "pairwise not idempotent" `Quick pairwise_not_idempotent_witness;
          Alcotest.test_case "parallel = sequential" `Quick test_parallel_equals_sequential;
          Alcotest.test_case "parallel stats = serial stats" `Quick
            test_parallel_stats_match_serial;
        ] );
      ( "laws",
        [
          idempotency;
          commutativity;
          associativity;
          absorption;
          join_contains_inputs;
          join_is_minimal;
        ] );
      ( "pairwise-laws",
        [
          pairwise_commutativity;
          pairwise_associativity;
          pairwise_monotonicity;
          pairwise_distributes_over_union;
        ] );
    ]
