(* Tests for logical plans (Figure 5), rewrite rules (§3), the cost
   model, and the plan-level optimizer (§5). *)

module Context = Xfrag_core.Context
module Fragment = Xfrag_core.Fragment
module Frag_set = Xfrag_core.Frag_set
module Filter = Xfrag_core.Filter
module Query = Xfrag_core.Query
module Eval = Xfrag_core.Eval
module Plan = Xfrag_core.Plan
module Rewrite = Xfrag_core.Rewrite
module Cost = Xfrag_core.Cost
module Optimizer = Xfrag_core.Optimizer
module Paper = Xfrag_workload.Paper_doc
module Random_tree = Xfrag_workload.Random_tree
module Prng = Xfrag_util.Prng

let set_testable = Alcotest.testable Frag_set.pp Frag_set.equal

let ctx = lazy (Paper.figure1_context ())

let paper_query () = Query.make ~filter:(Filter.Size_at_most 3) Paper.query_keywords

(* --- initial plan --- *)

let test_initial_plan_shape () =
  let q = paper_query () in
  match Plan.initial q with
  | Plan.Select (Filter.Size_at_most 3, Plan.Power_join (Plan.Scan_keyword k1, Plan.Scan_keyword k2)) ->
      Alcotest.(check string) "first keyword" "optimization" k1;
      Alcotest.(check string) "second keyword" "xquery" k2
  | p -> Alcotest.failf "unexpected initial plan %s" (Format.asprintf "%a" Plan.pp p)

let test_initial_plan_three_keywords () =
  let q = Query.make [ "a"; "b"; "c" ] in
  match Plan.initial q with
  | Plan.Select
      ( Filter.True,
        Plan.Power_join (Plan.Power_join (Plan.Scan_keyword "a", Plan.Scan_keyword "b"),
                         Plan.Scan_keyword "c") ) ->
      ()
  | p -> Alcotest.failf "unexpected plan %s" (Format.asprintf "%a" Plan.pp p)

(* --- plan evaluation matches Eval --- *)

let test_initial_plan_evaluates_to_answer () =
  let c = Lazy.force ctx in
  let q = paper_query () in
  Alcotest.check set_testable "plan eval = strategy eval"
    (Eval.answers ~strategy:Eval.Brute_force c q)
    (Plan.eval c (Plan.initial q))

(* --- rewrite rules preserve semantics --- *)

let test_power_to_fixpoint_shape () =
  let q = paper_query () in
  match Rewrite.power_to_fixpoint (Plan.initial q) with
  | Plan.Select (_, Plan.Pair_join (Plan.Fixed_point _, Plan.Fixed_point _)) -> ()
  | p -> Alcotest.failf "unexpected shape %s" (Format.asprintf "%a" Plan.pp p)

let test_use_reduction_shape () =
  let q = paper_query () in
  let p = Rewrite.use_reduction (Rewrite.power_to_fixpoint (Plan.initial q)) in
  match p with
  | Plan.Select (_, Plan.Pair_join (Plan.Fixed_point_reduced _, Plan.Fixed_point_reduced _)) -> ()
  | p -> Alcotest.failf "unexpected shape %s" (Format.asprintf "%a" Plan.pp p)

let test_push_selection_shape () =
  (* Figure 5: the anti-monotonic selection moves below the join and the
     scans gain σ_Pa. *)
  let q = paper_query () in
  let p = Rewrite.push_selection (Rewrite.power_to_fixpoint (Plan.initial q)) in
  match p with
  | Plan.Select
      ( Filter.Size_at_most 3,
        Plan.Pair_join_filtered
          ( Filter.Size_at_most 3,
            Plan.Fixed_point_filtered (_, Plan.Select (Filter.Size_at_most 3, Plan.Scan_keyword _)),
            Plan.Fixed_point_filtered (_, Plan.Select (Filter.Size_at_most 3, Plan.Scan_keyword _)) ) ) ->
      ()
  | p -> Alcotest.failf "unexpected shape %s" (Format.asprintf "%a" Plan.pp p)

let test_push_selection_id_without_am_filter () =
  let q = Query.make ~filter:(Filter.Size_at_least 2) [ "xquery"; "optimization" ] in
  let base = Rewrite.power_to_fixpoint (Plan.initial q) in
  Alcotest.(check bool) "no change" true (Plan.equal base (Rewrite.push_selection base))

let test_mixed_filter_residual_on_top () =
  let filter = Filter.And (Filter.Size_at_most 3, Filter.Size_at_least 2) in
  let q = Query.make ~filter [ "xquery"; "optimization" ] in
  let p = Rewrite.push_selection (Rewrite.power_to_fixpoint (Plan.initial q)) in
  match p with
  | Plan.Select (Filter.Size_at_least 2, Plan.Select (Filter.Size_at_most 3, _)) -> ()
  | p -> Alcotest.failf "residual not on top: %s" (Format.asprintf "%a" Plan.pp p)

let rewrites_preserve_semantics_prop =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"rewrites preserve answers" ~count:30
       QCheck2.Gen.(pair (1 -- 10_000) (4 -- 30))
       (fun (seed, size) ->
         let c = Random_tree.context ~seed ~size in
         let prng = Prng.create (seed * 43) in
         let k1 = Printf.sprintf "id%d" (Prng.int prng size) in
         let k2 = Printf.sprintf "tok%d" (Prng.int prng 8) in
         let filter =
           Filter.And
             (Filter.Size_at_most (2 + Prng.int prng 4), Filter.Size_at_least 1)
         in
         let q = Query.make ~filter [ k1; k2 ] in
         let base = Plan.initial q in
         let reference = Plan.eval c (Rewrite.power_to_fixpoint base) in
         List.for_all
           (fun rewritten -> Frag_set.equal reference (Plan.eval c rewritten))
           [
             Rewrite.use_reduction (Rewrite.power_to_fixpoint base);
             Rewrite.push_selection (Rewrite.power_to_fixpoint base);
             Rewrite.optimize_fully base;
           ]))

let test_paper_example_all_rewrites () =
  let c = Lazy.force ctx in
  let q = paper_query () in
  let base = Plan.initial q in
  let reference = Plan.eval c base in
  List.iter
    (fun (name, p) ->
      Alcotest.check set_testable name reference (Plan.eval c p))
    [
      ("power_to_fixpoint", Rewrite.power_to_fixpoint base);
      ("use_reduction", Rewrite.use_reduction (Rewrite.power_to_fixpoint base));
      ("push_selection", Rewrite.push_selection (Rewrite.power_to_fixpoint base));
      ("optimize_fully", Rewrite.optimize_fully base);
    ]

(* --- printing --- *)

let test_pp_plan () =
  let q = paper_query () in
  let rendered = Format.asprintf "%a" Plan.pp (Plan.initial q) in
  Alcotest.(check bool) "mentions both keywords" true
    (let has s = Astring.String.is_infix ~affix:s rendered in
     has "optimization" && has "xquery")

let test_pp_tree_multiline () =
  let q = paper_query () in
  let rendered = Format.asprintf "%a" Plan.pp_tree (Rewrite.optimize_fully (Plan.initial q)) in
  Alcotest.(check bool) "multiple lines" true
    (List.length (String.split_on_char '\n' rendered) > 3)

let test_operator_count () =
  let q = paper_query () in
  Alcotest.(check int) "initial: select + power + 2 scans" 4
    (Plan.operator_count (Plan.initial q))

(* --- cost model and optimizer --- *)

let test_cost_monotone_in_postings () =
  let c = Lazy.force ctx in
  (* optimization occurs in 3 nodes, xquery in 2: scan cost reflects it. *)
  let cost_k k = Cost.cost c (Plan.Scan_keyword k) in
  Alcotest.(check bool) "3 postings > 2" true (cost_k "optimization" > cost_k "xquery")

let test_cost_prefers_pushdown () =
  let c = Lazy.force ctx in
  let q = paper_query () in
  let base = Rewrite.power_to_fixpoint (Plan.initial q) in
  let pushed = Rewrite.push_selection base in
  Alcotest.(check bool) "pushdown estimated cheaper" true
    (Cost.cost c pushed < Cost.cost c base)

let test_selectivity_bounds () =
  let filters =
    [
      Filter.True;
      Filter.Size_at_most 3;
      Filter.Not (Filter.Size_at_most 3);
      Filter.And (Filter.Size_at_most 3, Filter.Contains_keyword "x");
      Filter.Or (Filter.Size_at_most 3, Filter.Contains_keyword "x");
      Filter.Equal_depth ("a", "b");
    ]
  in
  List.iter
    (fun p ->
      let s = Cost.selectivity p in
      Alcotest.(check bool) (Filter.to_string p) true (s >= 0.0 && s <= 1.0))
    filters

let test_optimizer_chooses_valid_plan () =
  let c = Lazy.force ctx in
  let q = paper_query () in
  let choice = Optimizer.optimize c q in
  Alcotest.check set_testable "optimizer plan is correct"
    (Eval.answers ~strategy:Eval.Brute_force c q)
    (Plan.eval c choice.Optimizer.plan);
  Alcotest.(check bool) "cheapest among alternatives" true
    (List.for_all (fun (_, cost) -> cost >= choice.Optimizer.estimated_cost)
       choice.Optimizer.alternatives)

let test_optimizer_probes_rf () =
  let c = Lazy.force ctx in
  let choice = Optimizer.optimize c (paper_query ()) in
  (* F2 = {16,17,81} reduces to {17,81}: RF = 1/3. *)
  match List.assoc_opt "optimization" choice.Optimizer.reduction_factors with
  | Some rf -> Alcotest.(check bool) "RF ≈ 1/3" true (Float.abs (rf -. (1.0 /. 3.0)) < 1e-9)
  | None -> Alcotest.fail "optimization RF not probed"

let test_explain_mentions_plans () =
  let c = Lazy.force ctx in
  let report = Optimizer.explain c (paper_query ()) in
  Alcotest.(check bool) "mentions candidates" true
    (Astring.String.is_infix ~affix:"candidates:" report);
  Alcotest.(check bool) "mentions RF" true
    (Astring.String.is_infix ~affix:"RF" report)

let () =
  Alcotest.run "plan"
    [
      ( "shape",
        [
          Alcotest.test_case "initial (2 keywords)" `Quick test_initial_plan_shape;
          Alcotest.test_case "initial (3 keywords)" `Quick test_initial_plan_three_keywords;
          Alcotest.test_case "power_to_fixpoint" `Quick test_power_to_fixpoint_shape;
          Alcotest.test_case "use_reduction" `Quick test_use_reduction_shape;
          Alcotest.test_case "push_selection (Fig 5)" `Quick test_push_selection_shape;
          Alcotest.test_case "pushdown id without AM filter" `Quick
            test_push_selection_id_without_am_filter;
          Alcotest.test_case "residual on top" `Quick test_mixed_filter_residual_on_top;
          Alcotest.test_case "operator count" `Quick test_operator_count;
        ] );
      ( "semantics",
        [
          Alcotest.test_case "initial plan evaluates" `Quick test_initial_plan_evaluates_to_answer;
          Alcotest.test_case "all rewrites on paper example" `Quick test_paper_example_all_rewrites;
          rewrites_preserve_semantics_prop;
        ] );
      ( "printing",
        [
          Alcotest.test_case "pp" `Quick test_pp_plan;
          Alcotest.test_case "pp_tree" `Quick test_pp_tree_multiline;
        ] );
      ( "cost+optimizer",
        [
          Alcotest.test_case "cost monotone in postings" `Quick test_cost_monotone_in_postings;
          Alcotest.test_case "cost prefers pushdown" `Quick test_cost_prefers_pushdown;
          Alcotest.test_case "selectivity bounds" `Quick test_selectivity_bounds;
          Alcotest.test_case "optimizer validity" `Quick test_optimizer_chooses_valid_plan;
          Alcotest.test_case "optimizer probes RF" `Quick test_optimizer_probes_rf;
          Alcotest.test_case "explain" `Quick test_explain_mentions_plans;
        ] );
    ]
